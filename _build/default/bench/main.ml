(* Reproduction harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 4 for the experiment index), plus an
   ablation sweep and bechamel microbenchmarks of the compiler machinery.

   Usage: dune exec bench/main.exe [-- experiment ...]
   Experiments: table1 table2 table3 fig34 fig5 fig6 fig7 fig8 fig9 fig10
   fig11 ablation micro; default is all of them in paper order. *)

module SP = Strideprefetch
module W = Workloads.Workload
module H = Workloads.Harness

let workloads = Workloads.Specjvm.all @ Workloads.Javagrande.all
let specjvm_names = List.map (fun (w : W.t) -> w.name) Workloads.Specjvm.all

let machines = [ Memsim.Config.pentium4; Memsim.Config.athlon_mp ]

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheading title = Printf.printf "\n-- %s --\n" title

(* ------------------------------------------------------------------ *)
(* Result cache: each (workload, machine, mode) runs once per process. *)

let cache : (string * string * SP.Options.mode, H.run_result) Hashtbl.t =
  Hashtbl.create 64

let result (w : W.t) (machine : Memsim.Config.machine) mode =
  let key = (w.name, machine.name, mode) in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
      Printf.eprintf "[bench] running %s on %s (%s)...\n%!" w.name machine.name
        (SP.Options.mode_name mode);
      let r = H.run ~mode ~machine w in
      Hashtbl.add cache key r;
      r

let speedup_percent w machine mode =
  let baseline = result w machine SP.Options.Off in
  H.percent_speedup ~baseline (result w machine mode)

(* ------------------------------------------------------------------ *)
(* Table 1: the load instructions of findInMemory. *)

let kernel_and_infos () =
  let program = Workloads.Figure1.compile () in
  let meth =
    Option.get (Vm.Classfile.find_method program Workloads.Figure1.kernel_name)
  in
  let infos =
    Jit.Stack_model.analyze meth.code ~arity:meth.arity
      ~callee_arity:(fun m -> (Vm.Classfile.method_of_id program m).arity)
      ~callee_returns:(fun m ->
        (Vm.Classfile.method_of_id program m).returns_value)
  in
  (program, meth, infos)

let table1 () =
  heading "Table 1: load instructions in the findInMemory() method";
  let _, meth, infos = kernel_and_infos () in
  Printf.printf "%-6s %-20s %s\n" "Load" "Memory address" "instruction";
  for site = 0 to meth.n_sites - 1 do
    let instr =
      Array.to_list meth.code
      |> List.find_opt (fun i -> List.mem site (Vm.Bytecode.all_sites i))
    in
    Printf.printf "%-6s %-20s %s\n"
      (Printf.sprintf "L%d" site)
      (Workloads.Figure1.describe_site infos site)
      (match instr with Some i -> Vm.Bytecode.to_string i | None -> "?")
  done

(* ------------------------------------------------------------------ *)

let table2 () =
  heading "Table 2: parameters related to prefetching";
  Printf.printf "%-10s %-8s %-9s %-8s %-9s %-6s %s\n" "Processor" "L1(KB)"
    "L1 line" "L2(KB)" "L2 line" "#DTLB" "prefetch target";
  List.iter
    (fun (m : Memsim.Config.machine) ->
      Printf.printf "%-10s %-8d %-9d %-8d %-9d %-6d %s\n" m.name
        (m.l1.size_bytes / 1024) m.l1.line_bytes (m.l2.size_bytes / 1024)
        m.l2.line_bytes m.dtlb.entries
        (match m.prefetch_target with
        | Memsim.Config.To_l2 -> "L2"
        | Memsim.Config.To_l1 -> "L1"))
    machines

(* ------------------------------------------------------------------ *)

let table3 () =
  heading "Table 3: benchmarks and % of cycles in compiled code (Pentium 4)";
  Printf.printf "%-11s %-10s %-14s %s\n" "Program" "Suite" "Compiled (%)"
    "Description";
  List.iter
    (fun (w : W.t) ->
      let r = result w Memsim.Config.pentium4 SP.Options.Off in
      Printf.printf "%-11s %-10s %-14.1f %s\n" w.name
        (if List.mem w.name specjvm_names then "SPECjvm98" else "JavaGrande")
        (100.0 *. H.compiled_fraction r)
        w.description)
    workloads

(* ------------------------------------------------------------------ *)
(* Figures 3 and 4: the generated prefetching code, INTER vs INTER+INTRA. *)

let optimized_kernel mode machine =
  let program = Workloads.Figure1.compile () in
  let opts = SP.Options.with_mode mode SP.Options.default in
  let interp = Vm.Interp.create machine program in
  let reports = ref [] in
  let pipeline =
    Jit.Pipeline.create
      (Jit.Pipeline.standard_passes ()
      @
      match mode with
      | SP.Options.Off -> []
      | _ ->
          [
            SP.Pass.make_pass ~opts ~interp
              ~report_sink:(fun r -> reports := !reports @ r)
              ();
          ])
  in
  Vm.Interp.set_compile_hook interp (fun _ m args ->
      Jit.Pipeline.compile pipeline m args);
  ignore (Vm.Interp.run interp);
  let meth =
    Option.get (Vm.Classfile.find_method program Workloads.Figure1.kernel_name)
  in
  (meth, !reports)

let fig34 () =
  heading "Figures 3 & 4: generated prefetching code for findInMemory";
  subheading "Figure 3 analogue: INTER only (Wu-style, in-loop loads)";
  let meth, _ = optimized_kernel SP.Options.Inter Memsim.Config.pentium4 in
  Format.printf "%a@." Vm.Classfile.pp_method meth;
  subheading "Figure 4 analogue: INTER+INTRA (dereference + intra-stride)";
  let meth, reports =
    optimized_kernel SP.Options.Inter_intra Memsim.Config.pentium4
  in
  Format.printf "%a@." Vm.Classfile.pp_method meth;
  subheading "per-loop pass reports";
  List.iter (fun r -> Format.printf "%a@." SP.Pass.pp_report r) reports

(* ------------------------------------------------------------------ *)

let fig5 () =
  heading "Figure 5: load dependence graph for findInMemory";
  let _, meth, infos = kernel_and_infos () in
  let sites = List.init meth.n_sites Fun.id in
  let ldg = SP.Ldg.build infos ~sites in
  Format.printf "%a@." SP.Ldg.pp ldg;
  subheading "GraphViz rendering";
  print_string
    (SP.Ldg.to_dot ldg ~labels:(fun site ->
         Printf.sprintf "L%d: %s" site
           (Workloads.Figure1.describe_site infos site)))

(* ------------------------------------------------------------------ *)

let speedup_figure ~figure ~machine () =
  heading
    (Printf.sprintf "Figure %s: speedup ratios on the %s" figure
       machine.Memsim.Config.name);
  Printf.printf "%-11s %12s %12s\n" "Program" "INTER" "INTER+INTRA";
  List.iter
    (fun (w : W.t) ->
      Printf.printf "%-11s %+11.1f%% %+11.1f%%\n" w.name
        (speedup_percent w machine SP.Options.Inter)
        (speedup_percent w machine SP.Options.Inter_intra))
    workloads

let fig6 () = speedup_figure ~figure:"6" ~machine:Memsim.Config.pentium4 ()
let fig7 () = speedup_figure ~figure:"7" ~machine:Memsim.Config.athlon_mp ()

(* ------------------------------------------------------------------ *)

let mpi_figure ~figure ~label ~extract () =
  heading
    (Printf.sprintf "Figure %s: %s on the Pentium 4 (x1000)" figure label);
  Printf.printf "%-11s %12s %12s\n" "Program" "BASELINE" "INTER+INTRA";
  List.iter
    (fun (w : W.t) ->
      let base = result w Memsim.Config.pentium4 SP.Options.Off in
      let opt = result w Memsim.Config.pentium4 SP.Options.Inter_intra in
      Printf.printf "%-11s %12.3f %12.3f\n" w.name
        (1000.0 *. extract base.H.stats)
        (1000.0 *. extract opt.H.stats))
    workloads

let fig8 () =
  mpi_figure ~figure:"8" ~label:"L1 cache load MPI"
    ~extract:Memsim.Stats.l1_load_mpi ()

let fig9 () =
  mpi_figure ~figure:"9" ~label:"L2 cache load MPI"
    ~extract:Memsim.Stats.l2_load_mpi ()

let fig10 () =
  mpi_figure ~figure:"10" ~label:"DTLB load MPI"
    ~extract:Memsim.Stats.dtlb_load_mpi ()

(* ------------------------------------------------------------------ *)

let fig11 () =
  heading "Figure 11: compilation time of the prefetching pass (Pentium 4)";
  Printf.printf "%-11s %10s %15s %15s %12s\n" "Program" "methods"
    "prefetch (ms)" "rest of JIT(ms)" "per hot method";
  let worst_per_method = ref 0.0 in
  List.iter
    (fun (w : W.t) ->
      let r = result w Memsim.Config.pentium4 SP.Options.Inter_intra in
      let per_method =
        if r.methods_compiled = 0 then 0.0
        else 1000.0 *. r.prefetch_pass_seconds /. float_of_int r.methods_compiled
      in
      if per_method > !worst_per_method then worst_per_method := per_method;
      Printf.printf "%-11s %10d %15.3f %15.3f %9.3f ms\n" w.name
        r.methods_compiled
        (1000.0 *. r.prefetch_pass_seconds)
        (1000.0
        *. (r.total_compile_seconds -. r.prefetch_pass_seconds))
        per_method)
    workloads;
  Printf.printf
    "\nWorst-case prefetch-pass cost: %.3f ms per hot method.\n\
     The paper reports the pass adds < 3.0%% to total JIT compilation time\n\
     and < 0.4%% to total execution time. A ratio against OUR baseline\n\
     pipeline would be meaningless: this reproduction's non-prefetch JIT\n\
     work (CFG/loops/fold/inline) is a deliberately thin stand-in, tens of\n\
     microseconds per method, where the IBM JIT's full compilation\n\
     (native code generation, register allocation, inlining, ...) runs\n\
     milliseconds to tens of milliseconds per hot method. Against such a\n\
     baseline, the measured sub-millisecond pass cost is the same order\n\
     as the paper's < 3%% claim. EXPERIMENTS.md discusses this further.\n"
    !worst_per_method

(* ------------------------------------------------------------------ *)

let ablation () =
  heading "Ablation: inspected iterations and scheduling distance (Pentium 4)";
  let machine = Memsim.Config.pentium4 in
  let w = List.find (fun (w : W.t) -> w.name = "db") workloads in
  let baseline = result w machine SP.Options.Off in
  subheading "db: INTER+INTRA speedup vs inspected iterations";
  List.iter
    (fun iterations ->
      let opts =
        { SP.Options.default with SP.Options.inspect_iterations = iterations }
      in
      let r = H.run ~opts ~mode:SP.Options.Inter_intra ~machine w in
      Printf.printf "  %2d iterations: %+6.1f%%\n" iterations
        (H.percent_speedup ~baseline r))
    [ 5; 10; 20; 40 ];
  subheading "db: INTER+INTRA speedup vs scheduling distance c";
  List.iter
    (fun c ->
      let opts =
        { SP.Options.default with SP.Options.scheduling_distance = c }
      in
      let r = H.run ~opts ~mode:SP.Options.Inter_intra ~machine w in
      Printf.printf "  c = %d: %+6.1f%%\n" c (H.percent_speedup ~baseline r))
    [ 1; 2; 4 ];
  let euler = List.find (fun (w : W.t) -> w.name = "Euler") workloads in
  let euler_baseline = result euler machine SP.Options.Off in
  subheading "Euler: INTER speedup vs scheduling distance c";
  List.iter
    (fun c ->
      let opts =
        { SP.Options.default with SP.Options.scheduling_distance = c }
      in
      let r = H.run ~opts ~mode:SP.Options.Inter ~machine euler in
      Printf.printf "  c = %d: %+6.1f%%\n" c
        (H.percent_speedup ~baseline:euler_baseline r))
    [ 1; 2; 4 ];
  subheading "jess: majority threshold";
  let jess = List.find (fun (w : W.t) -> w.name = "jess") workloads in
  let jess_baseline = result jess machine SP.Options.Off in
  List.iter
    (fun majority ->
      let opts = { SP.Options.default with SP.Options.majority } in
      let r = H.run ~opts ~mode:SP.Options.Inter_intra ~machine jess in
      Printf.printf "  majority %.2f: %+6.1f%%\n" majority
        (H.percent_speedup ~baseline:jess_baseline r))
    [ 0.5; 0.75; 0.95 ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the compiler-side machinery. *)

let micro () =
  heading "Microbenchmarks (bechamel): compiler-side costs";
  let program, meth, infos = kernel_and_infos () in
  let cfg_built = Jit.Cfg.build meth.code in
  let forest = Jit.Loops.analyze cfg_built in
  let target = List.hd (List.rev (Jit.Loops.postorder forest)) in
  (* a populated interpreter for object inspection *)
  let interp = Vm.Interp.create Memsim.Config.pentium4 program in
  ignore (Vm.Interp.run interp);
  let opts = SP.Options.default in
  let args =
    let heap = Vm.Interp.heap interp in
    let node = ref Vm.Value.Null
    and tv = ref Vm.Value.Null
    and tok = ref Vm.Value.Null in
    let class_id name =
      (Option.get (Vm.Classfile.find_class program name)).Vm.Classfile.class_id
    in
    Vm.Heap.iter_ids_in_address_order heap (fun id ->
        match Vm.Heap.class_id_of heap id with
        | Some c when c = class_id "Node2" -> node := Vm.Value.Ref id
        | Some c when c = class_id "TokenVector" -> tv := Vm.Value.Ref id
        | Some c when c = class_id "Token" && !tok = Vm.Value.Null ->
            tok := Vm.Value.Ref id
        | _ -> ());
    [| !node; !tv; !tok |]
  in
  let fresh_meth () =
    Vm.Classfile.make_method ~method_id:meth.method_id
      ~method_name:meth.method_name ~arity:meth.arity
      ~returns_value:meth.returns_value ~max_locals:meth.max_locals
      ~code:(Array.copy meth.original_code)
  in
  let tests =
    [
      Bechamel.Test.make ~name:"cfg+dominators+loops"
        (Bechamel.Staged.stage (fun () ->
             let cfg = Jit.Cfg.build meth.code in
             let idom = Jit.Dominators.compute cfg in
             ignore (Jit.Loops.analyze cfg);
             ignore idom));
      Bechamel.Test.make ~name:"stack-model"
        (Bechamel.Staged.stage (fun () ->
             ignore
               (Jit.Stack_model.analyze meth.code ~arity:meth.arity
                  ~callee_arity:(fun m ->
                    (Vm.Classfile.method_of_id program m).arity)
                  ~callee_returns:(fun m ->
                    (Vm.Classfile.method_of_id program m).returns_value))));
      Bechamel.Test.make ~name:"ldg-build"
        (Bechamel.Staged.stage (fun () ->
             ignore
               (SP.Ldg.build infos ~sites:(List.init meth.n_sites Fun.id))));
      Bechamel.Test.make ~name:"object-inspection"
        (Bechamel.Staged.stage (fun () ->
             ignore
               (SP.Inspection.inspect ~program ~heap:(Vm.Interp.heap interp)
                  ~globals:(Vm.Interp.global interp) ~opts ~cfg:cfg_built
                  ~forest ~target ~meth ~args)));
      Bechamel.Test.make ~name:"whole-prefetch-pass"
        (Bechamel.Staged.stage (fun () ->
             let m = fresh_meth () in
             ignore (SP.Pass.run ~opts ~interp ~meth:m ~args)));
      Bechamel.Test.make ~name:"stride-detection-1k"
        (Bechamel.Staged.stage
           (let records = List.init 1000 (fun i -> (i, 4096 + (i * 60))) in
            fun () -> ignore (SP.Stride.inter ~opts records)));
      Bechamel.Test.make ~name:"cache-sim-4k-accesses"
        (Bechamel.Staged.stage
           (let hier = Memsim.Hierarchy.create Memsim.Config.pentium4 in
            fun () ->
              for i = 0 to 4095 do
                ignore
                  (Memsim.Hierarchy.demand_access hier ~addr:(i * 64 * 7)
                     ~kind:`Load ~now:i)
              done));
    ]
  in
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let benchmark_cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  Printf.printf "%-26s %16s\n" "benchmark" "time/run";
  List.iter
    (fun test ->
      let results = Benchmark.all benchmark_cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let ols_result = Analyze.one ols instance raw in
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
              let pretty =
                if ns > 1e6 then Printf.sprintf "%10.3f ms" (ns /. 1e6)
                else if ns > 1e3 then Printf.sprintf "%10.3f us" (ns /. 1e3)
                else Printf.sprintf "%10.0f ns" ns
              in
              Printf.printf "%-26s %16s\n" name pretty
          | _ -> Printf.printf "%-26s %16s\n" name "n/a")
        results)
    tests

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig34", fig34);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("ablation", ablation);
    ("micro", micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown experiment '%s' (available: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested
