test/helpers.ml: Jit Memsim Minijava QCheck_alcotest Strideprefetch Vm
