test/test_main.ml: Alcotest Test_jit Test_memsim Test_minijava Test_strideprefetch Test_vm Test_workloads
