test/test_strideprefetch.ml: Alcotest Array Fun Gen Hashtbl Helpers Jit List Memsim Option Printf QCheck Result Strideprefetch String Vm
