test/test_memsim.ml: Alcotest Array Gen Helpers List Memsim QCheck Result
