test/test_jit.ml: Alcotest Array Gen Helpers Jit List Memsim Option Printf QCheck Strideprefetch Test_strideprefetch Vm Workloads
