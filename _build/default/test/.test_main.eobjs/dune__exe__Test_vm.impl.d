test/test_vm.ml: Alcotest Array Fun Gen Helpers List Memsim QCheck String Vm
