test/test_minijava.ml: Alcotest Helpers List Memsim Minijava Printf QCheck Strideprefetch String
