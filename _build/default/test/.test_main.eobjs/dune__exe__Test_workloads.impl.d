test/test_workloads.ml: Alcotest Array List Memsim Minijava Strideprefetch Workloads
