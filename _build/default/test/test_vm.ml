(* Unit and property tests for the mini-JVM: heap, GC, frames, bytecode,
   interpreter. *)

module B = Vm.Bytecode
module C = Vm.Classfile
module V = Vm.Value
module H = Vm.Heap

let point_class =
  C.make_class ~class_id:0 ~class_name:"Point"
    ~field_specs:[ ("x", false); ("y", false); ("next", true) ]

(* --- heap ---------------------------------------------------------------- *)

let test_heap_layout () =
  let h = H.create () in
  let id = H.alloc_object h point_class in
  Alcotest.(check int) "base at heap start" C.heap_base (H.base_of h id);
  Alcotest.(check int) "object size" (8 + (3 * 4)) (H.size_of h id);
  Alcotest.(check int) "field 0 addr" (C.heap_base + 8) (H.field_addr h id 0);
  Alcotest.(check int) "field 2 addr" (C.heap_base + 16) (H.field_addr h id 2);
  let arr = H.alloc_int_array h 5 in
  Alcotest.(check int) "array after object" (C.heap_base + 20) (H.base_of h arr);
  Alcotest.(check int) "length addr"
    (H.base_of h arr + 8)
    (H.length_addr h arr);
  Alcotest.(check int) "elem 0 addr"
    (H.base_of h arr + 12)
    (H.elem_addr h arr 0);
  Alcotest.(check int) "length" 5 (H.array_length h arr)

let test_heap_field_rw () =
  let h = H.create () in
  let id = H.alloc_object h point_class in
  Alcotest.(check bool) "zero-init" true (H.get_field h id 0 = V.Null);
  H.set_field h id 0 (V.Int 42);
  H.set_field h id 2 (V.Ref id);
  Alcotest.(check bool) "int field" true (H.get_field h id 0 = V.Int 42);
  Alcotest.(check bool) "ref field" true (H.get_field h id 2 = V.Ref id)

let test_heap_array_rw () =
  let h = H.create () in
  let a = H.alloc_int_array h 3 in
  H.set_elem h a 1 (V.Int 7);
  Alcotest.(check bool) "int elem" true (H.get_elem h a 1 = V.Int 7);
  let r = H.alloc_ref_array h 2 in
  H.set_elem h r 0 (V.Ref a);
  Alcotest.(check bool) "ref elem" true (H.get_elem h r 0 = V.Ref a);
  Alcotest.(check bool) "type confusion rejected" true
    (try
       H.set_elem h a 0 (V.Ref r);
       false
     with Invalid_argument _ -> true)

let test_heap_value_at () =
  let h = H.create () in
  let id = H.alloc_object h point_class in
  H.set_field h id 1 (V.Int 99);
  Alcotest.(check bool) "field readback" true
    (H.value_at h (H.field_addr h id 1) = Some (V.Int 99));
  Alcotest.(check bool) "header is opaque" true
    (H.value_at h (H.base_of h id) = None);
  Alcotest.(check bool) "unmapped address" true
    (H.value_at h (C.heap_base + 1_000_000) = None);
  let a = H.alloc_int_array h 4 in
  H.set_elem h a 2 (V.Int 5);
  Alcotest.(check bool) "array length via address" true
    (H.value_at h (H.length_addr h a) = Some (V.Int 4));
  Alcotest.(check bool) "array elem via address" true
    (H.value_at h (H.elem_addr h a 2) = Some (V.Int 5));
  Alcotest.(check bool) "misaligned is opaque" true
    (H.value_at h (H.elem_addr h a 2 + 1) = None)

let test_heap_out_of_memory () =
  let h = H.create ~limit_bytes:40 () in
  ignore (H.alloc_object h point_class);
  ignore (H.alloc_object h point_class);
  Alcotest.check_raises "third allocation fails" H.Out_of_memory (fun () ->
      ignore (H.alloc_object h point_class))

let test_heap_compact_slides_in_order () =
  let h = H.create () in
  let a = H.alloc_object h point_class in
  let b = H.alloc_object h point_class in
  let c = H.alloc_object h point_class in
  let size = H.size_of h a in
  (* drop b; a and c survive and slide together *)
  let removed = H.compact h ~live:(fun id -> id <> b) in
  Alcotest.(check int) "one removed" 1 removed;
  Alcotest.(check bool) "b gone" false (H.exists h b);
  Alcotest.(check int) "a stays at base" C.heap_base (H.base_of h a);
  Alcotest.(check int) "c slides next to a" (C.heap_base + size)
    (H.base_of h c);
  Alcotest.(check int) "two live" 2 (H.live_objects h)

let prop_heap_addresses_ascending =
  QCheck.Test.make ~name:"heap: allocation order = address order" ~count:50
    QCheck.(list_of_size Gen.(1 -- 30) (QCheck.int_range 0 20))
    (fun sizes ->
      let h = H.create () in
      let ids = List.map (fun n -> H.alloc_int_array h n) sizes in
      let bases = List.map (H.base_of h) ids in
      List.sort compare bases = bases
      && List.length (List.sort_uniq compare bases) = List.length bases)

let prop_value_at_roundtrip =
  QCheck.Test.make ~name:"heap: value_at agrees with get_elem" ~count:100
    QCheck.(pair (QCheck.int_range 1 20) QCheck.small_int)
    (fun (len, v) ->
      let h = H.create () in
      let a = H.alloc_int_array h len in
      let i = abs v mod len in
      H.set_elem h a i (V.Int v);
      H.value_at h (H.elem_addr h a i) = Some (V.Int v))

(* --- gc ------------------------------------------------------------------ *)

let test_gc_reclaims_garbage () =
  let h = H.create () in
  let keep = H.alloc_object h point_class in
  let dead = H.alloc_object h point_class in
  let child = H.alloc_int_array h 4 in
  H.set_field h keep 2 (V.Ref child);
  let result = Vm.Gc_compact.collect h ~roots:[ V.Ref keep ] in
  Alcotest.(check int) "collected" 1 result.collected;
  Alcotest.(check int) "live" 2 result.live;
  Alcotest.(check bool) "keep survives" true (H.exists h keep);
  Alcotest.(check bool) "child survives (transitively)" true
    (H.exists h child);
  Alcotest.(check bool) "dead reclaimed" false (H.exists h dead)

let test_gc_handles_cycles () =
  let h = H.create () in
  let a = H.alloc_object h point_class in
  let b = H.alloc_object h point_class in
  H.set_field h a 2 (V.Ref b);
  H.set_field h b 2 (V.Ref a);
  (* the cycle is garbage *)
  let result = Vm.Gc_compact.collect h ~roots:[] in
  Alcotest.(check int) "cycle collected" 2 result.collected

let test_gc_preserves_strides () =
  (* The paper's GC property: sliding compaction preserves the relative
     order, so constant strides among surviving neighbours persist. *)
  let h = H.create () in
  let objs = Array.init 10 (fun _ -> H.alloc_object h point_class) in
  (* keep every second object *)
  let roots =
    Array.to_list objs
    |> List.filteri (fun i _ -> i mod 2 = 0)
    |> List.map (fun id -> V.Ref id)
  in
  ignore (Vm.Gc_compact.collect h ~roots);
  let survivors =
    Array.to_list objs |> List.filter (H.exists h) |> List.map (H.base_of h)
  in
  let rec strides = function
    | a :: (b :: _ as rest) -> (b - a) :: strides rest
    | [ _ ] | [] -> []
  in
  let ss = strides survivors in
  Alcotest.(check bool) "constant stride among survivors" true
    (ss <> [] && List.for_all (fun s -> s = List.hd ss) ss)

(* --- frame --------------------------------------------------------------- *)

let dummy_method code =
  C.make_method ~method_id:0 ~method_name:"T.m" ~arity:2 ~returns_value:false
    ~max_locals:4 ~code

let test_frame_push_pop () =
  let f =
    Vm.Frame.create (dummy_method [| B.Return |]) ~args:[| V.Int 1; V.Null |]
  in
  Vm.Frame.push f (V.Int 5);
  Vm.Frame.push f (V.Ref 0);
  Alcotest.(check bool) "peek" true (Vm.Frame.peek f = V.Ref 0);
  Alcotest.(check bool) "pop" true (Vm.Frame.pop f = V.Ref 0);
  Alcotest.(check int) "pop_int" 5 (Vm.Frame.pop_int f);
  Alcotest.check_raises "underflow"
    (Vm.Frame.Stack_error "operand stack underflow in T.m") (fun () ->
      ignore (Vm.Frame.pop f))

let test_frame_args_in_locals () =
  let f =
    Vm.Frame.create (dummy_method [| B.Return |]) ~args:[| V.Int 7; V.Ref 3 |]
  in
  Alcotest.(check bool) "arg 0" true (f.Vm.Frame.locals.(0) = V.Int 7);
  Alcotest.(check bool) "arg 1" true (f.Vm.Frame.locals.(1) = V.Ref 3);
  Alcotest.(check bool) "roots include args" true
    (List.mem (V.Ref 3) (Vm.Frame.roots f))

(* --- bytecode ------------------------------------------------------------ *)

let test_bytecode_sites () =
  let gf = B.Getfield { site = 3; offset = 8; name = "f"; is_ref = true } in
  Alcotest.(check bool) "getfield site" true (B.site_of gf = Some 3);
  let aa = B.Aaload { len_site = 1; elem_site = 2 } in
  Alcotest.(check bool) "aaload sites" true (B.all_sites aa = [ 1; 2 ]);
  Alcotest.(check bool) "iadd no site" true (B.site_of B.Iadd = None)

let test_bytecode_branch_helpers () =
  Alcotest.(check bool) "goto target" true (B.branch_target (B.Goto 7) = Some 7);
  Alcotest.(check bool) "terminator" true (B.is_terminator (B.Goto 7));
  Alcotest.(check bool) "conditional not terminator" false
    (B.is_terminator (B.If (B.Eq, 3)));
  Alcotest.(check bool) "return" true (B.is_return B.Ireturn)

let test_bytecode_printer_total () =
  let instrs =
    [
      B.Iconst 1; B.Aconst_null; B.Iload 0; B.Istore 0; B.Aload 0; B.Astore 0;
      B.Dup; B.Pop; B.Iadd; B.Isub; B.Imul; B.Idiv; B.Irem; B.Ineg; B.Iand;
      B.Ior; B.Ixor; B.Ishl; B.Ishr; B.Goto 0; B.If_icmp (B.Lt, 0);
      B.If (B.Eq, 0); B.If_acmpeq 0; B.If_acmpne 0; B.Ifnull 0; B.Ifnonnull 0;
      B.Getfield { site = 0; offset = 8; name = "f"; is_ref = false };
      B.Putfield { offset = 8; name = "f" };
      B.Getstatic { site = 0; index = 0; name = "s"; is_ref = false };
      B.Putstatic { index = 0; name = "s" };
      B.Aaload { len_site = 0; elem_site = 1 };
      B.Iaload { len_site = 0; elem_site = 1 };
      B.Aastore { len_site = 0 }; B.Iastore { len_site = 0 };
      B.Arraylength { site = 0 }; B.New 0; B.Newarray B.Int_array;
      B.Newarray B.Ref_array; B.Invoke 0; B.Return; B.Ireturn; B.Areturn;
      B.Print; B.Prefetch_inter { site = 0; distance = 64 };
      B.Spec_load { site = 0; distance = 64; reg = 0 };
      B.Prefetch_indirect { reg = 0; offset = 8; guarded = true };
    ]
  in
  List.iter
    (fun i -> Alcotest.(check bool) "nonempty" true (B.to_string i <> ""))
    instrs

(* --- interpreter --------------------------------------------------------- *)

let run_code ?(max_locals = 8) code =
  Helpers.run_program (Helpers.program_of_code ~max_locals code)

let test_interp_arith () =
  let interp =
    run_code [| B.Iconst 6; B.Iconst 7; B.Imul; B.Print; B.Return |]
  in
  Alcotest.(check string) "6*7" "42\n" (Vm.Interp.output interp)

let test_interp_division_by_zero () =
  Alcotest.check_raises "div by zero"
    (Vm.Interp.Vm_error "division by zero in T.main") (fun () ->
      ignore (run_code [| B.Iconst 1; B.Iconst 0; B.Idiv; B.Return |]))

let test_interp_branches () =
  (* if (3 < 5) print 1 else print 0 *)
  let code =
    [|
      B.Iconst 3; B.Iconst 5; B.If_icmp (B.Lt, 5); B.Iconst 0; B.Goto 6;
      B.Iconst 1; B.Print; B.Return;
    |]
  in
  Alcotest.(check string) "taken" "1\n" (Vm.Interp.output (run_code code))

let test_interp_arrays_and_bounds () =
  let code =
    [|
      B.Iconst 3; B.Newarray B.Int_array; B.Astore 0;
      B.Aload 0; B.Iconst 1; B.Iconst 9; B.Iastore { len_site = 0 };
      B.Aload 0; B.Iconst 1; B.Iaload { len_site = 1; elem_site = 2 };
      B.Print; B.Return;
    |]
  in
  Alcotest.(check string) "store/load" "9\n" (Vm.Interp.output (run_code code));
  let oob =
    [|
      B.Iconst 2; B.Newarray B.Int_array; B.Iconst 5;
      B.Iaload { len_site = 0; elem_site = 1 }; B.Return;
    |]
  in
  Alcotest.check_raises "bounds"
    (Vm.Interp.Vm_error "array index 5 out of bounds [0,2) in T.main")
    (fun () -> ignore (run_code oob))

let test_interp_null_deref () =
  let code =
    [|
      B.Aconst_null;
      B.Getfield { site = 0; offset = 8; name = "f"; is_ref = false };
      B.Return;
    |]
  in
  Alcotest.check_raises "null"
    (Vm.Interp.Vm_error "null pointer dereference in T.main") (fun () ->
      ignore (run_code code))

let test_interp_gc_triggered () =
  let source =
    {|
class A {
  int x;
  A(int v) { x = v; }
  static void main() {
    int acc = 0;
    for (int i = 0; i < 5000; i = i + 1) {
      A a = new A(i);
      acc = (acc + a.x) % 1000;
    }
    print(acc);
  }
}
|}
  in
  let program = Helpers.compile source in
  let machine = Memsim.Config.pentium4 in
  let options =
    {
      (Vm.Interp.default_options machine) with
      Vm.Interp.heap_limit_bytes = 8192;
    }
  in
  let interp = Vm.Interp.create ~options machine program in
  ignore (Vm.Interp.run interp);
  Alcotest.(check bool) "collected at least once" true
    (Vm.Interp.gc_count interp > 0);
  (* sum of 0..4999 mod 1000, folded stepwise *)
  Alcotest.(check bool) "produced a result" true
    (Vm.Interp.output interp <> "")

let test_interp_site_addresses_recorded () =
  let seen = ref [] in
  let source =
    {|
class P {
  int v;
  P(int x) { v = x; }
  static void main() {
    P p = new P(3);
    print(p.v);
  }
}
|}
  in
  let program = Helpers.compile source in
  let interp = Vm.Interp.create Memsim.Config.pentium4 program in
  Vm.Interp.set_load_observer interp (fun ~method_id ~site ~addr ->
      seen := (method_id, site, addr) :: !seen);
  ignore (Vm.Interp.run interp);
  Alcotest.(check bool) "observed at least one load" true (!seen <> [])

let test_interp_prefetch_instructions () =
  let code =
    [|
      B.Iconst 4; B.Newarray B.Int_array; B.Astore 0;
      B.Aload 0; B.Iconst 0; B.Iaload { len_site = 0; elem_site = 1 }; B.Pop;
      B.Prefetch_inter { site = 1; distance = 64 };
      B.Spec_load { site = 1; distance = 0; reg = 0 };
      B.Prefetch_indirect { reg = 0; offset = 8; guarded = true };
      B.Return;
    |]
  in
  let program = Helpers.program_of_code code in
  program.methods.(0).C.n_pref_regs <- 1;
  let interp = Vm.Interp.create Memsim.Config.pentium4 program in
  ignore (Vm.Interp.run interp);
  let stats = Vm.Interp.stats interp in
  Alcotest.(check int) "one sw prefetch" 1 stats.Memsim.Stats.sw_prefetches;
  (* spec_load counts as a guarded load; its result is an Int (a[0] = 0),
     so the indirect prefetch through it is skipped *)
  Alcotest.(check int) "one guarded load" 1 stats.Memsim.Stats.guarded_loads

let test_interp_spec_load_reads_pointer () =
  let code =
    [|
      B.New 0; B.Astore 0;
      B.Iconst 1; B.Newarray B.Ref_array; B.Astore 1;
      B.Aload 1; B.Iconst 0; B.Aload 0; B.Aastore { len_site = 0 };
      B.Aload 1; B.Iconst 0; B.Aaload { len_site = 1; elem_site = 2 }; B.Pop;
      B.Spec_load { site = 2; distance = 0; reg = 0 };
      B.Prefetch_indirect { reg = 0; offset = 8; guarded = true };
      B.Return;
    |]
  in
  let m =
    C.make_method ~method_id:0 ~method_name:"T.main" ~arity:0
      ~returns_value:false ~max_locals:4 ~code
  in
  m.C.n_pref_regs <- 1;
  let program =
    {
      C.classes = [| point_class |];
      methods = [| m |];
      statics = [||];
      entry = 0;
    }
  in
  let interp = Vm.Interp.create Memsim.Config.pentium4 program in
  ignore (Vm.Interp.run interp);
  let stats = Vm.Interp.stats interp in
  (* the spec_load returned Ref point, so the indirect guarded prefetch
     also executed: two guarded loads in total *)
  Alcotest.(check int) "spec_load + indirect guarded" 2
    stats.Memsim.Stats.guarded_loads

let test_interp_statics () =
  let source =
    {|
class G {
  static int counter;
  static void main() {
    G.counter = 5;
    G.counter = G.counter + 2;
    print(G.counter);
  }
}
|}
  in
  Alcotest.(check string) "statics" "7\n" (Helpers.output_of source)

let test_interp_compile_hook_receives_args () =
  let captured = ref None in
  let source =
    {|
class K {
  static int twice(int x) { return x + x; }
  static void main() {
    int acc = 0;
    for (int i = 0; i < 5; i = i + 1) { acc = acc + K.twice(21); }
    print(acc);
  }
}
|}
  in
  let program = Helpers.compile source in
  let interp = Vm.Interp.create Memsim.Config.pentium4 program in
  Vm.Interp.set_compile_hook interp (fun _ m args ->
      if m.C.method_name = "K.twice" then captured := Some (Array.copy args));
  ignore (Vm.Interp.run interp);
  match !captured with
  | Some [| V.Int 21 |] -> ()
  | Some args ->
      Alcotest.failf "unexpected args: %s"
        (String.concat "," (Array.to_list args |> List.map V.to_string))
  | None -> Alcotest.fail "hook never fired for K.twice"

let test_classfile_reset () =
  let program =
    Helpers.compile "class A { static void main() { print(1); } }"
  in
  let m = program.C.methods.(program.C.entry) in
  m.C.compiled <- true;
  m.C.invocations <- 10;
  let original_len = Array.length m.C.code in
  m.C.code <- [| B.Return |];
  C.reset_program program;
  Alcotest.(check bool) "not compiled" false m.C.compiled;
  Alcotest.(check int) "invocations zeroed" 0 m.C.invocations;
  Alcotest.(check int) "code restored" original_len (Array.length m.C.code)

let suite =
  [
    ("heap: 2003-style layout", `Quick, test_heap_layout);
    ("heap: field read/write", `Quick, test_heap_field_rw);
    ("heap: array read/write", `Quick, test_heap_array_rw);
    ("heap: value_at address map", `Quick, test_heap_value_at);
    ("heap: out of memory", `Quick, test_heap_out_of_memory);
    ("heap: compaction slides in order", `Quick,
     test_heap_compact_slides_in_order);
    Helpers.qtest prop_heap_addresses_ascending;
    Helpers.qtest prop_value_at_roundtrip;
    ("gc: reclaims garbage, keeps reachable", `Quick, test_gc_reclaims_garbage);
    ("gc: collects cycles", `Quick, test_gc_handles_cycles);
    ("gc: compaction preserves strides", `Quick, test_gc_preserves_strides);
    ("frame: push/pop/underflow", `Quick, test_frame_push_pop);
    ("frame: arguments land in locals", `Quick, test_frame_args_in_locals);
    ("bytecode: load sites", `Quick, test_bytecode_sites);
    ("bytecode: branch helpers", `Quick, test_bytecode_branch_helpers);
    ("bytecode: printer is total", `Quick, test_bytecode_printer_total);
    ("interp: arithmetic", `Quick, test_interp_arith);
    ("interp: division by zero", `Quick, test_interp_division_by_zero);
    ("interp: branches", `Quick, test_interp_branches);
    ("interp: arrays and bounds checks", `Quick, test_interp_arrays_and_bounds);
    ("interp: null dereference", `Quick, test_interp_null_deref);
    ("interp: GC triggered under pressure", `Quick, test_interp_gc_triggered);
    ("interp: load sites observed", `Quick, test_interp_site_addresses_recorded);
    ("interp: prefetch pseudo-instructions", `Quick,
     test_interp_prefetch_instructions);
    ("interp: spec_load reads the future pointer", `Quick,
     test_interp_spec_load_reads_pointer);
    ("interp: statics", `Quick, test_interp_statics);
    ("interp: compile hook gets actual arguments", `Quick,
     test_interp_compile_hook_receives_args);
    ("classfile: reset_program", `Quick, test_classfile_reset);
  ]

(* --- model-based property test: GC reachability --------------------------- *)

(* Build a random object graph, pick random roots, collect, and check the
   survivor set is exactly the reachable set with all values intact. *)
let prop_gc_exact_reachability =
  QCheck.Test.make ~name:"gc keeps exactly the reachable objects" ~count:60
    QCheck.(
      pair
        (int_range 1 40) (* object count *)
        (pair (list_of_size Gen.(0 -- 80) (pair small_nat small_nat))
           (list_of_size Gen.(0 -- 5) small_nat)))
    (fun (n, (edges, root_picks)) ->
      let h = H.create () in
      let objs = Array.init n (fun i ->
          let id = H.alloc_object h point_class in
          H.set_field h id 0 (V.Int i);
          id)
      in
      (* wire edges via the 'next' field (last write wins) and remember the
         final graph *)
      let next = Array.make n None in
      List.iter
        (fun (a, b) ->
          let a = a mod n and b = b mod n in
          next.(a) <- Some b;
          H.set_field h objs.(a) 2 (V.Ref objs.(b)))
        edges;
      let roots = List.map (fun r -> r mod n) root_picks in
      (* reference reachability *)
      let reachable = Array.make n false in
      let rec mark i =
        if not reachable.(i) then begin
          reachable.(i) <- true;
          match next.(i) with Some j -> mark j | None -> ()
        end
      in
      List.iter mark roots;
      ignore
        (Vm.Gc_compact.collect h
           ~roots:(List.map (fun r -> V.Ref objs.(r)) roots));
      (* exactness + value integrity + order preservation *)
      let ok_membership =
        Array.for_all Fun.id
          (Array.mapi (fun i id -> H.exists h id = reachable.(i)) objs)
      in
      let ok_values =
        Array.for_all Fun.id
          (Array.mapi
             (fun i id ->
               (not reachable.(i)) || H.get_field h id 0 = V.Int i)
             objs)
      in
      let survivors =
        Array.to_list objs |> List.filter (H.exists h)
        |> List.map (H.base_of h)
      in
      let ok_order = List.sort compare survivors = survivors in
      ok_membership && ok_values && ok_order)

let suite = suite @ [ Helpers.qtest prop_gc_exact_reachability ]
