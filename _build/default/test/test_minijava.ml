(* Frontend tests: lexer, parser, type checker, and compiled-program
   behaviour (golden outputs through the interpreter). *)

module T = Minijava.Token

(* --- lexer --------------------------------------------------------------- *)

let tokens_of s =
  List.map (fun (sp : T.spanned) -> sp.token) (Minijava.Lexer.tokenize s)

let test_lexer_basic () =
  Alcotest.(check bool) "kinds" true
    (tokens_of "class A { int x = 42; }"
    = [
        T.Kw_class; T.Ident "A"; T.Lbrace; T.Kw_int; T.Ident "x"; T.Assign;
        T.Int_literal 42; T.Semi; T.Rbrace; T.Eof;
      ])

let test_lexer_operators () =
  Alcotest.(check bool) "two-char ops" true
    (tokens_of "<= >= == != && || << >>"
    = [ T.Le; T.Ge; T.Eq; T.Ne; T.And_and; T.Or_or; T.Shl; T.Shr; T.Eof ]);
  Alcotest.(check bool) "one-char ops" true
    (tokens_of "< > = ! & | ^ + - * / %"
    = [
        T.Lt; T.Gt; T.Assign; T.Not; T.Amp; T.Bar; T.Caret; T.Plus; T.Minus;
        T.Star; T.Slash; T.Percent; T.Eof;
      ])

let test_lexer_comments () =
  Alcotest.(check bool) "comments skipped" true
    (tokens_of "1 // line\n/* block\n * more */ 2"
    = [ T.Int_literal 1; T.Int_literal 2; T.Eof ])

let test_lexer_positions () =
  match Minijava.Lexer.tokenize "x\n  y" with
  | [ x; y; _eof ] ->
      Alcotest.(check int) "x line" 1 x.pos.line;
      Alcotest.(check int) "y line" 2 y.pos.line;
      Alcotest.(check int) "y col" 3 y.pos.col
  | _ -> Alcotest.fail "expected two tokens"

let test_lexer_errors () =
  Alcotest.(check bool) "illegal char" true
    (try
       ignore (tokens_of "a @ b");
       false
     with Minijava.Lexer.Error _ -> true);
  Alcotest.(check bool) "unterminated comment" true
    (try
       ignore (tokens_of "/* never closed");
       false
     with Minijava.Lexer.Error _ -> true)

(* --- parser -------------------------------------------------------------- *)

let parse s = Minijava.Parser.parse_string s

let test_parser_precedence () =
  let prog = parse "class A { int f() { return 1 + 2 * 3 < 4 && 5 == 6; } }" in
  match prog with
  | [ { class_methods = [ { method_body = [ { sdesc = Return (Some e); _ } ]; _ } ]; _ } ]
    -> (
      (* top must be && *)
      match e.desc with
      | Minijava.Ast.Binop (Minijava.Ast.And, l, r) -> (
          (match l.desc with
          | Minijava.Ast.Binop (Minijava.Ast.Lt, add, _) -> (
              match add.desc with
              | Minijava.Ast.Binop (Minijava.Ast.Add, _, mul) -> (
                  match mul.desc with
                  | Minijava.Ast.Binop (Minijava.Ast.Mul, _, _) -> ()
                  | _ -> Alcotest.fail "expected * under +")
              | _ -> Alcotest.fail "expected + under <")
          | _ -> Alcotest.fail "expected < under &&");
          match r.desc with
          | Minijava.Ast.Binop (Minijava.Ast.Eq, _, _) -> ()
          | _ -> Alcotest.fail "expected == as right arm")
      | _ -> Alcotest.fail "expected && at top")
  | _ -> Alcotest.fail "unexpected program shape"

let test_parser_postfix_chain () =
  let prog = parse "class A { int f(A a) { return a.b.c[0].d; } }" in
  match prog with
  | [ { class_methods = [ { method_body = [ { sdesc = Return (Some e); _ } ]; _ } ]; _ } ]
    -> (
      match e.desc with
      | Minijava.Ast.Field ({ desc = Minijava.Ast.Index ({ desc = Minijava.Ast.Field ({ desc = Minijava.Ast.Field _; _ }, "c"); _ }, _); _ }, "d")
        -> ()
      | _ -> Alcotest.fail "postfix chain shape")
  | _ -> Alcotest.fail "unexpected program shape"

let test_parser_statements () =
  let src =
    {|
class A {
  void f() {
    int x = 0;
    while (x < 10) { x = x + 1; }
    for (int i = 0; i < 3; i = i + 1) { print(i); }
    if (x == 10) { print(1); } else print(0);
    break;
    continue;
    return;
  }
}
|}
  in
  match parse src with
  | [ { class_methods = [ { method_body; _ } ]; _ } ] ->
      Alcotest.(check int) "statement count" 7 (List.length method_body)
  | _ -> Alcotest.fail "unexpected program shape"

let test_parser_constructor_vs_method () =
  let src = "class A { A() { } A clone(A a) { return a; } }" in
  match parse src with
  | [ { class_methods = [ ctor; m ]; _ } ] ->
      Alcotest.(check bool) "ctor" true ctor.is_constructor;
      Alcotest.(check string) "ctor name" "<init>" ctor.method_name;
      Alcotest.(check bool) "method" false m.is_constructor;
      Alcotest.(check string) "method name" "clone" m.method_name
  | _ -> Alcotest.fail "unexpected program shape"

let expect_parse_error src =
  try
    ignore (parse src);
    Alcotest.failf "expected parse error for %s" src
  with Minijava.Parser.Error _ -> ()

let test_parser_errors () =
  expect_parse_error "class A { int f() { return 1 + ; } }";
  expect_parse_error "class A { int f() { 1 = 2; } }";
  expect_parse_error "class A { int[][] x; }";
  expect_parse_error "class { }"

(* --- semantic analysis --------------------------------------------------- *)

let expect_type_error src =
  match Minijava.Compile.program_of_source src with
  | Error e ->
      Alcotest.(check bool) "is a type error" true
        (String.length e.message >= 4)
  | Ok _ -> Alcotest.failf "expected type error"

let test_semant_errors () =
  (* int/ref confusion *)
  expect_type_error
    "class A { static void main() { int x = null; print(x); } }";
  (* unknown field *)
  expect_type_error
    "class A { int x; static void main() { A a = new A(); print(a.y); } }";
  (* arity mismatch *)
  expect_type_error
    {|class A { int f(int x) { return x; }
       static void main() { A a = new A(); print(a.f(1, 2)); } }|};
  (* void used as value *)
  expect_type_error
    {|class A { void g() { }
       static void main() { A a = new A(); print(a.g()); } }|};
  (* undeclared variable *)
  expect_type_error "class A { static void main() { print(nope); } }";
  (* duplicate local in same scope *)
  expect_type_error
    "class A { static void main() { int x = 1; int x = 2; print(x); } }";
  (* instance method from static context *)
  expect_type_error
    {|class A { int f() { return 1; }
       static void main() { print(f()); } }|};
  (* missing main *)
  expect_type_error "class A { int f() { return 1; } }";
  (* condition must be int *)
  expect_type_error
    {|class A { static void main() { A a = new A(); if (a) { print(1); } } }|}

let test_semant_null_comparisons () =
  (* null comparisons are legal; null assignment to refs is legal *)
  let src =
    {|
class A {
  A next;
  static void main() {
    A a = new A();
    a.next = null;
    if (a.next == null) { print(1); }
    if (a == a) { print(2); }
  }
}
|}
  in
  Alcotest.(check string) "runs" "1\n2\n" (Helpers.output_of src)

(* --- behaviour (codegen + interpreter) ----------------------------------- *)

let check_output name src expected =
  Alcotest.(check string) name expected (Helpers.output_of src)

let test_behaviour_arith () =
  check_output "arith"
    {|class A { static void main() {
        print(2 + 3 * 4);
        print((2 + 3) * 4);
        print(10 / 3);
        print(10 % 3);
        print(-7);
        print(7 - -3);
        print(1 << 5);
        print(256 >> 4);
        print(12 & 10);
        print(12 | 10);
        print(12 ^ 10);
      } }|}
    "14\n20\n3\n1\n-7\n10\n32\n16\n8\n14\n6\n"

let test_behaviour_comparisons_as_values () =
  check_output "comparison values"
    {|class A { static void main() {
        int t = 3 < 5;
        int f = 5 < 3;
        print(t); print(f);
        print(!t); print(!0);
        print((1 < 2) + (3 < 4));
      } }|}
    "1\n0\n0\n1\n2\n"

let test_behaviour_short_circuit () =
  (* the right arm must not evaluate when the left decides *)
  check_output "short circuit"
    {|class A {
      static int called;
      static int effect(int v) { A.called = A.called + 1; return v; }
      static void main() {
        A.called = 0;
        if (0 == 1 && A.effect(1) == 1) { print(99); }
        print(A.called);
        if (1 == 1 || A.effect(1) == 1) { print(42); }
        print(A.called);
      } }|}
    "0\n42\n0\n"

let test_behaviour_loops () =
  check_output "loops"
    {|class A { static void main() {
        int sum = 0;
        for (int i = 0; i < 10; i = i + 1) {
          if (i == 3) { continue; }
          if (i == 8) { break; }
          sum = sum + i;
        }
        print(sum);
        int n = 5;
        int fact = 1;
        while (n > 0) { fact = fact * n; n = n - 1; }
        print(fact);
      } }|}
    "25\n120\n"

let test_behaviour_objects () =
  check_output "objects and constructors"
    {|class Pair {
        int a; int b;
        Pair(int x, int y) { a = x; b = y; }
        int sum() { return a + b; }
        void swap() { int t = a; a = b; b = t; }
      }
      class Main { static void main() {
        Pair p = new Pair(3, 9);
        print(p.sum());
        p.swap();
        print(p.a); print(p.b);
      } }|}
    "12\n9\n3\n"

let test_behaviour_arrays () =
  check_output "arrays"
    {|class A { static void main() {
        int[] xs = new int[4];
        for (int i = 0; i < xs.length; i = i + 1) { xs[i] = i * i; }
        print(xs[3]);
        print(xs.length);
        A[] objs = new A[2];
        if (objs[0] == null) { print(1); }
      } }|}
    "9\n4\n1\n"

let test_behaviour_recursion_and_bare_calls () =
  check_output "recursion"
    {|class A {
        int fib(int n) {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        static int gcd(int a, int b) {
          if (b == 0) { return a; }
          return gcd(b, a % b);
        }
        static void main() {
          A a = new A();
          print(a.fib(10));
          print(gcd(48, 18));
        } }|}
    "55\n6\n"

let test_behaviour_implicit_this_fields () =
  check_output "implicit this"
    {|class Counter {
        int n;
        Counter() { n = 0; }
        void bump() { n = n + 1; }
        int get() { return n; }
      }
      class Main { static void main() {
        Counter c = new Counter();
        c.bump(); c.bump(); c.bump();
        print(c.get());
      } }|}
    "3\n"

let test_behaviour_scoping () =
  check_output "shadowing across scopes"
    {|class A { static void main() {
        int x = 1;
        for (int i = 0; i < 2; i = i + 1) {
          int y = x * 10 + i;
          print(y);
        }
        { int z = 99; print(z); }
        print(x);
      } }|}
    "10\n11\n99\n1\n"

let test_behaviour_evaluation_order () =
  (* receiver and arguments evaluate left-to-right; new allocates before
     its arguments (JVM semantics) *)
  check_output "evaluation order"
    {|class A {
        static int trace;
        static int mark(int v) { A.trace = A.trace * 10 + v; return v; }
        static int f(int a, int b) { return a - b; }
        static void main() {
          A.trace = 0;
          print(A.f(A.mark(1), A.mark(2)));
          print(A.trace);
        } }|}
    "-1\n12\n"

let test_output_deterministic_across_machines () =
  let src =
    {|class A { static void main() {
        int acc = 0;
        for (int i = 0; i < 100; i = i + 1) { acc = acc + i * i; }
        print(acc);
      } }|}
  in
  let p4 = Helpers.output_of ~machine:Memsim.Config.pentium4 src in
  let athlon = Helpers.output_of ~machine:Memsim.Config.athlon_mp src in
  Alcotest.(check string) "machine-independent semantics" p4 athlon

(* Random arithmetic expressions: the compiled program must agree with a
   direct OCaml evaluation. Division/modulo only by non-zero constants. *)
let prop_random_expressions =
  let module A = Minijava.Ast in
  let pos = { T.line = 1; col = 1 } in
  let mk desc = { A.desc; pos } in
  let rec gen_expr depth st =
    if depth = 0 then mk (A.Int_lit (QCheck.Gen.int_range (-50) 50 st))
    else
      match QCheck.Gen.int_bound 7 st with
      | 0 -> mk (A.Int_lit (QCheck.Gen.int_range (-50) 50 st))
      | 1 -> mk (A.Unop_neg (gen_expr (depth - 1) st))
      | 2 ->
          mk
            (A.Binop (A.Div, gen_expr (depth - 1) st,
                      mk (A.Int_lit (1 + QCheck.Gen.int_bound 9 st))))
      | 3 ->
          mk
            (A.Binop (A.Rem, gen_expr (depth - 1) st,
                      mk (A.Int_lit (1 + QCheck.Gen.int_bound 9 st))))
      | n ->
          let op =
            match n with
            | 4 -> A.Add
            | 5 -> A.Sub
            | 6 -> A.Mul
            | _ -> A.Band
          in
          mk (A.Binop (op, gen_expr (depth - 1) st, gen_expr (depth - 1) st))
  in
  let rec eval (e : A.expr) =
    match e.desc with
    | A.Int_lit n -> n
    | A.Unop_neg a -> -eval a
    | A.Binop (op, a, b) -> (
        let x = eval a and y = eval b in
        match op with
        | A.Add -> x + y
        | A.Sub -> x - y
        | A.Mul -> x * y
        | A.Div -> x / y
        | A.Rem -> x mod y
        | A.Band -> x land y
        | _ -> assert false)
    | _ -> assert false
  in
  let rec render (e : A.expr) =
    match e.desc with
    | A.Int_lit n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
    | A.Unop_neg a -> Printf.sprintf "(-%s)" (render a)
    | A.Binop (op, a, b) ->
        Printf.sprintf "(%s %s %s)" (render a) (A.string_of_binop op) (render b)
    | _ -> assert false
  in
  QCheck.Test.make ~name:"random expressions evaluate like OCaml" ~count:60
    (QCheck.make (gen_expr 4))
    (fun e ->
      let source =
        Printf.sprintf "class A { static void main() { print(%s); } }"
          (render e)
      in
      Helpers.output_of source = string_of_int (eval e) ^ "\n")

let suite =
  [
    ("lexer: basic tokens", `Quick, test_lexer_basic);
    ("lexer: operators", `Quick, test_lexer_operators);
    ("lexer: comments", `Quick, test_lexer_comments);
    ("lexer: positions", `Quick, test_lexer_positions);
    ("lexer: errors", `Quick, test_lexer_errors);
    ("parser: operator precedence", `Quick, test_parser_precedence);
    ("parser: postfix chains", `Quick, test_parser_postfix_chain);
    ("parser: statements", `Quick, test_parser_statements);
    ("parser: constructor vs method", `Quick, test_parser_constructor_vs_method);
    ("parser: error positions", `Quick, test_parser_errors);
    ("semant: type errors rejected", `Quick, test_semant_errors);
    ("semant: null comparisons", `Quick, test_semant_null_comparisons);
    ("behaviour: arithmetic", `Quick, test_behaviour_arith);
    ("behaviour: comparisons as values", `Quick,
     test_behaviour_comparisons_as_values);
    ("behaviour: short-circuit evaluation", `Quick, test_behaviour_short_circuit);
    ("behaviour: loops with break/continue", `Quick, test_behaviour_loops);
    ("behaviour: objects and constructors", `Quick, test_behaviour_objects);
    ("behaviour: arrays", `Quick, test_behaviour_arrays);
    ("behaviour: recursion and bare calls", `Quick,
     test_behaviour_recursion_and_bare_calls);
    ("behaviour: implicit this fields", `Quick,
     test_behaviour_implicit_this_fields);
    ("behaviour: scoping", `Quick, test_behaviour_scoping);
    ("behaviour: evaluation order", `Quick, test_behaviour_evaluation_order);
    ("behaviour: machine-independent", `Quick,
     test_output_deterministic_across_machines);
    Helpers.qtest prop_random_expressions;
  ]

(* --- differential testing of the whole stack ----------------------------- *)

(* Generate random method bodies over (n, i, acc) and check that the
   interpreted-only execution and the fully JIT-compiled execution
   (inlining, folding, DSE, stride prefetching) print the same results. *)
let prop_random_programs_jit_equivalence =
  let gen_leaf st =
    match QCheck.Gen.int_bound 3 st with
    | 0 -> "n"
    | 1 -> "i"
    | 2 -> "acc"
    | _ -> string_of_int (QCheck.Gen.int_range (-20) 20 st)
  in
  let rec gen_expr depth st =
    if depth = 0 then gen_leaf st
    else
      match QCheck.Gen.int_bound 6 st with
      | 0 | 1 -> gen_leaf st
      | 2 ->
          Printf.sprintf "(%s / %d)" (gen_expr (depth - 1) st)
            (1 + QCheck.Gen.int_bound 7 st)
      | 3 ->
          Printf.sprintf "(%s %% %d)" (gen_expr (depth - 1) st)
            (1 + QCheck.Gen.int_bound 7 st)
      | n ->
          let op = match n with 4 -> "+" | 5 -> "-" | _ -> "*" in
          Printf.sprintf "(%s %s %s)" (gen_expr (depth - 1) st) op
            (gen_expr (depth - 1) st)
  in
  let gen_stmt st =
    match QCheck.Gen.int_bound 2 st with
    | 0 -> Printf.sprintf "acc = %s;" (gen_expr 2 st)
    | 1 ->
        Printf.sprintf "if (%s < %s) { acc = acc + %s; }" (gen_expr 1 st)
          (gen_expr 1 st) (gen_expr 1 st)
    | _ ->
        Printf.sprintf "acc = acc + helper(%s, i);" (gen_expr 1 st)
  in
  let gen_program st =
    let body =
      String.concat "\n      " (List.init 4 (fun _ -> gen_stmt st))
    in
    Printf.sprintf
      {|
class R {
  static int helper(int a, int b) { return a * 2 - b; }
  static int f(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      %s
      if (acc > 1000000) { acc = acc - 1000000; }
      if (acc < -1000000) { acc = acc + 1000000; }
    }
    return acc;
  }
  static void main() {
    print(R.f(5));
    print(R.f(13));
    print(R.f(0));
    print(R.f(30));
  }
}
|}
      body
  in
  QCheck.Test.make ~name:"random programs: interpreter == full JIT stack"
    ~count:40
    (QCheck.make gen_program)
    (fun source ->
      match Minijava.Compile.program_of_source source with
      | Error _ -> QCheck.assume_fail ()
      | Ok _ ->
          let interpreted =
            Helpers.output_of ~hot_threshold:1_000_000 source
          in
          let jitted =
            Helpers.output_of ~hot_threshold:2
              ~mode:Strideprefetch.Options.Inter_intra source
          in
          interpreted = jitted)

let suite = suite @ [ Helpers.qtest prop_random_programs_jit_equivalence ]
