(* Tests for the dynamic-compiler infrastructure: CFG, dominators, loop
   forest, abstract stack model, optimizer, pipeline. *)

module B = Vm.Bytecode

(* A hand-built doubly nested counting loop:
     0: iconst 0          ; i = 0
     1: istore 0
     2: iload 0           ; outer header
     3: iconst 10
     4: if_icmpge 16
     5: iconst 0          ; j = 0
     6: istore 1
     7: iload 1           ; inner header
     8: iconst 3
     9: if_icmpge 12
    10: ... inner body (iinc j) spread over 10..11
    12: iload 0           ; i++
    ...
    16: return *)
let nested_loop_code =
  [|
    B.Iconst 0; B.Istore 0;                                   (* 0 1 *)
    B.Iload 0; B.Iconst 10; B.If_icmp (B.Ge, 16);             (* 2 3 4 *)
    B.Iconst 0; B.Istore 1;                                   (* 5 6 *)
    B.Iload 1; B.Iconst 3; B.If_icmp (B.Ge, 12);              (* 7 8 9 *)
    B.Iload 1; B.Iconst 1;                                    (* 10 11 *)
    B.Iadd; B.Istore 1;                                       (* 12 13 — careful *)
    B.Goto 7;                                                 (* 14 *)
    B.Goto 2;                                                 (* 15 *)
    B.Return;                                                 (* 16 *)
  |]

(* The indices above drifted while writing; rebuild simply: *)
let nested_loop_code =
  ignore nested_loop_code;
  [|
    (* 0 *) B.Iconst 0;
    (* 1 *) B.Istore 0;
    (* outer header *)
    (* 2 *) B.Iload 0;
    (* 3 *) B.Iconst 10;
    (* 4 *) B.If_icmp (B.Ge, 18);
    (* 5 *) B.Iconst 0;
    (* 6 *) B.Istore 1;
    (* inner header *)
    (* 7 *) B.Iload 1;
    (* 8 *) B.Iconst 3;
    (* 9 *) B.If_icmp (B.Ge, 14);
    (* 10 *) B.Iload 1;
    (* 11 *) B.Iconst 1;
    (* 12 *) B.Iadd;
    (* 13 *) B.Goto 7;  (* oops: forgot istore — fine for CFG shape tests *)
    (* 14 *) B.Iload 0;
    (* 15 *) B.Iconst 1;
    (* 16 *) B.Iadd;
    (* 17 *) B.Goto 2;  (* missing istore as well; CFG-only fixture *)
    (* 18 *) B.Return;
  |]

(* --- cfg ----------------------------------------------------------------- *)

let test_cfg_blocks () =
  let cfg = Jit.Cfg.build nested_loop_code in
  (* leaders: 0, 2 (target), 5 (after branch), 7 (target), 10 (after
     branch), 14 (target), 18 (target) — and 14 is also after goto *)
  Alcotest.(check int) "block count" 7 (Jit.Cfg.n_blocks cfg);
  let entry = Jit.Cfg.block cfg 0 in
  Alcotest.(check (list int)) "entry succ" [ 1 ] entry.succs;
  let outer_header = Jit.Cfg.block cfg 1 in
  Alcotest.(check int) "outer header start" 2 outer_header.start_pc;
  Alcotest.(check (list int)) "outer header succs" [ 2; 6 ] outer_header.succs

let test_cfg_preds_match_succs () =
  let cfg = Jit.Cfg.build nested_loop_code in
  for b = 0 to Jit.Cfg.n_blocks cfg - 1 do
    List.iter
      (fun s ->
        if not (List.mem b (Jit.Cfg.block cfg s).preds) then
          Alcotest.failf "edge %d->%d missing reverse" b s)
      (Jit.Cfg.block cfg b).succs
  done

let test_cfg_rejects_bad_target () =
  Alcotest.(check bool) "out-of-range target rejected" true
    (try
       ignore (Jit.Cfg.build [| B.Goto 99 |]);
       false
     with Invalid_argument _ -> true)

(* --- dominators ---------------------------------------------------------- *)

let diamond =
  [|
    (* 0 *) B.Iconst 1;
    (* 1 *) B.If (B.Eq, 4);
    (* 2 *) B.Iconst 2;
    (* 3 *) B.Goto 5;
    (* 4 *) B.Iconst 3;
    (* 5 *) B.Return;
  |]

let test_dominators_diamond () =
  let cfg = Jit.Cfg.build diamond in
  let idom = Jit.Dominators.compute cfg in
  (* blocks: 0=[0,2) 1=[2,4) 2=[4,5) 3=[5,6) *)
  Alcotest.(check int) "idom entry" 0 idom.(0);
  Alcotest.(check int) "idom then" 0 idom.(1);
  Alcotest.(check int) "idom else" 0 idom.(2);
  Alcotest.(check int) "idom join" 0 idom.(3);
  Alcotest.(check bool) "entry dominates join" true
    (Jit.Dominators.dominates ~idom 0 3);
  Alcotest.(check bool) "then does not dominate join" false
    (Jit.Dominators.dominates ~idom 1 3)

let test_dominators_loop () =
  let cfg = Jit.Cfg.build nested_loop_code in
  let idom = Jit.Dominators.compute cfg in
  (* the outer header (block 1) dominates everything below it *)
  for b = 2 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "header dominates B%d" b)
      true
      (Jit.Dominators.dominates ~idom 1 b)
  done

let test_dominance_frontier_diamond () =
  let cfg = Jit.Cfg.build diamond in
  let idom = Jit.Dominators.compute cfg in
  let df = Jit.Dominators.dominance_frontier cfg ~idom in
  Alcotest.(check (list int)) "then's frontier is the join" [ 3 ] df.(1);
  Alcotest.(check (list int)) "else's frontier is the join" [ 3 ] df.(2)

(* --- loops --------------------------------------------------------------- *)

let test_loop_forest_nesting () =
  let cfg = Jit.Cfg.build nested_loop_code in
  let forest = Jit.Loops.analyze cfg in
  Alcotest.(check int) "two loops" 2 (Array.length forest.all);
  Alcotest.(check int) "one root" 1 (List.length forest.roots);
  let outer = List.hd forest.roots in
  Alcotest.(check int) "outer depth" 1 outer.depth;
  Alcotest.(check int) "one child" 1 (List.length outer.children);
  let inner = List.hd outer.children in
  Alcotest.(check int) "inner depth" 2 inner.depth;
  Alcotest.(check bool) "inner blocks inside outer" true
    (Jit.Loops.Int_set.subset inner.blocks outer.blocks)

let test_loop_postorder_inner_first () =
  let cfg = Jit.Cfg.build nested_loop_code in
  let forest = Jit.Loops.analyze cfg in
  match Jit.Loops.postorder forest with
  | [ first; second ] ->
      Alcotest.(check int) "inner first" 2 first.depth;
      Alcotest.(check int) "outer second" 1 second.depth
  | l -> Alcotest.failf "expected 2 loops, got %d" (List.length l)

let test_loop_of_pc () =
  let cfg = Jit.Cfg.build nested_loop_code in
  let forest = Jit.Loops.analyze cfg in
  (match Jit.Loops.loop_of_pc cfg forest 10 with
  | Some l -> Alcotest.(check int) "pc 10 in inner loop" 2 l.depth
  | None -> Alcotest.fail "pc 10 should be in a loop");
  (match Jit.Loops.loop_of_pc cfg forest 15 with
  | Some l -> Alcotest.(check int) "pc 15 in outer loop" 1 l.depth
  | None -> Alcotest.fail "pc 15 should be in a loop");
  Alcotest.(check bool) "pc 0 in no loop" true
    (Jit.Loops.loop_of_pc cfg forest 0 = None)

let test_no_loops () =
  let cfg = Jit.Cfg.build diamond in
  let forest = Jit.Loops.analyze cfg in
  Alcotest.(check int) "no loops" 0 (Array.length forest.all)

(* --- stack model --------------------------------------------------------- *)

(* tv.v[i] chasing: aload0 (param); getfield v; iload1; aaload; getfield f *)
let chase_code =
  [|
    (* 0 *) B.Aload 0;
    (* 1 *) B.Getfield { site = 0; offset = 8; name = "v"; is_ref = true };
    (* 2 *) B.Iload 1;
    (* 3 *) B.Aaload { len_site = 1; elem_site = 2 };
    (* 4 *) B.Getfield { site = 3; offset = 12; name = "f"; is_ref = false };
    (* 5 *) B.Ireturn;
  |]

let analyze code ~arity =
  Jit.Stack_model.analyze code ~arity
    ~callee_arity:(fun _ -> 0)
    ~callee_returns:(fun _ -> false)

let test_stack_model_chasing () =
  let infos = analyze chase_code ~arity:2 in
  let open Jit.Stack_model in
  Alcotest.(check bool) "site 0 base is param 0" true
    (infos.(0).base = Param 0);
  Alcotest.(check bool) "len site base is load 0" true
    (infos.(1).base = Load 0);
  Alcotest.(check bool) "elem site base is load 0" true
    (infos.(2).base = Load 0);
  Alcotest.(check bool) "site 3 base is the element load" true
    (infos.(3).base = Load 2);
  Alcotest.(check bool) "site 3 yields int" false infos.(3).yields_ref;
  Alcotest.(check bool) "site 0 yields ref" true infos.(0).yields_ref

let test_stack_model_through_local () =
  (* tmp = p.f; use tmp.g: dependence flows through the local *)
  let code =
    [|
      B.Aload 0;
      B.Getfield { site = 0; offset = 8; name = "f"; is_ref = true };
      B.Astore 1;
      B.Aload 1;
      B.Getfield { site = 1; offset = 12; name = "g"; is_ref = false };
      B.Ireturn;
    |]
  in
  let infos = analyze code ~arity:1 in
  Alcotest.(check bool) "through-local dependence" true
    (infos.(1).Jit.Stack_model.base = Jit.Stack_model.Load 0)

let test_stack_model_const_index_offset () =
  let code =
    [|
      B.Aload 0;
      B.Iconst 3;
      B.Aaload { len_site = 0; elem_site = 1 };
      B.Pop;
      B.Return;
    |]
  in
  let infos = analyze code ~arity:1 in
  Alcotest.(check bool) "elem offset for constant index" true
    (Jit.Stack_model.address_offset_of infos.(1) = Some (12 + (3 * 4)));
  Alcotest.(check bool) "length offset" true
    (Jit.Stack_model.address_offset_of infos.(0) = Some 8)

let test_stack_model_join_to_unknown () =
  (* two paths store different loads into the same local *)
  let code =
    [|
      (* 0 *) B.Iload 1;
      (* 1 *) B.If (B.Eq, 5);
      (* 2 *) B.Aload 0;
      (* 3 *) B.Getfield { site = 0; offset = 8; name = "a"; is_ref = true };
      (* 4 *) B.Goto 7;
      (* 5 *) B.Aload 0;
      (* 6 *) B.Getfield { site = 1; offset = 12; name = "b"; is_ref = true };
      (* 7 *) B.Astore 2;
      (* 8 *) B.Aload 2;
      (* 9 *) B.Getfield { site = 2; offset = 16; name = "c"; is_ref = false };
      (* 10 *) B.Ireturn;
    |]
  in
  let infos = analyze code ~arity:2 in
  Alcotest.(check bool) "join of two loads is unknown" true
    (infos.(2).Jit.Stack_model.base = Jit.Stack_model.Unknown)

(* --- optimizer ----------------------------------------------------------- *)

let test_fold_constants () =
  let code =
    [| B.Iconst 6; B.Iconst 7; B.Imul; B.Print; B.Return |]
  in
  let folded = Jit.Optimize.fold_constants code in
  Alcotest.(check int) "shorter" 3 (Array.length folded);
  Alcotest.(check bool) "folded to 42" true (folded.(0) = B.Iconst 42)

let test_fold_identities () =
  let code = [| B.Iload 0; B.Iconst 0; B.Iadd; B.Print; B.Return |] in
  let folded = Jit.Optimize.fold_constants code in
  Alcotest.(check int) "identity removed" 3 (Array.length folded)

let test_fold_preserves_targets () =
  (* goto over a foldable pair: the target must follow the fold *)
  let code =
    [|
      (* 0 *) B.Goto 3;
      (* 1 *) B.Iconst 1;
      (* 2 *) B.Print;
      (* 3 *) B.Iconst 2; (* target *)
      (* 4 *) B.Iconst 3;
      (* 5 *) B.Iadd;
      (* 6 *) B.Print;
      (* 7 *) B.Return;
    |]
  in
  let folded = Jit.Optimize.fold_constants code in
  (match folded.(0) with
  | B.Goto t ->
      Alcotest.(check bool) "target lands on folded iconst" true
        (folded.(t) = B.Iconst 5)
  | _ -> Alcotest.fail "expected goto");
  (* and running it prints only 5 *)
  let interp = Helpers.run_program (Helpers.program_of_code folded) in
  Alcotest.(check string) "behaviour" "5\n" (Vm.Interp.output interp)

let test_remove_unreachable () =
  let code =
    [|
      (* 0 *) B.Goto 3;
      (* 1 *) B.Iconst 9;
      (* 2 *) B.Print;
      (* 3 *) B.Return;
    |]
  in
  let out = Jit.Optimize.remove_unreachable code in
  Alcotest.(check int) "dead code dropped" 2 (Array.length out)

let test_peephole () =
  let code = [| B.Iconst 1; B.Dup; B.Pop; B.Print; B.Return |] in
  let out = Jit.Optimize.peephole code in
  Alcotest.(check int) "dup;pop removed" 3 (Array.length out);
  let goto_next = [| B.Goto 1; B.Return |] in
  Alcotest.(check int) "goto-to-next removed" 1
    (Array.length (Jit.Optimize.peephole goto_next))

let test_simplify_preserves_semantics () =
  (* run a real program both with the method bodies simplified and not *)
  let source =
    {|
class S {
  static int f(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      acc = acc + i * (3 + 4) + (0 + i);
      if (acc > 100) { acc = acc - 100; }
    }
    return acc;
  }
  static void main() {
    print(S.f(17));
    print(S.f(0));
  }
}
|}
  in
  let plain = Helpers.compile source in
  let expected =
    Vm.Interp.output (Helpers.run_program ~hot_threshold:1000 plain)
  in
  let optimized = Helpers.compile source in
  Array.iter
    (fun (m : Vm.Classfile.method_info) ->
      m.code <- Jit.Optimize.simplify m.code)
    optimized.methods;
  let got =
    Vm.Interp.output (Helpers.run_program ~hot_threshold:1000 optimized)
  in
  Alcotest.(check string) "same output" expected got

let prop_compact_identity =
  QCheck.Test.make ~name:"compact of all-Some is the identity" ~count:50
    QCheck.(list_of_size Gen.(1 -- 20) (int_bound 100))
    (fun ints ->
      let code =
        Array.of_list (List.map (fun n -> B.Iconst n) ints @ [ B.Return ])
      in
      Jit.Optimize.compact (Array.map Option.some code) = code)

(* --- pipeline ------------------------------------------------------------ *)

let test_pipeline_timings () =
  let program =
    Helpers.compile
      {|
class P {
  static int f(int x) {
    int acc = 0;
    for (int i = 0; i < x; i = i + 1) { acc = acc + i; }
    return acc;
  }
  static void main() { print(P.f(3) + P.f(4) + P.f(5)); }
}
|}
  in
  let pipeline = Jit.Pipeline.create (Jit.Pipeline.standard_passes ()) in
  let interp = Vm.Interp.create Memsim.Config.pentium4 program in
  Vm.Interp.set_compile_hook interp (fun _ m args ->
      Jit.Pipeline.compile pipeline m args);
  ignore (Vm.Interp.run interp);
  Alcotest.(check int) "one method compiled" 1
    (Jit.Pipeline.methods_compiled pipeline);
  Alcotest.(check bool) "timings recorded" true
    (Jit.Pipeline.total_seconds pipeline > 0.0);
  Alcotest.(check (list string))
    "pass names" [ "analysis"; "simplify"; "dse" ]
    (Jit.Pipeline.pass_names pipeline);
  Alcotest.(check string) "program still correct" "19\n"
    (Vm.Interp.output interp)

let suite =
  [
    ("cfg: block structure", `Quick, test_cfg_blocks);
    ("cfg: preds match succs", `Quick, test_cfg_preds_match_succs);
    ("cfg: rejects bad branch target", `Quick, test_cfg_rejects_bad_target);
    ("dominators: diamond", `Quick, test_dominators_diamond);
    ("dominators: loop header dominates body", `Quick, test_dominators_loop);
    ("dominators: dominance frontier", `Quick, test_dominance_frontier_diamond);
    ("loops: nesting forest", `Quick, test_loop_forest_nesting);
    ("loops: postorder inner-first", `Quick, test_loop_postorder_inner_first);
    ("loops: loop_of_pc", `Quick, test_loop_of_pc);
    ("loops: acyclic code has none", `Quick, test_no_loops);
    ("stack model: reference chasing", `Quick, test_stack_model_chasing);
    ("stack model: dependence through locals", `Quick,
     test_stack_model_through_local);
    ("stack model: constant-index element offset", `Quick,
     test_stack_model_const_index_offset);
    ("stack model: joins lose precision safely", `Quick,
     test_stack_model_join_to_unknown);
    ("optimize: constant folding", `Quick, test_fold_constants);
    ("optimize: arithmetic identities", `Quick, test_fold_identities);
    ("optimize: folding preserves branch targets", `Quick,
     test_fold_preserves_targets);
    ("optimize: unreachable code elimination", `Quick, test_remove_unreachable);
    ("optimize: peephole", `Quick, test_peephole);
    ("optimize: simplify preserves semantics", `Quick,
     test_simplify_preserves_semantics);
    Helpers.qtest prop_compact_identity;
    ("pipeline: timings and correctness", `Quick, test_pipeline_timings);
  ]

(* --- inliner ------------------------------------------------------------- *)

let inline_source =
  {|
class Vec3 {
  int x; int y; int z;
  Vec3(int a, int b, int c) { x = a; y = b; z = c; }
  int norm1() { return x + y + z; }
  int scaled(int k) { return (x + y + z) * k; }
}
class K {
  static int sum(Vec3[] vs) {
    int acc = 0;
    for (int i = 0; i < vs.length; i = i + 1) {
      acc = acc + vs[i].norm1() + vs[i].scaled(2);
    }
    return acc;
  }
  static void main() {
    Vec3[] vs = new Vec3[200];
    for (int i = 0; i < 200; i = i + 1) { vs[i] = new Vec3(i, i + 1, i + 2); }
    print(K.sum(vs));
    print(K.sum(vs));
  }
}
|}

let expand_all program =
  Array.iter
    (fun (m : Vm.Classfile.method_info) ->
      ignore (Jit.Inline.expand ~program m))
    program.Vm.Classfile.methods

let test_inline_preserves_semantics () =
  let plain = Helpers.compile inline_source in
  let expected =
    Vm.Interp.output (Helpers.run_program ~hot_threshold:1_000_000 plain)
  in
  let inlined = Helpers.compile inline_source in
  expand_all inlined;
  let got =
    Vm.Interp.output (Helpers.run_program ~hot_threshold:1_000_000 inlined)
  in
  Alcotest.(check string) "output preserved" expected got

let test_inline_removes_calls () =
  let program = Helpers.compile inline_source in
  let m = Option.get (Vm.Classfile.find_method program "K.sum") in
  let count_invokes code =
    Array.fold_left
      (fun acc i ->
        match i with Vm.Bytecode.Invoke _ -> acc + 1 | _ -> acc)
      0 code
  in
  Alcotest.(check int) "two call sites before" 2 (count_invokes m.code);
  Alcotest.(check bool) "something inlined" true
    (Jit.Inline.expand ~program m);
  Alcotest.(check int) "no call sites after" 0 (count_invokes m.code);
  (* site ids must remain unique and dense enough for count_sites *)
  let sites =
    Array.to_list m.code |> List.concat_map Vm.Bytecode.all_sites
  in
  Alcotest.(check int) "sites unique"
    (List.length sites)
    (List.length (List.sort_uniq compare sites));
  Alcotest.(check bool) "n_sites covers all" true
    (List.for_all (fun s -> s < m.n_sites) sites)

let test_inline_skips_recursive_and_allocating () =
  let source =
    {|
class K {
  static int fact(int n) { if (n <= 1) { return 1; } return n * K.fact(n - 1); }
  static int[] make(int n) { return new int[n]; }
  static int drive() {
    int acc = 0;
    for (int i = 1; i < 5; i = i + 1) {
      acc = acc + K.fact(i) + K.make(i).length;
    }
    return acc;
  }
  static void main() { print(K.drive()); }
}
|}
  in
  let program = Helpers.compile source in
  let m = Option.get (Vm.Classfile.find_method program "K.drive") in
  Alcotest.(check bool) "nothing eligible" false
    (Jit.Inline.expand ~program m)

let test_inline_enables_prefetching () =
  (* the loop's loads hide behind the getter: without inlining the prefetch
     pass sees only an invoke; with inlining it finds the strides *)
  let source =
    {|
class Cell {
  int v; int p0; int p1; int p2; int p3; int p4;
  int p5; int p6; int p7; int p8; int p9; int pa;
  int pb; int pc; int pd; int pe; int pf; int pg;
  Cell(int x) { v = x;
    p0 = 0; p1 = 0; p2 = 0; p3 = 0; p4 = 0; p5 = 0; p6 = 0; p7 = 0;
    p8 = 0; p9 = 0; pa = 0; pb = 0; pc = 0; pd = 0; pe = 0; pf = 0; pg = 0; }
  int get() { return v; }
}
class K {
  static int sum(Cell[] cs) {
    int acc = 0;
    for (int i = 0; i < cs.length; i = i + 1) {
      acc = acc + cs[i].get();
    }
    return acc;
  }
  static void main() {
    Cell[] cs = new Cell[400];
    for (int i = 0; i < 400; i = i + 1) { cs[i] = new Cell(i); }
    int acc = 0;
    for (int r = 0; r < 4; r = r + 1) { acc = (acc + K.sum(cs)) % 65536; }
    print(acc);
  }
}
|}
  in
  let run ~with_inline =
    let program = Helpers.compile source in
    let opts = Strideprefetch.Options.default in
    let interp = Vm.Interp.create Memsim.Config.pentium4 program in
    let passes =
      (if with_inline then [ Jit.Inline.pass ~program () ] else [])
      @ Jit.Pipeline.standard_passes ()
      @ [ Strideprefetch.Pass.make_pass ~opts ~interp () ]
    in
    let pipeline = Jit.Pipeline.create passes in
    Vm.Interp.set_compile_hook interp (fun _ m args ->
        Jit.Pipeline.compile pipeline m args);
    ignore (Vm.Interp.run interp);
    let m = Option.get (Vm.Classfile.find_method program "K.sum") in
    let prefetches =
      Array.fold_left
        (fun acc i ->
          match i with
          | Vm.Bytecode.Prefetch_inter _ | Vm.Bytecode.Spec_load _
          | Vm.Bytecode.Prefetch_indirect _ ->
              acc + 1
          | _ -> acc)
        0 m.code
    in
    (Vm.Interp.output interp, prefetches)
  in
  let out_plain, prefetches_plain = run ~with_inline:false in
  let out_inlined, prefetches_inlined = run ~with_inline:true in
  Alcotest.(check string) "outputs agree" out_plain out_inlined;
  Alcotest.(check int) "no prefetch without inlining" 0 prefetches_plain;
  Alcotest.(check bool) "prefetch appears after inlining" true
    (prefetches_inlined > 0)

let inline_suite =
  [
    ("inline: preserves semantics", `Quick, test_inline_preserves_semantics);
    ("inline: removes call sites, renumbers sites", `Quick,
     test_inline_removes_calls);
    ("inline: skips recursive and allocating callees", `Quick,
     test_inline_skips_recursive_and_allocating);
    ("inline: exposes loads to the prefetch pass", `Quick,
     test_inline_enables_prefetching);
  ]

let suite = suite @ inline_suite

(* --- liveness ------------------------------------------------------------ *)

let test_liveness_straightline () =
  let code =
    [|
      (* 0 *) B.Iconst 1;
      (* 1 *) B.Istore 0;
      (* 2 *) B.Iload 0;
      (* 3 *) B.Print;
      (* 4 *) B.Return;
    |]
  in
  let l = Jit.Liveness.analyze code in
  Alcotest.(check bool) "local 0 live after the store" true
    (Jit.Liveness.Int_set.mem 0 (Jit.Liveness.live_out l 1));
  Alcotest.(check bool) "local 0 dead after its last use" false
    (Jit.Liveness.Int_set.mem 0 (Jit.Liveness.live_out l 2))

let test_liveness_loop_carried () =
  (* i is read at the loop head after being written at the bottom: it must
     be live across the back edge *)
  let code =
    [|
      (* 0 *) B.Iconst 0;
      (* 1 *) B.Istore 0;
      (* 2 *) B.Iload 0;
      (* 3 *) B.Iconst 10;
      (* 4 *) B.If_icmp (B.Ge, 10);
      (* 5 *) B.Iload 0;
      (* 6 *) B.Iconst 1;
      (* 7 *) B.Iadd;
      (* 8 *) B.Istore 0;
      (* 9 *) B.Goto 2;
      (* 10 *) B.Return;
    |]
  in
  let l = Jit.Liveness.analyze code in
  Alcotest.(check bool) "live across the back edge" true
    (Jit.Liveness.Int_set.mem 0 (Jit.Liveness.live_out l 8))

let test_dead_store_elimination () =
  let code =
    [|
      (* 0 *) B.Iconst 7;
      (* 1 *) B.Istore 3;  (* never read again: dead *)
      (* 2 *) B.Iconst 1;
      (* 3 *) B.Print;
      (* 4 *) B.Return;
    |]
  in
  let out = Jit.Liveness.eliminate_dead_stores code in
  Alcotest.(check bool) "dead store became pop" true (out.(1) = B.Pop);
  let interp = Helpers.run_program (Helpers.program_of_code out) in
  Alcotest.(check string) "still behaves" "1\n" (Vm.Interp.output interp)

let test_dse_preserves_semantics () =
  let source =
    {|
class S {
  static int f(int n) {
    int waste = n * 3;
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      int tmp = acc + i;
      acc = tmp;
      waste = tmp * 2;
    }
    return acc;
  }
  static void main() { print(S.f(10)); print(S.f(0)); }
}
|}
  in
  let plain = Helpers.compile source in
  let expected =
    Vm.Interp.output (Helpers.run_program ~hot_threshold:1000 plain)
  in
  let optimized = Helpers.compile source in
  Array.iter
    (fun (m : Vm.Classfile.method_info) ->
      m.code <- Jit.Liveness.eliminate_dead_stores m.code)
    optimized.methods;
  let got =
    Vm.Interp.output (Helpers.run_program ~hot_threshold:1000 optimized)
  in
  Alcotest.(check string) "same output" expected got

let liveness_suite =
  [
    ("liveness: straight-line", `Quick, test_liveness_straightline);
    ("liveness: loop-carried", `Quick, test_liveness_loop_carried);
    ("liveness: dead store elimination", `Quick, test_dead_store_elimination);
    ("liveness: DSE preserves semantics", `Quick, test_dse_preserves_semantics);
  ]

let suite = suite @ liveness_suite

(* --- verifier ------------------------------------------------------------ *)

let verify_program source =
  let program = Helpers.compile source in
  Array.iter (Jit.Verify.check_exn ~program) program.methods;
  program

let test_verify_accepts_frontend_output () =
  (* everything the frontend emits must verify, before and after the
     whole optimization stack *)
  let program = verify_program Test_strideprefetch.quickstart_source in
  let opts = Strideprefetch.Options.default in
  let interp = Vm.Interp.create Memsim.Config.pentium4 program in
  let pipeline =
    Jit.Pipeline.create
      ([ Jit.Inline.pass ~program () ]
      @ Jit.Pipeline.standard_passes ()
      @ [ Strideprefetch.Pass.make_pass ~opts ~interp () ])
  in
  Vm.Interp.set_compile_hook interp (fun _ m args ->
      Jit.Pipeline.compile pipeline m args);
  ignore (Vm.Interp.run interp);
  Array.iter (Jit.Verify.check_exn ~program) program.methods

let test_verify_rejects_malformed () =
  let program = Helpers.compile "class A { static void main() { print(1); } }" in
  let expect_error code =
    let m =
      Vm.Classfile.make_method ~method_id:0 ~method_name:"T.bad" ~arity:0
        ~returns_value:false ~max_locals:2 ~code
    in
    match Jit.Verify.check ~program m with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "malformed body accepted"
  in
  (* branch out of range *)
  expect_error [| B.Goto 99 |];
  (* stack underflow *)
  expect_error [| B.Iadd; B.Return |];
  (* falls off the end *)
  expect_error [| B.Iconst 1; B.Pop |];
  (* inconsistent join: one path pushes, the other does not *)
  expect_error
    [|
      (* 0 *) B.Iconst 0;
      (* 1 *) B.If (B.Eq, 3);
      (* 2 *) B.Iconst 5;
      (* 3 *) B.Return;
    |];
  (* local out of bounds *)
  expect_error [| B.Iload 7; B.Pop; B.Return |];
  (* prefetch register out of bounds *)
  expect_error
    [| B.Prefetch_indirect { reg = 0; offset = 8; guarded = false }; B.Return |]

let test_verify_all_workloads () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let program = Workloads.Workload.compile w in
      Array.iter (Jit.Verify.check_exn ~program) program.methods)
    (Workloads.Specjvm.all @ Workloads.Javagrande.all)

let verify_suite =
  [
    ("verify: accepts frontend + optimized output", `Quick,
     test_verify_accepts_frontend_output);
    ("verify: rejects malformed bodies", `Quick, test_verify_rejects_malformed);
    ("verify: all workloads verify", `Quick, test_verify_all_workloads);
  ]

let suite = suite @ verify_suite
