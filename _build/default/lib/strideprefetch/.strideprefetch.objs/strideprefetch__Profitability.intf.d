lib/strideprefetch/profitability.mli: Vm
