lib/strideprefetch/codegen.ml: Array Hashtbl Jit Ldg List Memsim Option Options Profitability Stride Vm
