lib/strideprefetch/options.mli: Memsim
