lib/strideprefetch/ldg.mli: Format Jit
