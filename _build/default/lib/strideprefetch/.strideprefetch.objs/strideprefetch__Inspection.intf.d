lib/strideprefetch/inspection.mli: Jit Options Vm
