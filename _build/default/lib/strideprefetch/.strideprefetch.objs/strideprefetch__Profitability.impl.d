lib/strideprefetch/profitability.ml: Array List Vm
