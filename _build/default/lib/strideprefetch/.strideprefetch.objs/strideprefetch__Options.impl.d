lib/strideprefetch/options.ml: Memsim
