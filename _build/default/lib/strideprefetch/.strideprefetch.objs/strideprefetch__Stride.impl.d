lib/strideprefetch/stride.ml: Format Hashtbl List Option Options
