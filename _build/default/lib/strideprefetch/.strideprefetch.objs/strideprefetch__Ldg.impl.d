lib/strideprefetch/ldg.ml: Array Buffer Format Hashtbl Jit List Printf String
