lib/strideprefetch/inspection.ml: Array Hashtbl Jit List Option Options Vm
