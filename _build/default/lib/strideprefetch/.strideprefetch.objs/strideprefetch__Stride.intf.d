lib/strideprefetch/stride.mli: Format Options
