lib/strideprefetch/pass.mli: Codegen Format Jit Options Stride Vm
