lib/strideprefetch/pass.ml: Array Codegen Format Hashtbl Inspection Jit Ldg List Option Options Printf Stride String Vm
