lib/strideprefetch/codegen.mli: Ldg Memsim Options Stride Vm
