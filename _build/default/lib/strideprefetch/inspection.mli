(** Object inspection (Section 3.2): ultra-lightweight dynamic profiling by
    side-effect-free partial interpretation at compile time.

    The method is interpreted from its entry with the {e actual argument
    values} of the triggering invocation. The target loop's body is
    interpreted up to [opts.inspect_iterations] times, recording the
    effective address of every load site per iteration. The interpretation
    is free of visible side effects:

    - stores into objects and statics go to a private write log that
      subsequent loads consult first;
    - allocations go to a private bump-allocated shadow heap placed above
      the real heap's limit (so co-allocation produces the same strides a
      real bump allocator would);
    - operands that cannot be determined become [unknown] and poison
      whatever consumes them; an unknown branch condition falls through;
    - method invocations are skipped, their results unknown — unless
      [opts.inspect_calls] enables the inter-procedural extension the
      paper discusses, in which case callees are interpreted in frames
      that share the sandbox (write log, shadow heap, step budget), with
      their own loops bounded and nesting limited to
      [opts.max_call_depth];
    - a loop encountered before the target is interpreted once; a
      non-promotable loop nested inside the target is force-exited after
      [opts.small_trip_count] iterations per entry;
    - a hard step budget bounds the whole interpretation.

    The result also reports whether the target loop exited naturally
    before the iteration budget — how the algorithm "detects that a loop
    has a small trip count when it is performing object inspection". *)

type result = {
  per_site : (int * int) list array;
      (** per load site: [(iteration, address)] records, execution order *)
  iterations : int;  (** target-loop iterations begun *)
  natural_exit : bool;  (** target loop exited before the budget *)
  steps : int;  (** instructions partially interpreted *)
}

val inspect :
  program:Vm.Classfile.program ->
  heap:Vm.Heap.t ->
  globals:(int -> Vm.Value.t) ->
  opts:Options.t ->
  cfg:Jit.Cfg.t ->
  forest:Jit.Loops.forest ->
  target:Jit.Loops.loop ->
  meth:Vm.Classfile.method_info ->
  args:Vm.Value.t array ->
  result
(** [cfg] and [forest] must describe [meth.code]. [args] are the actual
    argument values of the hot invocation. The real [heap] and [globals]
    are read, never written. *)
