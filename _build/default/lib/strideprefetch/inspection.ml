module B = Vm.Bytecode
module C = Vm.Classfile
module V = Vm.Value

type result = {
  per_site : (int * int) list array;
  iterations : int;
  natural_exit : bool;
  steps : int;
}

(* Abstract values: concrete ints, references into the real heap,
   references into the inspection-private heap, null, or unknown. *)
type av = AInt of int | AReal of int | APriv of int | ANull | AUnknown

type priv_contents = Pobject of av array | Parray of av array

type priv_obj = { pbase : int; pcontents : priv_contents }

type state = {
  program : C.program;
  heap : Vm.Heap.t;
  globals : int -> V.t;
  opts : Options.t;
  code : B.instr array;
  cfg : Jit.Cfg.t;
  forest : Jit.Loops.forest;
  target : Jit.Loops.loop option;
      (** [None] in callee frames of inter-procedural inspection *)
  call_depth : int;
  locals : av array;
  mutable stack : av list;
  mutable pc : int;
  (* tables shared between the target frame and its callees *)
  write_log : (int, av) Hashtbl.t;
  static_log : (int, av) Hashtbl.t;
  priv : (int, priv_obj) Hashtbl.t;
  priv_next_id : int ref;
  priv_next_addr : int ref;
  analyses : (int, Jit.Cfg.t * Jit.Loops.forest) Hashtbl.t;
      (** per-callee CFG/loop cache (inter-procedural mode) *)
  steps : int ref;  (** the step budget is global to one inspection *)
  per_site : (int * int) list array;
  backedge_counts : (int, int) Hashtbl.t;  (** per non-target loop *)
  mutable iteration : int;
  mutable entered_target : bool;
  mutable natural_exit : bool;
  mutable return_value : av option;
  mutable running : bool;
}

let of_value = function
  | V.Int n -> AInt n
  | V.Ref id -> AReal id
  | V.Null -> ANull

let push st v = st.stack <- v :: st.stack

let pop st =
  match st.stack with
  | v :: rest ->
      st.stack <- rest;
      v
  | [] ->
      (* Malformed bytecode cannot crash compilation: give up gracefully. *)
      st.running <- false;
      AUnknown

let pop2 st =
  let b = pop st in
  let a = pop st in
  (a, b)

let record st ~site ~addr =
  if st.entered_target then
    st.per_site.(site) <- (st.iteration, addr) :: st.per_site.(site)

let slot_of_offset offset = (offset - C.header_bytes) / C.slot_bytes

(* Read through the write log first, then the real heap. *)
let read_real st ~addr ~fallback =
  match Hashtbl.find_opt st.write_log addr with
  | Some v -> v
  | None -> of_value (fallback ())

let priv_find st id = Hashtbl.find_opt st.priv id

let priv_alloc st ~slots ~size contents_of =
  let id = !(st.priv_next_id) in
  st.priv_next_id := id + 1;
  let obj = { pbase = !(st.priv_next_addr); pcontents = contents_of slots } in
  st.priv_next_addr := !(st.priv_next_addr) + size;
  Hashtbl.replace st.priv id obj;
  APriv id

(* Known equality for reference comparisons; [None] when undecidable. *)
let ref_equal a b =
  match (a, b) with
  | AReal x, AReal y -> Some (x = y)
  | APriv x, APriv y -> Some (x = y)
  | ANull, ANull -> Some true
  | (AReal _ | APriv _), ANull | ANull, (AReal _ | APriv _) -> Some false
  | AReal _, APriv _ | APriv _, AReal _ -> Some false
  | (AUnknown | AInt _), _ | _, (AUnknown | AInt _) -> None

let int_compare (c : B.cmp) a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Ge -> a >= b
  | Gt -> a > b
  | Le -> a <= b

(* The innermost loop whose header is the block of [tpc] and whose body
   contains the block of [spc]; backward branches always target a loop
   header of a containing loop when they are back edges. *)
let loop_of_backedge st ~spc ~tpc =
  let hb = st.cfg.block_of_pc.(tpc) in
  let sb = st.cfg.block_of_pc.(spc) in
  Array.to_list st.forest.all
  |> List.filter (fun (l : Jit.Loops.loop) ->
         l.header = hb && Jit.Loops.Int_set.mem sb l.blocks)
  |> function
  | [] -> None
  | l :: ls ->
      Some
        (List.fold_left
           (fun best (l : Jit.Loops.loop) ->
             if l.depth > best.Jit.Loops.depth then l else best)
           l ls)

let contains (outer : Jit.Loops.loop) (inner : Jit.Loops.loop) =
  Jit.Loops.Int_set.subset inner.blocks outer.blocks

(* Decide whether to take a branch to [tpc] from [spc]; enforces the
   iteration budget of the target loop and the caps on other loops. *)
let take_branch st ~spc ~tpc =
  if tpc > spc then begin
    st.pc <- tpc;
    true
  end
  else
    match loop_of_backedge st ~spc ~tpc with
    | None ->
        st.pc <- tpc;
        true
    | Some l
      when match st.target with
           | Some target -> l.loop_id = target.loop_id
           | None -> false ->
        st.iteration <- st.iteration + 1;
        (* A new target iteration re-arms the caps of loops nested in the
           target body. *)
        Hashtbl.reset st.backedge_counts;
        if st.iteration >= st.opts.inspect_iterations then begin
          st.running <- false;
          false
        end
        else begin
          st.pc <- tpc;
          true
        end
    | Some l ->
        let cap =
          match st.target with
          | None ->
              (* callee frame: every loop is bounded *)
              st.opts.small_trip_count
          | Some target ->
              if contains l target then 1
              else if contains target l then st.opts.small_trip_count
              else 1
        in
        let count =
          Option.value ~default:0 (Hashtbl.find_opt st.backedge_counts l.loop_id)
        in
        if count >= cap then false
        else begin
          Hashtbl.replace st.backedge_counts l.loop_id (count + 1);
          st.pc <- tpc;
          true
        end

let getfield st ~site ~offset =
  match pop st with
  | AReal id when Vm.Heap.exists st.heap id ->
      let addr = Vm.Heap.base_of st.heap id + offset in
      record st ~site ~addr;
      let slot = slot_of_offset offset in
      push st
        (read_real st ~addr ~fallback:(fun () ->
             Vm.Heap.get_field st.heap id slot))
  | APriv id -> (
      match priv_find st id with
      | Some { pbase; pcontents = Pobject fields } ->
          record st ~site ~addr:(pbase + offset);
          let slot = slot_of_offset offset in
          if slot >= 0 && slot < Array.length fields then push st fields.(slot)
          else push st AUnknown
      | Some _ | None -> push st AUnknown)
  | AReal _ | ANull | AInt _ | AUnknown -> push st AUnknown

let putfield st ~offset =
  let v = pop st in
  match pop st with
  | AReal id when Vm.Heap.exists st.heap id ->
      Hashtbl.replace st.write_log (Vm.Heap.base_of st.heap id + offset) v
  | APriv id -> (
      match priv_find st id with
      | Some { pcontents = Pobject fields; _ } ->
          let slot = slot_of_offset offset in
          if slot >= 0 && slot < Array.length fields then fields.(slot) <- v
      | Some _ | None -> ())
  | AReal _ | ANull | AInt _ | AUnknown -> ()

(* Length and base address of an abstract array, when known. *)
let array_view st base =
  match base with
  | AReal id when Vm.Heap.exists st.heap id && Vm.Heap.class_id_of st.heap id = None
    ->
      Some (`Real id, Vm.Heap.base_of st.heap id, Vm.Heap.array_length st.heap id)
  | APriv id -> (
      match priv_find st id with
      | Some { pbase; pcontents = Parray elems } ->
          Some (`Priv elems, pbase, Array.length elems)
      | Some _ | None -> None)
  | AReal _ | AInt _ | ANull | AUnknown -> None

let array_load st ~len_site ~elem_site =
  let base, index = pop2 st in
  match array_view st base with
  | None -> push st AUnknown
  | Some (where, base_addr, len) -> (
      record st ~site:len_site ~addr:(base_addr + C.array_length_offset);
      match index with
      | AInt i when i >= 0 && i < len -> (
          let addr = base_addr + C.array_elems_offset + (i * C.slot_bytes) in
          record st ~site:elem_site ~addr;
          match where with
          | `Real id ->
              push st
                (read_real st ~addr ~fallback:(fun () ->
                     Vm.Heap.get_elem st.heap id i))
          | `Priv elems -> push st elems.(i))
      | AInt _ | AReal _ | APriv _ | ANull | AUnknown -> push st AUnknown)

let array_store st ~len_site =
  let v = pop st in
  let base, index = pop2 st in
  match array_view st base with
  | None -> ()
  | Some (where, base_addr, len) -> (
      record st ~site:len_site ~addr:(base_addr + C.array_length_offset);
      match index with
      | AInt i when i >= 0 && i < len -> (
          let addr = base_addr + C.array_elems_offset + (i * C.slot_bytes) in
          match where with
          | `Real _ -> Hashtbl.replace st.write_log addr v
          | `Priv elems -> elems.(i) <- v)
      | AInt _ | AReal _ | APriv _ | ANull | AUnknown -> ())

let rec step st =
  let pc = st.pc in
  let instr = st.code.(pc) in
  st.pc <- pc + 1;
  let binop f =
    let a, b = pop2 st in
    push st (match (a, b) with AInt x, AInt y -> f x y | _ -> AUnknown)
  in
  let int_branch cond tpc =
    match cond with
    | Some true -> ignore (take_branch st ~spc:pc ~tpc)
    | Some false -> ()
    | None ->
        (* Unknown condition: fall through (DESIGN.md deviation note). *)
        ()
  in
  match instr with
  | B.Iconst k -> push st (AInt k)
  | B.Aconst_null -> push st ANull
  | B.Iload i | B.Aload i -> push st st.locals.(i)
  | B.Istore i | B.Astore i -> st.locals.(i) <- pop st
  | B.Dup -> (
      match st.stack with
      | v :: _ -> push st v
      | [] -> st.running <- false)
  | B.Pop -> ignore (pop st)
  | B.Iadd -> binop (fun a b -> AInt (a + b))
  | B.Isub -> binop (fun a b -> AInt (a - b))
  | B.Imul -> binop (fun a b -> AInt (a * b))
  | B.Idiv -> binop (fun a b -> if b = 0 then AUnknown else AInt (a / b))
  | B.Irem -> binop (fun a b -> if b = 0 then AUnknown else AInt (a mod b))
  | B.Ineg ->
      let v = pop st in
      push st (match v with AInt x -> AInt (-x) | _ -> AUnknown)
  | B.Iand -> binop (fun a b -> AInt (a land b))
  | B.Ior -> binop (fun a b -> AInt (a lor b))
  | B.Ixor -> binop (fun a b -> AInt (a lxor b))
  | B.Ishl -> binop (fun a b -> AInt (a lsl (b land 63)))
  | B.Ishr -> binop (fun a b -> AInt (a asr (b land 63)))
  | B.Goto tpc ->
      if not (take_branch st ~spc:pc ~tpc) then
        (* A capped loop is force-exited by falling through the goto. *)
        ()
  | B.If_icmp (c, tpc) ->
      let a, b = pop2 st in
      int_branch
        (match (a, b) with
        | AInt x, AInt y -> Some (int_compare c x y)
        | _ -> None)
        tpc
  | B.If (c, tpc) ->
      let a = pop st in
      int_branch
        (match a with AInt x -> Some (int_compare c x 0) | _ -> None)
        tpc
  | B.If_acmpeq tpc ->
      let a, b = pop2 st in
      int_branch (ref_equal a b) tpc
  | B.If_acmpne tpc ->
      let a, b = pop2 st in
      int_branch (Option.map not (ref_equal a b)) tpc
  | B.Ifnull tpc ->
      let a = pop st in
      int_branch
        (match a with
        | ANull -> Some true
        | AReal _ | APriv _ -> Some false
        | AInt _ | AUnknown -> None)
        tpc
  | B.Ifnonnull tpc ->
      let a = pop st in
      int_branch
        (match a with
        | ANull -> Some false
        | AReal _ | APriv _ -> Some true
        | AInt _ | AUnknown -> None)
        tpc
  | B.Getfield { site; offset; _ } -> getfield st ~site ~offset
  | B.Putfield { offset; _ } -> putfield st ~offset
  | B.Getstatic { site; index; _ } ->
      let addr = C.statics_base + (index * C.slot_bytes) in
      record st ~site ~addr;
      push st
        (match Hashtbl.find_opt st.static_log index with
        | Some v -> v
        | None -> of_value (st.globals index))
  | B.Putstatic { index; _ } -> Hashtbl.replace st.static_log index (pop st)
  | B.Aaload { len_site; elem_site } | B.Iaload { len_site; elem_site } ->
      array_load st ~len_site ~elem_site
  | B.Aastore { len_site } | B.Iastore { len_site } -> array_store st ~len_site
  | B.Arraylength { site } -> (
      let base = pop st in
      match array_view st base with
      | Some (_, base_addr, len) ->
          record st ~site ~addr:(base_addr + C.array_length_offset);
          push st (AInt len)
      | None -> push st AUnknown)
  | B.New class_id ->
      let ci = C.class_of_id st.program class_id in
      push st
        (priv_alloc st
           ~slots:(Array.length ci.fields)
           ~size:ci.instance_bytes
           (fun slots -> Pobject (Array.make slots ANull)))
  | B.Newarray _ -> (
      match pop st with
      | AInt len when len >= 0 ->
          push st
            (priv_alloc st ~slots:len
               ~size:(C.array_elems_offset + (len * C.slot_bytes))
               (fun slots -> Parray (Array.make slots ANull)))
      | AInt _ | AReal _ | APriv _ | ANull | AUnknown -> push st AUnknown)
  | B.Invoke callee_id ->
      let callee = C.method_of_id st.program callee_id in
      let args = Array.make callee.arity AUnknown in
      for i = callee.arity - 1 downto 0 do
        args.(i) <- pop st
      done;
      if st.opts.inspect_calls && st.call_depth < st.opts.max_call_depth then begin
        (* Inter-procedural mode: step into the callee (the extension
           Section 3.2 discusses). The callee shares the write log and
           the shadow heap; its own loops are bounded. *)
        match interpret_callee st callee args with
        | Some v when callee.returns_value -> push st v
        | Some _ -> ()
        | None -> if callee.returns_value then push st AUnknown
      end
      else if callee.returns_value then push st AUnknown
  | B.Return -> st.running <- false
  | B.Ireturn | B.Areturn ->
      st.return_value <- Some (pop st);
      st.running <- false
  | B.Print -> ignore (pop st)
  | B.Prefetch_inter _ | B.Prefetch_indirect _ | B.Prefetch_dynamic _ -> ()
  | B.Spec_load _ -> ()

(* Interpret a callee body to completion (or budget/abnormal stop) in a
   frame sharing this inspection's sandbox; returns its result value. *)
and interpret_callee st (callee : C.method_info) args =
  let cfg, forest =
    match Hashtbl.find_opt st.analyses callee.method_id with
    | Some analysis -> analysis
    | None ->
        let cfg = Jit.Cfg.build callee.code in
        let analysis = (cfg, Jit.Loops.analyze cfg) in
        Hashtbl.add st.analyses callee.method_id analysis;
        analysis
  in
  let locals =
    Array.make (max (max callee.max_locals callee.arity) 1) AUnknown
  in
  Array.blit args 0 locals 0 (Array.length args);
  let frame =
    {
      st with
      code = callee.code;
      cfg;
      forest;
      target = None;
      call_depth = st.call_depth + 1;
      locals;
      stack = [];
      pc = 0;
      per_site = [||];
      backedge_counts = Hashtbl.create 4;
      iteration = 0;
      entered_target = false;
      natural_exit = false;
      return_value = None;
      running = true;
    }
  in
  run_frame frame;
  frame.return_value

(* Drive one frame until it stops. Only the top-level (target) frame has
   the loop-exit bookkeeping; callee frames run to their return. *)
and run_frame st =
  let code_len = Array.length st.code in
  while st.running do
    if st.pc < 0 || st.pc >= code_len then st.running <- false
    else begin
      (match st.target with
      | Some target ->
          let in_target =
            Jit.Loops.Int_set.mem st.cfg.block_of_pc.(st.pc)
              target.Jit.Loops.blocks
          in
          if st.entered_target && not in_target then begin
            (* The target loop exited on its own before the iteration
               budget: this is how a small trip count is detected. *)
            st.natural_exit <- true;
            st.running <- false
          end
          else if in_target then st.entered_target <- true
      | None -> ());
      if st.running then begin
        incr st.steps;
        if !(st.steps) > st.opts.max_inspect_steps then st.running <- false
        else step st
      end
    end
  done

let inspect ~program ~heap ~globals ~opts ~cfg ~forest ~target ~meth ~args =
  let code = meth.C.code in
  let n_locals = max meth.max_locals meth.arity in
  let locals = Array.make (max n_locals 1) AUnknown in
  Array.iteri (fun i v -> if i < n_locals then locals.(i) <- of_value v) args;
  let st =
    {
      program;
      heap;
      globals;
      opts;
      code;
      cfg;
      forest;
      target = Some target;
      call_depth = 0;
      locals;
      stack = [];
      pc = 0;
      write_log = Hashtbl.create 64;
      static_log = Hashtbl.create 8;
      priv = Hashtbl.create 16;
      priv_next_id = ref 0;
      (* The shadow heap lives above the real heap's limit, so private and
         real addresses can never collide. *)
      priv_next_addr = ref (C.heap_base + Vm.Heap.limit_bytes heap);
      analyses = Hashtbl.create 8;
      steps = ref 0;
      per_site = Array.make (max meth.n_sites 1) [];
      backedge_counts = Hashtbl.create 8;
      iteration = 0;
      entered_target = false;
      natural_exit = false;
      return_value = None;
      running = true;
    }
  in
  run_frame st;
  {
    per_site = Array.map List.rev st.per_site;
    iterations =
      (* In both exit regimes the number of completed loop bodies equals
         the number of back edges taken: on a natural exit the final
         header evaluation fails without beginning a body, and on a
         budget stop the last back edge is refused. *)
      (if st.entered_target then st.iteration else 0);
    natural_exit = st.natural_exit;
    steps = !(st.steps);
  }
