type node = {
  site : int;
  info : Jit.Stack_model.load_info;
  mutable succs : int list;
  mutable preds : int list;
}

type t = { nodes : (int, node) Hashtbl.t }

let build (infos : Jit.Stack_model.load_info array) ~sites =
  let nodes = Hashtbl.create 16 in
  List.iter
    (fun site ->
      if site >= 0 && site < Array.length infos then
        Hashtbl.replace nodes site
          { site; info = infos.(site); succs = []; preds = [] })
    sites;
  Hashtbl.iter
    (fun site node ->
      match node.info.base with
      | Jit.Stack_model.Load producer when Hashtbl.mem nodes producer ->
          let p = Hashtbl.find nodes producer in
          if not (List.mem site p.succs) then p.succs <- site :: p.succs;
          if not (List.mem producer node.preds) then
            node.preds <- producer :: node.preds
      | _ -> ())
    nodes;
  Hashtbl.iter
    (fun _ node ->
      node.succs <- List.sort compare node.succs;
      node.preds <- List.sort compare node.preds)
    nodes;
  { nodes }

let node t site = Hashtbl.find_opt t.nodes site

let sites t =
  Hashtbl.fold (fun site _ acc -> site :: acc) t.nodes [] |> List.sort compare

let succs t site =
  match node t site with Some n -> n.succs | None -> []

let preds t site =
  match node t site with Some n -> n.preds | None -> []

let mem t site = Hashtbl.mem t.nodes site

let n_edges t =
  Hashtbl.fold (fun _ n acc -> acc + List.length n.succs) t.nodes 0

let reachable_by_intra t ~from has_intra =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec walk site =
    List.iter
      (fun next ->
        if (not (Hashtbl.mem seen next)) && has_intra next then begin
          Hashtbl.replace seen next ();
          acc := next :: !acc;
          walk next
        end)
      (succs t site)
  in
  walk from;
  List.rev !acc

let describe info =
  let open Jit.Stack_model in
  match info.kind with
  | Field { name; offset } -> Printf.sprintf "%s(+%d)" name offset
  | Static { name; _ } -> Printf.sprintf "static %s" name
  | Array_length -> "length"
  | Array_elem -> "elem"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun site ->
      let n = Hashtbl.find t.nodes site in
      Format.fprintf ppf "L%d (%s) -> [%s]@," site (describe n.info)
        (String.concat "; " (List.map (Printf.sprintf "L%d") n.succs)))
    (sites t);
  Format.fprintf ppf "@]"

let to_dot t ~labels =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph ldg {\n  rankdir=TB;\n";
  List.iter
    (fun site ->
      Buffer.add_string buf
        (Printf.sprintf "  L%d [label=\"%s\"];\n" site (labels site)))
    (sites t);
  List.iter
    (fun site ->
      List.iter
        (fun succ ->
          Buffer.add_string buf (Printf.sprintf "  L%d -> L%d;\n" site succ))
        (succs t site))
    (sites t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
