(** Load dependence graphs (Section 3.1).

    Nodes are the load instructions of one loop (plus the loads of
    promoted small-trip-count nested loops) that take a reference operand;
    a directed edge [L1 -> L2] exists iff [L2] is directly data dependent
    on [L1] — [L2] loads through the value [L1] loaded, possibly via local
    variables. Adjacent node pairs are the only candidates checked for
    intra-iteration stride patterns, which is the point of the graph: it
    bounds the quadratic pair search. *)

type node = {
  site : int;
  info : Jit.Stack_model.load_info;
  mutable succs : int list;  (** sites directly data dependent on this one *)
  mutable preds : int list;
}

type t

val build : Jit.Stack_model.load_info array -> sites:int list -> t
(** [build infos ~sites] restricts the graph to [sites] (the loads of the
    loop under consideration); edges are derived from each load's
    base-reference producer. *)

val node : t -> int -> node option
val sites : t -> int list
(** All member sites, ascending. *)

val succs : t -> int -> int list
val preds : t -> int -> int list
val mem : t -> int -> bool
val n_edges : t -> int

val reachable_by_intra : t -> from:int -> (int -> bool) -> int list
(** [reachable_by_intra t ~from has_intra] walks successor chains from
    [from] over edges for which [has_intra] holds, returning the sites
    reached transitively (excluding [from]); used to emit intra-iteration
    prefetches for nodes "directly or transitively" strided with a
    dereferenced node (Section 3.3). *)

val pp : Format.formatter -> t -> unit
val to_dot : t -> labels:(int -> string) -> string
(** GraphViz rendering, used to reproduce Figure 5. *)
