(** The paper's motivating example (Figures 1 and 2): [Node2.findInMemory]
    from _202_jess, with the working memory built and churned the way the
    benchmark does, so the Token pointers carry no allocation-order stride
    while each Token keeps its co-allocated [facts] array at a constant
    offset. Used by the quickstart example and by the Table 1 / Figures
    3-5 reproductions in [bench/main.exe]. *)

val source : string

val kernel_name : string
(** ["Node2.findInMemory"]. *)

val compile : unit -> Vm.Classfile.program

val describe_site : Jit.Stack_model.load_info array -> int -> string
(** Table 1's symbolic name for a load site of the kernel — the address it
    dereferences, written the way the paper writes them ([&tv.ptr],
    [&tv.v\[i\]], [&tmp.facts], ...). *)
