lib/workloads/javagrande.ml: Workload
