lib/workloads/workload.ml: Minijava
