lib/workloads/javagrande.mli: Workload
