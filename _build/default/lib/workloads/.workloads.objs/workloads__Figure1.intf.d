lib/workloads/figure1.mli: Jit Vm
