lib/workloads/workload.mli: Vm
