lib/workloads/figure1.ml: Array Jit Minijava Printf String Workload
