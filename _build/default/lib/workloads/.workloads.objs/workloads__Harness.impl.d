lib/workloads/harness.ml: Jit Memsim Option Printf Strideprefetch Vm Workload
