lib/workloads/specjvm.ml: Workload
