lib/workloads/harness.mli: Memsim Strideprefetch Workload
