(** Experiment harness: run a workload on a machine under a prefetching
    configuration, with the full mixed-mode pipeline wired up, and collect
    everything the paper's figures need. *)

type run_result = {
  workload : string;
  machine : string;
  mode : Strideprefetch.Options.mode;
  cycles : int;
  stats : Memsim.Stats.t;  (** snapshot at end of run *)
  interpreted_cycles : int;
  compiled_cycles : int;
  gc_count : int;
  methods_compiled : int;
  total_compile_seconds : float;
  prefetch_pass_seconds : float;
  output : string;  (** program output; must agree across modes *)
  reports : Strideprefetch.Pass.loop_report list;
}

val run :
  ?opts:Strideprefetch.Options.t ->
  mode:Strideprefetch.Options.mode ->
  machine:Memsim.Config.machine ->
  Workload.t ->
  run_result
(** Compile the workload from source (fresh program), install the JIT
    pipeline (standard passes + stride prefetching at [mode]), execute,
    and collect results. [opts] overrides the algorithm's knobs; its
    [mode] field is replaced by [mode]. *)

val speedup : baseline:run_result -> run_result -> float
(** [cycles(baseline) / cycles(optimized)]; 1.10 means 10% faster. The two
    runs must have identical program output, which is checked
    (side-effect-freedom of the whole pass stack). Raises
    [Invalid_argument] otherwise. *)

val percent_speedup : baseline:run_result -> run_result -> float
(** [(speedup - 1) * 100]. *)

val compiled_fraction : run_result -> float
(** Share of cycles spent in compiled code (Table 3's last column). *)

val prefetch_overhead_fraction : run_result -> float
(** Prefetch-pass compile seconds / total compile seconds (Figure 11). *)
