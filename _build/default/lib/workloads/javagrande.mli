(** JavaGrande v2.0 Section 3 benchmark analogues (Table 3, last five
    rows). See DESIGN.md section 2 for the substitution rationale. *)

val euler : Workload.t
(** CFD sweep over 2-D arrays of state-vector objects: plain
    inter-iteration strides, the INTER-only success case. *)

val moldyn : Workload.t
(** Molecule array resident in the L2 but not the L1s: the prefetch-target
    asymmetry case (no P4 gain, small Athlon gain). *)

val montecarlo : Workload.t
(** Random-walk price paths; about half the cycles in compiled code. *)

val raytracer : Workload.t
(** A recursive invocation inside the target loop — the benchmark the
    paper flags as anomalous across machines. *)

val search : Workload.t
(** Alpha-beta game-tree search, L1-resident: nothing to prefetch. *)

val all : Workload.t list
(** In Table 3 order: Euler, MolDyn, MonteCarlo, RayTracer, Search. *)
