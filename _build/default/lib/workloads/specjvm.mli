(** SPECjvm98 benchmark analogues (Table 3, first seven rows).

    Each reproduces the access pattern the paper's Section 4.1 analysis
    attributes to the original benchmark; DESIGN.md section 2 records the
    substitution rationale. *)

val mtrt : Workload.t
(** Ray tracing over a sphere scene slightly larger than the L2; two
    sequential passes stand in for the two threads. *)

val jess : Workload.t
(** The motivating example: Token matching with add/removeElement churn;
    the hot method is deliberately not dominant. *)

val compress : Workload.t
(** LZW-style compression: hash probing, no stride patterns. *)

val db : Workload.t
(** The headline benchmark: a gap sort over large records whose
    co-allocated sub-objects carry intra-iteration strides only. *)

val mpegaudio : Workload.t
(** Subband filtering over L1-resident arrays; nothing to prefetch. *)

val jack : Workload.t
(** Parser-generator-style scanning, mostly interpreted (Table 3: 36.2%
    compiled). *)

val javac : Workload.t
(** Compiler-style AST building and folding: irregular pointer chasing. *)

val all : Workload.t list
(** In Table 3 order: mtrt, jess, compress, db, mpegaudio, jack, javac. *)
