(** SPECjvm98 benchmark analogues (see DESIGN.md section 2 for the
    substitution rationale; each source reproduces the access patterns the
    paper's Section 4.1 attributes to the original benchmark). *)

let rng = Workload.lcg_snippet

(* _202_jess: the paper's motivating example. A TokenVector of Token
   objects, each with a co-allocated facts array (intra-iteration strides);
   add/removeElement churn destroys the inter-iteration stride of the
   Token pointers, exactly as described in Section 2. The hot method is
   inlined into a larger rule-evaluation phase so it is "hot, but not
   dominant" (about a quarter of compiled-code time, per the paper). *)
let jess =
  {
    Workload.name = "jess";
    suite = `Specjvm;
    description = "Java expert shell system (working-memory token matching)";
    paper_note =
      "findInMemory: intra-iteration strides between Token and its facts \
       array; removeElement churn kills inter-iteration patterns; gains \
       small because the method is hot but not dominant and the line size \
       covers Token+facts";
    heap_limit_bytes = 48 * 1024 * 1024;
    source =
      rng
      ^ {|
class TokenVector {
  Token[] v;
  int ptr;
  TokenVector(int cap) { v = new Token[cap]; ptr = 0; }
  void addElement(Token val) { v[ptr] = val; ptr = ptr + 1; }
  void removeAt(int idx) { ptr = ptr - 1; v[idx] = v[ptr]; }
}

class Token {
  ValueVector[] facts;
  int size;
  int tag;
  Token(int t, ValueVector f0, ValueVector f1) {
    facts = new ValueVector[4];
    facts[0] = f0;
    facts[1] = f1;
    size = 2;
    tag = t;
  }
}

class ValueVector {
  int v0;
  int v1;
  ValueVector(int a, int b) { v0 = a; v1 = b; }
}

class Node2 {
  int probes;
  Node2() { probes = 0; }

  /* The paper's findInMemory, comparisons inlined so the loads live in
     the loop the pass optimizes. */
  Token findInMemory(TokenVector tv, Token t) {
    for (int i = 0; i < tv.ptr; i = i + 1) {
      Token tmp = tv.v[i];
      int matched = 1;
      for (int j = 0; j < t.size; j = j + 1) {
        ValueVector a = t.facts[j];
        ValueVector b = tmp.facts[j];
        if (a.v0 != b.v0 || a.v1 != b.v1) { matched = 0; break; }
      }
      probes = probes + 1;
      if (matched == 1) { return tmp; }
    }
    return null;
  }

  /* Rule-evaluation filler so compiled time is spread over methods. */
  int evalRules(int[] alpha, int rounds) {
    int acc = 0;
    for (int r = 0; r < rounds; r = r + 1) {
      for (int i = 0; i < alpha.length; i = i + 1) {
        acc = acc + (alpha[i] ^ r);
        if (acc > 1048576) { acc = acc - 1048576; }
      }
    }
    return acc;
  }

  static void main() {
    Rng rng = new Rng(42);
    TokenVector tv = new TokenVector(6000);
    for (int i = 0; i < 3000; i = i + 1) {
      tv.addElement(new Token(i, new ValueVector(i, i + 1), new ValueVector(i, i + 2)));
    }
    /* Working-memory churn: retract a random token, assert a new one. */
    for (int k = 0; k < 9000; k = k + 1) {
      tv.removeAt(rng.next(tv.ptr));
      tv.addElement(new Token(3000 + k, new ValueVector(k, k + 1), new ValueVector(k, k + 2)));
    }
    Node2 node = new Node2();
    int[] alpha = new int[4096];
    for (int i = 0; i < 4096; i = i + 1) { alpha[i] = i * 7; }
    int hits = 0;
    int acc = 0;
    for (int round = 0; round < 30; round = round + 1) {
      Token probe = new Token(-1, new ValueVector(-1, round), new ValueVector(-1, round));
      Token r = node.findInMemory(tv, probe);
      if (r != null) { hits = hits + 1; }
      acc = acc + node.evalRules(alpha, 40);
    }
    print(hits);
    print(acc);
    print(node.probes);
  }
}
|};
  }

(* _209_db: a memory-resident database sorted by a gap sort (a comb sort —
   the shell sort of the original makes the same sequential index scans
   while reordering large records). Each record carries a co-allocated
   Vector and String-like objects, so "they only have intra-iteration
   constant strides between the containing records in the sorting loop".
   The record set spans far more pages than the Pentium 4's 64 DTLB
   entries, making TLB priming by guarded prefetch loads decisive. *)
let db =
  {
    Workload.name = "db";
    suite = `Specjvm;
    description = "Memory resident database (sort of large records)";
    paper_note =
      ">85% of time in a sort loop over large records; records' sub-objects \
       have intra-iteration constant strides only; frequent cache and DTLB \
       misses (Shuf et al.)";
    heap_limit_bytes = 48 * 1024 * 1024;
    source =
      rng
      ^ {|
class DbString {
  int[] chars;
  DbString(int seedChar) {
    chars = new int[12];
    for (int i = 0; i < 12; i = i + 1) { chars[i] = (seedChar + i * 31) % 127; }
  }
}

class DbVector {
  DbString[] elems;
  int n;
  DbVector(int seed) {
    elems = new DbString[3];
    elems[0] = new DbString(seed);
    elems[1] = new DbString(seed + 11);
    elems[2] = new DbString(seed + 23);
    n = 3;
  }
}

class Entry {
  DbVector items;
  int key;
  Entry(int k) {
    key = k;
    items = new DbVector(k);
  }
}

class Database {
  Entry[] index;
  int n;
  Database(int count, Rng rng) {
    index = new Entry[count];
    n = count;
    for (int i = 0; i < count; i = i + 1) {
      index[i] = new Entry(rng.next(1000000));
    }
    /* Fisher-Yates shuffle: record pointers carry no allocation-order
       stride when the sort starts. */
    for (int i = count - 1; i > 0; i = i - 1) {
      int j = rng.next(i + 1);
      Entry tmp = index[i];
      index[i] = index[j];
      index[j] = tmp;
    }
  }

  /* One comb-sort pass with the given gap: sequential scan of the index
     (inter-iteration stride), dereferencing two records per step. The
     record comparison is inlined: key first, then the first characters
     of the first item string. */
  int pass(int gap) {
    int swaps = 0;
    for (int i = 0; i + gap < n; i = i + 1) {
      Entry a = index[i];
      Entry b = index[i + gap];
      DbString sa = a.items.elems[0];
      DbString sb = b.items.elems[0];
      /* collation over a character prefix (no early exit, like a locale
         compare) */
      int cmp = 0;
      for (int c = 0; c < 8; c = c + 1) {
        cmp = cmp * 2 + (sa.chars[c] - sb.chars[c]);
      }
      if (cmp == 0) { cmp = a.key - b.key; }
      if (cmp > 0) {
        index[i] = b;
        index[i + gap] = a;
        swaps = swaps + 1;
      }
    }
    return swaps;
  }

  int checksum() {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      acc = (acc + index[i].key) % 1048576;
    }
    return acc;
  }

  static void main() {
    Rng rng = new Rng(7);
    Database db = new Database(3200, rng);
    int gap = 3200;
    int swaps = 0;
    while (gap > 1) {
      gap = (gap * 10) / 13;
      if (gap < 1) { gap = 1; }
      swaps = swaps + db.pass(gap);
    }
    /* a few finishing gap-1 passes (not to full order; bounded work) */
    for (int r = 0; r < 4; r = r + 1) {
      swaps = swaps + db.pass(1);
    }
    print(swaps);
    print(db.checksum());
  }
}
|};
  }

(* _201_compress: LZW-style compression over int arrays. Hash-table
   probing defeats stride discovery; array scans stride by 4 bytes, which
   profitability rejects. The paper finds no applicable code. *)
let compress =
  {
    Workload.name = "compress";
    suite = `Specjvm;
    description = "Modified Lempel-Ziv compression over int buffers";
    paper_note = "no code fragments where stride prefetching applies";
    heap_limit_bytes = 32 * 1024 * 1024;
    source =
      rng
      ^ {|
class Compressor {
  int[] hashTab;
  int[] codeTab;
  Compressor(int size) {
    hashTab = new int[size];
    codeTab = new int[size];
    for (int i = 0; i < size; i = i + 1) { hashTab[i] = -1; codeTab[i] = 0; }
  }

  int compress(int[] input) {
    int hsize = hashTab.length;
    int freeCode = 257;
    int ent = input[0];
    int outBits = 0;
    for (int i = 1; i < input.length; i = i + 1) {
      int c = input[i];
      int fcode = (c << 12) + ent;
      int h = ((c << 7) ^ ent) % hsize;
      if (h < 0) { h = 0 - h; }
      int probes = 0;
      int done = 0;
      while (done == 0) {
        if (hashTab[h] == fcode) {
          ent = codeTab[h];
          done = 1;
        } else {
          if (hashTab[h] < 0) {
            hashTab[h] = fcode;
            codeTab[h] = freeCode;
            freeCode = freeCode + 1;
            outBits = outBits + 12;
            ent = c;
            done = 1;
          } else {
            h = (h + 1) % hsize;
            probes = probes + 1;
            if (probes > 64) { ent = c; done = 1; }
          }
        }
      }
    }
    return outBits;
  }

  static void main() {
    Rng rng = new Rng(99);
    int[] input = new int[120000];
    for (int i = 0; i < input.length; i = i + 1) {
      /* skewed source alphabet so the dictionary is useful */
      input[i] = rng.next(64) & rng.next(64);
    }
    Compressor c = new Compressor(32768);
    int total = 0;
    for (int round = 0; round < 3; round = round + 1) {
      total = (total + c.compress(input)) % 1048576;
    }
    print(total);
  }
}
|};
  }

(* _222_mpegaudio: subband-filter arithmetic over small arrays that fit in
   the L1 cache. Cache and DTLB miss ratios are tiny; inserting prefetch
   instructions can only slow it down slightly. *)
let mpegaudio =
  {
    Workload.name = "mpegaudio";
    suite = `Specjvm;
    description = "MPEG Layer-3 style subband filtering (L1-resident)";
    paper_note =
      "quite small cache and DTLB miss ratios; slight degradation from \
       prefetch overhead";
    heap_limit_bytes = 16 * 1024 * 1024;
    source =
      rng
      ^ {|
class Filter {
  int[] window;
  int[] bank;
  Filter() {
    window = new int[512];
    bank = new int[32];
    for (int i = 0; i < 512; i = i + 1) { window[i] = (i * 37) % 256 - 128; }
    for (int i = 0; i < 32; i = i + 1) { bank[i] = 0; }
  }

  int frame(int[] samples, int base) {
    int acc = 0;
    for (int sb = 0; sb < 32; sb = sb + 1) {
      int sum = 0;
      for (int k = 0; k < 16; k = k + 1) {
        sum = sum + samples[(base + sb * 16 + k) % samples.length] * window[(sb * 16 + k) % 512];
      }
      bank[sb] = sum >> 4;
      acc = acc + bank[sb];
    }
    return acc;
  }

  static void main() {
    Rng rng = new Rng(5);
    int[] samples = new int[1152];
    for (int i = 0; i < samples.length; i = i + 1) { samples[i] = rng.next(512) - 256; }
    Filter f = new Filter();
    int acc = 0;
    for (int fr = 0; fr < 6000; fr = fr + 1) {
      acc = (acc + f.frame(samples, fr * 31)) % 1048576;
    }
    print(acc);
  }
}
|};
  }

(* _227_mtrt: ray tracing over a scene of sphere objects allocated
   back-to-back (inter-iteration strides on their field loads). The
   original is two-threaded; the VM is single-threaded, so two render
   passes stand in for the two threads. L2 miss reductions, modest
   speedup. *)
let mtrt =
  {
    Workload.name = "mtrt";
    suite = `Specjvm;
    description = "Ray tracer over a large sphere scene (two passes)";
    paper_note = "moderate L2 MPI reduction, small speedup";
    heap_limit_bytes = 48 * 1024 * 1024;
    source =
      rng
      ^ {|
class Sphere {
  int x; int y; int z; int r;
  int cr; int cg; int cb;
  int kd; int ks; int kt;
  int p0; int p1; int p2; int p3; int p4; int p5;
  Sphere(int a, int b, int c, int rad) {
    x = a; y = b; z = c; r = rad;
    cr = a % 256; cg = b % 256; cb = c % 256;
    kd = 3; ks = 2; kt = 1;
    p0 = 0; p1 = 0; p2 = 0; p3 = 0; p4 = 0; p5 = 0;
  }
}

class Scene {
  Sphere[] objects;
  int n;
  Scene(int count, Rng rng) {
    objects = new Sphere[count];
    n = count;
    for (int i = 0; i < count; i = i + 1) {
      objects[i] = new Sphere(rng.next(4096), rng.next(4096), rng.next(4096), 8 + rng.next(64));
    }
  }

  /* Nearest intersection along a ray: a strided sweep over the scene. */
  int trace(int ox, int oy, int dx, int dy) {
    int best = 2147483647;
    int hit = -1;
    for (int i = 0; i < n; i = i + 1) {
      Sphere s = objects[i];
      int ex = s.x - ox;
      int ey = s.y - oy;
      int ez = s.z - (ox + oy) / 2;
      int b = ex * dx + ey * dy + ez;
      int c = ex * ex + ey * ey + ez * ez - s.r * s.r;
      int disc = b * b - c;
      int shade = (s.kd * ex + s.ks * ey + s.kt * ez) >> 3;
      int atten = (shade * shade + b) >> 4;
      int gloss = (atten * s.ks - shade * s.kd) >> 2;
      int spec = gloss;
      for (int it = 0; it < 4; it = it + 1) {
        spec = (spec * spec + atten) % 65536;
        spec = spec + ((shade * it) >> 2) - (gloss >> 3);
      }
      disc = disc + (gloss - atten) / 7 + spec % 3;
      if (disc > 0 && b > 0 && c < best) {
        best = c;
        hit = i;
      }
    }
    if (hit < 0) { return 0; }
    Sphere s = objects[hit];
    return (s.cr + s.cg + s.cb) % 256;
  }

  static void main() {
    Rng rng = new Rng(11);
    Scene scene = new Scene(3700, rng);
    int acc = 0;
    /* two "threads" = two render passes */
    for (int pass = 0; pass < 2; pass = pass + 1) {
      for (int ray = 0; ray < 120; ray = ray + 1) {
        acc = (acc + scene.trace(ray * 17, pass * 31, 3, 4)) % 1048576;
      }
    }
    print(acc);
  }
}
|};
  }

(* _228_jack: parser generator. Token scanning runs in [main] (never hot,
   so interpreted), with only small helpers compiled: compiled code is a
   small share of the run, as in Table 3 (36.2%), leaving prefetching
   little to gain. *)
let jack =
  {
    Workload.name = "jack";
    suite = `Specjvm;
    description = "Parser-generator style token scanning (mostly interpreted)";
    paper_note = "compiled code only 36% of execution; no exploitable strides";
    heap_limit_bytes = 16 * 1024 * 1024;
    source =
      rng
      ^ {|
class Scanner {
  int[] kinds;
  Scanner(int n, Rng rng) {
    kinds = new int[n];
    for (int i = 0; i < n; i = i + 1) { kinds[i] = rng.next(40); }
  }
  int classify(int k) {
    if (k < 10) { return 1; }
    if (k < 20) { return 2; }
    if (k < 30) { return 3; }
    return 4;
  }

  static void main() {
    Rng rng = new Rng(17);
    Scanner sc = new Scanner(60000, rng);
    int acc = 0;
    /* Parsing loop lives in main: interpreted (main runs once). */
    for (int round = 0; round < 16; round = round + 1) {
      int state = 0;
      for (int i = 0; i < sc.kinds.length; i = i + 1) {
        int cls = sc.classify(sc.kinds[i]);
        state = (state * 5 + cls) % 7919;
      }
      acc = (acc + state) % 1048576;
    }
    print(acc);
  }
}
|};
  }

(* _213_javac: compiler front end. Irregular pointer chasing over AST
   nodes built in interleaved order (no strides), with about half of the
   time in compiled code. *)
let javac =
  {
    Workload.name = "javac";
    suite = `Specjvm;
    description = "Compiler-style AST construction and traversal";
    paper_note = "no applicable stride patterns; ~52% compiled code";
    heap_limit_bytes = 48 * 1024 * 1024;
    source =
      rng
      ^ {|
class Node {
  Node left;
  Node right;
  int op;
  Node(int o) { op = o; left = null; right = null; }
}

class TreeBuilder {
  Node build(int depth, Rng rng) {
    Node root = new Node(rng.next(16));
    if (depth > 0) {
      root.left = build(depth - 1, rng);
      root.right = build(depth - 1, rng);
    }
    return root;
  }

  int fold(Node n) {
    if (n == null) { return 0; }
    return (n.op + 3 * fold(n.left) + 5 * fold(n.right)) % 1048576;
  }

  static void main() {
    Rng rng = new Rng(23);
    TreeBuilder tb = new TreeBuilder();
    int acc = 0;
    for (int unit = 0; unit < 12; unit = unit + 1) {
      Node tree = tb.build(13, rng);
      for (int passNo = 0; passNo < 3; passNo = passNo + 1) {
        acc = (acc + tb.fold(tree)) % 1048576;
      }
    }
    print(acc);
  }
}
|};
  }

let all = [ mtrt; jess; compress; db; mpegaudio; jack; javac ]
