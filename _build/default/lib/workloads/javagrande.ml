(** JavaGrande v2.0 Section 3 benchmark analogues. *)

let rng = Workload.lcg_snippet

(* Euler: computational fluid dynamics over two-dimensional arrays of
   state-vector objects. Cells are allocated row-major and back-to-back,
   so their field loads have inter-iteration constant strides — the case
   where INTER alone already wins (the paper: 15.4% / 14.0%). *)
let euler =
  {
    Workload.name = "Euler";
    suite = `Javagrande;
    description = "CFD sweep over 2-D arrays of state-vector objects";
    paper_note =
      "inter-iteration constant strides in large 2-D arrays of vectors; \
       INTER and INTER+INTRA achieve similar speedups";
    heap_limit_bytes = 48 * 1024 * 1024;
    source =
      rng
      ^ {|
class Statevector {
  int a; int b; int c; int d;
  int e; int f; int g; int h;
  int i0; int i1; int i2; int i3;
  int i4; int i5; int i6; int i7;
  int i8; int i9;
  Statevector(int seed) {
    a = seed; b = seed + 1; c = seed + 2; d = seed + 3;
    e = 0; f = 0; g = 0; h = 0;
    i0 = 0; i1 = 0; i2 = 0; i3 = 0;
    i4 = 0; i5 = 0; i6 = 0; i7 = 0;
    i8 = 0; i9 = 0;
  }
}

class Row {
  Statevector[] cells;
  Row(int h, int base) {
    cells = new Statevector[h];
    for (int j = 0; j < h; j = j + 1) {
      cells[j] = new Statevector(base + j);
    }
  }
}

class Grid {
  Row[] rows;
  int nx;
  int ny;
  Grid(int w, int h) {
    nx = w;
    ny = h;
    rows = new Row[w];
    for (int i = 0; i < w; i = i + 1) {
      rows[i] = new Row(h, i * h);
    }
  }

  int sweep() {
    int acc = 0;
    for (int i = 0; i < nx; i = i + 1) {
      Statevector[] row = rows[i].cells;
      for (int j = 0; j + 1 < ny; j = j + 1) {
        Statevector cur = row[j];
        Statevector nxt = row[j + 1];
        int flux = cur.a * 3 + cur.b - nxt.a + nxt.b * 2 + cur.c - nxt.d;
        cur.e = flux;
        cur.f = cur.f + (flux >> 2);
        acc = (acc + flux) % 1048576;
      }
    }
    return acc;
  }

  static void main() {
    Grid g = new Grid(96, 96);
    int acc = 0;
    for (int it = 0; it < 14; it = it + 1) {
      acc = (acc + g.sweep()) % 1048576;
    }
    print(acc);
  }
}
|};
  }

(* MolDyn: molecular dynamics over a one-dimensional array of molecule
   objects that fits in the L2 cache but not the L1. Prefetching into the
   L2 (Pentium 4) cannot help; prefetching into the L1 (Athlon MP) can. *)
let moldyn =
  {
    Workload.name = "MolDyn";
    suite = `Javagrande;
    description = "Molecular dynamics, molecule array resident in L2";
    paper_note =
      "main data structure fits in the L2 given this problem size: no P4 \
       gain (prefetch target is L2), small Athlon gain (target is L1)";
    heap_limit_bytes = 32 * 1024 * 1024;
    source =
      rng
      ^ {|
class Molecule {
  int x; int y; int z;
  int vx; int vy; int vz;
  int fx; int fy; int fz;
  int m0; int m1; int m2; int m3;
  int m4; int m5; int m6; int m7;
  Molecule(int seed) {
    x = seed * 13 % 4096; y = seed * 17 % 4096; z = seed * 19 % 4096;
    vx = 0; vy = 0; vz = 0;
    fx = 0; fy = 0; fz = 0;
    m0 = 0; m1 = 0; m2 = 0; m3 = 0;
    m4 = 0; m5 = 0; m6 = 0; m7 = 0;
  }
}

class Simulation {
  Molecule[] particles;
  int n;
  Simulation(int count) {
    particles = new Molecule[count];
    n = count;
    for (int i = 0; i < count; i = i + 1) {
      particles[i] = new Molecule(i);
    }
  }

  /* One neighbour sweep: walks the molecule array sequentially,
     stride = one molecule. */
  int forces() {
    int acc = 0;
    for (int j = 1; j + 1 < n; j = j + 1) {
      Molecule b = particles[j];
      Molecule l = particles[j - 1];
      Molecule r = particles[j + 1];
      int dxl = b.x - l.x;
      int dyl = b.y - l.y;
      int dzl = b.z - l.z;
      int dxr = b.x - r.x;
      int dyr = b.y - r.y;
      int dzr = b.z - r.z;
      int r2l = dxl * dxl + dyl * dyl + dzl * dzl + 1;
      int r2r = dxr * dxr + dyr * dyr + dzr * dzr + 1;
      int f = 16384 / r2l - 16384 / r2r;
      b.fx = b.fx + f * (dxl + dxr);
      b.fy = b.fy + f * (dyl + dyr);
      b.fz = b.fz + f * (dzl + dzr);
      acc = (acc + f) % 1048576;
    }
    return acc;
  }

  static void main() {
    /* 1800 molecules x 76 bytes = 137 KB: larger than both L1 caches,
       comfortably inside the 256 KB L2s. */
    Simulation sim = new Simulation(1800);
    int acc = 0;
    for (int step = 0; step < 100; step = step + 1) {
      acc = (acc + sim.forces()) % 1048576;
    }
    print(acc);
  }
}
|};
  }

(* MonteCarlo: about half the time in compiled code; irregular
   random-number-driven accesses over per-path time series. *)
let montecarlo =
  {
    Workload.name = "MonteCarlo";
    suite = `Javagrande;
    description = "Monte Carlo price paths over co-allocated series";
    paper_note = "~48% compiled code; little exploitable regularity";
    heap_limit_bytes = 32 * 1024 * 1024;
    source =
      rng
      ^ {|
class PricePath {
  int[] series;
  int seed;
  PricePath(int s, int len) {
    seed = s;
    series = new int[len];
  }
}

class MonteCarlo {
  PricePath[] paths;
  int n;
  MonteCarlo(int count, int len) {
    paths = new PricePath[count];
    n = count;
    for (int i = 0; i < count; i = i + 1) {
      paths[i] = new PricePath(i * 2654435761, len);
    }
  }

  int simulate(PricePath p) {
    int s = p.seed;
    int price = 1000;
    for (int t = 0; t < p.series.length; t = t + 1) {
      s = (s * 1103515245 + 12345) % 2147483648;
      if (s < 0) { s = 0 - s; }
      price = price + (s % 21) - 10;
      p.series[t] = price;
    }
    return price;
  }

  static void main() {
    MonteCarlo mc = new MonteCarlo(1200, 160);
    int acc = 0;
    /* Simulation driven from main: interpreted driver, compiled kernel. */
    for (int i = 0; i < mc.n; i = i + 1) {
      acc = (acc + mc.simulate(mc.paths[i])) % 1048576;
    }
    /* Aggregation pass in main stays interpreted. */
    int mean = 0;
    for (int i = 0; i < mc.n; i = i + 1) {
      int[] s = mc.paths[i].series;
      int sum = 0;
      for (int t = 0; t < s.length; t = t + 1) { sum = sum + s[t]; }
      mean = (mean + sum / s.length) % 1048576;
    }
    print(acc);
    print(mean);
  }
}
|};
  }

(* RayTracer: the target loop contains a recursive method invocation
   (reflection bounces). Object inspection skips the call; the sweep over
   the co-allocated sphere scene still exposes strides. The paper reports
   an anomaly here: a gain on the Pentium 4, a loss on the Athlon MP,
   caused by cross-method cache effects. *)
let raytracer =
  {
    Workload.name = "RayTracer";
    suite = `Javagrande;
    description = "3-D ray tracer with recursive shading in the hot loop";
    paper_note =
      "loop contains a recursive invocation; prefetching also reduced \
       misses in other methods on the P4, degraded on the Athlon";
    heap_limit_bytes = 48 * 1024 * 1024;
    source =
      rng
      ^ {|
class RtSphere {
  int x; int y; int z; int r;
  int cr; int cg; int cb;
  int refl;
  int q0; int q1; int q2; int q3;
  int q4; int q5; int q6; int q7;
  RtSphere(int a, int b, int c, int rad, int re) {
    x = a; y = b; z = c; r = rad; refl = re;
    cr = a % 256; cg = b % 256; cb = c % 256;
    q0 = 0; q1 = 0; q2 = 0; q3 = 0;
    q4 = 0; q5 = 0; q6 = 0; q7 = 0;
  }
}

class Tracer {
  RtSphere[] scene;
  int n;
  Tracer(int count, Rng rng) {
    scene = new RtSphere[count];
    n = count;
    for (int i = 0; i < count; i = i + 1) {
      scene[i] = new RtSphere(rng.next(4096), rng.next(4096), rng.next(4096),
                              4 + rng.next(32), rng.next(2));
    }
  }

  int shade(int ox, int oy, int dx, int dy, int depth) {
    int best = 2147483647;
    int hit = -1;
    for (int i = 0; i < n; i = i + 1) {
      RtSphere s = scene[i];
      int ex = s.x - ox;
      int ey = s.y - oy;
      int b = ex * dx + ey * dy;
      int c = ex * ex + ey * ey - s.r * s.r;
      if (b > 0 && c < best) {
        best = c;
        hit = i;
        /* recursive bounce inside the target loop */
        if (depth > 0 && s.refl == 1) {
          best = best - shade(s.x, s.y, 0 - dx, dy, depth - 1) % 64;
        }
      }
    }
    if (hit < 0) { return 0; }
    RtSphere s = scene[hit];
    return (s.cr + s.cg + s.cb) % 256;
  }

  static void main() {
    Rng rng = new Rng(31);
    Tracer tr = new Tracer(3200, rng);
    int acc = 0;
    for (int ray = 0; ray < 70; ray = ray + 1) {
      acc = (acc + tr.shade(ray * 23, ray * 7, 3, 4, 1)) % 1048576;
    }
    print(acc);
  }
}
|};
  }

(* Search: alpha-beta game-tree search over a small board. Everything is
   L1-resident and access is recursion-driven: no stride prefetching
   applies (as the paper finds). *)
let search =
  {
    Workload.name = "Search";
    suite = `Javagrande;
    description = "Alpha-beta pruned game-tree search over a small board";
    paper_note = "no applicable inter- or intra-iteration patterns";
    heap_limit_bytes = 16 * 1024 * 1024;
    source =
      rng
      ^ {|
class Board {
  int[] cells;
  int[] history;
  int hn;
  Board() {
    cells = new int[49];
    history = new int[64];
    hn = 0;
    for (int i = 0; i < 49; i = i + 1) { cells[i] = 0; }
  }

  int evaluate() {
    int score = 0;
    for (int i = 0; i < 49; i = i + 1) {
      score = score + cells[i] * ((i % 7) - 3);
    }
    return score;
  }

  int alphabeta(int depth, int alpha, int beta, int player) {
    if (depth == 0) { return evaluate() * player; }
    int best = -1000000;
    for (int move = 0; move < 7; move = move + 1) {
      int cell = (move * 11 + depth * 5) % 49;
      if (cells[cell] == 0) {
        cells[cell] = player;
        int v = 0 - alphabeta(depth - 1, 0 - beta, 0 - alpha, 0 - player);
        cells[cell] = 0;
        if (v > best) { best = v; }
        if (best > alpha) { alpha = best; }
        if (alpha >= beta) { break; }
      }
    }
    if (best == -1000000) { return evaluate() * player; }
    return best;
  }

  static void main() {
    Board b = new Board();
    int acc = 0;
    for (int game = 0; game < 12; game = game + 1) {
      b.cells[game % 49] = 1;
      acc = (acc + b.alphabeta(6, -1000000, 1000000, 1)) % 1048576;
      b.cells[game % 49] = 0;
    }
    print(acc);
  }
}
|};
  }

let all = [ euler; moldyn; montecarlo; raytracer; search ]
