(** The paper's motivating example (Figures 1 and 2): the
    [Node2.findInMemory] kernel from _202_jess, transliterated to MiniJava
    with the [equals] comparison inlined (our object inspection skips
    invocations, exactly like the paper's; the loads under study are the
    eleven in-loop loads of Table 1).

    [main] builds the working memory the way the benchmark does: Tokens are
    appended, then churned through [removeAt] (which moves the last element
    into the vacated slot, like [removeElement]), so the Token pointers in
    [tv.v] carry no allocation-order stride while each Token keeps its
    co-allocated [facts] array at a constant offset. *)

let source =
  Workload.lcg_snippet
  ^ {|
class TokenVector {
  Token[] v;
  int ptr;
  TokenVector(int cap) { v = new Token[cap]; ptr = 0; }
  void addElement(Token val) { v[ptr] = val; ptr = ptr + 1; }
  void removeAt(int idx) { ptr = ptr - 1; v[idx] = v[ptr]; }
}

class ValueVector {
  int v0;
  int v1;
  ValueVector(int a, int b) { v0 = a; v1 = b; }
}

class Token {
  ValueVector[] facts;
  int size;
  Token(ValueVector firstFact, ValueVector secondFact) {
    facts = new ValueVector[5];
    facts[0] = firstFact;
    facts[1] = secondFact;
    size = 2;
  }
}

class Node2 {
  Token findInMemory(TokenVector tv, Token t) {
    for (int i = 0; i < tv.ptr; i = i + 1) {
      Token tmp = tv.v[i];
      int matched = 1;
      for (int j = 0; j < t.size; j = j + 1) {
        ValueVector a = t.facts[j];
        ValueVector b = tmp.facts[j];
        if (a.v0 != b.v0 || a.v1 != b.v1) { matched = 0; break; }
      }
      if (matched == 1) { return tmp; }
    }
    return null;
  }

  static void main() {
    Rng rng = new Rng(2003);
    TokenVector tv = new TokenVector(8000);
    for (int i = 0; i < 4000; i = i + 1) {
      tv.addElement(new Token(new ValueVector(i, i + 1), new ValueVector(i, i + 2)));
    }
    for (int k = 0; k < 12000; k = k + 1) {
      tv.removeAt(rng.next(tv.ptr));
      tv.addElement(new Token(new ValueVector(k, k + 1), new ValueVector(k, k + 2)));
    }
    Node2 node = new Node2();
    int hits = 0;
    for (int round = 0; round < 8; round = round + 1) {
      Token probe = new Token(new ValueVector(-1, round), new ValueVector(-1, round));
      if (node.findInMemory(tv, probe) != null) { hits = hits + 1; }
    }
    print(hits);
  }
}
|}

let kernel_name = "Node2.findInMemory"

let compile () = Minijava.Compile.program_of_source_exn source

(* Table 1's symbolic names for the kernel's load sites, derived from the
   instruction stream: the address each site dereferences, written the way
   the paper writes them (&tv.ptr, &tv.v[i], &tmp.facts, ...). *)
let describe_site (infos : Jit.Stack_model.load_info array) site =
  let open Jit.Stack_model in
  let field_short name =
    match String.rindex_opt name '.' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  let strip_amp s =
    if String.length s > 0 && s.[0] = '&' then
      String.sub s 1 (String.length s - 1)
    else s
  in
  let rec describe site =
    if site < 0 || site >= Array.length infos then "?"
    else
      let info = infos.(site) in
      let base =
        match info.base with
        | Param 1 -> "tv"
        | Param 2 -> "t"
        | Param n -> Printf.sprintf "arg%d" n
        | Load s -> (
            (* the element load of tv.v[i] is named tmp in the source *)
            match infos.(s).kind with
            | Array_elem -> "tmp"
            | _ -> strip_amp (describe s))
        | Const _ | Alloc | Unknown -> "?"
      in
      match info.kind with
      | Field { name; _ } -> Printf.sprintf "&%s.%s" base (field_short name)
      | Static { name; _ } -> Printf.sprintf "&%s" name
      | Array_length -> Printf.sprintf "&%s.length" base
      | Array_elem -> Printf.sprintf "&%s[i]" base
  in
  describe site
