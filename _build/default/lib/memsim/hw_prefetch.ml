type stream = {
  mutable last_line : int;
  mutable direction : int;  (** +1, -1, or 0 when not yet established *)
  mutable live : bool;
}

type t = {
  streams : stream array;
  line_bytes : int;
  page_bytes : int;  (** streams do not cross page boundaries, as on the
                         real Pentium 4 *)
  mutable next_alloc : int;  (** round-robin victim for new streams *)
}

let create ~streams ~line_bytes ~page_bytes =
  if streams < 0 then invalid_arg "hw_prefetch: streams must be >= 0";
  if line_bytes <= 0 then invalid_arg "hw_prefetch: line size must be positive";
  if page_bytes <= 0 then invalid_arg "hw_prefetch: page size must be positive";
  {
    streams =
      Array.init streams (fun _ ->
          { last_line = min_int; direction = 0; live = false });
    line_bytes;
    page_bytes;
    next_alloc = 0;
  }

let find_matching t line =
  let n = Array.length t.streams in
  let rec go i =
    if i >= n then None
    else
      let s = t.streams.(i) in
      if s.live && (line = s.last_line + 1 || line = s.last_line - 1) then
        Some s
      else go (i + 1)
  in
  go 0

let observe_miss t ~addr =
  if Array.length t.streams = 0 then None
  else
    let line = addr / t.line_bytes in
    match find_matching t line with
    | Some s ->
        let direction = line - s.last_line in
        s.last_line <- line;
        s.direction <- direction;
        let target = (line + direction) * t.line_bytes in
        (* Hardware prefetchers of this era stop at page boundaries. *)
        if target / t.page_bytes <> addr / t.page_bytes then None
        else Some target
    | None ->
        (* No established stream covers this miss: allocate a fresh stream
           slot round-robin. It only starts prefetching once a neighbouring
           miss confirms a direction. *)
        let s = t.streams.(t.next_alloc) in
        t.next_alloc <- (t.next_alloc + 1) mod Array.length t.streams;
        s.last_line <- line;
        s.direction <- 0;
        s.live <- true;
        None

let reset t =
  Array.iter
    (fun s ->
      s.last_line <- min_int;
      s.direction <- 0;
      s.live <- false)
    t.streams;
  t.next_alloc <- 0

let active_streams t =
  Array.fold_left (fun acc s -> if s.live then acc + 1 else acc) 0 t.streams
