type cache_params = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  hit_extra : int;
  miss_penalty : int;
}

type tlb_params = { entries : int; page_bytes : int; tlb_miss_penalty : int }

type prefetch_target = To_l2 | To_l1

type machine = {
  name : string;
  l1 : cache_params;
  l2 : cache_params;
  dtlb : tlb_params;
  prefetch_target : prefetch_target;
  interp_cost : int;
  compiled_cost : int;
  prefetch_cost : int;
  guarded_load_cost : int;
  hw_prefetch_streams : int;
}

(* Geometry from Table 2 of the paper; timing from DESIGN.md section 5.
   Associativities are the documented ones for the 2 GHz Pentium 4
   (4-way L1, 8-way L2) and the Athlon MP (2-way L1, 16-way L2).

   Miss penalties are EFFECTIVE stall costs, not raw latencies: the engine
   executes in order, so a raw 200-cycle DRAM latency would charge every
   miss in full, which an out-of-order core would partially overlap with
   independent work and other misses. The values below are the raw
   latencies divided by a memory-level-parallelism factor of about three,
   which puts the simulated baselines' stall fractions in a realistic
   range (DESIGN.md section 5). *)

let pentium4 =
  {
    name = "Pentium4";
    l1 =
      {
        size_bytes = 8 * 1024;
        line_bytes = 64;
        assoc = 4;
        hit_extra = 1;
        miss_penalty = 10;
      };
    l2 =
      {
        size_bytes = 256 * 1024;
        line_bytes = 128;
        assoc = 8;
        hit_extra = 0;
        miss_penalty = 60;
      };
    dtlb = { entries = 64; page_bytes = 4096; tlb_miss_penalty = 30 };
    prefetch_target = To_l2;
    interp_cost = 8;
    compiled_cost = 1;
    prefetch_cost = 1;
    guarded_load_cost = 3;
    hw_prefetch_streams = 8;
  }

let athlon_mp =
  {
    name = "AthlonMP";
    l1 =
      {
        size_bytes = 64 * 1024;
        line_bytes = 64;
        assoc = 2;
        hit_extra = 1;
        miss_penalty = 8;
      };
    l2 =
      {
        size_bytes = 256 * 1024;
        line_bytes = 64;
        assoc = 16;
        hit_extra = 0;
        miss_penalty = 45;
      };
    dtlb = { entries = 256; page_bytes = 4096; tlb_miss_penalty = 20 };
    prefetch_target = To_l1;
    interp_cost = 8;
    compiled_cost = 1;
    prefetch_cost = 1;
    guarded_load_cost = 3;
    hw_prefetch_streams = 8;
  }

let machines = [ pentium4; athlon_mp ]

let machine_of_name name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun m -> String.lowercase_ascii m.name = lower) machines

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let validate_cache label (c : cache_params) =
  if not (is_power_of_two c.line_bytes) then
    Error (label ^ ": line size must be a power of two")
  else if c.size_bytes <= 0 || c.size_bytes mod c.line_bytes <> 0 then
    Error (label ^ ": size must be a positive multiple of the line size")
  else if c.assoc <= 0 then Error (label ^ ": associativity must be positive")
  else if c.size_bytes / c.line_bytes mod c.assoc <> 0 then
    Error (label ^ ": associativity must divide the number of lines")
  else if c.miss_penalty < 0 || c.hit_extra < 0 then
    Error (label ^ ": penalties must be non-negative")
  else Ok ()

let validate m =
  let ( let* ) = Result.bind in
  let* () = validate_cache "l1" m.l1 in
  let* () = validate_cache "l2" m.l2 in
  if not (is_power_of_two m.dtlb.page_bytes) then
    Error "dtlb: page size must be a power of two"
  else if m.dtlb.entries <= 0 then Error "dtlb: entries must be positive"
  else if
    m.interp_cost <= 0 || m.compiled_cost <= 0 || m.prefetch_cost <= 0
    || m.guarded_load_cost <= 0
  then Error "instruction costs must be positive"
  else Ok ()

let pp_cache ppf (c : cache_params) =
  Format.fprintf ppf "%dKB/%dB-line/%d-way" (c.size_bytes / 1024) c.line_bytes
    c.assoc

let pp_machine ppf m =
  Format.fprintf ppf "%s: L1 %a, L2 %a, DTLB %d entries, prefetch->%s" m.name
    pp_cache m.l1 pp_cache m.l2 m.dtlb.entries
    (match m.prefetch_target with To_l2 -> "L2" | To_l1 -> "L1")
