(** A next-line stream prefetcher of the kind both evaluation machines ship.

    The unit observes L2 demand misses. When two misses fall on adjacent
    lines (in either direction) it establishes a stream and suggests
    fetching the next line ahead of the second miss; an established stream
    keeps suggesting the next line every time it advances. The paper's
    profitability rule "an inter-iteration stride must exceed half a cache
    line" exists precisely because this hardware already covers short
    strides (Section 3.3, citing Jouppi). *)

type t

val create : streams:int -> line_bytes:int -> page_bytes:int -> t
(** [streams = 0] disables the prefetcher. Streams never cross a page
    boundary (the Pentium 4's hardware prefetcher stops at 4 KiB
    boundaries; we model both machines that way). *)

val observe_miss : t -> addr:int -> int option
(** Feed one L2 demand-miss address; returns the address of a line to
    prefetch into the L2, if a stream matched or was established. *)

val reset : t -> unit
val active_streams : t -> int
