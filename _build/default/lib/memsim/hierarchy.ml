type t = {
  machine : Config.machine;
  l1 : Cache.t;
  l2 : Cache.t;
  dtlb : Tlb.t;
  hwpf : Hw_prefetch.t;
  stats : Stats.t;
}

let create (machine : Config.machine) =
  (match Config.validate machine with
  | Ok () -> ()
  | Error msg -> invalid_arg ("hierarchy: " ^ msg));
  {
    machine;
    l1 = Cache.create machine.l1;
    l2 = Cache.create machine.l2;
    dtlb = Tlb.create machine.dtlb;
    hwpf =
      Hw_prefetch.create ~streams:machine.hw_prefetch_streams
        ~line_bytes:machine.l2.line_bytes
        ~page_bytes:machine.dtlb.page_bytes;
    stats = Stats.create ();
  }

let machine t = t.machine
let stats t = t.stats

let line_bytes t =
  match t.machine.prefetch_target with
  | Config.To_l2 -> t.machine.l2.line_bytes
  | Config.To_l1 -> t.machine.l1.line_bytes

let page_bytes t = t.machine.dtlb.page_bytes

(* Memory latency seen by a fill that has to go to DRAM. *)
let memory_latency t = t.machine.l2.miss_penalty

let hw_prefetch_on_l2_miss t ~addr ~now =
  match Hw_prefetch.observe_miss t.hwpf ~addr with
  | None -> ()
  | Some target ->
      if not (Cache.probe t.l2 ~addr:target) then begin
        t.stats.hw_prefetches <- t.stats.hw_prefetches + 1;
        Cache.fill t.l2 ~addr:target ~ready_at:(now + memory_latency t)
      end

let record_l1_miss t kind =
  match kind with
  | `Load -> t.stats.l1_load_misses <- t.stats.l1_load_misses + 1
  | `Store -> t.stats.l1_store_misses <- t.stats.l1_store_misses + 1

let record_l2_miss t kind =
  match kind with
  | `Load -> t.stats.l2_load_misses <- t.stats.l2_load_misses + 1
  | `Store -> t.stats.l2_store_misses <- t.stats.l2_store_misses + 1

let record_dtlb_miss t kind =
  match kind with
  | `Load -> t.stats.dtlb_load_misses <- t.stats.dtlb_load_misses + 1
  | `Store -> t.stats.dtlb_store_misses <- t.stats.dtlb_store_misses + 1

let demand_access t ~addr ~kind ~now =
  (match kind with
  | `Load -> t.stats.loads <- t.stats.loads + 1
  | `Store -> t.stats.stores <- t.stats.stores + 1);
  let stall = ref 0 in
  if not (Tlb.access t.dtlb ~addr) then begin
    record_dtlb_miss t kind;
    stall := !stall + t.machine.dtlb.tlb_miss_penalty;
    Tlb.fill t.dtlb ~addr
  end;
  (match Cache.access t.l1 ~addr ~now with
  | Cache.Hit -> stall := !stall + t.machine.l1.hit_extra
  | Cache.Hit_in_flight residual ->
      t.stats.in_flight_hits <- t.stats.in_flight_hits + 1;
      stall := !stall + residual
  | Cache.Miss -> begin
      record_l1_miss t kind;
      (match Cache.access t.l2 ~addr ~now with
      | Cache.Hit -> stall := !stall + t.machine.l1.miss_penalty
      | Cache.Hit_in_flight residual ->
          t.stats.in_flight_hits <- t.stats.in_flight_hits + 1;
          stall := !stall + t.machine.l1.miss_penalty + residual
      | Cache.Miss ->
          record_l2_miss t kind;
          stall := !stall + t.machine.l1.miss_penalty + memory_latency t;
          hw_prefetch_on_l2_miss t ~addr ~now;
          Cache.fill t.l2 ~addr ~ready_at:now);
      Cache.fill t.l1 ~addr ~ready_at:now
    end);
  !stall

(* Cost (as fill completion time, not a stall) of bringing [addr] into the
   L2 for a non-blocking operation issued at [now]. *)
let l2_fill_ready t ~addr ~now =
  match Cache.access t.l2 ~addr ~now with
  | Cache.Hit -> now
  | Cache.Hit_in_flight residual -> now + residual
  | Cache.Miss ->
      let ready = now + memory_latency t in
      Cache.fill t.l2 ~addr ~ready_at:ready;
      ready

let sw_prefetch t ~addr ~now =
  t.stats.sw_prefetches <- t.stats.sw_prefetches + 1;
  if not (Tlb.probe t.dtlb ~addr) then
    (* The processor cancels a hardware prefetch whose translation misses
       the DTLB (Section 3.3). *)
    t.stats.sw_prefetches_cancelled <- t.stats.sw_prefetches_cancelled + 1
  else
    match t.machine.prefetch_target with
    | Config.To_l2 ->
        if Cache.probe t.l2 ~addr then
          t.stats.sw_prefetch_useless <- t.stats.sw_prefetch_useless + 1
        else ignore (l2_fill_ready t ~addr ~now)
    | Config.To_l1 ->
        if Cache.probe t.l1 ~addr then
          t.stats.sw_prefetch_useless <- t.stats.sw_prefetch_useless + 1
        else begin
          let ready = l2_fill_ready t ~addr ~now in
          Cache.fill t.l1 ~addr
            ~ready_at:(max ready (now + t.machine.l1.miss_penalty))
        end

let guarded_load t ~addr ~now =
  t.stats.guarded_loads <- t.stats.guarded_loads + 1;
  if not (Tlb.probe t.dtlb ~addr) then Tlb.fill t.dtlb ~addr;
  if Cache.probe t.l1 ~addr then
    t.stats.sw_prefetch_useless <- t.stats.sw_prefetch_useless + 1
  else begin
    let ready = l2_fill_ready t ~addr ~now in
    Cache.fill t.l1 ~addr ~ready_at:(max ready (now + t.machine.l1.miss_penalty))
  end

let reset t =
  Cache.reset t.l1;
  Cache.reset t.l2;
  Tlb.reset t.dtlb;
  Hw_prefetch.reset t.hwpf;
  Stats.reset t.stats
