(** Machine descriptions for the memory-hierarchy simulator.

    The two preset machines reproduce Table 2 of the paper (cache and DTLB
    geometry of the Intel Pentium 4 and the AMD Athlon MP) together with the
    timing model documented in DESIGN.md. *)

type cache_params = {
  size_bytes : int;  (** total capacity in bytes *)
  line_bytes : int;  (** line size in bytes; must be a power of two *)
  assoc : int;  (** number of ways *)
  hit_extra : int;  (** extra cycles charged on a hit in this level *)
  miss_penalty : int;  (** cycles to fetch a line from the next level *)
}

type tlb_params = {
  entries : int;  (** number of fully-associative entries *)
  page_bytes : int;  (** page size in bytes; must be a power of two *)
  tlb_miss_penalty : int;  (** page-walk cycles charged on a miss *)
}

(** Cache level that software prefetch instructions fill: the Pentium 4
    prefetches into the L2 only, the Athlon MP into the L1 (and L2). *)
type prefetch_target = To_l2 | To_l1

type machine = {
  name : string;
  l1 : cache_params;
  l2 : cache_params;
  dtlb : tlb_params;
  prefetch_target : prefetch_target;
  interp_cost : int;  (** cycles to retire one interpreted instruction *)
  compiled_cost : int;  (** cycles to retire one compiled instruction *)
  prefetch_cost : int;  (** cycles to retire a hardware prefetch instruction *)
  guarded_load_cost : int;  (** cycles to retire a guarded (checked) load *)
  hw_prefetch_streams : int;  (** stream-detector table size; 0 disables *)
}

val pentium4 : machine
val athlon_mp : machine

val machines : machine list
(** [machines] is [[pentium4; athlon_mp]], the evaluation platforms. *)

val machine_of_name : string -> machine option
(** Case-insensitive lookup among {!machines}. *)

val validate : machine -> (unit, string) result
(** Check structural invariants (powers of two, positive sizes,
    associativity dividing the number of lines). *)

val validate_cache : string -> cache_params -> (unit, string) result
(** [validate_cache label params] checks one cache level; [label] prefixes
    the error message. *)

val pp_machine : Format.formatter -> machine -> unit
(** One-line rendering of the Table 2 parameters of a machine. *)
