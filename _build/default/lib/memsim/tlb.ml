type t = {
  params : Config.tlb_params;
  page_shift : int;
  pages : int array;  (** -1 means invalid *)
  stamp : int array;
  mutable tick : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (params : Config.tlb_params) =
  if params.entries <= 0 then invalid_arg "tlb: entries must be positive";
  if params.page_bytes <= 0 || params.page_bytes land (params.page_bytes - 1) <> 0
  then invalid_arg "tlb: page size must be a power of two";
  {
    params;
    page_shift = log2 params.page_bytes;
    pages = Array.make params.entries (-1);
    stamp = Array.make params.entries 0;
    tick = 0;
  }

let params t = t.params
let page_of t addr = addr lsr t.page_shift

let find t page =
  let n = Array.length t.pages in
  let rec go i =
    if i >= n then None else if t.pages.(i) = page then Some i else go (i + 1)
  in
  go 0

let touch t i =
  t.tick <- t.tick + 1;
  t.stamp.(i) <- t.tick

let access t ~addr =
  match find t (page_of t addr) with
  | Some i ->
      touch t i;
      true
  | None -> false

let probe t ~addr = find t (page_of t addr) <> None

let fill t ~addr =
  let page = page_of t addr in
  match find t page with
  | Some i -> touch t i
  | None ->
      let victim = ref 0 in
      let n = Array.length t.pages in
      (try
         for i = 0 to n - 1 do
           if t.pages.(i) = -1 then begin
             victim := i;
             raise Exit
           end;
           if t.stamp.(i) < t.stamp.(!victim) then victim := i
         done
       with Exit -> ());
      t.pages.(!victim) <- page;
      touch t !victim

let reset t =
  Array.fill t.pages 0 (Array.length t.pages) (-1);
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  t.tick <- 0

let resident_pages t =
  Array.fold_left (fun acc p -> if p >= 0 then acc + 1 else acc) 0 t.pages
