(** A fully-associative, LRU data TLB over virtual page numbers. *)

type t

val create : Config.tlb_params -> t
val params : t -> Config.tlb_params

val page_of : t -> int -> int
(** [page_of t addr] is the virtual page number of [addr]. *)

val access : t -> addr:int -> bool
(** Demand translation: [true] on a hit (entry promoted to MRU), [false] on
    a miss — the caller charges the page-walk penalty and then {!fill}s. *)

val probe : t -> addr:int -> bool
(** Presence test with no LRU side effect. The hardware prefetch
    instruction is cancelled when this is [false] (Section 3.3). *)

val fill : t -> addr:int -> unit
(** Install the entry for [addr]'s page, evicting the LRU entry if full.
    Guarded prefetch loads use this for TLB priming. *)

val reset : t -> unit
val resident_pages : t -> int
