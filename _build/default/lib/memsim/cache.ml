type t = {
  params : Config.cache_params;
  sets : int;
  line_shift : int;
  tags : int array;  (** [set * assoc + way]; -1 means invalid *)
  ready : int array;  (** cycle at which the line's fill completes *)
  stamp : int array;  (** LRU timestamps *)
  mutable tick : int;
}

type lookup = Hit | Hit_in_flight of int | Miss

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (params : Config.cache_params) =
  (match Config.validate_cache "cache" params with
  | Ok () -> ()
  | Error msg -> invalid_arg msg);
  let lines = params.size_bytes / params.line_bytes in
  let sets = lines / params.assoc in
  {
    params;
    sets;
    line_shift = log2 params.line_bytes;
    tags = Array.make lines (-1);
    ready = Array.make lines 0;
    stamp = Array.make lines 0;
    tick = 0;
  }

let params t = t.params
let line_of t addr = addr lsr t.line_shift
let set_of t line = line mod t.sets

let find_way t line =
  let set = set_of t line in
  let base = set * t.params.assoc in
  let rec go way =
    if way >= t.params.assoc then None
    else if t.tags.(base + way) = line then Some (base + way)
    else go (way + 1)
  in
  go 0

let touch t slot =
  t.tick <- t.tick + 1;
  t.stamp.(slot) <- t.tick

let access t ~addr ~now =
  let line = line_of t addr in
  match find_way t line with
  | None -> Miss
  | Some slot ->
      touch t slot;
      let residual = t.ready.(slot) - now in
      if residual > 0 then Hit_in_flight residual else Hit

let probe t ~addr = find_way t (line_of t addr) <> None

let victim_slot t set =
  let base = set * t.params.assoc in
  let best = ref base in
  for way = 1 to t.params.assoc - 1 do
    let slot = base + way in
    if t.tags.(slot) = -1 && t.tags.(!best) <> -1 then best := slot
    else if t.tags.(slot) <> -1 && t.tags.(!best) <> -1
            && t.stamp.(slot) < t.stamp.(!best)
    then best := slot
  done;
  !best

let fill t ~addr ~ready_at =
  let line = line_of t addr in
  match find_way t line with
  | Some slot ->
      if ready_at < t.ready.(slot) then t.ready.(slot) <- ready_at;
      touch t slot
  | None ->
      let slot = victim_slot t (set_of t line) in
      t.tags.(slot) <- line;
      t.ready.(slot) <- ready_at;
      touch t slot

let invalidate t ~addr =
  match find_way t (line_of t addr) with
  | Some slot -> t.tags.(slot) <- -1
  | None -> ()

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ready 0 (Array.length t.ready) 0;
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  t.tick <- 0

let resident_lines t =
  Array.fold_left (fun acc tag -> if tag >= 0 then acc + 1 else acc) 0 t.tags
