lib/memsim/tlb.ml: Array Config
