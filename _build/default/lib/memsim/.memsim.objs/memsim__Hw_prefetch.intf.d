lib/memsim/hw_prefetch.mli:
