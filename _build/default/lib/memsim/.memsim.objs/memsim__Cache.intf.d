lib/memsim/cache.mli: Config
