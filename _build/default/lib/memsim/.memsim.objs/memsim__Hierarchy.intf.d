lib/memsim/hierarchy.mli: Config Stats
