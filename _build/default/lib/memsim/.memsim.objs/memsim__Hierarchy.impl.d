lib/memsim/hierarchy.ml: Cache Config Hw_prefetch Stats Tlb
