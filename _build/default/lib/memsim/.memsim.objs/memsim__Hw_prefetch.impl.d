lib/memsim/hw_prefetch.ml: Array
