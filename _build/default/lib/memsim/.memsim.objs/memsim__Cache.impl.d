lib/memsim/cache.ml: Array Config
