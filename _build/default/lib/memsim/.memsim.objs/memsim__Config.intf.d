lib/memsim/config.mli: Format
