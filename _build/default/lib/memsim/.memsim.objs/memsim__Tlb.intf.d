lib/memsim/tlb.mli: Config
