lib/memsim/config.ml: Format List Result String
