(** Control-flow graphs over bytecode.

    Blocks are maximal straight-line instruction ranges; block 0 is the
    entry. Successor edges come from fall-through and branch targets. *)

type block = {
  index : int;
  start_pc : int;
  end_pc : int;  (** exclusive *)
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  code : Vm.Bytecode.instr array;
  blocks : block array;
  block_of_pc : int array;  (** block index containing each pc *)
}

val build : Vm.Bytecode.instr array -> t

val n_blocks : t -> int
val block : t -> int -> block

val instrs_of_block : t -> int -> (int * Vm.Bytecode.instr) list
(** [(pc, instr)] pairs of a block, in order. *)

val back_edges : t -> idom:int array -> (int * int) list
(** Edges [n -> h] where [h] dominates [n] (natural-loop back edges),
    given the immediate-dominator array from {!Dominators.compute}. *)

val pp : Format.formatter -> t -> unit
