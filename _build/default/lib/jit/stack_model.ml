module B = Vm.Bytecode

type source = Unknown | Const of int | Param of int | Load of int | Alloc

let join a b =
  match (a, b) with
  | x, y when x = y -> x
  | _, _ -> Unknown

type load_kind =
  | Field of { offset : int; name : string }
  | Static of { index : int; name : string }
  | Array_length
  | Array_elem

type load_info = {
  site : int;
  pc : int;
  kind : load_kind;
  base : source;
  index : source;
  yields_ref : bool;
}

type state = { locals : source array; stack : source list }

let join_state a b =
  if List.length a.stack <> List.length b.stack then
    invalid_arg "stack_model: operand stack depth mismatch at join";
  {
    locals = Array.map2 join a.locals b.locals;
    stack = List.map2 join a.stack b.stack;
  }

let equal_state a b = a.locals = b.locals && a.stack = b.stack

let analyze code ~arity ~callee_arity ~callee_returns =
  let cfg = Cfg.build code in
  let n_blocks = Cfg.n_blocks cfg in
  let n_sites = Vm.Classfile.count_sites code in
  let infos = Array.make (max n_sites 1) None in
  let record ~site ~pc ~kind ~base ~index ~yields_ref =
    let merged =
      match infos.(site) with
      | None -> { site; pc; kind; base; index; yields_ref }
      | Some prior ->
          { prior with base = join prior.base base; index = join prior.index index }
    in
    infos.(site) <- Some merged
  in
  let n_locals =
    Array.fold_left
      (fun acc instr ->
        match instr with
        | B.Iload i | B.Istore i | B.Aload i | B.Astore i -> max acc (i + 1)
        | _ -> acc)
      arity code
  in
  let entry_state =
    {
      locals =
        Array.init n_locals (fun i -> if i < arity then Param i else Unknown);
      stack = [];
    }
  in
  let pop st =
    match st.stack with
    | v :: rest -> (v, { st with stack = rest })
    | [] -> invalid_arg "stack_model: operand stack underflow"
  in
  let pop2 st =
    let b, st = pop st in
    let a, st = pop st in
    (a, b, st)
  in
  let push v st = { st with stack = v :: st.stack } in
  let binop_fold f st =
    let a, b, st = pop2 st in
    let result =
      match (a, b) with Const x, Const y -> Const (f x y) | _ -> Unknown
    in
    push result st
  in
  let transfer pc st instr =
    match instr with
    | B.Iconst k -> push (Const k) st
    | B.Aconst_null -> push Unknown st
    | B.Iload i | B.Aload i -> push st.locals.(i) st
    | B.Istore i | B.Astore i ->
        let v, st = pop st in
        let locals = Array.copy st.locals in
        locals.(i) <- v;
        { st with locals }
    | B.Dup -> (
        match st.stack with
        | v :: _ -> push v st
        | [] -> invalid_arg "stack_model: dup on empty stack")
    | B.Pop -> snd (pop st)
    | B.Iadd -> binop_fold ( + ) st
    | B.Isub -> binop_fold ( - ) st
    | B.Imul -> binop_fold ( * ) st
    | B.Idiv | B.Irem | B.Iand | B.Ior | B.Ixor | B.Ishl | B.Ishr ->
        let _, _, st = pop2 st in
        push Unknown st
    | B.Ineg ->
        let v, st = pop st in
        push (match v with Const x -> Const (-x) | _ -> Unknown) st
    | B.Goto _ -> st
    | B.If_icmp _ | B.If_acmpeq _ | B.If_acmpne _ ->
        let _, _, st = pop2 st in
        st
    | B.If _ | B.Ifnull _ | B.Ifnonnull _ -> snd (pop st)
    | B.Getfield { site; offset; name; is_ref } ->
        let base, st = pop st in
        record ~site ~pc ~kind:(Field { offset; name }) ~base ~index:Unknown
          ~yields_ref:is_ref;
        push (Load site) st
    | B.Putfield _ ->
        let _, _, st = pop2 st in
        st
    | B.Getstatic { site; index; name; is_ref } ->
        record ~site ~pc ~kind:(Static { index; name }) ~base:Unknown
          ~index:Unknown ~yields_ref:is_ref;
        push (Load site) st
    | B.Putstatic _ -> snd (pop st)
    | B.Aaload { len_site; elem_site } | B.Iaload { len_site; elem_site } ->
        let base, index, st = pop2 st in
        record ~site:len_site ~pc ~kind:Array_length ~base ~index:Unknown
          ~yields_ref:false;
        let yields_ref =
          match instr with B.Aaload _ -> true | _ -> false
        in
        record ~site:elem_site ~pc ~kind:Array_elem ~base ~index ~yields_ref;
        push (Load elem_site) st
    | B.Aastore { len_site } | B.Iastore { len_site } ->
        let _, st = pop st in
        let base, _, st = pop2 st in
        record ~site:len_site ~pc ~kind:Array_length ~base ~index:Unknown
          ~yields_ref:false;
        st
    | B.Arraylength { site } ->
        let base, st = pop st in
        record ~site ~pc ~kind:Array_length ~base ~index:Unknown
          ~yields_ref:false;
        push (Load site) st
    | B.New _ -> push Alloc st
    | B.Newarray _ ->
        let _, st = pop st in
        push Alloc st
    | B.Invoke m ->
        let st = ref st in
        for _ = 1 to callee_arity m do
          st := snd (pop !st)
        done;
        if callee_returns m then push Unknown !st else !st
    | B.Return -> st
    | B.Ireturn | B.Areturn -> snd (pop st)
    | B.Print -> snd (pop st)
    | B.Prefetch_inter _ | B.Spec_load _ | B.Prefetch_indirect _
    | B.Prefetch_dynamic _ ->
        st
  in
  let in_states = Array.make n_blocks None in
  in_states.(0) <- Some entry_state;
  let worklist = Queue.create () in
  Queue.add 0 worklist;
  while not (Queue.is_empty worklist) do
    let bi = Queue.take worklist in
    match in_states.(bi) with
    | None -> ()
    | Some st ->
        let out =
          List.fold_left
            (fun st (pc, instr) -> transfer pc st instr)
            st
            (Cfg.instrs_of_block cfg bi)
        in
        List.iter
          (fun succ ->
            let merged =
              match in_states.(succ) with
              | None -> out
              | Some prior -> join_state prior out
            in
            match in_states.(succ) with
            | Some prior when equal_state prior merged -> ()
            | _ ->
                in_states.(succ) <- Some merged;
                Queue.add succ worklist)
          (Cfg.block cfg bi).succs
  done;
  Array.mapi
    (fun site info ->
      match info with
      | Some i -> i
      | None ->
          {
            site;
            pc = -1;
            kind = Array_length;
            base = Unknown;
            index = Unknown;
            yields_ref = false;
          })
    infos

let address_offset_of info =
  match info.kind with
  | Field { offset; _ } -> Some offset
  | Static _ -> None
  | Array_length -> Some Vm.Classfile.array_length_offset
  | Array_elem -> (
      match info.index with
      | Const k when k >= 0 ->
          Some (Vm.Classfile.array_elems_offset + (k * Vm.Classfile.slot_bytes))
      | _ -> None)

let pp_source ppf = function
  | Unknown -> Format.pp_print_string ppf "?"
  | Const k -> Format.fprintf ppf "const %d" k
  | Param i -> Format.fprintf ppf "param %d" i
  | Load s -> Format.fprintf ppf "L%d" s
  | Alloc -> Format.pp_print_string ppf "alloc"

let pp_load_info ppf i =
  let kind =
    match i.kind with
    | Field { name; offset } -> Printf.sprintf "field %s(+%d)" name offset
    | Static { name; _ } -> Printf.sprintf "static %s" name
    | Array_length -> "arraylength"
    | Array_elem -> "arrayelem"
  in
  Format.fprintf ppf "L%d@%d %s base=%a idx=%a%s" i.site i.pc kind pp_source
    i.base pp_source i.index
    (if i.yields_ref then " (ref)" else "")
