(** Classic bytecode clean-up passes.

    These are the "rest of the JIT" against which the paper's < 3%
    compilation-time overhead is measured: real transformations with the
    usual branch-target remapping machinery. All passes preserve program
    semantics and the operand-stack discipline. *)

val retarget : Vm.Bytecode.instr -> int -> Vm.Bytecode.instr
(** Rewrite a branch's target; non-branches are returned unchanged. *)

val compact :
  Vm.Bytecode.instr option array -> Vm.Bytecode.instr array
(** Drop deleted ([None]) slots and remap every branch target to the first
    surviving instruction at or after it. Raises [Invalid_argument] when a
    target would fall off the end. *)

val fold_constants : Vm.Bytecode.instr array -> Vm.Bytecode.instr array
(** Fold [iconst a; iconst b; op] into one [iconst], and drop arithmetic
    identities ([+0], [*1], [-0], double negation). Patterns whose interior
    instructions are branch targets are left alone. *)

val remove_unreachable : Vm.Bytecode.instr array -> Vm.Bytecode.instr array
(** Delete instructions no path from the entry reaches. *)

val peephole : Vm.Bytecode.instr array -> Vm.Bytecode.instr array
(** Drop [dup; pop] pairs and gotos to the next instruction. *)

val simplify : Vm.Bytecode.instr array -> Vm.Bytecode.instr array
(** Run all passes to a (bounded) fixpoint. *)
