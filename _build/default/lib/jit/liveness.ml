module B = Vm.Bytecode
module Int_set = Set.Make (Int)

type t = {
  cfg : Cfg.t;
  ins : Int_set.t array;  (** per pc: live before *)
  outs : Int_set.t array;  (** per pc: live after *)
}

let use_def = function
  | B.Iload i | B.Aload i -> (Some i, None)
  | B.Istore i | B.Astore i -> (None, Some i)
  | _ -> (None, None)

(* live-before = (live-after - def) + use *)
let transfer instr after =
  match use_def instr with
  | Some used, None -> Int_set.add used after
  | None, Some defined -> Int_set.remove defined after
  | None, None -> after
  | Some _, Some _ -> assert false

let analyze code =
  let cfg = Cfg.build code in
  let n = Array.length code in
  let ins = Array.make n Int_set.empty in
  let outs = Array.make n Int_set.empty in
  let n_blocks = Cfg.n_blocks cfg in
  (* block-level fixpoint on live-in of block heads *)
  let block_in = Array.make n_blocks Int_set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = n_blocks - 1 downto 0 do
      let block = Cfg.block cfg b in
      let live_after_block =
        List.fold_left
          (fun acc s -> Int_set.union acc block_in.(s))
          Int_set.empty block.succs
      in
      let live = ref live_after_block in
      for pc = block.end_pc - 1 downto block.start_pc do
        outs.(pc) <- !live;
        live := transfer code.(pc) !live;
        ins.(pc) <- !live
      done;
      if not (Int_set.equal !live block_in.(b)) then begin
        block_in.(b) <- !live;
        changed := true
      end
    done
  done;
  { cfg; ins; outs }

let live_in t pc = t.ins.(pc)
let live_out t pc = t.outs.(pc)

let eliminate_dead_stores code =
  let analysis = analyze code in
  Array.mapi
    (fun pc instr ->
      match instr with
      | B.Istore i | B.Astore i
        when not (Int_set.mem i (live_out analysis pc)) ->
          B.Pop
      | instr -> instr)
    code
