(** Immediate dominators by the Cooper–Harvey–Kennedy iterative algorithm. *)

val compute : Cfg.t -> int array
(** [compute cfg] returns [idom] where [idom.(b)] is the immediate
    dominator of block [b]; [idom.(0) = 0] for the entry. Blocks
    unreachable from the entry get idom 0. *)

val dominates : idom:int array -> int -> int -> bool
(** [dominates ~idom a b] holds when block [a] dominates block [b]. *)

val dominance_frontier : Cfg.t -> idom:int array -> int list array
(** Per-block dominance frontiers (Cytron et al.), useful for clients that
    build SSA-style analyses on top of the CFG. *)
