lib/jit/liveness.ml: Array Cfg Int List Set Vm
