lib/jit/verify.mli: Vm
