lib/jit/verify.ml: Array List Printf Queue Vm
