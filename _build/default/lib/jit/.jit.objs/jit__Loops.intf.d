lib/jit/loops.mli: Cfg Format Set Vm
