lib/jit/inline.ml: Array List Optimize Option Pipeline Vm
