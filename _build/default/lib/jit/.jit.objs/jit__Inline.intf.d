lib/jit/inline.mli: Pipeline Vm
