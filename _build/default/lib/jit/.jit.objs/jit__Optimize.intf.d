lib/jit/optimize.mli: Vm
