lib/jit/stack_model.ml: Array Cfg Format List Printf Queue Vm
