lib/jit/dominators.mli: Cfg
