lib/jit/cfg.mli: Format Vm
