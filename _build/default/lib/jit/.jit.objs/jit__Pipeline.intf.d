lib/jit/pipeline.mli: Vm
