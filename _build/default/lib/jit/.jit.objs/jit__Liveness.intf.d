lib/jit/liveness.mli: Set Vm
