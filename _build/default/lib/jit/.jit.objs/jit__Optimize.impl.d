lib/jit/optimize.ml: Array Cfg List Option Vm
