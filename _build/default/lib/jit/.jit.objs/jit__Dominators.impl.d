lib/jit/dominators.ml: Array Cfg List
