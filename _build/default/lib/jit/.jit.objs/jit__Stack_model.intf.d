lib/jit/stack_model.mli: Format Vm
