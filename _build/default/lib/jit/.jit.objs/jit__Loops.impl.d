lib/jit/loops.ml: Array Cfg Dominators Format Hashtbl Int List Set String
