lib/jit/pipeline.ml: Cfg Dominators Hashtbl List Liveness Loops Optimize Option Unix Vm
