lib/jit/cfg.ml: Array Format List Printf Vm
