(** Live-local analysis and dead-store elimination.

    A classic backwards dataflow over the CFG: a local is live at a
    program point when some path from that point reads it before writing
    it. Used by the pipeline as a clean-up pass (a store to a dead local
    becomes a [pop]) and available to clients as an analysis. *)

module Int_set : Set.S with type elt = int

type t

val analyze : Vm.Bytecode.instr array -> t

val live_in : t -> int -> Int_set.t
(** Locals live immediately before the instruction at a pc. *)

val live_out : t -> int -> Int_set.t
(** Locals live immediately after it (the union over successors). *)

val eliminate_dead_stores : Vm.Bytecode.instr array -> Vm.Bytecode.instr array
(** Replace [istore]/[astore] to locals that are dead afterwards with
    [pop]. Semantics are preserved; a dead reference store may release an
    object to the collector earlier, which is also legal. *)
