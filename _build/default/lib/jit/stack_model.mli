(** Use-def analysis over the operand stack and locals.

    A forward dataflow analysis that mirrors each instruction's stack
    effect abstractly, tracking where every value came from. Its product is
    one {!load_info} per load site describing (a) which earlier load (if
    any) produced the {e base reference} the site loads through — the edge
    relation of the load dependence graph ("L2 is directly data dependent
    upon L1 [when] L2 loads data using the value loaded by L1",
    Section 3.1) — and (b) enough shape information to build the address
    map [F[Lx,Ly]] used by dereference-based prefetching. *)

type source =
  | Unknown
  | Const of int
  | Param of int  (** the initial value of parameter local [i] *)
  | Load of int  (** the value produced by load site [i] *)
  | Alloc  (** a reference freshly allocated in this method *)

val join : source -> source -> source

type load_kind =
  | Field of { offset : int; name : string }
  | Static of { index : int; name : string }
  | Array_length
  | Array_elem

type load_info = {
  site : int;
  pc : int;
  kind : load_kind;
  base : source;  (** producer of the base reference, joined over paths *)
  index : source;  (** for [Array_elem]: producer of the index *)
  yields_ref : bool;  (** can this load's result be a reference? *)
}

val analyze :
  Vm.Bytecode.instr array ->
  arity:int ->
  callee_arity:(int -> int) ->
  callee_returns:(int -> bool) ->
  load_info array
(** One entry per load site (indexed by site id). Sites never reached by
    the dataflow (dead code) get [base = Unknown]. Raises [Invalid_argument]
    on operand stacks of different depths meeting at a join, which the
    frontend never produces. *)

val address_offset_of : load_info -> int option
(** For a site whose address is [base_object_address + constant], that
    constant: field offset, array-length offset, or element offset when
    the index is a compile-time constant. [None] when the address is not
    an affine function of the base with a known constant. This is the
    [F[Lx,Ly]] map of Section 3.3 ("typically, the function simply adds a
    constant offset to the input address"). *)

val pp_source : Format.formatter -> source -> unit
val pp_load_info : Format.formatter -> load_info -> unit
