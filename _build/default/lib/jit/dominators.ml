(* Cooper, Harvey, Kennedy: "A Simple, Fast Dominance Algorithm". *)

let reverse_postorder (cfg : Cfg.t) =
  let n = Cfg.n_blocks cfg in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs (Cfg.block cfg b).succs;
      order := b :: !order
    end
  in
  dfs 0;
  !order

let compute (cfg : Cfg.t) =
  let n = Cfg.n_blocks cfg in
  let rpo = reverse_postorder cfg in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(0) <- 0;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_index.(!a) > rpo_index.(!b) do
        a := idom.(!a)
      done;
      while rpo_index.(!b) > rpo_index.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> 0 then begin
          let processed_preds =
            List.filter
              (fun p -> idom.(p) >= 0 && rpo_index.(p) >= 0)
              (Cfg.block cfg b).preds
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  (* Unreachable blocks: fall back to the entry. *)
  Array.iteri (fun b d -> if d < 0 then idom.(b) <- 0) idom;
  idom

let dominates ~idom a b =
  let rec go b = if b = a then true else if b = 0 then a = 0 else go idom.(b) in
  go b

let dominance_frontier (cfg : Cfg.t) ~idom =
  let n = Cfg.n_blocks cfg in
  let frontier = Array.make n [] in
  for b = 0 to n - 1 do
    let preds = (Cfg.block cfg b).preds in
    if List.length preds >= 2 then
      List.iter
        (fun p ->
          let runner = ref p in
          while !runner <> idom.(b) do
            if not (List.mem b frontier.(!runner)) then
              frontier.(!runner) <- b :: frontier.(!runner);
            runner := idom.(!runner)
          done)
        preds
  done;
  Array.map (List.sort compare) frontier
