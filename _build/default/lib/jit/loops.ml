module Int_set = Set.Make (Int)

type loop = {
  loop_id : int;
  header : int;
  blocks : Int_set.t;
  mutable children : loop list;
  mutable parent : int option;
  mutable depth : int;
}

type forest = { roots : loop list; all : loop array }

(* Classic natural-loop body computation: everything that reaches the back
   edge's source without passing through the header. *)
let natural_loop_blocks (cfg : Cfg.t) ~header ~tail =
  let body = ref (Int_set.add tail (Int_set.singleton header)) in
  let stack = ref [ tail ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | b :: rest ->
        stack := rest;
        if b <> header then
          List.iter
            (fun p ->
              if not (Int_set.mem p !body) then begin
                body := Int_set.add p !body;
                stack := p :: !stack
              end)
            (Cfg.block cfg b).preds
  done;
  !body

let analyze (cfg : Cfg.t) =
  let idom = Dominators.compute cfg in
  let edges = Cfg.back_edges cfg ~idom in
  (* Merge loops that share a header. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (tail, header) ->
      let blocks = natural_loop_blocks cfg ~header ~tail in
      match Hashtbl.find_opt by_header header with
      | Some prior ->
          Hashtbl.replace by_header header (Int_set.union prior blocks)
      | None -> Hashtbl.add by_header header blocks)
    edges;
  let headers =
    Hashtbl.fold (fun h _ acc -> h :: acc) by_header [] |> List.sort compare
  in
  let all =
    List.mapi
      (fun loop_id header ->
        {
          loop_id;
          header;
          blocks = Hashtbl.find by_header header;
          children = [];
          parent = None;
          depth = 1;
        })
      headers
    |> Array.of_list
  in
  (* Nest by containment: the parent of a loop is the smallest strictly
     containing loop. *)
  let strictly_contains outer inner =
    outer.loop_id <> inner.loop_id
    && Int_set.subset inner.blocks outer.blocks
    && not (Int_set.equal inner.blocks outer.blocks)
  in
  Array.iter
    (fun inner ->
      let best = ref None in
      Array.iter
        (fun outer ->
          if strictly_contains outer inner then
            match !best with
            | Some b
              when Int_set.cardinal b.blocks <= Int_set.cardinal outer.blocks
              ->
                ()
            | Some _ | None -> best := Some outer)
        all;
      match !best with
      | Some parent ->
          inner.parent <- Some parent.loop_id;
          parent.children <- inner :: parent.children
      | None -> ())
    all;
  let by_header_order ls =
    List.sort (fun a b -> compare a.header b.header) ls
  in
  Array.iter (fun l -> l.children <- by_header_order l.children) all;
  let roots =
    Array.to_list all |> List.filter (fun l -> l.parent = None)
    |> by_header_order
  in
  let rec assign_depth d l =
    l.depth <- d;
    List.iter (assign_depth (d + 1)) l.children
  in
  List.iter (assign_depth 1) roots;
  { roots; all }

let postorder forest =
  let rec walk l = List.concat_map walk l.children @ [ l ] in
  List.concat_map walk forest.roots

let pcs (cfg : Cfg.t) loop =
  Int_set.elements loop.blocks
  |> List.concat_map (fun b -> Cfg.instrs_of_block cfg b)
  |> List.sort compare

let loop_of_pc (cfg : Cfg.t) forest pc =
  if pc < 0 || pc >= Array.length cfg.code then None
  else
    let b = cfg.block_of_pc.(pc) in
    Array.to_list forest.all
    |> List.filter (fun l -> Int_set.mem b l.blocks)
    |> function
    | [] -> None
    | l :: ls ->
        Some
          (List.fold_left
             (fun best l -> if l.depth > best.depth then l else best)
             l ls)

let pp cfg ppf forest =
  let rec pp_loop indent l =
    Format.fprintf ppf "%sloop %d: header B%d, depth %d, pcs [%s]@,"
      (String.make indent ' ') l.loop_id l.header l.depth
      (pcs cfg l
      |> List.map (fun (pc, _) -> string_of_int pc)
      |> String.concat ",");
    List.iter (pp_loop (indent + 2)) l.children
  in
  Format.fprintf ppf "@[<v>";
  List.iter (pp_loop 0) forest.roots;
  Format.fprintf ppf "@]"
