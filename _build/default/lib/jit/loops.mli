(** Natural loops and the loop nesting forest.

    The prefetching pass "traverses the loops in each tree in a postorder
    traversal, walking the trees in the program order" (Section 3); the
    forest and {!postorder} provide exactly that traversal. *)

module Int_set : Set.S with type elt = int

type loop = {
  loop_id : int;
  header : int;  (** header block index *)
  blocks : Int_set.t;  (** block indices in the loop, header included *)
  mutable children : loop list;
  mutable parent : int option;  (** loop_id of the enclosing loop *)
  mutable depth : int;  (** 1 for outermost loops *)
}

type forest = { roots : loop list; all : loop array }

val analyze : Cfg.t -> forest
(** Natural loops from back edges (loops sharing a header are merged),
    nested by block containment. *)

val postorder : forest -> loop list
(** Inner loops before their enclosing loops; trees in program order. *)

val pcs : Cfg.t -> loop -> (int * Vm.Bytecode.instr) list
(** All [(pc, instr)] pairs inside a loop, in program order. *)

val loop_of_pc : Cfg.t -> forest -> int -> loop option
(** The innermost loop containing a pc, if any. *)

val pp : Cfg.t -> Format.formatter -> forest -> unit
