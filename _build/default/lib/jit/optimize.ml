module B = Vm.Bytecode

let branch_targets code =
  let targets = Array.make (Array.length code) false in
  Array.iter
    (fun instr ->
      match B.branch_target instr with
      | Some t -> targets.(t) <- true
      | None -> ())
    code;
  targets

let retarget instr new_target =
  match instr with
  | B.Goto _ -> B.Goto new_target
  | B.If_icmp (c, _) -> B.If_icmp (c, new_target)
  | B.If (c, _) -> B.If (c, new_target)
  | B.If_acmpeq _ -> B.If_acmpeq new_target
  | B.If_acmpne _ -> B.If_acmpne new_target
  | B.Ifnull _ -> B.Ifnull new_target
  | B.Ifnonnull _ -> B.Ifnonnull new_target
  | _ -> instr

let compact slots =
  let n = Array.length slots in
  (* new_pc_at.(old_pc) = index of the first surviving instruction at or
     after old_pc in the compacted code. *)
  let new_pc_at = Array.make (n + 1) 0 in
  let count = ref 0 in
  for pc = 0 to n - 1 do
    new_pc_at.(pc) <- !count;
    if slots.(pc) <> None then incr count
  done;
  new_pc_at.(n) <- !count;
  let remap t =
    if t < 0 || t > n then invalid_arg "compact: branch target out of range";
    let t' = new_pc_at.(t) in
    if t' >= !count then invalid_arg "compact: branch target falls off the end";
    t'
  in
  let out = Array.make !count B.Return in
  let i = ref 0 in
  Array.iter
    (function
      | Some instr ->
          let instr =
            match B.branch_target instr with
            | Some t -> retarget instr (remap t)
            | None -> instr
          in
          out.(!i) <- instr;
          incr i
      | None -> ())
    slots;
  out

let fold_constants code =
  let n = Array.length code in
  let targets = branch_targets code in
  let slots = Array.map Option.some code in
  let interior_free pc len =
    let ok = ref true in
    for i = pc + 1 to pc + len - 1 do
      if targets.(i) then ok := false
    done;
    !ok
  in
  let fold_of = function
    | B.Iadd -> Some ( + )
    | B.Isub -> Some ( - )
    | B.Imul -> Some ( * )
    | B.Iand -> Some ( land )
    | B.Ior -> Some ( lor )
    | B.Ixor -> Some ( lxor )
    | _ -> None
  in
  let pc = ref 0 in
  while !pc + 2 < n do
    (match (slots.(!pc), slots.(!pc + 1), slots.(!pc + 2)) with
    | Some (B.Iconst a), Some (B.Iconst b), Some op
      when fold_of op <> None && interior_free !pc 3 ->
        let f = Option.get (fold_of op) in
        slots.(!pc) <- Some (B.Iconst (f a b));
        slots.(!pc + 1) <- None;
        slots.(!pc + 2) <- None
    | _ -> ());
    (match (slots.(!pc), slots.(!pc + 1)) with
    | Some (B.Iconst 0), Some B.Iadd when interior_free !pc 2 ->
        slots.(!pc) <- None;
        slots.(!pc + 1) <- None
    | Some (B.Iconst 0), Some B.Isub when interior_free !pc 2 ->
        slots.(!pc) <- None;
        slots.(!pc + 1) <- None
    | Some (B.Iconst 1), Some B.Imul when interior_free !pc 2 ->
        slots.(!pc) <- None;
        slots.(!pc + 1) <- None
    | Some B.Ineg, Some B.Ineg when interior_free !pc 2 ->
        slots.(!pc) <- None;
        slots.(!pc + 1) <- None
    | _ -> ());
    incr pc
  done;
  compact slots

let remove_unreachable code =
  let cfg = Cfg.build code in
  let n_blocks = Cfg.n_blocks cfg in
  let reachable = Array.make n_blocks false in
  let rec dfs b =
    if not reachable.(b) then begin
      reachable.(b) <- true;
      List.iter dfs (Cfg.block cfg b).succs
    end
  in
  dfs 0;
  let slots =
    Array.mapi
      (fun pc instr ->
        if reachable.(cfg.block_of_pc.(pc)) then Some instr else None)
      code
  in
  compact slots

let peephole code =
  let n = Array.length code in
  let targets = branch_targets code in
  let slots = Array.map Option.some code in
  for pc = 0 to n - 2 do
    match (slots.(pc), slots.(pc + 1)) with
    | Some B.Dup, Some B.Pop when not targets.(pc + 1) ->
        slots.(pc) <- None;
        slots.(pc + 1) <- None
    | _ -> ()
  done;
  (* A goto to the instruction that follows it is a no-op. *)
  Array.iteri
    (fun pc slot ->
      match slot with
      | Some (B.Goto t) when t = pc + 1 -> slots.(pc) <- None
      | _ -> ())
    slots;
  compact slots

let simplify code =
  let rec go code budget =
    if budget = 0 then code
    else
      let next = peephole (fold_constants (remove_unreachable code)) in
      if next = code then code else go next (budget - 1)
  in
  go code 8
