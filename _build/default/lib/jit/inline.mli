(** Method inlining.

    The JIT the paper built on inlines small hot methods before running
    its optimization passes (their `findInMemory` "is inlined into" the
    hottest method, Section 4.1). Inlining matters to stride prefetching:
    loads hidden behind an invocation are invisible to a loop's load
    dependence graph, but become first-class candidates once the callee
    body is spliced into the loop.

    The pass inlines {e leaf} callees (no further invocations) whose body
    is at most [max_callee_size] instructions, splicing the body at the
    call site with locals relocated above the caller's frame, load-site
    ids renumbered into the caller's space, and returns rewritten to jumps
    past the splice. *)

val default_max_callee_size : int

val expand :
  program:Vm.Classfile.program ->
  ?max_callee_size:int ->
  Vm.Classfile.method_info ->
  bool
(** Inline every eligible call site of the method once, updating [code],
    [max_locals] and [n_sites] in place. Returns [true] when at least one
    site was inlined. The callee's own metadata is never modified. *)

val pass : program:Vm.Classfile.program -> ?max_callee_size:int -> unit -> Pipeline.pass
(** Package {!expand} as the pipeline pass ["inline"]. *)
