module B = Vm.Bytecode
module C = Vm.Classfile

let default_max_callee_size = 24

(* A callee is inlinable when it is small, a leaf (no further calls — this
   also rules out recursion), and allocation-free (so the splice cannot
   move a GC point into a context that did not expect one). *)
let inlinable ~max_callee_size (callee : C.method_info) =
  Array.length callee.code <= max_callee_size
  && Array.for_all
       (function
         | B.Invoke _ | B.New _ | B.Newarray _ -> false
         | _ -> true)
       callee.code

(* Rewrite one callee instruction for splicing at offset [base_pc] with
   locals relocated by [base_local] and sites by [base_site]. Returns and
   branch targets are resolved against [end_pc], the instruction after the
   splice. *)
let relocate ~base_pc ~base_local ~base_site ~end_pc instr =
  match instr with
  | B.Iload i -> B.Iload (i + base_local)
  | B.Istore i -> B.Istore (i + base_local)
  | B.Aload i -> B.Aload (i + base_local)
  | B.Astore i -> B.Astore (i + base_local)
  | B.Goto t -> B.Goto (t + base_pc)
  | B.If_icmp (c, t) -> B.If_icmp (c, t + base_pc)
  | B.If (c, t) -> B.If (c, t + base_pc)
  | B.If_acmpeq t -> B.If_acmpeq (t + base_pc)
  | B.If_acmpne t -> B.If_acmpne (t + base_pc)
  | B.Ifnull t -> B.Ifnull (t + base_pc)
  | B.Ifnonnull t -> B.Ifnonnull (t + base_pc)
  | B.Return | B.Ireturn | B.Areturn ->
      (* value-returning returns leave their result on the stack, which is
         exactly what the caller expects after an invoke *)
      B.Goto end_pc
  | B.Getfield g -> B.Getfield { g with site = g.site + base_site }
  | B.Getstatic g -> B.Getstatic { g with site = g.site + base_site }
  | B.Aaload { len_site; elem_site } ->
      B.Aaload
        { len_site = len_site + base_site; elem_site = elem_site + base_site }
  | B.Iaload { len_site; elem_site } ->
      B.Iaload
        { len_site = len_site + base_site; elem_site = elem_site + base_site }
  | B.Aastore { len_site } -> B.Aastore { len_site = len_site + base_site }
  | B.Iastore { len_site } -> B.Iastore { len_site = len_site + base_site }
  | B.Arraylength { site } -> B.Arraylength { site = site + base_site }
  | instr -> instr

(* The splice replacing [invoke callee]: stores for the arguments (popped
   right to left into the callee's relocated parameter locals), then the
   relocated body. *)
let splice_for ~base_local ~base_site ~base_pc (callee : C.method_info) =
  let stores =
    List.init callee.arity (fun i ->
        (* pop order: last argument first *)
        B.Istore (base_local + callee.arity - 1 - i))
  in
  let body_start = base_pc + List.length stores in
  let end_pc = body_start + Array.length callee.code in
  let body =
    Array.to_list
      (Array.map
         (relocate ~base_pc:body_start ~base_local ~base_site ~end_pc)
         callee.code)
  in
  stores @ body

let expand ~program ?(max_callee_size = default_max_callee_size)
    (caller : C.method_info) =
  let code = caller.code in
  let n = Array.length code in
  (* plan: per-pc replacement list (empty = keep the instruction) *)
  let changed = ref false in
  let base_local = ref caller.max_locals in
  let base_site = ref caller.n_sites in
  (* first pass: compute new positions; we need final pcs before we can
     relocate branch targets of the callee bodies, so lay out sizes first *)
  let replacement_size = Array.make n 1 in
  let plans = Array.make n None in
  Array.iteri
    (fun pc instr ->
      match instr with
      | B.Invoke callee_id ->
          let callee = C.method_of_id program callee_id in
          if callee.method_id <> caller.method_id
             && inlinable ~max_callee_size callee
          then begin
            plans.(pc) <- Some callee;
            replacement_size.(pc) <- callee.arity + Array.length callee.code
          end
      | _ -> ())
    code;
  if Array.for_all Option.is_none plans then false
  else begin
    let new_pc = Array.make (n + 1) 0 in
    let total = ref 0 in
    for pc = 0 to n - 1 do
      new_pc.(pc) <- !total;
      total := !total + replacement_size.(pc)
    done;
    new_pc.(n) <- !total;
    let out = Array.make !total B.Return in
    Array.iteri
      (fun pc instr ->
        match plans.(pc) with
        | Some callee ->
            let locals = !base_local in
            let sites = !base_site in
            base_local := locals + max callee.max_locals callee.arity;
            base_site := sites + callee.n_sites;
            List.iteri
              (fun k i -> out.(new_pc.(pc) + k) <- i)
              (splice_for ~base_local:locals ~base_site:sites
                 ~base_pc:new_pc.(pc) callee);
            changed := true
        | None ->
            (* keep, remapping the caller's own branch targets *)
            let instr =
              match B.branch_target instr with
              | Some t -> Optimize.retarget instr new_pc.(t)
              | None -> instr
            in
            out.(new_pc.(pc)) <- instr)
      code;
    caller.code <- out;
    caller.max_locals <- !base_local;
    caller.n_sites <- !base_site;
    !changed
  end

let pass ~program ?max_callee_size () =
  {
    Pipeline.pass_name = "inline";
    apply =
      (fun meth _args -> ignore (expand ~program ?max_callee_size meth));
  }
