(** The dynamic-compilation driver.

    A pipeline is an ordered list of named passes. {!compile} runs them on
    a hot method — with the actual argument values of the triggering
    invocation, which is what object inspection consumes — marks the method
    compiled, and accounts the host-CPU time spent per pass. Those timings
    feed Figure 11 (additional compilation time of the prefetching pass
    relative to total JIT compilation time). *)

type pass = {
  pass_name : string;
  apply : Vm.Classfile.method_info -> Vm.Value.t array -> unit;
      (** may replace [method_info.code] *)
}

type t

val create : pass list -> t

val standard_passes : unit -> pass list
(** The baseline JIT: IR/analysis construction (CFG, dominators, loop
    forest), {!Optimize.simplify}, and dead-store elimination
    ({!Liveness.eliminate_dead_stores}). *)

val compile : t -> Vm.Classfile.method_info -> Vm.Value.t array -> unit
(** Run every pass in order; accumulates per-pass and per-method timings.
    The caller (the interpreter's compile hook) guarantees at most one call
    per method. *)

val seconds_of_pass : t -> string -> float
val total_seconds : t -> float
val pass_names : t -> string list
val methods_compiled : t -> int
val reset_timings : t -> unit
