module B = Vm.Bytecode

type block = {
  index : int;
  start_pc : int;
  end_pc : int;
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  code : B.instr array;
  blocks : block array;
  block_of_pc : int array;
}

let build code =
  let n = Array.length code in
  if n = 0 then invalid_arg "cfg: empty method body";
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun pc instr ->
      (match B.branch_target instr with
      | Some target ->
          if target < 0 || target >= n then
            invalid_arg (Printf.sprintf "cfg: branch target %d out of range" target);
          leader.(target) <- true
      | None -> ());
      if B.is_branch instr && pc + 1 < n then leader.(pc + 1) <- true)
    code;
  let starts =
    Array.to_list (Array.mapi (fun pc is -> (pc, is)) leader)
    |> List.filter_map (fun (pc, is) -> if is then Some pc else None)
  in
  let blocks =
    List.mapi
      (fun index start_pc ->
        let end_pc =
          match
            List.find_opt (fun next -> next > start_pc) starts
          with
          | Some next -> next
          | None -> n
        in
        { index; start_pc; end_pc; succs = []; preds = [] })
      starts
    |> Array.of_list
  in
  let block_of_pc = Array.make n 0 in
  Array.iter
    (fun b ->
      for pc = b.start_pc to b.end_pc - 1 do
        block_of_pc.(pc) <- b.index
      done)
    blocks;
  let add_edge from_block to_block =
    let f = blocks.(from_block) and t = blocks.(to_block) in
    if not (List.mem to_block f.succs) then f.succs <- to_block :: f.succs;
    if not (List.mem from_block t.preds) then t.preds <- from_block :: t.preds
  in
  Array.iter
    (fun b ->
      let last = code.(b.end_pc - 1) in
      (match B.branch_target last with
      | Some target -> add_edge b.index block_of_pc.(target)
      | None -> ());
      if (not (B.is_terminator last)) && b.end_pc < n then
        add_edge b.index block_of_pc.(b.end_pc))
    blocks;
  (* Deterministic edge order regardless of construction order. *)
  Array.iter
    (fun b ->
      b.succs <- List.sort compare b.succs;
      b.preds <- List.sort compare b.preds)
    blocks;
  { code; blocks; block_of_pc }

let n_blocks t = Array.length t.blocks
let block t i = t.blocks.(i)

let instrs_of_block t i =
  let b = t.blocks.(i) in
  let rec go pc acc =
    if pc < b.start_pc then acc else go (pc - 1) ((pc, t.code.(pc)) :: acc)
  in
  go (b.end_pc - 1) []

(* [h] dominates [n] iff walking the idom chain from [n] reaches [h]. *)
let dominates ~idom h n =
  let rec go n = if n = h then true else if n = 0 then false else go idom.(n) in
  go n

let back_edges t ~idom =
  Array.fold_left
    (fun acc b ->
      List.fold_left
        (fun acc succ ->
          if dominates ~idom succ b.index then (b.index, succ) :: acc else acc)
        acc b.succs)
    [] t.blocks
  |> List.sort compare

let pp ppf t =
  Array.iter
    (fun b ->
      Format.fprintf ppf "@[B%d [%d,%d) -> %a@]@," b.index b.start_pc b.end_pc
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        b.succs)
    t.blocks
