module B = Vm.Bytecode
module S = Semant

exception Error of string * Ast.pos

let err pos fmt = Printf.ksprintf (fun msg -> raise (Error (msg, pos))) fmt

(* --- growable code emitter ---------------------------------------------- *)

type emitter = {
  mutable code : B.instr array;
  mutable len : int;
  mutable next_site : int;
  mutable max_slot : int;
}

let new_emitter () =
  { code = Array.make 64 B.Return; len = 0; next_site = 0; max_slot = 0 }

let here em = em.len

let emit em instr =
  if em.len = Array.length em.code then begin
    let bigger = Array.make (2 * em.len) B.Return in
    Array.blit em.code 0 bigger 0 em.len;
    em.code <- bigger
  end;
  em.code.(em.len) <- instr;
  em.len <- em.len + 1

let fresh_site em =
  let s = em.next_site in
  em.next_site <- s + 1;
  s

(* Emit a placeholder branch; returns its position for later patching. *)
let emit_branch em make =
  let at = here em in
  emit em (make (-1));
  at

let patch em positions target =
  List.iter
    (fun at ->
      em.code.(at) <-
        (match em.code.(at) with
        | B.Goto _ -> B.Goto target
        | B.If_icmp (c, _) -> B.If_icmp (c, target)
        | B.If (c, _) -> B.If (c, target)
        | B.If_acmpeq _ -> B.If_acmpeq target
        | B.If_acmpne _ -> B.If_acmpne target
        | B.Ifnull _ -> B.Ifnull target
        | B.Ifnonnull _ -> B.Ifnonnull target
        | instr -> instr))
    positions

let finish em = Array.sub em.code 0 em.len

(* --- scopes -------------------------------------------------------------- *)

type binding = { slot : int; sty : S.sty }

type scope = {
  mutable frames : (string * binding) list list;
  mutable next_slot : int;
}

let push_scope sc = sc.frames <- [] :: sc.frames
let pop_scope sc =
  match sc.frames with _ :: rest -> sc.frames <- rest | [] -> ()

let find_binding sc name =
  let rec go = function
    | [] -> None
    | frame :: rest -> (
        match List.assoc_opt name frame with
        | Some b -> Some b
        | None -> go rest)
  in
  go sc.frames

let bind sc em name sty =
  let slot = sc.next_slot in
  sc.next_slot <- slot + 1;
  em.max_slot <- max em.max_slot sc.next_slot;
  (match sc.frames with
  | frame :: rest -> sc.frames <- ((name, { slot; sty }) :: frame) :: rest
  | [] -> assert false);
  slot

(* --- per-method generation ----------------------------------------------- *)

type ctx = {
  env : S.env;
  cls : string option;  (** [Some] in instance methods only *)
  enclosing : string;  (** the class the method is declared in *)
  em : emitter;
  sc : scope;
  (* break/continue patch lists of the innermost loop *)
  mutable breaks : int list;
  mutable continues : int list;
}

let is_local ctx name = find_binding ctx.sc name <> None

let load_local ctx (b : binding) =
  emit ctx.em (if S.is_ref_sty b.sty then B.Aload b.slot else B.Iload b.slot)

let store_local ctx (b : binding) =
  emit ctx.em (if S.is_ref_sty b.sty then B.Astore b.slot else B.Istore b.slot)

(* The receiver of [Field]/[Call] is a bare class name (static access)? *)
let static_receiver ctx (base : Ast.expr) =
  match base.desc with
  | Ast.Var name when not (is_local ctx name) -> (
      match
        S.resolve_var ctx.env ~cls:ctx.cls ~is_local:(fun _ -> false) name
          base.pos
      with
      | S.Rclass c -> Some c
      | S.Rlocal | S.Rfield _ -> None
      | exception S.Error _ -> None)
  | _ -> None

let cmp_of_binop = function
  | Ast.Lt -> Some B.Lt
  | Ast.Le -> Some B.Le
  | Ast.Gt -> Some B.Gt
  | Ast.Ge -> Some B.Ge
  | Ast.Eq -> Some B.Eq
  | Ast.Ne -> Some B.Ne
  | _ -> None

let negate_cmp = function
  | B.Eq -> B.Ne
  | B.Ne -> B.Eq
  | B.Lt -> B.Ge
  | B.Ge -> B.Lt
  | B.Gt -> B.Le
  | B.Le -> B.Gt

let rec compile_expr ctx (e : Ast.expr) : S.sty =
  match e.desc with
  | Ast.Int_lit n ->
      emit ctx.em (B.Iconst n);
      S.Sint
  | Ast.Null_lit ->
      emit ctx.em B.Aconst_null;
      S.Snull
  | Ast.This -> (
      match ctx.cls with
      | Some c ->
          emit ctx.em (B.Aload 0);
          S.Sclass c
      | None -> err e.pos "'this' in a static method")
  | Ast.Var name -> (
      match find_binding ctx.sc name with
      | Some b ->
          load_local ctx b;
          b.sty
      | None -> (
          match
            S.resolve_var ctx.env ~cls:ctx.cls ~is_local:(fun _ -> false) name
              e.pos
          with
          | S.Rlocal -> assert false
          | S.Rfield f ->
              emit ctx.em (B.Aload 0);
              emit ctx.em
                (B.Getfield
                   {
                     site = fresh_site ctx.em;
                     offset = f.f_offset;
                     name = f.f_class ^ "." ^ name;
                     is_ref = S.field_is_ref f.f_ty;
                   });
              S.sty_of_ty f.f_ty
          | S.Rclass c -> err e.pos "class name '%s' used as a value" c))
  | Ast.Field (base, name) -> compile_field_read ctx base name e.pos
  | Ast.Static_field (cname, fname) ->
      compile_static_read ctx cname fname e.pos
  | Ast.Length base -> (
      match compile_expr ctx base with
      | S.Sint_array | S.Sclass_array _ ->
          emit ctx.em (B.Arraylength { site = fresh_site ctx.em });
          S.Sint
      | ty -> err base.pos "'.length' on non-array %s" (S.string_of_sty ty))
  | Ast.Index (base, index) -> (
      let bty = compile_expr ctx base in
      let ity = compile_expr ctx index in
      if ity <> S.Sint then err index.pos "array index must be int";
      let len_site = fresh_site ctx.em in
      let elem_site = fresh_site ctx.em in
      match bty with
      | S.Sint_array ->
          emit ctx.em (B.Iaload { len_site; elem_site });
          S.Sint
      | S.Sclass_array c ->
          emit ctx.em (B.Aaload { len_site; elem_site });
          S.Sclass c
      | ty -> err base.pos "indexing non-array %s" (S.string_of_sty ty))
  | Ast.Call (base, name, args) -> (
      match static_receiver ctx base with
      | Some cname -> compile_call ctx ~receiver:None cname name args e.pos
      | None -> (
          (* evaluate receiver first, then arguments *)
          match compile_expr ctx base with
          | S.Sclass cname ->
              compile_call ctx ~receiver:(Some ()) cname name args e.pos
          | ty ->
              err base.pos "type %s has no methods" (S.string_of_sty ty)))
  | Ast.Bare_call (name, args) -> (
      match
        Hashtbl.find_opt ctx.env.method_ids (ctx.enclosing ^ "." ^ name)
      with
      | None -> err e.pos "class %s has no method '%s'" ctx.enclosing name
      | Some id ->
          let m = ctx.env.methods.(id) in
          if not m.m_static then emit ctx.em (B.Aload 0);
          compile_args ctx m args e.pos;
          emit ctx.em (B.Invoke m.m_id);
          (match m.m_ret with None -> S.Svoid | Some ty -> S.sty_of_ty ty))
  | Ast.Static_call (cname, mname, args) ->
      compile_call ctx ~receiver:None cname mname args e.pos
  | Ast.New_object (cname, args) -> (
      match Hashtbl.find_opt ctx.env.classes cname with
      | None -> err e.pos "unknown class '%s'" cname
      | Some ci -> (
          emit ctx.em (B.New ci.c_id);
          match Hashtbl.find_opt ctx.env.method_ids (cname ^ ".<init>") with
          | Some ctor_id ->
              emit ctx.em B.Dup;
              let ctor = ctx.env.methods.(ctor_id) in
              compile_args ctx ctor args e.pos;
              emit ctx.em (B.Invoke ctor_id);
              S.Sclass cname
          | None ->
              if args <> [] then
                err e.pos "class %s has no constructor" cname;
              S.Sclass cname))
  | Ast.New_int_array size ->
      ignore (compile_expr ctx size);
      emit ctx.em (B.Newarray B.Int_array);
      S.Sint_array
  | Ast.New_class_array (cname, size) ->
      ignore (compile_expr ctx size);
      emit ctx.em (B.Newarray B.Ref_array);
      S.Sclass_array cname
  | Ast.Binop (op, a, b) -> compile_binop ctx op a b e.pos
  | Ast.Unop_neg a ->
      ignore (compile_expr ctx a);
      emit ctx.em B.Ineg;
      S.Sint
  | Ast.Unop_not _ -> materialize_condition ctx e

and compile_field_read ctx base name pos =
  match static_receiver ctx base with
  | Some cname -> compile_static_read ctx cname name pos
  | None -> (
      let bty = compile_expr ctx base in
      match
        S.resolve_field ctx.env ~base:(Some bty) ~class_of_base:None name pos
      with
      | S.Flength ->
          emit ctx.em (B.Arraylength { site = fresh_site ctx.em });
          S.Sint
      | S.Finstance f ->
          emit ctx.em
            (B.Getfield
               {
                 site = fresh_site ctx.em;
                 offset = f.f_offset;
                 name = f.f_class ^ "." ^ name;
                 is_ref = S.field_is_ref f.f_ty;
               });
          S.sty_of_ty f.f_ty
      | S.Fstatic _ -> assert false)

and compile_static_read ctx cname fname pos =
  match
    S.resolve_field ctx.env ~base:None ~class_of_base:(Some cname) fname pos
  with
  | S.Fstatic s ->
      emit ctx.em
        (B.Getstatic
           {
             site = fresh_site ctx.em;
             index = s.s_index;
             name = s.s_qualified;
             is_ref = S.field_is_ref s.s_ty;
           });
      S.sty_of_ty s.s_ty
  | S.Flength | S.Finstance _ -> assert false

and compile_args ctx (m : S.method_sig) args pos =
  if List.length args <> List.length m.m_params then
    err pos "%s expects %d argument(s), got %d" m.m_qualified
      (List.length m.m_params) (List.length args);
  List.iter (fun arg -> ignore (compile_expr ctx arg)) args

and compile_call ctx ~receiver cname mname args pos =
  let m =
    match receiver with
    | Some () -> S.resolve_call ctx.env ~receiver:(`Instance (S.Sclass cname)) mname pos
    | None -> S.resolve_call ctx.env ~receiver:(`Static cname) mname pos
  in
  compile_args ctx m args pos;
  emit ctx.em (B.Invoke m.m_id);
  match m.m_ret with None -> S.Svoid | Some ty -> S.sty_of_ty ty

and compile_binop ctx op a b pos =
  match op with
  | Ast.And | Ast.Or ->
      materialize_condition ctx { Ast.desc = Ast.Binop (op, a, b); pos }
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
      materialize_condition ctx { Ast.desc = Ast.Binop (op, a, b); pos }
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Rem | Ast.Band | Ast.Bor
  | Ast.Bxor | Ast.Shl | Ast.Shr ->
      ignore (compile_expr ctx a);
      ignore (compile_expr ctx b);
      emit ctx.em
        (match op with
        | Ast.Add -> B.Iadd
        | Ast.Sub -> B.Isub
        | Ast.Mul -> B.Imul
        | Ast.Div -> B.Idiv
        | Ast.Rem -> B.Irem
        | Ast.Band -> B.Iand
        | Ast.Bor -> B.Ior
        | Ast.Bxor -> B.Ixor
        | Ast.Shl -> B.Ishl
        | Ast.Shr -> B.Ishr
        | _ -> assert false);
      S.Sint

(* Compile a condition as control flow: returns patch positions that jump
   when the condition is TRUE; control falls through when it is false. *)
and jump_if_true ctx (e : Ast.expr) : int list =
  match e.desc with
  | Ast.Unop_not inner -> jump_if_false ctx inner
  | Ast.Binop (Ast.And, a, b) ->
      let false_a = jump_if_false ctx a in
      let true_b = jump_if_true ctx b in
      patch ctx.em false_a (here ctx.em);
      true_b
  | Ast.Binop (Ast.Or, a, b) ->
      (* bind explicitly: emission order must be left then right *)
      let true_a = jump_if_true ctx a in
      let true_b = jump_if_true ctx b in
      true_a @ true_b
  | Ast.Binop (op, a, b) when cmp_of_binop op <> None ->
      compile_comparison ctx op a b ~negated:false
  | _ ->
      ignore (compile_expr ctx e);
      [ emit_branch ctx.em (fun t -> B.If (B.Ne, t)) ]

(* Patch positions that jump when the condition is FALSE. *)
and jump_if_false ctx (e : Ast.expr) : int list =
  match e.desc with
  | Ast.Unop_not inner -> jump_if_true ctx inner
  | Ast.Binop (Ast.And, a, b) ->
      (* bind explicitly: emission order must be left then right *)
      let false_a = jump_if_false ctx a in
      let false_b = jump_if_false ctx b in
      false_a @ false_b
  | Ast.Binop (Ast.Or, a, b) ->
      let true_a = jump_if_true ctx a in
      let false_b = jump_if_false ctx b in
      patch ctx.em true_a (here ctx.em);
      false_b
  | Ast.Binop (op, a, b) when cmp_of_binop op <> None ->
      compile_comparison ctx op a b ~negated:true
  | _ ->
      ignore (compile_expr ctx e);
      [ emit_branch ctx.em (fun t -> B.If (B.Eq, t)) ]

and compile_comparison ctx op a b ~negated =
  let ta = compile_expr ctx a in
  let tb = compile_expr ctx b in
  let cmp = Option.get (cmp_of_binop op) in
  let cmp = if negated then negate_cmp cmp else cmp in
  if S.is_ref_sty ta || S.is_ref_sty tb then
    match cmp with
    | B.Eq -> [ emit_branch ctx.em (fun t -> B.If_acmpeq t) ]
    | B.Ne -> [ emit_branch ctx.em (fun t -> B.If_acmpne t) ]
    | _ -> err a.pos "references only support == and !="
  else [ emit_branch ctx.em (fun t -> B.If_icmp (cmp, t)) ]

(* A boolean-valued expression in a value position: branch and push 0/1. *)
and materialize_condition ctx (e : Ast.expr) : S.sty =
  let trues = jump_if_true ctx e in
  emit ctx.em (B.Iconst 0);
  let done_jump = emit_branch ctx.em (fun t -> B.Goto t) in
  patch ctx.em trues (here ctx.em);
  emit ctx.em (B.Iconst 1);
  patch ctx.em [ done_jump ] (here ctx.em);
  S.Sint

let rec compile_stmt ctx (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Decl (ty, name, init) ->
      let sty = S.sty_of_ty ty in
      ignore (compile_expr ctx init);
      let slot = bind ctx.sc ctx.em name sty in
      emit ctx.em (if S.is_ref_sty sty then B.Astore slot else B.Istore slot)
  | Ast.Assign (lv, value) -> compile_assign ctx lv value s.spos
  | Ast.If (cond, then_b, else_b) ->
      let falses = jump_if_false ctx cond in
      compile_block ctx then_b;
      if else_b = [] then patch ctx.em falses (here ctx.em)
      else begin
        let skip_else = emit_branch ctx.em (fun t -> B.Goto t) in
        patch ctx.em falses (here ctx.em);
        compile_block ctx else_b;
        patch ctx.em [ skip_else ] (here ctx.em)
      end
  | Ast.While (cond, body) ->
      let saved_breaks = ctx.breaks and saved_continues = ctx.continues in
      ctx.breaks <- [];
      ctx.continues <- [];
      let start = here ctx.em in
      let falses = jump_if_false ctx cond in
      compile_block ctx body;
      patch ctx.em ctx.continues start;
      emit ctx.em (B.Goto start);
      patch ctx.em falses (here ctx.em);
      patch ctx.em ctx.breaks (here ctx.em);
      ctx.breaks <- saved_breaks;
      ctx.continues <- saved_continues
  | Ast.For (init, cond, update, body) ->
      push_scope ctx.sc;
      Option.iter (compile_stmt ctx) init;
      let saved_breaks = ctx.breaks and saved_continues = ctx.continues in
      ctx.breaks <- [];
      ctx.continues <- [];
      let start = here ctx.em in
      let falses = jump_if_false ctx cond in
      compile_block ctx body;
      let continue_target = here ctx.em in
      Option.iter (compile_stmt ctx) update;
      emit ctx.em (B.Goto start);
      patch ctx.em ctx.continues continue_target;
      patch ctx.em falses (here ctx.em);
      patch ctx.em ctx.breaks (here ctx.em);
      ctx.breaks <- saved_breaks;
      ctx.continues <- saved_continues;
      pop_scope ctx.sc
  | Ast.Return None -> emit ctx.em B.Return
  | Ast.Return (Some e) ->
      let ty = compile_expr ctx e in
      emit ctx.em (if S.is_ref_sty ty then B.Areturn else B.Ireturn)
  | Ast.Expr_stmt e -> (
      match compile_expr ctx e with
      | S.Svoid -> ()
      | _ -> emit ctx.em B.Pop)
  | Ast.Print e ->
      ignore (compile_expr ctx e);
      emit ctx.em B.Print
  | Ast.Break -> ctx.breaks <- emit_branch ctx.em (fun t -> B.Goto t) :: ctx.breaks
  | Ast.Continue ->
      ctx.continues <- emit_branch ctx.em (fun t -> B.Goto t) :: ctx.continues
  | Ast.Block body -> compile_block ctx body

and compile_assign ctx lv value pos =
  match lv with
  | Ast.Lvar name -> (
      match find_binding ctx.sc name with
      | Some b ->
          ignore (compile_expr ctx value);
          store_local ctx b
      | None -> (
          match
            S.resolve_var ctx.env ~cls:ctx.cls ~is_local:(fun _ -> false) name
              pos
          with
          | S.Rlocal -> assert false
          | S.Rfield f ->
              emit ctx.em (B.Aload 0);
              ignore (compile_expr ctx value);
              emit ctx.em
                (B.Putfield
                   { offset = f.f_offset; name = f.f_class ^ "." ^ name })
          | S.Rclass c -> err pos "cannot assign to class name '%s'" c))
  | Ast.Lfield (base, name) -> (
      match static_receiver ctx base with
      | Some cname -> compile_static_store ctx cname name value pos
      | None -> (
          let bty = compile_expr ctx base in
          match
            S.resolve_field ctx.env ~base:(Some bty) ~class_of_base:None name
              pos
          with
          | S.Flength -> err pos "cannot assign to '.length'"
          | S.Finstance f ->
              ignore (compile_expr ctx value);
              emit ctx.em
                (B.Putfield
                   { offset = f.f_offset; name = f.f_class ^ "." ^ name })
          | S.Fstatic _ -> assert false))
  | Ast.Lstatic (cname, fname) -> compile_static_store ctx cname fname value pos
  | Ast.Lindex (base, index) -> (
      let bty = compile_expr ctx base in
      ignore (compile_expr ctx index);
      ignore (compile_expr ctx value);
      let len_site = fresh_site ctx.em in
      match bty with
      | S.Sint_array -> emit ctx.em (B.Iastore { len_site })
      | S.Sclass_array _ -> emit ctx.em (B.Aastore { len_site })
      | ty -> err pos "indexing non-array %s" (S.string_of_sty ty))

and compile_static_store ctx cname fname value pos =
  match
    S.resolve_field ctx.env ~base:None ~class_of_base:(Some cname) fname pos
  with
  | S.Fstatic s ->
      ignore (compile_expr ctx value);
      emit ctx.em (B.Putstatic { index = s.s_index; name = s.s_qualified })
  | S.Flength | S.Finstance _ -> assert false

and compile_block ctx body =
  push_scope ctx.sc;
  List.iter (compile_stmt ctx) body;
  pop_scope ctx.sc

let compile_method env (m : S.method_sig) =
  let em = new_emitter () in
  let sc = { frames = [ [] ]; next_slot = 0 } in
  let ctx =
    {
      env;
      cls = (if m.m_static then None else Some m.m_class);
      enclosing = m.m_class;
      em;
      sc;
      breaks = [];
      continues = [];
    }
  in
  (* slot 0 = this for instance methods, then the parameters *)
  if not m.m_static then
    ignore (bind sc em "this" (S.Sclass m.m_class));
  List.iter
    (fun (ty, name) -> ignore (bind sc em name (S.sty_of_ty ty)))
    m.m_params;
  compile_block ctx m.m_body;
  (* Fallback exit if control reaches the end of the body. *)
  (match m.m_ret with
  | None -> emit em B.Return
  | Some ty ->
      if S.is_ref_sty (S.sty_of_ty ty) then begin
        emit em B.Aconst_null;
        emit em B.Areturn
      end
      else begin
        emit em (B.Iconst 0);
        emit em B.Ireturn
      end);
  let arity = List.length m.m_params + if m.m_static then 0 else 1 in
  Vm.Classfile.make_method ~method_id:m.m_id ~method_name:m.m_qualified ~arity
    ~returns_value:(m.m_ret <> None) ~max_locals:(max em.max_slot arity)
    ~code:(finish em)

let generate (env : S.env) =
  let classes =
    Hashtbl.fold (fun _ ci acc -> ci :: acc) env.classes []
    |> List.sort (fun (a : S.class_info) b -> compare a.c_id b.c_id)
    |> List.map (fun (ci : S.class_info) ->
           Vm.Classfile.make_class ~class_id:ci.c_id ~class_name:ci.c_name
             ~field_specs:
               (List.map
                  (fun (name, (f : S.field_info)) ->
                    (name, S.field_is_ref f.f_ty))
                  ci.c_fields))
    |> Array.of_list
  in
  let methods = Array.map (compile_method env) env.methods in
  let statics = Array.make env.n_statics { Vm.Classfile.static_name = ""; static_index = 0 } in
  Hashtbl.iter
    (fun _ (s : S.static_info) ->
      statics.(s.s_index) <-
        { Vm.Classfile.static_name = s.s_qualified; static_index = s.s_index })
    env.statics;
  { Vm.Classfile.classes; methods; statics; entry = env.entry }
