(** Recursive-descent parser for MiniJava. *)

exception Error of string * Token.pos

val parse : Token.spanned list -> Ast.program
(** Raises {!Error} with a source position on malformed input. *)

val parse_string : string -> Ast.program
(** [tokenize] + [parse]; lexer errors are re-raised as {!Error}. *)
