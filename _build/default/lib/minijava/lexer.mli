(** Hand-written lexer for MiniJava. Supports [//] line comments and
    [/* ... */] block comments. *)

exception Error of string * Token.pos

val tokenize : string -> Token.spanned list
(** The token stream of a source text, ending with {!Token.Eof}. Raises
    {!Error} on an illegal character or an unterminated comment. *)
