(** Semantic analysis: symbol tables and type checking.

    MiniJava has no inheritance; method dispatch is static on the declared
    class of the receiver. Booleans are ints. [null] is assignable to any
    reference type. The resolution helpers are shared with the bytecode
    generator so typing logic lives in one place. *)

exception Error of string * Ast.pos

(** Semantic types: source types plus the type of [null]. *)
type sty =
  | Sint
  | Sclass of string
  | Sint_array
  | Sclass_array of string
  | Snull
  | Svoid  (** result of a void call; never assignable *)

type field_info = {
  f_slot : int;
  f_offset : int;  (** byte offset from object base *)
  f_ty : Ast.ty;
  f_class : string;
}

type method_sig = {
  m_id : int;
  m_qualified : string;  (** ["C.m"] *)
  m_class : string;
  m_static : bool;
  m_params : (Ast.ty * string) list;
  m_ret : Ast.ty option;
  m_body : Ast.stmt list;
  m_is_constructor : bool;
}

type static_info = { s_index : int; s_ty : Ast.ty; s_qualified : string }

type class_info = {
  c_id : int;
  c_name : string;
  c_fields : (string * field_info) list;  (** declaration order *)
}

type env = {
  classes : (string, class_info) Hashtbl.t;
  methods : method_sig array;
  method_ids : (string, int) Hashtbl.t;  (** qualified name -> id *)
  statics : (string, static_info) Hashtbl.t;  (** qualified name -> info *)
  n_statics : int;
  entry : int;  (** method id of [main] *)
}

val analyze : Ast.program -> env
(** Build tables and type-check every method body. Raises {!Error}. *)

val sty_of_ty : Ast.ty -> sty
val string_of_sty : sty -> string

val assignable : target:sty -> sty -> bool
(** [null] into references; otherwise exact match. *)

val is_ref_sty : sty -> bool

type var_resolution =
  | Rlocal  (** a local or parameter; the caller owns the slot map *)
  | Rfield of field_info  (** implicit [this] field *)
  | Rclass of string  (** a class name (static member access) *)

val resolve_var :
  env -> cls:string option -> is_local:(string -> bool) -> string ->
  Ast.pos -> var_resolution

type field_access =
  | Flength  (** [.length] on an array *)
  | Finstance of field_info
  | Fstatic of static_info

val resolve_field : env -> base:sty option -> class_of_base:string option ->
  string -> Ast.pos -> field_access
(** [base] is the receiver's type ([None] when the receiver is a class
    name, given by [class_of_base]). *)

val resolve_call :
  env -> receiver:[ `Instance of sty | `Static of string ] -> string ->
  Ast.pos -> method_sig

val field_is_ref : Ast.ty -> bool
