(** Bytecode generation from a type-checked MiniJava program.

    Conditions compile to branch trees (short-circuit [&&]/[||]); array
    accesses compile to the fused instructions that carry both the
    bounds-check length-load site and the element site; every load through
    a reference receives a fresh site id, densely numbered per method. *)

exception Error of string * Ast.pos

val generate : Semant.env -> Vm.Classfile.program
(** Assumes {!Semant.analyze} succeeded on the same program; may still
    raise {!Error} on constructs the checker admits but the generator
    cannot place (none are known). *)
