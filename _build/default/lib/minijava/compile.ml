type error = { message : string; line : int; col : int }

let string_of_error e = Printf.sprintf "%d:%d: %s" e.line e.col e.message

let of_pos (pos : Token.pos) message =
  { message; line = pos.line; col = pos.col }

let program_of_source source =
  match
    let ast = Parser.parse_string source in
    let env = Semant.analyze ast in
    Codegen.generate env
  with
  | program -> Ok program
  | exception Parser.Error (msg, pos) -> Error (of_pos pos ("parse error: " ^ msg))
  | exception Lexer.Error (msg, pos) -> Error (of_pos pos ("lex error: " ^ msg))
  | exception Semant.Error (msg, pos) -> Error (of_pos pos ("type error: " ^ msg))
  | exception Codegen.Error (msg, pos) ->
      Error (of_pos pos ("codegen error: " ^ msg))

let program_of_source_exn source =
  match program_of_source source with
  | Ok program -> program
  | Error e -> failwith (string_of_error e)
