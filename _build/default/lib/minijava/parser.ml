exception Error of string * Token.pos

type state = { tokens : Token.spanned array; mutable cursor : int }

let current st = st.tokens.(st.cursor)
let peek_token st = (current st).token
let peek_pos st = (current st).pos

let peek_ahead st n =
  let i = st.cursor + n in
  if i < Array.length st.tokens then st.tokens.(i).token else Token.Eof

let advance st =
  if st.cursor + 1 < Array.length st.tokens then st.cursor <- st.cursor + 1

let fail st msg = raise (Error (msg, peek_pos st))

let expect st token =
  if peek_token st = token then advance st
  else
    fail st
      (Printf.sprintf "expected '%s' but found '%s'" (Token.to_string token)
         (Token.to_string (peek_token st)))

let expect_ident st =
  match peek_token st with
  | Token.Ident name ->
      advance st;
      name
  | t -> fail st (Printf.sprintf "expected identifier, found '%s'" (Token.to_string t))

(* --- types ------------------------------------------------------------ *)

(* [int], [int[]], [C], [C[]]. Assumes the caller verified the leading
   token starts a type. *)
let parse_ty st =
  let base =
    match peek_token st with
    | Token.Kw_int ->
        advance st;
        Ast.Tint
    | Token.Ident name ->
        advance st;
        Ast.Tclass name
    | t -> fail st (Printf.sprintf "expected type, found '%s'" (Token.to_string t))
  in
  if peek_token st = Token.Lbracket && peek_ahead st 1 = Token.Rbracket then begin
    advance st;
    advance st;
    match base with
    | Ast.Tint -> Ast.Tint_array
    | Ast.Tclass c -> Ast.Tclass_array c
    | Ast.Tint_array | Ast.Tclass_array _ ->
        fail st "multi-dimensional array types are not supported"
  end
  else base

(* --- expressions ------------------------------------------------------ *)

let mk pos desc = { Ast.desc; pos }

let rec parse_expr st = parse_or st

and parse_or st =
  let rec go left =
    if peek_token st = Token.Or_or then begin
      let pos = peek_pos st in
      advance st;
      let right = parse_and st in
      go (mk pos (Ast.Binop (Ast.Or, left, right)))
    end
    else left
  in
  go (parse_and st)

and parse_and st =
  let rec go left =
    if peek_token st = Token.And_and then begin
      let pos = peek_pos st in
      advance st;
      let right = parse_bitor st in
      go (mk pos (Ast.Binop (Ast.And, left, right)))
    end
    else left
  in
  go (parse_bitor st)

and parse_bitor st =
  let rec go left =
    match peek_token st with
    | Token.Bar ->
        let pos = peek_pos st in
        advance st;
        go (mk pos (Ast.Binop (Ast.Bor, left, parse_bitxor st)))
    | _ -> left
  in
  go (parse_bitxor st)

and parse_bitxor st =
  let rec go left =
    match peek_token st with
    | Token.Caret ->
        let pos = peek_pos st in
        advance st;
        go (mk pos (Ast.Binop (Ast.Bxor, left, parse_bitand st)))
    | _ -> left
  in
  go (parse_bitand st)

and parse_bitand st =
  let rec go left =
    match peek_token st with
    | Token.Amp ->
        let pos = peek_pos st in
        advance st;
        go (mk pos (Ast.Binop (Ast.Band, left, parse_equality st)))
    | _ -> left
  in
  go (parse_equality st)

and parse_equality st =
  let rec go left =
    match peek_token st with
    | Token.Eq ->
        let pos = peek_pos st in
        advance st;
        go (mk pos (Ast.Binop (Ast.Eq, left, parse_relational st)))
    | Token.Ne ->
        let pos = peek_pos st in
        advance st;
        go (mk pos (Ast.Binop (Ast.Ne, left, parse_relational st)))
    | _ -> left
  in
  go (parse_relational st)

and parse_relational st =
  let rec go left =
    let op =
      match peek_token st with
      | Token.Lt -> Some Ast.Lt
      | Token.Le -> Some Ast.Le
      | Token.Gt -> Some Ast.Gt
      | Token.Ge -> Some Ast.Ge
      | _ -> None
    in
    match op with
    | Some op ->
        let pos = peek_pos st in
        advance st;
        go (mk pos (Ast.Binop (op, left, parse_shift st)))
    | None -> left
  in
  go (parse_shift st)

and parse_shift st =
  let rec go left =
    let op =
      match peek_token st with
      | Token.Shl -> Some Ast.Shl
      | Token.Shr -> Some Ast.Shr
      | _ -> None
    in
    match op with
    | Some op ->
        let pos = peek_pos st in
        advance st;
        go (mk pos (Ast.Binop (op, left, parse_additive st)))
    | None -> left
  in
  go (parse_additive st)

and parse_additive st =
  let rec go left =
    let op =
      match peek_token st with
      | Token.Plus -> Some Ast.Add
      | Token.Minus -> Some Ast.Sub
      | _ -> None
    in
    match op with
    | Some op ->
        let pos = peek_pos st in
        advance st;
        go (mk pos (Ast.Binop (op, left, parse_multiplicative st)))
    | None -> left
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go left =
    let op =
      match peek_token st with
      | Token.Star -> Some Ast.Mul
      | Token.Slash -> Some Ast.Div
      | Token.Percent -> Some Ast.Rem
      | _ -> None
    in
    match op with
    | Some op ->
        let pos = peek_pos st in
        advance st;
        go (mk pos (Ast.Binop (op, left, parse_unary st)))
    | None -> left
  in
  go (parse_unary st)

and parse_unary st =
  let pos = peek_pos st in
  match peek_token st with
  | Token.Minus ->
      advance st;
      mk pos (Ast.Unop_neg (parse_unary st))
  | Token.Not ->
      advance st;
      mk pos (Ast.Unop_not (parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go e =
    match peek_token st with
    | Token.Dot -> (
        advance st;
        let name = expect_ident st in
        let pos = peek_pos st in
        if peek_token st = Token.Lparen then begin
          let args = parse_args st in
          go (mk pos (Ast.Call (e, name, args)))
        end
        else go (mk pos (Ast.Field (e, name))))
    | Token.Lbracket ->
        let pos = peek_pos st in
        advance st;
        let index = parse_expr st in
        expect st Token.Rbracket;
        go (mk pos (Ast.Index (e, index)))
    | _ -> e
  in
  go (parse_primary st)

and parse_args st =
  expect st Token.Lparen;
  if peek_token st = Token.Rparen then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let e = parse_expr st in
      if peek_token st = Token.Comma then begin
        advance st;
        go (e :: acc)
      end
      else begin
        expect st Token.Rparen;
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_primary st =
  let pos = peek_pos st in
  match peek_token st with
  | Token.Int_literal n ->
      advance st;
      mk pos (Ast.Int_lit n)
  | Token.Kw_null ->
      advance st;
      mk pos Ast.Null_lit
  | Token.Kw_this ->
      advance st;
      mk pos Ast.This
  | Token.Lparen ->
      advance st;
      let e = parse_expr st in
      expect st Token.Rparen;
      e
  | Token.Kw_new -> (
      advance st;
      match peek_token st with
      | Token.Kw_int ->
          advance st;
          expect st Token.Lbracket;
          let size = parse_expr st in
          expect st Token.Rbracket;
          mk pos (Ast.New_int_array size)
      | Token.Ident cls ->
          advance st;
          if peek_token st = Token.Lbracket then begin
            advance st;
            let size = parse_expr st in
            expect st Token.Rbracket;
            mk pos (Ast.New_class_array (cls, size))
          end
          else
            let args = parse_args st in
            mk pos (Ast.New_object (cls, args))
      | t ->
          fail st
            (Printf.sprintf "expected class name or 'int' after 'new', found '%s'"
               (Token.to_string t)))
  | Token.Ident name ->
      advance st;
      if peek_token st = Token.Lparen then
        let args = parse_args st in
        mk pos (Ast.Bare_call (name, args))
      else mk pos (Ast.Var name)
  | t -> fail st (Printf.sprintf "expected expression, found '%s'" (Token.to_string t))

(* --- statements ------------------------------------------------------- *)

let lvalue_of_expr st (e : Ast.expr) =
  match e.desc with
  | Ast.Var name -> Ast.Lvar name
  | Ast.Field (base, name) -> Ast.Lfield (base, name)
  | Ast.Index (base, index) -> Ast.Lindex (base, index)
  | _ -> fail st "left-hand side of assignment is not assignable"

let starts_declaration st =
  match (peek_token st, peek_ahead st 1, peek_ahead st 2) with
  | Token.Kw_int, _, _ -> true
  | Token.Ident _, Token.Ident _, _ -> true
  | Token.Ident _, Token.Lbracket, Token.Rbracket -> true
  | _ -> false

let rec parse_stmt st =
  let spos = peek_pos st in
  match peek_token st with
  | Token.Lbrace ->
      let body = parse_block st in
      { Ast.sdesc = Ast.Block body; spos }
  | Token.Kw_if ->
      advance st;
      expect st Token.Lparen;
      let cond = parse_expr st in
      expect st Token.Rparen;
      let then_branch = parse_body st in
      let else_branch =
        if peek_token st = Token.Kw_else then begin
          advance st;
          parse_body st
        end
        else []
      in
      { Ast.sdesc = Ast.If (cond, then_branch, else_branch); spos }
  | Token.Kw_while ->
      advance st;
      expect st Token.Lparen;
      let cond = parse_expr st in
      expect st Token.Rparen;
      let body = parse_body st in
      { Ast.sdesc = Ast.While (cond, body); spos }
  | Token.Kw_for ->
      advance st;
      expect st Token.Lparen;
      let init =
        if peek_token st = Token.Semi then None
        else Some (parse_simple_stmt st)
      in
      expect st Token.Semi;
      let cond =
        if peek_token st = Token.Semi then
          mk spos (Ast.Int_lit 1)
        else parse_expr st
      in
      expect st Token.Semi;
      let update =
        if peek_token st = Token.Rparen then None
        else Some (parse_simple_stmt st)
      in
      expect st Token.Rparen;
      let body = parse_body st in
      { Ast.sdesc = Ast.For (init, cond, update, body); spos }
  | Token.Kw_return ->
      advance st;
      let value =
        if peek_token st = Token.Semi then None else Some (parse_expr st)
      in
      expect st Token.Semi;
      { Ast.sdesc = Ast.Return value; spos }
  | Token.Kw_print ->
      advance st;
      expect st Token.Lparen;
      let e = parse_expr st in
      expect st Token.Rparen;
      expect st Token.Semi;
      { Ast.sdesc = Ast.Print e; spos }
  | Token.Kw_break ->
      advance st;
      expect st Token.Semi;
      { Ast.sdesc = Ast.Break; spos }
  | Token.Kw_continue ->
      advance st;
      expect st Token.Semi;
      { Ast.sdesc = Ast.Continue; spos }
  | _ ->
      let stmt = parse_simple_stmt st in
      expect st Token.Semi;
      stmt

(* declaration / assignment / call, without the trailing ';' (shared with
   'for' headers). *)
and parse_simple_stmt st =
  let spos = peek_pos st in
  if starts_declaration st then begin
    let ty = parse_ty st in
    let name = expect_ident st in
    expect st Token.Assign;
    let init = parse_expr st in
    { Ast.sdesc = Ast.Decl (ty, name, init); spos }
  end
  else begin
    let e = parse_expr st in
    if peek_token st = Token.Assign then begin
      advance st;
      let value = parse_expr st in
      { Ast.sdesc = Ast.Assign (lvalue_of_expr st e, value); spos }
    end
    else { Ast.sdesc = Ast.Expr_stmt e; spos }
  end

and parse_body st =
  if peek_token st = Token.Lbrace then parse_block st else [ parse_stmt st ]

and parse_block st =
  expect st Token.Lbrace;
  let rec go acc =
    if peek_token st = Token.Rbrace then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

(* --- declarations ----------------------------------------------------- *)

let parse_params st =
  expect st Token.Lparen;
  if peek_token st = Token.Rparen then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let ty = parse_ty st in
      let name = expect_ident st in
      if peek_token st = Token.Comma then begin
        advance st;
        go ((ty, name) :: acc)
      end
      else begin
        expect st Token.Rparen;
        List.rev ((ty, name) :: acc)
      end
    in
    go []
  end

let parse_class_member st ~class_name =
  let member_pos = peek_pos st in
  let is_static =
    if peek_token st = Token.Kw_static then begin
      advance st;
      true
    end
    else false
  in
  match peek_token st with
  | Token.Kw_void ->
      advance st;
      let name = expect_ident st in
      let params = parse_params st in
      let body = parse_block st in
      `Method
        {
          Ast.method_ret = None;
          method_name = name;
          method_static = is_static;
          method_params = params;
          method_body = body;
          method_pos = member_pos;
          is_constructor = false;
        }
  | Token.Ident name when name = class_name && peek_ahead st 1 = Token.Lparen
    ->
      (* constructor: ClassName(params) { ... } *)
      advance st;
      let params = parse_params st in
      let body = parse_block st in
      `Method
        {
          Ast.method_ret = None;
          method_name = "<init>";
          method_static = false;
          method_params = params;
          method_body = body;
          method_pos = member_pos;
          is_constructor = true;
        }
  | _ -> (
      let ty = parse_ty st in
      let name = expect_ident st in
      match peek_token st with
      | Token.Lparen ->
          let params = parse_params st in
          let body = parse_block st in
          `Method
            {
              Ast.method_ret = Some ty;
              method_name = name;
              method_static = is_static;
              method_params = params;
              method_body = body;
              method_pos = member_pos;
              is_constructor = false;
            }
      | Token.Semi ->
          advance st;
          `Field
            {
              Ast.field_ty = ty;
              field_name = name;
              field_static = is_static;
              field_pos = member_pos;
            }
      | t ->
          fail st
            (Printf.sprintf "expected '(' or ';' after member name, found '%s'"
               (Token.to_string t)))

let parse_class st =
  let class_pos = peek_pos st in
  expect st Token.Kw_class;
  let class_name = expect_ident st in
  expect st Token.Lbrace;
  let rec go fields methods =
    if peek_token st = Token.Rbrace then begin
      advance st;
      {
        Ast.class_name;
        class_fields = List.rev fields;
        class_methods = List.rev methods;
        class_pos;
      }
    end
    else
      match parse_class_member st ~class_name with
      | `Field f -> go (f :: fields) methods
      | `Method m -> go fields (m :: methods)
  in
  go [] []

let parse tokens =
  let st = { tokens = Array.of_list tokens; cursor = 0 } in
  if Array.length st.tokens = 0 then []
  else begin
    let rec go acc =
      match peek_token st with
      | Token.Eof -> List.rev acc
      | Token.Kw_class -> go (parse_class st :: acc)
      | t ->
          fail st
            (Printf.sprintf "expected 'class', found '%s'" (Token.to_string t))
    in
    go []
  end

let parse_string source =
  match Lexer.tokenize source with
  | tokens -> parse tokens
  | exception Lexer.Error (msg, pos) -> raise (Error (msg, pos))
