exception Error of string * Token.pos

type state = {
  source : string;
  mutable offset : int;
  mutable line : int;
  mutable col : int;
}

let keyword_of = function
  | "class" -> Some Token.Kw_class
  | "static" -> Some Token.Kw_static
  | "void" -> Some Token.Kw_void
  | "int" -> Some Token.Kw_int
  | "if" -> Some Token.Kw_if
  | "else" -> Some Token.Kw_else
  | "while" -> Some Token.Kw_while
  | "for" -> Some Token.Kw_for
  | "return" -> Some Token.Kw_return
  | "new" -> Some Token.Kw_new
  | "null" -> Some Token.Kw_null
  | "this" -> Some Token.Kw_this
  | "print" -> Some Token.Kw_print
  | "break" -> Some Token.Kw_break
  | "continue" -> Some Token.Kw_continue
  | _ -> None

let peek st =
  if st.offset < String.length st.source then Some st.source.[st.offset]
  else None

let peek2 st =
  if st.offset + 1 < String.length st.source then Some st.source.[st.offset + 1]
  else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.offset <- st.offset + 1

let pos st = { Token.line = st.line; col = st.col }

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match (peek st, peek2 st) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
      advance st;
      skip_trivia st
  | Some '/', Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some '/', Some '*' ->
      let start = pos st in
      advance st;
      advance st;
      let rec find_close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            find_close ()
        | None, _ -> raise (Error ("unterminated block comment", start))
      in
      find_close ();
      skip_trivia st
  | _ -> ()

let lex_number st =
  let start = st.offset in
  while match peek st with Some c -> is_digit c | None -> false do
    advance st
  done;
  let text = String.sub st.source start (st.offset - start) in
  match int_of_string_opt text with
  | Some n -> Token.Int_literal n
  | None -> raise (Error ("integer literal out of range: " ^ text, pos st))

let lex_word st =
  let start = st.offset in
  while match peek st with Some c -> is_ident_char c | None -> false do
    advance st
  done;
  let text = String.sub st.source start (st.offset - start) in
  match keyword_of text with Some kw -> kw | None -> Token.Ident text

let lex_operator st =
  let two tok =
    advance st;
    advance st;
    tok
  in
  let one tok =
    advance st;
    tok
  in
  match (peek st, peek2 st) with
  | Some '<', Some '=' -> two Token.Le
  | Some '<', Some '<' -> two Token.Shl
  | Some '>', Some '=' -> two Token.Ge
  | Some '>', Some '>' -> two Token.Shr
  | Some '=', Some '=' -> two Token.Eq
  | Some '!', Some '=' -> two Token.Ne
  | Some '&', Some '&' -> two Token.And_and
  | Some '|', Some '|' -> two Token.Or_or
  | Some '<', _ -> one Token.Lt
  | Some '>', _ -> one Token.Gt
  | Some '=', _ -> one Token.Assign
  | Some '!', _ -> one Token.Not
  | Some '&', _ -> one Token.Amp
  | Some '|', _ -> one Token.Bar
  | Some '^', _ -> one Token.Caret
  | Some '+', _ -> one Token.Plus
  | Some '-', _ -> one Token.Minus
  | Some '*', _ -> one Token.Star
  | Some '/', _ -> one Token.Slash
  | Some '%', _ -> one Token.Percent
  | Some '(', _ -> one Token.Lparen
  | Some ')', _ -> one Token.Rparen
  | Some '{', _ -> one Token.Lbrace
  | Some '}', _ -> one Token.Rbrace
  | Some '[', _ -> one Token.Lbracket
  | Some ']', _ -> one Token.Rbracket
  | Some ';', _ -> one Token.Semi
  | Some ',', _ -> one Token.Comma
  | Some '.', _ -> one Token.Dot
  | Some c, _ ->
      raise (Error (Printf.sprintf "illegal character %C" c, pos st))
  | None, _ -> Token.Eof

let tokenize source =
  let st = { source; offset = 0; line = 1; col = 1 } in
  let rec go acc =
    skip_trivia st;
    let p = pos st in
    match peek st with
    | None -> List.rev ({ Token.token = Token.Eof; pos = p } :: acc)
    | Some c ->
        let token =
          if is_digit c then lex_number st
          else if is_ident_start c then lex_word st
          else lex_operator st
        in
        go ({ Token.token; pos = p } :: acc)
  in
  go []
