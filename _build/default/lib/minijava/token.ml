(** Lexical tokens of the MiniJava frontend. *)

type t =
  | Int_literal of int
  | Ident of string
  (* keywords *)
  | Kw_class
  | Kw_static
  | Kw_void
  | Kw_int
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_for
  | Kw_return
  | Kw_new
  | Kw_null
  | Kw_this
  | Kw_print
  | Kw_break
  | Kw_continue
  (* punctuation *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Dot
  | Assign
  (* operators *)
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Not
  | And_and
  | Or_or
  | Amp
  | Bar
  | Caret
  | Shl
  | Shr
  | Eof

type pos = { line : int; col : int }

type spanned = { token : t; pos : pos }

let to_string = function
  | Int_literal n -> string_of_int n
  | Ident s -> s
  | Kw_class -> "class"
  | Kw_static -> "static"
  | Kw_void -> "void"
  | Kw_int -> "int"
  | Kw_if -> "if"
  | Kw_else -> "else"
  | Kw_while -> "while"
  | Kw_for -> "for"
  | Kw_return -> "return"
  | Kw_new -> "new"
  | Kw_null -> "null"
  | Kw_this -> "this"
  | Kw_print -> "print"
  | Kw_break -> "break"
  | Kw_continue -> "continue"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Semi -> ";"
  | Comma -> ","
  | Dot -> "."
  | Assign -> "="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Not -> "!"
  | And_and -> "&&"
  | Or_or -> "||"
  | Amp -> "&"
  | Bar -> "|"
  | Caret -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Eof -> "<eof>"
