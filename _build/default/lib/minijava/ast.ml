(** Abstract syntax of MiniJava.

    A Java subset sufficient for the paper's workloads: classes with
    instance and static [int]/reference fields, arrays of ints and of
    objects, static and instance methods, constructors, structured control
    flow. Booleans are ints (0/1), as in the bytecode. *)

type pos = Token.pos

type ty =
  | Tint
  | Tclass of string
  | Tint_array
  | Tclass_array of string

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And  (** short-circuit *)
  | Or  (** short-circuit *)

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Int_lit of int
  | Null_lit
  | This
  | Var of string  (** local, parameter, implicit field, or class name *)
  | Field of expr * string
  | Static_field of string * string  (** class, field *)
  | Index of expr * expr
  | Length of expr
  | Call of expr * string * expr list  (** instance call *)
  | Bare_call of string * expr list
      (** same-class call without receiver: [this.m(...)] in instance
          context, a static call otherwise *)
  | Static_call of string * string * expr list  (** class, method, args *)
  | New_object of string * expr list
  | New_int_array of expr
  | New_class_array of string * expr
  | Binop of binop * expr * expr
  | Unop_neg of expr
  | Unop_not of expr

type lvalue =
  | Lvar of string
  | Lfield of expr * string
  | Lstatic of string * string
  | Lindex of expr * expr

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of ty * string * expr
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr * stmt option * stmt list
  | Return of expr option
  | Expr_stmt of expr  (** a call evaluated for effect *)
  | Print of expr
  | Break
  | Continue
  | Block of stmt list

type field_decl = {
  field_ty : ty;
  field_name : string;
  field_static : bool;
  field_pos : pos;
}

type method_decl = {
  method_ret : ty option;  (** [None] for void *)
  method_name : string;
  method_static : bool;
  method_params : (ty * string) list;
  method_body : stmt list;
  method_pos : pos;
  is_constructor : bool;
}

type class_decl = {
  class_name : string;
  class_fields : field_decl list;
  class_methods : method_decl list;
  class_pos : pos;
}

type program = class_decl list

let rec string_of_ty = function
  | Tint -> "int"
  | Tclass c -> c
  | Tint_array -> "int[]"
  | Tclass_array c -> string_of_ty (Tclass c) ^ "[]"

let string_of_binop = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"
