(** Front-end driver: source text to a loadable {!Vm.Classfile.program}. *)

type error = { message : string; line : int; col : int }

val string_of_error : error -> string

val program_of_source : string -> (Vm.Classfile.program, error) result
(** Lex, parse, type-check and compile. *)

val program_of_source_exn : string -> Vm.Classfile.program
(** Like {!program_of_source}; raises [Failure] with a rendered error. *)
