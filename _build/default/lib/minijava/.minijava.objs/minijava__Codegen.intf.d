lib/minijava/codegen.mli: Ast Semant Vm
