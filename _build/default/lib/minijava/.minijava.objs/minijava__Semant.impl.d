lib/minijava/semant.ml: Array Ast Filename Hashtbl List Option Printf Token Vm
