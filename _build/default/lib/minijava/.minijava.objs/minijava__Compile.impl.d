lib/minijava/compile.ml: Codegen Lexer Parser Printf Semant Token
