lib/minijava/compile.mli: Vm
