lib/minijava/ast.ml: Token
