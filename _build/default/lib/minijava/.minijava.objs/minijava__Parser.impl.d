lib/minijava/parser.ml: Array Ast Lexer List Printf Token
