lib/minijava/codegen.ml: Array Ast Hashtbl List Option Printf Semant Vm
