lib/minijava/semant.mli: Ast Hashtbl
