lib/minijava/parser.mli: Ast Token
