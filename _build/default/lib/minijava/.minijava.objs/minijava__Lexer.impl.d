lib/minijava/lexer.ml: List Printf String Token
