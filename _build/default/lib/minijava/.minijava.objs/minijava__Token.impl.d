lib/minijava/token.ml:
