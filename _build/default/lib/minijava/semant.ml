exception Error of string * Ast.pos

type sty =
  | Sint
  | Sclass of string
  | Sint_array
  | Sclass_array of string
  | Snull
  | Svoid  (** result of a void call; never assignable *)

type field_info = {
  f_slot : int;
  f_offset : int;
  f_ty : Ast.ty;
  f_class : string;
}

type method_sig = {
  m_id : int;
  m_qualified : string;
  m_class : string;
  m_static : bool;
  m_params : (Ast.ty * string) list;
  m_ret : Ast.ty option;
  m_body : Ast.stmt list;
  m_is_constructor : bool;
}

type static_info = { s_index : int; s_ty : Ast.ty; s_qualified : string }

type class_info = {
  c_id : int;
  c_name : string;
  c_fields : (string * field_info) list;
}

type env = {
  classes : (string, class_info) Hashtbl.t;
  methods : method_sig array;
  method_ids : (string, int) Hashtbl.t;
  statics : (string, static_info) Hashtbl.t;
  n_statics : int;
  entry : int;
}

let err pos fmt = Printf.ksprintf (fun msg -> raise (Error (msg, pos))) fmt

let sty_of_ty = function
  | Ast.Tint -> Sint
  | Ast.Tclass c -> Sclass c
  | Ast.Tint_array -> Sint_array
  | Ast.Tclass_array c -> Sclass_array c

let string_of_sty = function
  | Sint -> "int"
  | Sclass c -> c
  | Sint_array -> "int[]"
  | Sclass_array c -> c ^ "[]"
  | Snull -> "null"
  | Svoid -> "void"

let is_ref_sty = function
  | Sclass _ | Sint_array | Sclass_array _ | Snull -> true
  | Sint | Svoid -> false

let field_is_ref = function
  | Ast.Tint -> false
  | Ast.Tclass _ | Ast.Tint_array | Ast.Tclass_array _ -> true

let assignable ~target value =
  match (target, value) with
  | Sint, Sint -> true
  | (Sclass _ | Sint_array | Sclass_array _), Snull -> true
  | Sclass a, Sclass b -> a = b
  | Sint_array, Sint_array -> true
  | Sclass_array a, Sclass_array b -> a = b
  | _ -> false

type var_resolution = Rlocal | Rfield of field_info | Rclass of string

let resolve_var env ~cls ~is_local name pos =
  if is_local name then Rlocal
  else
    let field =
      match cls with
      | None -> None
      | Some cname -> (
          match Hashtbl.find_opt env.classes cname with
          | Some ci -> List.assoc_opt name ci.c_fields
          | None -> None)
    in
    match field with
    | Some f -> Rfield f
    | None ->
        if Hashtbl.mem env.classes name then Rclass name
        else err pos "unbound name '%s'" name

type field_access = Flength | Finstance of field_info | Fstatic of static_info

let resolve_field env ~base ~class_of_base name pos =
  match (base, class_of_base) with
  | Some (Sint_array | Sclass_array _), _ when name = "length" -> Flength
  | Some (Sclass cname), _ -> (
      match Hashtbl.find_opt env.classes cname with
      | None -> err pos "unknown class '%s'" cname
      | Some ci -> (
          match List.assoc_opt name ci.c_fields with
          | Some f -> Finstance f
          | None -> err pos "class %s has no field '%s'" cname name))
  | None, Some cname -> (
      match Hashtbl.find_opt env.statics (cname ^ "." ^ name) with
      | Some s -> Fstatic s
      | None -> err pos "class %s has no static field '%s'" cname name)
  | Some ty, _ ->
      err pos "type %s has no field '%s'" (string_of_sty ty) name
  | None, None -> err pos "cannot resolve field '%s'" name

let resolve_call env ~receiver name pos =
  let lookup cname ~static =
    match Hashtbl.find_opt env.method_ids (cname ^ "." ^ name) with
    | None -> err pos "class %s has no method '%s'" cname name
    | Some id ->
        let m = env.methods.(id) in
        if static && not m.m_static then
          err pos "method %s.%s is not static" cname name
        else if (not static) && m.m_static then
          err pos "static method %s.%s called on an instance" cname name
        else m
  in
  match receiver with
  | `Instance (Sclass cname) -> lookup cname ~static:false
  | `Instance ty ->
      err pos "type %s has no method '%s'" (string_of_sty ty) name
  | `Static cname ->
      if Hashtbl.mem env.classes cname then lookup cname ~static:true
      else err pos "unknown class '%s'" cname

(* --- table construction ------------------------------------------------ *)

let build_tables (program : Ast.program) =
  let classes = Hashtbl.create 16 in
  let statics = Hashtbl.create 16 in
  let method_ids = Hashtbl.create 32 in
  let methods = ref [] in
  let next_method = ref 0 in
  let next_static = ref 0 in
  List.iteri
    (fun c_id (cd : Ast.class_decl) ->
      if Hashtbl.mem classes cd.class_name then
        err cd.class_pos "duplicate class '%s'" cd.class_name;
      let instance_fields = ref [] in
      let slot = ref 0 in
      List.iter
        (fun (f : Ast.field_decl) ->
          let qualified = cd.class_name ^ "." ^ f.field_name in
          if f.field_static then begin
            if Hashtbl.mem statics qualified then
              err f.field_pos "duplicate static field '%s'" qualified;
            Hashtbl.add statics qualified
              { s_index = !next_static; s_ty = f.field_ty;
                s_qualified = qualified };
            incr next_static
          end
          else begin
            if List.mem_assoc f.field_name !instance_fields then
              err f.field_pos "duplicate field '%s'" qualified;
            instance_fields :=
              ( f.field_name,
                {
                  f_slot = !slot;
                  f_offset =
                    Vm.Classfile.header_bytes
                    + (!slot * Vm.Classfile.slot_bytes);
                  f_ty = f.field_ty;
                  f_class = cd.class_name;
                } )
              :: !instance_fields;
            incr slot
          end)
        cd.class_fields;
      Hashtbl.add classes cd.class_name
        { c_id; c_name = cd.class_name; c_fields = List.rev !instance_fields };
      List.iter
        (fun (m : Ast.method_decl) ->
          let qualified = cd.class_name ^ "." ^ m.method_name in
          if Hashtbl.mem method_ids qualified then
            err m.method_pos "duplicate method '%s'" qualified;
          Hashtbl.add method_ids qualified !next_method;
          methods :=
            {
              m_id = !next_method;
              m_qualified = qualified;
              m_class = cd.class_name;
              m_static = m.method_static;
              m_params = m.method_params;
              m_ret = m.method_ret;
              m_body = m.method_body;
              m_is_constructor = m.is_constructor;
            }
            :: !methods;
          incr next_method)
        cd.class_methods)
    program;
  (classes, statics, method_ids, Array.of_list (List.rev !methods), !next_static)

(* --- type checking ------------------------------------------------------ *)

type scope = { mutable vars : (string * sty) list list }

let push_scope scope = scope.vars <- [] :: scope.vars
let pop_scope scope =
  match scope.vars with _ :: rest -> scope.vars <- rest | [] -> ()

let find_var scope name =
  let rec go = function
    | [] -> None
    | frame :: rest -> (
        match List.assoc_opt name frame with
        | Some ty -> Some ty
        | None -> go rest)
  in
  go scope.vars

let declare_var scope name ty pos =
  match scope.vars with
  | frame :: rest ->
      if List.mem_assoc name frame then
        err pos "variable '%s' already declared in this scope" name;
      scope.vars <- ((name, ty) :: frame) :: rest
  | [] -> assert false

let check_class_exists env pos = function
  | Ast.Tclass c | Ast.Tclass_array c ->
      if not (Hashtbl.mem env.classes c) then err pos "unknown class '%s'" c
  | Ast.Tint | Ast.Tint_array -> ()

let rec expr_type env ~cls ~enclosing ~scope (e : Ast.expr) =
  match e.desc with
  | Ast.Int_lit _ -> Sint
  | Ast.Null_lit -> Snull
  | Ast.This -> (
      match cls with
      | Some c -> Sclass c
      | None -> err e.pos "'this' in a static method")
  | Ast.Var name -> (
      match find_var scope name with
      | Some ty -> ty
      | None -> (
          match resolve_var env ~cls ~is_local:(fun _ -> false) name e.pos with
          | Rlocal -> assert false
          | Rfield f -> sty_of_ty f.f_ty
          | Rclass c -> err e.pos "class name '%s' used as a value" c))
  | Ast.Field (base, name) -> (
      match field_access_type env ~cls ~enclosing ~scope base name e.pos with
      | Flength, _ -> Sint
      | Finstance f, _ -> sty_of_ty f.f_ty
      | Fstatic s, _ -> sty_of_ty s.s_ty)
  | Ast.Static_field (cname, fname) -> (
      match resolve_field env ~base:None ~class_of_base:(Some cname) fname e.pos with
      | Fstatic s -> sty_of_ty s.s_ty
      | Flength | Finstance _ -> assert false)
  | Ast.Index (base, index) -> (
      let ity = expr_type env ~cls ~enclosing ~scope index in
      if ity <> Sint then
        err index.pos "array index must be int, found %s" (string_of_sty ity);
      match expr_type env ~cls ~enclosing ~scope base with
      | Sint_array -> Sint
      | Sclass_array c -> Sclass c
      | ty -> err base.pos "indexing a non-array of type %s" (string_of_sty ty))
  | Ast.Length base -> (
      match expr_type env ~cls ~enclosing ~scope base with
      | Sint_array | Sclass_array _ -> Sint
      | ty -> err base.pos "'.length' on non-array type %s" (string_of_sty ty))
  | Ast.Call (base, name, args) ->
      call_type env ~cls ~enclosing ~scope base name args e.pos
  | Ast.Bare_call (name, args) -> (
      match Hashtbl.find_opt env.method_ids (enclosing ^ "." ^ name) with
      | None -> err e.pos "class %s has no method '%s'" enclosing name
      | Some id ->
          let m = env.methods.(id) in
          if (not m.m_static) && cls = None then
            err e.pos "instance method '%s' called from a static context" name;
          check_args env ~cls ~enclosing ~scope m args e.pos;
          ret_type m)
  | Ast.Static_call (cname, mname, args) ->
      let m = resolve_call env ~receiver:(`Static cname) mname e.pos in
      check_args env ~cls ~enclosing ~scope m args e.pos;
      ret_type m
  | Ast.New_object (cname, args) -> (
      if not (Hashtbl.mem env.classes cname) then
        err e.pos "unknown class '%s'" cname;
      match Hashtbl.find_opt env.method_ids (cname ^ ".<init>") with
      | Some id ->
          let m = env.methods.(id) in
          check_args env ~cls ~enclosing ~scope m args e.pos;
          Sclass cname
      | None ->
          if args <> [] then
            err e.pos "class %s has no constructor but arguments were given"
              cname;
          Sclass cname)
  | Ast.New_int_array size ->
      let ty = expr_type env ~cls ~enclosing ~scope size in
      if ty <> Sint then
        err size.pos "array size must be int, found %s" (string_of_sty ty);
      Sint_array
  | Ast.New_class_array (cname, size) ->
      if not (Hashtbl.mem env.classes cname) then
        err e.pos "unknown class '%s'" cname;
      let ty = expr_type env ~cls ~enclosing ~scope size in
      if ty <> Sint then
        err size.pos "array size must be int, found %s" (string_of_sty ty);
      Sclass_array cname
  | Ast.Binop ((Ast.Eq | Ast.Ne), a, b) ->
      let ta = expr_type env ~cls ~enclosing ~scope a in
      let tb = expr_type env ~cls ~enclosing ~scope b in
      let compatible =
        assignable ~target:ta tb || assignable ~target:tb ta
        || (is_ref_sty ta && is_ref_sty tb && (ta = Snull || tb = Snull))
      in
      if not compatible then
        err e.pos "cannot compare %s with %s" (string_of_sty ta)
          (string_of_sty tb);
      Sint
  | Ast.Binop (_, a, b) ->
      let ta = expr_type env ~cls ~enclosing ~scope a in
      let tb = expr_type env ~cls ~enclosing ~scope b in
      if ta <> Sint then
        err a.pos "operand must be int, found %s" (string_of_sty ta);
      if tb <> Sint then
        err b.pos "operand must be int, found %s" (string_of_sty tb);
      Sint
  | Ast.Unop_neg a | Ast.Unop_not a ->
      let ta = expr_type env ~cls ~enclosing ~scope a in
      if ta <> Sint then
        err a.pos "operand must be int, found %s" (string_of_sty ta);
      Sint

and field_access_type env ~cls ~enclosing ~scope base name pos =
  (* A Field whose base is a bare class name is a static access. *)
  match base.Ast.desc with
  | Ast.Var vname
    when find_var scope vname = None
         && resolve_var env ~cls ~is_local:(fun n -> find_var scope n <> None)
              vname pos
            = Rclass vname ->
      (resolve_field env ~base:None ~class_of_base:(Some vname) name pos, None)
  | _ ->
      let bty = expr_type env ~cls ~enclosing ~scope base in
      (resolve_field env ~base:(Some bty) ~class_of_base:None name pos, Some bty)

and ret_type m = match m.m_ret with None -> Svoid | Some ty -> sty_of_ty ty

and check_args env ~cls ~enclosing ~scope m args pos =
  let expected = List.length m.m_params in
  let given = List.length args in
  if expected <> given then
    err pos "%s expects %d argument(s), got %d" m.m_qualified expected given;
  List.iter2
    (fun (pty, pname) arg ->
      let target = sty_of_ty pty in
      let actual = expr_type env ~cls ~enclosing ~scope arg in
      if not (assignable ~target actual) then
        err arg.Ast.pos "argument '%s' of %s expects %s, got %s" pname
          m.m_qualified (string_of_sty target) (string_of_sty actual))
    m.m_params args

and call_type env ~cls ~enclosing ~scope base name args pos =
  match base.Ast.desc with
  | Ast.Var vname when find_var scope vname = None
                       && Hashtbl.mem env.classes vname
                       && (match cls with
                           | Some c -> (
                               match Hashtbl.find_opt env.classes c with
                               | Some ci -> not (List.mem_assoc vname ci.c_fields)
                               | None -> true)
                           | None -> true) ->
      let m = resolve_call env ~receiver:(`Static vname) name pos in
      check_args env ~cls ~enclosing ~scope m args pos;
      ret_type m
  | _ ->
      let bty = expr_type env ~cls ~enclosing ~scope base in
      let m = resolve_call env ~receiver:(`Instance bty) name pos in
      check_args env ~cls ~enclosing ~scope m args pos;
      ret_type m

let rec check_stmt env ~cls ~enclosing ~scope ~ret (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Decl (ty, name, init) ->
      check_class_exists env s.spos ty;
      let target = sty_of_ty ty in
      let actual = expr_type env ~cls ~enclosing ~scope init in
      if not (assignable ~target actual) then
        err s.spos "cannot initialize %s '%s' with %s" (Ast.string_of_ty ty)
          name (string_of_sty actual);
      declare_var scope name target s.spos
  | Ast.Assign (lv, value) ->
      let target = lvalue_type env ~cls ~enclosing ~scope lv s.spos in
      let actual = expr_type env ~cls ~enclosing ~scope value in
      if not (assignable ~target actual) then
        err s.spos "cannot assign %s to %s" (string_of_sty actual)
          (string_of_sty target)
  | Ast.If (cond, then_b, else_b) ->
      let ty = expr_type env ~cls ~enclosing ~scope cond in
      if ty <> Sint then err cond.pos "condition must be int (boolean)";
      check_block env ~cls ~enclosing ~scope ~ret then_b;
      check_block env ~cls ~enclosing ~scope ~ret else_b
  | Ast.While (cond, body) ->
      let ty = expr_type env ~cls ~enclosing ~scope cond in
      if ty <> Sint then err cond.pos "condition must be int (boolean)";
      check_block env ~cls ~enclosing ~scope ~ret body
  | Ast.For (init, cond, update, body) ->
      push_scope scope;
      Option.iter (check_stmt env ~cls ~enclosing ~scope ~ret) init;
      let ty = expr_type env ~cls ~enclosing ~scope cond in
      if ty <> Sint then err cond.pos "condition must be int (boolean)";
      Option.iter (check_stmt env ~cls ~enclosing ~scope ~ret) update;
      check_block env ~cls ~enclosing ~scope ~ret body;
      pop_scope scope
  | Ast.Return None ->
      if ret <> None then err s.spos "missing return value"
  | Ast.Return (Some e) -> (
      match ret with
      | None -> err s.spos "void method returns a value"
      | Some target ->
          let actual = expr_type env ~cls ~enclosing ~scope e in
          if not (assignable ~target actual) then
            err s.spos "return type mismatch: expected %s, got %s"
              (string_of_sty target) (string_of_sty actual))
  | Ast.Expr_stmt e -> (
      match e.desc with
      | Ast.Call _ | Ast.Static_call _ | Ast.New_object _ | Ast.Bare_call _ ->
          ignore (expr_type env ~cls ~enclosing ~scope e)
      | _ -> err s.spos "only calls can be used as statements")
  | Ast.Print e ->
      let ty = expr_type env ~cls ~enclosing ~scope e in
      if ty <> Sint then err e.pos "print expects an int"
  | Ast.Break | Ast.Continue -> ()
  | Ast.Block body -> check_block env ~cls ~enclosing ~scope ~ret body

and lvalue_type env ~cls ~enclosing ~scope lv pos =
  match lv with
  | Ast.Lvar name -> (
      match find_var scope name with
      | Some ty -> ty
      | None -> (
          match resolve_var env ~cls ~is_local:(fun _ -> false) name pos with
          | Rlocal -> assert false
          | Rfield f -> sty_of_ty f.f_ty
          | Rclass c -> err pos "cannot assign to class name '%s'" c))
  | Ast.Lfield (base, name) -> (
      match field_access_type env ~cls ~enclosing ~scope base name pos with
      | Flength, _ -> err pos "cannot assign to '.length'"
      | Finstance f, _ -> sty_of_ty f.f_ty
      | Fstatic s, _ -> sty_of_ty s.s_ty)
  | Ast.Lstatic (cname, fname) -> (
      match resolve_field env ~base:None ~class_of_base:(Some cname) fname pos with
      | Fstatic s -> sty_of_ty s.s_ty
      | Flength | Finstance _ -> assert false)
  | Ast.Lindex (base, index) -> (
      let ity = expr_type env ~cls ~enclosing ~scope index in
      if ity <> Sint then err pos "array index must be int";
      match expr_type env ~cls ~enclosing ~scope base with
      | Sint_array -> Sint
      | Sclass_array c -> Sclass c
      | ty -> err pos "indexing a non-array of type %s" (string_of_sty ty))

and check_block env ~cls ~enclosing ~scope ~ret body =
  push_scope scope;
  List.iter (check_stmt env ~cls ~enclosing ~scope ~ret) body;
  pop_scope scope

let check_method env (m : method_sig) =
  let cls = if m.m_static then None else Some m.m_class in
  let enclosing = m.m_class in
  let scope = { vars = [ [] ] } in
  List.iter
    (fun (ty, name) ->
      check_class_exists env
        { Token.line = 0; col = 0 }
        ty;
      declare_var scope name (sty_of_ty ty) { Token.line = 0; col = 0 })
    m.m_params;
  let ret = Option.map sty_of_ty m.m_ret in
  check_block env ~cls ~enclosing ~scope ~ret m.m_body

let analyze program =
  let classes, statics, method_ids, methods, n_statics =
    build_tables program
  in
  let entry =
    match Hashtbl.fold
            (fun q id acc ->
              let m = methods.(id) in
              if m.m_static && m.m_ret = None && m.m_params = []
                 && Filename.extension q = ".main"
              then id :: acc
              else acc)
            method_ids []
    with
    | [ id ] -> id
    | [] ->
        err { Token.line = 0; col = 0 } "no 'static void main()' method found"
    | _ :: _ :: _ ->
        err { Token.line = 0; col = 0 } "multiple 'static void main()' methods"
  in
  let env = { classes; methods; method_ids; statics; n_statics; entry } in
  Array.iter (check_method env) methods;
  env
