lib/vm/value.ml: Format Printf
