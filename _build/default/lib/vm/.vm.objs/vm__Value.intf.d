lib/vm/value.mli: Format
