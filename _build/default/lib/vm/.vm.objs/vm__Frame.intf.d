lib/vm/frame.mli: Classfile Value
