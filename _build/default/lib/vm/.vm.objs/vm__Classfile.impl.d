lib/vm/classfile.ml: Array Bytecode Format List
