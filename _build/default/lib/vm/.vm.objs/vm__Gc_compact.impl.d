lib/vm/gc_compact.ml: Hashtbl Heap List Value
