lib/vm/heap.mli: Classfile Value
