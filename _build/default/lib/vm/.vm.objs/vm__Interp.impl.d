lib/vm/interp.ml: Array Buffer Bytecode Classfile Frame Fun Gc_compact Heap List Memsim Printf Value
