lib/vm/frame.ml: Array Classfile Printf Value
