lib/vm/heap.ml: Array Classfile Hashtbl Printf Value
