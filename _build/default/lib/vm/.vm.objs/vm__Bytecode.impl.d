lib/vm/bytecode.ml: Array Format Printf
