lib/vm/gc_compact.mli: Heap Value
