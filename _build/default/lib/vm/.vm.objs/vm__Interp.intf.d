lib/vm/interp.mli: Classfile Heap Memsim Value
