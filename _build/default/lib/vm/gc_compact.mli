(** Mark-and-sweep collection with sliding compaction.

    This mirrors the collector of the evaluated JVM (Section 4): a
    traditional mark-and-sweep whose live objects are packed by sliding
    compaction, preserving their relative order on the heap — and therefore
    usually preserving the constant strides among live objects that the
    prefetching algorithm discovered. *)

type result = {
  live : int;  (** objects surviving the collection *)
  collected : int;  (** objects reclaimed *)
  live_bytes : int;  (** heap bytes in use after compaction *)
}

val collect : Heap.t -> roots:Value.t list -> result
(** Mark from [roots], then compact the heap. Object ids held in [roots]
    stay valid; only simulated base addresses change. *)
