(** Classes, methods and whole programs.

    The object model is deliberately 2003-IA-32-flavoured: 4-byte slots, an
    8-byte object header, arrays with their length word at offset 8 and
    elements from offset 12. Field offsets are assigned by the frontend and
    recorded here so that the prefetching pass can reason about concrete
    byte strides. *)

let header_bytes = 8
let slot_bytes = 4
let array_length_offset = 8
let array_elems_offset = 12

(* The simulated virtual address where static (global) slots live; well
   below [heap_base] so heap and statics never collide. *)
let statics_base = 0x1000

(* Base simulated address of the heap. *)
let heap_base = 0x100000

type field = {
  field_name : string;
  field_index : int;  (** slot index within the object *)
  field_offset : int;  (** byte offset from the object base *)
  field_is_ref : bool;
}

type class_info = {
  class_id : int;
  class_name : string;
  fields : field array;
  instance_bytes : int;  (** header + field slots *)
}

type method_info = {
  method_id : int;
  method_name : string;  (** qualified, e.g. ["Node2.findInMemory"] *)
  arity : int;  (** parameter count, receiver included *)
  returns_value : bool;
  mutable max_locals : int;  (** may grow when callees are inlined *)
  original_max_locals : int;
  original_code : Bytecode.instr array;
  mutable code : Bytecode.instr array;  (** current body; swapped on JIT *)
  mutable n_sites : int;  (** load sites in [code] *)
  mutable n_pref_regs : int;  (** spec_load registers in [code] *)
  mutable compiled : bool;
  mutable invocations : int;
  mutable backedges : int;
  mutable compile_seconds : float;  (** host time spent compiling it *)
}

type static_info = { static_name : string; static_index : int }

type program = {
  classes : class_info array;
  methods : method_info array;
  statics : static_info array;
  entry : int;  (** method id of the program entry point *)
}

let make_class ~class_id ~class_name ~field_specs =
  let fields =
    Array.of_list
      (List.mapi
         (fun i (field_name, field_is_ref) ->
           {
             field_name;
             field_index = i;
             field_offset = header_bytes + (i * slot_bytes);
             field_is_ref;
           })
         field_specs)
  in
  {
    class_id;
    class_name;
    fields;
    instance_bytes = header_bytes + (Array.length fields * slot_bytes);
  }

let count_sites code =
  Array.fold_left
    (fun acc instr ->
      List.fold_left (fun acc site -> max acc (site + 1)) acc
        (Bytecode.all_sites instr))
    0 code

let make_method ~method_id ~method_name ~arity ~returns_value ~max_locals ~code
    =
  {
    method_id;
    method_name;
    arity;
    returns_value;
    max_locals;
    original_max_locals = max_locals;
    original_code = Array.copy code;
    code;
    n_sites = count_sites code;
    n_pref_regs = 0;
    compiled = false;
    invocations = 0;
    backedges = 0;
    compile_seconds = 0.0;
  }

let class_of_id program id = program.classes.(id)
let method_of_id program id = program.methods.(id)

let find_method program qualified_name =
  let matches (m : method_info) = m.method_name = qualified_name in
  match Array.to_list program.methods |> List.filter matches with
  | [ m ] -> Some m
  | [] -> None
  | m :: _ -> Some m

let find_class program name =
  Array.to_list program.classes
  |> List.find_opt (fun c -> c.class_name = name)

let field_by_name class_info name =
  Array.to_list class_info.fields
  |> List.find_opt (fun f -> f.field_name = name)

(* Restore every method to its unoptimized body (fresh run of the VM). *)
let reset_program program =
  Array.iter
    (fun m ->
      m.code <- Array.copy m.original_code;
      m.max_locals <- m.original_max_locals;
      m.n_sites <- count_sites m.original_code;
      m.n_pref_regs <- 0;
      m.compiled <- false;
      m.invocations <- 0;
      m.backedges <- 0;
      m.compile_seconds <- 0.0)
    program.methods

let pp_method ppf (m : method_info) =
  Format.fprintf ppf "@[<v 2>%s (arity %d, locals %d, sites %d)%s:@,%a@]"
    m.method_name m.arity m.max_locals m.n_sites
    (if m.compiled then " [compiled]" else "")
    Bytecode.pp_code m.code
