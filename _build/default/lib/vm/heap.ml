type contents =
  | Object of { class_id : int; fields : Value.t array }
  | Int_array of int array
  | Ref_array of Value.t array

type obj = { id : int; mutable base : int; size : int; contents : contents }

type t = {
  limit : int;
  mutable next_addr : int;
  table : (int, obj) Hashtbl.t;
  (* Objects in ascending address order. Bump allocation appends in order;
     compaction rebuilds the array, so it is always sorted by [base]. *)
  mutable by_addr : obj array;
  mutable n_objects : int;
  mutable next_id : int;
}

exception Out_of_memory

let default_limit = 64 * 1024 * 1024

let create ?(limit_bytes = default_limit) () =
  {
    limit = limit_bytes;
    next_addr = Classfile.heap_base;
    table = Hashtbl.create 4096;
    by_addr = Array.make 1024 { id = -1; base = 0; size = 0; contents = Int_array [||] };
    n_objects = 0;
    next_id = 0;
  }

let limit_bytes t = t.limit
let used_bytes t = t.next_addr - Classfile.heap_base
let live_objects t = t.n_objects

let append_by_addr t obj =
  if t.n_objects = Array.length t.by_addr then begin
    let bigger = Array.make (2 * Array.length t.by_addr) obj in
    Array.blit t.by_addr 0 bigger 0 t.n_objects;
    t.by_addr <- bigger
  end;
  t.by_addr.(t.n_objects) <- obj;
  t.n_objects <- t.n_objects + 1

let align n = (n + Classfile.slot_bytes - 1) land lnot (Classfile.slot_bytes - 1)

let alloc t ~size contents =
  let size = align size in
  if t.next_addr + size > Classfile.heap_base + t.limit then raise Out_of_memory;
  let obj = { id = t.next_id; base = t.next_addr; size; contents } in
  t.next_id <- t.next_id + 1;
  t.next_addr <- t.next_addr + size;
  Hashtbl.replace t.table obj.id obj;
  append_by_addr t obj;
  obj.id

let alloc_object t (ci : Classfile.class_info) =
  alloc t ~size:ci.instance_bytes
    (Object
       {
         class_id = ci.class_id;
         fields = Array.make (Array.length ci.fields) Value.Null;
       })

let array_size len = Classfile.array_elems_offset + (len * Classfile.slot_bytes)

let alloc_int_array t len =
  if len < 0 then invalid_arg "alloc_int_array: negative length";
  alloc t ~size:(array_size len) (Int_array (Array.make len 0))

let alloc_ref_array t len =
  if len < 0 then invalid_arg "alloc_ref_array: negative length";
  alloc t ~size:(array_size len) (Ref_array (Array.make len Value.Null))

let get t id =
  match Hashtbl.find_opt t.table id with
  | Some obj -> obj
  | None -> invalid_arg (Printf.sprintf "heap: dangling object id %d" id)

let exists t id = Hashtbl.mem t.table id
let base_of t id = (get t id).base
let size_of t id = (get t id).size

let class_id_of t id =
  match (get t id).contents with
  | Object { class_id; _ } -> Some class_id
  | Int_array _ | Ref_array _ -> None

let is_ref_array t id =
  match (get t id).contents with Ref_array _ -> true | _ -> false

let fields_of obj =
  match obj.contents with
  | Object { fields; _ } -> fields
  | Int_array _ | Ref_array _ -> invalid_arg "heap: array used as object"

let get_field t id slot = (fields_of (get t id)).(slot)
let set_field t id slot v = (fields_of (get t id)).(slot) <- v

let field_addr t id slot =
  (get t id).base + Classfile.header_bytes + (slot * Classfile.slot_bytes)

let array_length t id =
  match (get t id).contents with
  | Int_array a -> Array.length a
  | Ref_array a -> Array.length a
  | Object _ -> invalid_arg "heap: object used as array"

let length_addr t id = (get t id).base + Classfile.array_length_offset

let get_elem t id i =
  match (get t id).contents with
  | Int_array a -> Value.Int a.(i)
  | Ref_array a -> a.(i)
  | Object _ -> invalid_arg "heap: object used as array"

let set_elem t id i v =
  match ((get t id).contents, v) with
  | Int_array a, Value.Int n -> a.(i) <- n
  | Int_array _, (Value.Ref _ | Value.Null) ->
      invalid_arg "heap: reference stored into int array"
  | Ref_array a, (Value.Ref _ | Value.Null) -> a.(i) <- v
  | Ref_array _, Value.Int _ -> invalid_arg "heap: int stored into ref array"
  | Object _, _ -> invalid_arg "heap: object used as array"

let elem_addr t id i =
  (get t id).base + Classfile.array_elems_offset + (i * Classfile.slot_bytes)

(* Greatest object whose base is <= addr, by binary search over the
   address-ordered table. *)
let object_containing t addr =
  let lo = ref 0 and hi = ref (t.n_objects - 1) and found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let obj = t.by_addr.(mid) in
    if obj.base <= addr then begin
      found := Some obj;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  match !found with
  | Some obj when addr < obj.base + obj.size -> Some obj
  | Some _ | None -> None

let object_at t addr =
  match object_containing t addr with Some o -> Some o.id | None -> None

let value_at t addr =
  match object_containing t addr with
  | None -> None
  | Some obj -> (
      let rel = addr - obj.base in
      let slot_of off = (rel - off) / Classfile.slot_bytes in
      let aligned off = (rel - off) mod Classfile.slot_bytes = 0 in
      match obj.contents with
      | Object { fields; _ } ->
          let off = Classfile.header_bytes in
          if rel >= off && aligned off && slot_of off < Array.length fields
          then Some fields.(slot_of off)
          else None
      | Int_array a ->
          if rel = Classfile.array_length_offset then
            Some (Value.Int (Array.length a))
          else
            let off = Classfile.array_elems_offset in
            if rel >= off && aligned off && slot_of off < Array.length a then
              Some (Value.Int a.(slot_of off))
            else None
      | Ref_array a ->
          if rel = Classfile.array_length_offset then
            Some (Value.Int (Array.length a))
          else
            let off = Classfile.array_elems_offset in
            if rel >= off && aligned off && slot_of off < Array.length a then
              Some a.(slot_of off)
            else None)

let referenced_ids t id =
  let refs_of_values values =
    Array.fold_left
      (fun acc v -> match v with Value.Ref r -> r :: acc | _ -> acc)
      [] values
  in
  match (get t id).contents with
  | Object { fields; _ } -> refs_of_values fields
  | Ref_array a -> refs_of_values a
  | Int_array _ -> []

let iter_ids_in_address_order t f =
  for i = 0 to t.n_objects - 1 do
    f t.by_addr.(i).id
  done

let compact t ~live =
  let kept = ref 0 and removed = ref 0 in
  let cursor = ref Classfile.heap_base in
  for i = 0 to t.n_objects - 1 do
    let obj = t.by_addr.(i) in
    if live obj.id then begin
      obj.base <- !cursor;
      cursor := !cursor + obj.size;
      t.by_addr.(!kept) <- obj;
      incr kept
    end
    else begin
      Hashtbl.remove t.table obj.id;
      incr removed
    end
  done;
  t.n_objects <- !kept;
  t.next_addr <- !cursor;
  !removed

let clear t =
  Hashtbl.reset t.table;
  t.n_objects <- 0;
  t.next_addr <- Classfile.heap_base;
  t.next_id <- 0
