(** Runtime values of the mini-JVM.

    References carry a stable object id; the heap maps ids to simulated
    byte addresses, so values survive the sliding compaction of the
    collector unchanged. *)

type t =
  | Int of int
  | Ref of int  (** object id, stable across GC *)
  | Null

val equal : t -> t -> bool
val is_reference : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
