type result = { live : int; collected : int; live_bytes : int }

let collect heap ~roots =
  let marked = Hashtbl.create 1024 in
  let stack = ref [] in
  let push id =
    if Heap.exists heap id && not (Hashtbl.mem marked id) then begin
      Hashtbl.replace marked id ();
      stack := id :: !stack
    end
  in
  List.iter (function Value.Ref id -> push id | Value.Int _ | Value.Null -> ())
    roots;
  let rec drain () =
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        List.iter push (Heap.referenced_ids heap id);
        drain ()
  in
  drain ();
  let collected = Heap.compact heap ~live:(Hashtbl.mem marked) in
  {
    live = Heap.live_objects heap;
    collected;
    live_bytes = Heap.used_bytes heap;
  }
