(** The instruction set of the mini-JVM.

    A stack machine close to Java bytecode, restricted to what the paper's
    algorithm and our workloads need, plus the three prefetch
    pseudo-instructions of Section 3.3 that the stride-prefetching pass
    splices into compiled method bodies.

    Every instruction that loads through a reference carries a [site] id,
    unique within its method. Sites are the nodes of the load dependence
    graph; at run time the frame records the last effective address each
    site computed, which is what anchors the generated prefetch code
    ([prefetch (A(Lx) + d*c)] needs [A(Lx)], the address the anchor load
    just used in the current iteration).

    Array accesses are fused: an [Aaload] performs the bounds-check load of
    the array length {e and} the element load, and carries one site for
    each, mirroring the paper's observation that length loads "are not
    explicit in the Java source program, but are generated for array bound
    checks" (Table 1 lists them as separate load instructions). *)

type cmp = Eq | Ne | Lt | Ge | Gt | Le

type instr =
  (* constants, locals, stack *)
  | Iconst of int
  | Aconst_null
  | Iload of int
  | Istore of int
  | Aload of int
  | Astore of int
  | Dup
  | Pop
  (* integer arithmetic/logic *)
  | Iadd
  | Isub
  | Imul
  | Idiv
  | Irem
  | Ineg
  | Iand
  | Ior
  | Ixor
  | Ishl
  | Ishr
  (* control flow; targets are absolute instruction indices *)
  | Goto of int
  | If_icmp of cmp * int  (** pops b, a; branches when [a cmp b] *)
  | If of cmp * int  (** pops a; branches when [a cmp 0] *)
  | If_acmpeq of int
  | If_acmpne of int
  | Ifnull of int
  | Ifnonnull of int
  (* heap accesses (LDG-candidate loads carry sites) *)
  | Getfield of { site : int; offset : int; name : string; is_ref : bool }
  | Putfield of { offset : int; name : string }
  | Getstatic of { site : int; index : int; name : string; is_ref : bool }
  | Putstatic of { index : int; name : string }
  | Aaload of { len_site : int; elem_site : int }
  | Iaload of { len_site : int; elem_site : int }
  | Aastore of { len_site : int }
  | Iastore of { len_site : int }
  | Arraylength of { site : int }
  (* allocation *)
  | New of int  (** class id *)
  | Newarray of array_kind  (** pops length *)
  (* calls; static dispatch, arguments pushed left-to-right *)
  | Invoke of int  (** method id *)
  | Return
  | Ireturn
  | Areturn
  (* miscellaneous *)
  | Print  (** pops an int and appends it to the VM output (for tests) *)
  (* prefetch pseudo-instructions (Section 3.3) *)
  | Prefetch_inter of { site : int; distance : int }
      (** [prefetch (A(site) + distance)]; hardware prefetch instruction *)
  | Spec_load of { site : int; distance : int; reg : int }
      (** [reg := spec_load (A(site) + distance)]; guarded, never faults *)
  | Prefetch_indirect of { reg : int; offset : int; guarded : bool }
      (** [prefetch ( *reg + offset)]; guarded form primes the DTLB *)
  | Prefetch_dynamic of { site : int; times : int }
      (** [prefetch (A(site) + (A(site) - A_prev(site)) * times)]: the
          stride is recomputed at run time from the site's last two
          addresses, which handles Wu's "phased multiple-stride" loads
          (an extension beyond the paper's single-stride focus) *)

and array_kind = Int_array | Ref_array

let site_of = function
  | Getfield { site; _ } | Getstatic { site; _ } | Arraylength { site; _ } ->
      Some site
  | Aaload { elem_site; _ } | Iaload { elem_site; _ } -> Some elem_site
  | Iconst _ | Aconst_null | Iload _ | Istore _ | Aload _ | Astore _ | Dup
  | Pop | Iadd | Isub | Imul | Idiv | Irem | Ineg | Iand | Ior | Ixor | Ishl
  | Ishr | Goto _ | If_icmp _ | If _ | If_acmpeq _ | If_acmpne _ | Ifnull _
  | Ifnonnull _ | Putfield _ | Putstatic _ | Aastore _ | Iastore _ | New _
  | Newarray _ | Invoke _ | Return | Ireturn | Areturn | Print
  | Prefetch_inter _ | Spec_load _ | Prefetch_indirect _
  | Prefetch_dynamic _ ->
      None

(* Sites of every load the instruction performs, bounds-check length loads
   included. *)
let all_sites = function
  | Getfield { site; _ } | Getstatic { site; _ } | Arraylength { site; _ } ->
      [ site ]
  | Aaload { len_site; elem_site } | Iaload { len_site; elem_site } ->
      [ len_site; elem_site ]
  | Aastore { len_site } | Iastore { len_site } -> [ len_site ]
  | _ -> []

let is_branch = function
  | Goto _ | If_icmp _ | If _ | If_acmpeq _ | If_acmpne _ | Ifnull _
  | Ifnonnull _ | Return | Ireturn | Areturn ->
      true
  | _ -> false

let branch_target = function
  | Goto t
  | If_icmp (_, t)
  | If (_, t)
  | If_acmpeq t
  | If_acmpne t
  | Ifnull t
  | Ifnonnull t ->
      Some t
  | _ -> None

let is_return = function Return | Ireturn | Areturn -> true | _ -> false

(* Unconditional control transfer: execution never falls through. *)
let is_terminator = function
  | Goto _ | Return | Ireturn | Areturn -> true
  | _ -> false

let string_of_cmp = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Gt -> "gt"
  | Le -> "le"

let to_string = function
  | Iconst n -> Printf.sprintf "iconst %d" n
  | Aconst_null -> "aconst_null"
  | Iload n -> Printf.sprintf "iload %d" n
  | Istore n -> Printf.sprintf "istore %d" n
  | Aload n -> Printf.sprintf "aload %d" n
  | Astore n -> Printf.sprintf "astore %d" n
  | Dup -> "dup"
  | Pop -> "pop"
  | Iadd -> "iadd"
  | Isub -> "isub"
  | Imul -> "imul"
  | Idiv -> "idiv"
  | Irem -> "irem"
  | Ineg -> "ineg"
  | Iand -> "iand"
  | Ior -> "ior"
  | Ixor -> "ixor"
  | Ishl -> "ishl"
  | Ishr -> "ishr"
  | Goto t -> Printf.sprintf "goto @%d" t
  | If_icmp (c, t) -> Printf.sprintf "if_icmp%s @%d" (string_of_cmp c) t
  | If (c, t) -> Printf.sprintf "if%s @%d" (string_of_cmp c) t
  | If_acmpeq t -> Printf.sprintf "if_acmpeq @%d" t
  | If_acmpne t -> Printf.sprintf "if_acmpne @%d" t
  | Ifnull t -> Printf.sprintf "ifnull @%d" t
  | Ifnonnull t -> Printf.sprintf "ifnonnull @%d" t
  | Getfield { site; offset; name; is_ref = _ } ->
      Printf.sprintf "getfield %s (+%d) [L%d]" name offset site
  | Putfield { offset; name } -> Printf.sprintf "putfield %s (+%d)" name offset
  | Getstatic { site; index; name; is_ref = _ } ->
      Printf.sprintf "getstatic %s (#%d) [L%d]" name index site
  | Putstatic { index; name } -> Printf.sprintf "putstatic %s (#%d)" name index
  | Aaload { len_site; elem_site } ->
      Printf.sprintf "aaload [len L%d, elem L%d]" len_site elem_site
  | Iaload { len_site; elem_site } ->
      Printf.sprintf "iaload [len L%d, elem L%d]" len_site elem_site
  | Aastore { len_site } -> Printf.sprintf "aastore [len L%d]" len_site
  | Iastore { len_site } -> Printf.sprintf "iastore [len L%d]" len_site
  | Arraylength { site } -> Printf.sprintf "arraylength [L%d]" site
  | New class_id -> Printf.sprintf "new class#%d" class_id
  | Newarray Int_array -> "newarray int"
  | Newarray Ref_array -> "newarray ref"
  | Invoke m -> Printf.sprintf "invoke method#%d" m
  | Return -> "return"
  | Ireturn -> "ireturn"
  | Areturn -> "areturn"
  | Print -> "print"
  | Prefetch_inter { site; distance } ->
      Printf.sprintf "prefetch (A(L%d) %+d)" site distance
  | Spec_load { site; distance; reg } ->
      Printf.sprintf "p%d := spec_load (A(L%d) %+d)" reg site distance
  | Prefetch_indirect { reg; offset; guarded } ->
      Printf.sprintf "%s (p%d %+d)"
        (if guarded then "prefetch_guarded" else "prefetch")
        reg offset
  | Prefetch_dynamic { site; times } ->
      Printf.sprintf "prefetch (A(L%d) + delta(L%d)*%d)" site site times

let pp ppf instr = Format.pp_print_string ppf (to_string instr)

let pp_code ppf code =
  Array.iteri
    (fun i instr -> Format.fprintf ppf "@[%4d: %s@]@," i (to_string instr))
    code
