(** Runtime values of the mini-JVM.

    References carry a stable object id; the heap maps ids to simulated byte
    addresses, so values survive the sliding compaction of the collector
    unchanged. *)

type t =
  | Int of int
  | Ref of int  (** object id, stable across GC *)
  | Null

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Ref x, Ref y -> x = y
  | Null, Null -> true
  | (Int _ | Ref _ | Null), _ -> false

let is_reference = function Ref _ | Null -> true | Int _ -> false

let to_string = function
  | Int n -> string_of_int n
  | Ref id -> Printf.sprintf "ref#%d" id
  | Null -> "null"

let pp ppf v = Format.pp_print_string ppf (to_string v)
