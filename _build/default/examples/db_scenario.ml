(* The paper's headline result, end to end: _209_db.

   Sorting large records whose sub-objects are co-allocated gives the
   sort loop intra-iteration stride patterns only. INTER finds nothing
   (the record pointers are shuffled); INTER+INTRA prefetches through the
   index element (dereference-based) and onward through the record's
   sub-objects. On the Pentium 4 the intra-stride prefetches use guarded
   loads, priming the 64-entry DTLB. Compare Figures 6-10 of the paper.

   Run with: dune exec examples/db_scenario.exe *)

module SP = Strideprefetch
module H = Workloads.Harness

let () =
  let db =
    List.find
      (fun (w : Workloads.Workload.t) -> w.name = "db")
      Workloads.Specjvm.all
  in
  Printf.printf "workload: %s\n  %s\n  paper: %s\n\n" db.name db.description
    db.paper_note;
  List.iter
    (fun machine ->
      Printf.printf "--- %s ---\n" machine.Memsim.Config.name;
      let baseline = H.run ~mode:SP.Options.Off ~machine db in
      let inter = H.run ~mode:SP.Options.Inter ~machine db in
      let both = H.run ~mode:SP.Options.Inter_intra ~machine db in
      Printf.printf "  %-12s %12s %10s %10s %10s %10s\n" "mode" "cycles"
        "L1 MPIx1k" "L2 MPIx1k" "TLB MPIx1k" "speedup";
      List.iter
        (fun (r : H.run_result) ->
          Printf.printf "  %-12s %12d %10.3f %10.3f %10.3f %+9.1f%%\n"
            (SP.Options.mode_name r.mode)
            r.cycles
            (1000.0 *. Memsim.Stats.l1_load_mpi r.stats)
            (1000.0 *. Memsim.Stats.l2_load_mpi r.stats)
            (1000.0 *. Memsim.Stats.dtlb_load_mpi r.stats)
            (H.percent_speedup ~baseline r))
        [ baseline; inter; both ];
      Printf.printf
        "  prefetches: %d sw (%d cancelled on DTLB miss), %d guarded loads\n\n"
        both.stats.Memsim.Stats.sw_prefetches
        both.stats.Memsim.Stats.sw_prefetches_cancelled
        both.stats.Memsim.Stats.guarded_loads)
    Memsim.Config.machines;
  print_endline
    "Paper reference: +18.9% on the Pentium 4, +25.1% on the Athlon MP,\n\
     with INTER ineffective on both — the gain comes entirely from\n\
     dereference-based + intra-iteration stride prefetching."
