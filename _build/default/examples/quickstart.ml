(* Quickstart: the paper's motivating example end to end.

   Compiles the findInMemory program of Figure 1, lets the mixed-mode VM
   JIT it with the stride-prefetching pass, and prints everything the
   paper derives from it: the load table (Table 1), the load dependence
   graph (Figure 5), the stride patterns found by object inspection, the
   generated prefetch code (Figure 4), and the resulting speedup.

   Run with: dune exec examples/quickstart.exe *)

module SP = Strideprefetch

let run_mode mode =
  let program = Workloads.Figure1.compile () in
  let machine = Memsim.Config.pentium4 in
  let opts = SP.Options.with_mode mode SP.Options.default in
  let interp = Vm.Interp.create machine program in
  let reports = ref [] in
  let passes =
    Jit.Pipeline.standard_passes ()
    @
    match mode with
    | SP.Options.Off -> []
    | _ ->
        [
          SP.Pass.make_pass ~opts ~interp
            ~report_sink:(fun r -> reports := !reports @ r)
            ();
        ]
  in
  let pipeline = Jit.Pipeline.create passes in
  Vm.Interp.set_compile_hook interp (fun _ m args ->
      Jit.Pipeline.compile pipeline m args);
  ignore (Vm.Interp.run interp);
  (interp, !reports, program)

let () =
  print_endline "=== 1. The eleven loads of findInMemory (Table 1) ===";
  let program = Workloads.Figure1.compile () in
  let meth =
    Option.get (Vm.Classfile.find_method program Workloads.Figure1.kernel_name)
  in
  let infos =
    Jit.Stack_model.analyze meth.code ~arity:meth.arity
      ~callee_arity:(fun m -> (Vm.Classfile.method_of_id program m).arity)
      ~callee_returns:(fun m ->
        (Vm.Classfile.method_of_id program m).returns_value)
  in
  for site = 0 to meth.n_sites - 1 do
    Printf.printf "  L%-3d %s\n" site
      (Workloads.Figure1.describe_site infos site)
  done;

  print_endline "\n=== 2. Load dependence graph (Figure 5) ===";
  let ldg = SP.Ldg.build infos ~sites:(List.init meth.n_sites Fun.id) in
  Format.printf "%a@." SP.Ldg.pp ldg;

  print_endline "=== 3. Object inspection + code generation (Figure 4) ===";
  let interp_opt, reports, program_opt = run_mode SP.Options.Inter_intra in
  List.iter (fun r -> Format.printf "%a@." SP.Pass.pp_report r) reports;
  let optimized =
    Option.get
      (Vm.Classfile.find_method program_opt Workloads.Figure1.kernel_name)
  in
  print_endline "optimized kernel body:";
  Format.printf "%a@." Vm.Classfile.pp_method optimized;

  print_endline "=== 4. Did it help? (Pentium 4) ===";
  let interp_base, _, _ = run_mode SP.Options.Off in
  let base_cycles = (Vm.Interp.stats interp_base).Memsim.Stats.cycles in
  let opt_cycles = (Vm.Interp.stats interp_opt).Memsim.Stats.cycles in
  Printf.printf "  BASELINE:    %d cycles\n" base_cycles;
  Printf.printf "  INTER+INTRA: %d cycles  (%+.1f%%)\n" opt_cycles
    ((float_of_int base_cycles /. float_of_int opt_cycles -. 1.0) *. 100.0);
  assert (Vm.Interp.output interp_base = Vm.Interp.output interp_opt);
  Printf.printf "  program output identical across modes: %S\n"
    (String.trim (Vm.Interp.output interp_base))
