(* Why stride prefetching survives garbage collection.

   The paper (Section 4): "Live objects are packed by sliding compaction,
   which does not change their internal order on the heap. Thus, the
   garbage collector usually preserves constant strides among the live
   objects."

   This example allocates a list of equal-sized nodes interleaved with
   short-lived garbage, collects, and shows the node-to-node strides
   before and after: irregular before compaction (garbage in between),
   constant afterwards.

   Run with: dune exec examples/gc_strides.exe *)

module C = Vm.Classfile
module H = Vm.Heap
module V = Vm.Value

let () =
  let node_class =
    C.make_class ~class_id:0 ~class_name:"Node"
      ~field_specs:[ ("value", false); ("next", true) ]
  in
  let heap = H.create () in

  (* allocate 12 list nodes with random-sized garbage arrays in between *)
  let garbage_size i = (i * 7919 mod 13) + 1 in
  let nodes =
    Array.init 12 (fun i ->
        ignore (H.alloc_int_array heap (garbage_size i));
        let id = H.alloc_object heap node_class in
        H.set_field heap id 0 (V.Int i);
        id)
  in
  (* link them *)
  Array.iteri
    (fun i id ->
      if i + 1 < Array.length nodes then
        H.set_field heap id 1 (V.Ref nodes.(i + 1)))
    nodes;

  let strides () =
    Array.to_list nodes
    |> List.filter (H.exists heap)
    |> List.map (H.base_of heap)
    |> fun bases ->
    List.map2 (fun a b -> b - a)
      (List.filteri (fun i _ -> i < List.length bases - 1) bases)
      (List.tl bases)
  in

  Printf.printf "before GC: %d objects, %d bytes used\n"
    (H.live_objects heap) (H.used_bytes heap);
  Printf.printf "node-to-node strides: %s\n"
    (String.concat " " (List.map string_of_int (strides ())));

  (* collect with only the list head as root: garbage arrays die, the
     linked nodes survive via the next chain *)
  let result = Vm.Gc_compact.collect heap ~roots:[ V.Ref nodes.(0) ] in
  Printf.printf "\nGC: collected %d, kept %d (%d bytes)\n" result.collected
    result.live result.live_bytes;

  let after = strides () in
  Printf.printf "node-to-node strides after sliding compaction: %s\n"
    (String.concat " " (List.map string_of_int after));
  (match after with
  | s :: rest when List.for_all (( = ) s) rest ->
      Printf.printf
        "\n=> constant stride of %d bytes: a list walk is now prefetchable \
         with plain inter-iteration stride prefetching.\n"
        s
  | _ -> print_endline "\n=> strides did not become constant (unexpected)");

  (* and the values are intact *)
  let rec walk id acc =
    let acc = acc @ [ H.get_field heap id 0 ] in
    match H.get_field heap id 1 with
    | V.Ref next -> walk next acc
    | _ -> acc
  in
  Printf.printf "list contents preserved: %s\n"
    (String.concat " " (List.map V.to_string (walk nodes.(0) [])))
