(* The regular-numerics scenario: Euler (JavaGrande CFD).

   Cells of a 2-D grid are allocated back to back, so their field loads
   carry plain inter-iteration strides: INTER alone captures everything
   and INTER+INTRA adds nothing — the opposite profile to db. The paper
   reports 15.4% / 14.0% with both configurations performing alike.

   Run with: dune exec examples/euler_scenario.exe *)

module SP = Strideprefetch
module H = Workloads.Harness

let () =
  let euler =
    List.find
      (fun (w : Workloads.Workload.t) -> w.name = "Euler")
      Workloads.Javagrande.all
  in
  Printf.printf "workload: %s\n  %s\n\n" euler.name euler.description;
  List.iter
    (fun machine ->
      let baseline = H.run ~mode:SP.Options.Off ~machine euler in
      let inter = H.run ~mode:SP.Options.Inter ~machine euler in
      let both = H.run ~mode:SP.Options.Inter_intra ~machine euler in
      Printf.printf "%s:  INTER %+.1f%%   INTER+INTRA %+.1f%%\n"
        machine.Memsim.Config.name
        (H.percent_speedup ~baseline inter)
        (H.percent_speedup ~baseline both);
      (* show what was generated for the sweep kernel *)
      if machine.Memsim.Config.name = "Pentium4" then begin
        print_endline "\ngenerated actions for Grid.sweep (INTER mode):";
        List.iter
          (fun (r : SP.Pass.loop_report) ->
            if r.method_name = "Grid.sweep" then
              Format.printf "%a@." SP.Pass.pp_report r)
          inter.reports
      end)
    Memsim.Config.machines;
  print_endline
    "\nPaper reference: +15.4% (P4) / +14.0% (Athlon), INTER and\n\
     INTER+INTRA achieving similar speedups on this benchmark."
