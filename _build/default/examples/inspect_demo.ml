(* Object inspection up close.

   Inspects a method that mutates the heap on every iteration and shows:
   (a) the heap is bit-for-bit untouched afterwards — stores went to the
   private write log, allocations to the private shadow heap; (b) the
   addresses collected per iteration, which is the raw material stride
   detection works on; (c) the detection of a small trip count.

   Run with: dune exec examples/inspect_demo.exe *)

module SP = Strideprefetch

let source =
  {|
class Account {
  int balance;
  Account log;
  Account(int b) { balance = b; log = null; }
}

class Bank {
  Account[] accounts;
  int n;
  Bank(int count) {
    accounts = new Account[count];
    n = count;
    for (int i = 0; i < count; i = i + 1) {
      accounts[i] = new Account(i * 100);
    }
  }

  /* Pays interest: loads AND stores on every iteration, plus an
     allocation — everything object inspection must sandbox. */
  int payInterest(int rate) {
    int paid = 0;
    for (int i = 0; i < n; i = i + 1) {
      Account a = accounts[i];
      int interest = a.balance * rate / 100;
      a.balance = a.balance + interest;
      a.log = new Account(interest);
      paid = paid + interest;
    }
    return paid;
  }

  static int tiny(int[] xs) {
    int acc = 0;
    for (int i = 0; i < 4; i = i + 1) { acc = acc + xs[i]; }
    return acc;
  }

  static void main() {
    Bank b = new Bank(500);
    print(b.payInterest(5));
  }
}
|}

let () =
  let program = Minijava.Compile.program_of_source_exn source in
  let machine = Memsim.Config.pentium4 in
  (* run main once with a sky-high threshold so nothing compiles and the
     heap is fully populated *)
  let options =
    { (Vm.Interp.default_options machine) with Vm.Interp.hot_threshold = max_int }
  in
  let interp = Vm.Interp.create ~options machine program in
  ignore (Vm.Interp.run interp);
  let heap = Vm.Interp.heap interp in

  (* find the Bank object to use as the actual receiver *)
  let bank_class =
    (Option.get (Vm.Classfile.find_class program "Bank")).Vm.Classfile.class_id
  in
  let bank = ref (-1) in
  Vm.Heap.iter_ids_in_address_order heap (fun id ->
      if Vm.Heap.class_id_of heap id = Some bank_class then bank := id);
  let meth = Option.get (Vm.Classfile.find_method program "Bank.payInterest") in

  Printf.printf "heap before inspection: %d objects, %d bytes\n"
    (Vm.Heap.live_objects heap) (Vm.Heap.used_bytes heap);
  let sample_account =
    Vm.Heap.get_field heap
      (match Vm.Heap.get_field heap !bank 0 with
      | Vm.Value.Ref arr -> (
          match Vm.Heap.get_elem heap arr 0 with
          | Vm.Value.Ref a -> a
          | _ -> assert false)
      | _ -> assert false)
      0
  in
  Printf.printf "accounts[0].balance before: %s\n"
    (Vm.Value.to_string sample_account);

  let cfg = Jit.Cfg.build meth.code in
  let forest = Jit.Loops.analyze cfg in
  let target = List.hd (Jit.Loops.postorder forest) in
  let result =
    SP.Inspection.inspect ~program ~heap
      ~globals:(Vm.Interp.global interp)
      ~opts:SP.Options.default ~cfg ~forest ~target ~meth
      ~args:[| Vm.Value.Ref !bank; Vm.Value.Int 5 |]
  in

  Printf.printf
    "\ninspection: %d iterations interpreted, %d instructions, natural exit: %b\n"
    result.iterations result.steps result.natural_exit;

  Printf.printf "\nheap after inspection: %d objects, %d bytes (unchanged)\n"
    (Vm.Heap.live_objects heap) (Vm.Heap.used_bytes heap);
  Printf.printf "accounts[0].balance after: %s (the +5%% went to the write log)\n"
    (Vm.Value.to_string sample_account);

  print_endline "\naddress trace per load site (first 4 iterations):";
  Array.iteri
    (fun site records ->
      if records <> [] then begin
        let shown =
          List.filteri (fun i _ -> i < 4) records
          |> List.map (fun (it, addr) -> Printf.sprintf "it%d:0x%x" it addr)
        in
        let pattern =
          match SP.Stride.inter ~opts:SP.Options.default records with
          | Some p -> Format.asprintf "%a" SP.Stride.pp p
          | None -> "no pattern"
        in
        Printf.printf "  L%-3d %-56s %s\n" site (String.concat " " shown)
          pattern
      end)
    result.per_site;

  print_endline "\nsmall-trip-count detection on Bank.tiny:";
  let tiny = Option.get (Vm.Classfile.find_method program "Bank.tiny") in
  let xs = Vm.Heap.alloc_int_array heap 4 in
  let cfg = Jit.Cfg.build tiny.code in
  let forest = Jit.Loops.analyze cfg in
  let target = List.hd (Jit.Loops.postorder forest) in
  let r =
    SP.Inspection.inspect ~program ~heap
      ~globals:(Vm.Interp.global interp)
      ~opts:SP.Options.default ~cfg ~forest ~target ~meth:tiny
      ~args:[| Vm.Value.Ref xs |]
  in
  Printf.printf
    "  loop exited naturally after %d iterations -> would be promoted into \
     a parent loop\n"
    r.iterations
