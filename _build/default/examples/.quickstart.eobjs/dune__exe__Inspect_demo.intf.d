examples/inspect_demo.mli:
