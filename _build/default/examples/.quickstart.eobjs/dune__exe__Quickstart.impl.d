examples/quickstart.ml: Format Fun Jit List Memsim Option Printf Strideprefetch String Vm Workloads
