examples/euler_scenario.ml: Format List Memsim Printf Strideprefetch Workloads
