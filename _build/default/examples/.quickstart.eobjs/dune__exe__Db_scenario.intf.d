examples/db_scenario.mli:
