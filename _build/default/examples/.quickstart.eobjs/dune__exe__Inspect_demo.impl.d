examples/inspect_demo.ml: Array Format Jit List Memsim Minijava Option Printf Strideprefetch String Vm
