examples/gc_strides.mli:
