examples/db_scenario.ml: List Memsim Printf Strideprefetch Workloads
