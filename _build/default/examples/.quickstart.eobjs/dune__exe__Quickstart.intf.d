examples/quickstart.mli:
