examples/euler_scenario.mli:
