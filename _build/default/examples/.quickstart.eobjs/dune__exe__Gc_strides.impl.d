examples/gc_strides.ml: Array List Printf String Vm
