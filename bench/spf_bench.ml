(* spf_bench: record bench_hotpath/v2 reports and run the statistical
   regression gate between them.

   Usage:
     spf_bench --record PATH [--jobs N]         run the canonical matrix,
                                                write the report to PATH
     spf_bench --compare BASELINE NEW           gate NEW against BASELINE
                                                (exit 1 on regression)
     spf_bench --gate-against BASELINE [--jobs N]
                                                record a fresh in-memory
                                                run and gate it against
                                                BASELINE
     spf_bench --smoke                          fast self-check used by
                                                dune runtest: one cell run
                                                twice must gate clean, an
                                                injected +10% cycle count
                                                must fail, and a v1 schema
                                                must be refused

   Cycle counts are gated on exact equality (they are deterministic);
   wall-clock is gated on a bootstrap 95% CI of the per-cell geomean
   ratio against a practical threshold (--threshold, default 5%). *)

module Runner = Bench_runner.Runner
module Report = Bench_runner.Report
module Gate = Bench_runner.Gate
module W = Workloads.Workload
module SP = Strideprefetch

let usage () =
  prerr_endline
    "usage: spf_bench (--record PATH | --compare BASELINE NEW | \
     --gate-against BASELINE | --smoke) [--jobs N] [--threshold PCT]"

let ok_or_die = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("spf_bench: " ^ e);
      exit 2

let record_timed ~jobs =
  let cells = Report.default_cells () in
  Printf.eprintf "[spf_bench] running %d cells on %d job(s)...\n%!"
    (List.length cells) jobs;
  let t0 = Unix.gettimeofday () in
  let timed =
    Runner.run_matrix ~jobs
      ~progress:(fun c ->
        Printf.eprintf "[spf_bench]   %s\n%!" (Runner.cell_label c))
      cells
  in
  (timed, Unix.gettimeofday () -. t0)

let print_dispatch label run =
  match Gate.dispatch_geomean run with
  | Some g ->
      Printf.printf "dispatch geomean speedup (switch/closure) %s: %.3fx\n"
        label g
  | None -> ()

let record ~jobs path =
  let timed, wall = record_timed ~jobs in
  Report.write_json ~path ~jobs ~matrix_wall_seconds:wall timed;
  Printf.printf "wrote %s (%d cells, %.1f s wall)\n" path (List.length timed)
    wall;
  let pairs = Report.dispatch_pairs timed in
  if pairs <> [] then
    Printf.printf "dispatch geomean speedup (switch/closure): %.3fx over %d \
                   pairs\n"
      (Report.dispatch_geomean pairs)
      (List.length pairs)

let compare_runs ?threshold a b =
  let c = ok_or_die (Gate.compare_runs ?threshold ~a ~b ()) in
  print_string (Gate.render c);
  print_dispatch "A" a;
  print_dispatch "B" b;
  exit (Gate.gate_exit c)

let compare_files ?threshold path_a path_b =
  let a = ok_or_die (Gate.load path_a) and b = ok_or_die (Gate.load path_b) in
  compare_runs ?threshold a b

let gate_against ?threshold ~jobs baseline_path =
  let a = ok_or_die (Gate.load baseline_path) in
  let timed, wall = record_timed ~jobs in
  let b =
    ok_or_die
      (Gate.of_string ~label:"<fresh run>"
         (Report.to_json_string ~jobs ~matrix_wall_seconds:wall timed))
  in
  compare_runs ?threshold a b

(* The runtest self-check: everything the gate promises, on one cell. *)
let smoke () =
  let workloads = Workloads.Specjvm.all @ Workloads.Javagrande.all in
  let db = List.find (fun (w : W.t) -> w.name = "db") workloads in
  let cell = Runner.cell db Memsim.Config.pentium4 SP.Options.Inter_intra in
  let report_once () =
    Report.to_json_string ~jobs:1 ~matrix_wall_seconds:0.0
      [ Runner.run_cell cell ]
  in
  let a = ok_or_die (Gate.of_string ~label:"run A" (report_once ()))
  and b = ok_or_die (Gate.of_string ~label:"run B" (report_once ())) in
  (* A huge threshold takes single-cell wall-clock noise out of the
     verdict: the smoke asserts the cycle law, not host timing. *)
  let c = ok_or_die (Gate.compare_runs ~threshold:10.0 ~a ~b ()) in
  print_string (Gate.render c);
  if not (Gate.passes c) || c.Gate.cycle_improvements <> [] then begin
    prerr_endline
      "smoke FAIL: identical re-runs disagree on simulated cycles";
    exit 1
  end;
  (* An injected +10% cycle count must trip the exact-equality gate. *)
  let b_slow =
    {
      b with
      Gate.cells =
        List.map
          (fun (r : Gate.cell_rec) ->
            { r with Gate.cycles = r.cycles + (r.cycles / 10) })
          b.Gate.cells;
    }
  in
  (match Gate.compare_runs ~threshold:10.0 ~a ~b:b_slow () with
  | Ok c' when Gate.gate_exit c' = 1 ->
      print_endline "smoke: injected +10% cycles fails the gate (good)"
  | Ok _ ->
      prerr_endline "smoke FAIL: injected cycle regression not detected";
      exit 1
  | Error e ->
      prerr_endline ("smoke FAIL: " ^ e);
      exit 1);
  (* A v1 report must be refused, naming both schemas. *)
  (match
     Gate.compare_runs ~a:{ a with Gate.schema = "bench_hotpath/v1" } ~b ()
   with
  | Error e ->
      print_endline ("smoke: v1 schema refused (good): " ^ e)
  | Ok _ ->
      prerr_endline "smoke FAIL: cross-schema compare was not refused";
      exit 1);
  print_endline "smoke: OK"

let () =
  let jobs = ref (Runner.default_jobs ()) in
  let threshold = ref None in
  let action = ref None in
  let set_action a =
    match !action with
    | None -> action := Some a
    | Some _ ->
        prerr_endline "spf_bench: more than one action given";
        usage ();
        exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | _ ->
            prerr_endline "--jobs expects a positive integer";
            exit 2);
        parse rest
    | "--threshold" :: p :: rest ->
        (match float_of_string_opt p with
        | Some p when p >= 0.0 -> threshold := Some (p /. 100.0)
        | _ ->
            prerr_endline "--threshold expects a percentage >= 0";
            exit 2);
        parse rest
    | "--record" :: path :: rest ->
        set_action (`Record path);
        parse rest
    | "--compare" :: a :: b :: rest ->
        set_action (`Compare (a, b));
        parse rest
    | "--gate-against" :: path :: rest ->
        set_action (`Gate path);
        parse rest
    | "--smoke" :: rest ->
        set_action `Smoke;
        parse rest
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | arg :: _ ->
        prerr_endline ("spf_bench: unknown argument " ^ arg);
        usage ();
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !action with
  | Some (`Record path) -> record ~jobs:!jobs path
  | Some (`Compare (a, b)) -> compare_files ?threshold:!threshold a b
  | Some (`Gate path) -> gate_against ?threshold:!threshold ~jobs:!jobs path
  | Some `Smoke -> smoke ()
  | None ->
      usage ();
      exit 2
