(* spf_bench: record bench_hotpath/v2 reports and run the statistical
   regression gate between them.

   Usage:
     spf_bench --record PATH [--jobs N]         run the canonical matrix,
                                                write the report to PATH
     spf_bench --compare BASELINE NEW           gate NEW against BASELINE
                                                (exit 1 on regression)
     spf_bench --gate-against BASELINE [--jobs N]
                                                record a fresh in-memory
                                                run and gate it against
                                                BASELINE
     spf_bench --smoke                          fast self-check used by
                                                dune runtest: one cell run
                                                twice must gate clean, an
                                                injected +10% cycle count
                                                must fail, and a v1 schema
                                                must be refused

   Cycle counts are gated on exact equality (they are deterministic);
   wall-clock is gated on a bootstrap 95% CI of the per-cell geomean
   ratio against a practical threshold (--threshold, default 5%). *)

module Runner = Bench_runner.Runner
module Report = Bench_runner.Report
module Gate = Bench_runner.Gate
module W = Workloads.Workload
module SP = Strideprefetch

let usage () =
  prerr_endline
    "usage: spf_bench (--record PATH | --compare BASELINE NEW | \
     --gate-against BASELINE | --sweep-arbitration [PATH] | \
     --sweep-prediction [PATH] | --smoke) [--jobs N] [--threshold PCT]\n\
     --sweep-arbitration sweeps the SW inter-stride threshold against \
     the hardware prefetch models per machine and auto-picks the \
     minimum-cycle arbitration point; with --smoke it runs a tiny grid \
     (Euler x pentium4) as a self-check instead.\n\
     --sweep-prediction runs every workload on both machines \
     under the inspect and hybrid prediction tiers and reports the \
     inspection iterations the address-algebra predictor saves at \
     equal-or-better simulated cycles; with --smoke it runs Euler x \
     pentium4 as a self-check instead."

let ok_or_die = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("spf_bench: " ^ e);
      exit 2

let record_timed ~jobs =
  let cells = Report.default_cells () in
  Printf.eprintf "[spf_bench] running %d cells on %d job(s)...\n%!"
    (List.length cells) jobs;
  let t0 = Unix.gettimeofday () in
  let timed =
    Runner.run_matrix ~jobs
      ~progress:(fun c ->
        Printf.eprintf "[spf_bench]   %s\n%!" (Runner.cell_label c))
      cells
  in
  (timed, Unix.gettimeofday () -. t0)

let print_dispatch label run =
  match Gate.dispatch_geomean run with
  | Some g ->
      Printf.printf "dispatch geomean speedup (switch/closure) %s: %.3fx\n"
        label g
  | None -> ()

let record ~jobs path =
  let timed, wall = record_timed ~jobs in
  Report.write_json ~path ~jobs ~matrix_wall_seconds:wall timed;
  Printf.printf "wrote %s (%d cells, %.1f s wall)\n" path (List.length timed)
    wall;
  let pairs = Report.dispatch_pairs timed in
  if pairs <> [] then
    Printf.printf "dispatch geomean speedup (switch/closure): %.3fx over %d \
                   pairs\n"
      (Report.dispatch_geomean pairs)
      (List.length pairs)

(* ------------------------------------------------------------------ *)
(* Blame on failure: when the gate trips on a cycle regression, explain
   it — per-loop cycle deltas decomposed by stall bin (lib/diff's blame
   report), so a red gate ships its own diagnosis instead of a bare
   cycle count.

   Two-sided when both reports embed the profiled cell's blame payload
   (reports written by the current Report.to_json_string do); when the
   baseline predates the blame lane, --gate-against falls back to a
   one-sided fresh profiled re-run of the regressed cell — where the
   cycles go now, even if the delta can't be split per loop. *)

let blame_config (c : Gate.cell_rec) =
  {
    Diff.Rundata.c_workload = c.Gate.workload;
    c_machine = c.machine;
    c_mode = c.mode;
    c_engine = c.engine;
    c_hw = c.hw;
    c_prediction = Option.value ~default:"inspect" c.prediction;
    c_threshold = c.sw_threshold;
    c_passes = true;
  }

let rundata_of_cell name (c : Gate.cell_rec) =
  match c.Gate.blame with
  | Some payload ->
      Diff.Rundata.of_bench_blame ~config:(blame_config c)
        ~cycles:c.Gate.cycles payload
  | None -> Error (name ^ " carries no blame payload")

(* The one-sided fallback rendering: the fresh run's hottest loops. *)
let print_one_sided (rd : Diff.Rundata.t) =
  let loops =
    List.sort
      (fun (a : Diff.Rundata.loop) b -> compare b.lr_total a.lr_total)
      rd.Diff.Rundata.loops
  in
  List.iteri
    (fun i (l : Diff.Rundata.loop) ->
      if i < 5 then
        Printf.printf "  %s/%s: %d cycles\n" l.Diff.Rundata.lr_method
          (if l.lr_loop < 0 then "(straight-line)"
           else Printf.sprintf "loop%d" l.lr_loop)
          l.lr_total)
    loops

let max_explained = 3

let explain_regressions ?rerun (c : Gate.comparison) =
  let explain (p : Gate.pair) =
    Printf.printf "\n--- blame: %s ---\n" p.Gate.key;
    let b_side =
      match (rundata_of_cell "run B" p.Gate.b, rerun) with
      | (Ok _ as ok), _ -> ok
      | Error _, Some fresh -> fresh p
      | (Error _ as e), None -> e
    in
    match (rundata_of_cell "baseline" p.Gate.a, b_side) with
    | Ok a, Ok b ->
        let bl = Diff.Blame.build ~a ~b () in
        print_string (Diff.Blame.render ~top:5 bl)
    | Error why, Ok b ->
        Printf.printf
          "%s; one-sided diagnosis (profiled breakdown of the regressed \
           run, %+d cycles vs baseline):\n"
          why
          (p.Gate.b.Gate.cycles - p.Gate.a.Gate.cycles);
        print_one_sided b
    | _, Error why ->
        Printf.printf
          "%s; re-record the baseline with the current writer or run \
           --gate-against for a fresh profiled diagnosis\n"
          why
  in
  match c.Gate.cycle_regressions with
  | [] -> ()
  | regressed ->
      let rec take n = function
        | x :: rest when n > 0 -> x :: take (n - 1) rest
        | _ -> []
      in
      List.iter explain (take max_explained regressed);
      let dropped = List.length regressed - max_explained in
      if dropped > 0 then
        Printf.printf
          "\n(%d more regressed cell(s) not explained; fix the above \
           first)\n"
          dropped

let compare_runs ?threshold ?rerun a b =
  let c = ok_or_die (Gate.compare_runs ?threshold ~a ~b ()) in
  print_string (Gate.render c);
  print_dispatch "A" a;
  print_dispatch "B" b;
  if not (Gate.passes c) then explain_regressions ?rerun c;
  exit (Gate.gate_exit c)

let compare_files ?threshold path_a path_b =
  let a = ok_or_die (Gate.load path_a) and b = ok_or_die (Gate.load path_b) in
  compare_runs ?threshold a b

let gate_against ?threshold ~jobs baseline_path =
  let a = ok_or_die (Gate.load baseline_path) in
  let timed, wall = record_timed ~jobs in
  let b =
    ok_or_die
      (Gate.of_string ~label:"<fresh run>"
         (Report.to_json_string ~jobs ~matrix_wall_seconds:wall timed))
  in
  (* The fresh run is still in memory: a regressed cell whose baseline
     has no blame payload is re-run with the profiler installed (one
     cell — cheap next to the matrix) for the one-sided diagnosis. *)
  let matches (t : Runner.timed) (c : Gate.cell_rec) =
    t.Runner.cell.Runner.workload.W.name = c.Gate.workload
    && t.Runner.cell.Runner.machine.Memsim.Config.name = c.Gate.machine
    && SP.Options.mode_name t.Runner.cell.Runner.mode = c.Gate.mode
    && Vm.Interp.engine_name t.Runner.cell.Runner.engine = c.Gate.engine
    && t.Runner.cell.Runner.telemetry = c.Gate.telemetry
    && t.Runner.cell.Runner.profile = c.Gate.profile
    && t.Runner.cell.Runner.monitor = c.Gate.monitor
    && Memsim.Config.hw_prefetch_to_string
         t.Runner.cell.Runner.machine.Memsim.Config.hw_prefetch
       = c.Gate.hw
    && (match t.Runner.cell.Runner.opts with
       | Some o ->
           o.SP.Options.inter_stride_threshold = c.Gate.sw_threshold
           && (if o.SP.Options.prediction <> SP.Options.Inspect then
                 Some (SP.Options.prediction_name o.SP.Options.prediction)
               else None)
              = c.Gate.prediction
       | None -> c.Gate.sw_threshold = None && c.Gate.prediction = None)
  in
  let rerun (p : Gate.pair) =
    match List.find_opt (fun t -> matches t p.Gate.b) timed with
    | None -> Error "regressed cell not found in the fresh run"
    | Some t ->
        let result =
          match t.Runner.result.Workloads.Harness.profile with
          | Some _ -> t.Runner.result
          | None ->
              (Runner.run_cell { t.Runner.cell with Runner.profile = true })
                .Runner.result
        in
        Diff.Rundata.of_run ~config:(blame_config p.Gate.b) result
  in
  compare_runs ?threshold ~rerun a b

(* --sweep-arbitration: the SW/HW arbitration sweep. The paper hands
   strides shorter than half a cache line to the hardware prefetcher
   (Section 4.1's "the hardware already covers short strides"); this
   sweep measures where that handoff point actually sits for each
   machine's hardware model by gridding the SW inter-stride threshold
   against the hardware prefetch models and summing simulated cycles
   over a fixed workload set. The minimum-cycle point per machine is the
   auto-picked arbitration point, reported in the bench JSON's
   "arbitration" lane; every grid cell also lands in "cells" under a
   distinct /hw=... /thr=N gate key.

   The smoke variant runs a 2x2 grid on Euler x pentium4 — small enough
   for dune runtest — and asserts the lane's structural invariants:
   picks are grid minima, keys are distinct, the report round-trips. *)
let sweep_arbitration ~jobs ~smoke path =
  let module C = Memsim.Config in
  let all = Workloads.Specjvm.all @ Workloads.Javagrande.all in
  let find n = List.find (fun (w : W.t) -> w.name = n) all in
  let workloads, machines, thresholds, hw_models =
    if smoke then
      ( [ find "Euler" ],
        [ C.pentium4 ],
        [ 16; 32 ],
        [ C.default_stream; C.default_rpt ] )
    else
      ( [ find "db"; find "compress"; find "Euler" ],
        [ C.pentium4; C.athlon_mp ],
        [ 0; 16; 32; 64 ],
        [
          C.Hw_none;
          C.default_stream;
          C.default_rpt;
          C.Hw_rpt { table_size = 64; degree = 4; distance = 4 };
          C.Hw_rpt { table_size = 256; degree = 2; distance = 8 };
        ] )
  in
  let opts_for t =
    { SP.Options.default with SP.Options.inter_stride_threshold = Some t }
  in
  let cells =
    List.concat_map
      (fun (machine : Memsim.Config.machine) ->
        List.concat_map
          (fun hw ->
            List.concat_map
              (fun t ->
                List.map
                  (fun w ->
                    Runner.cell ~opts:(opts_for t) w
                      { machine with C.hw_prefetch = hw }
                      SP.Options.Inter_intra)
                  workloads)
              thresholds)
          hw_models)
      machines
  in
  Printf.eprintf "[spf_bench] arbitration sweep: %d cells on %d job(s)...\n%!"
    (List.length cells) jobs;
  let t0 = Unix.gettimeofday () in
  let timed =
    Runner.run_matrix ~jobs
      ~progress:(fun c ->
        Printf.eprintf "[spf_bench]   %s\n%!" (Runner.cell_label c))
      cells
  in
  let wall = Unix.gettimeofday () -. t0 in
  (* Sum cycles per (machine, hw, threshold) grid point. *)
  let grid =
    List.concat_map
      (fun (machine : Memsim.Config.machine) ->
        List.concat_map
          (fun hw ->
            List.map
              (fun t ->
                let cycles =
                  List.fold_left
                    (fun acc (r : Runner.timed) ->
                      if
                        r.cell.Runner.machine.C.name = machine.C.name
                        && r.cell.Runner.machine.C.hw_prefetch = hw
                        && r.cell.Runner.opts = Some (opts_for t)
                      then acc + r.result.Workloads.Harness.cycles
                      else acc)
                    0 timed
                in
                {
                  Report.arb_machine = machine.C.name;
                  arb_threshold = t;
                  arb_hw = C.hw_prefetch_to_string hw;
                  arb_cycles = cycles;
                })
              thresholds)
          hw_models)
      machines
  in
  let picks =
    List.map
      (fun (machine : Memsim.Config.machine) ->
        let mine =
          List.filter
            (fun (p : Report.arb_point) -> p.arb_machine = machine.C.name)
            grid
        in
        List.fold_left
          (fun (best : Report.arb_point) (p : Report.arb_point) ->
            if p.Report.arb_cycles < best.Report.arb_cycles then p else best)
          (List.hd mine) (List.tl mine))
      machines
  in
  let arbitration =
    {
      Report.arb_workloads = List.map (fun (w : W.t) -> w.name) workloads;
      arb_grid = grid;
      arb_picks = picks;
    }
  in
  List.iter
    (fun (p : Report.arb_point) ->
      Printf.printf
        "arbitration pick [%s]: sw_threshold=%d hw=%s (%d cycles over %s)\n"
        p.arb_machine p.arb_threshold p.arb_hw p.arb_cycles
        (String.concat "+" arbitration.Report.arb_workloads))
    picks;
  let json =
    Report.to_json_string ~arbitration ~jobs ~matrix_wall_seconds:wall timed
  in
  (match path with
  | Some path ->
      Out_channel.with_open_text path (fun oc -> output_string oc json);
      Printf.printf "wrote %s (%d cells, %.1f s wall)\n" path
        (List.length timed) wall
  | None -> ());
  if smoke then begin
    (* Structural self-checks for the runtest hook. *)
    let r = ok_or_die (Gate.of_string ~label:"<sweep>" json) in
    if r.Gate.schema <> Report.schema then begin
      prerr_endline "sweep smoke FAIL: wrong schema";
      exit 1
    end;
    let keys = List.map Gate.cell_key r.Gate.cells in
    if List.length (List.sort_uniq compare keys) <> List.length keys
    then begin
      prerr_endline "sweep smoke FAIL: sweep cells collide under gate keys";
      exit 1
    end;
    List.iter
      (fun (p : Report.arb_point) ->
        let floor_cycles =
          List.fold_left
            (fun acc (g : Report.arb_point) ->
              if g.arb_machine = p.arb_machine then min acc g.arb_cycles
              else acc)
            max_int grid
        in
        if p.arb_cycles <> floor_cycles then begin
          prerr_endline
            "sweep smoke FAIL: pick is not the grid minimum for its machine";
          exit 1
        end)
      picks;
    print_endline "sweep smoke: OK"
  end

(* --sweep-prediction: the JIT-compile-time lane. The hybrid tier's
   promise is purely compile-side — the address-algebra predictor's
   Certain verdicts skip the ~20 inspection iterations, Likely shortens
   them — while the simulated cycle count must stay equal or better
   (static claims that agree with inspection produce the same plans).
   This sweep runs each workload under the inspect and hybrid tiers and
   reports both sides of that trade: inspection iterations begun and
   instructions partially interpreted (saved work) next to cycles and
   prefetch-pass wall-clock. Results land in the bench JSON's
   "prediction" lane; every hybrid cell also lands in "cells" under a
   distinct /pred=hybrid gate key.

   The smoke variant runs MonteCarlo x pentium4 — small enough for dune
   runtest — and asserts the lane's contract: the report round-trips,
   gate keys stay distinct, hybrid begins strictly fewer inspection
   iterations, and hybrid cycles are equal or better. *)
let sweep_prediction ~jobs ~smoke path =
  let module C = Memsim.Config in
  let all = Workloads.Specjvm.all @ Workloads.Javagrande.all in
  let workloads, machines =
    if smoke then
      ( [ List.find (fun (w : W.t) -> w.name = "MonteCarlo") all ],
        [ C.pentium4 ] )
    else (all, [ C.pentium4; C.athlon_mp ])
  in
  let tiers = [ SP.Options.Inspect; SP.Options.Hybrid ] in
  let opts_for tier =
    { SP.Options.default with SP.Options.prediction = tier }
  in
  let cells =
    List.concat_map
      (fun (machine : C.machine) ->
        List.concat_map
          (fun tier ->
            List.map
              (fun w ->
                (* The inspect cells are the canonical ones (no opts
                   override), so their gate keys match the default
                   matrix; hybrid cells carry the override and the
                   /pred=hybrid key suffix. *)
                match tier with
                | SP.Options.Inspect ->
                    Runner.cell w machine SP.Options.Inter_intra
                | _ ->
                    Runner.cell ~opts:(opts_for tier) w machine
                      SP.Options.Inter_intra)
              workloads)
          tiers)
      machines
  in
  Printf.eprintf "[spf_bench] prediction sweep: %d cells on %d job(s)...\n%!"
    (List.length cells) jobs;
  let t0 = Unix.gettimeofday () in
  let timed =
    Runner.run_matrix ~jobs
      ~progress:(fun c ->
        Printf.eprintf "[spf_bench]   %s\n%!" (Runner.cell_label c))
      cells
  in
  let wall = Unix.gettimeofday () -. t0 in
  let tier_of (t : Runner.timed) =
    match t.cell.Runner.opts with
    | Some o -> SP.Options.prediction_name o.SP.Options.prediction
    | None -> SP.Options.prediction_name SP.Options.Inspect
  in
  let point_of (t : Runner.timed) =
    let iters, steps =
      List.fold_left
        (fun (i, s) (r : SP.Pass.loop_report) ->
          (i + r.SP.Pass.iterations_observed, s + r.SP.Pass.inspection_steps))
        (0, 0) t.result.Workloads.Harness.reports
    in
    {
      Report.pred_workload = t.cell.Runner.workload.W.name;
      pred_machine = t.cell.Runner.machine.C.name;
      pred_tier = tier_of t;
      pred_cycles = t.result.Workloads.Harness.cycles;
      pred_iterations = iters;
      pred_steps = steps;
      pred_pass_seconds = t.result.Workloads.Harness.prefetch_pass_seconds;
    }
  in
  let points = List.map point_of timed in
  let sum_over machine tier f =
    List.fold_left
      (fun acc (p : Report.pred_point) ->
        if p.pred_machine = machine && p.pred_tier = tier then acc + f p
        else acc)
      0 points
  in
  let summaries =
    List.map
      (fun (machine : C.machine) ->
        let m = machine.C.name in
        let inspect_i =
          sum_over m "inspect" (fun p -> p.Report.pred_iterations)
        and hybrid_i =
          sum_over m "hybrid" (fun p -> p.Report.pred_iterations)
        and inspect_c = sum_over m "inspect" (fun p -> p.Report.pred_cycles)
        and hybrid_c = sum_over m "hybrid" (fun p -> p.Report.pred_cycles) in
        {
          Report.pred_sum_machine = m;
          pred_iterations_inspect = inspect_i;
          pred_iterations_hybrid = hybrid_i;
          pred_cycles_delta = hybrid_c - inspect_c;
        })
      machines
  in
  let prediction =
    { Report.pred_points = points; pred_summaries = summaries }
  in
  Printf.printf "%-11s %-10s %-8s %12s %12s %12s %12s\n" "workload"
    "machine" "tier" "cycles" "iterations" "insp steps" "pass (ms)";
  List.iter
    (fun (p : Report.pred_point) ->
      Printf.printf "%-11s %-10s %-8s %12d %12d %12d %12.3f\n"
        p.pred_workload p.pred_machine p.pred_tier p.pred_cycles
        p.pred_iterations p.pred_steps (1000.0 *. p.pred_pass_seconds))
    points;
  List.iter
    (fun (s : Report.pred_summary) ->
      Printf.printf
        "prediction summary [%s]: hybrid begins %d of %d inspection \
         iterations (%d saved), cycles delta %+d\n"
        s.Report.pred_sum_machine s.pred_iterations_hybrid
        s.pred_iterations_inspect
        (s.pred_iterations_inspect - s.pred_iterations_hybrid)
        s.pred_cycles_delta)
    summaries;
  let json =
    Report.to_json_string ~prediction ~jobs ~matrix_wall_seconds:wall timed
  in
  (match path with
  | Some path ->
      Out_channel.with_open_text path (fun oc -> output_string oc json);
      Printf.printf "wrote %s (%d cells, %.1f s wall)\n" path
        (List.length timed) wall
  | None -> ());
  if smoke then begin
    let r = ok_or_die (Gate.of_string ~label:"<sweep>" json) in
    if r.Gate.schema <> Report.schema then begin
      prerr_endline "prediction smoke FAIL: wrong schema";
      exit 1
    end;
    let keys = List.map Gate.cell_key r.Gate.cells in
    if List.length (List.sort_uniq compare keys) <> List.length keys
    then begin
      prerr_endline
        "prediction smoke FAIL: sweep cells collide under gate keys";
      exit 1
    end;
    List.iter
      (fun (s : Report.pred_summary) ->
        if s.Report.pred_iterations_hybrid >= s.pred_iterations_inspect
        then begin
          prerr_endline
            "prediction smoke FAIL: hybrid did not reduce inspection \
             iterations";
          exit 1
        end;
        if s.pred_cycles_delta > 0 then begin
          prerr_endline
            "prediction smoke FAIL: hybrid regressed simulated cycles";
          exit 1
        end)
      summaries;
    print_endline "prediction smoke: OK"
  end

(* The runtest self-check: everything the gate promises, on one cell. *)
let smoke () =
  let workloads = Workloads.Specjvm.all @ Workloads.Javagrande.all in
  let db = List.find (fun (w : W.t) -> w.name = "db") workloads in
  let cell = Runner.cell db Memsim.Config.pentium4 SP.Options.Inter_intra in
  let report_once () =
    Report.to_json_string ~jobs:1 ~matrix_wall_seconds:0.0
      [ Runner.run_cell cell ]
  in
  let a = ok_or_die (Gate.of_string ~label:"run A" (report_once ()))
  and b = ok_or_die (Gate.of_string ~label:"run B" (report_once ())) in
  (* A huge threshold takes single-cell wall-clock noise out of the
     verdict: the smoke asserts the cycle law, not host timing. *)
  let c = ok_or_die (Gate.compare_runs ~threshold:10.0 ~a ~b ()) in
  print_string (Gate.render c);
  if not (Gate.passes c) || c.Gate.cycle_improvements <> [] then begin
    prerr_endline
      "smoke FAIL: identical re-runs disagree on simulated cycles";
    exit 1
  end;
  (* An injected +10% cycle count must trip the exact-equality gate. *)
  let b_slow =
    {
      b with
      Gate.cells =
        List.map
          (fun (r : Gate.cell_rec) ->
            { r with Gate.cycles = r.cycles + (r.cycles / 10) })
          b.Gate.cells;
    }
  in
  (match Gate.compare_runs ~threshold:10.0 ~a ~b:b_slow () with
  | Ok c' when Gate.gate_exit c' = 1 ->
      print_endline "smoke: injected +10% cycles fails the gate (good)"
  | Ok _ ->
      prerr_endline "smoke FAIL: injected cycle regression not detected";
      exit 1
  | Error e ->
      prerr_endline ("smoke FAIL: " ^ e);
      exit 1);
  (* A v1 report must be refused, naming both schemas. *)
  (match
     Gate.compare_runs ~a:{ a with Gate.schema = "bench_hotpath/v1" } ~b ()
   with
  | Error e ->
      print_endline ("smoke: v1 schema refused (good): " ^ e)
  | Ok _ ->
      prerr_endline "smoke FAIL: cross-schema compare was not refused";
      exit 1);
  print_endline "smoke: OK"

let () =
  let jobs = ref (Runner.default_jobs ()) in
  let threshold = ref None in
  let action = ref None in
  let smoke_flag = ref false in
  let set_action a =
    match !action with
    | None -> action := Some a
    | Some _ ->
        prerr_endline "spf_bench: more than one action given";
        usage ();
        exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | _ ->
            prerr_endline "--jobs expects a positive integer";
            exit 2);
        parse rest
    | "--threshold" :: p :: rest ->
        (match float_of_string_opt p with
        | Some p when p >= 0.0 -> threshold := Some (p /. 100.0)
        | _ ->
            prerr_endline "--threshold expects a percentage >= 0";
            exit 2);
        parse rest
    | "--record" :: path :: rest ->
        set_action (`Record path);
        parse rest
    | "--compare" :: a :: b :: rest ->
        set_action (`Compare (a, b));
        parse rest
    | "--gate-against" :: path :: rest ->
        set_action (`Gate path);
        parse rest
    | "--sweep-arbitration" :: rest -> (
        match rest with
        | path :: rest'
          when not (String.length path > 0 && path.[0] = '-') ->
            set_action (`Sweep (Some path));
            parse rest'
        | _ ->
            set_action (`Sweep None);
            parse rest)
    | "--sweep-prediction" :: rest -> (
        match rest with
        | path :: rest'
          when not (String.length path > 0 && path.[0] = '-') ->
            set_action (`Sweep_prediction (Some path));
            parse rest'
        | _ ->
            set_action (`Sweep_prediction None);
            parse rest)
    | "--smoke" :: rest ->
        (* A flag when it modifies --sweep-arbitration, an action (the
           gate self-check) when it stands alone. *)
        smoke_flag := true;
        parse rest
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | arg :: _ ->
        prerr_endline ("spf_bench: unknown argument " ^ arg);
        usage ();
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !action with
  | Some (`Record path) -> record ~jobs:!jobs path
  | Some (`Compare (a, b)) -> compare_files ?threshold:!threshold a b
  | Some (`Gate path) -> gate_against ?threshold:!threshold ~jobs:!jobs path
  | Some (`Sweep path) ->
      sweep_arbitration ~jobs:!jobs ~smoke:!smoke_flag path
  | Some (`Sweep_prediction path) ->
      sweep_prediction ~jobs:!jobs ~smoke:!smoke_flag path
  | None when !smoke_flag -> smoke ()
  | None ->
      usage ();
      exit 2
