(** Statistical bench-regression gate over bench_hotpath/v2 reports.

    The gate separates the two signals a report carries by how much
    evidence each needs:

    - {e simulated cycles} are deterministic — a pure function of the
      cell — so any per-cell difference is a real behavioural change and
      the gate demands exact equality;
    - {e host wall-clock seconds} are noisy, so the gate aggregates the
      per-cell new/old ratios as a geometric mean and bootstraps a 95%
      confidence interval over the log-ratios (fixed seed: the verdict is
      deterministic given the two reports). Only a slowdown whose whole
      interval clears the practical threshold (default +5%) fails, so
      same-host re-runs of an unchanged tree pass. *)

type cell_rec = {
  workload : string;
  machine : string;
  mode : string;
  engine : string;
      (** ["closure"] when the field is absent: pre-dispatch-lane reports
          timed the only engine there was, and their cells keep matching
          newer closure cells (see the wall-clock reset protocol in
          BENCH_history/README.md) *)
  telemetry : bool;
  profile : bool;
  monitor : bool;
      (** the live windowed monitor was armed; [false] when the field is
          absent — pre-monitor reports have no monitored twins, and
          their plain cells keep matching *)
  hw : string;
      (** hardware prefetch model spec (e.g. ["rpt:64x2@4"]);
          ["stream:8"] — the default model — when the field is absent,
          so pre-RPT reports keep matching newer default cells *)
  sw_threshold : int option;
      (** SW inter-stride threshold of an arbitration-sweep cell;
          [None] (paper default, half a line) otherwise *)
  prediction : string option;
      (** prediction tier of a prediction-sweep cell; [None] (the
          dynamic-inspection default) for canonical-matrix cells and for
          reports written before the prediction lane existed *)
  blame : Telemetry.Json.t option;
      (** compact per-loop blame payload of a profiled cell, raw — fed
          to [Diff.Rundata.of_bench_blame] when a failing gate explains
          its cycle regressions; [None] for unprofiled cells and for
          pre-blame reports (their cells keep matching: the payload is
          not part of {!cell_key}) *)
  seconds : float;
  cycles : int;
}

type run = {
  schema : string;
  jobs : int;
  host_cpus : int;
  cells : cell_rec list;
}

val default_hw : string
(** Spec string of the default hardware model (["stream:8"]) — the value
    [hw] takes when a report predates the field. *)

val cell_key : cell_rec -> string
(** ["workload/machine/mode"] with ["/telemetry"] / ["/profile"] /
    ["/switch-engine"] / ["/hw=..."] / ["/thr=N"] suffixes — the
    identity cells are matched on across reports (it deliberately
    ignores [seconds], [cycles] and the report's [jobs]). The hw and
    threshold suffixes appear only on non-default cells, so canonical
    matrix keys are unchanged from pre-sweep reports. *)

val of_string : label:string -> string -> (run, string) result
(** Parse a report. Lenient about schema (so {!compare_runs} can name both
    schemas in its refusal) and about missing boolean fields, strict about
    each cell's workload/machine/mode/seconds/cycles. [label] prefixes
    error messages. *)

val load : string -> (run, string) result
(** {!of_string} on a file's contents; I/O errors become [Error]. *)

type pair = { key : string; a : cell_rec; b : cell_rec }

type comparison = {
  pairs : pair list;  (** cells present in both reports, in A's order *)
  only_a : string list;
  only_b : string list;
  cycle_regressions : pair list;  (** [b.cycles > a.cycles] *)
  cycle_improvements : pair list;  (** [b.cycles < a.cycles] *)
  seconds_geomean : float;
      (** geometric mean of per-cell wall-clock ratios B/A; [nan] if no
          cell has positive timings on both sides *)
  ci_low : float;  (** 2.5th bootstrap percentile of the geomean ratio *)
  ci_high : float;  (** 97.5th bootstrap percentile *)
  threshold : float;  (** the practical-significance threshold used *)
  significant_slowdown : bool;  (** [ci_low > 1 + threshold] *)
  significant_speedup : bool;  (** [ci_high < 1 - threshold] *)
}

val compare_runs :
  ?threshold:float -> a:run -> b:run -> unit -> (comparison, string) result
(** Compare report [b] (new) against report [a] (baseline). Refuses with
    [Error] when either schema differs from {!Report.schema} (the message
    names both) or when the reports share no cell. [threshold] defaults
    to [0.05] (5% wall-clock). *)

val passes : comparison -> bool
(** No cycle regression and no significant slowdown. *)

val gate_exit : comparison -> int
(** [0] when {!passes}, [1] otherwise. *)

val dispatch_geomean : run -> float option
(** The report's dispatch lane: geomean of switch/closure wall-clock
    speedups over the switch-engine twins and their plain closure cells;
    [None] when the report predates the lane. *)

val render : comparison -> string
(** The full human-readable verdict: per-cell table ({!Telemetry.Table}),
    unmatched cells, cycle and wall-clock summaries, and a final
    [GATE: PASS] / [GATE: FAIL] line. *)
