(* Reproduction harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 4 for the experiment index), plus an
   ablation sweep, per-cell wall-clock timings and bechamel microbenchmarks
   of the compiler machinery.

   Usage: dune exec bench/main.exe [-- flags] [experiment ...]
   Experiments: table1 table2 table3 fig34 fig5 fig6 fig7 fig8 fig9 fig10
   fig11 ablation timings micro; default is all of them in paper order.

   Flags:
     --jobs N     size of the Domain pool for the simulation matrix
                  (default: Domain.recommended_domain_count ())
     --json PATH  where [timings] writes its report
                  (default: BENCH_hotpath.json)
     --smoke      reduced bechamel quota for [micro] (used by dune runtest)

   All simulation cells needed by the requested experiments are collected
   up front, deduplicated, and run once on the Domain pool (Bench_runner);
   the experiments then only read the pre-computed matrix. Simulated cycle
   counts are independent of --jobs. *)

module SP = Strideprefetch
module W = Workloads.Workload
module H = Workloads.Harness
module Runner = Bench_runner.Runner

let workloads = Workloads.Specjvm.all @ Workloads.Javagrande.all
let specjvm_names = List.map (fun (w : W.t) -> w.name) Workloads.Specjvm.all

let machines = [ Memsim.Config.pentium4; Memsim.Config.athlon_mp ]
let all_modes = [ SP.Options.Off; SP.Options.Inter; SP.Options.Inter_intra ]

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheading title = Printf.printf "\n-- %s --\n" title

(* ------------------------------------------------------------------ *)
(* Result matrix: each (workload, machine, mode, opts) cell runs once per
   process. The cells for the requested experiments are prefilled in
   parallel by [prefill]; [result_of_cell] falls back to a serial run only
   for cells no experiment declared (which would be a bug in [needs]). *)

type key =
  string * string * SP.Options.mode * SP.Options.t option * bool * bool * bool

let key_of (c : Runner.cell) : key =
  ( c.workload.W.name,
    c.machine.Memsim.Config.name,
    c.mode,
    c.opts,
    c.telemetry,
    c.profile,
    c.monitor )

let cache : (key, Runner.timed) Hashtbl.t = Hashtbl.create 64

(* Wall-clock of the parallel prefill, for the timings report. *)
let matrix_wall_seconds = ref 0.0

let prefill ~jobs cells =
  let todo =
    List.filter (fun c -> not (Hashtbl.mem cache (key_of c))) cells
  in
  (* Dedup while preserving order. *)
  let seen = Hashtbl.create 64 in
  let todo =
    List.filter
      (fun c ->
        let k = key_of c in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      todo
  in
  if todo <> [] then begin
    Printf.eprintf "[bench] running %d simulation cells on %d domain(s)...\n%!"
      (List.length todo) jobs;
    let t0 = Unix.gettimeofday () in
    let timed =
      Runner.run_matrix ~jobs
        ~progress:(fun c ->
          Printf.eprintf "[bench]   %s\n%!" (Runner.cell_label c))
        todo
    in
    matrix_wall_seconds := !matrix_wall_seconds +. Unix.gettimeofday () -. t0;
    List.iter (fun (t : Runner.timed) -> Hashtbl.replace cache (key_of t.cell) t)
      timed
  end

let timed_of_cell (c : Runner.cell) =
  let k = key_of c in
  match Hashtbl.find_opt cache k with
  | Some t -> t
  | None ->
      Printf.eprintf "[bench] running %s (not prefilled)...\n%!"
        (Runner.cell_label c);
      let t = Runner.run_cell c in
      Hashtbl.replace cache k t;
      t

let result_opts ?opts (w : W.t) machine mode =
  (timed_of_cell (Runner.cell ?opts w machine mode)).Runner.result

let result w machine mode = result_opts w machine mode

let speedup_percent w machine mode =
  let baseline = result w machine SP.Options.Off in
  H.percent_speedup ~baseline (result w machine mode)

(* ------------------------------------------------------------------ *)
(* Table 1: the load instructions of findInMemory. *)

let kernel_and_infos () =
  let program = Workloads.Figure1.compile () in
  let meth =
    Option.get (Vm.Classfile.find_method program Workloads.Figure1.kernel_name)
  in
  let infos =
    Jit.Stack_model.analyze meth.code ~arity:meth.arity
      ~callee_arity:(fun m -> (Vm.Classfile.method_of_id program m).arity)
      ~callee_returns:(fun m ->
        (Vm.Classfile.method_of_id program m).returns_value)
  in
  (program, meth, infos)

let table1 () =
  heading "Table 1: load instructions in the findInMemory() method";
  let _, meth, infos = kernel_and_infos () in
  Printf.printf "%-6s %-20s %s\n" "Load" "Memory address" "instruction";
  for site = 0 to meth.n_sites - 1 do
    let instr =
      Array.to_list meth.code
      |> List.find_opt (fun i -> List.mem site (Vm.Bytecode.all_sites i))
    in
    Printf.printf "%-6s %-20s %s\n"
      (Printf.sprintf "L%d" site)
      (Workloads.Figure1.describe_site infos site)
      (match instr with Some i -> Vm.Bytecode.to_string i | None -> "?")
  done

(* ------------------------------------------------------------------ *)

let table2 () =
  heading "Table 2: parameters related to prefetching";
  Printf.printf "%-10s %-8s %-9s %-8s %-9s %-6s %s\n" "Processor" "L1(KB)"
    "L1 line" "L2(KB)" "L2 line" "#DTLB" "prefetch target";
  List.iter
    (fun (m : Memsim.Config.machine) ->
      Printf.printf "%-10s %-8d %-9d %-8d %-9d %-6d %s\n" m.name
        (m.l1.size_bytes / 1024) m.l1.line_bytes (m.l2.size_bytes / 1024)
        m.l2.line_bytes m.dtlb.entries
        (match m.prefetch_target with
        | Memsim.Config.To_l2 -> "L2"
        | Memsim.Config.To_l1 -> "L1"))
    machines

(* ------------------------------------------------------------------ *)

let table3 () =
  heading "Table 3: benchmarks and % of cycles in compiled code (Pentium 4)";
  Printf.printf "%-11s %-10s %-14s %s\n" "Program" "Suite" "Compiled (%)"
    "Description";
  List.iter
    (fun (w : W.t) ->
      let r = result w Memsim.Config.pentium4 SP.Options.Off in
      Printf.printf "%-11s %-10s %-14.1f %s\n" w.name
        (if List.mem w.name specjvm_names then "SPECjvm98" else "JavaGrande")
        (100.0 *. H.compiled_fraction r)
        w.description)
    workloads

(* ------------------------------------------------------------------ *)
(* Figures 3 and 4: the generated prefetching code, INTER vs INTER+INTRA. *)

let optimized_kernel mode machine =
  let program = Workloads.Figure1.compile () in
  let opts = SP.Options.with_mode mode SP.Options.default in
  let interp = Vm.Interp.create machine program in
  let reports = ref [] in
  let pipeline =
    Jit.Pipeline.create
      (Jit.Pipeline.standard_passes ()
      @
      match mode with
      | SP.Options.Off -> []
      | _ ->
          [
            SP.Pass.make_pass ~opts ~interp
              ~report_sink:(fun r -> reports := !reports @ r)
              ();
          ])
  in
  Vm.Interp.set_compile_hook interp (fun _ m args ->
      Jit.Pipeline.compile pipeline m args);
  ignore (Vm.Interp.run interp);
  let meth =
    Option.get (Vm.Classfile.find_method program Workloads.Figure1.kernel_name)
  in
  (meth, !reports)

let fig34 () =
  heading "Figures 3 & 4: generated prefetching code for findInMemory";
  subheading "Figure 3 analogue: INTER only (Wu-style, in-loop loads)";
  let meth, _ = optimized_kernel SP.Options.Inter Memsim.Config.pentium4 in
  Format.printf "%a@." Vm.Classfile.pp_method meth;
  subheading "Figure 4 analogue: INTER+INTRA (dereference + intra-stride)";
  let meth, reports =
    optimized_kernel SP.Options.Inter_intra Memsim.Config.pentium4
  in
  Format.printf "%a@." Vm.Classfile.pp_method meth;
  subheading "per-loop pass reports";
  List.iter (fun r -> Format.printf "%a@." SP.Pass.pp_report r) reports

(* ------------------------------------------------------------------ *)

let fig5 () =
  heading "Figure 5: load dependence graph for findInMemory";
  let _, meth, infos = kernel_and_infos () in
  let sites = List.init meth.n_sites Fun.id in
  let ldg = SP.Ldg.build infos ~sites in
  Format.printf "%a@." SP.Ldg.pp ldg;
  subheading "GraphViz rendering";
  print_string
    (SP.Ldg.to_dot ldg ~labels:(fun site ->
         Printf.sprintf "L%d: %s" site
           (Workloads.Figure1.describe_site infos site)))

(* ------------------------------------------------------------------ *)

let speedup_figure ~figure ~machine () =
  heading
    (Printf.sprintf "Figure %s: speedup ratios on the %s" figure
       machine.Memsim.Config.name);
  Printf.printf "%-11s %12s %12s\n" "Program" "INTER" "INTER+INTRA";
  List.iter
    (fun (w : W.t) ->
      Printf.printf "%-11s %+11.1f%% %+11.1f%%\n" w.name
        (speedup_percent w machine SP.Options.Inter)
        (speedup_percent w machine SP.Options.Inter_intra))
    workloads

let fig6 () = speedup_figure ~figure:"6" ~machine:Memsim.Config.pentium4 ()
let fig7 () = speedup_figure ~figure:"7" ~machine:Memsim.Config.athlon_mp ()

(* ------------------------------------------------------------------ *)

let mpi_figure ~figure ~label ~extract () =
  heading
    (Printf.sprintf "Figure %s: %s on the Pentium 4 (x1000)" figure label);
  Printf.printf "%-11s %12s %12s\n" "Program" "BASELINE" "INTER+INTRA";
  List.iter
    (fun (w : W.t) ->
      let base = result w Memsim.Config.pentium4 SP.Options.Off in
      let opt = result w Memsim.Config.pentium4 SP.Options.Inter_intra in
      Printf.printf "%-11s %12.3f %12.3f\n" w.name
        (1000.0 *. extract base.H.stats)
        (1000.0 *. extract opt.H.stats))
    workloads

let fig8 () =
  mpi_figure ~figure:"8" ~label:"L1 cache load MPI"
    ~extract:Memsim.Stats.l1_load_mpi ()

let fig9 () =
  mpi_figure ~figure:"9" ~label:"L2 cache load MPI"
    ~extract:Memsim.Stats.l2_load_mpi ()

let fig10 () =
  mpi_figure ~figure:"10" ~label:"DTLB load MPI"
    ~extract:Memsim.Stats.dtlb_load_mpi ()

(* ------------------------------------------------------------------ *)

let fig11 () =
  heading "Figure 11: compilation time of the prefetching pass (Pentium 4)";
  Printf.printf "%-11s %10s %15s %15s %12s\n" "Program" "methods"
    "prefetch (ms)" "rest of JIT(ms)" "per hot method";
  let worst_per_method = ref 0.0 in
  List.iter
    (fun (w : W.t) ->
      let r = result w Memsim.Config.pentium4 SP.Options.Inter_intra in
      let per_method =
        if r.methods_compiled = 0 then 0.0
        else 1000.0 *. r.prefetch_pass_seconds /. float_of_int r.methods_compiled
      in
      if per_method > !worst_per_method then worst_per_method := per_method;
      Printf.printf "%-11s %10d %15.3f %15.3f %9.3f ms\n" w.name
        r.methods_compiled
        (1000.0 *. r.prefetch_pass_seconds)
        (1000.0
        *. (r.total_compile_seconds -. r.prefetch_pass_seconds))
        per_method)
    workloads;
  Printf.printf
    "\nWorst-case prefetch-pass cost: %.3f ms per hot method.\n\
     The paper reports the pass adds < 3.0%% to total JIT compilation time\n\
     and < 0.4%% to total execution time. A ratio against OUR baseline\n\
     pipeline would be meaningless: this reproduction's non-prefetch JIT\n\
     work (CFG/loops/fold/inline) is a deliberately thin stand-in, tens of\n\
     microseconds per method, where the IBM JIT's full compilation\n\
     (native code generation, register allocation, inlining, ...) runs\n\
     milliseconds to tens of milliseconds per hot method. Against such a\n\
     baseline, the measured sub-millisecond pass cost is the same order\n\
     as the paper's < 3%% claim. EXPERIMENTS.md discusses this further.\n"
    !worst_per_method

(* ------------------------------------------------------------------ *)
(* Ablation: knob sweeps, expressed as custom-opts cells so they run on
   the same Domain pool as everything else. *)

let find_workload name = List.find (fun (w : W.t) -> w.name = name) workloads

let ablation_points =
  let iterations =
    List.map
      (fun n ->
        (n, { SP.Options.default with SP.Options.inspect_iterations = n }))
      [ 5; 10; 20; 40 ]
  and distances =
    List.map
      (fun c ->
        (c, { SP.Options.default with SP.Options.scheduling_distance = c }))
      [ 1; 2; 4 ]
  and majorities =
    List.map
      (fun m -> (m, { SP.Options.default with SP.Options.majority = m }))
      [ 0.5; 0.75; 0.95 ]
  in
  (iterations, distances, majorities)

let ablation () =
  heading "Ablation: inspected iterations and scheduling distance (Pentium 4)";
  let machine = Memsim.Config.pentium4 in
  let iterations, distances, majorities = ablation_points in
  let w = find_workload "db" in
  let baseline = result w machine SP.Options.Off in
  subheading "db: INTER+INTRA speedup vs inspected iterations";
  List.iter
    (fun (n, opts) ->
      let r = result_opts ~opts w machine SP.Options.Inter_intra in
      Printf.printf "  %2d iterations: %+6.1f%%\n" n
        (H.percent_speedup ~baseline r))
    iterations;
  subheading "db: INTER+INTRA speedup vs scheduling distance c";
  List.iter
    (fun (c, opts) ->
      let r = result_opts ~opts w machine SP.Options.Inter_intra in
      Printf.printf "  c = %d: %+6.1f%%\n" c (H.percent_speedup ~baseline r))
    distances;
  let euler = find_workload "Euler" in
  let euler_baseline = result euler machine SP.Options.Off in
  subheading "Euler: INTER speedup vs scheduling distance c";
  List.iter
    (fun (c, opts) ->
      let r = result_opts ~opts euler machine SP.Options.Inter in
      Printf.printf "  c = %d: %+6.1f%%\n" c
        (H.percent_speedup ~baseline:euler_baseline r))
    distances;
  subheading "jess: majority threshold";
  let jess = find_workload "jess" in
  let jess_baseline = result jess machine SP.Options.Off in
  List.iter
    (fun (m, opts) ->
      let r = result_opts ~opts jess machine SP.Options.Inter_intra in
      Printf.printf "  majority %.2f: %+6.1f%%\n" m
        (H.percent_speedup ~baseline:jess_baseline r))
    majorities

(* ------------------------------------------------------------------ *)
(* Timings: per-cell host wall-clock of the canonical matrix, written as
   BENCH_hotpath.json (schema bench_hotpath/v2) for the regression gate.
   The matrix and the JSON writer live in Bench_runner.Report, shared
   with the spf_bench recorder. *)

let timings ~jobs ~json_path () =
  heading "Timings: per-cell host wall-clock (hot-path benchmark)";
  let cells = Bench_runner.Report.default_cells () in
  let timed = List.map timed_of_cell cells in
  let total_cell_seconds =
    List.fold_left (fun acc (t : Runner.timed) -> acc +. t.seconds) 0.0 timed
  in
  Printf.printf "%-40s %10s %14s\n" "cell" "seconds" "cycles";
  List.iter
    (fun (t : Runner.timed) ->
      Printf.printf "%-40s %10.3f %14d\n"
        (Runner.cell_label t.cell)
        t.seconds t.result.H.cycles)
    timed;
  Printf.printf "\nTotal cell seconds: %.3f (matrix wall-clock %.3f on %d \
                 job(s), %d host cpu(s))\n"
    total_cell_seconds !matrix_wall_seconds jobs
    (Runner.default_jobs ());
  Bench_runner.Report.write_json ~path:json_path ~jobs
    ~matrix_wall_seconds:!matrix_wall_seconds timed;
  Printf.printf "Wrote %s\n" json_path

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the compiler-side machinery. *)

let micro ~smoke () =
  heading "Microbenchmarks (bechamel): compiler-side costs";
  let program, meth, infos = kernel_and_infos () in
  let cfg_built = Jit.Cfg.build meth.code in
  let forest = Jit.Loops.analyze cfg_built in
  let target = List.hd (List.rev (Jit.Loops.postorder forest)) in
  (* a populated interpreter for object inspection *)
  let interp = Vm.Interp.create Memsim.Config.pentium4 program in
  ignore (Vm.Interp.run interp);
  let opts = SP.Options.default in
  let args =
    let heap = Vm.Interp.heap interp in
    let node = ref Vm.Value.Null
    and tv = ref Vm.Value.Null
    and tok = ref Vm.Value.Null in
    let class_id name =
      (Option.get (Vm.Classfile.find_class program name)).Vm.Classfile.class_id
    in
    Vm.Heap.iter_ids_in_address_order heap (fun id ->
        match Vm.Heap.class_id_of heap id with
        | Some c when c = class_id "Node2" -> node := Vm.Value.Ref id
        | Some c when c = class_id "TokenVector" -> tv := Vm.Value.Ref id
        | Some c when c = class_id "Token" && !tok = Vm.Value.Null ->
            tok := Vm.Value.Ref id
        | _ -> ());
    [| !node; !tv; !tok |]
  in
  let fresh_meth () =
    Vm.Classfile.make_method ~method_id:meth.method_id
      ~method_name:meth.method_name ~arity:meth.arity
      ~returns_value:meth.returns_value ~max_locals:meth.max_locals
      ~code:(Array.copy meth.original_code)
  in
  let tests =
    [
      Bechamel.Test.make ~name:"cfg+dominators+loops"
        (Bechamel.Staged.stage (fun () ->
             let cfg = Jit.Cfg.build meth.code in
             let idom = Jit.Dominators.compute cfg in
             ignore (Jit.Loops.analyze cfg);
             ignore idom));
      Bechamel.Test.make ~name:"stack-model"
        (Bechamel.Staged.stage (fun () ->
             ignore
               (Jit.Stack_model.analyze meth.code ~arity:meth.arity
                  ~callee_arity:(fun m ->
                    (Vm.Classfile.method_of_id program m).arity)
                  ~callee_returns:(fun m ->
                    (Vm.Classfile.method_of_id program m).returns_value))));
      Bechamel.Test.make ~name:"ldg-build"
        (Bechamel.Staged.stage (fun () ->
             ignore
               (SP.Ldg.build infos ~sites:(List.init meth.n_sites Fun.id))));
      Bechamel.Test.make ~name:"object-inspection"
        (Bechamel.Staged.stage (fun () ->
             ignore
               (SP.Inspection.inspect ~program ~heap:(Vm.Interp.heap interp)
                  ~globals:(Vm.Interp.global interp) ~opts ~cfg:cfg_built
                  ~forest ~target ~meth ~args)));
      Bechamel.Test.make ~name:"whole-prefetch-pass"
        (Bechamel.Staged.stage (fun () ->
             let m = fresh_meth () in
             ignore (SP.Pass.run ~opts ~interp ~meth:m ~args ())));
      Bechamel.Test.make ~name:"stride-detection-1k"
        (Bechamel.Staged.stage
           (let records = List.init 1000 (fun i -> (i, 4096 + (i * 60))) in
            fun () -> ignore (SP.Stride.inter ~opts records)));
      Bechamel.Test.make ~name:"cache-sim-4k-accesses"
        (Bechamel.Staged.stage
           (let hier = Memsim.Hierarchy.create Memsim.Config.pentium4 in
            fun () ->
              for i = 0 to 4095 do
                ignore
                  (Memsim.Hierarchy.demand_access hier ~pc:0
                     ~addr:(i * 64 * 7) ~kind:`Load ~now:i)
              done));
    ]
  in
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let benchmark_cfg =
    (* The smoke config (dune runtest) only checks the harness runs end to
       end; the quota is slashed so the whole alias stays well under 30s. *)
    if smoke then
      Benchmark.cfg ~limit:50 ~quota:(Time.second 0.02) ~stabilize:false ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  Printf.printf "%-26s %16s\n" "benchmark" "time/run";
  List.iter
    (fun test ->
      let results = Benchmark.all benchmark_cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let ols_result = Analyze.one ols instance raw in
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
              let pretty =
                if smoke then "ok"
                else if ns > 1e6 then Printf.sprintf "%10.3f ms" (ns /. 1e6)
                else if ns > 1e3 then Printf.sprintf "%10.3f us" (ns /. 1e3)
                else Printf.sprintf "%10.0f ns" ns
              in
              Printf.printf "%-26s %16s\n" name pretty
          | _ -> Printf.printf "%-26s %16s\n" name "n/a")
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Experiment index and the cells each one needs from the matrix. *)

let matrix_cells ~machines ~modes =
  List.concat_map
    (fun (w : W.t) ->
      List.concat_map
        (fun machine -> List.map (fun mode -> Runner.cell w machine mode) modes)
        machines)
    workloads

let ablation_cells () =
  let p4 = Memsim.Config.pentium4 in
  let iterations, distances, majorities = ablation_points in
  let db = find_workload "db"
  and euler = find_workload "Euler"
  and jess = find_workload "jess" in
  Runner.cell db p4 SP.Options.Off
  :: Runner.cell euler p4 SP.Options.Off
  :: Runner.cell jess p4 SP.Options.Off
  :: (List.map
        (fun (_, opts) -> Runner.cell ~opts db p4 SP.Options.Inter_intra)
        iterations
     @ List.map
         (fun (_, opts) -> Runner.cell ~opts db p4 SP.Options.Inter_intra)
         distances
     @ List.map
         (fun (_, opts) -> Runner.cell ~opts euler p4 SP.Options.Inter)
         distances
     @ List.map
         (fun (_, opts) -> Runner.cell ~opts jess p4 SP.Options.Inter_intra)
         majorities)

let needs = function
  | "table3" ->
      matrix_cells ~machines:[ Memsim.Config.pentium4 ]
        ~modes:[ SP.Options.Off ]
  | "fig6" ->
      matrix_cells ~machines:[ Memsim.Config.pentium4 ] ~modes:all_modes
  | "fig7" ->
      matrix_cells ~machines:[ Memsim.Config.athlon_mp ] ~modes:all_modes
  | "fig8" | "fig9" | "fig10" ->
      matrix_cells ~machines:[ Memsim.Config.pentium4 ]
        ~modes:[ SP.Options.Off; SP.Options.Inter_intra ]
  | "fig11" ->
      matrix_cells ~machines:[ Memsim.Config.pentium4 ]
        ~modes:[ SP.Options.Inter_intra ]
  | "ablation" -> ablation_cells ()
  | "timings" -> Bench_runner.Report.default_cells ()
  | _ -> []

let experiment_names =
  [
    "table1"; "table2"; "table3"; "fig34"; "fig5"; "fig6"; "fig7"; "fig8";
    "fig9"; "fig10"; "fig11"; "ablation"; "timings"; "micro";
  ]

let usage () =
  Printf.eprintf
    "usage: main.exe [--jobs N] [--json PATH] [--smoke] [experiment ...]\n\
     experiments: %s\n"
    (String.concat ", " experiment_names)

let () =
  let jobs = ref (Runner.default_jobs ()) in
  let json_path = ref "BENCH_hotpath.json" in
  let smoke = ref false in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got '%s'\n" n;
            exit 2);
        parse rest
    | "--json" :: path :: rest ->
        json_path := path;
        parse rest
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | name :: rest ->
        if List.mem name experiment_names then names := !names @ [ name ]
        else begin
          Printf.eprintf "unknown experiment '%s'\n" name;
          usage ();
          exit 1
        end;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let requested = if !names = [] then experiment_names else !names in
  (* One parallel pass over every simulation cell any requested experiment
     will read; the experiments themselves are then pure printing. *)
  prefill ~jobs:!jobs (List.concat_map needs requested);
  let run = function
    | "table1" -> table1 ()
    | "table2" -> table2 ()
    | "table3" -> table3 ()
    | "fig34" -> fig34 ()
    | "fig5" -> fig5 ()
    | "fig6" -> fig6 ()
    | "fig7" -> fig7 ()
    | "fig8" -> fig8 ()
    | "fig9" -> fig9 ()
    | "fig10" -> fig10 ()
    | "fig11" -> fig11 ()
    | "ablation" -> ablation ()
    | "timings" -> timings ~jobs:!jobs ~json_path:!json_path ()
    | "micro" -> micro ~smoke:!smoke ()
    | name ->
        Printf.eprintf "unknown experiment '%s'\n" name;
        exit 1
  in
  List.iter run requested
