(** Parallel bench-matrix runner.

    The (workload x machine x mode) cells of the paper's evaluation are
    mutually independent — each run builds a fresh program, interpreter and
    memory hierarchy, and no library keeps top-level mutable state — so the
    matrix is farmed out to a pool of OCaml 5 Domains. Simulated cycle
    counts are a pure function of the cell: the parallel runner is
    byte-identical to the serial one (asserted by test/test_bench_runner.ml);
    only host wall-clock changes. *)

type cell = {
  workload : Workloads.Workload.t;
  machine : Memsim.Config.machine;
  mode : Strideprefetch.Options.mode;
  opts : Strideprefetch.Options.t option;
      (** algorithm-knob override; [None] = defaults *)
  telemetry : bool;
      (** run with the observability stack threaded through, filling
          [run_result.effectiveness]; the simulation itself is
          bit-identical either way (golden-tested) *)
  profile : bool;
      (** additionally install the object-centric profiler, filling
          [run_result.profile] (implies telemetry); like telemetry the
          simulation is bit-identical either way *)
  monitor : bool;
      (** arm the live windowed monitor at its default window, filling
          [run_result.monitor] (implies telemetry); monitoring observes
          only, so a monitored twin's cycle count must equal its plain
          cell's exactly — the gate's exact-equality law pins that
          zero-cost claim over time *)
  engine : Vm.Interp.engine;
      (** which execution engine runs the cell; default [Closure]. Cycle
          counts are engine-independent (the engines' bit-identity
          contract), so a switch twin differs from its closure cell only
          in host wall-clock — the dispatch-speedup lane *)
}

type timed = {
  cell : cell;
  result : Workloads.Harness.run_result;
  seconds : float;  (** host wall-clock for this cell *)
}

val cell :
  ?opts:Strideprefetch.Options.t ->
  ?telemetry:bool ->
  ?profile:bool ->
  ?monitor:bool ->
  ?engine:Vm.Interp.engine ->
  Workloads.Workload.t ->
  Memsim.Config.machine ->
  Strideprefetch.Options.mode ->
  cell
(** [telemetry], [profile] and [monitor] default to [false]; [engine]
    to [Vm.Interp.Closure]. *)

val cell_label : cell -> string
(** ["workload/machine/mode"], with a ["/custom-opts"] suffix when the cell
    overrides the algorithm knobs, a ["/telemetry"] suffix when the
    cell records effectiveness attribution, a ["/profile"] suffix
    when the cell carries the object-centric profiler, a ["/monitor"]
    suffix when it arms the live windowed monitor, a
    ["/switch-engine"] suffix when it runs on a non-default engine, and
    a ["/hw=..."] suffix when the machine's hardware prefetcher is not
    the default stream unit. *)

val run_cell : cell -> timed
(** Run one cell serially in the calling domain. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run_matrix :
  ?progress:(cell -> unit) -> jobs:int -> cell list -> timed list
(** Run every cell on a pool of [jobs] domains (clamped to [1 .. n_cells]);
    results are returned in input order. [jobs = 1] runs serially in the
    calling domain with no Domain machinery at all. [progress] is invoked
    under a mutex as each cell is picked up by a worker. *)
