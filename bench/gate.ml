(* Statistical bench-regression gate over bench_hotpath/v2 reports.

   Two signals, two standards of evidence:

   - Simulated cycles are a pure function of the cell (the whole repo is
     built around that), so any cycle difference between two reports of
     the same code is a real behavioural change. The gate demands exact
     equality per matched cell.

   - Host wall-clock seconds are noisy, so the gate treats them
     statistically: the per-cell ratio new/old is aggregated as a
     geometric mean, and a deterministic bootstrap (resampling the
     per-cell log-ratios, fixed seed) yields a 95% confidence interval.
     Only a slowdown whose whole interval clears the practical threshold
     (default +5%) fails the gate — same-host re-runs of the same commit
     must pass (asserted by test/test_bench_gate.ml). *)

module J = Telemetry.Json

type cell_rec = {
  workload : string;
  machine : string;
  mode : string;
  engine : string;
      (** "closure" when the field is absent: reports written before the
          dispatch lane existed timed the only engine there was, and its
          cells keep matching the closure cells of newer reports —
          wall-clock across that boundary is compared under the reset
          protocol in BENCH_history/README.md *)
  telemetry : bool;
  profile : bool;
  monitor : bool;
      (** the live windowed monitor was armed; [false] when the field is
          absent — reports written before the monitor existed have no
          monitored twins, and their plain cells keep matching *)
  hw : string;
      (** hardware prefetch model spec; "stream:8" (the default) when
          the field is absent — reports written before the RPT
          co-simulation existed ran the only model there was, and their
          cells keep matching the default cells of newer reports *)
  sw_threshold : int option;
      (** SW inter-stride threshold override of an arbitration-sweep
          cell; [None] (paper default) for canonical-matrix cells *)
  prediction : string option;
      (** prediction tier of a prediction-sweep cell; [None] (the
          dynamic-inspection default) for canonical-matrix cells *)
  blame : J.t option;
      (** compact per-loop blame payload of a profiled cell (raw JSON,
          ingested by [Diff.Rundata.of_bench_blame] when the gate needs
          to explain a cycle regression); [None] for unprofiled cells
          and for reports written before the blame lane existed *)
  seconds : float;
  cycles : int;
}

type run = {
  schema : string;
  jobs : int;
  host_cpus : int;
  cells : cell_rec list;
}

let default_hw =
  Memsim.Config.hw_prefetch_to_string Memsim.Config.default_stream

let cell_key c =
  Printf.sprintf "%s/%s/%s%s%s%s%s%s%s%s" c.workload c.machine c.mode
    (if c.telemetry then "/telemetry" else "")
    (if c.profile then "/profile" else "")
    (if c.monitor then "/monitor" else "")
    (if c.engine = "closure" then "" else "/" ^ c.engine ^ "-engine")
    (if c.hw = default_hw then "" else "/hw=" ^ c.hw)
    (match c.sw_threshold with
    | None -> ""
    | Some t -> Printf.sprintf "/thr=%d" t)
    (match c.prediction with
    | None -> ""
    | Some p -> "/pred=" ^ p)

(* ------------------------------------------------------------------ *)
(* Lenient report reader: any schema loads (so a mismatch can be reported
   with both names); missing booleans default to false (v1 reports have
   no "profile" field), but a cell without workload/cycles is an error. *)

let mem_str k j = Option.bind (J.member k j) J.to_string_opt

let mem_bool k j =
  match J.member k j with Some (J.Bool b) -> Some b | _ -> None

let mem_int k j =
  match J.member k j with
  | Some (J.Int i) -> Some i
  | Some (J.Float f) -> Some (int_of_float f)
  | _ -> None

let mem_float k j =
  match J.member k j with
  | Some (J.Float f) -> Some f
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

let cell_of_json ~label i j =
  let req name = function
    | Some v -> Ok v
    | None ->
        Error (Printf.sprintf "%s: cells[%d]: missing or ill-typed %S" label i name)
  in
  match
    ( req "workload" (mem_str "workload" j),
      req "machine" (mem_str "machine" j),
      req "mode" (mem_str "mode" j),
      req "seconds" (mem_float "seconds" j),
      req "cycles" (mem_int "cycles" j) )
  with
  | Ok workload, Ok machine, Ok mode, Ok seconds, Ok cycles ->
      Ok
        {
          workload;
          machine;
          mode;
          engine = Option.value ~default:"closure" (mem_str "engine" j);
          telemetry = Option.value ~default:false (mem_bool "telemetry" j);
          profile = Option.value ~default:false (mem_bool "profile" j);
          monitor = Option.value ~default:false (mem_bool "monitor" j);
          hw = Option.value ~default:default_hw (mem_str "hw_prefetch" j);
          sw_threshold = mem_int "sw_threshold" j;
          prediction = mem_str "prediction" j;
          blame = J.member "blame" j;
          seconds;
          cycles;
        }
  | (Error _ as e), _, _, _, _
  | _, (Error _ as e), _, _, _
  | _, _, (Error _ as e), _, _
  | _, _, _, (Error _ as e), _
  | _, _, _, _, (Error _ as e) ->
      e

let of_string ~label s =
  match J.parse s with
  | Error e -> Error (Printf.sprintf "%s: %s" label e)
  | Ok j -> (
      match mem_str "schema" j with
      | None -> Error (Printf.sprintf "%s: missing \"schema\" field" label)
      | Some schema -> (
          match Option.bind (J.member "cells" j) J.to_list_opt with
          | None -> Error (Printf.sprintf "%s: missing \"cells\" array" label)
          | Some cells -> (
              let rec collect i acc = function
                | [] -> Ok (List.rev acc)
                | c :: rest -> (
                    match cell_of_json ~label i c with
                    | Ok cell -> collect (i + 1) (cell :: acc) rest
                    | Error _ as e -> e)
              in
              match collect 0 [] cells with
              | Error _ as e -> e
              | Ok cells ->
                  Ok
                    {
                      schema;
                      jobs = Option.value ~default:0 (mem_int "jobs" j);
                      host_cpus =
                        Option.value ~default:0 (mem_int "host_cpus" j);
                      cells;
                    })))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string ~label:path s
  | exception Sys_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Deterministic bootstrap over the per-cell log-ratios. *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let idx = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor idx)
    and hi = int_of_float (Float.ceil idx) in
    let frac = idx -. Float.floor idx in
    ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let bootstrap_ci ?(iters = 2000) log_ratios =
  let n = Array.length log_ratios in
  if n = 0 then (nan, nan)
  else begin
    let rng = Random.State.make [| 42 |] in
    let means = Array.init iters (fun _ ->
        let sum = ref 0.0 in
        for _ = 1 to n do
          sum := !sum +. log_ratios.(Random.State.int rng n)
        done;
        !sum /. float_of_int n)
    in
    Array.sort compare means;
    (exp (percentile means 0.025), exp (percentile means 0.975))
  end

(* ------------------------------------------------------------------ *)

type pair = { key : string; a : cell_rec; b : cell_rec }

type comparison = {
  pairs : pair list;
  only_a : string list;
  only_b : string list;
  cycle_regressions : pair list;  (** b.cycles > a.cycles *)
  cycle_improvements : pair list;  (** b.cycles < a.cycles *)
  seconds_geomean : float;  (** geometric mean of per-cell b/a ratios *)
  ci_low : float;
  ci_high : float;
  threshold : float;
  significant_slowdown : bool;  (** ci_low > 1 + threshold *)
  significant_speedup : bool;  (** ci_high < 1 - threshold *)
}

let compare_runs ?(threshold = 0.05) ~(a : run) ~(b : run) () =
  let expected = Report.schema in
  if a.schema <> expected || b.schema <> expected then
    Error
      (Printf.sprintf
         "schema mismatch: the gate compares %S reports only, got %S vs %S \
          (regenerate the older report with `dune exec bench/main.exe -- \
          timings` or `spf_bench --record`)"
         expected a.schema b.schema)
  else begin
    let index cells =
      let h = Hashtbl.create 64 in
      List.iter (fun c -> Hashtbl.replace h (cell_key c) c) cells;
      h
    in
    let ia = index a.cells and ib = index b.cells in
    let pairs =
      List.filter_map
        (fun ca ->
          let key = cell_key ca in
          match Hashtbl.find_opt ib key with
          | Some cb -> Some { key; a = ca; b = cb }
          | None -> None)
        a.cells
    in
    let only_a =
      List.filter_map
        (fun c ->
          let k = cell_key c in
          if Hashtbl.mem ib k then None else Some k)
        a.cells
    and only_b =
      List.filter_map
        (fun c ->
          let k = cell_key c in
          if Hashtbl.mem ia k then None else Some k)
        b.cells
    in
    if pairs = [] then Error "no common cells between the two reports"
    else begin
      let cycle_regressions =
        List.filter (fun p -> p.b.cycles > p.a.cycles) pairs
      and cycle_improvements =
        List.filter (fun p -> p.b.cycles < p.a.cycles) pairs
      in
      let log_ratios =
        pairs
        |> List.filter_map (fun p ->
               if p.a.seconds > 0.0 && p.b.seconds > 0.0 then
                 Some (log (p.b.seconds /. p.a.seconds))
               else None)
        |> Array.of_list
      in
      let seconds_geomean =
        if Array.length log_ratios = 0 then nan
        else
          exp
            (Array.fold_left ( +. ) 0.0 log_ratios
            /. float_of_int (Array.length log_ratios))
      in
      let ci_low, ci_high = bootstrap_ci log_ratios in
      Ok
        {
          pairs;
          only_a;
          only_b;
          cycle_regressions;
          cycle_improvements;
          seconds_geomean;
          ci_low;
          ci_high;
          threshold;
          significant_slowdown =
            (not (Float.is_nan ci_low)) && ci_low > 1.0 +. threshold;
          significant_speedup =
            (not (Float.is_nan ci_high)) && ci_high < 1.0 -. threshold;
        }
    end
  end

let passes c = c.cycle_regressions = [] && not c.significant_slowdown
let gate_exit c = if passes c then 0 else 1

(* Per-report dispatch lane: geomean of switch/closure wall-clock over
   the switch-engine twins and their plain closure cells. [None] when the
   report has no dispatch lane (pre-lane baselines). *)
let dispatch_geomean (r : run) =
  let ratios =
    List.filter_map
      (fun s ->
        if s.engine <> "switch" then None
        else
          List.find_opt
            (fun c ->
              c.engine = "closure" && (not c.telemetry) && (not c.profile)
              && (not c.monitor)
              && c.workload = s.workload && c.machine = s.machine
              && c.mode = s.mode)
            r.cells
          |> Option.map (fun c -> (s.seconds, c.seconds)))
      r.cells
    |> List.filter (fun (s, c) -> s > 0.0 && c > 0.0)
  in
  match ratios with
  | [] -> None
  | _ ->
      Some
        (exp
           (List.fold_left (fun acc (s, c) -> acc +. log (s /. c)) 0.0 ratios
           /. float_of_int (List.length ratios)))

(* ------------------------------------------------------------------ *)

let render c =
  let buf = Buffer.create 4096 in
  let table =
    Telemetry.Table.make
      ~columns:
        [
          ("cell", Telemetry.Table.Left);
          ("cycles A", Telemetry.Table.Right);
          ("cycles B", Telemetry.Table.Right);
          ("dcycles", Telemetry.Table.Right);
          ("sec A", Telemetry.Table.Right);
          ("sec B", Telemetry.Table.Right);
          ("ratio", Telemetry.Table.Right);
        ]
  in
  List.iter
    (fun p ->
      Telemetry.Table.add_row table
        [
          p.key;
          Telemetry.Table.cell_int p.a.cycles;
          Telemetry.Table.cell_int p.b.cycles;
          (let d = p.b.cycles - p.a.cycles in
           if d = 0 then "=" else Printf.sprintf "%+d" d);
          Printf.sprintf "%.3f" p.a.seconds;
          Printf.sprintf "%.3f" p.b.seconds;
          (if p.a.seconds > 0.0 then
             Printf.sprintf "%.3f" (p.b.seconds /. p.a.seconds)
           else "n/a");
        ])
    c.pairs;
  Buffer.add_string buf (Telemetry.Table.to_string table);
  Buffer.add_char buf '\n';
  List.iter
    (fun k -> Buffer.add_string buf (Printf.sprintf "only in A: %s\n" k))
    c.only_a;
  List.iter
    (fun k -> Buffer.add_string buf (Printf.sprintf "only in B: %s\n" k))
    c.only_b;
  Buffer.add_string buf
    (Printf.sprintf
       "\ncells compared: %d   cycle regressions: %d   cycle improvements: %d\n"
       (List.length c.pairs)
       (List.length c.cycle_regressions)
       (List.length c.cycle_improvements));
  if Float.is_nan c.seconds_geomean then
    Buffer.add_string buf "wall-clock: no comparable timings\n"
  else
    Buffer.add_string buf
      (Printf.sprintf
         "wall-clock geomean ratio B/A: %.3f  (95%% bootstrap CI [%.3f, \
          %.3f], practical threshold %+.0f%%)\n"
         c.seconds_geomean c.ci_low c.ci_high (100.0 *. c.threshold));
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "CYCLE REGRESSION: %s: %d -> %d (%+d)\n" p.key
           p.a.cycles p.b.cycles
           (p.b.cycles - p.a.cycles)))
    c.cycle_regressions;
  if c.significant_slowdown then
    Buffer.add_string buf
      (Printf.sprintf
         "SIGNIFICANT SLOWDOWN: the whole CI is above %+.0f%% wall-clock\n"
         (100.0 *. c.threshold));
  if c.significant_speedup then
    Buffer.add_string buf
      (Printf.sprintf
         "significant speedup: the whole CI is below %+.0f%% wall-clock\n"
         (-100.0 *. c.threshold));
  Buffer.add_string buf
    (if passes c then "GATE: PASS\n" else "GATE: FAIL\n");
  Buffer.contents buf
