(** The hot-path benchmark report: canonical cell matrix and the
    bench_hotpath/v2 JSON serialization, shared by the reproduction
    harness ([bench/main.exe timings]) and the regression-gate recorder
    ([bench/spf_bench.exe --record]). *)

val schema : string
(** ["bench_hotpath/v2"]. v2 adds the per-cell ["profile"] flag (and so
    changes what a cell key means); {!Gate.compare_runs} refuses to
    compare reports whose schemas differ from this one. *)

val default_cells : unit -> Runner.cell list
(** The canonical matrix: every (workload x machine x mode) cell, plus one
    attributed (telemetry) twin per workload and one profiled twin of the
    headline db cell at pentium4/inter+intra — so the report tracks the
    observer overheads of telemetry and profiling alongside the plain
    simulation wall-clock — plus one switch-engine twin per
    (workload x machine) at inter+intra: the dispatch lane, whose cycle
    counts must equal the closure cells' exactly and whose wall-clock
    ratio is the report's ["dispatch"] geomean. *)

val dispatch_pairs :
  Runner.timed list -> (Runner.timed * Runner.timed) list
(** Every (switch twin, plain closure cell) pair with matching
    workload/machine/mode and positive timings. *)

val dispatch_geomean : (Runner.timed * Runner.timed) list -> float
(** Geometric mean of per-pair wall-clock speedups switch/closure
    ([nan] on the empty list). *)

(** {2 The arbitration lane}

    Results of an [spf_bench --sweep-arbitration] run: the
    (SW inter-stride threshold x hardware prefetch model) grid per
    machine, cycles summed over the sweep workloads, and the
    minimum-cycle pick per machine — the empirically chosen SW/HW
    arbitration point. *)

type arb_point = {
  arb_machine : string;
  arb_threshold : int;  (** SW inter-stride threshold in bytes *)
  arb_hw : string;  (** hardware model spec string, e.g. ["rpt:64x2@4"] *)
  arb_cycles : int;
      (** summed simulated cycles over the sweep workloads *)
}

type arbitration = {
  arb_workloads : string list;
  arb_grid : arb_point list;
  arb_picks : arb_point list;  (** one minimum-cycle point per machine *)
}

(** {2 The prediction lane}

    Results of an [spf_bench --sweep-prediction] run: per
    (workload x machine x prediction tier) point at the headline mode,
    the JIT-compile-time costs the tiers trade — inspection iterations
    begun, instructions partially interpreted, prefetch-pass wall-clock
    — next to the simulated cycle count, plus a per-machine summary of
    iterations saved by the hybrid skip rule. *)

type pred_point = {
  pred_workload : string;
  pred_machine : string;
  pred_tier : string;  (** ["inspect"] / ["hybrid"] / ["static"] *)
  pred_cycles : int;
  pred_iterations : int;
      (** inspection iterations begun, summed over loop reports *)
  pred_steps : int;
      (** instructions partially interpreted during inspection *)
  pred_pass_seconds : float;  (** prefetch-pass host wall-clock *)
}

type pred_summary = {
  pred_sum_machine : string;
  pred_iterations_inspect : int;
  pred_iterations_hybrid : int;
  pred_cycles_delta : int;
      (** hybrid cycles - inspect cycles, summed over the sweep
          workloads; the acceptance bar is [<= 0] (equal-or-better) *)
}

type prediction_lane = {
  pred_points : pred_point list;
  pred_summaries : pred_summary list;
}

val to_json_string :
  ?arbitration:arbitration ->
  ?prediction:prediction_lane ->
  jobs:int -> matrix_wall_seconds:float -> Runner.timed list -> string
(** Render a full bench_hotpath/v2 report. Cells appear in list order;
    cycle counts are exact integers, seconds are host wall-clock. Cells
    deviating from the default hardware model, SW threshold or
    prediction tier carry ["hw_prefetch"] / ["sw_threshold"] /
    ["prediction"] fields (absent otherwise, keeping canonical-matrix
    reports byte-compatible with older baselines); [arbitration] and
    [prediction] add their sweep lanes. *)

val write_json :
  ?arbitration:arbitration ->
  ?prediction:prediction_lane ->
  path:string -> jobs:int -> matrix_wall_seconds:float ->
  Runner.timed list -> unit
(** {!to_json_string} to a file. *)
