(** The hot-path benchmark report: canonical cell matrix and the
    bench_hotpath/v2 JSON serialization, shared by the reproduction
    harness ([bench/main.exe timings]) and the regression-gate recorder
    ([bench/spf_bench.exe --record]). *)

val schema : string
(** ["bench_hotpath/v2"]. v2 adds the per-cell ["profile"] flag (and so
    changes what a cell key means); {!Gate.compare_runs} refuses to
    compare reports whose schemas differ from this one. *)

val default_cells : unit -> Runner.cell list
(** The canonical matrix: every (workload x machine x mode) cell, plus one
    attributed (telemetry) twin per workload and one profiled twin of the
    headline db cell at pentium4/inter+intra — so the report tracks the
    observer overheads of telemetry and profiling alongside the plain
    simulation wall-clock — plus one switch-engine twin per
    (workload x machine) at inter+intra: the dispatch lane, whose cycle
    counts must equal the closure cells' exactly and whose wall-clock
    ratio is the report's ["dispatch"] geomean. *)

val dispatch_pairs :
  Runner.timed list -> (Runner.timed * Runner.timed) list
(** Every (switch twin, plain closure cell) pair with matching
    workload/machine/mode and positive timings. *)

val dispatch_geomean : (Runner.timed * Runner.timed) list -> float
(** Geometric mean of per-pair wall-clock speedups switch/closure
    ([nan] on the empty list). *)

val to_json_string :
  jobs:int -> matrix_wall_seconds:float -> Runner.timed list -> string
(** Render a full bench_hotpath/v2 report. Cells appear in list order;
    cycle counts are exact integers, seconds are host wall-clock. *)

val write_json :
  path:string -> jobs:int -> matrix_wall_seconds:float ->
  Runner.timed list -> unit
(** {!to_json_string} to a file. *)
