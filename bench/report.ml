(* The hot-path benchmark report: the canonical cell matrix and the
   bench_hotpath/v2 JSON serialization, shared by the reproduction
   harness (bench/main.exe timings) and the regression-gate recorder
   (bench/spf_bench.exe --record). Keeping one writer guarantees both
   producers emit byte-compatible reports for Gate.compare_runs. *)

module SP = Strideprefetch
module W = Workloads.Workload
module H = Workloads.Harness

let schema = "bench_hotpath/v2"

let workloads = Workloads.Specjvm.all @ Workloads.Javagrande.all
let machines = [ Memsim.Config.pentium4; Memsim.Config.athlon_mp ]
let all_modes = [ SP.Options.Off; SP.Options.Inter; SP.Options.Inter_intra ]

let default_cells () =
  (* The full (workload x machine x mode) simulation matrix... *)
  List.concat_map
    (fun (w : W.t) ->
      List.concat_map
        (fun machine ->
          List.map (fun mode -> Runner.cell w machine mode) all_modes)
        machines)
    workloads
  (* ...one attributed (telemetry) twin per workload at the headline
     configuration, filling [run_result.effectiveness] so the report
     carries coverage/accuracy rollups next to the cycle counts... *)
  @ List.map
      (fun (w : W.t) ->
        Runner.cell ~telemetry:true w Memsim.Config.pentium4
          SP.Options.Inter_intra)
      workloads
  (* ...one profiled twin of the headline db cell, so the report also
     tracks the object-centric profiler's observer overhead over time,
     and one monitored twin of the same cell — the live monitor's
     observer overhead next to its zero-cost cycle claim (the monitored
     twin's cycles must equal the plain cell's exactly, which the gate's
     exact-equality law then pins across history)... *)
  @ [
      Runner.cell ~profile:true
        (List.find (fun (w : W.t) -> w.name = "db") workloads)
        Memsim.Config.pentium4 SP.Options.Inter_intra;
      Runner.cell ~monitor:true
        (List.find (fun (w : W.t) -> w.name = "db") workloads)
        Memsim.Config.pentium4 SP.Options.Inter_intra;
    ]
  (* ...and one switch-engine twin per (workload x machine) at the
     headline mode: the dispatch lane. The twins' cycle counts must be
     byte-identical to their closure cells (the engines' contract, and
     the gate's exact-equality law applies to them too); their seconds
     measure what closure compilation buys on the host, summarized as
     the report's ["dispatch"] geomean. *)
  @ List.concat_map
      (fun (w : W.t) ->
        List.map
          (fun machine ->
            Runner.cell ~engine:Vm.Interp.Switch w machine
              SP.Options.Inter_intra)
          machines)
      workloads

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let effectiveness_json (eff : Workloads.Effectiveness.t) =
  let pct f = Printf.sprintf "%.4f" f in
  let kind (k : Workloads.Effectiveness.kind_rollup) =
    Printf.sprintf
      "{\"kind\": \"%s\", \"sites\": %d, \"issued\": %d, \"useful\": %d, \
       \"late\": %d, \"useless\": %d, \"cancelled\": %d, \"redundant\": %d, \
       \"coverage\": %s, \"accuracy\": %s}"
      (json_escape k.kind_name) k.sites k.issued k.useful k.late k.useless
      k.cancelled k.redundant (pct k.kind_coverage) (pct k.kind_accuracy)
  in
  let t = eff.totals in
  Printf.sprintf
    "{\"issued\": %d, \"useful\": %d, \"late\": %d, \"useless\": %d, \
     \"cancelled\": %d, \"redundant\": %d, \"coverage\": %s, \"accuracy\": \
     %s, \"unattributed_misses\": %d, \"sites\": %d, \"kinds\": [%s]}"
    t.Memsim.Attribution.issued t.useful t.late t.useless t.cancelled
    t.redundant (pct eff.total_coverage) (pct eff.total_accuracy)
    eff.unattributed_misses (List.length eff.rows)
    (String.concat ", " (List.map kind eff.kinds))

(* The dispatch lane: pair every switch-engine cell with its closure
   twin (same workload/machine/mode, no observers, no knob overrides)
   and aggregate the per-pair wall-clock speedups switch/closure as a
   geometric mean — the headline number for what closure compilation
   buys on the host. *)
let dispatch_pairs (timed : Runner.timed list) =
  let plain_closure (t : Runner.timed) (s : Runner.timed) =
    t.cell.Runner.engine = Vm.Interp.Closure
    && t.cell.Runner.opts = None
    && (not t.cell.Runner.telemetry)
    && (not t.cell.Runner.profile)
    && (not t.cell.Runner.monitor)
    && t.cell.Runner.workload.W.name = s.cell.Runner.workload.W.name
    && t.cell.Runner.machine.Memsim.Config.name
       = s.cell.Runner.machine.Memsim.Config.name
    && t.cell.Runner.mode = s.cell.Runner.mode
  in
  List.filter_map
    (fun (s : Runner.timed) ->
      if s.cell.Runner.engine <> Vm.Interp.Switch then None
      else
        match List.find_opt (fun t -> plain_closure t s) timed with
        | Some c when s.seconds > 0.0 && c.Runner.seconds > 0.0 ->
            Some (s, c)
        | Some _ | None -> None)
    timed

let dispatch_geomean pairs =
  match pairs with
  | [] -> nan
  | _ ->
      exp
        (List.fold_left
           (fun acc ((s : Runner.timed), (c : Runner.timed)) ->
             acc +. log (s.Runner.seconds /. c.Runner.seconds))
           0.0 pairs
        /. float_of_int (List.length pairs))

let dispatch_json (timed : Runner.timed list) =
  match dispatch_pairs timed with
  | [] -> ""
  | pairs ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "  \"dispatch\": {\n";
      Buffer.add_string buf
        (Printf.sprintf "    \"geomean_speedup\": %.4f,\n"
           (dispatch_geomean pairs));
      Buffer.add_string buf "    \"pairs\": [\n";
      List.iteri
        (fun i ((s : Runner.timed), (c : Runner.timed)) ->
          Buffer.add_string buf
            (Printf.sprintf
               "      {\"workload\": \"%s\", \"machine\": \"%s\", \"mode\": \
                \"%s\", \"switch_seconds\": %.6f, \"closure_seconds\": \
                %.6f, \"speedup\": %.4f}%s\n"
               (json_escape s.cell.Runner.workload.W.name)
               (json_escape s.cell.Runner.machine.Memsim.Config.name)
               (json_escape (SP.Options.mode_name s.cell.Runner.mode))
               s.seconds c.Runner.seconds
               (s.seconds /. c.Runner.seconds)
               (if i = List.length pairs - 1 then "" else ",")))
        pairs;
      Buffer.add_string buf "    ]\n  },\n";
      Buffer.contents buf

(* The arbitration lane: the --sweep-arbitration grid (SW inter-stride
   threshold x hardware prefetch model, cycles summed over the sweep
   workloads) and the per-machine minimum-cycle pick. Cells of the sweep
   also appear in "cells" with "hw_prefetch"/"sw_threshold" fields, so
   the gate matches them under distinct keys. *)
type arb_point = {
  arb_machine : string;
  arb_threshold : int;  (** SW inter-stride threshold in bytes *)
  arb_hw : string;  (** hardware model spec string, e.g. "rpt:64x2@4" *)
  arb_cycles : int;  (** summed simulated cycles over the sweep workloads *)
}

type arbitration = {
  arb_workloads : string list;
  arb_grid : arb_point list;
  arb_picks : arb_point list;  (** one minimum-cycle point per machine *)
}

let arb_point_json p =
  Printf.sprintf
    "{\"machine\": \"%s\", \"sw_threshold\": %d, \"hw_prefetch\": \"%s\", \
     \"cycles\": %d}"
    (json_escape p.arb_machine)
    p.arb_threshold (json_escape p.arb_hw) p.arb_cycles

let arbitration_json a =
  let points ps = String.concat ", " (List.map arb_point_json ps) in
  Printf.sprintf
    "  \"arbitration\": {\n    \"workloads\": [%s],\n    \"picks\": \
     [%s],\n    \"grid\": [%s]\n  },\n"
    (String.concat ", "
       (List.map (fun w -> "\"" ^ json_escape w ^ "\"") a.arb_workloads))
    (points a.arb_picks) (points a.arb_grid)

(* The prediction lane: the --sweep-prediction grid (workload x machine
   x prediction tier at the headline mode). Each point carries the
   JIT-compile-time costs the tiers trade — inspection iterations begun,
   instructions partially interpreted, prefetch-pass wall-clock — next
   to the simulated cycle count, which the tiers must not regress. The
   per-machine summary is the headline: iterations saved by the hybrid
   skip rule at equal-or-better cycles. *)
type pred_point = {
  pred_workload : string;
  pred_machine : string;
  pred_tier : string;  (** "inspect" / "hybrid" / "static" *)
  pred_cycles : int;
  pred_iterations : int;  (** inspection iterations begun, summed over loops *)
  pred_steps : int;  (** instructions partially interpreted during inspection *)
  pred_pass_seconds : float;  (** prefetch-pass host wall-clock *)
}

type pred_summary = {
  pred_sum_machine : string;
  pred_iterations_inspect : int;
  pred_iterations_hybrid : int;
  pred_cycles_delta : int;  (** hybrid cycles - inspect cycles, summed *)
}

type prediction_lane = {
  pred_points : pred_point list;
  pred_summaries : pred_summary list;
}

let pred_point_json p =
  Printf.sprintf
    "{\"workload\": \"%s\", \"machine\": \"%s\", \"tier\": \"%s\", \
     \"cycles\": %d, \"inspection_iterations\": %d, \
     \"inspection_steps\": %d, \"prefetch_pass_seconds\": %.6f}"
    (json_escape p.pred_workload)
    (json_escape p.pred_machine)
    (json_escape p.pred_tier) p.pred_cycles p.pred_iterations p.pred_steps
    p.pred_pass_seconds

let pred_summary_json s =
  Printf.sprintf
    "{\"machine\": \"%s\", \"iterations_inspect\": %d, \
     \"iterations_hybrid\": %d, \"iterations_saved\": %d, \
     \"cycles_delta\": %d}"
    (json_escape s.pred_sum_machine)
    s.pred_iterations_inspect s.pred_iterations_hybrid
    (s.pred_iterations_inspect - s.pred_iterations_hybrid)
    s.pred_cycles_delta

let prediction_json l =
  Printf.sprintf
    "  \"prediction\": {\n    \"summaries\": [%s],\n    \"points\": \
     [%s]\n  },\n"
    (String.concat ", " (List.map pred_summary_json l.pred_summaries))
    (String.concat ", " (List.map pred_point_json l.pred_points))

(* Sweep-cell provenance in the per-cell record: emitted only when the
   cell deviates from the defaults, so reports of the canonical matrix
   stay byte-compatible with pre-sweep baselines (and their gate keys
   unchanged). *)
let cell_extras (c : Runner.cell) =
  let hw =
    if c.machine.Memsim.Config.hw_prefetch = Memsim.Config.default_stream
    then ""
    else
      Printf.sprintf ", \"hw_prefetch\": \"%s\""
        (json_escape
           (Memsim.Config.hw_prefetch_to_string
              c.machine.Memsim.Config.hw_prefetch))
  in
  let threshold =
    match c.opts with
    | Some { SP.Options.inter_stride_threshold = Some t; _ } ->
        Printf.sprintf ", \"sw_threshold\": %d" t
    | Some _ | None -> ""
  in
  let prediction =
    match c.opts with
    | Some o when o.SP.Options.prediction <> SP.Options.Inspect ->
        Printf.sprintf ", \"prediction\": \"%s\""
          (SP.Options.prediction_name o.SP.Options.prediction)
    | Some _ | None -> ""
  in
  (* "monitor": true only when armed: canonical-matrix reports stay
     byte-compatible with pre-monitor baselines (and their gate keys
     unchanged). *)
  let monitor = if c.monitor then ", \"monitor\": true" else "" in
  hw ^ threshold ^ prediction ^ monitor

(* Per-loop blame payload of a profiled cell: the profiler's loop rows
   (stall bins + totals, the straight-line remainders included) plus GC
   cycles — enough for spf_bench to reconstruct a two-sided per-loop
   cycle-delta report when the gate fails (lib/diff ingests it via
   Rundata.of_bench_blame). Only profile:true cells carry it, so
   canonical reports stay byte-compatible with pre-blame baselines. *)
let blame_json (rep : Profile.Report.t) =
  let bins b =
    String.concat ", "
      (List.map
         (fun (name, get) -> Printf.sprintf "\"%s\": %d" name (get b))
         Profile.Report.bin_fields)
  in
  let loop (l : Profile.Report.loop_row) =
    Printf.sprintf
      "{\"method\": \"%s\", \"loop\": %d, \"depth\": %d, \"actions\": %d, \
       \"bins\": {%s}, \"total\": %d}"
      (json_escape l.Profile.Report.l_method)
      l.l_loop l.l_depth l.l_actions (bins l.l_bins) l.l_total
  in
  Printf.sprintf "{\"gc_cycles\": %d, \"loops\": [%s]}"
    rep.Profile.Report.gc_cycles
    (String.concat ", " (List.map loop rep.Profile.Report.loops))

let to_json_string ?arbitration ?prediction ~jobs ~matrix_wall_seconds
    (timed : Runner.timed list) =
  let total_cell_seconds =
    List.fold_left (fun acc (t : Runner.timed) -> acc +. t.seconds) 0.0 timed
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema\": \"%s\",\n" schema);
  Buffer.add_string buf
    (Printf.sprintf "  \"jobs\": %d,\n  \"host_cpus\": %d,\n" jobs
       (Runner.default_jobs ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"matrix_wall_seconds\": %.6f,\n" matrix_wall_seconds);
  Buffer.add_string buf
    (Printf.sprintf "  \"total_cell_seconds\": %.6f,\n" total_cell_seconds);
  Buffer.add_string buf (dispatch_json timed);
  (match arbitration with
  | Some a -> Buffer.add_string buf (arbitration_json a)
  | None -> ());
  (match prediction with
  | Some l -> Buffer.add_string buf (prediction_json l)
  | None -> ());
  Buffer.add_string buf "  \"cells\": [\n";
  List.iteri
    (fun i (t : Runner.timed) ->
      let effectiveness =
        match t.result.H.effectiveness with
        | Some eff ->
            Printf.sprintf ", \"effectiveness\": %s" (effectiveness_json eff)
        | None -> ""
      in
      let blame =
        match t.result.H.profile with
        | Some rep -> Printf.sprintf ", \"blame\": %s" (blame_json rep)
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"machine\": \"%s\", \"mode\": \
            \"%s\", \"engine\": \"%s\", \"telemetry\": %b, \"profile\": \
            %b%s, \"seconds\": %.6f, \"cycles\": %d%s%s}%s\n"
           (json_escape t.cell.Runner.workload.W.name)
           (json_escape t.cell.Runner.machine.Memsim.Config.name)
           (json_escape (SP.Options.mode_name t.cell.Runner.mode))
           (Vm.Interp.engine_name t.cell.Runner.engine)
           t.cell.Runner.telemetry t.cell.Runner.profile
           (cell_extras t.cell) t.seconds
           t.result.H.cycles effectiveness blame
           (if i = List.length timed - 1 then "" else ",")))
    timed;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write_json ?arbitration ?prediction ~path ~jobs ~matrix_wall_seconds
    timed =
  let oc = open_out path in
  output_string oc
    (to_json_string ?arbitration ?prediction ~jobs ~matrix_wall_seconds
       timed);
  close_out oc
