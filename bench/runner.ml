(* Parallel bench-matrix runner.

   The (workload x machine x mode) cells of the paper's evaluation are
   mutually independent: each run builds a fresh program, a fresh
   [Vm.Interp.t] and a fresh [Memsim.Hierarchy.t], and no library under
   [lib/] keeps top-level mutable state. That makes the matrix
   embarrassingly parallel, so we farm the cells out to a pool of OCaml 5
   Domains. Simulated cycle counts are a pure function of the cell, so the
   parallel runner is byte-identical to the serial one (asserted by
   test/test_bench_runner.ml); only host wall-clock changes. *)

module SP = Strideprefetch
module W = Workloads.Workload
module H = Workloads.Harness

type cell = {
  workload : W.t;
  machine : Memsim.Config.machine;
  mode : SP.Options.mode;
  opts : SP.Options.t option;  (** algorithm-knob override; [None] = defaults *)
  telemetry : bool;
      (** thread the observability stack through the run; fills
          [run_result.effectiveness] (coverage/accuracy rollups for the
          BENCH json) without perturbing the simulation *)
  profile : bool;
      (** additionally install the object-centric profiler; fills
          [run_result.profile] (implies telemetry) without perturbing
          the simulation *)
  monitor : bool;
      (** arm the live windowed monitor at its default window; fills
          [run_result.monitor] (implies telemetry). The monitored twin's
          cycle count must equal its plain cell's exactly — monitoring
          observes only — so the gate's exact-equality law pins the
          monitor's zero-cost claim over time *)
  engine : Vm.Interp.engine;
      (** which execution engine runs the cell; default [Closure]. The
          simulated cycle count is engine-independent (bit-identity is
          the engines' contract), so a switch twin differs from its
          closure cell only in host wall-clock — the dispatch-speedup
          lane of the report *)
}

type timed = {
  cell : cell;
  result : H.run_result;
  seconds : float;  (** host wall-clock for this cell *)
}

let cell ?opts ?(telemetry = false) ?(profile = false) ?(monitor = false)
    ?(engine = Vm.Interp.Closure) workload machine mode =
  { workload; machine; mode; opts; telemetry; profile; monitor; engine }

let cell_label c =
  Printf.sprintf "%s/%s/%s%s%s%s%s%s%s%s" c.workload.W.name
    c.machine.Memsim.Config.name
    (SP.Options.mode_name c.mode)
    (match c.opts with None -> "" | Some _ -> "/custom-opts")
    (match c.opts with
    | Some o when o.SP.Options.prediction <> SP.Options.Inspect ->
        "/pred=" ^ SP.Options.prediction_name o.SP.Options.prediction
    | _ -> "")
    (if c.telemetry then "/telemetry" else "")
    (if c.profile then "/profile" else "")
    (if c.monitor then "/monitor" else "")
    (match c.engine with
    | Vm.Interp.Closure -> ""
    | e -> "/" ^ Vm.Interp.engine_name e ^ "-engine")
    (if c.machine.Memsim.Config.hw_prefetch = Memsim.Config.default_stream
     then ""
     else
       "/hw="
       ^ Memsim.Config.hw_prefetch_to_string
           c.machine.Memsim.Config.hw_prefetch)

let run_cell c =
  let t0 = Unix.gettimeofday () in
  let monitor =
    if c.monitor then Some Monitor.Collector.default_window_cycles else None
  in
  let result =
    match c.opts with
    | None ->
        H.run ?monitor ~engine:c.engine ~telemetry:c.telemetry
          ~profile:c.profile ~mode:c.mode ~machine:c.machine c.workload
    | Some opts ->
        H.run ~opts ?monitor ~engine:c.engine ~telemetry:c.telemetry
          ~profile:c.profile ~mode:c.mode ~machine:c.machine c.workload
  in
  { cell = c; result; seconds = Unix.gettimeofday () -. t0 }

let default_jobs () = Domain.recommended_domain_count ()

let run_matrix ?progress ~jobs cells =
  let cells = Array.of_list cells in
  let n = Array.length cells in
  let results = Array.make n None in
  let jobs = max 1 (min jobs n) in
  let report =
    match progress with
    | None -> fun _ -> ()
    | Some f ->
        let m = Mutex.create () in
        fun c ->
          Mutex.lock m;
          (try f c with e -> Mutex.unlock m; raise e);
          Mutex.unlock m
  in
  if jobs = 1 then
    (* Serial fallback: no domains at all, to keep single-core runs and
       debugging sessions free of any runtime-parallelism overhead. *)
    Array.iteri
      (fun i c ->
        report c;
        results.(i) <- Some (run_cell c))
      cells
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else begin
          let c = cells.(i) in
          report c;
          (* Distinct domains write distinct indices of a boxed-option
             array: no data race, and [Domain.join] publishes the
             writes. *)
          results.(i) <- Some (run_cell c)
        end
      done
    in
    let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers
  end;
  Array.to_list
    (Array.map
       (function
         | Some r -> r
         | None -> invalid_arg "run_matrix: unfilled cell (worker died?)")
       results)
