(** The profiler's analysis half: joins a finished {!Collector} with the
    program (instruction names, loop structure from the {e final} —
    possibly JIT-rewritten — method bodies) and, when available, the
    prefetch pass's per-loop reports, into renderable tables.

    Everything here is deterministic: rows carry total ties broken by
    (method id, pc), folded stacks are sorted lexicographically, and
    floats are formatted with fixed precision — two runs of the same
    seed produce byte-identical output (tested). *)

type pc_row = {
  method_id : int;
  method_name : string;
  pc : int;
  instr : string;  (** mnemonic of the final code at [pc]; ["?"] if the
                       body shrank below it after profiling *)
  loop_id : int;  (** innermost enclosing loop, [-1] for straight-line *)
  loop_depth : int;  (** 0 for straight-line code *)
  bins : Collector.bins;
  row_total : int;
}

type loop_row = {
  l_method : string;
  l_loop : int;  (** [-1]: the method's straight-line remainder *)
  l_depth : int;
  l_header_pc : int;  (** [-1] for the straight-line row *)
  l_bins : Collector.bins;
  l_total : int;
  l_actions : int;
      (** prefetch actions the pass planned for this loop ([-1]:
          unknown — no pass reports were supplied) *)
}

type obj_row = {
  alloc_method : string;  (** ["(unattributed)"] for the [-1] site *)
  alloc_pc : int;
  allocs : int;
  alloc_bytes : int;
  o_tlb : int;
  o_l1 : int;
  o_l2 : int;
  o_mem : int;
  o_total : int;  (** total demand stall on objects from this site *)
}

type t = {
  cycles : int;  (** [Stats.cycles] of the profiled run *)
  gc_cycles : int;
  totals : Collector.bins;  (** summed over all pcs *)
  pcs : pc_row list;  (** sorted by total desc, then (method, pc) *)
  loops : loop_row list;  (** sorted by total desc, then (method, loop) *)
  objects : obj_row list;  (** sorted by stall desc, then (method, pc) *)
}

val bin_fields : (string * (Collector.bins -> int)) list
(** The stall bins in canonical order — retire, tlb, l1, l2, mem,
    pf_overhead, guard_overhead, alloc — paired with their accessors.
    Every renderer here, the ["spf_prof/v1"] JSON writer and the diff
    engine's per-bin delta decomposition iterate this one list, so the
    order and spelling agree everywhere. *)

val build :
  program:Vm.Classfile.program ->
  ?reports:Strideprefetch.Pass.loop_report list ->
  cycles:int ->
  Collector.t ->
  t

val conservation_error : t -> string option
(** The profiler's conservation law:
    [retire + tlb + l1 + l2 + mem + pf + guard + alloc + gc = cycles].
    [None] when it holds exactly. *)

val pp_topdown : ?top:int -> Format.formatter -> t -> unit
(** Totals line, the top-down bin summary (absolute cycles and % of
    total), then the [top] hottest pcs (default 20). *)

val pp_loops : ?top:int -> Format.formatter -> t -> unit
val pp_objects : ?top:int -> Format.formatter -> t -> unit

val pp_loop_detail : loop:int -> Format.formatter -> t -> unit
(** Every pc row of one loop (by loop id), in pc order. *)

val folded : t -> string
(** flamegraph.pl-compatible collapsed stacks, one per line:
    [method;loop;pc:instr;bin count] (plus a single [gc count] line),
    sorted, with frame-breaking characters replaced by [_]. Ends with a
    newline when non-empty. *)

val to_json : t -> Telemetry.Json.t
(** Schema ["spf_prof/v1"]. *)
