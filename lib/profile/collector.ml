(* Accumulates the interpreter's profile hooks into dense tables.

   The conservation law that makes the profile trustworthy: the
   interpreter reports every cycle it charges through exactly one hook
   call, and this collector adds every hook payload to exactly one bin,
   so [total] reconstructs [Stats.cycles] exactly. The law is asserted
   per cell by the profile tests and, behind [check_invariants], at the
   end of every harness run. *)

type bins = {
  mutable b_retire : int;
  mutable b_tlb : int;
  mutable b_l1 : int;
  mutable b_l2 : int;
  mutable b_mem : int;
  mutable b_pf : int;
  mutable b_guard : int;
  mutable b_alloc : int;
}

let zero_bins () =
  {
    b_retire = 0;
    b_tlb = 0;
    b_l1 = 0;
    b_l2 = 0;
    b_mem = 0;
    b_pf = 0;
    b_guard = 0;
    b_alloc = 0;
  }

let bins_total b =
  b.b_retire + b.b_tlb + b.b_l1 + b.b_l2 + b.b_mem + b.b_pf + b.b_guard
  + b.b_alloc

let add_bins ~into b =
  into.b_retire <- into.b_retire + b.b_retire;
  into.b_tlb <- into.b_tlb + b.b_tlb;
  into.b_l1 <- into.b_l1 + b.b_l1;
  into.b_l2 <- into.b_l2 + b.b_l2;
  into.b_mem <- into.b_mem + b.b_mem;
  into.b_pf <- into.b_pf + b.b_pf;
  into.b_guard <- into.b_guard + b.b_guard;
  into.b_alloc <- into.b_alloc + b.b_alloc

type obj_cell = {
  mutable allocs : int;
  mutable alloc_bytes : int;
  mutable o_tlb : int;
  mutable o_l1 : int;
  mutable o_l2 : int;
  mutable o_mem : int;
}

let zero_obj () =
  { allocs = 0; alloc_bytes = 0; o_tlb = 0; o_l1 = 0; o_l2 = 0; o_mem = 0 }

type t = {
  pcs : (int, bins) Hashtbl.t;  (** packed (method, pc) -> bins *)
  mutable obj_site : int array;  (** heap object id -> packed alloc site *)
  obj_sites : (int, obj_cell) Hashtbl.t;  (** packed alloc site -> cell *)
  mutable gc : int;
}

let create () =
  {
    pcs = Hashtbl.create 512;
    obj_site = Array.make 1024 (-1);
    obj_sites = Hashtbl.create 128;
    gc = 0;
  }

let key ~method_id ~pc = (method_id lsl 16) lor (pc land 0xffff)

let pc_bins t ~method_id ~pc =
  let k = key ~method_id ~pc in
  match Hashtbl.find_opt t.pcs k with
  | Some b -> b
  | None ->
      let b = zero_bins () in
      Hashtbl.add t.pcs k b;
      b

let obj_cell t site =
  match Hashtbl.find_opt t.obj_sites site with
  | Some c -> c
  | None ->
      let c = zero_obj () in
      Hashtbl.add t.obj_sites site c;
      c

let site_of_obj t obj =
  if obj >= 0 && obj < Array.length t.obj_site then t.obj_site.(obj) else -1

let remember_site t ~obj ~site =
  let n = Array.length t.obj_site in
  if obj >= n then begin
    let grown = Array.make (max (2 * n) (obj + 1)) (-1) in
    Array.blit t.obj_site 0 grown 0 n;
    t.obj_site <- grown
  end;
  t.obj_site.(obj) <- site

let hooks t : Vm.Interp.profile_hooks =
  {
    on_cycles =
      (fun ~method_id ~pc ~bin ~cycles ->
        let b = pc_bins t ~method_id ~pc in
        match bin with
        | Vm.Interp.Prof_retire -> b.b_retire <- b.b_retire + cycles
        | Vm.Interp.Prof_alloc -> b.b_alloc <- b.b_alloc + cycles
        | Vm.Interp.Prof_pf_overhead -> b.b_pf <- b.b_pf + cycles
        | Vm.Interp.Prof_guard_overhead -> b.b_guard <- b.b_guard + cycles);
    on_stall =
      (fun ~method_id ~pc ~obj ~tlb ~l1 ~l2 ~mem ->
        let b = pc_bins t ~method_id ~pc in
        b.b_tlb <- b.b_tlb + tlb;
        b.b_l1 <- b.b_l1 + l1;
        b.b_l2 <- b.b_l2 + l2;
        b.b_mem <- b.b_mem + mem;
        let c = obj_cell t (site_of_obj t obj) in
        c.o_tlb <- c.o_tlb + tlb;
        c.o_l1 <- c.o_l1 + l1;
        c.o_l2 <- c.o_l2 + l2;
        c.o_mem <- c.o_mem + mem);
    on_alloc =
      (fun ~obj ~method_id ~pc ~bytes ->
        let site = key ~method_id ~pc in
        remember_site t ~obj ~site;
        let c = obj_cell t site in
        c.allocs <- c.allocs + 1;
        c.alloc_bytes <- c.alloc_bytes + bytes);
    on_gc = (fun ~cycles -> t.gc <- t.gc + cycles);
  }

let pc_cells t = Hashtbl.fold (fun k b acc -> (k, b) :: acc) t.pcs []
let obj_cells t = Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.obj_sites []
let gc_cycles t = t.gc

let total t =
  Hashtbl.fold (fun _ b acc -> acc + bins_total b) t.pcs t.gc
