(* Joins the collector's raw tables with the program: method names,
   instruction mnemonics, and the loop forest of each method's final
   body. pcs are interpreted against the final (possibly JIT-rewritten)
   code; the few cycles a hot method spent interpreted before
   compilation are attributed to the pc positions of the rewritten body,
   an approximation DESIGN.md section 9 discusses.

   Determinism: every list is sorted with a total order (cycle totals
   descending, ties by (method id, pc/loop id)), so two runs of the same
   seed render byte-identically. *)

module C = Collector

type pc_row = {
  method_id : int;
  method_name : string;
  pc : int;
  instr : string;
  loop_id : int;
  loop_depth : int;
  bins : C.bins;
  row_total : int;
}

type loop_row = {
  l_method : string;
  l_loop : int;
  l_depth : int;
  l_header_pc : int;
  l_bins : C.bins;
  l_total : int;
  l_actions : int;
}

type obj_row = {
  alloc_method : string;
  alloc_pc : int;
  allocs : int;
  alloc_bytes : int;
  o_tlb : int;
  o_l1 : int;
  o_l2 : int;
  o_mem : int;
  o_total : int;
}

type t = {
  cycles : int;
  gc_cycles : int;
  totals : C.bins;
  pcs : pc_row list;
  loops : loop_row list;
  objects : obj_row list;
}

(* The canonical bin order, shared by the renderers, the folded export
   and the JSON schema. *)
let bin_fields : (string * (C.bins -> int)) list =
  [
    ("retire", fun b -> b.C.b_retire);
    ("tlb", fun b -> b.C.b_tlb);
    ("l1", fun b -> b.C.b_l1);
    ("l2", fun b -> b.C.b_l2);
    ("mem", fun b -> b.C.b_mem);
    ("pf_overhead", fun b -> b.C.b_pf);
    ("guard_overhead", fun b -> b.C.b_guard);
    ("alloc", fun b -> b.C.b_alloc);
  ]

let build ~program ?reports ~cycles coll =
  let module Cf = Vm.Classfile in
  (* Loop structure of each profiled method's final body, on demand. *)
  let loop_info = Hashtbl.create 16 in
  let loops_of mid =
    match Hashtbl.find_opt loop_info mid with
    | Some x -> x
    | None ->
        let m = Cf.method_of_id program mid in
        let x =
          match Jit.Cfg.build m.code with
          | cfg -> Some (cfg, Jit.Loops.analyze cfg)
          | exception _ -> None
        in
        Hashtbl.add loop_info mid x;
        x
  in
  let pcs =
    C.pc_cells coll
    |> List.map (fun (k, bins) ->
           let mid = k lsr 16 and pc = k land 0xffff in
           let m = Cf.method_of_id program mid in
           let instr =
             if pc < Array.length m.code then
               Vm.Bytecode.to_string m.code.(pc)
             else "?"
           in
           let loop_id, loop_depth =
             match loops_of mid with
             | Some (cfg, forest) when pc < Array.length m.code -> (
                 match Jit.Loops.loop_of_pc cfg forest pc with
                 | Some l -> (l.Jit.Loops.loop_id, l.Jit.Loops.depth)
                 | None -> (-1, 0))
             | _ -> (-1, 0)
           in
           {
             method_id = mid;
             method_name = m.method_name;
             pc;
             instr;
             loop_id;
             loop_depth;
             bins;
             row_total = C.bins_total bins;
           })
    |> List.sort (fun a b ->
           match compare b.row_total a.row_total with
           | 0 -> compare (a.method_id, a.pc) (b.method_id, b.pc)
           | c -> c)
  in
  let totals = C.zero_bins () in
  List.iter (fun r -> C.add_bins ~into:totals r.bins) pcs;
  (* Per-loop rollup of the pc rows; loop id -1 collects each method's
     straight-line remainder. *)
  let loop_tbl = Hashtbl.create 32 in
  List.iter
    (fun r ->
      let key = (r.method_id, r.loop_id) in
      let row =
        match Hashtbl.find_opt loop_tbl key with
        | Some row -> row
        | None ->
            let header_pc =
              if r.loop_id < 0 then -1
              else
                match loops_of r.method_id with
                | Some (cfg, forest) ->
                    let l = forest.Jit.Loops.all.(r.loop_id) in
                    (Jit.Cfg.block cfg l.Jit.Loops.header).Jit.Cfg.start_pc
                | None -> -1
            in
            let actions =
              match reports with
              | None -> -1
              | Some reps ->
                  if r.loop_id < 0 then 0
                  else
                    List.fold_left
                      (fun acc (rep : Strideprefetch.Pass.loop_report) ->
                        if
                          rep.method_name = r.method_name
                          && rep.loop_id = r.loop_id
                        then
                          acc
                          + List.length rep.plan.Strideprefetch.Codegen.actions
                        else acc)
                      0 reps
            in
            let row =
              {
                l_method = r.method_name;
                l_loop = r.loop_id;
                l_depth = r.loop_depth;
                l_header_pc = header_pc;
                l_bins = C.zero_bins ();
                l_total = 0;
                l_actions = actions;
              }
            in
            Hashtbl.add loop_tbl key row;
            row
      in
      C.add_bins ~into:row.l_bins r.bins;
      Hashtbl.replace loop_tbl key
        { row with l_total = row.l_total + r.row_total })
    pcs;
  let loops =
    Hashtbl.fold (fun _ row acc -> row :: acc) loop_tbl []
    |> List.sort (fun a b ->
           match compare b.l_total a.l_total with
           | 0 -> compare (a.l_method, a.l_loop) (b.l_method, b.l_loop)
           | c -> c)
  in
  let objects =
    C.obj_cells coll
    |> List.map (fun (k, (c : C.obj_cell)) ->
           let alloc_method, alloc_pc =
             if k < 0 then ("(unattributed)", -1)
             else
               let mid = k lsr 16 and pc = k land 0xffff in
               ((Cf.method_of_id program mid).method_name, pc)
           in
           {
             alloc_method;
             alloc_pc;
             allocs = c.C.allocs;
             alloc_bytes = c.C.alloc_bytes;
             o_tlb = c.C.o_tlb;
             o_l1 = c.C.o_l1;
             o_l2 = c.C.o_l2;
             o_mem = c.C.o_mem;
             o_total = c.C.o_tlb + c.C.o_l1 + c.C.o_l2 + c.C.o_mem;
           })
    |> List.sort (fun a b ->
           match compare b.o_total a.o_total with
           | 0 -> compare (a.alloc_method, a.alloc_pc) (b.alloc_method, b.alloc_pc)
           | c -> c)
  in
  { cycles; gc_cycles = C.gc_cycles coll; totals; pcs; loops; objects }

let conservation_error t =
  let binned = C.bins_total t.totals + t.gc_cycles in
  if binned = t.cycles then None
  else
    Some
      (Printf.sprintf
         "profile: binned cycles %d <> total cycles %d (law: retire + tlb + \
          l1 + l2 + mem + pf_overhead + guard_overhead + alloc + gc = \
          cycles)"
         binned t.cycles)

let pct part whole =
  if whole <= 0 then 0.0 else float_of_int part /. float_of_int whole

let loop_label l = if l < 0 then "-" else string_of_int l

let take n xs =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n xs

let pp_topdown ?(top = 20) ppf t =
  let open Telemetry.Table in
  Format.fprintf ppf "@[<v>cycles: %d  (gc: %d, %s of total)@,@," t.cycles
    t.gc_cycles
    (cell_pct (pct t.gc_cycles t.cycles));
  let summary =
    make ~columns:[ ("bin", Left); ("cycles", Right); ("share", Right) ]
  in
  List.iter
    (fun (name, get) ->
      add_row summary
        [ name; cell_int (get t.totals); cell_pct (pct (get t.totals) t.cycles) ])
    bin_fields;
  add_row summary [ "gc"; cell_int t.gc_cycles; cell_pct (pct t.gc_cycles t.cycles) ];
  add_sep summary;
  add_row summary [ "total"; cell_int t.cycles; cell_pct 1.0 ];
  Format.fprintf ppf "%a@,@," pp summary;
  let tbl =
    make
      ~columns:
        ([ ("method", Left); ("pc", Right); ("instr", Left); ("loop", Right) ]
        @ List.map (fun (name, _) -> (name, Right)) bin_fields
        @ [ ("total", Right); ("share", Right) ])
  in
  List.iter
    (fun r ->
      add_row tbl
        ([
           r.method_name;
           cell_int r.pc;
           r.instr;
           loop_label r.loop_id;
         ]
        @ List.map (fun (_, get) -> cell_int (get r.bins)) bin_fields
        @ [ cell_int r.row_total; cell_pct (pct r.row_total t.cycles) ]))
    (take top t.pcs);
  Format.fprintf ppf "%a" pp tbl;
  if List.length t.pcs > top then
    Format.fprintf ppf "@,(%d more pcs; raise --top or use --json)"
      (List.length t.pcs - top);
  Format.fprintf ppf "@]"

let pp_loops ?(top = 20) ppf t =
  let open Telemetry.Table in
  let tbl =
    make
      ~columns:
        [
          ("method", Left);
          ("loop", Right);
          ("depth", Right);
          ("header", Right);
          ("actions", Right);
          ("retire", Right);
          ("stall", Right);
          ("overhead", Right);
          ("total", Right);
          ("share", Right);
        ]
  in
  List.iter
    (fun r ->
      let b = r.l_bins in
      add_row tbl
        [
          r.l_method;
          loop_label r.l_loop;
          cell_int r.l_depth;
          (if r.l_header_pc < 0 then "-" else cell_int r.l_header_pc);
          (if r.l_actions < 0 then "?" else cell_int r.l_actions);
          cell_int b.C.b_retire;
          cell_int (b.C.b_tlb + b.C.b_l1 + b.C.b_l2 + b.C.b_mem);
          cell_int (b.C.b_pf + b.C.b_guard + b.C.b_alloc);
          cell_int r.l_total;
          cell_pct (pct r.l_total t.cycles);
        ])
    (take top t.loops);
  Format.fprintf ppf "@[<v>%a@]" pp tbl

let pp_objects ?(top = 20) ppf t =
  let open Telemetry.Table in
  let tbl =
    make
      ~columns:
        [
          ("alloc site", Left);
          ("pc", Right);
          ("allocs", Right);
          ("bytes", Right);
          ("tlb", Right);
          ("l1", Right);
          ("l2", Right);
          ("mem", Right);
          ("stall", Right);
          ("share", Right);
        ]
  in
  List.iter
    (fun r ->
      add_row tbl
        [
          r.alloc_method;
          (if r.alloc_pc < 0 then "-" else cell_int r.alloc_pc);
          cell_int r.allocs;
          cell_int r.alloc_bytes;
          cell_int r.o_tlb;
          cell_int r.o_l1;
          cell_int r.o_l2;
          cell_int r.o_mem;
          cell_int r.o_total;
          cell_pct (pct r.o_total t.cycles);
        ])
    (take top t.objects);
  Format.fprintf ppf "@[<v>%a@]" pp tbl

let pp_loop_detail ~loop ppf t =
  let open Telemetry.Table in
  let rows =
    List.filter (fun r -> r.loop_id = loop) t.pcs
    |> List.sort (fun a b -> compare (a.method_id, a.pc) (b.method_id, b.pc))
  in
  if rows = [] then Format.fprintf ppf "no profiled pcs in loop %d" loop
  else begin
    let tbl =
      make
        ~columns:
          ([ ("method", Left); ("pc", Right); ("instr", Left) ]
          @ List.map (fun (name, _) -> (name, Right)) bin_fields
          @ [ ("total", Right) ])
    in
    List.iter
      (fun r ->
        add_row tbl
          ([ r.method_name; cell_int r.pc; r.instr ]
          @ List.map (fun (_, get) -> cell_int (get r.bins)) bin_fields
          @ [ cell_int r.row_total ]))
      rows;
    Format.fprintf ppf "@[<v>%a@]" pp tbl
  end

(* flamegraph.pl's collapsed-stack format: semicolon-separated frames,
   space, count. Frames must not contain the separators themselves. *)
let sanitize_frame s =
  String.map (fun c -> if c = ';' || c = ' ' then '_' else c) s

let folded t =
  let lines = ref [] in
  List.iter
    (fun r ->
      let prefix =
        Printf.sprintf "%s;%s;%d:%s"
          (sanitize_frame r.method_name)
          (if r.loop_id < 0 then "straight" else "loop_" ^ string_of_int r.loop_id)
          r.pc (sanitize_frame r.instr)
      in
      List.iter
        (fun (name, get) ->
          let n = get r.bins in
          if n > 0 then
            lines := Printf.sprintf "%s;%s %d" prefix name n :: !lines)
        bin_fields)
    t.pcs;
  if t.gc_cycles > 0 then
    lines := Printf.sprintf "gc %d" t.gc_cycles :: !lines;
  match List.sort compare !lines with
  | [] -> ""
  | sorted -> String.concat "\n" sorted ^ "\n"

let json_of_bins b =
  Telemetry.Json.Obj
    (List.map (fun (name, get) -> (name, Telemetry.Json.Int (get b))) bin_fields)

let to_json t =
  let open Telemetry.Json in
  let pc_json r =
    Obj
      [
        ("method", Str r.method_name);
        ("pc", Int r.pc);
        ("instr", Str r.instr);
        ("loop", Int r.loop_id);
        ("depth", Int r.loop_depth);
        ("bins", json_of_bins r.bins);
        ("total", Int r.row_total);
      ]
  in
  let loop_json r =
    Obj
      [
        ("method", Str r.l_method);
        ("loop", Int r.l_loop);
        ("depth", Int r.l_depth);
        ("header_pc", Int r.l_header_pc);
        ("actions", Int r.l_actions);
        ("bins", json_of_bins r.l_bins);
        ("total", Int r.l_total);
      ]
  in
  let obj_json r =
    Obj
      [
        ("method", Str r.alloc_method);
        ("pc", Int r.alloc_pc);
        ("allocs", Int r.allocs);
        ("bytes", Int r.alloc_bytes);
        ("tlb", Int r.o_tlb);
        ("l1", Int r.o_l1);
        ("l2", Int r.o_l2);
        ("mem", Int r.o_mem);
        ("stall", Int r.o_total);
      ]
  in
  Obj
    [
      ("schema", Str "spf_prof/v1");
      ("cycles", Int t.cycles);
      ("gc_cycles", Int t.gc_cycles);
      ("totals", json_of_bins t.totals);
      ("pcs", List (List.map pc_json t.pcs));
      ("loops", List (List.map loop_json t.loops));
      ("objects", List (List.map obj_json t.objects));
    ]
