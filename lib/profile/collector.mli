(** The profiler's runtime half: a set of {!Vm.Interp.profile_hooks}
    that accumulate every cycle the interpreter charges into per-pc and
    per-allocation-site tables.

    The collector is pure bookkeeping — it never touches the VM or the
    simulated memory system, so a profiled run is bit-identical to an
    unprofiled one (fuzz-checked). Analysis and rendering live in
    {!Report}, which consumes a finished collector. *)

type bins = {
  mutable b_retire : int;  (** base instruction slots *)
  mutable b_tlb : int;  (** DTLB miss penalties *)
  mutable b_l1 : int;  (** L1 hit-extra cycles *)
  mutable b_l2 : int;  (** L1-miss (L2 access) penalties *)
  mutable b_mem : int;  (** DRAM latency + in-flight fill residuals *)
  mutable b_pf : int;  (** prefetch-instruction overhead *)
  mutable b_guard : int;  (** guarded-load overhead *)
  mutable b_alloc : int;  (** allocation cost *)
}

val zero_bins : unit -> bins
val bins_total : bins -> int
val add_bins : into:bins -> bins -> unit

(** Per-allocation-site object statistics: how many objects a site
    allocated, their bytes, and the demand stalls incurred by accesses
    {e to those objects} anywhere in the program (DJXPerf-style
    object-centric attribution). *)
type obj_cell = {
  mutable allocs : int;
  mutable alloc_bytes : int;
  mutable o_tlb : int;
  mutable o_l1 : int;
  mutable o_l2 : int;
  mutable o_mem : int;
}

type t

val create : unit -> t

val hooks : t -> Vm.Interp.profile_hooks
(** The observer closures to install with {!Vm.Interp.set_profile}. *)

val key : method_id:int -> pc:int -> int
(** The packed (method, pc) key used by {!pc_cells}:
    [method_id lsl 16 lor pc]. *)

val pc_cells : t -> (int * bins) list
(** All (packed key, bins) pairs, unordered. *)

val obj_cells : t -> (int * obj_cell) list
(** All (packed alloc-site key, cell) pairs, unordered. The key [-1]
    collects stalls on accesses with no owning object (statics) or to
    objects allocated before profiling started. *)

val gc_cycles : t -> int

val total : t -> int
(** Sum of every bin over every pc plus {!gc_cycles} — by the
    conservation law this equals [Stats.cycles] for a run that was
    profiled from the first instruction. *)
