(** Fuzzing campaign driver: generate, check, shrink, report.

    Seed protocol: program [i] of a campaign with seed [s] is generated
    from derived seed [s + i], so
    [spf_fuzz --seed (s + i) --count 1] replays program [i] exactly. *)

type finding = {
  seed : int;  (** derived per-program seed: campaign seed + index *)
  index : int;
  failure : Oracle.failure;
  source : string;
  shrunk : Shrink.result option;
}

type campaign = {
  campaign_seed : int;
  programs_run : int;
  cells_per_program : int;
  findings : finding list;  (** in discovery order; empty means all passed *)
}

val check_seed :
  ?cells:Oracle.cell list ->
  ?tweak_options:(Vm.Interp.options -> Vm.Interp.options) ->
  ?tweak_prefetch:(Strideprefetch.Options.t -> Strideprefetch.Options.t) ->
  seed:int ->
  max_size:int ->
  unit ->
  Gen.t * Oracle.verdict
(** Generate one program and run the oracle on it. *)

val run :
  ?cells:Oracle.cell list ->
  ?tweak_options:(Vm.Interp.options -> Vm.Interp.options) ->
  ?tweak_prefetch:(Strideprefetch.Options.t -> Strideprefetch.Options.t) ->
  ?shrink:bool ->
  ?shrink_attempts:int ->
  ?progress:(index:int -> seed:int -> unit) ->
  campaign_seed:int ->
  count:int ->
  max_size:int ->
  unit ->
  campaign
(** Run a whole campaign. [shrink] (default [true]) minimizes each
    finding; a shrink candidate only counts as failing when it fails in
    the {e same class} as the original finding, so minimization cannot
    wander to an unrelated bug. [progress] is called before each
    program. *)

val pp_finding : Format.formatter -> finding -> unit
(** The report format: failure description, replay command line, full
    program, and the shrunk reproducer when present. *)
