(** Greedy AST-level shrinker for failing fuzzing programs.

    Tries one-step reductions — drop a class, drop a method, delete one
    statement, unwrap an [if] into a branch, halve an integer literal —
    keeping any candidate that still compiles and still fails. Every
    accepted step strictly decreases the (classes, methods, statements,
    literal-mass) measure, so shrinking terminates; [max_attempts] bounds
    the number of (expensive) oracle invocations on top of that. *)

type result = {
  program : Minijava.Ast.program;
  source : string;  (** [program] rendered by {!Minijava.Pretty} *)
  steps : int;  (** accepted shrink steps *)
  attempts : int;  (** oracle invocations spent *)
}

val run :
  ?max_attempts:int ->
  is_failing:(string -> bool) ->
  Minijava.Ast.program ->
  result
(** [is_failing source] re-runs the oracle; it is only called on
    candidates that compile. Default [max_attempts] is 400. *)
