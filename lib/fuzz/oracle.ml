(* Differential oracle: one generated program, a matrix of configurations,
   and the claim that the prefetching pass is invisible except for speed.

   The baseline cell (mode Off, standard passes on, pentium4) fixes the
   expected observable behaviour; every other cell must reproduce its
   stdout and its statics-reachable heap graph exactly. On top of the
   differential check, each cell is audited on its own: no faulting
   prefetch addresses, object inspection leaves the real heap bit-
   identical, and the memory-system counters satisfy the structural
   invariants that hold for any run. *)

module O = Strideprefetch.Options

type cell = {
  mode : O.mode;
  standard_passes : bool;
  machine : Memsim.Config.machine;
}

let cell_name c =
  Printf.sprintf "%s/%s/%s" (O.mode_name c.mode)
    (if c.standard_passes then "pipeline" else "bare")
    c.machine.Memsim.Config.name

let default_cells =
  (* Baseline first: [check] treats the head of the list as the reference
     cell. 3 modes x {pipeline, bare} x 2 machines = 12 cells. *)
  let modes = [ O.Off; O.Inter; O.Inter_intra ] in
  let pipelines = [ true; false ] in
  let machines = [ Memsim.Config.pentium4; Memsim.Config.athlon_mp ] in
  List.concat_map
    (fun machine ->
      List.concat_map
        (fun standard_passes ->
          List.map (fun mode -> { mode; standard_passes; machine }) modes)
        pipelines)
    machines
  |> List.sort (fun a b ->
         (* stable sort key: baseline cell to the front *)
         let key c =
           ( (if c.mode = O.Off && c.standard_passes
              && c.machine.Memsim.Config.name
                 = Memsim.Config.pentium4.Memsim.Config.name
             then 0
             else 1),
             0 )
         in
         compare (key a) (key b))

type failure =
  | Compile_error of string
  | Crash of { cell : cell; message : string }
  | Output_divergence of {
      cell : cell;
      baseline_output : string;
      output : string;
    }
  | Heap_divergence of { cell : cell; diff : string }
  | Inspection_side_effect of { cell : cell; meth : string; diff : string }
  | Stats_violation of { cell : cell; message : string }
  | Faulting_prefetch of { cell : cell; count : int }
  | Lint_violation of { cell : cell; meth : string; message : string }
  | Telemetry_divergence of { cell : cell; message : string }
  | Engine_divergence of { cell : cell; message : string }
  | Hw_divergence of { cell : cell; hw : string; message : string }
  | Prediction_divergence of { cell : cell; tier : string; message : string }
  | Monitor_divergence of { cell : cell; message : string }
  | Diff_divergence of { cell : cell; message : string }

type verdict = Pass of { cells_run : int } | Fail of failure

let describe = function
  | Compile_error msg -> Printf.sprintf "front end rejected program: %s" msg
  | Crash { cell; message } ->
      Printf.sprintf "[%s] runtime crash: %s" (cell_name cell) message
  | Output_divergence { cell; baseline_output; output } ->
      Printf.sprintf
        "[%s] output differs from baseline\n--- baseline\n%s--- got\n%s"
        (cell_name cell) baseline_output output
  | Heap_divergence { cell; diff } ->
      Printf.sprintf "[%s] reachable heap differs from baseline: %s"
        (cell_name cell) diff
  | Inspection_side_effect { cell; meth; diff } ->
      Printf.sprintf
        "[%s] heap/statics changed across JIT compilation of %s: %s"
        (cell_name cell) meth diff
  | Stats_violation { cell; message } ->
      Printf.sprintf "[%s] stats invariant violated: %s" (cell_name cell)
        message
  | Faulting_prefetch { cell; count } ->
      Printf.sprintf "[%s] %d prefetch op(s) computed a negative address"
        (cell_name cell) count
  | Lint_violation { cell; meth; message } ->
      Printf.sprintf "[%s] %s is not lint-clean: %s" (cell_name cell) meth
        message
  | Telemetry_divergence { cell; message } ->
      Printf.sprintf
        "[%s] telemetry perturbed the simulation (must be observe-only): %s"
        (cell_name cell) message
  | Engine_divergence { cell; message } ->
      Printf.sprintf
        "[%s] switch and closure engines diverged (bit-identity is their \
         contract): %s"
        (cell_name cell) message
  | Hw_divergence { cell; hw; message } ->
      Printf.sprintf
        "[%s] hw=%s perturbed the architectural state (the hardware \
         prefetcher may only move cycles and memory counters): %s"
        (cell_name cell) hw message
  | Prediction_divergence { cell; tier; message } ->
      Printf.sprintf
        "[%s] prediction tier %s diverged from dynamic inspection \
         (static/hybrid plans must stay observationally equivalent): %s"
        (cell_name cell) tier message
  | Monitor_divergence { cell; message } ->
      Printf.sprintf
        "[%s] the live monitor perturbed the simulation (must be \
         observe-only) or its window books don't balance: %s"
        (cell_name cell) message
  | Diff_divergence { cell; message } ->
      Printf.sprintf
        "[%s] the differential-diagnosis join broke its identity law (a \
         run diffed against itself must blame nothing, conservation \
         exact): %s"
        (cell_name cell) message

(* Structural invariants any run must satisfy, whatever the program. *)
let stats_invariants (cell : cell) (r : Workloads.Harness.run_result) =
  let s = r.stats in
  let fail fmt =
    Printf.ksprintf (fun message -> Some (Stats_violation { cell; message })) fmt
  in
  let open Memsim.Stats in
  if s.l1_load_misses > s.loads then
    fail "l1_load_misses (%d) > loads (%d)" s.l1_load_misses s.loads
  else if s.l1_store_misses > s.stores then
    fail "l1_store_misses (%d) > stores (%d)" s.l1_store_misses s.stores
  else if s.l2_load_misses > s.l1_load_misses then
    fail "l2_load_misses (%d) > l1_load_misses (%d)" s.l2_load_misses
      s.l1_load_misses
  else if s.l2_store_misses > s.l1_store_misses then
    fail "l2_store_misses (%d) > l1_store_misses (%d)" s.l2_store_misses
      s.l1_store_misses
  else if s.dtlb_load_misses > s.loads + s.guarded_loads + s.sw_prefetches
  then
    fail "dtlb_load_misses (%d) > loads+guarded+prefetches (%d)"
      s.dtlb_load_misses
      (s.loads + s.guarded_loads + s.sw_prefetches)
  else if s.retired_instructions <= 0 then
    fail "no instructions retired (%d)" s.retired_instructions
  else if s.stall_cycles > s.cycles then
    fail "stall_cycles (%d) > cycles (%d)" s.stall_cycles s.cycles
  else if s.sw_prefetches_cancelled > s.sw_prefetches then
    fail "cancelled prefetches (%d) > issued prefetches (%d)"
      s.sw_prefetches_cancelled s.sw_prefetches
  else if s.sw_prefetch_useless > s.sw_prefetches + s.guarded_loads then
    (* the hierarchy counts an already-cached line as useless for both
       hardware-form prefetches and guarded loads *)
    fail "useless prefetches (%d) > issued prefetches+guarded loads (%d)"
      s.sw_prefetch_useless
      (s.sw_prefetches + s.guarded_loads)
  else if s.sw_prefetch_useful + s.sw_prefetch_late > s.sw_prefetches + s.guarded_loads
  then
    (* every useful/late classification is pinned to one issued software
       prefetch or guarded load *)
    fail "useful+late attributions (%d+%d) > issued prefetches+guarded (%d)"
      s.sw_prefetch_useful s.sw_prefetch_late
      (s.sw_prefetches + s.guarded_loads)
  else if s.in_flight_demand_hits + s.sw_prefetch_late > s.in_flight_hits then
    (* the attribution split of in-flight demand hits cannot exceed the
       aggregate counter it refines *)
    fail "in_flight_demand_hits+late (%d+%d) > in_flight_hits (%d)"
      s.in_flight_demand_hits s.sw_prefetch_late s.in_flight_hits
  else if
    cell.mode = O.Off
    && (s.sw_prefetches <> 0 || s.guarded_loads <> 0
       || s.sw_prefetches_cancelled <> 0)
  then
    fail "mode Off issued prefetch work (sw=%d guarded=%d cancelled=%d)"
      s.sw_prefetches s.guarded_loads s.sw_prefetches_cancelled
  else if r.spec_guard_trips > 0 && cell.mode = O.Off then
    fail "mode Off tripped %d spec_load guards" r.spec_guard_trips
  else None

let workload_of ~source ~heap_limit_bytes : Workloads.Workload.t =
  {
    Workloads.Workload.name = "fuzz";
    suite = `Specjvm;
    description = "generated program (fuzzer)";
    paper_note = "";
    source;
    heap_limit_bytes;
  }

(* The lint cell: after a run, every JIT-transformed method body must be
   clean under the whole analysis stack — type-state verifier, prefetch-
   safety checkers, and the plan-aware lints cross-checked against the
   loop reports the pass produced. Warnings count as violations: the
   codegen of a correct pass never emits a redundant prefetch or a dead
   spec-load register. *)
let lint_failure ~opts (cell : cell) (r : Workloads.Harness.run_result) =
  let program = r.program in
  let require_guarded = O.use_guarded opts cell.machine in
  let violation = ref None in
  Array.iter
    (fun (m : Vm.Classfile.method_info) ->
      if !violation = None && m.compiled then
        match
          Analysis.Check.check_method ~program ~reports:r.reports
            ~scheduling_distance:opts.O.scheduling_distance ~require_guarded
            ~inter_stride_threshold:
              (O.resolved_inter_stride_threshold opts cell.machine)
            m
        with
        | [] -> ()
        | d :: _ ->
            violation :=
              Some
                (Lint_violation
                   {
                     cell;
                     meth = m.method_name;
                     message = Analysis.Diag.render ~meth:m d;
                   }))
    program.Vm.Classfile.methods;
  !violation

(* Telemetry/profiler-observer cross-check: one fresh cell pair, plain vs
   fully attributed AND profiled, at the headline configuration. The
   observability stack must observe the simulation without participating:
   program output, cycle count and every core (non-telemetry) counter
   must be bit-identical, the attributed run's effectiveness books must
   balance (issued = cancelled + redundant + useful + late + useless),
   and the profiler's cycle bins must sum exactly to the run's cycle
   count (the conservation law of lib/profile). *)
let telemetry_crosscheck ~opts ?tweak_options workload =
  let cell =
    {
      mode = O.Inter_intra;
      standard_passes = true;
      machine = Memsim.Config.pentium4;
    }
  in
  let run ~telemetry ~profile =
    Workloads.Harness.run ~opts ?tweak_options ~telemetry ~profile
      ~mode:cell.mode ~machine:cell.machine workload
  in
  match
    (run ~telemetry:false ~profile:false, run ~telemetry:true ~profile:true)
  with
  | exception e -> Some (Crash { cell; message = Printexc.to_string e })
  | plain, attributed ->
      let diverged message = Some (Telemetry_divergence { cell; message }) in
      if plain.output <> attributed.output then
        diverged "program output differs"
      else if plain.cycles <> attributed.cycles then
        diverged
          (Printf.sprintf "cycles differ: plain=%d telemetry=%d" plain.cycles
             attributed.cycles)
      else if
        plain.faulting_prefetches <> attributed.faulting_prefetches
        || plain.spec_guard_trips <> attributed.spec_guard_trips
      then diverged "fault/guard counters differ"
      else begin
        match
          List.find_opt
            (fun ((k, a), (k', b)) -> k <> k' || a <> b)
            (List.combine
               (Memsim.Stats.core_alist plain.stats)
               (Memsim.Stats.core_alist attributed.stats))
        with
        | Some ((k, a), (_, b)) ->
            diverged
              (Printf.sprintf "core counter %s differs: plain=%d telemetry=%d"
                 k a b)
        | None -> (
            match attributed.effectiveness with
            | None -> diverged "telemetry run produced no effectiveness report"
            | Some eff ->
                let t = eff.Workloads.Effectiveness.totals in
                let classified =
                  t.Memsim.Attribution.cancelled + t.redundant
                  + t.redundant_hw + t.useful + t.late + t.useless
                in
                if t.issued <> classified then
                  diverged
                    (Printf.sprintf
                       "attribution books don't balance: issued=%d but \
                        cancelled+redundant+redundant_hw+useful+late+\
                        useless=%d"
                       t.issued classified)
                else begin
                  (* The profiler rode along on the attributed run; its
                     conservation law must hold on every fuzzed program. *)
                  match attributed.profile with
                  | None -> diverged "profiled run produced no profile report"
                  | Some rep -> (
                      match Profile.Report.conservation_error rep with
                      | Some msg ->
                          diverged
                            ("profiler conservation law violated: " ^ msg)
                      | None ->
                          (* The diff engine's identity law, on the same
                             attributed run: snapshot it and diff it
                             against itself — the blame must be empty
                             (zero total delta, zero per-loop deltas)
                             and the conservation check exact. A breach
                             is a join bug in lib/diff, invisible to
                             every cell above. *)
                          let diff_diverged message =
                            Some (Diff_divergence { cell; message })
                          in
                          let config =
                            {
                              Diff.Rundata.c_workload =
                                workload.Workloads.Workload.name;
                              c_machine = cell.machine.Memsim.Config.name;
                              c_mode = O.mode_name cell.mode;
                              c_engine = "closure";
                              c_hw =
                                Memsim.Config.hw_prefetch_to_string
                                  cell.machine.Memsim.Config.hw_prefetch;
                              c_prediction =
                                O.prediction_name opts.O.prediction;
                              c_threshold = opts.O.inter_stride_threshold;
                              c_passes = true;
                            }
                          in
                          (match
                             Diff.Rundata.of_run ~config attributed
                           with
                          | Error msg ->
                              diff_diverged
                                ("snapshot of a profiled run failed: " ^ msg)
                          | Ok rd -> (
                              let bl = Diff.Blame.build ~a:rd ~b:rd () in
                              if bl.Diff.Blame.total_delta <> 0 then
                                diff_diverged
                                  (Printf.sprintf
                                     "self-diff total delta is %+d, want 0"
                                     bl.Diff.Blame.total_delta)
                              else
                                match Diff.Blame.check bl with
                                | Some msg -> diff_diverged msg
                                | None ->
                                    if
                                      List.exists
                                        (fun (d : Diff.Blame.loop_delta) ->
                                          d.d_delta <> 0)
                                        bl.Diff.Blame.loops
                                    then
                                      diff_diverged
                                        "self-diff blames a loop for a \
                                         nonzero delta"
                                    else None)))
                end)
      end

(* Engine cross-check: one fresh cell pair at the headline configuration,
   reference switch engine vs closure-compiled engine. Bit-identity is
   the engines' contract, so on a completed run {e everything} must
   agree: program output, the statics-reachable heap graph, and the full
   stats surface — every core memory-system counter plus the VM-side
   books (cycle split, GC count, methods compiled, fault/guard
   counters). A crashing program must crash {e identically} in both
   engines (same exception, same message) and is compared on the crash
   alone: the closure engine's block batching commits a whole block's
   step/cycle bookkeeping before a mid-block error where the switch
   engine stops at the faulting instruction (documented in
   lib/vm/engine.ml), so post-crash counters are deliberately not
   comparable — and no stats counter is readable from an aborted run
   anyway. *)
let engine_crosscheck ~opts ?tweak_options workload =
  let cell =
    {
      mode = O.Inter_intra;
      standard_passes = true;
      machine = Memsim.Config.pentium4;
    }
  in
  let run engine =
    match
      Workloads.Harness.run ~opts ?tweak_options ~engine
        ~capture_observables:true ~mode:cell.mode ~machine:cell.machine
        workload
    with
    | r -> Ok r
    | exception e -> Error (Printexc.to_string e)
  in
  let diverged message = Some (Engine_divergence { cell; message }) in
  match (run Vm.Interp.Switch, run Vm.Interp.Closure) with
  | Error sw, Error cl ->
      if sw = cl then None
      else
        diverged
          (Printf.sprintf "engines crash differently: switch raised %s, \
                           closure raised %s" sw cl)
  | Error sw, Ok _ ->
      diverged
        (Printf.sprintf "switch engine crashed (%s) but closure completed" sw)
  | Ok _, Error cl ->
      diverged
        (Printf.sprintf "closure engine crashed (%s) but switch completed" cl)
  | Ok sw, Ok cl ->
      if sw.output <> cl.output then diverged "program output differs"
      else begin
        let counter name f =
          if f sw = f cl then None
          else
            Some
              (Printf.sprintf "%s differs: switch=%d closure=%d" name (f sw)
                 (f cl))
        in
        let vm_books =
          List.filter_map
            (fun (name, f) -> counter name f)
            [
              ("cycles", fun (r : Workloads.Harness.run_result) -> r.cycles);
              ("interpreted_cycles", fun r -> r.interpreted_cycles);
              ("compiled_cycles", fun r -> r.compiled_cycles);
              ("gc_count", fun r -> r.gc_count);
              ("methods_compiled", fun r -> r.methods_compiled);
              ("faulting_prefetches", fun r -> r.faulting_prefetches);
              ("spec_guard_trips", fun r -> r.spec_guard_trips);
            ]
        in
        match vm_books with
        | msg :: _ -> diverged msg
        | [] -> (
            match
              List.find_opt
                (fun ((k, a), (k', b)) -> k <> k' || a <> b)
                (List.combine
                   (Memsim.Stats.core_alist sw.stats)
                   (Memsim.Stats.core_alist cl.stats))
            with
            | Some ((k, a), (_, b)) ->
                diverged
                  (Printf.sprintf "core counter %s differs: switch=%d \
                                   closure=%d" k a b)
            | None -> (
                match (sw.observables, cl.observables) with
                | Some a, Some b -> (
                    match Workloads.Observables.diff a b with
                    | None -> None
                    | Some diff ->
                        diverged ("reachable heap differs: " ^ diff))
                | _ -> diverged "a run captured no observables"))
      end

(* Hardware-prefetcher cross-check: the headline configuration re-run
   under each hardware prefetch model (none, stream, RPT). The hardware
   prefetcher lives entirely below the architectural surface: program
   output and the statics-reachable heap graph must be identical across
   the three models — only cycles and memory-system counters may move. A
   model that changes what the program computes (or crashes it) is a
   co-simulation bug — the class the [fault_hw_desync] self-test
   injects, invisible to every same-machine check above because the
   default matrix never varies the hardware model. *)
let hw_crosscheck ~opts ?tweak_options workload =
  let models =
    [
      Memsim.Config.Hw_none;
      Memsim.Config.default_stream;
      Memsim.Config.default_rpt;
    ]
  in
  let cell_of hw =
    {
      mode = O.Inter_intra;
      standard_passes = true;
      machine =
        { Memsim.Config.pentium4 with Memsim.Config.hw_prefetch = hw };
    }
  in
  let run hw =
    let cell = cell_of hw in
    match
      Workloads.Harness.run ~opts ?tweak_options ~capture_observables:true
        ~mode:cell.mode ~machine:cell.machine workload
    with
    | r -> Ok (cell, Memsim.Config.hw_prefetch_to_string hw, r)
    | exception e -> Error (Crash { cell; message = Printexc.to_string e })
  in
  let runs = List.map run models in
  match List.find_map (function Error f -> Some f | Ok _ -> None) runs with
  | Some f -> Some f
  | None -> (
      match
        List.filter_map (function Ok x -> Some x | Error _ -> None) runs
      with
      | [] | [ _ ] -> None
      | (_, _, base) :: rest ->
          let compare_to_base (cell, hw, (r : Workloads.Harness.run_result))
              =
            if r.output <> base.Workloads.Harness.output then
              Some
                (Hw_divergence
                   {
                     cell;
                     hw;
                     message = "program output differs from the hw=none run";
                   })
            else
              match (base.observables, r.observables) with
              | Some a, Some b -> (
                  match Workloads.Observables.diff a b with
                  | None -> None
                  | Some diff ->
                      Some
                        (Hw_divergence
                           {
                             cell;
                             hw;
                             message =
                               "reachable heap differs from the hw=none \
                                run: " ^ diff;
                           }))
              | _ ->
                  Some
                    (Hw_divergence
                       { cell; hw; message = "a run captured no observables" })
          in
          List.find_map compare_to_base rest)

(* Prediction cross-check: the headline configuration re-run under the
   static and hybrid prediction tiers, compared to the inspect-tier run.
   Tiers may only change *when* a stride is discovered (compile time,
   inspection iterations) — never what the program computes: output and
   the statics-reachable heap graph must match, and no static claim may
   turn into a faulting prefetch address. Per-site disagreement between
   static claims and inspected strides is a scored metric ([spf_lint
   --predict]), not a failure; divergence here is a crash class — the one
   the [fault_prediction_desync] self-test injects, invisible to every
   check above because the default matrix never leaves the inspect
   tier. *)
let prediction_crosscheck ~opts ?tweak_options workload =
  let cell =
    {
      mode = O.Inter_intra;
      standard_passes = true;
      machine = Memsim.Config.pentium4;
    }
  in
  let run tier =
    let opts = { opts with O.prediction = tier } in
    match
      Workloads.Harness.run ~opts ?tweak_options ~capture_observables:true
        ~mode:cell.mode ~machine:cell.machine workload
    with
    | r -> Ok r
    | exception e ->
        Error
          (Crash
             {
               cell;
               message =
                 Printf.sprintf "under prediction tier %s: %s"
                   (O.prediction_name tier) (Printexc.to_string e);
             })
  in
  match run O.Inspect with
  | Error f -> Some f
  | Ok base ->
      let check_tier tier =
        let name = O.prediction_name tier in
        let diverged message =
          Some (Prediction_divergence { cell; tier = name; message })
        in
        match run tier with
        | Error f -> Some f
        | Ok r ->
            if r.Workloads.Harness.output <> base.Workloads.Harness.output
            then diverged "program output differs from the inspect-tier run"
            else if r.faulting_prefetches > 0 then
              diverged
                (Printf.sprintf
                   "%d prefetch op(s) computed a negative address"
                   r.faulting_prefetches)
            else (
              match (base.observables, r.observables) with
              | Some a, Some b -> (
                  match Workloads.Observables.diff a b with
                  | None -> None
                  | Some diff ->
                      diverged
                        ("reachable heap differs from the inspect-tier \
                          run: " ^ diff))
              | _ -> diverged "a run captured no observables")
      in
      (match check_tier O.Static with
      | Some f -> Some f
      | None -> check_tier O.Hybrid)

(* Monitor cross-check: the headline configuration re-run with the live
   windowed monitor armed (4096-cycle windows — small enough that even
   tiny fuzzed programs close several) against its plain twin. The
   monitor must observe without participating: program output, cycles
   and every core counter bit-identical to the unmonitored run — the
   class of bug the [fault_monitor_desync] self-test injects (a
   window-boundary fire that charges a cycle), invisible to every check
   above because the default matrix never arms a monitor. And the
   monitor's own books must balance: the per-window stats deltas and
   attribution outcomes must sum back exactly to the end-of-run totals
   (the tail partial window included), else windowing lost or invented
   events. *)
let monitor_crosscheck ~opts ?tweak_options workload =
  let cell =
    {
      mode = O.Inter_intra;
      standard_passes = true;
      machine = Memsim.Config.pentium4;
    }
  in
  let run_plain () =
    Workloads.Harness.run ~opts ?tweak_options ~mode:cell.mode
      ~machine:cell.machine workload
  in
  let run_monitored () =
    Workloads.Harness.run ~opts ?tweak_options ~monitor:4096 ~mode:cell.mode
      ~machine:cell.machine workload
  in
  match (run_plain (), run_monitored ()) with
  | exception e -> Some (Crash { cell; message = Printexc.to_string e })
  | plain, mon -> (
      let diverged message = Some (Monitor_divergence { cell; message }) in
      if plain.Workloads.Harness.output <> mon.Workloads.Harness.output then
        diverged "program output differs"
      else if plain.cycles <> mon.cycles then
        diverged
          (Printf.sprintf "cycles differ: plain=%d monitored=%d" plain.cycles
             mon.cycles)
      else if
        plain.faulting_prefetches <> mon.faulting_prefetches
        || plain.spec_guard_trips <> mon.spec_guard_trips
      then diverged "fault/guard counters differ"
      else
        match
          List.find_opt
            (fun ((k, a), (k', b)) -> k <> k' || a <> b)
            (List.combine
               (Memsim.Stats.core_alist plain.stats)
               (Memsim.Stats.core_alist mon.stats))
        with
        | Some ((k, a), (_, b)) ->
            diverged
              (Printf.sprintf "core counter %s differs: plain=%d monitored=%d"
                 k a b)
        | None -> (
            match mon.monitor with
            | None -> diverged "monitored run produced no monitor report"
            | Some rep -> (
                let windows = rep.Monitor.Report.windows in
                let totals = Memsim.Stats.core_alist mon.stats in
                let sums = Array.make (List.length totals) 0 in
                Array.iter
                  (fun (w : Monitor.Window.t) ->
                    List.iteri
                      (fun i (_, v) -> sums.(i) <- sums.(i) + v)
                      (Memsim.Stats.core_alist w.Monitor.Window.stats))
                  windows;
                let rec first_mismatch i = function
                  | [] -> None
                  | (k, total) :: rest ->
                      if sums.(i) <> total then Some (k, sums.(i), total)
                      else first_mismatch (i + 1) rest
                in
                match first_mismatch 0 totals with
                | Some (k, s, total) ->
                    diverged
                      (Printf.sprintf
                         "window deltas for %s sum to %d but the run total \
                          is %d"
                         k s total)
                | None -> (
                    match mon.effectiveness with
                    | None ->
                        diverged "monitored run produced no attribution"
                    | Some eff -> (
                        let t = eff.Workloads.Effectiveness.totals in
                        let sum f =
                          Array.fold_left (fun a w -> a + f w) 0 windows
                        in
                        let books =
                          [
                            ( "issued",
                              sum (fun (w : Monitor.Window.t) -> w.issued),
                              t.Memsim.Attribution.issued );
                            ( "useful",
                              sum (fun (w : Monitor.Window.t) -> w.useful),
                              t.useful );
                            ( "late",
                              sum (fun (w : Monitor.Window.t) -> w.late),
                              t.late );
                            ( "useless",
                              sum (fun (w : Monitor.Window.t) -> w.useless),
                              t.useless );
                          ]
                        in
                        match
                          List.find_opt (fun (_, s, tot) -> s <> tot) books
                        with
                        | Some (k, s, tot) ->
                            diverged
                              (Printf.sprintf
                                 "window %s deltas sum to %d but the \
                                  attribution total is %d"
                                 k s tot)
                        | None -> None)))))

let check ?(cells = default_cells) ?tweak_options ?tweak_prefetch ~source
    ~heap_limit_bytes () =
  match
    (* Surface front-end failures as their own verdict: the generator is
       supposed to emit well-typed programs, so a compile error is a
       generator bug (or, during shrinking, an invalid candidate). *)
    try
      Ok (ignore (Minijava.Compile.program_of_source_exn source))
    with e -> Error (Printexc.to_string e)
  with
  | Error msg -> Fail (Compile_error msg)
  | Ok () -> (
      let workload = workload_of ~source ~heap_limit_bytes in
      let opts =
        match tweak_prefetch with
        | Some f -> f Strideprefetch.Options.default
        | None -> Strideprefetch.Options.default
      in
      let run cell =
        let side_effect = ref None in
        let compile_observer ~meth ~before ~after =
          if !side_effect = None then
            match Workloads.Observables.diff before after with
            | None -> ()
            | Some diff ->
                side_effect :=
                  Some
                    (Inspection_side_effect
                       {
                         cell;
                         meth = meth.Vm.Classfile.method_name;
                         diff;
                       })
        in
        match
          Workloads.Harness.run ~opts ~standard_passes:cell.standard_passes
            ~compile_observer ?tweak_options ~capture_observables:true
            ~mode:cell.mode ~machine:cell.machine workload
        with
        | exception Jit.Pipeline.Verification_failed
            { pass_name; method_name; message } ->
            Error
              (Lint_violation
                 {
                   cell;
                   meth = method_name;
                   message = Printf.sprintf "after pass %s: %s" pass_name message;
                 })
        | exception e ->
            Error (Crash { cell; message = Printexc.to_string e })
        | r -> (
            match !side_effect with
            | Some f -> Error f
            | None ->
                if r.faulting_prefetches > 0 then
                  Error
                    (Faulting_prefetch
                       { cell; count = r.faulting_prefetches })
                else (
                  match stats_invariants cell r with
                  | Some f -> Error f
                  | None -> (
                      match lint_failure ~opts cell r with
                      | Some f -> Error f
                      | None -> Ok r)))
      in
      match cells with
      | [] -> Pass { cells_run = 0 }
      | baseline_cell :: rest -> (
          match run baseline_cell with
          | Error f -> Fail f
          | Ok baseline ->
              let compare_to_baseline cell (r : Workloads.Harness.run_result)
                  =
                if r.output <> baseline.output then
                  Some
                    (Output_divergence
                       {
                         cell;
                         baseline_output = baseline.output;
                         output = r.output;
                       })
                else
                  match (baseline.observables, r.observables) with
                  | Some a, Some b -> (
                      match Workloads.Observables.diff a b with
                      | None -> None
                      | Some diff -> Some (Heap_divergence { cell; diff }))
                  | _ -> None
              in
              let rec loop n = function
                | [] -> (
                    (* Differential matrix clean: append the telemetry
                       observer-effect pair, the switch-vs-closure
                       engine pair, the hardware-model triple, the
                       prediction-tier triple, then the monitored twin
                       pair. *)
                    match telemetry_crosscheck ~opts ?tweak_options workload with
                    | Some f -> Fail f
                    | None -> (
                        match
                          engine_crosscheck ~opts ?tweak_options workload
                        with
                        | Some f -> Fail f
                        | None -> (
                            match
                              hw_crosscheck ~opts ?tweak_options workload
                            with
                            | Some f -> Fail f
                            | None -> (
                                match
                                  prediction_crosscheck ~opts ?tweak_options
                                    workload
                                with
                                | Some f -> Fail f
                                | None -> (
                                    match
                                      monitor_crosscheck ~opts ?tweak_options
                                        workload
                                    with
                                    | Some f -> Fail f
                                    | None -> Pass { cells_run = n + 12 })))))
                | cell :: cells -> (
                    match run cell with
                    | Error f -> Fail f
                    | Ok r -> (
                        match compare_to_baseline cell r with
                        | Some f -> Fail f
                        | None -> loop (n + 1) cells))
              in
              loop 1 rest))
