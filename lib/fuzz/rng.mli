(** Deterministic pseudo-random number generator (splitmix64).

    Self-contained so that a published fuzzing seed reproduces the same
    MiniJava program on any build, independent of the OCaml stdlib's
    [Random] implementation. *)

type t

val create : seed:int -> t

val mix : int -> int
(** One splitmix64 scrambling step on a raw integer: derives the
    per-program seed from [campaign_seed + program_index] so that
    [spf_fuzz --seed (campaign_seed + i) --count 1] replays program [i]
    of a campaign exactly. *)

val int : t -> int -> int
(** [int t bound] is uniform-ish in [\[0, bound)]; [0] when [bound <= 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] is in [\[lo, hi\]] inclusive. *)

val bool : t -> bool

val chance : t -> int -> bool
(** [chance t p] is true with probability [p]%. *)

val choose : t -> 'a array -> 'a
(** Uniform pick; raises [Invalid_argument] on an empty array. *)
