(** Seeded random MiniJava program generator.

    Emits programs shaped like the paper's workloads — classes with
    int/reference/array fields, linked lists and object arrays built in
    allocation order, and hot kernel methods that chase pointers, walk
    arrays (with unit and non-unit steps), run low-trip-count nested
    loops, and churn allocations for GC pressure — i.e. exactly the
    shapes that exercise LDG edges, inter-/intra-iteration stride
    detection, small-trip-count promotion, and sliding compaction.

    Programs are well-typed by construction (the test suite additionally
    compiles every generated program through the full front end), free of
    division-by-zero / negative-size / null-dereference hazards, and
    deterministic: the same seed yields the same program forever. Kernels
    are separate static methods invoked repeatedly from [main] so they
    cross the JIT's hot threshold and actually get rewritten. *)

type t = {
  seed : int;
  program : Minijava.Ast.program;
  heap_limit_bytes : int;
      (** chosen small enough that allocation-churn kernels trigger the
          sliding compactor mid-run on some programs *)
}

val generate : seed:int -> max_size:int -> t
(** [max_size] scales class count, structure sizes, kernel count and
    loop trip counts; 6–10 is a good fuzzing range. *)

val source : t -> string
(** The program rendered by {!Minijava.Pretty}. *)
