(* Campaign driver: generate -> check -> shrink, with the seed protocol
   that makes every finding reproducible from two integers.

   Program [i] of a campaign with seed [s] is generated from the derived
   seed [s + i] (Gen applies a splitmix64 scramble internally), so
   [spf_fuzz --seed (s + i) --count 1] replays exactly that program. *)

type finding = {
  seed : int;  (** the derived per-program seed: campaign seed + index *)
  index : int;
  failure : Oracle.failure;
  source : string;
  shrunk : Shrink.result option;
}

type campaign = {
  campaign_seed : int;
  programs_run : int;
  cells_per_program : int;
  findings : finding list;
}

(* Collapse every number (decimal or 0x-hex) in a crash message to [#] so
   that addresses and counters do not block matching, while the kind of
   error and the method it happened in still must agree. *)
let normalize_message msg =
  let b = Buffer.create (String.length msg) in
  let n = String.length msg in
  let is_hex c =
    (c >= '0' && c <= '9')
    || (c >= 'a' && c <= 'f')
    || (c >= 'A' && c <= 'F')
  in
  let i = ref 0 in
  while !i < n do
    let c = msg.[!i] in
    if c >= '0' && c <= '9' then begin
      incr i;
      if !i < n && (msg.[!i] = 'x' || msg.[!i] = 'X') then incr i;
      while !i < n && is_hex msg.[!i] do
        incr i
      done;
      Buffer.add_char b '#'
    end
    else begin
      Buffer.add_char b c;
      incr i
    end
  done;
  Buffer.contents b

let same_class (a : Oracle.failure) (b : Oracle.failure) =
  match (a, b) with
  | Oracle.Crash { message = ma; _ }, Oracle.Crash { message = mb; _ } ->
      (* shrinking a crash must preserve the crash, not merely crash
         somehow: an unrelated runtime error in a mangled candidate would
         otherwise hijack the minimization *)
      normalize_message ma = normalize_message mb
  | Oracle.Compile_error _, Oracle.Compile_error _
  | Oracle.Output_divergence _, Oracle.Output_divergence _
  | Oracle.Heap_divergence _, Oracle.Heap_divergence _
  | Oracle.Inspection_side_effect _, Oracle.Inspection_side_effect _
  | Oracle.Stats_violation _, Oracle.Stats_violation _
  | Oracle.Faulting_prefetch _, Oracle.Faulting_prefetch _
  | Oracle.Lint_violation _, Oracle.Lint_violation _
  | Oracle.Telemetry_divergence _, Oracle.Telemetry_divergence _
  | Oracle.Engine_divergence _, Oracle.Engine_divergence _
  | Oracle.Hw_divergence _, Oracle.Hw_divergence _
  | Oracle.Prediction_divergence _, Oracle.Prediction_divergence _
  | Oracle.Monitor_divergence _, Oracle.Monitor_divergence _
  | Oracle.Diff_divergence _, Oracle.Diff_divergence _ ->
      true
  | _ -> false

let check_seed ?cells ?tweak_options ?tweak_prefetch ~seed ~max_size () =
  let g = Gen.generate ~seed ~max_size in
  let verdict =
    Oracle.check ?cells ?tweak_options ?tweak_prefetch ~source:(Gen.source g)
      ~heap_limit_bytes:g.Gen.heap_limit_bytes ()
  in
  (g, verdict)

let shrink_finding ?cells ?tweak_options ?tweak_prefetch ?max_attempts
    ~heap_limit_bytes
    ~(failure : Oracle.failure) program =
  (* A candidate counts as "still failing" only if it fails in the same
     class: shrinking an output divergence must not wander off into some
     unrelated compile error of a mangled candidate. *)
  let is_failing source =
    match
      Oracle.check ?cells ?tweak_options ?tweak_prefetch ~source
        ~heap_limit_bytes ()
    with
    | Oracle.Pass _ -> false
    | Oracle.Fail f -> same_class f failure
  in
  Shrink.run ?max_attempts ~is_failing program

let run ?cells ?tweak_options ?tweak_prefetch ?(shrink = true)
    ?shrink_attempts
    ?(progress = fun ~index:_ ~seed:_ -> ()) ~campaign_seed ~count ~max_size
    () =
  (* Matrix cells plus the appended cross-checks: the plain-vs-
     telemetry+profile pair, the switch-vs-closure engine pair, the
     hardware-model triple (none / stream / RPT), and the prediction-tier
     triple (inspect / static / hybrid). *)
  let cells_per_program =
    (match cells with
    | Some cs -> List.length cs
    | None -> List.length Oracle.default_cells)
    + 10
  in
  let findings = ref [] in
  for index = 0 to count - 1 do
    let seed = campaign_seed + index in
    progress ~index ~seed;
    let g, verdict =
      check_seed ?cells ?tweak_options ?tweak_prefetch ~seed ~max_size ()
    in
    match verdict with
    | Oracle.Pass _ -> ()
    | Oracle.Fail failure ->
        let shrunk =
          if shrink then
            Some
              (shrink_finding ?cells ?tweak_options ?tweak_prefetch
                 ?max_attempts:shrink_attempts
                 ~heap_limit_bytes:g.Gen.heap_limit_bytes ~failure
                 g.Gen.program)
          else None
        in
        findings :=
          { seed; index; failure; source = Gen.source g; shrunk }
          :: !findings
  done;
  {
    campaign_seed;
    programs_run = count;
    cells_per_program;
    findings = List.rev !findings;
  }

let pp_finding ppf (f : finding) =
  Format.fprintf ppf
    "@[<v>== FAILURE (replay: spf_fuzz --seed %d --count 1) ==@,%s@,@,\
     -- program (seed %d, index %d) --@,%s@]"
    f.seed
    (Oracle.describe f.failure)
    f.seed f.index f.source;
  match f.shrunk with
  | None -> ()
  | Some s ->
      Format.fprintf ppf
        "@,@[<v>-- shrunk reproducer (%d steps, %d oracle calls) --@,%s@]"
        s.Shrink.steps s.Shrink.attempts s.Shrink.source
