(* splitmix64: tiny, fast, and excellent dispersion for sequential seeds —
   exactly what deriving per-program seeds from [campaign_seed + index]
   needs. Reference: Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators" (OOPSLA 2014). *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let scramble z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  scramble t.state

let mix n = Int64.to_int (scramble (Int64.add (Int64.of_int n) golden))

let int t bound =
  if bound <= 0 then 0
  else
    (* Take the high-quality top bits, drop the sign, fold by modulo: the
       tiny modulo bias is irrelevant for fuzzing. *)
    let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
    v mod bound

let range t lo hi = if hi <= lo then lo else lo + int t (hi - lo + 1)
let bool t = int t 2 = 1
let chance t p = int t 100 < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))
