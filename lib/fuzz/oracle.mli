(** Differential oracle for the stride-prefetching pass.

    Runs one MiniJava program under a matrix of configurations (prefetch
    mode x standard-pass pipeline x machine) and checks that the pass is
    {e observably invisible}: every cell must reproduce the baseline
    cell's stdout and statics-reachable heap graph, no prefetch operation
    may compute a negative (faulting) address, object inspection must
    leave the real heap and statics bit-identical across every JIT
    compilation, and the memory-system counters must satisfy structural
    invariants (misses bounded by accesses, no prefetch work in mode
    [Off], ...). *)

type cell = {
  mode : Strideprefetch.Options.mode;
  standard_passes : bool;
      (** [true]: full JIT pipeline; [false]: prefetch pass alone *)
  machine : Memsim.Config.machine;
}

val default_cells : cell list
(** 3 modes x {pipeline, bare} x {pentium4, athlon_mp} = 12 cells, with
    the baseline (Off / pipeline / pentium4) first. *)

val cell_name : cell -> string
(** E.g. ["inter+intra/pipeline/pentium4"]. *)

type failure =
  | Compile_error of string
      (** the front end rejected the program — a generator bug, or an
          invalid shrink candidate *)
  | Crash of { cell : cell; message : string }
  | Output_divergence of {
      cell : cell;
      baseline_output : string;
      output : string;
    }
  | Heap_divergence of { cell : cell; diff : string }
  | Inspection_side_effect of { cell : cell; meth : string; diff : string }
  | Stats_violation of { cell : cell; message : string }
  | Faulting_prefetch of { cell : cell; count : int }
  | Lint_violation of { cell : cell; meth : string; message : string }
      (** a JIT-transformed method body is not clean under the
          [Analysis] stack (type-state, prefetch safety, plan-aware
          lints); warnings count — correct codegen emits neither
          redundant prefetches nor dead spec-load registers *)
  | Telemetry_divergence of { cell : cell; message : string }
      (** the observability stack perturbed the simulation: a
          [~telemetry:true ~profile:true] run diverged from its plain
          twin in output, cycles or a core stats counter — or the
          attribution books failed to balance
          (issued <> cancelled + redundant + useful + late + useless),
          or the profiler's cycle bins did not sum to the run's cycle
          count *)
  | Engine_divergence of { cell : cell; message : string }
      (** the switch and closure-compiled engines disagreed on the same
          program — output, cycles, a core stats counter, a VM-side
          counter (GC count, methods compiled, fault/guard trips), the
          reachable heap, or their crash behaviour. Bit-identity across
          engines is their contract (lib/vm/engine.ml); crashing runs
          are compared on the crash alone, never on post-crash stats *)
  | Hw_divergence of { cell : cell; hw : string; message : string }
      (** a hardware-prefetcher model ([hw] is its spec string, e.g.
          ["rpt:64x2@4"]) perturbed the architectural state: the headline
          configuration re-run under hw=none, the stream unit and the
          RPT unit must agree on program output and the
          statics-reachable heap — the hardware prefetcher may only move
          cycles and memory-system counters *)
  | Prediction_divergence of { cell : cell; tier : string; message : string }
      (** a static/hybrid prediction tier changed what the program
          computes: the headline configuration re-run under
          [prediction = Static] and [Hybrid] must reproduce the
          inspect-tier run's output and statics-reachable heap with no
          faulting prefetch addresses — the tiers may only change when a
          stride is discovered (compile time, inspection iterations).
          Per-site static-vs-inspected disagreement is a scored metric
          ([spf_lint --predict]), never this failure *)
  | Monitor_divergence of { cell : cell; message : string }
      (** the live windowed monitor perturbed the simulation or kept bad
          books: the headline configuration re-run with a 4096-cycle
          monitor armed must be bit-identical to its plain twin (output,
          cycles, every core counter — the monitor observes only), and
          the monitor's per-window stats deltas and attribution outcomes
          must sum back exactly to the end-of-run totals, tail partial
          window included *)
  | Diff_divergence of { cell : cell; message : string }
      (** the differential-diagnosis join (lib/diff) broke its identity
          law on the attributed run: a snapshot diffed against itself
          must produce an empty blame — zero total delta, zero per-loop
          deltas — with the blame conservation law holding exactly.
          Checked on every fuzzed program, so a join bug (lost loop key,
          bad bin order) can't hide behind hand-picked workloads *)

type verdict = Pass of { cells_run : int } | Fail of failure

val describe : failure -> string
(** Multi-line human-readable rendering, used in fuzzing reports. *)

val check :
  ?cells:cell list ->
  ?tweak_options:(Vm.Interp.options -> Vm.Interp.options) ->
  ?tweak_prefetch:(Strideprefetch.Options.t -> Strideprefetch.Options.t) ->
  source:string ->
  heap_limit_bytes:int ->
  unit ->
  verdict
(** Compile [source] once (to reject front-end failures early), then run
    each cell and compare to the first. Once the whole differential
    matrix is clean, one extra pair is run at the headline configuration
    (inter+intra / pipeline / pentium4), plain vs
    [~telemetry:true ~profile:true], and compared bit-for-bit on output,
    cycles and every core stats counter, with the attribution and
    profiler conservation laws checked on the observed twin — the
    observer-effect check. A second extra pair then re-runs the headline
    configuration on the reference switch engine vs the closure-compiled
    engine and demands bit-identity (output, cycles, every core and
    VM-side counter, the reachable heap; crashes must match exactly and
    are compared on the crash alone). Finally the headline configuration
    is re-run under each hardware prefetch model (none / stream / RPT)
    and the three runs must agree on program output and reachable heap —
    the hardware co-simulation axis. Last, the headline configuration is
    re-run under the [Static] and [Hybrid] prediction tiers, which must
    reproduce the inspect-tier output and reachable heap with no
    faulting prefetches — the prediction-crosscheck axis. Finally the
    headline configuration is re-run with the live windowed monitor
    armed (4096-cycle windows) and must be bit-identical to its plain
    twin, with window books that sum back to the run totals — the
    monitor-crosscheck axis. The three pairs and two triples count 12
    toward [cells_run]. [tweak_options] edits the
    interpreter options in every cell — the hook the self-test uses to
    inject faults (e.g. [unguarded_spec_loads]) and prove the oracle
    catches them. [tweak_prefetch] likewise edits the prefetch-pass
    options (each cell's mode still overrides the [mode] field) — e.g.
    setting [fault_skip_guard_dominance] to prove the lint cell catches
    a guard-dominance miscompile that is invisible to every differential
    check. *)
