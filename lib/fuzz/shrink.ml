(* Greedy AST-level shrinker.

   One-step candidates, coarse to fine: drop a whole class, drop a
   method, delete one statement (DFS preorder), unwrap an [if] into one
   of its branches, halve an integer literal. Candidates that no longer
   compile are discarded (shrinking never needs to understand use-def
   relationships — the front end does), and every accepted step strictly
   decreases the measure (classes, methods, statements, literal mass)
   lexicographically, so the loop terminates even without a budget. *)

module A = Minijava.Ast

let measure (prog : A.program) =
  let stmts = ref 0 and lits = ref 0 in
  let rec expr (e : A.expr) =
    match e.A.desc with
    | A.Int_lit n -> lits := !lits + abs n
    | A.Null_lit | A.This | A.Var _ -> ()
    | A.Field (b, _) | A.Length b | A.Unop_neg b | A.Unop_not b -> expr b
    | A.Static_field _ -> ()
    | A.Index (a, b) | A.Binop (_, a, b) ->
        expr a;
        expr b
    | A.Call (r, _, args) ->
        expr r;
        List.iter expr args
    | A.Bare_call (_, args)
    | A.Static_call (_, _, args)
    | A.New_object (_, args) ->
        List.iter expr args
    | A.New_int_array n | A.New_class_array (_, n) -> expr n
  in
  let lvalue = function
    | A.Lvar _ -> ()
    | A.Lfield (b, _) -> expr b
    | A.Lstatic _ -> ()
    | A.Lindex (a, b) ->
        expr a;
        expr b
  in
  let rec stmt (st : A.stmt) =
    incr stmts;
    match st.A.sdesc with
    | A.Decl (_, _, e) | A.Print e | A.Expr_stmt e -> expr e
    | A.Assign (lv, e) ->
        lvalue lv;
        expr e
    | A.If (c, t, els) ->
        expr c;
        List.iter stmt t;
        List.iter stmt els
    | A.While (c, b) ->
        expr c;
        List.iter stmt b
    | A.For (init, c, upd, b) ->
        Option.iter stmt init;
        expr c;
        Option.iter stmt upd;
        List.iter stmt b
    | A.Return e -> Option.iter expr e
    | A.Break | A.Continue -> ()
    | A.Block b -> List.iter stmt b
  in
  let methods = ref 0 and fields = ref 0 in
  List.iter
    (fun (c : A.class_decl) ->
      fields := !fields + List.length c.A.class_fields;
      List.iter
        (fun (m : A.method_decl) ->
          incr methods;
          List.iter stmt m.A.method_body)
        c.A.class_methods)
    prog;
  (List.length prog, !methods, !fields, !stmts, !lits)

(* Rewrite the statement with preorder index [target] throughout the whole
   program; [f] returns the replacement list. Header statements of [for]
   loops are left alone (deleting an update would loop forever; the whole
   [for] can be deleted as a unit instead). *)
let rewrite_stmt target f (prog : A.program) =
  let ctr = ref 0 in
  let rec stmts ss = List.concat_map stmt ss
  and stmt (st : A.stmt) =
    let i = !ctr in
    incr ctr;
    if i = target then f st
    else
      let sdesc =
        match st.A.sdesc with
        | A.If (c, t, els) -> A.If (c, stmts t, stmts els)
        | A.While (c, b) -> A.While (c, stmts b)
        | A.For (init, c, upd, b) -> A.For (init, c, upd, stmts b)
        | A.Block b -> A.Block (stmts b)
        | d -> d
      in
      [ { st with A.sdesc } ]
  in
  List.map
    (fun (c : A.class_decl) ->
      {
        c with
        A.class_methods =
          List.map
            (fun (m : A.method_decl) ->
              { m with A.method_body = stmts m.A.method_body })
            c.A.class_methods;
      })
    prog

(* Halve the integer literal with preorder index [target] (counting only
   literals of magnitude >= 2). *)
let halve_literal target (prog : A.program) =
  let ctr = ref 0 in
  let rec expr (e : A.expr) =
    match e.A.desc with
    | A.Int_lit n when abs n >= 2 ->
        let i = !ctr in
        incr ctr;
        if i = target then { e with A.desc = A.Int_lit (n / 2) } else e
    | A.Int_lit _ | A.Null_lit | A.This | A.Var _ | A.Static_field _ -> e
    | A.Field (b, f) -> { e with A.desc = A.Field (expr b, f) }
    | A.Length b -> { e with A.desc = A.Length (expr b) }
    | A.Unop_neg b -> { e with A.desc = A.Unop_neg (expr b) }
    | A.Unop_not b -> { e with A.desc = A.Unop_not (expr b) }
    | A.Index (a, b) -> { e with A.desc = A.Index (expr a, expr b) }
    | A.Binop (op, a, b) -> { e with A.desc = A.Binop (op, expr a, expr b) }
    | A.Call (r, m, args) ->
        { e with A.desc = A.Call (expr r, m, List.map expr args) }
    | A.Bare_call (m, args) ->
        { e with A.desc = A.Bare_call (m, List.map expr args) }
    | A.Static_call (c, m, args) ->
        { e with A.desc = A.Static_call (c, m, List.map expr args) }
    | A.New_object (c, args) ->
        { e with A.desc = A.New_object (c, List.map expr args) }
    | A.New_int_array n -> { e with A.desc = A.New_int_array (expr n) }
    | A.New_class_array (c, n) ->
        { e with A.desc = A.New_class_array (c, expr n) }
  in
  let lvalue = function
    | A.Lfield (b, f) -> A.Lfield (expr b, f)
    | A.Lindex (a, b) -> A.Lindex (expr a, expr b)
    | lv -> lv
  in
  let rec stmt (st : A.stmt) =
    let sdesc =
      match st.A.sdesc with
      | A.Decl (ty, x, e) -> A.Decl (ty, x, expr e)
      | A.Assign (lv, e) -> A.Assign (lvalue lv, expr e)
      | A.If (c, t, els) -> A.If (expr c, List.map stmt t, List.map stmt els)
      | A.While (c, b) -> A.While (expr c, List.map stmt b)
      | A.For (init, c, upd, b) ->
          A.For
            (Option.map stmt init, expr c, Option.map stmt upd,
             List.map stmt b)
      | A.Return e -> A.Return (Option.map expr e)
      | A.Expr_stmt e -> A.Expr_stmt (expr e)
      | A.Print e -> A.Print (expr e)
      | A.Block b -> A.Block (List.map stmt b)
      | (A.Break | A.Continue) as d -> d
    in
    { st with A.sdesc }
  in
  List.map
    (fun (c : A.class_decl) ->
      {
        c with
        A.class_methods =
          List.map
            (fun (m : A.method_decl) ->
              { m with A.method_body = List.map stmt m.A.method_body })
            c.A.class_methods;
      })
    prog

let candidates (prog : A.program) : A.program list =
  let _, _, _, n_stmts, _ = measure prog in
  let n_lits =
    (* count literals of magnitude >= 2 (the ones [halve_literal] indexes) *)
    let ctr = ref 0 in
    let rec expr (e : A.expr) =
      (match e.A.desc with A.Int_lit n when abs n >= 2 -> incr ctr | _ -> ());
      match e.A.desc with
      | A.Int_lit _ | A.Null_lit | A.This | A.Var _ | A.Static_field _ -> ()
      | A.Field (b, _) | A.Length b | A.Unop_neg b | A.Unop_not b -> expr b
      | A.Index (a, b) | A.Binop (_, a, b) ->
          expr a;
          expr b
      | A.Call (r, _, args) ->
          expr r;
          List.iter expr args
      | A.Bare_call (_, args)
      | A.Static_call (_, _, args)
      | A.New_object (_, args) ->
          List.iter expr args
      | A.New_int_array n | A.New_class_array (_, n) -> expr n
    in
    let lvalue = function
      | A.Lfield (b, _) -> expr b
      | A.Lindex (a, b) ->
          expr a;
          expr b
      | _ -> ()
    in
    let rec stmt (st : A.stmt) =
      match st.A.sdesc with
      | A.Decl (_, _, e) | A.Print e | A.Expr_stmt e -> expr e
      | A.Assign (lv, e) ->
          lvalue lv;
          expr e
      | A.If (c, t, els) ->
          expr c;
          List.iter stmt t;
          List.iter stmt els
      | A.While (c, b) ->
          expr c;
          List.iter stmt b
      | A.For (init, c, upd, b) ->
          Option.iter stmt init;
          expr c;
          Option.iter stmt upd;
          List.iter stmt b
      | A.Return e -> Option.iter expr e
      | A.Break | A.Continue -> ()
      | A.Block b -> List.iter stmt b
    in
    List.iter
      (fun (c : A.class_decl) ->
        List.iter
          (fun (m : A.method_decl) -> List.iter stmt m.A.method_body)
          c.A.class_methods)
      prog;
    !ctr
  in
  let drop_classes =
    List.filter_map
      (fun (c : A.class_decl) ->
        if c.A.class_name = "Main" then None
        else
          Some
            (List.filter
               (fun (c' : A.class_decl) ->
                 c'.A.class_name <> c.A.class_name)
               prog))
      prog
  in
  let drop_methods =
    List.concat_map
      (fun (c : A.class_decl) ->
        List.filter_map
          (fun (m : A.method_decl) ->
            if m.A.is_constructor || m.A.method_name = "main" then None
            else
              Some
                (List.map
                   (fun (c' : A.class_decl) ->
                     if c'.A.class_name <> c.A.class_name then c'
                     else
                       {
                         c' with
                         A.class_methods =
                           List.filter
                             (fun (m' : A.method_decl) ->
                               m'.A.method_name <> m.A.method_name)
                             c'.A.class_methods;
                       })
                   prog))
          c.A.class_methods)
      prog
  in
  let drop_fields =
    List.concat_map
      (fun (c : A.class_decl) ->
        List.map
          (fun (f : A.field_decl) ->
            List.map
              (fun (c' : A.class_decl) ->
                if c'.A.class_name <> c.A.class_name then c'
                else
                  {
                    c' with
                    A.class_fields =
                      List.filter
                        (fun (f' : A.field_decl) ->
                          f'.A.field_name <> f.A.field_name)
                        c'.A.class_fields;
                  })
              prog)
          c.A.class_fields)
      prog
  in
  let delete_stmts =
    List.init n_stmts (fun k -> rewrite_stmt k (fun _ -> []) prog)
  in
  let unwrap_ifs =
    List.concat_map
      (fun k ->
        [
          rewrite_stmt k
            (fun st ->
              match st.A.sdesc with A.If (_, t, _) -> t | _ -> [ st ])
            prog;
          rewrite_stmt k
            (fun st ->
              match st.A.sdesc with A.If (_, _, els) -> els | _ -> [ st ])
            prog;
        ])
      (List.init n_stmts Fun.id)
  in
  let halve = List.init n_lits (fun k -> halve_literal k prog) in
  drop_classes @ drop_methods @ drop_fields @ delete_stmts @ unwrap_ifs
  @ halve

type result = {
  program : A.program;
  source : string;
  steps : int;  (** accepted shrink steps *)
  attempts : int;  (** oracle invocations spent *)
}

let run ?(max_attempts = 400) ~is_failing (prog : A.program) =
  let compiles src =
    try
      ignore (Minijava.Compile.program_of_source_exn src);
      true
    with _ -> false
  in
  let attempts = ref 0 in
  let rec loop prog steps =
    let m = measure prog in
    let try_candidate cand =
      if !attempts >= max_attempts then None
      else if measure cand >= m then None
      else
        let src = Minijava.Pretty.program cand in
        if not (compiles src) then None
        else (
          incr attempts;
          if is_failing src then Some cand else None)
    in
    match List.find_map try_candidate (candidates prog) with
    | Some smaller when !attempts < max_attempts -> loop smaller (steps + 1)
    | Some smaller -> (smaller, steps + 1)
    | None -> (prog, steps)
  in
  let program, steps = loop prog 0 in
  {
    program;
    source = Minijava.Pretty.program program;
    steps;
    attempts = !attempts;
  }
