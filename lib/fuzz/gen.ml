module A = Minijava.Ast

type t = {
  seed : int;
  program : Minijava.Ast.program;
  heap_limit_bytes : int;
}

(* --- AST construction helpers ------------------------------------------- *)

let pos = { Minijava.Token.line = 0; col = 0 }
let e desc = { A.desc; pos }
let s sdesc = { A.sdesc; spos = pos }
let ilit n = e (A.Int_lit n)
let var x = e (A.Var x)
let field base name = e (A.Field (base, name))
let sfield cls name = e (A.Static_field (cls, name))
let _ = sfield
let index base i = e (A.Index (base, i))
let len_of base = e (A.Length base)
let binop op a b = e (A.Binop (op, a, b))
let ( +: ) a b = binop A.Add a b
let ( -: ) a b = binop A.Sub a b
let ( *: ) a b = binop A.Mul a b
let ( <: ) a b = binop A.Lt a b
let ( >: ) a b = binop A.Gt a b
let ( <>: ) a b = binop A.Ne a b
let decl ty name init = s (A.Decl (ty, name, init))
let assign lv v = s (A.Assign (lv, v))
let set_var x v = assign (A.Lvar x) v
let set_field base f v = assign (A.Lfield (base, f)) v
let set_elem base i v = assign (A.Lindex (base, i)) v
let for_to v lo hi_excl step body =
  s
    (A.For
       ( Some (decl A.Tint v (ilit lo)),
         var v <: hi_excl,
         Some (set_var v (var v +: ilit step)),
         body ))
let print_stmt x = s (A.Print x)
let if_ c t f = s (A.If (c, t, f))

(* --- program shape specs ------------------------------------------------- *)

type class_spec = {
  cidx : int;
  has_w : bool;  (** second int field: intra-iteration pattern fodder *)
  other : int option;  (** reference field to another class *)
  data_len : int option;  (** int[] field allocated by the constructor *)
  has_get : bool;
  pad : int;
      (** extra int fields p0..p{pad-1}: object size controls the
          allocation-order stride, and the pass skips strides within half
          a cache line, so small and large classes exercise the skip and
          emit paths respectively *)
}

type structure =
  | S_list of { sidx : int; cls : int; len : int; noise : bool }
  | S_objarray of { sidx : int; cls : int; len : int; link : bool }
  | S_intarray of { sidx : int; len : int; mult : int }

type kernel =
  | K_chase of {
      kidx : int;
      src : structure;  (** an [S_list] *)
      read_w : bool;
      read_other : bool;
      call_get : bool;
      bump_g : bool;
      squash : bool;  (** keep acc bounded with a modulo *)
    }
  | K_objwalk of {
      kidx : int;
      src : structure;  (** an [S_objarray] *)
      step : int;
      follow_next : bool;
      bump_g : bool;
      mid_print : bool;
    }
  | K_intwalk of {
      kidx : int;
      src : structure;  (** an [S_intarray] *)
      step : int;
      inner_trip : int option;  (** low-trip nested loop for promotion *)
    }
  | K_churn of {
      kidx : int;
      src : structure;  (** an [S_list]; new nodes point at its head *)
      trips : int;
      junk_len : int;
    }

let cname i = "N" ^ string_of_int i
let head_var sidx = Printf.sprintf "h%d" sidx
let tail_var sidx = Printf.sprintf "t%d" sidx
let arr_var sidx = Printf.sprintf "a%d" sidx
let ints_var sidx = Printf.sprintf "d%d" sidx
let kname kidx = "k" ^ string_of_int kidx

(* --- class rendering ------------------------------------------------------ *)

let render_class (c : class_spec) : A.class_decl =
  let name = cname c.cidx in
  let fields =
    [ { A.field_ty = A.Tint; field_name = "v"; field_static = false; field_pos = pos } ]
    @ (if c.has_w then
         [ { A.field_ty = A.Tint; field_name = "w"; field_static = false; field_pos = pos } ]
       else [])
    @ [
        {
          A.field_ty = A.Tclass name;
          field_name = "next";
          field_static = false;
          field_pos = pos;
        };
      ]
    @ (match c.other with
      | Some j ->
          [
            {
              A.field_ty = A.Tclass (cname j);
              field_name = "other";
              field_static = false;
              field_pos = pos;
            };
          ]
      | None -> [])
    @ (match c.data_len with
      | Some _ ->
          [
            {
              A.field_ty = A.Tint_array;
              field_name = "data";
              field_static = false;
              field_pos = pos;
            };
          ]
      | None -> [])
    @ List.init c.pad (fun i ->
          {
            A.field_ty = A.Tint;
            field_name = Printf.sprintf "p%d" i;
            field_static = false;
            field_pos = pos;
          })
  in
  let ctor_body =
    [ set_field (e A.This) "v" (var "s0") ]
    @ (if c.has_w then
         [ set_field (e A.This) "w" (var "s0" *: ilit 3 +: ilit 1) ]
       else [])
    @ [ set_field (e A.This) "next" (e A.Null_lit) ]
    @ (match c.other with
      | Some _ -> [ set_field (e A.This) "other" (e A.Null_lit) ]
      | None -> [])
    @ (match c.data_len with
      | Some n ->
          [
            set_field (e A.This) "data" (e (A.New_int_array (ilit n)));
            for_to "q" 0 (ilit n) 1
              [
                set_elem
                  (field (e A.This) "data")
                  (var "q")
                  (var "s0" +: (var "q" *: ilit 5));
              ];
          ]
      | None -> [])
    @ List.init c.pad (fun i ->
          set_field (e A.This) (Printf.sprintf "p%d" i) (var "s0" +: ilit i))
  in
  let ctor =
    {
      A.method_ret = None;
      method_name = "<init>";
      method_static = false;
      method_params = [ (A.Tint, "s0") ];
      method_body = ctor_body;
      method_pos = pos;
      is_constructor = true;
    }
  in
  let methods =
    if c.has_get then
      [
        ctor;
        {
          A.method_ret = Some A.Tint;
          method_name = "get";
          method_static = false;
          method_params = [ (A.Tint, "m") ];
          method_body =
            [
              s
                (A.Return
                   (Some
                      ((field (e A.This) "v" *: var "m")
                      +: if c.has_w then field (e A.This) "w" else ilit 7)));
            ];
          method_pos = pos;
          is_constructor = false;
        };
      ]
    else [ ctor ]
  in
  { A.class_name = name; class_fields = fields; class_methods = methods; class_pos = pos }

(* --- structure build code (statements for main) --------------------------- *)

let build_structure rng classes st =
  match st with
  | S_list { sidx; cls; len; noise } ->
      let h = head_var sidx and t = tail_var sidx and n = cname cls in
      let body =
        [
          set_field (var t) "next" (e (A.New_object (n, [ var "b" *: ilit 2 ])));
          set_var t (field (var t) "next");
        ]
        @
        if noise then
          (* dead allocation between list nodes: non-unit inter-iteration
             strides plus early garbage for the compactor *)
          let j = Printf.sprintf "z%d" sidx in
          [
            decl A.Tint_array j (e (A.New_int_array (ilit (Rng.range rng 2 9))));
            set_elem (var j) (ilit 0) (var "b");
          ]
        else []
      in
      let cross_links =
        (* Scramble-order [other] targets: the [p.other] load site strides
           with the list walk, but the objects it points at sit at
           pseudo-random addresses — the shape that makes a dependent load
           with {e no} stride of its own, i.e. the spec_load +
           guarded-indirect-prefetch path (the paper's intra-iteration
           dereference prefetching). *)
        match (List.nth classes cls).other with
        | Some j when Rng.chance rng 85 ->
            let ot = Printf.sprintf "o%d" sidx
            and cur = Printf.sprintf "c%d" sidx
            and iv = Printf.sprintf "i%d" sidx
            and m = cname j in
            [
              decl (A.Tclass_array m) ot (e (A.New_class_array (m, ilit len)));
              for_to "b" 0 (ilit len) 1
                [ set_elem (var ot) (var "b") (e (A.New_object (m, [ var "b" *: ilit 5 ]))) ];
              decl (A.Tclass n) cur (var h);
              decl A.Tint iv (ilit 0);
              s
                (A.While
                   ( var cur <>: e A.Null_lit,
                     [
                       (* multiplier ~ len/2: successive picks alternate
                          between the two halves of [ot], so no stride
                          reaches the 75% majority and the dependent load
                          stays irregular *)
                       set_field (var cur) "other"
                         (index (var ot)
                            (binop A.Rem
                               ((var iv *: ilit ((len / 2) + 1)) +: ilit 3)
                               (ilit len)));
                       set_var iv (var iv +: ilit 1);
                       set_var cur (field (var cur) "next");
                     ] ));
            ]
        | _ -> []
      in
      [
        decl (A.Tclass n) h (e (A.New_object (n, [ ilit 1 ])));
        decl (A.Tclass n) t (var h);
        for_to "b" 1 (ilit len) 1 body;
      ]
      @ cross_links
  | S_objarray { sidx; cls; len; link } ->
      let a = arr_var sidx and n = cname cls in
      let body =
        [ set_elem (var a) (var "b") (e (A.New_object (n, [ var "b" *: ilit 3 ]))) ]
        @
        if link then
          [
            if_
              (var "b" >: ilit 0)
              [
                set_field
                  (index (var a) (var "b" -: ilit 1))
                  "next"
                  (index (var a) (var "b"));
              ]
              [];
          ]
        else []
      in
      [
        decl (A.Tclass_array n) a (e (A.New_class_array (n, ilit len)));
        for_to "b" 0 (ilit len) 1 body;
      ]
  | S_intarray { sidx; len; mult } ->
      let d = ints_var sidx in
      [
        decl A.Tint_array d (e (A.New_int_array (ilit len)));
        for_to "b" 0 (ilit len) 1
          [ set_elem (var d) (var "b") (var "b" *: ilit mult +: ilit 11) ];
      ]

(* --- kernel methods ------------------------------------------------------- *)

let class_of_structure = function
  | S_list { cls; _ } | S_objarray { cls; _ } -> cls
  | S_intarray _ -> -1

let kernel_method classes k : A.method_decl =
  let ret body name params =
    {
      A.method_ret = Some A.Tint;
      method_name = name;
      method_static = true;
      method_params = params;
      method_body = body;
      method_pos = pos;
      is_constructor = false;
    }
  in
  match k with
  | K_chase { kidx; src; read_w; read_other; call_get; bump_g; squash } ->
      let cls = class_of_structure src in
      let spec = List.nth classes cls in
      let n = cname cls in
      let loop_body =
        [ set_var "acc" (var "acc" +: field (var "p") "v") ]
        @ (if read_w && spec.has_w then
             [ set_var "acc" (var "acc" +: field (var "p") "w") ]
           else [])
        @ (if read_other && spec.other <> None then
             [
               if_
                 (field (var "p") "other" <>: e A.Null_lit)
                 [
                   set_var "acc"
                     (var "acc" +: field (field (var "p") "other") "v");
                 ]
                 [];
             ]
           else [])
        @ (if call_get && spec.has_get then
             [ set_var "acc" (var "acc" +: e (A.Call (var "p", "get", [ ilit 2 ]))) ]
           else [])
        @ (if bump_g then
             [ assign (A.Lfield (var "Main", "g")) (field (var "Main") "g" +: ilit 1) ]
           else [])
        @ (if squash then
             [ set_var "acc" (binop A.Rem (var "acc") (ilit 1048576)) ]
           else [])
        @ [ set_var "p" (field (var "p") "next") ]
      in
      ret
        [
          decl A.Tint "acc" (ilit 0);
          decl (A.Tclass n) "p" (var "h");
          s (A.While (var "p" <>: e A.Null_lit, loop_body));
          s (A.Return (Some (var "acc")));
        ]
        (kname kidx)
        [ (A.Tclass n, "h") ]
  | K_objwalk { kidx; src; step; follow_next; bump_g; mid_print } ->
      let cls = class_of_structure src in
      let n = cname cls in
      let elem = index (var "a") (var "x") in
      let loop_body =
        [
          if_
            (elem <>: e A.Null_lit)
            ([ set_var "acc" (var "acc" +: field elem "v") ]
            @
            if follow_next then
              [
                decl (A.Tclass n) "q" elem;
                if_
                  (field (var "q") "next" <>: e A.Null_lit)
                  [ set_var "acc" (var "acc" +: field (field (var "q") "next") "v") ]
                  [];
              ]
            else [])
            [];
        ]
        @ (if bump_g then
             [ assign (A.Lfield (var "Main", "g")) (field (var "Main") "g" +: ilit 1) ]
           else [])
        @
        if mid_print then
          [ if_ (binop A.Eq (var "x") (ilit 3)) [ print_stmt (var "acc") ] [] ]
        else []
      in
      ret
        [
          decl A.Tint "acc" (ilit 0);
          for_to "x" 0 (len_of (var "a")) step loop_body;
          s (A.Return (Some (var "acc")));
        ]
        (kname kidx)
        [ (A.Tclass_array n, "a") ]
  | K_intwalk { kidx; src = _; step; inner_trip } ->
      let loop_body =
        match inner_trip with
        | None ->
            [ set_var "acc" (var "acc" +: index (var "d") (var "x")) ]
        | Some trip ->
            (* low-trip-count nested loop: its element loads should be
               promoted into this loop's candidate set *)
            [
              for_to "y" 0 (ilit trip) 1
                [
                  set_var "acc"
                    (var "acc"
                    +: (index (var "d") (var "x") *: (var "y" +: ilit 1)));
                ];
            ]
      in
      ret
        [
          decl A.Tint "acc" (ilit 0);
          for_to "x" 0 (len_of (var "d")) step loop_body;
          s (A.Return (Some (var "acc")));
        ]
        (kname kidx)
        [ (A.Tint_array, "d") ]
  | K_churn { kidx; src; trips; junk_len } ->
      let cls = class_of_structure src in
      let n = cname cls in
      ret
        [
          decl A.Tint "acc" (ilit 0);
          for_to "x" 0 (ilit trips) 1
            [
              decl (A.Tclass n) "tmp" (e (A.New_object (n, [ var "x" ])));
              set_field (var "tmp") "next" (var "h");
              set_var "acc" (var "acc" +: field (var "tmp") "v");
              decl A.Tint_array "junk" (e (A.New_int_array (ilit junk_len)));
              set_elem (var "junk") (ilit 0) (var "x");
              set_var "acc" (var "acc" +: index (var "junk") (ilit 0));
            ];
          s (A.Return (Some (var "acc")));
        ]
        (kname kidx)
        [ (A.Tclass n, "h") ]

let kernel_arg = function
  | K_chase { src = S_list { sidx; _ }; _ } -> var (head_var sidx)
  | K_churn { src = S_list { sidx; _ }; _ } -> var (head_var sidx)
  | K_objwalk { src = S_objarray { sidx; _ }; _ } -> var (arr_var sidx)
  | K_intwalk { src = S_intarray { sidx; _ }; _ } -> var (ints_var sidx)
  | _ -> invalid_arg "kernel_arg: kernel/structure mismatch"

let kernel_index = function
  | K_chase { kidx; _ } | K_objwalk { kidx; _ } | K_intwalk { kidx; _ }
  | K_churn { kidx; _ } ->
      kidx

(* --- top-level generation ------------------------------------------------- *)

let gen_class rng ~cidx ~n_classes =
  {
    cidx;
    has_w = Rng.chance rng 60;
    other = (if Rng.chance rng 60 then Some (Rng.int rng n_classes) else None);
    data_len = (if Rng.chance rng 35 then Some (Rng.range rng 3 10) else None);
    has_get = Rng.chance rng 40;
    pad = (if Rng.chance rng 60 then Rng.range rng 4 14 else Rng.int rng 3);
  }

let gen_structure rng ~sidx ~n_classes ~max_size =
  let len = Rng.range rng 4 (min 64 (8 + (5 * max_size))) in
  if sidx = 0 then
    (* always at least one linked list: the paper's canonical shape *)
    S_list { sidx; cls = Rng.int rng n_classes; len; noise = Rng.chance rng 35 }
  else
    match Rng.int rng 3 with
    | 0 -> S_list { sidx; cls = Rng.int rng n_classes; len; noise = Rng.chance rng 35 }
    | 1 -> S_objarray { sidx; cls = Rng.int rng n_classes; len; link = Rng.chance rng 60 }
    | _ -> S_intarray { sidx; len; mult = Rng.range rng 1 9 }

let gen_kernel rng ~kidx ~structures =
  let lists =
    List.filter (function S_list _ -> true | _ -> false) structures
  in
  let objarrays =
    List.filter (function S_objarray _ -> true | _ -> false) structures
  in
  let intarrays =
    List.filter (function S_intarray _ -> true | _ -> false) structures
  in
  let pick xs = List.nth xs (Rng.int rng (List.length xs)) in
  let candidates =
    (if lists <> [] then [ `Chase; `Churn ] else [])
    @ (if objarrays <> [] then [ `Objwalk ] else [])
    @ if intarrays <> [] then [ `Intwalk ] else []
  in
  match Rng.choose rng (Array.of_list candidates) with
  | `Chase ->
      K_chase
        {
          kidx;
          src = pick lists;
          read_w = Rng.chance rng 60;
          read_other = Rng.chance rng 75;
          call_get = Rng.chance rng 30;
          bump_g = Rng.chance rng 40;
          squash = Rng.chance rng 30;
        }
  | `Churn ->
      K_churn
        {
          kidx;
          src = pick lists;
          trips = Rng.range rng 20 120;
          junk_len = Rng.range rng 4 24;
        }
  | `Objwalk ->
      K_objwalk
        {
          kidx;
          src = pick objarrays;
          step = Rng.choose rng [| 1; 1; 1; 2; 3 |];
          follow_next = Rng.chance rng 50;
          bump_g = Rng.chance rng 30;
          mid_print = Rng.chance rng 25;
        }
  | `Intwalk ->
      K_intwalk
        {
          kidx;
          src = pick intarrays;
          step = Rng.choose rng [| 1; 1; 2 |];
          inner_trip = (if Rng.chance rng 40 then Some (Rng.range rng 2 4) else None);
        }

let generate ~seed ~max_size =
  let rng = Rng.create ~seed:(Rng.mix seed) in
  let max_size = max 1 max_size in
  let n_classes = 1 + Rng.int rng (min 4 (1 + (max_size / 3))) in
  let classes = List.init n_classes (fun cidx -> gen_class rng ~cidx ~n_classes) in
  let n_structures = 1 + Rng.int rng (min 3 (1 + (max_size / 3))) in
  let structures =
    List.init n_structures (fun sidx -> gen_structure rng ~sidx ~n_classes ~max_size)
  in
  let n_kernels = 1 + Rng.int rng (min 3 (1 + (max_size / 3))) in
  let kernels =
    List.init n_kernels (fun kidx -> gen_kernel rng ~kidx ~structures)
  in
  let root_cls =
    match List.hd structures with
    | S_list { cls; _ } -> cls
    | _ -> assert false
  in
  let main_statics =
    [
      { A.field_ty = A.Tint; field_name = "g"; field_static = true; field_pos = pos };
      {
        A.field_ty = A.Tclass (cname root_cls);
        field_name = "root";
        field_static = true;
        field_pos = pos;
      };
    ]
  in
  let repeat_kernel k =
    let kidx = kernel_index k in
    let r = Printf.sprintf "r%d" kidx in
    let reps = Rng.range rng 3 6 in
    let call =
      if Rng.bool rng then e (A.Static_call ("Main", kname kidx, [ kernel_arg k ]))
      else e (A.Bare_call (kname kidx, [ kernel_arg k ]))
    in
    [
      for_to r 0 (ilit reps) 1 [ set_var "acc" (var "acc" +: call) ];
      print_stmt (var "acc");
    ]
  in
  let main_body =
    [ decl A.Tint "acc" (ilit 0); assign (A.Lfield (var "Main", "g")) (ilit 0) ]
    @ List.concat_map (build_structure rng classes) structures
    @ [
        assign (A.Lfield (var "Main", "root")) (var (head_var 0));
      ]
    @ List.concat_map repeat_kernel kernels
    @ [ print_stmt (field (var "Main") "g"); print_stmt (var "acc") ]
  in
  let main_cls =
    {
      A.class_name = "Main";
      class_fields = main_statics;
      class_methods =
        List.map (kernel_method classes) kernels
        @ [
            {
              A.method_ret = None;
              method_name = "main";
              method_static = true;
              method_params = [];
              method_body = main_body;
              method_pos = pos;
              is_constructor = false;
            };
          ];
      class_pos = pos;
    }
  in
  let program = List.map render_class classes @ [ main_cls ] in
  let heap_limit_bytes = Rng.choose rng [| 49152; 131072; 262144; 1048576 |] in
  { seed; program; heap_limit_bytes }

let source t = Minijava.Pretty.program t.program
