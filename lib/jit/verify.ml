module B = Vm.Bytecode

type error = {
  pc : int;
  message : string;
  method_name : string;
  instr : string;  (* rendered faulting instruction, or "<no instruction>" *)
}

let string_of_error e =
  Printf.sprintf "%s: pc %d (`%s`): %s" e.method_name e.pc e.instr e.message

exception Bad of int * string

let err pc fmt = Printf.ksprintf (fun message -> raise (Bad (pc, message))) fmt

let instr_at code pc =
  if pc >= 0 && pc < Array.length code then B.to_string code.(pc)
  else "<no instruction>"

(* Net stack effect and minimum stack depth required by one instruction. *)
let stack_effect = function
  | B.Iconst _ | B.Aconst_null | B.Iload _ | B.Aload _ -> (1, 0)
  | B.Istore _ | B.Astore _ | B.Pop -> (-1, 1)
  | B.Dup -> (1, 1)
  | B.Iadd | B.Isub | B.Imul | B.Idiv | B.Irem | B.Iand | B.Ior | B.Ixor
  | B.Ishl | B.Ishr ->
      (-1, 2)
  | B.Ineg -> (0, 1)
  | B.Goto _ -> (0, 0)
  | B.If_icmp _ | B.If_acmpeq _ | B.If_acmpne _ -> (-2, 2)
  | B.If _ | B.Ifnull _ | B.Ifnonnull _ -> (-1, 1)
  | B.Getfield _ -> (0, 1)
  | B.Putfield _ -> (-2, 2)
  | B.Getstatic _ -> (1, 0)
  | B.Putstatic _ -> (-1, 1)
  | B.Aaload _ | B.Iaload _ -> (-1, 2)
  | B.Aastore _ | B.Iastore _ -> (-3, 3)
  | B.Arraylength _ -> (0, 1)
  | B.New _ -> (1, 0)
  | B.Newarray _ -> (0, 1)
  | B.Invoke _ -> (0, 0) (* handled specially *)
  | B.Return -> (0, 0)
  | B.Ireturn | B.Areturn -> (-1, 1)
  | B.Print -> (-1, 1)
  | B.Prefetch_inter _ | B.Prefetch_indirect _ | B.Prefetch_dynamic _ ->
      (0, 0)
  | B.Spec_load _ -> (0, 0)

let check ~(program : Vm.Classfile.program) (m : Vm.Classfile.method_info) =
  let code = m.code in
  let n = Array.length code in
  try
    if n = 0 then err 0 "empty method body";
    (* structural checks per instruction *)
    Array.iteri
      (fun pc instr ->
        (match B.branch_target instr with
        | Some t when t < 0 || t >= n -> err pc "branch target %d out of range" t
        | _ -> ());
        (match instr with
        | B.Iload i | B.Istore i | B.Aload i | B.Astore i ->
            if i < 0 || i >= m.max_locals then
              err pc "local %d outside max_locals %d" i m.max_locals
        | _ -> ());
        List.iter
          (fun site ->
            if site < 0 || site >= m.n_sites then
              err pc "site L%d outside n_sites %d" site m.n_sites)
          (B.all_sites instr);
        match instr with
        | B.Prefetch_inter { site; _ }
        | B.Spec_load { site; _ }
        | B.Prefetch_dynamic { site; _ } ->
            if site < 0 || site >= m.n_sites then
              err pc "prefetch anchor L%d outside n_sites %d" site m.n_sites
        | B.Prefetch_indirect { reg; _ } ->
            if reg < 0 || reg >= m.n_pref_regs then
              err pc "prefetch register p%d outside n_pref_regs %d" reg
                m.n_pref_regs
        | _ -> ())
      code;
    (* falling off the end *)
    (match code.(n - 1) with
    | instr when B.is_terminator instr -> ()
    | instr when B.branch_target instr <> None ->
        (* a trailing conditional branch can fall through past the end *)
        err (n - 1) "conditional branch can fall off the end"
    | _ -> err (n - 1) "control can fall off the end of the body");
    (* stack-depth dataflow: every pc gets one consistent depth *)
    let depth = Array.make n (-1) in
    let worklist = Queue.create () in
    let flow pc d =
      if pc < 0 || pc >= n then err pc "flow out of range"
      else if depth.(pc) = -1 then begin
        depth.(pc) <- d;
        Queue.add pc worklist
      end
      else if depth.(pc) <> d then
        err pc "inconsistent stack depth at join: %d vs %d" depth.(pc) d
    in
    flow 0 0;
    while not (Queue.is_empty worklist) do
      let pc = Queue.take worklist in
      let d = depth.(pc) in
      let instr = code.(pc) in
      let net, need =
        match instr with
        | B.Invoke callee_id ->
            if callee_id < 0 || callee_id >= Array.length program.methods then
              err pc "invoke of unknown method #%d" callee_id;
            let callee = Vm.Classfile.method_of_id program callee_id in
            let pushed = if callee.returns_value then 1 else 0 in
            (pushed - callee.arity, callee.arity)
        | instr -> stack_effect instr
      in
      if d < need then err pc "stack underflow: depth %d, need %d" d need;
      let d' = d + net in
      if d' > Vm.Frame.max_stack then err pc "stack overflow";
      (match instr with
      | B.Return | B.Ireturn | B.Areturn -> ()
      | _ -> (
          (match B.branch_target instr with
          | Some t -> flow t d'
          | None -> ());
          if not (B.is_terminator instr) then flow (pc + 1) d'))
    done;
    Ok ()
  with Bad (pc, message) ->
    Error
      { pc; message; method_name = m.method_name; instr = instr_at code pc }

let check_exn ~program m =
  match check ~program m with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "verify: %s" (string_of_error e))
