(** The dynamic-compilation driver.

    A pipeline is an ordered list of named passes. {!compile} runs them on
    a hot method — with the actual argument values of the triggering
    invocation, which is what object inspection consumes — marks the method
    compiled, and accounts the host-CPU time spent per pass. Those timings
    feed Figure 11 (additional compilation time of the prefetching pass
    relative to total JIT compilation time). *)

type pass = {
  pass_name : string;
  apply : Vm.Classfile.method_info -> Vm.Value.t array -> unit;
      (** may replace [method_info.code] *)
}

exception
  Verification_failed of {
    pass_name : string;
    method_name : string;
    message : string;
  }
(** Raised by {!compile} when the [?verifier] rejects a method body right
    after a pass ran — [pass_name] names the offending pass. *)

type t

val create :
  ?verifier:(Vm.Classfile.method_info -> (unit, string) result) ->
  ?span:(name:string -> meth:string -> (unit -> unit) -> unit) ->
  ?on_mutate:(Vm.Classfile.method_info -> unit) ->
  pass list ->
  t
(** [?verifier] is a debug-mode hook (see [Analysis.Check.pass_verifier])
    run over the method body after {e every} pass; [Error msg] aborts
    compilation with {!Verification_failed}. The pipeline stays generic:
    it never depends on the analysis library, it just runs the callback.

    [?span] is the telemetry hook: {!compile} wraps the whole compilation
    in [span ~name:"compile"] and each pass in [span ~name:"pass:<name>"]
    (the harness supplies a closure recording into a [Telemetry.Sink]).
    The default runs the thunk with no other effect, keeping the jit
    library independent of the telemetry library.

    [?on_mutate] runs after each pass (and its verification): a pass may
    have replaced [method_info.code], and the execution engine may hold a
    compiled artifact of the old body. The harness supplies
    [Vm.Interp.precompile_method] so the closure engine's artifact is
    refreshed eagerly between passes. Default: no-op. *)

val standard_passes : unit -> pass list
(** The baseline JIT: IR/analysis construction (CFG, dominators, loop
    forest), {!Optimize.simplify}, and dead-store elimination
    ({!Liveness.eliminate_dead_stores}). *)

val compile : t -> Vm.Classfile.method_info -> Vm.Value.t array -> unit
(** Run every pass in order; accumulates per-pass and per-method timings.
    The caller (the interpreter's compile hook) guarantees at most one call
    per method. *)

val seconds_of_pass : t -> string -> float
val total_seconds : t -> float
val pass_names : t -> string list
val methods_compiled : t -> int
val reset_timings : t -> unit
