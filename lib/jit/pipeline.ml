type pass = {
  pass_name : string;
  apply : Vm.Classfile.method_info -> Vm.Value.t array -> unit;
}

exception
  Verification_failed of {
    pass_name : string;
    method_name : string;
    message : string;
  }

type t = {
  passes : pass list;
  verifier : (Vm.Classfile.method_info -> (unit, string) result) option;
  span : name:string -> meth:string -> (unit -> unit) -> unit;
      (** telemetry hook wrapping the whole compilation and each pass;
          the default just runs the thunk *)
  on_mutate : Vm.Classfile.method_info -> unit;
      (** execution-engine recompilation hook, run after each pass (and
          its verification): a pass may have swapped [method_info.code],
          staling the closure engine's compiled artifact *)
  timings : (string, float) Hashtbl.t;
  mutable compiled : int;
}

let no_span ~name:_ ~meth:_ f = f ()

let create ?verifier ?(span = no_span) ?(on_mutate = fun _ -> ()) passes =
  { passes; verifier; span; on_mutate; timings = Hashtbl.create 8; compiled = 0 }

let analysis_pass (m : Vm.Classfile.method_info) (_args : Vm.Value.t array) =
  let cfg = Cfg.build m.code in
  let idom = Dominators.compute cfg in
  let _forest = Loops.analyze cfg in
  let _frontier = Dominators.dominance_frontier cfg ~idom in
  ()

let simplify_pass (m : Vm.Classfile.method_info) (_args : Vm.Value.t array) =
  m.code <- Optimize.simplify m.code

let dead_store_pass (m : Vm.Classfile.method_info) (_args : Vm.Value.t array) =
  m.code <- Liveness.eliminate_dead_stores m.code

let standard_passes () =
  [
    { pass_name = "analysis"; apply = analysis_pass };
    { pass_name = "simplify"; apply = simplify_pass };
    { pass_name = "dse"; apply = dead_store_pass };
  ]

let now_seconds () = Unix.gettimeofday ()

let check_after_pass t pass_name (m : Vm.Classfile.method_info) =
  match t.verifier with
  | None -> ()
  | Some verify -> (
      match verify m with
      | Ok () -> ()
      | Error message ->
          raise
            (Verification_failed
               { pass_name; method_name = m.method_name; message }))

let compile t (m : Vm.Classfile.method_info) args =
  t.span ~name:"compile" ~meth:m.method_name (fun () ->
      let start_method = now_seconds () in
      List.iter
        (fun pass ->
          t.span ~name:("pass:" ^ pass.pass_name) ~meth:m.method_name
            (fun () ->
              let start = now_seconds () in
              pass.apply m args;
              let elapsed = now_seconds () -. start in
              let prior =
                Option.value ~default:0.0
                  (Hashtbl.find_opt t.timings pass.pass_name)
              in
              Hashtbl.replace t.timings pass.pass_name (prior +. elapsed);
              check_after_pass t pass.pass_name m;
              t.on_mutate m))
        t.passes;
      m.compile_seconds <-
        m.compile_seconds +. (now_seconds () -. start_method);
      t.compiled <- t.compiled + 1)

let seconds_of_pass t name =
  Option.value ~default:0.0 (Hashtbl.find_opt t.timings name)

let total_seconds t = Hashtbl.fold (fun _ s acc -> acc +. s) t.timings 0.0
let pass_names t = List.map (fun p -> p.pass_name) t.passes
let methods_compiled t = t.compiled

let reset_timings t =
  Hashtbl.reset t.timings;
  t.compiled <- 0
