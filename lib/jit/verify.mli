(** A static bytecode verifier.

    Checks the structural invariants every transformation in this
    repository must preserve — the inliner, the optimizer, and the
    prefetch splicer all rewrite method bodies, and a malformed body shows
    up here long before it turns into a confusing interpreter error:

    - every branch target is in range;
    - the operand stack has a consistent depth at every join point, never
      underflows, and is empty at returns (beyond the returned value);
    - locals stay within [max_locals];
    - load-site ids stay within [n_sites] and prefetch registers within
      [n_pref_regs];
    - execution cannot fall off the end of the body. *)

type error = {
  pc : int;
  message : string;
  method_name : string;  (** which method failed verification *)
  instr : string;
      (** the rendered instruction at the faulting pc, ["<no instruction>"]
          when [pc] is out of range (e.g. an empty body) *)
}

val check :
  program:Vm.Classfile.program -> Vm.Classfile.method_info -> (unit, error) result
(** The program is needed to resolve the stack effect of [invoke]. *)

val check_exn : program:Vm.Classfile.program -> Vm.Classfile.method_info -> unit
(** Raises [Invalid_argument] with a rendered error. *)

val string_of_error : error -> string
(** ["<method>: pc <pc> (`<instr>`): <message>"] — same shape as the
    analysis layer's [Analysis.Diag.render], so mixed logs read
    uniformly. *)
