module C = Memsim.Config
module O = Strideprefetch.Options

type config = {
  machine : C.machine;
  mode : O.mode;
  engine : Vm.Interp.engine;
  passes : bool;
  hw : C.hw_prefetch_model option;
  prediction : O.prediction_tier;
  threshold : int option;
}

let default_config =
  {
    machine = C.pentium4;
    mode = O.Inter_intra;
    engine = Vm.Interp.Closure;
    passes = true;
    hw = None;
    prediction = O.Inspect;
    threshold = None;
  }

let machine_of c =
  match c.hw with
  | None -> c.machine
  | Some hw -> { c.machine with C.hw_prefetch = hw }

type axis = Mode | Machine | Hw | Threshold | Prediction | Passes | Engine

(* Cycle-moving axes first; the engine is simulation-neutral by
   construction (bit-identical cycles on both engines, fuzz-enforced),
   so probing it last lets the early stop skip it entirely. *)
let all_axes = [ Mode; Machine; Hw; Threshold; Prediction; Passes; Engine ]

let axis_name = function
  | Mode -> "mode"
  | Machine -> "machine"
  | Hw -> "hw"
  | Threshold -> "threshold"
  | Prediction -> "prediction"
  | Passes -> "passes"
  | Engine -> "engine"

let axis_of_name s =
  match String.lowercase_ascii s with
  | "mode" -> Some Mode
  | "machine" -> Some Machine
  | "hw" | "hw-prefetch" -> Some Hw
  | "threshold" -> Some Threshold
  | "prediction" -> Some Prediction
  | "passes" -> Some Passes
  | "engine" -> Some Engine
  | _ -> None

let resolved_hw c = (machine_of c).C.hw_prefetch

let axis_value c = function
  | Mode -> O.mode_name c.mode
  | Machine -> c.machine.C.name
  | Hw -> C.hw_prefetch_to_string (resolved_hw c)
  | Threshold -> (
      match c.threshold with None -> "default" | Some n -> string_of_int n)
  | Prediction -> O.prediction_name c.prediction
  | Passes -> if c.passes then "on" else "off"
  | Engine -> Vm.Interp.engine_name c.engine

let axis_differs a b ax = axis_value a ax <> axis_value b ax
let differing ~a ~b = List.filter (axis_differs a b) all_axes

(* Copy one axis's value from [src] onto [dst]. The hardware axis
   transplants the *resolved* model: if src rides its machine default,
   the default itself is carried over, not the None. *)
let transplant ax ~src dst =
  match ax with
  | Mode -> { dst with mode = src.mode }
  | Machine -> { dst with machine = src.machine }
  | Hw -> { dst with hw = Some (resolved_hw src) }
  | Threshold -> { dst with threshold = src.threshold }
  | Prediction -> { dst with prediction = src.prediction }
  | Passes -> { dst with passes = src.passes }
  | Engine -> { dst with engine = src.engine }

(* --vs override parsing ------------------------------------------------ *)

let parse_one c kv =
  match String.index_opt kv '=' with
  | None -> Error (Printf.sprintf "override %S is not key=value" kv)
  | Some i -> (
      let key = String.lowercase_ascii (String.sub kv 0 i) in
      let v = String.sub kv (i + 1) (String.length kv - i - 1) in
      match key with
      | "machine" | "m" -> (
          match C.machine_of_name v with
          | Some m -> Ok { c with machine = m }
          | None -> Error (Printf.sprintf "unknown machine %S" v))
      | "mode" | "p" -> (
          match String.lowercase_ascii v with
          | "off" | "baseline" -> Ok { c with mode = O.Off }
          | "inter" -> Ok { c with mode = O.Inter }
          | "inter+intra" | "inter_intra" | "interintra" ->
              Ok { c with mode = O.Inter_intra }
          | _ -> Error (Printf.sprintf "unknown mode %S" v))
      | "engine" -> (
          match Vm.Interp.engine_of_string (String.lowercase_ascii v) with
          | Some e -> Ok { c with engine = e }
          | None -> Error (Printf.sprintf "unknown engine %S" v))
      | "hw" | "hw-prefetch" -> (
          match C.hw_prefetch_of_string v with
          | Ok hw -> Ok { c with hw = Some hw }
          | Error e -> Error e)
      | "prediction" | "pred" -> (
          match O.prediction_of_string v with
          | Ok p -> Ok { c with prediction = p }
          | Error e -> Error e)
      | "threshold" | "thr" -> (
          match String.lowercase_ascii v with
          | "default" -> Ok { c with threshold = None }
          | _ -> (
              match int_of_string_opt v with
              | Some n -> Ok { c with threshold = Some n }
              | None -> Error (Printf.sprintf "bad threshold %S" v)))
      | "passes" -> (
          match String.lowercase_ascii v with
          | "on" | "true" -> Ok { c with passes = true }
          | "off" | "false" -> Ok { c with passes = false }
          | _ -> Error (Printf.sprintf "bad passes value %S (on/off)" v))
      | _ ->
          Error
            (Printf.sprintf
               "unknown axis %S (machine, mode, engine, hw, prediction, \
                threshold, passes)"
               key))

let apply_overrides c spec =
  let parts =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if parts = [] then Error "empty --vs override list"
  else
    List.fold_left
      (fun acc kv -> Result.bind acc (fun c -> parse_one c kv))
      (Ok c) parts

let config_strings ~workload c =
  {
    Rundata.c_workload = workload;
    c_machine = c.machine.C.name;
    c_mode = O.mode_name c.mode;
    c_engine = Vm.Interp.engine_name c.engine;
    c_hw = C.hw_prefetch_to_string (resolved_hw c);
    c_prediction = O.prediction_name c.prediction;
    c_threshold = c.threshold;
    c_passes = c.passes;
  }

(* Bisection ----------------------------------------------------------- *)

type outcome = {
  cycles_a : int;
  cycles_b : int;
  delta : int;
  candidates : axis list;
  probes : (axis * int) list;
  responsible : axis list;
  exact : bool;
  replays : int;
}

let run ~replay ~a ~b =
  let replays = ref 0 in
  let replay c =
    incr replays;
    replay c
  in
  let ca = replay a in
  let cb = replay b in
  let delta = cb - ca in
  let candidates = differing ~a ~b in
  let finish probes responsible exact =
    {
      cycles_a = ca;
      cycles_b = cb;
      delta;
      candidates;
      probes;
      responsible;
      exact;
      replays = !replays;
    }
  in
  if delta = 0 then finish [] [] true
  else
    match candidates with
    | [] ->
        (* Same config, different cycles: determinism itself is broken —
           report everything as suspect rather than pretending. *)
        finish [] [] false
    | [ ax ] -> finish [] [ ax ] true
    | _ -> (
        (* Flip one axis at a time from A toward B; stop the moment a
           flip reproduces B exactly. *)
        let rec probe acc = function
          | [] -> (List.rev acc, None)
          | ax :: rest ->
              let c = replay (transplant ax ~src:b a) in
              if c = cb then (List.rev ((ax, c) :: acc), Some ax)
              else probe ((ax, c) :: acc) rest
        in
        let probes, hit = probe [] candidates in
        match hit with
        | Some ax -> finish probes [ ax ] true
        | None -> (
            let moving = List.filter (fun (_, c) -> c <> ca) probes in
            match moving with
            | [] ->
                (* Pure interaction: no single flip moves cycles, yet the
                   full set does. The minimal explanation is the whole
                   candidate set (flipping all of them *is* B). *)
                finish probes candidates true
            | _ ->
                let responsible = List.map fst moving in
                let joint =
                  List.fold_left
                    (fun acc ax -> transplant ax ~src:b acc)
                    a responsible
                in
                let cj = replay joint in
                finish probes responsible (cj = cb)))

let render ~a ~b outcome =
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "bisect: cycles A=%d  B=%d  delta=%+d" outcome.cycles_a outcome.cycles_b
    outcome.delta;
  List.iter
    (fun ax ->
      line "  axis %-10s A=%s  B=%s" (axis_name ax) (axis_value a ax)
        (axis_value b ax))
    outcome.candidates;
  List.iter
    (fun (ax, c) ->
      line "  probe %-10s A+{%s<-B}: %d cycles (%+d vs A)%s" (axis_name ax)
        (axis_name ax) c (c - outcome.cycles_a)
        (if c = outcome.cycles_b then "  = B, early stop" else ""))
    outcome.probes;
  (match outcome.responsible with
  | [] when outcome.delta = 0 -> line "verdict: no cycle delta to explain"
  | [] -> line "verdict: UNEXPLAINED — identical configs, differing cycles"
  | axes ->
      line "verdict: responsible axis%s: %s%s (%d replay%s)"
        (if List.length axes = 1 then "" else " set")
        (String.concat ", " (List.map axis_name axes))
        (if outcome.exact then "" else "  [joint flip does not reproduce B \
                                        exactly — interaction with remaining \
                                        axes]")
        outcome.replays
        (if outcome.replays = 1 then "" else "s"));
  Buffer.contents buf
