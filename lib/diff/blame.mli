(** The blame report: two {!Rundata} snapshots joined into per-loop and
    per-allocation-site cycle deltas decomposed by profiler stall bin,
    attribution-class deltas, and pass-decision provenance diffs.

    Conservation law (the diff analogue of the profiler's): summed over
    the union of loop keys,

    {[ Σ (total_B(loop) − total_A(loop)) + (gc_B − gc_A)
         = cycles_B − cycles_A ]}

    exactly, to the cycle. Each side's profiler law guarantees it for
    internally-consistent inputs, so a breach means a corrupted or
    hand-edited snapshot — or a bug in this join — and {!check} reports
    it. The per-site table is an overlapping object-centric view of the
    same stalls and is not part of the law. *)

type loop_delta = {
  d_method : string;
  d_loop : int;  (** [-1]: straight-line remainder *)
  d_a_total : int;  (** 0 when the loop exists only in B *)
  d_b_total : int;
  d_delta : int;
  d_bins : int array;  (** per-bin deltas, {!Rundata.bin_names} order *)
  d_only : [ `Both | `Only_a | `Only_b ];
}

type site_delta = {
  sd_method : string;
  sd_pc : int;
  sd_a_stall : int;
  sd_b_stall : int;
  sd_delta : int;
  sd_allocs_delta : int;
}

type prov_delta = {
  pd_method : string;
  pd_loop : int;
  pd_added : string list;  (** plan actions present only in B *)
  pd_removed : string list;
  pd_inspection : (string * string) option;
      (** (A, B) inspection depth — ["full"]/["shortened"]/["skipped"] —
          when it changed *)
  pd_steps : int * int;  (** inspection steps A, B *)
  pd_iterations : int * int;
}

type t = {
  a : Rundata.t;
  b : Rundata.t;
  total_delta : int;
  gc_delta : int;
  bin_deltas : int array;  (** whole-run per-bin deltas *)
  loops : loop_delta list;  (** sorted by |delta| desc, ties (method, loop) *)
  sites : site_delta list;  (** likewise by |stall delta| *)
  attribution : (string * int * int) list option;
      (** (class, A, B) for issued/useful/late/useless/cancelled/
          redundant/redundant_hw; [None] when either side lacks books *)
  provenance : prov_delta list;
      (** loops whose plan or inspection depth changed; empty when either
          side carries no provenance *)
}

val build : ?fault_desync:bool -> a:Rundata.t -> b:Rundata.t -> unit -> t
(** Join the two snapshots. [fault_desync] (default [false]) injects the
    self-test fault: one loop's delta is perturbed by a cycle after the
    join, so {!check} must report a breach — proving the conservation
    check can actually fail. Never enable outside [--inject diff-desync]. *)

val check : t -> string option
(** The conservation law above; [None] when it holds exactly. *)

val top_loop : t -> loop_delta option
(** The largest-|delta| loop — what a planted regression must name. *)

val render : ?top:int -> t -> string
(** The full human-readable blame report: config axes, totals, per-bin
    delta table, loop/site blame tables (the [top] largest movers, with
    a remainder line so the rendered deltas still reconstruct the
    total), attribution deltas, provenance diffs, and the conservation
    verdict. Deterministic: byte-identical for identical inputs. *)

val to_json : t -> Telemetry.Json.t
