module J = Telemetry.Json
module R = Profile.Report

type config = {
  c_workload : string;
  c_machine : string;
  c_mode : string;
  c_engine : string;
  c_hw : string;
  c_prediction : string;
  c_threshold : int option;
  c_passes : bool;
}

let unknown_config =
  {
    c_workload = "?";
    c_machine = "?";
    c_mode = "?";
    c_engine = "?";
    c_hw = "?";
    c_prediction = "?";
    c_threshold = None;
    c_passes = true;
  }

type loop = {
  lr_method : string;
  lr_loop : int;
  lr_depth : int;
  lr_bins : int array;
  lr_total : int;
  lr_actions : int;
}

type site = {
  s_method : string;
  s_pc : int;
  s_allocs : int;
  s_bytes : int;
  s_tlb : int;
  s_l1 : int;
  s_l2 : int;
  s_mem : int;
  s_total : int;
}

type attribution = {
  a_issued : int;
  a_cancelled : int;
  a_redundant : int;
  a_redundant_hw : int;
  a_useful : int;
  a_late : int;
  a_useless : int;
}

type prov = {
  p_method : string;
  p_loop : int;
  p_actions : string list;
  p_rejected : int;
  p_promoted : bool;
  p_low_trip : bool;
  p_iterations : int;
  p_steps : int;
  p_skipped : bool;
  p_shortened : bool;
}

type t = {
  config : config;
  cycles : int;
  gc_cycles : int;
  totals : int array;
  loops : loop list;
  sites : site list;
  attribution : attribution option;
  provenance : prov list;
}

let bin_names = List.map fst R.bin_fields
let bins_array bins = Array.of_list (List.map (fun (_, get) -> get bins) R.bin_fields)

(* ------------------------------------------------------------------ *)
(* From a live harness run.                                            *)

let attribution_of_counters (c : Memsim.Attribution.site_counters) =
  {
    a_issued = c.issued;
    a_cancelled = c.cancelled;
    a_redundant = c.redundant;
    a_redundant_hw = c.redundant_hw;
    a_useful = c.useful;
    a_late = c.late;
    a_useless = c.useless;
  }

(* One provenance record per (method, loop). A method recompile would
   contribute two pass reports for the same loop; merge them so the join
   key stays unique. *)
let provenance_of_reports reports =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (rep : Strideprefetch.Pass.loop_report) ->
      let key = (rep.method_name, rep.loop_id) in
      let actions =
        List.map Strideprefetch.Codegen.action_descriptor rep.plan.actions
      in
      let fresh =
        {
          p_method = rep.method_name;
          p_loop = rep.loop_id;
          p_actions = actions;
          p_rejected = List.length rep.plan.rejected;
          p_promoted = rep.promoted;
          p_low_trip = rep.skipped_low_trip;
          p_iterations = rep.iterations_observed;
          p_steps = rep.inspection_steps;
          p_skipped = rep.inspection_skipped;
          p_shortened = rep.inspection_shortened;
        }
      in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.replace tbl key fresh
      | Some old ->
          Hashtbl.replace tbl key
            {
              old with
              p_actions = old.p_actions @ fresh.p_actions;
              p_rejected = old.p_rejected + fresh.p_rejected;
              p_promoted = old.p_promoted || fresh.p_promoted;
              p_low_trip = old.p_low_trip || fresh.p_low_trip;
              p_iterations = old.p_iterations + fresh.p_iterations;
              p_steps = old.p_steps + fresh.p_steps;
              p_skipped = old.p_skipped || fresh.p_skipped;
              p_shortened = old.p_shortened || fresh.p_shortened;
            })
    reports;
  Hashtbl.fold (fun _ p acc -> p :: acc) tbl []
  |> List.map (fun p -> { p with p_actions = List.sort compare p.p_actions })
  |> List.sort (fun a b -> compare (a.p_method, a.p_loop) (b.p_method, b.p_loop))

let of_run ~config (r : Workloads.Harness.run_result) =
  match r.profile with
  | None -> Error "run carries no profile (made without ~profile:true)"
  | Some rep ->
      let loops =
        List.map
          (fun (l : R.loop_row) ->
            {
              lr_method = l.l_method;
              lr_loop = l.l_loop;
              lr_depth = l.l_depth;
              lr_bins = bins_array l.l_bins;
              lr_total = l.l_total;
              lr_actions = l.l_actions;
            })
          rep.loops
      in
      let sites =
        List.map
          (fun (o : R.obj_row) ->
            {
              s_method = o.alloc_method;
              s_pc = o.alloc_pc;
              s_allocs = o.allocs;
              s_bytes = o.alloc_bytes;
              s_tlb = o.o_tlb;
              s_l1 = o.o_l1;
              s_l2 = o.o_l2;
              s_mem = o.o_mem;
              s_total = o.o_total;
            })
          rep.objects
      in
      let attribution =
        Option.map
          (fun (eff : Workloads.Effectiveness.t) ->
            attribution_of_counters eff.totals)
          r.effectiveness
      in
      Ok
        {
          config;
          cycles = rep.cycles;
          gc_cycles = rep.gc_cycles;
          totals = bins_array rep.totals;
          loops;
          sites;
          attribution;
          provenance = provenance_of_reports r.reports;
        }

(* ------------------------------------------------------------------ *)
(* JSON.                                                               *)

let schema = "spf_diff/v1"

let json_of_bin_array a =
  J.Obj (List.mapi (fun i n -> (n, J.Int a.(i))) bin_names)

let to_json t =
  let config_json c =
    J.Obj
      [
        ("workload", J.Str c.c_workload);
        ("machine", J.Str c.c_machine);
        ("mode", J.Str c.c_mode);
        ("engine", J.Str c.c_engine);
        ("hw", J.Str c.c_hw);
        ("prediction", J.Str c.c_prediction);
        ( "threshold",
          match c.c_threshold with None -> J.Null | Some n -> J.Int n );
        ("passes", J.Bool c.c_passes);
      ]
  in
  let loop_json l =
    J.Obj
      [
        ("method", J.Str l.lr_method);
        ("loop", J.Int l.lr_loop);
        ("depth", J.Int l.lr_depth);
        ("actions", J.Int l.lr_actions);
        ("bins", json_of_bin_array l.lr_bins);
        ("total", J.Int l.lr_total);
      ]
  in
  let site_json s =
    J.Obj
      [
        ("method", J.Str s.s_method);
        ("pc", J.Int s.s_pc);
        ("allocs", J.Int s.s_allocs);
        ("bytes", J.Int s.s_bytes);
        ("tlb", J.Int s.s_tlb);
        ("l1", J.Int s.s_l1);
        ("l2", J.Int s.s_l2);
        ("mem", J.Int s.s_mem);
        ("stall", J.Int s.s_total);
      ]
  in
  let attribution_json a =
    J.Obj
      [
        ("issued", J.Int a.a_issued);
        ("cancelled", J.Int a.a_cancelled);
        ("redundant", J.Int a.a_redundant);
        ("redundant_hw", J.Int a.a_redundant_hw);
        ("useful", J.Int a.a_useful);
        ("late", J.Int a.a_late);
        ("useless", J.Int a.a_useless);
      ]
  in
  let prov_json p =
    J.Obj
      [
        ("method", J.Str p.p_method);
        ("loop", J.Int p.p_loop);
        ("actions", J.List (List.map (fun a -> J.Str a) p.p_actions));
        ("rejected", J.Int p.p_rejected);
        ("promoted", J.Bool p.p_promoted);
        ("low_trip", J.Bool p.p_low_trip);
        ("iterations", J.Int p.p_iterations);
        ("steps", J.Int p.p_steps);
        ("skipped", J.Bool p.p_skipped);
        ("shortened", J.Bool p.p_shortened);
      ]
  in
  J.Obj
    [
      ("schema", J.Str schema);
      ("config", config_json t.config);
      ("cycles", J.Int t.cycles);
      ("gc_cycles", J.Int t.gc_cycles);
      ("totals", json_of_bin_array t.totals);
      ("loops", J.List (List.map loop_json t.loops));
      ("objects", J.List (List.map site_json t.sites));
      ( "attribution",
        match t.attribution with None -> J.Null | Some a -> attribution_json a
      );
      ("provenance", J.List (List.map prov_json t.provenance));
    ]

(* Lenient readers in the gate parser's spirit: absent numeric fields
   default to 0, absent strings to "?" — older snapshots keep loading. *)
let mem_str name v =
  match J.member name v with Some (J.Str s) -> s | _ -> "?"

let mem_int name v = match J.member name v with Some (J.Int i) -> i | _ -> 0

let mem_bool ~default name v =
  match J.member name v with Some (J.Bool b) -> b | _ -> default

let mem_list name v = match J.member name v with Some (J.List l) -> l | _ -> []

let bins_of_json v =
  match v with
  | Some bins -> Array.of_list (List.map (fun n -> mem_int n bins) bin_names)
  | None -> Array.make (List.length bin_names) 0

let loop_of_json v =
  {
    lr_method = mem_str "method" v;
    lr_loop = mem_int "loop" v;
    lr_depth = mem_int "depth" v;
    lr_bins = bins_of_json (J.member "bins" v);
    lr_total = mem_int "total" v;
    lr_actions =
      (match J.member "actions" v with Some (J.Int i) -> i | _ -> -1);
  }

let site_of_json v =
  {
    s_method = mem_str "method" v;
    s_pc = mem_int "pc" v;
    s_allocs = mem_int "allocs" v;
    s_bytes = mem_int "bytes" v;
    s_tlb = mem_int "tlb" v;
    s_l1 = mem_int "l1" v;
    s_l2 = mem_int "l2" v;
    s_mem = mem_int "mem" v;
    s_total = mem_int "stall" v;
  }

let config_of_json v =
  {
    c_workload = mem_str "workload" v;
    c_machine = mem_str "machine" v;
    c_mode = mem_str "mode" v;
    c_engine = mem_str "engine" v;
    c_hw = mem_str "hw" v;
    c_prediction = mem_str "prediction" v;
    c_threshold =
      (match J.member "threshold" v with Some (J.Int i) -> Some i | _ -> None);
    c_passes = mem_bool ~default:true "passes" v;
  }

let attribution_of_json v =
  {
    a_issued = mem_int "issued" v;
    a_cancelled = mem_int "cancelled" v;
    a_redundant = mem_int "redundant" v;
    a_redundant_hw = mem_int "redundant_hw" v;
    a_useful = mem_int "useful" v;
    a_late = mem_int "late" v;
    a_useless = mem_int "useless" v;
  }

let prov_of_json v =
  {
    p_method = mem_str "method" v;
    p_loop = mem_int "loop" v;
    p_actions =
      List.filter_map
        (function J.Str s -> Some s | _ -> None)
        (mem_list "actions" v);
    p_rejected = mem_int "rejected" v;
    p_promoted = mem_bool ~default:false "promoted" v;
    p_low_trip = mem_bool ~default:false "low_trip" v;
    p_iterations = mem_int "iterations" v;
    p_steps = mem_int "steps" v;
    p_skipped = mem_bool ~default:false "skipped" v;
    p_shortened = mem_bool ~default:false "shortened" v;
  }

let of_json v =
  match J.member "schema" v with
  | Some (J.Str s) when s = schema || s = "spf_prof/v1" ->
      let config =
        match J.member "config" v with
        | Some c -> config_of_json c
        | None -> unknown_config
      in
      let attribution =
        match J.member "attribution" v with
        | Some (J.Obj _ as a) -> Some (attribution_of_json a)
        | _ -> None
      in
      Ok
        {
          config;
          cycles = mem_int "cycles" v;
          gc_cycles = mem_int "gc_cycles" v;
          totals = bins_of_json (J.member "totals" v);
          loops = List.map loop_of_json (mem_list "loops" v);
          sites = List.map site_of_json (mem_list "objects" v);
          attribution;
          provenance = List.map prov_of_json (mem_list "provenance" v);
        }
  | Some (J.Str s) ->
      Error
        (Printf.sprintf "unsupported schema %S (expected %s or spf_prof/v1)" s
           schema)
  | _ -> Error "snapshot has no schema field"

(* The compact per-cell blame payload of a bench_hotpath/v2 report:
   {"gc_cycles": N, "loops": [...]} with loops in the snapshot spelling.
   The run's bin totals are the loop rows summed — the profiler puts
   every cycle in exactly one loop row (straight-line remainders are the
   loop = -1 rows), so the reconstruction is exact and the blame
   conservation law carries over. *)
let of_bench_blame ~config ~cycles v =
  match J.member "loops" v with
  | Some (J.List loop_rows) ->
      let loops = List.map loop_of_json loop_rows in
      let totals = Array.make (List.length bin_names) 0 in
      List.iter
        (fun l -> Array.iteri (fun i n -> totals.(i) <- totals.(i) + n) l.lr_bins)
        loops;
      Ok
        {
          config;
          cycles;
          gc_cycles = mem_int "gc_cycles" v;
          totals;
          loops;
          sites = [];
          attribution = None;
          provenance = [];
        }
  | _ -> Error "blame payload has no \"loops\" array"

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
      match J.parse text with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok v -> (
          match of_json v with
          | Error e -> Error (Printf.sprintf "%s: %s" path e)
          | Ok t -> Ok t))
