(** Automatic config-axis bisection: given two configurations differing
    in several option axes, replay intermediate configurations to
    isolate the minimal axis set responsible for a cycle delta.

    Simulated cycles are deterministic — a pure function of the
    configuration — so a single replay per probe is conclusive (no
    statistics needed; the same property the exact-equality bench gate
    leans on). The search runs A and B (2 replays), then flips differing
    axes one at a time from A toward B in canonical order, stopping
    early the moment a single flip reproduces B's cycles exactly: a
    planted single-axis regression is therefore isolated in at most
    [2 + position] replays — 3 when the responsible axis sorts first,
    which the canonical order arranges by putting cycle-moving axes
    (mode, machine, hw, threshold, prediction, passes) before the
    cycle-neutral engine axis. When no single flip explains the delta,
    the axes that individually moved cycles are verified jointly. *)

type config = {
  machine : Memsim.Config.machine;
  mode : Strideprefetch.Options.mode;
  engine : Vm.Interp.engine;
  passes : bool;  (** standard JIT passes *)
  hw : Memsim.Config.hw_prefetch_model option;
      (** [None]: the machine's own model *)
  prediction : Strideprefetch.Options.prediction_tier;
  threshold : int option;  (** inter-stride threshold override *)
}

val default_config : config
(** pentium4, inter+intra, closure, passes on, machine-default hardware
    prefetcher, inspect tier, paper-default threshold. *)

val machine_of : config -> Memsim.Config.machine
(** The machine with the [hw] override applied — what a replay runs on. *)

type axis = Mode | Machine | Hw | Threshold | Prediction | Passes | Engine

val all_axes : axis list
(** Canonical probe order (cycle-moving first, engine last). *)

val axis_name : axis -> string
val axis_of_name : string -> axis option

val axis_value : config -> axis -> string
(** Display value of one axis, e.g. [axis_value c Hw = "stream:8"]
    (resolved against the machine when [hw = None]). *)

val differing : a:config -> b:config -> axis list
(** The axes on which the two configs disagree, in canonical order.
    The hardware axis compares resolved specs, so [hw = None] equals an
    explicit spec naming the machine default. *)

val apply_overrides : config -> string -> (config, string) result
(** Parse a [--vs] override list — comma-separated [key=value] with keys
    [machine]/[mode]/[engine]/[hw]/[prediction]/[threshold]/[passes] —
    onto a base config. [threshold] accepts an integer or [default];
    [passes] accepts [on]/[off]. *)

val config_strings : workload:string -> config -> Rundata.config
(** The {!Rundata.config} stamp of a snapshot made under this config. *)

type outcome = {
  cycles_a : int;
  cycles_b : int;
  delta : int;
  candidates : axis list;  (** axes that differed at all *)
  probes : (axis * int) list;  (** single-flip cycles, in probe order *)
  responsible : axis list;  (** minimal responsible set; [] iff delta = 0 *)
  exact : bool;
      (** flipping [responsible] alone reproduces B's cycles exactly *)
  replays : int;  (** total replays spent, A and B included *)
}

val run : replay:(config -> int) -> a:config -> b:config -> outcome
(** Bisect. [replay] runs one configuration to completion and returns
    its simulated cycles; it is called [outcome.replays] times. *)

val render : a:config -> b:config -> outcome -> string
(** Human-readable verdict: the differing axes with their values, each
    probe's result, and the responsible set. Deterministic. *)
