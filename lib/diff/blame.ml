module J = Telemetry.Json
module T = Telemetry.Table

type loop_delta = {
  d_method : string;
  d_loop : int;
  d_a_total : int;
  d_b_total : int;
  d_delta : int;
  d_bins : int array;
  d_only : [ `Both | `Only_a | `Only_b ];
}

type site_delta = {
  sd_method : string;
  sd_pc : int;
  sd_a_stall : int;
  sd_b_stall : int;
  sd_delta : int;
  sd_allocs_delta : int;
}

type prov_delta = {
  pd_method : string;
  pd_loop : int;
  pd_added : string list;
  pd_removed : string list;
  pd_inspection : (string * string) option;
  pd_steps : int * int;
  pd_iterations : int * int;
}

type t = {
  a : Rundata.t;
  b : Rundata.t;
  total_delta : int;
  gc_delta : int;
  bin_deltas : int array;
  loops : loop_delta list;
  sites : site_delta list;
  attribution : (string * int * int) list option;
  provenance : prov_delta list;
}

let n_bins = List.length Rundata.bin_names

(* Outer join of two association lists keyed by [key], preserving every
   key of either side. *)
let outer_join ~key xs ys =
  let tbl = Hashtbl.create 64 in
  List.iter (fun x -> Hashtbl.replace tbl (key x) (Some x, None)) xs;
  List.iter
    (fun y ->
      let k = key y in
      match Hashtbl.find_opt tbl k with
      | Some (a, _) -> Hashtbl.replace tbl k (a, Some y)
      | None -> Hashtbl.replace tbl k (None, Some y))
    ys;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let by_magnitude delta tie a b =
  let c = compare (abs (delta b)) (abs (delta a)) in
  if c <> 0 then c else compare (tie a) (tie b)

let loop_deltas (a : Rundata.t) (b : Rundata.t) =
  outer_join
    ~key:(fun (l : Rundata.loop) -> (l.lr_method, l.lr_loop))
    a.loops b.loops
  |> List.map (fun ((m, id), pair) ->
         let bins_of = function
           | Some (l : Rundata.loop) -> l.lr_bins
           | None -> Array.make n_bins 0
         in
         let total_of = function
           | Some (l : Rundata.loop) -> l.lr_total
           | None -> 0
         in
         let la, lb = pair in
         let ba = bins_of la and bb = bins_of lb in
         {
           d_method = m;
           d_loop = id;
           d_a_total = total_of la;
           d_b_total = total_of lb;
           d_delta = total_of lb - total_of la;
           d_bins = Array.init n_bins (fun i -> bb.(i) - ba.(i));
           d_only =
             (match pair with
             | Some _, Some _ -> `Both
             | Some _, None -> `Only_a
             | None, _ -> `Only_b);
         })
  |> List.sort
       (by_magnitude (fun d -> d.d_delta) (fun d -> (d.d_method, d.d_loop)))

let site_deltas (a : Rundata.t) (b : Rundata.t) =
  outer_join
    ~key:(fun (s : Rundata.site) -> (s.s_method, s.s_pc))
    a.sites b.sites
  |> List.map (fun ((m, pc), (sa, sb)) ->
         let stall = function Some (s : Rundata.site) -> s.s_total | None -> 0 in
         let allocs = function
           | Some (s : Rundata.site) -> s.s_allocs
           | None -> 0
         in
         {
           sd_method = m;
           sd_pc = pc;
           sd_a_stall = stall sa;
           sd_b_stall = stall sb;
           sd_delta = stall sb - stall sa;
           sd_allocs_delta = allocs sb - allocs sa;
         })
  |> List.sort
       (by_magnitude (fun s -> s.sd_delta) (fun s -> (s.sd_method, s.sd_pc)))

let attribution_deltas (a : Rundata.t) (b : Rundata.t) =
  match (a.attribution, b.attribution) with
  | Some x, Some y ->
      Some
        [
          ("issued", x.a_issued, y.a_issued);
          ("useful", x.a_useful, y.a_useful);
          ("late", x.a_late, y.a_late);
          ("useless", x.a_useless, y.a_useless);
          ("cancelled", x.a_cancelled, y.a_cancelled);
          ("redundant", x.a_redundant, y.a_redundant);
          ("redundant_hw", x.a_redundant_hw, y.a_redundant_hw);
        ]
  | _ -> None

let inspection_state (p : Rundata.prov) =
  if p.p_skipped then "skipped"
  else if p.p_shortened then "shortened"
  else "full"

(* Set difference preserving multiplicity: two identical direct actions
   minus one leaves one. *)
let multiset_diff xs ys =
  List.fold_left
    (fun acc y ->
      let rec remove_one = function
        | [] -> None
        | x :: rest when x = y -> Some rest
        | x :: rest -> Option.map (fun r -> x :: r) (remove_one rest)
      in
      match remove_one acc with Some acc' -> acc' | None -> acc)
    xs ys

let prov_deltas (a : Rundata.t) (b : Rundata.t) =
  if a.provenance = [] || b.provenance = [] then []
  else
    outer_join
      ~key:(fun (p : Rundata.prov) -> (p.p_method, p.p_loop))
      a.provenance b.provenance
    |> List.filter_map (fun ((m, id), (pa, pb)) ->
           let actions = function
             | Some (p : Rundata.prov) -> p.p_actions
             | None -> []
           in
           let steps = function Some (p : Rundata.prov) -> p.p_steps | None -> 0 in
           let iters = function
             | Some (p : Rundata.prov) -> p.p_iterations
             | None -> 0
           in
           let insp = Option.map inspection_state in
           let aa = actions pa and ab = actions pb in
           let added = multiset_diff ab aa in
           let removed = multiset_diff aa ab in
           let inspection =
             match (insp pa, insp pb) with
             | Some x, Some y when x <> y -> Some (x, y)
             | Some x, None -> Some (x, "-")
             | None, Some y -> Some ("-", y)
             | _ -> None
           in
           if added = [] && removed = [] && inspection = None
              && steps pa = steps pb
           then None
           else
             Some
               {
                 pd_method = m;
                 pd_loop = id;
                 pd_added = added;
                 pd_removed = removed;
                 pd_inspection = inspection;
                 pd_steps = (steps pa, steps pb);
                 pd_iterations = (iters pa, iters pb);
               })
    |> List.sort (fun x y ->
           compare (x.pd_method, x.pd_loop) (y.pd_method, y.pd_loop))

let build ?(fault_desync = false) ~(a : Rundata.t) ~(b : Rundata.t) () =
  let loops = loop_deltas a b in
  let loops =
    if not fault_desync then loops
    else
      (* The injected self-test fault: desynchronize the join by a single
         cycle on the first loop, breaking the conservation law. *)
      match loops with
      | l :: rest -> { l with d_delta = l.d_delta + 1 } :: rest
      | [] -> loops
  in
  {
    a;
    b;
    total_delta = b.cycles - a.cycles;
    gc_delta = b.gc_cycles - a.gc_cycles;
    bin_deltas = Array.init n_bins (fun i -> b.totals.(i) - a.totals.(i));
    loops;
    sites = site_deltas a b;
    attribution = attribution_deltas a b;
    provenance = prov_deltas a b;
  }

let check t =
  let loop_sum = List.fold_left (fun acc d -> acc + d.d_delta) 0 t.loops in
  if loop_sum + t.gc_delta = t.total_delta then None
  else
    Some
      (Printf.sprintf
         "blame conservation violated: per-loop deltas (%+d) + gc (%+d) = %+d \
          <> total cycle delta %+d (off by %+d)"
         loop_sum t.gc_delta (loop_sum + t.gc_delta) t.total_delta
         (loop_sum + t.gc_delta - t.total_delta))

let top_loop t = match t.loops with [] -> None | l :: _ -> Some l

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let signed n = Printf.sprintf "%+d" n

let pct_of_total delta total =
  if total = 0 then "-"
  else Printf.sprintf "%+.2f%%" (100.0 *. float_of_int delta /. float_of_int total)

let loop_name d =
  if d.d_loop = -1 then Printf.sprintf "%s/(straight-line)" d.d_method
  else Printf.sprintf "%s/loop%d" d.d_method d.d_loop

let config_line (c : Rundata.config) =
  Printf.sprintf "%s %s %s %s hw=%s pred=%s thr=%s passes=%s" c.c_workload
    c.c_machine c.c_mode c.c_engine c.c_hw c.c_prediction
    (match c.c_threshold with None -> "default" | Some n -> string_of_int n)
    (if c.c_passes then "on" else "off")

let render ?(top = 10) t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "A: %s" (config_line t.a.config);
  line "B: %s" (config_line t.b.config);
  line "cycles: A=%d  B=%d  delta=%s (%s)" t.a.cycles t.b.cycles
    (signed t.total_delta)
    (pct_of_total t.total_delta t.a.cycles);
  line "gc:     A=%d  B=%d  delta=%s" t.a.gc_cycles t.b.gc_cycles
    (signed t.gc_delta);
  Buffer.add_string buf "\n";
  (* Whole-run bin deltas. *)
  let bins = T.make ~columns:[ ("bin", T.Left); ("A", T.Right); ("B", T.Right);
                               ("delta", T.Right); ("of A", T.Right) ] in
  List.iteri
    (fun i name ->
      T.add_row bins
        [
          name;
          T.cell_int t.a.totals.(i);
          T.cell_int t.b.totals.(i);
          signed t.bin_deltas.(i);
          pct_of_total t.bin_deltas.(i) t.a.cycles;
        ])
    Rundata.bin_names;
  T.add_row bins
    [ "gc"; T.cell_int t.a.gc_cycles; T.cell_int t.b.gc_cycles;
      signed t.gc_delta; pct_of_total t.gc_delta t.a.cycles ];
  T.add_sep bins;
  T.add_row bins
    [ "total"; T.cell_int t.a.cycles; T.cell_int t.b.cycles;
      signed t.total_delta; pct_of_total t.total_delta t.a.cycles ];
  Buffer.add_string buf (T.to_string bins);
  Buffer.add_string buf "\n\n";
  (* Loop blame: dominant bin named per loop; a remainder row keeps the
     rendered rows summing to the total even when truncated. *)
  let shown, rest =
    let rec split n = function
      | [] -> ([], [])
      | l when n = 0 -> ([], l)
      | x :: tl ->
          let s, r = split (n - 1) tl in
          (x :: s, r)
    in
    split top t.loops
  in
  line "loop blame (top %d of %d by |delta|):" (List.length shown)
    (List.length t.loops);
  let lt =
    T.make
      ~columns:
        [ ("loop", T.Left); ("A", T.Right); ("B", T.Right); ("delta", T.Right);
          ("dominant bin", T.Left); ("note", T.Left) ]
  in
  List.iter
    (fun d ->
      let dom =
        let best = ref 0 and besti = ref (-1) in
        Array.iteri
          (fun i v -> if abs v > abs !best then (best := v; besti := i))
          d.d_bins;
        if !besti < 0 then "-"
        else
          Printf.sprintf "%s %s" (List.nth Rundata.bin_names !besti)
            (signed !best)
      in
      let note =
        match d.d_only with
        | `Both -> ""
        | `Only_a -> "only in A"
        | `Only_b -> "only in B"
      in
      T.add_row lt
        [ loop_name d; T.cell_int d.d_a_total; T.cell_int d.d_b_total;
          signed d.d_delta; dom; note ])
    shown;
  (if rest <> [] then
     let rest_sum = List.fold_left (fun acc d -> acc + d.d_delta) 0 rest in
     T.add_row lt
       [ Printf.sprintf "(%d more loops)" (List.length rest); ""; "";
         signed rest_sum; ""; "" ]);
  Buffer.add_string buf (T.to_string lt);
  Buffer.add_string buf "\n\n";
  (* Allocation-site blame. *)
  let moved_sites = List.filter (fun s -> s.sd_delta <> 0) t.sites in
  if moved_sites <> [] then begin
    let shown =
      List.filteri (fun i _ -> i < top) moved_sites
    in
    line "allocation-site stall deltas (top %d of %d moved):"
      (List.length shown) (List.length moved_sites);
    let st =
      T.make
        ~columns:
          [ ("alloc site", T.Left); ("A stall", T.Right); ("B stall", T.Right);
            ("delta", T.Right); ("allocs", T.Right) ]
    in
    List.iter
      (fun s ->
        T.add_row st
          [
            (if s.sd_pc = -1 then s.sd_method
             else Printf.sprintf "%s@%d" s.sd_method s.sd_pc);
            T.cell_int s.sd_a_stall;
            T.cell_int s.sd_b_stall;
            signed s.sd_delta;
            signed s.sd_allocs_delta;
          ])
      shown;
    Buffer.add_string buf (T.to_string st);
    Buffer.add_string buf "\n\n"
  end;
  (* Attribution deltas. *)
  (match t.attribution with
  | None -> ()
  | Some rows ->
      line "attribution deltas:";
      let at =
        T.make
          ~columns:
            [ ("class", T.Left); ("A", T.Right); ("B", T.Right);
              ("delta", T.Right) ]
      in
      List.iter
        (fun (name, a, b) ->
          T.add_row at [ name; T.cell_int a; T.cell_int b; signed (b - a) ])
        rows;
      Buffer.add_string buf (T.to_string at);
      Buffer.add_string buf "\n\n");
  (* Provenance diffs. *)
  if t.provenance <> [] then begin
    line "pass-decision changes (%d loop%s):" (List.length t.provenance)
      (if List.length t.provenance = 1 then "" else "s");
    List.iter
      (fun p ->
        let parts = ref [] in
        let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
        List.iter (fun a -> add "+[%s]" a) p.pd_added;
        List.iter (fun a -> add "-[%s]" a) p.pd_removed;
        (match p.pd_inspection with
        | Some (x, y) -> add "inspection %s->%s" x y
        | None -> ());
        let sa, sb = p.pd_steps in
        if sa <> sb then add "steps %d->%d" sa sb;
        let ia, ib = p.pd_iterations in
        if ia <> ib then add "iterations %d->%d" ia ib;
        line "  %s/loop%d: %s" p.pd_method p.pd_loop
          (String.concat "  " (List.rev !parts)))
      t.provenance;
    Buffer.add_string buf "\n"
  end;
  (match check t with
  | None ->
      line
        "conservation: OK (per-loop deltas %s + gc %s = total cycle delta %s)"
        (signed (t.total_delta - t.gc_delta))
        (signed t.gc_delta) (signed t.total_delta)
  | Some msg -> line "conservation: VIOLATION — %s" msg);
  Buffer.contents buf

let to_json t =
  let loop_json d =
    J.Obj
      [
        ("method", J.Str d.d_method);
        ("loop", J.Int d.d_loop);
        ("a_total", J.Int d.d_a_total);
        ("b_total", J.Int d.d_b_total);
        ("delta", J.Int d.d_delta);
        ( "bins",
          J.Obj
            (List.mapi (fun i n -> (n, J.Int d.d_bins.(i))) Rundata.bin_names)
        );
      ]
  in
  let site_json s =
    J.Obj
      [
        ("method", J.Str s.sd_method);
        ("pc", J.Int s.sd_pc);
        ("a_stall", J.Int s.sd_a_stall);
        ("b_stall", J.Int s.sd_b_stall);
        ("delta", J.Int s.sd_delta);
        ("allocs_delta", J.Int s.sd_allocs_delta);
      ]
  in
  let prov_json p =
    J.Obj
      [
        ("method", J.Str p.pd_method);
        ("loop", J.Int p.pd_loop);
        ("added", J.List (List.map (fun s -> J.Str s) p.pd_added));
        ("removed", J.List (List.map (fun s -> J.Str s) p.pd_removed));
        ( "inspection",
          match p.pd_inspection with
          | None -> J.Null
          | Some (x, y) -> J.List [ J.Str x; J.Str y ] );
        ("steps_a", J.Int (fst p.pd_steps));
        ("steps_b", J.Int (snd p.pd_steps));
      ]
  in
  J.Obj
    [
      ("schema", J.Str "spf_diff_blame/v1");
      ("a", Rundata.to_json t.a);
      ("b", Rundata.to_json t.b);
      ("total_delta", J.Int t.total_delta);
      ("gc_delta", J.Int t.gc_delta);
      ( "bin_deltas",
        J.Obj
          (List.mapi (fun i n -> (n, J.Int t.bin_deltas.(i))) Rundata.bin_names)
      );
      ("loops", J.List (List.map loop_json t.loops));
      ("sites", J.List (List.map site_json t.sites));
      ( "attribution",
        match t.attribution with
        | None -> J.Null
        | Some rows ->
            J.List
              (List.map
                 (fun (n, a, b) ->
                   J.Obj [ ("class", J.Str n); ("a", J.Int a); ("b", J.Int b) ])
                 rows) );
      ("provenance", J.List (List.map prov_json t.provenance));
      ( "conservation",
        match check t with None -> J.Str "ok" | Some m -> J.Str m );
    ]
