(** One run, reduced to what differential diagnosis needs: the
    configuration axes it was produced under, total/GC cycles, the
    profiler's per-loop stall-bin and per-allocation-site breakdowns,
    the attribution outcome totals, and the pass's per-loop decision
    provenance.

    A snapshot comes from three places — a live profiled
    {!Workloads.Harness} run ({!of_run}), a recorded ["spf_diff/v1"]
    snapshot, or a plain ["spf_prof/v1"] report written by [spf_prof]
    (both via {!of_json}; the latter carries no config, attribution or
    provenance, and the corresponding blame sections are skipped). *)

type config = {
  c_workload : string;
  c_machine : string;
  c_mode : string;  (** {!Strideprefetch.Options.mode_name} spelling *)
  c_engine : string;
  c_hw : string;  (** resolved hardware-prefetch spec, e.g. ["stream:8"] *)
  c_prediction : string;
  c_threshold : int option;
  c_passes : bool;  (** standard JIT passes enabled *)
}

val unknown_config : config
(** All-["?"] placeholder used for ["spf_prof/v1"] inputs, which record
    no configuration. *)

type loop = {
  lr_method : string;
  lr_loop : int;  (** [-1]: the method's straight-line remainder *)
  lr_depth : int;
  lr_bins : int array;  (** indexed like {!Profile.Report.bin_fields} *)
  lr_total : int;
  lr_actions : int;  (** [-1] unknown *)
}

type site = {
  s_method : string;
  s_pc : int;
  s_allocs : int;
  s_bytes : int;
  s_tlb : int;
  s_l1 : int;
  s_l2 : int;
  s_mem : int;
  s_total : int;
}

type attribution = {
  a_issued : int;
  a_cancelled : int;
  a_redundant : int;
  a_redundant_hw : int;
  a_useful : int;
  a_late : int;
  a_useless : int;
}

type prov = {
  p_method : string;
  p_loop : int;
  p_actions : string list;  (** {!Strideprefetch.Codegen.action_descriptor}s,
                                sorted *)
  p_rejected : int;
  p_promoted : bool;
  p_low_trip : bool;
  p_iterations : int;
  p_steps : int;  (** object-inspection steps spent on this loop *)
  p_skipped : bool;  (** inspection replaced by static claims *)
  p_shortened : bool;  (** inspection ran on the reduced budget *)
}

type t = {
  config : config;
  cycles : int;
  gc_cycles : int;
  totals : int array;  (** whole-run bins, {!Profile.Report.bin_fields} order *)
  loops : loop list;
  sites : site list;
  attribution : attribution option;
  provenance : prov list;  (** empty when unknown (recorded prof reports) *)
}

val bin_names : string list
(** The bin spelling shared with {!Profile.Report.bin_fields}. *)

val of_run :
  config:config -> Workloads.Harness.run_result -> (t, string) result
(** Reduce a live run. [Error] unless the run was made with
    [~profile:true] (the per-loop breakdown is the diff's backbone). *)

val to_json : t -> Telemetry.Json.t
(** Schema ["spf_diff/v1"]. *)

val of_json : Telemetry.Json.t -> (t, string) result
(** Accepts ["spf_diff/v1"] and ["spf_prof/v1"] (the latter with
    {!unknown_config} and no attribution/provenance). *)

val of_bench_blame :
  config:config -> cycles:int -> Telemetry.Json.t -> (t, string) result
(** A fourth source: the compact ["blame"] payload a bench_hotpath/v2
    report embeds in its profiled cells
    ([{"gc_cycles": N, "loops": [...]}] — loops spelled as in the
    ["spf_diff/v1"] snapshot). The whole-run bin totals are
    reconstructed by summing the loops (every profiled cycle lands in
    exactly one loop row, the straight-line remainders included, so the
    sum is exact); sites, attribution and provenance are absent.
    [Error] when the payload carries no ["loops"] array. *)

val load : string -> (t, string) result
(** Parse a snapshot file; I/O and parse errors become [Error]. *)
