(* Condition (3), parameterized: the paper's constant is half a cache
   line ("the hardware prefetcher already covers shorter strides"); a
   caller that knows which hardware prefetcher the machine actually
   ships can override the byte threshold (the arbitration sweep picks it
   empirically). *)
let inter_stride_ok ?threshold ~line_bytes stride =
  let threshold =
    match threshold with Some b -> b | None -> line_bytes / 2
  in
  abs stride > threshold

let has_dependents code ~pc =
  pc + 1 >= Array.length code
  ||
  match code.(pc + 1) with Vm.Bytecode.Pop -> false | _ -> true

let dedup_offsets ~line_bytes offsets =
  (* Offsets within half a line of each other "apparently share" a line:
     with unknown object alignment, closer targets usually land on the
     line already being prefetched, farther ones usually do not. *)
  let shares_line kept offset = abs (offset - kept) < line_bytes / 2 in
  List.fold_left
    (fun kept offset ->
      if List.exists (fun k -> shares_line k offset) kept then kept
      else offset :: kept)
    [] offsets
  |> List.rev
