(** Stride pattern detection over object-inspection address traces.

    A load (or a pair of loads) has a pattern when one stride value
    accounts for at least [opts.majority] (75%) of the observed strides
    (Section 4: "We recognize that a constant stride is dominant when it
    matches 75% of the all collected strides."). *)

type pattern = {
  stride : int;  (** the dominant stride, in bytes; may be negative *)
  matched : int;  (** samples equal to the dominant stride *)
  samples : int;  (** total strides observed *)
}

val confidence : pattern -> float

val dominant : opts:Options.t -> int list -> pattern option
(** The dominant value of a stride sample list, subject to the majority
    threshold and [opts.min_samples]. *)

val inter : opts:Options.t -> (int * int) list -> pattern option
(** Inter-iteration pattern of one load site from its [(iteration,
    address)] records: strides between consecutive executions. A stride of
    0 means the address is loop invariant (such loads are never
    prefetched). *)

val intra :
  opts:Options.t ->
  anchor:(int * int) list ->
  other:(int * int) list ->
  pattern option
(** Intra-iteration pattern of an adjacent pair: the difference between
    the two sites' addresses within one iteration, sampled across
    iterations ("given a pair of load instructions in a loop, we define
    the stride between them as the difference between the addresses
    accessed by the two instructions within one iteration", Section 1).
    First executions per iteration are compared. *)

val is_invariant : pattern -> bool

val phased : opts:Options.t -> (int * int) list -> pattern list
(** Wu-style phased multiple-stride detection (an extension beyond the
    paper, which focuses on single strides): at least two strides, each
    covering [opts.phased_min_fraction] of the samples, jointly covering
    the majority threshold, with no single dominant stride. Returns the
    phases by descending sample count, or [[]] for single-stride or
    irregular loads. *)

val delta_histogram : (int * int) list -> (int * int) list
(** [(delta, count)] histogram of the consecutive-execution address
    deltas of one site's [(iteration, address)] records, sorted by
    descending count (ties by delta). This is the raw evidence the
    {!inter}/{!phased} decisions are made from; the pass embeds it in
    explain records. *)

val pp : Format.formatter -> pattern -> unit
