(** Tuning knobs of the prefetching algorithm.

    Paper defaults (Section 4): 20 inspected iterations, a 75% majority
    threshold for recognizing a dominant stride, and a scheduling distance
    of one iteration for both inter- and intra-iteration prefetching. *)

(** The three evaluated configurations: [Off] is the paper's BASELINE,
    [Inter] its INTER (the emulation of Wu's stride prefetching restricted
    to in-loop loads), [Inter_intra] its INTER+INTRA. *)
type mode = Off | Inter | Inter_intra

(** How intra-iteration/dereference-based prefetches are realized.
    [Auto] picks guarded loads on machines with few DTLB entries (the
    paper uses guarded loads on the Pentium 4 for TLB priming, hardware
    prefetch instructions otherwise). *)
type prefetch_style = Auto | Always_guarded | Always_hardware

(** Where stride predictions come from. [Inspect] is the paper's dynamic
    object inspection; [Static] trusts the address-algebra abstract
    interpretation ({!Analysis.Addralg}) alone; [Hybrid] uses static
    [Certain] verdicts to skip inspection, [Likely] to shorten it, and
    falls back to full inspection on [Unknown]. *)
type prediction_tier = Inspect | Static | Hybrid

type t = {
  mode : mode;
  inspect_iterations : int;  (** iterations of the target loop to observe *)
  majority : float;  (** dominant-stride threshold, 0 < m <= 1 *)
  scheduling_distance : int;  (** c, in iterations *)
  inter_stride_threshold : int option;
      (** profitability condition (3): emit an inter-iteration prefetch
          only when |stride| {e exceeds} this many bytes. [None] means
          the paper's rule — half the cache line of the level software
          prefetches fill — which assumes the next-line stream hardware
          prefetcher; the arbitration sweep retunes it per machine for
          the other HW models. *)
  small_trip_count : int;
      (** nested loops observed to iterate fewer times than this are
          promoted into their parent *)
  min_samples : int;  (** strides needed before a pattern is trusted *)
  max_inspect_steps : int;  (** hard budget for one object inspection *)
  style : prefetch_style;
  small_dtlb_entries : int;
      (** [Auto] style uses guarded loads when the DTLB has at most this
          many entries *)
  inspect_calls : bool;
      (** inter-procedural object inspection: step into (statically
          dispatched) callees instead of skipping them. The paper discusses
          this as a possible extension ("making object inspection
          inter-procedural might improve the accuracy of our analysis, but
          it would increase the compilation time", Section 3.2); off by
          default, like the paper's configuration. *)
  max_call_depth : int;
      (** callee nesting bound when [inspect_calls] is on *)
  enable_phased : bool;
      (** detect Wu-style "phased multiple-stride" loads (no single
          dominant stride, but a few strides jointly dominant) and
          prefetch them with a run-time-computed stride. Off by default:
          the paper restricts itself to single-stride patterns. *)
  phased_min_fraction : float;
      (** minimum share of samples for each phase of a phased pattern *)
  check_invariants : bool;
      (** assert the telemetry/profiler conservation laws at the end of
          every harness run (attribution:
          [issued = cancelled + redundant + useful + late + useless];
          profiler: binned cycles reconstruct [Stats.cycles] exactly) and
          raise on violation. Cheap — the checks are O(sites + pcs) once
          per run — but off by default so library users decide how
          violations surface. *)
  fault_skip_guard_dominance : bool;
      (** fault injection for the analysis layer: emit a deref splice's
          [prefetch_indirect]s {e before} their [spec_load] guard. The
          miscompile is runtime-benign (the register still holds its
          initial null, so the indirect prefetches are no-ops) but must
          be caught statically by the spec-def-use / guard-dominance
          checkers. Never enable outside lint self-tests. *)
  prediction : prediction_tier;
      (** stride-prediction source; [Inspect] (the default) is the paper's
          configuration and leaves compilation bit-identical to PR 7 *)
  fault_prediction_desync : bool;
      (** fault injection for the prediction crosscheck: when a method is
          rewritten under a non-[Inspect] tier, prepend an observable
          [Iconst; Print] pair to its body so static/hybrid output diverges
          from inspect-mode output. Only the oracle's prediction_crosscheck
          can catch it. Never enable outside fuzz self-tests. *)
}

let default =
  {
    mode = Inter_intra;
    inspect_iterations = 20;
    majority = 0.75;
    scheduling_distance = 1;
    inter_stride_threshold = None;
    small_trip_count = 16;
    min_samples = 4;
    max_inspect_steps = 100_000;
    style = Auto;
    small_dtlb_entries = 64;
    inspect_calls = false;
    max_call_depth = 3;
    enable_phased = false;
    phased_min_fraction = 0.2;
    check_invariants = false;
    fault_skip_guard_dominance = false;
    prediction = Inspect;
    fault_prediction_desync = false;
  }

let with_mode mode t = { t with mode }

let mode_name = function
  | Off -> "BASELINE"
  | Inter -> "INTER"
  | Inter_intra -> "INTER+INTRA"

let prediction_name = function
  | Inspect -> "inspect"
  | Static -> "static"
  | Hybrid -> "hybrid"

let prediction_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "inspect" | "dynamic" -> Ok Inspect
  | "static" -> Ok Static
  | "hybrid" -> Ok Hybrid
  | other ->
      Error
        (Printf.sprintf
           "unknown prediction tier %S (expected inspect, static or hybrid)"
           other)

let resolved_inter_stride_threshold t (machine : Memsim.Config.machine) =
  match t.inter_stride_threshold with
  | Some b -> b
  | None ->
      let line =
        match machine.prefetch_target with
        | Memsim.Config.To_l2 -> machine.l2.line_bytes
        | Memsim.Config.To_l1 -> machine.l1.line_bytes
      in
      line / 2

let use_guarded t (machine : Memsim.Config.machine) =
  match t.style with
  | Always_guarded -> true
  | Always_hardware -> false
  | Auto -> machine.dtlb.entries <= t.small_dtlb_entries

let validate t =
  if t.inspect_iterations < 2 then Error "inspect_iterations must be >= 2"
  else if not (t.majority > 0.0 && t.majority <= 1.0) then
    Error "majority must be in (0, 1]"
  else if t.scheduling_distance < 1 then
    Error "scheduling_distance must be >= 1"
  else if
    match t.inter_stride_threshold with Some b -> b < 0 | None -> false
  then Error "inter_stride_threshold must be >= 0"
  else if t.min_samples < 2 then Error "min_samples must be >= 2"
  else if t.small_trip_count < 1 then Error "small_trip_count must be >= 1"
  else if t.max_inspect_steps < 100 then
    Error "max_inspect_steps must be >= 100"
  else if t.max_call_depth < 0 then Error "max_call_depth must be >= 0"
  else if not (t.phased_min_fraction > 0.0 && t.phased_min_fraction <= 1.0)
  then Error "phased_min_fraction must be in (0, 1]"
  else Ok ()
