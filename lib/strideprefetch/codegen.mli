(** Prefetch code generation (Section 3.3).

    Given a loop's load dependence graph annotated with inter- and
    intra-iteration stride patterns, decide the prefetching actions and
    splice the corresponding pseudo-instruction sequences into the method
    body, immediately after each anchor load:

    - [prefetch (A(Lx) + d*c)] when every load dependent on [Lx] has its
      own inter-iteration pattern (or none depend on it);
    - [a = spec_load (A(Lx) + d*c); prefetch (F[Lx,Ly](a)); prefetch
      (F[Lx,Ly](a) + S[Ly,Lz]); ...] when a dependent [Ly] has no
      inter-iteration pattern — dereference-based prefetching plus
      intra-iteration stride prefetching for every [Lz] intra-strided with
      [Ly] directly or transitively.

    Profitability filtering ({!Profitability}) is applied throughout. *)

type deref_target = {
  target_site : int;  (** the load whose future data is prefetched *)
  offset : int;  (** relative to the spec_load result *)
  via_intra : bool;  (** reached through an intra-iteration pattern *)
}

type action_kind =
  | Prefetch_direct of { distance : int }
  | Prefetch_deref of {
      distance : int;
      reg : int;
      targets : deref_target list;
    }
  | Prefetch_phased of { times : int; phases : Stride.pattern list }
      (** dynamic-stride prefetch for Wu-style phased multiple-stride
          loads; generated only under [Options.enable_phased] (extension
          beyond the paper's single-stride focus) *)

type action = { anchor_site : int; anchor_pc : int; kind : action_kind }

type plan = {
  actions : action list;
  rejected : (int * string) list;  (** anchor site, reason *)
  regs_used : int;
}

val plan :
  opts:Options.t ->
  machine:Memsim.Config.machine ->
  code:Vm.Bytecode.instr array ->
  ldg:Ldg.t ->
  inter:(int -> Stride.pattern option) ->
  intra:(int -> int -> Stride.pattern option) ->
  phased:(int -> Stride.pattern list) ->
  first_reg:int ->
  plan
(** Decide actions for every node of [ldg]. [inter site] and
    [intra anchor succ] expose the detected patterns. [first_reg] is the
    next free spec-load register (plans for several loops of one method
    share the register space). *)

val splice_of_action :
  ?fault_skip_guard:bool -> guarded:bool -> action -> Vm.Bytecode.instr list
(** The pseudo-instruction sequence one action splices after its anchor.
    [fault_skip_guard] (default false) injects the guard-dominance
    miscompile of {!Options.t.fault_skip_guard_dominance}: the
    dereference prefetches are emitted {e before} their [spec_load]. *)

val apply :
  ?fault_skip_guard:bool ->
  guarded:bool ->
  Vm.Bytecode.instr array ->
  plan list ->
  Vm.Bytecode.instr array
(** Splice all planned sequences into the code, remapping branch targets.
    Jump targets keep pointing at the original instructions, so a spliced
    sequence runs exactly when its anchor load ran. [guarded] selects the
    guarded-load form for indirect prefetches (TLB priming on machines
    with small DTLBs, per {!Options.use_guarded});
    [fault_skip_guard] is forwarded to {!splice_of_action}. *)

val action_descriptor : action -> string
(** A stable one-line identity of an action for provenance diffing, e.g.
    ["direct s3 d=128"] or ["deref s5 d=64 r0 targets=2"]. Deliberately
    omits the anchor pc — splicing renumbers pcs, so descriptors stay
    comparable across configurations that rewrite the body differently. *)
