module C = Vm.Classfile

type loop_report = {
  method_name : string;
  loop_id : int;
  header_block : int;
  candidate_sites : int list;
  inter_patterns : (int * Stride.pattern) list;
  intra_patterns : ((int * int) * Stride.pattern) list;
  plan : Codegen.plan;
  promoted : bool;
  skipped_low_trip : bool;
  iterations_observed : int;
  inspection_steps : int;
}

module Int_set = Jit.Loops.Int_set

(* All sites syntactically inside a loop's blocks (nested loops included). *)
let loop_sites cfg loop =
  Jit.Loops.pcs cfg loop
  |> List.concat_map (fun (_pc, instr) -> Vm.Bytecode.all_sites instr)
  |> List.sort_uniq compare

let empty_plan = { Codegen.actions = []; rejected = []; regs_used = 0 }

let process ~opts ~interp ~(meth : C.method_info) ~args ~rewrite =
  let program = Vm.Interp.program interp in
  let code = meth.code in
  if Array.length code = 0 then []
  else begin
    let cfg = Jit.Cfg.build code in
    let forest = Jit.Loops.analyze cfg in
    if forest.roots = [] then []
    else begin
      let machine = (Vm.Interp.options interp).machine in
      let infos =
        Jit.Stack_model.analyze code ~arity:meth.arity
          ~callee_arity:(fun m -> (C.method_of_id program m).arity)
          ~callee_returns:(fun m -> (C.method_of_id program m).returns_value)
      in
      let heap = Vm.Interp.heap interp in
      let globals = Vm.Interp.global interp in
      (* candidate sites promoted upward from small-trip-count loops *)
      let promoted_sites : (int, int list) Hashtbl.t = Hashtbl.create 4 in
      let reports = ref [] in
      let plans = ref [] in
      let next_reg = ref meth.n_pref_regs in
      List.iter
        (fun (loop : Jit.Loops.loop) ->
          let own = loop_sites cfg loop in
          (* Exclude sites of non-promoted children (they were optimized in
             their own right); include sites promoted out of children. *)
          let child_excluded, child_promoted =
            List.fold_left
              (fun (excl, promo) (child : Jit.Loops.loop) ->
                match Hashtbl.find_opt promoted_sites child.loop_id with
                | Some sites -> (excl, promo @ sites)
                | None -> (excl @ loop_sites cfg child, promo))
              ([], []) loop.children
          in
          let candidates =
            List.filter (fun s -> not (List.mem s child_excluded)) own
            @ child_promoted
            |> List.sort_uniq compare
          in
          let inspection =
            Inspection.inspect ~program ~heap ~globals ~opts ~cfg ~forest
              ~target:loop ~meth ~args
          in
          let small_trip =
            inspection.natural_exit
            && inspection.iterations < opts.small_trip_count
          in
          if small_trip && loop.parent <> None then begin
            Hashtbl.replace promoted_sites loop.loop_id candidates;
            reports :=
              {
                method_name = meth.method_name;
                loop_id = loop.loop_id;
                header_block = loop.header;
                candidate_sites = candidates;
                inter_patterns = [];
                intra_patterns = [];
                plan = empty_plan;
                promoted = true;
                skipped_low_trip = false;
                iterations_observed = inspection.iterations;
                inspection_steps = inspection.steps;
              }
              :: !reports
          end
          else if small_trip then
            reports :=
              {
                method_name = meth.method_name;
                loop_id = loop.loop_id;
                header_block = loop.header;
                candidate_sites = candidates;
                inter_patterns = [];
                intra_patterns = [];
                plan = empty_plan;
                promoted = false;
                skipped_low_trip = true;
                iterations_observed = inspection.iterations;
                inspection_steps = inspection.steps;
              }
              :: !reports
          else begin
            let ldg = Ldg.build infos ~sites:candidates in
            let trace site =
              if site < Array.length inspection.per_site then
                inspection.per_site.(site)
              else []
            in
            let inter_cache = Hashtbl.create 16 in
            let inter site =
              match Hashtbl.find_opt inter_cache site with
              | Some p -> p
              | None ->
                  let p = Stride.inter ~opts (trace site) in
                  Hashtbl.add inter_cache site p;
                  p
            in
            let intra anchor succ =
              Stride.intra ~opts ~anchor:(trace anchor) ~other:(trace succ)
            in
            let phased site = Stride.phased ~opts (trace site) in
            let plan =
              Codegen.plan ~opts ~machine ~code ~ldg ~inter ~intra ~phased
                ~first_reg:!next_reg
            in
            next_reg := !next_reg + plan.regs_used;
            plans := plan :: !plans;
            let inter_patterns =
              List.filter_map
                (fun s -> Option.map (fun p -> (s, p)) (inter s))
                (Ldg.sites ldg)
            in
            let intra_patterns =
              List.concat_map
                (fun s ->
                  List.filter_map
                    (fun succ ->
                      Option.map (fun p -> ((s, succ), p)) (intra s succ))
                    (Ldg.succs ldg s))
                (Ldg.sites ldg)
            in
            reports :=
              {
                method_name = meth.method_name;
                loop_id = loop.loop_id;
                header_block = loop.header;
                candidate_sites = candidates;
                inter_patterns;
                intra_patterns;
                plan;
                promoted = false;
                skipped_low_trip = false;
                iterations_observed = inspection.iterations;
                inspection_steps = inspection.steps;
              }
              :: !reports
          end)
        (Jit.Loops.postorder forest);
      if rewrite && List.exists (fun p -> p.Codegen.actions <> []) !plans
      then begin
        let guarded = Options.use_guarded opts machine in
        meth.code <-
          Codegen.apply
            ~fault_skip_guard:opts.fault_skip_guard_dominance ~guarded code
            !plans;
        meth.n_pref_regs <- !next_reg
      end;
      List.rev !reports
    end
  end

let run ~opts ~interp ~meth ~args =
  match opts.Options.mode with
  | Options.Off -> []
  | Options.Inter | Options.Inter_intra ->
      process ~opts ~interp ~meth ~args ~rewrite:true

let analyze_only ~opts ~interp ~meth ~args =
  match opts.Options.mode with
  | Options.Off -> []
  | Options.Inter | Options.Inter_intra ->
      process ~opts ~interp ~meth ~args ~rewrite:false

let make_pass ~opts ~interp ?report_sink () =
  {
    Jit.Pipeline.pass_name = "stride-prefetch";
    apply =
      (fun meth args ->
        let reports = run ~opts ~interp ~meth ~args in
        match report_sink with Some sink -> sink reports | None -> ());
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v 2>%s loop %d (header B%d)%s%s:@," r.method_name
    r.loop_id r.header_block
    (if r.promoted then " [promoted: small trip count]" else "")
    (if r.skipped_low_trip then " [skipped: low trip count]" else "");
  Format.fprintf ppf "iterations observed: %d, inspection steps: %d@,"
    r.iterations_observed r.inspection_steps;
  Format.fprintf ppf "candidates: %s@,"
    (String.concat ", "
       (List.map (Printf.sprintf "L%d") r.candidate_sites));
  List.iter
    (fun (s, p) -> Format.fprintf ppf "inter L%d: %a@," s Stride.pp p)
    r.inter_patterns;
  List.iter
    (fun ((a, b), p) ->
      Format.fprintf ppf "intra (L%d,L%d): %a@," a b Stride.pp p)
    r.intra_patterns;
  Format.fprintf ppf "plan: %d action%s, %d rejected, %d spec-load reg%s@,"
    (List.length r.plan.actions)
    (if List.length r.plan.actions = 1 then "" else "s")
    (List.length r.plan.rejected) r.plan.regs_used
    (if r.plan.regs_used = 1 then "" else "s");
  List.iter
    (fun (a : Codegen.action) ->
      match a.kind with
      | Codegen.Prefetch_direct { distance } ->
          Format.fprintf ppf "emit: prefetch (A(L%d) %+d)@," a.anchor_site
            distance
      | Codegen.Prefetch_phased { times; phases } ->
          Format.fprintf ppf "emit: prefetch (A(L%d) + delta*%d)  ; phases %s@,"
            a.anchor_site times
            (String.concat "/"
               (List.map
                  (fun (p : Stride.pattern) -> string_of_int p.stride)
                  phases))
      | Codegen.Prefetch_deref { distance; reg; targets } ->
          Format.fprintf ppf "emit: p%d := spec_load (A(L%d) %+d)@," reg
            a.anchor_site distance;
          List.iter
            (fun (t : Codegen.deref_target) ->
              Format.fprintf ppf "emit: prefetch (p%d %+d)  ; for L%d%s@," reg
                t.offset t.target_site
                (if t.via_intra then " via intra stride" else ""))
            targets)
    r.plan.actions;
  List.iter
    (fun (s, reason) -> Format.fprintf ppf "skip L%d: %s@," s reason)
    r.plan.rejected;
  Format.fprintf ppf "@]"
