module C = Vm.Classfile

type site_evidence = {
  site : int;
  observations : int;  (** address records collected for this site *)
  delta_histogram : (int * int) list;  (** (delta, count), top first *)
  top_fraction : float;
      (** share of the top delta — what the 75%-majority rule tested *)
}

type loop_report = {
  method_name : string;
  loop_id : int;
  header_block : int;
  candidate_sites : int list;
  evidence : site_evidence list;
  inter_patterns : (int * Stride.pattern) list;
  intra_patterns : ((int * int) * Stride.pattern) list;
  plan : Codegen.plan;
  promoted : bool;
  skipped_low_trip : bool;
  iterations_observed : int;
  inspection_steps : int;
  predictions : Predict.prediction list;
  inspection_skipped : bool;
  inspection_shortened : bool;
}

module Int_set = Jit.Loops.Int_set

(* All sites syntactically inside a loop's blocks (nested loops included). *)
let loop_sites cfg loop =
  Jit.Loops.pcs cfg loop
  |> List.concat_map (fun (_pc, instr) -> Vm.Bytecode.all_sites instr)
  |> List.sort_uniq compare

let empty_plan = { Codegen.actions = []; rejected = []; regs_used = 0 }

(* Per-site inspection evidence: the delta histograms the accept/reject
   decisions were made from, packaged for the report and the explain
   records. *)
let evidence_of (inspection : Inspection.result) candidates =
  List.filter_map
    (fun site ->
      let recs =
        if site < Array.length inspection.per_site then
          inspection.per_site.(site)
        else []
      in
      if recs = [] then None
      else begin
        let hist = Stride.delta_histogram recs in
        let total = List.fold_left (fun a (_, c) -> a + c) 0 hist in
        let top = match hist with (_, c) :: _ -> c | [] -> 0 in
        Some
          {
            site;
            observations = List.length recs;
            delta_histogram = hist;
            top_fraction =
              (if total = 0 then 0.0
               else float_of_int top /. float_of_int total);
          }
      end)
    candidates

(* The explain record: one instant event per analyzed loop carrying the
   decision and its evidence, emitted when a telemetry sink is given. *)
let explain_instant sink (r : loop_report) =
  let open Telemetry in
  let pattern_args =
    List.map
      (fun (s, (p : Stride.pattern)) ->
        ( Printf.sprintf "inter_L%d" s,
          Json.Str
            (Printf.sprintf "stride %d (%d/%d)" p.stride p.matched p.samples)
        ))
      r.inter_patterns
    @ List.map
        (fun ((a, b), (p : Stride.pattern)) ->
          ( Printf.sprintf "intra_L%d_L%d" a b,
            Json.Str
              (Printf.sprintf "stride %d (%d/%d)" p.stride p.matched
                 p.samples) ))
        r.intra_patterns
  in
  let evidence_args =
    List.map
      (fun e ->
        ( Printf.sprintf "evidence_L%d" e.site,
          Json.Obj
            [
              ("observations", Json.Int e.observations);
              ("top_fraction", Json.Float e.top_fraction);
              ( "deltas",
                Json.List
                  (List.map
                     (fun (d, c) ->
                       Json.Obj
                         [ ("delta", Json.Int d); ("count", Json.Int c) ])
                     e.delta_histogram) );
            ] ))
      r.evidence
  in
  Sink.instant sink ~cat:"explain" "loop-decision"
    ~args:
      ([
         ("method", Json.Str r.method_name);
         ("loop", Json.Int r.loop_id);
         ("header_block", Json.Int r.header_block);
         ("promoted", Json.Bool r.promoted);
         ("skipped_low_trip", Json.Bool r.skipped_low_trip);
         ("inspection_skipped", Json.Bool r.inspection_skipped);
         ("inspection_shortened", Json.Bool r.inspection_shortened);
         ("iterations", Json.Int r.iterations_observed);
         ("inspection_steps", Json.Int r.inspection_steps);
         ( "candidates",
           Json.List (List.map (fun s -> Json.Int s) r.candidate_sites) );
         ("actions", Json.Int (List.length r.plan.actions));
         ( "rejected",
           Json.List
             (List.map
                (fun (s, reason) ->
                  Json.Obj
                    [ ("site", Json.Int s); ("reason", Json.Str reason) ])
                r.plan.rejected) );
       ]
      @ List.map
          (fun (p : Predict.prediction) ->
            ( Printf.sprintf "predict_L%d" p.site,
              Json.Str
                (Printf.sprintf "%s%s (%s)"
                   (Predict.verdict_name p.verdict)
                   (match p.stride with
                   | Some s -> Printf.sprintf " stride %d" s
                   | None -> "")
                   p.reason) ))
          r.predictions
      @ pattern_args @ evidence_args)

(* Register compile-time provenance for every prefetch instruction the
   plan will splice, under the same structural keys the interpreter
   resolves at execution time. *)
let register_plan registry ~(meth : C.method_info) ~loop_id
    (plan : Codegen.plan) =
  let open Telemetry.Attrib in
  let mid = meth.method_id in
  let meta kind ~anchor ~target =
    {
      method_name = meth.method_name;
      loop_id;
      kind;
      anchor_site = anchor;
      target_site = target;
    }
  in
  List.iter
    (fun (a : Codegen.action) ->
      match a.kind with
      | Codegen.Prefetch_direct _ ->
          register registry
            (Inter_site { method_id = mid; site = a.anchor_site })
            (meta Inter ~anchor:a.anchor_site ~target:a.anchor_site)
      | Codegen.Prefetch_phased _ ->
          register registry
            (Dynamic_site { method_id = mid; site = a.anchor_site })
            (meta Phased ~anchor:a.anchor_site ~target:a.anchor_site)
      | Codegen.Prefetch_deref { reg = r; targets; _ } ->
          register registry
            (Spec_site { method_id = mid; site = a.anchor_site; reg = r })
            (meta Spec ~anchor:a.anchor_site ~target:a.anchor_site);
          List.iter
            (fun (tgt : Codegen.deref_target) ->
              register registry
                (Indirect_site
                   { method_id = mid; reg = r; offset = tgt.offset })
                (meta
                   (if tgt.via_intra then Intra else Deref)
                   ~anchor:a.anchor_site ~target:tgt.target_site))
            targets)
    plan.actions

let process ?registry ?sink ?predictor ~opts ~interp ~(meth : C.method_info)
    ~args ~rewrite () =
  let program = Vm.Interp.program interp in
  let code = meth.code in
  if Array.length code = 0 then []
  else begin
    let cfg = Jit.Cfg.build code in
    let forest = Jit.Loops.analyze cfg in
    if forest.roots = [] then []
    else begin
      let machine = (Vm.Interp.options interp).machine in
      let infos =
        Jit.Stack_model.analyze code ~arity:meth.arity
          ~callee_arity:(fun m -> (C.method_of_id program m).arity)
          ~callee_returns:(fun m -> (C.method_of_id program m).returns_value)
      in
      let heap = Vm.Interp.heap interp in
      let globals = Vm.Interp.global interp in
      (* candidate sites promoted upward from small-trip-count loops *)
      let promoted_sites : (int, int list) Hashtbl.t = Hashtbl.create 4 in
      let reports = ref [] in
      let plans = ref [] in
      let next_reg = ref meth.n_pref_regs in
      let push_report r =
        reports := r :: !reports;
        match sink with Some s -> explain_instant s r | None -> ()
      in
      List.iter
        (fun (loop : Jit.Loops.loop) ->
          let own = loop_sites cfg loop in
          (* Exclude sites of non-promoted children (they were optimized in
             their own right); include sites promoted out of children. *)
          let child_excluded, child_promoted =
            List.fold_left
              (fun (excl, promo) (child : Jit.Loops.loop) ->
                match Hashtbl.find_opt promoted_sites child.loop_id with
                | Some sites -> (excl, promo @ sites)
                | None -> (excl @ loop_sites cfg child, promo))
              ([], []) loop.children
          in
          let candidates =
            List.filter (fun s -> not (List.mem s child_excluded)) own
            @ child_promoted
            |> List.sort_uniq compare
          in
          (* Static tier: claim strides before deciding how much dynamic
             inspection this loop still needs (the hybrid skip rule). *)
          let predicted =
            match predictor with
            | None -> Predict.none
            | Some (f : Predict.predictor) -> f ~meth ~cfg ~loop ~candidates
          in
          let depth = Predict.depth_of ~opts predicted ~loop ~candidates in
          let inspection =
            let run_inspection opts () =
              Inspection.inspect ~program ~heap ~globals ~opts ~cfg ~forest
                ~target:loop ~meth ~args
            in
            let spanned run =
              match sink with
              | None -> run ()
              | Some s ->
                  Telemetry.Sink.span s ~cat:"inspect"
                    ~args:
                      [
                        ("method", Telemetry.Json.Str meth.method_name);
                        ("loop", Telemetry.Json.Int loop.loop_id);
                      ]
                    "inspect" run
            in
            match depth with
            | Predict.Skipped ->
                {
                  Inspection.per_site = [||];
                  iterations = 0;
                  natural_exit = false;
                  steps = 0;
                }
            | Predict.Full -> spanned (run_inspection opts)
            | Predict.Shortened n | Predict.Probed n ->
                spanned
                  (run_inspection { opts with Options.inspect_iterations = n })
          in
          (* [inspection_skipped] means "the plan is built from the static
             claims": true for [Skipped] and for [Probed], whose shortened
             inspection only observes the loop's trip class. *)
          let inspection_skipped =
            match depth with
            | Predict.Skipped | Predict.Probed _ -> true
            | _ -> false
          in
          let inspection_shortened =
            match depth with Predict.Shortened _ -> true | _ -> false
          in
          let evidence = evidence_of inspection candidates in
          let small_trip =
            inspection.natural_exit
            && inspection.iterations < opts.small_trip_count
          in
          if small_trip && loop.parent <> None then begin
            Hashtbl.replace promoted_sites loop.loop_id candidates;
            push_report
              {
                method_name = meth.method_name;
                loop_id = loop.loop_id;
                header_block = loop.header;
                candidate_sites = candidates;
                evidence;
                inter_patterns = [];
                intra_patterns = [];
                plan = empty_plan;
                promoted = true;
                skipped_low_trip = false;
                iterations_observed = inspection.iterations;
                inspection_steps = inspection.steps;
                predictions = predicted.Predict.predictions;
                inspection_skipped;
                inspection_shortened;
              }
          end
          else if small_trip then
            push_report
              {
                method_name = meth.method_name;
                loop_id = loop.loop_id;
                header_block = loop.header;
                candidate_sites = candidates;
                evidence;
                inter_patterns = [];
                intra_patterns = [];
                plan = empty_plan;
                promoted = false;
                skipped_low_trip = true;
                iterations_observed = inspection.iterations;
                inspection_steps = inspection.steps;
                predictions = predicted.Predict.predictions;
                inspection_skipped;
                inspection_shortened;
              }
          else begin
            let ldg = Ldg.build infos ~sites:candidates in
            let trace site =
              if site < Array.length inspection.per_site then
                inspection.per_site.(site)
              else []
            in
            let inter_cache = Hashtbl.create 16 in
            (* With inspection skipped, the plan is driven by synthesized
               patterns carrying the static claims; otherwise by the
               observed traces, exactly as before. *)
            let inter site =
              if inspection_skipped then
                Predict.static_inter ~opts predicted site
              else
                match Hashtbl.find_opt inter_cache site with
                | Some p -> p
                | None ->
                    let p = Stride.inter ~opts (trace site) in
                    Hashtbl.add inter_cache site p;
                    p
            in
            let intra anchor succ =
              if inspection_skipped then
                Predict.static_intra ~opts predicted anchor succ
              else
                Stride.intra ~opts ~anchor:(trace anchor) ~other:(trace succ)
            in
            let phased site = Stride.phased ~opts (trace site) in
            let plan =
              let run () =
                Codegen.plan ~opts ~machine ~code ~ldg ~inter ~intra ~phased
                  ~first_reg:!next_reg
              in
              match sink with
              | None -> run ()
              | Some s ->
                  Telemetry.Sink.span s ~cat:"pass"
                    ~args:
                      [
                        ("method", Telemetry.Json.Str meth.method_name);
                        ("loop", Telemetry.Json.Int loop.loop_id);
                      ]
                    "codegen" run
            in
            next_reg := !next_reg + plan.regs_used;
            plans := plan :: !plans;
            (match registry with
            | Some reg when rewrite ->
                register_plan reg ~meth ~loop_id:loop.loop_id plan
            | Some _ | None -> ());
            let inter_patterns =
              List.filter_map
                (fun s -> Option.map (fun p -> (s, p)) (inter s))
                (Ldg.sites ldg)
            in
            let intra_patterns =
              List.concat_map
                (fun s ->
                  List.filter_map
                    (fun succ ->
                      Option.map (fun p -> ((s, succ), p)) (intra s succ))
                    (Ldg.succs ldg s))
                (Ldg.sites ldg)
            in
            push_report
              {
                method_name = meth.method_name;
                loop_id = loop.loop_id;
                header_block = loop.header;
                candidate_sites = candidates;
                evidence;
                inter_patterns;
                intra_patterns;
                plan;
                promoted = false;
                skipped_low_trip = false;
                iterations_observed = inspection.iterations;
                inspection_steps = inspection.steps;
                predictions = predicted.Predict.predictions;
                inspection_skipped;
                inspection_shortened;
              }
          end)
        (Jit.Loops.postorder forest);
      if rewrite && List.exists (fun p -> p.Codegen.actions <> []) !plans
      then begin
        let guarded = Options.use_guarded opts machine in
        meth.code <-
          Codegen.apply
            ~fault_skip_guard:opts.fault_skip_guard_dominance ~guarded code
            !plans;
        meth.n_pref_regs <- !next_reg
      end;
      if
        rewrite && opts.fault_prediction_desync
        && opts.prediction <> Options.Inspect
      then meth.code <- Predict.inject_desync meth.code;
      List.rev !reports
    end
  end

let run ?registry ?sink ?predictor ~opts ~interp ~meth ~args () =
  match opts.Options.mode with
  | Options.Off -> []
  | Options.Inter | Options.Inter_intra ->
      process ?registry ?sink ?predictor ~opts ~interp ~meth ~args
        ~rewrite:true ()

let analyze_only ?registry ?sink ?predictor ~opts ~interp ~meth ~args () =
  match opts.Options.mode with
  | Options.Off -> []
  | Options.Inter | Options.Inter_intra ->
      process ?registry ?sink ?predictor ~opts ~interp ~meth ~args
        ~rewrite:false ()

let make_pass ~opts ~interp ?report_sink ?registry ?sink ?predictor () =
  {
    Jit.Pipeline.pass_name = "stride-prefetch";
    apply =
      (fun meth args ->
        let reports =
          run ?registry ?sink ?predictor ~opts ~interp ~meth ~args ()
        in
        match report_sink with Some f -> f reports | None -> ());
  }

let prediction_rows ~workload reports =
  List.concat_map
    (fun r ->
      (* Promoted/skipped loops carry no comparable inspection data; their
         sites resurface in the parent loop's report. *)
      if r.promoted || r.skipped_low_trip then []
      else
        List.map
          (fun (p : Predict.prediction) ->
            let observations =
              match List.find_opt (fun e -> e.site = p.site) r.evidence with
              | Some e -> e.observations
              | None -> 0
            in
            {
              Predict.r_workload = workload;
              r_method = r.method_name;
              r_loop = r.loop_id;
              r_site = p.site;
              r_pc = p.pc;
              r_verdict = p.verdict;
              r_static = p.stride;
              r_inspected =
                Option.map
                  (fun (pt : Stride.pattern) -> pt.stride)
                  (List.assoc_opt p.site r.inter_patterns);
              r_observations = observations;
            })
          r.predictions)
    reports

let pp_report ppf r =
  Format.fprintf ppf "@[<v 2>%s loop %d (header B%d)%s%s%s:@," r.method_name
    r.loop_id r.header_block
    (if r.promoted then " [promoted: small trip count]" else "")
    (if r.skipped_low_trip then " [skipped: low trip count]" else "")
    (if r.inspection_skipped then " [inspection skipped: static]"
     else if r.inspection_shortened then " [inspection shortened]"
     else "");
  Format.fprintf ppf "iterations observed: %d, inspection steps: %d@,"
    r.iterations_observed r.inspection_steps;
  List.iter
    (fun (p : Predict.prediction) ->
      Format.fprintf ppf "predict L%d: %s%s  ; %s@," p.site
        (Predict.verdict_name p.verdict)
        (match p.stride with
        | Some s -> Printf.sprintf ", stride %d" s
        | None -> "")
        p.reason)
    r.predictions;
  Format.fprintf ppf "candidates: %s@,"
    (String.concat ", "
       (List.map (Printf.sprintf "L%d") r.candidate_sites));
  (* Inspection evidence: the per-site delta histograms the 75%-majority
     test was applied to. Show the leading deltas. *)
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  List.iter
    (fun e ->
      let shown = take 4 e.delta_histogram in
      let omitted = List.length e.delta_histogram - List.length shown in
      Format.fprintf ppf "evidence L%d: %d obs, deltas %s%s (top %.0f%%)@,"
        e.site e.observations
        (String.concat ", "
           (List.map (fun (d, c) -> Printf.sprintf "%+dx%d" d c) shown))
        (if omitted > 0 then Printf.sprintf " (+%d more)" omitted else "")
        (100.0 *. e.top_fraction))
    r.evidence;
  List.iter
    (fun (s, p) -> Format.fprintf ppf "inter L%d: %a@," s Stride.pp p)
    r.inter_patterns;
  List.iter
    (fun ((a, b), p) ->
      Format.fprintf ppf "intra (L%d,L%d): %a@," a b Stride.pp p)
    r.intra_patterns;
  Format.fprintf ppf "plan: %d action%s, %d rejected, %d spec-load reg%s@,"
    (List.length r.plan.actions)
    (if List.length r.plan.actions = 1 then "" else "s")
    (List.length r.plan.rejected) r.plan.regs_used
    (if r.plan.regs_used = 1 then "" else "s");
  List.iter
    (fun (a : Codegen.action) ->
      match a.kind with
      | Codegen.Prefetch_direct { distance } ->
          Format.fprintf ppf "emit: prefetch (A(L%d) %+d)@," a.anchor_site
            distance
      | Codegen.Prefetch_phased { times; phases } ->
          Format.fprintf ppf "emit: prefetch (A(L%d) + delta*%d)  ; phases %s@,"
            a.anchor_site times
            (String.concat "/"
               (List.map
                  (fun (p : Stride.pattern) -> string_of_int p.stride)
                  phases))
      | Codegen.Prefetch_deref { distance; reg; targets } ->
          Format.fprintf ppf "emit: p%d := spec_load (A(L%d) %+d)@," reg
            a.anchor_site distance;
          List.iter
            (fun (t : Codegen.deref_target) ->
              Format.fprintf ppf "emit: prefetch (p%d %+d)  ; for L%d%s@," reg
                t.offset t.target_site
                (if t.via_intra then " via intra stride" else ""))
            targets)
    r.plan.actions;
  List.iter
    (fun (s, reason) -> Format.fprintf ppf "skip L%d: %s@," s reason)
    r.plan.rejected;
  Format.fprintf ppf "@]"
