type pattern = { stride : int; matched : int; samples : int }

let confidence p =
  if p.samples = 0 then 0.0 else float_of_int p.matched /. float_of_int p.samples

let dominant ~(opts : Options.t) strides =
  let samples = List.length strides in
  if samples < opts.min_samples then None
  else begin
    let counts = Hashtbl.create 16 in
    List.iter
      (fun s ->
        Hashtbl.replace counts s
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts s)))
      strides;
    let best =
      Hashtbl.fold
        (fun stride count best ->
          match best with
          | Some (_, c) when c >= count -> best
          | _ -> Some (stride, count))
        counts None
    in
    match best with
    | Some (stride, matched)
      when float_of_int matched >= opts.majority *. float_of_int samples ->
        Some { stride; matched; samples }
    | Some _ | None -> None
  end

let inter ~opts records =
  let rec strides acc = function
    | (_, a) :: ((_, b) :: _ as rest) -> strides ((b - a) :: acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  dominant ~opts (strides [] records)

(* First recorded address of each iteration. Records arrive in execution
   order, so the first occurrence of an iteration index wins. *)
let first_per_iteration records =
  let seen = Hashtbl.create 32 in
  List.iter
    (fun (iteration, addr) ->
      if not (Hashtbl.mem seen iteration) then Hashtbl.add seen iteration addr)
    records;
  seen

let intra ~opts ~anchor ~other =
  let anchor_first = first_per_iteration anchor in
  let other_first = first_per_iteration other in
  let strides =
    Hashtbl.fold
      (fun iteration anchor_addr acc ->
        match Hashtbl.find_opt other_first iteration with
        | Some other_addr -> (iteration, other_addr - anchor_addr) :: acc
        | None -> acc)
      anchor_first []
    |> List.sort compare |> List.map snd
  in
  dominant ~opts strides

let is_invariant p = p.stride = 0

(* Wu-style phased multiple-stride detection: no single stride reaches the
   majority threshold, but the top few strides jointly do, each carrying a
   non-trivial share. Returns the phases sorted by sample count, or [] when
   the load is a single-stride load (use {!inter} for those) or plain
   irregular. *)
let phased ~(opts : Options.t) records =
  let rec strides acc = function
    | (_, a) :: ((_, b) :: _ as rest) -> strides ((b - a) :: acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  let samples = strides [] records in
  let total = List.length samples in
  if total < opts.min_samples then []
  else begin
    let counts = Hashtbl.create 16 in
    List.iter
      (fun s ->
        Hashtbl.replace counts s
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts s)))
      samples;
    let by_count =
      Hashtbl.fold (fun stride matched acc -> { stride; matched; samples = total } :: acc)
        counts []
      |> List.sort (fun a b -> compare b.matched a.matched)
    in
    match by_count with
    | top :: _ when float_of_int top.matched >= opts.majority *. float_of_int total
      ->
        (* single-stride: not a phased load *)
        []
    | _ ->
        let phases =
          List.filter
            (fun p ->
              float_of_int p.matched
              >= opts.phased_min_fraction *. float_of_int total)
            by_count
        in
        let covered = List.fold_left (fun acc p -> acc + p.matched) 0 phases in
        if
          List.length phases >= 2
          && float_of_int covered >= opts.majority *. float_of_int total
        then phases
        else []
  end

(* The evidence behind [inter]/[phased] decisions, surfaced by the
   explain records: the histogram of consecutive-execution address deltas
   of one site's records, by descending count (ties by delta value). *)
let delta_histogram records =
  let rec strides acc = function
    | (_, a) :: ((_, b) :: _ as rest) -> strides ((b - a) :: acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  let counts = Hashtbl.create 16 in
  List.iter
    (fun s ->
      Hashtbl.replace counts s
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts s)))
    (strides [] records);
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) counts []
  |> List.sort (fun (d1, c1) (d2, c2) ->
         if c1 <> c2 then compare c2 c1 else compare d1 d2)

let pp ppf p =
  Format.fprintf ppf "stride %d (%d/%d = %.0f%%)" p.stride p.matched p.samples
    (100.0 *. confidence p)
