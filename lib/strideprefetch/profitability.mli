(** The profitability analysis of Section 3.3.

    Prefetching code is generated for a load only when (1) one or more
    instructions are data dependent on it, (2) its data does not apparently
    share a cache line with data already being prefetched, and (3) an
    inter-iteration stride exceeds half a cache line (hardware prefetchers
    already cover shorter strides). *)

val inter_stride_ok : ?threshold:int -> line_bytes:int -> int -> bool
(** Condition (3): |stride| strictly greater than [threshold] bytes,
    defaulting to half the line size of the level software prefetches
    fill (the paper's rule, assuming next-line stream hardware).
    Loop-invariant loads (stride 0) are rejected here too. *)

val has_dependents : Vm.Bytecode.instr array -> pc:int -> bool
(** Condition (1), approximated syntactically: the load's result is
    consumed by something other than an immediate [Pop]. *)

val dedup_offsets : line_bytes:int -> int list -> int list
(** Condition (2) for a family of prefetch targets sharing one base
    register: keep a subset such that no two kept offsets apparently land
    on the same line (offsets closer than half [line_bytes] are considered
    to share one, since object alignment is unknown). Input order is
    preserved for kept entries; earlier entries win ties, so callers
    should order targets by estimated benefit. *)
