module B = Vm.Bytecode

type verdict = Certain | Likely | Unknown

type prediction = {
  site : int;
  pc : int;
  stride : int option;
  verdict : verdict;
  reason : string;
}

type t = {
  predictions : prediction list;
  intra : ((int * int) * int) list;
}

let none = { predictions = []; intra = [] }
let find t site = List.find_opt (fun p -> p.site = site) t.predictions

type predictor =
  meth:Vm.Classfile.method_info ->
  cfg:Jit.Cfg.t ->
  loop:Jit.Loops.loop ->
  candidates:int list ->
  t

type depth = Full | Shortened of int | Probed of int | Skipped

(* Trip-class decisions (small-trip promotion into the parent, the
   low-trip cutoff) are observations only inspection can make: they need
   [natural_exit] within [small_trip_count] iterations. Any depth that
   runs fewer iterations than that would silently flip those decisions —
   the pass would stop promoting a child loop's sites, and the parent
   would lose plans built on them. So every non-[Full] depth that still
   inspects is floored at [small_trip_count], and fully skipping is
   reserved for outermost loops, where no promotion consumer exists. *)

let probe_iterations (opts : Options.t) =
  min opts.inspect_iterations opts.small_trip_count

let shortened_iterations (opts : Options.t) =
  min opts.inspect_iterations
    (max opts.small_trip_count
       (max (opts.min_samples + 1) (opts.inspect_iterations / 4)))

let depth_of ~(opts : Options.t) t ~(loop : Jit.Loops.loop) ~candidates =
  match opts.prediction with
  | Options.Inspect -> Full
  | Options.Static -> Skipped
  | Options.Hybrid ->
      let verdict_of site =
        match find t site with Some p -> p.verdict | None -> Unknown
      in
      let verdicts = List.map verdict_of candidates in
      if List.for_all (fun v -> v = Certain) verdicts then
        if loop.Jit.Loops.parent = None then Skipped
        else Probed (probe_iterations opts)
      else if List.for_all (fun v -> v <> Unknown) verdicts then
        Shortened (shortened_iterations opts)
      else Full

(* A synthesized pattern reports full confidence: [matched = samples] at
   the evidence floor inspection itself would need. *)
let synthetic_pattern (opts : Options.t) stride =
  let n = max 2 opts.min_samples in
  { Stride.stride; matched = n; samples = n }

let static_inter ~opts t site =
  match find t site with
  | Some { stride = Some s; verdict = Certain | Likely; _ } ->
      Some (synthetic_pattern opts s)
  | _ -> None

let static_intra ~opts t anchor other =
  match List.assoc_opt (anchor, other) t.intra with
  | Some offset -> Some (synthetic_pattern opts offset)
  | None -> None

let verdict_name = function
  | Certain -> "certain"
  | Likely -> "likely"
  | Unknown -> "unknown"

(* Agreement scoring *)

type row = {
  r_workload : string;
  r_method : string;
  r_loop : int;
  r_site : int;
  r_pc : int;
  r_verdict : verdict;
  r_static : int option;
  r_inspected : int option;
  r_observations : int;
}

type classification = Agree | Disagree | Missed | Undecided | Insufficient

let classify ~min_samples row =
  (* [n] observed addresses yield [n - 1] stride samples, so a dominant
     pattern needs at least [min_samples + 1] observations. *)
  let enough = row.r_observations >= min_samples + 1 in
  match (row.r_verdict, row.r_static, row.r_inspected) with
  | Unknown, _, Some _ -> Missed
  | Unknown, _, None -> Undecided
  | _, Some s, Some i -> if s = i then Agree else Disagree
  | _, Some _, None -> if enough then Disagree else Insufficient
  | _, None, _ ->
      (* a claimed verdict always carries a stride; be safe anyway *)
      Undecided

type score = {
  sites : int;
  claimed : int;
  certain : int;
  agreed : int;
  disagreed : int;
  missed : int;
  undecided : int;
  insufficient : int;
}

let empty_score =
  {
    sites = 0;
    claimed = 0;
    certain = 0;
    agreed = 0;
    disagreed = 0;
    missed = 0;
    undecided = 0;
    insufficient = 0;
  }

let add_score a b =
  {
    sites = a.sites + b.sites;
    claimed = a.claimed + b.claimed;
    certain = a.certain + b.certain;
    agreed = a.agreed + b.agreed;
    disagreed = a.disagreed + b.disagreed;
    missed = a.missed + b.missed;
    undecided = a.undecided + b.undecided;
    insufficient = a.insufficient + b.insufficient;
  }

let score ~min_samples rows =
  List.fold_left
    (fun acc row ->
      let acc = { acc with sites = acc.sites + 1 } in
      let acc =
        if row.r_verdict <> Unknown then
          { acc with claimed = acc.claimed + 1 }
        else acc
      in
      let acc =
        if row.r_verdict = Certain then { acc with certain = acc.certain + 1 }
        else acc
      in
      match classify ~min_samples row with
      | Agree -> { acc with agreed = acc.agreed + 1 }
      | Disagree -> { acc with disagreed = acc.disagreed + 1 }
      | Missed -> { acc with missed = acc.missed + 1 }
      | Undecided -> { acc with undecided = acc.undecided + 1 }
      | Insufficient -> { acc with insufficient = acc.insufficient + 1 })
    empty_score rows

let agreement_pct s =
  let decided = s.agreed + s.disagreed in
  if decided = 0 then 100.0
  else 100.0 *. float_of_int s.agreed /. float_of_int decided

let coverage_pct s =
  if s.sites = 0 then 0.0
  else 100.0 *. float_of_int s.claimed /. float_of_int s.sites

let render_table entries =
  let open Telemetry.Table in
  let t =
    make
      ~columns:
        [
          ("workload", Left);
          ("sites", Right);
          ("claimed", Right);
          ("certain", Right);
          ("agree", Right);
          ("disagree", Right);
          ("missed", Right);
          ("agreement", Right);
          ("coverage", Right);
        ]
  in
  let row label s =
    add_row t
      [
        label;
        cell_int s.sites;
        cell_int s.claimed;
        cell_int s.certain;
        cell_int s.agreed;
        cell_int s.disagreed;
        cell_int s.missed;
        cell_pct (agreement_pct s /. 100.0);
        cell_pct (coverage_pct s /. 100.0);
      ]
  in
  List.iter (fun (label, s) -> row label s) entries;
  (if List.length entries > 1 then
     let total = List.fold_left (fun acc (_, s) -> add_score acc s) empty_score entries in
     add_sep t;
     row "TOTAL" total);
  to_string t

(* Fault injection *)

let inject_desync code =
  let prefix = [| B.Iconst 9001; B.Print |] in
  let shift = Array.length prefix in
  let shifted =
    Array.map
      (fun instr ->
        match B.branch_target instr with
        | Some target -> Jit.Optimize.retarget instr (target + shift)
        | None -> instr)
      code
  in
  Array.append prefix shifted
