(* The prefetch instructions spliced here execute on whichever engine the
   VM selected: the reference switch interpreter or the closure-compiled
   engine (DESIGN.md section 10). Codegen does not get to know — the
   engines' bit-identity contract (same cycles, same stats, enforced by
   test/test_engine.ml and the fuzz oracle's engine axis) means the emitted
   code must not rely on any dispatch-order or timing property beyond the
   bytecode semantics itself. *)

module B = Vm.Bytecode

type deref_target = { target_site : int; offset : int; via_intra : bool }

type action_kind =
  | Prefetch_direct of { distance : int }
  | Prefetch_deref of {
      distance : int;
      reg : int;
      targets : deref_target list;
    }
  | Prefetch_phased of { times : int; phases : Stride.pattern list }
      (** dynamic-stride prefetch for Wu-style phased loads (extension) *)

type action = { anchor_site : int; anchor_pc : int; kind : action_kind }

type plan = {
  actions : action list;
  rejected : (int * string) list;
  regs_used : int;
}

(* Follow intra-strided dependence chains from [site], accumulating the
   cumulative byte stride along each path ("directly or transitively"). *)
let intra_chain ldg intra site =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec walk from acc_stride =
    List.iter
      (fun next ->
        if not (Hashtbl.mem seen next) then
          match intra from next with
          | Some (p : Stride.pattern) ->
              Hashtbl.replace seen next ();
              let cumulative = acc_stride + p.stride in
              acc := (next, cumulative) :: !acc;
              walk next cumulative
          | None -> ())
      (Ldg.succs ldg from)
  in
  walk site 0;
  List.rev !acc

let plan ~(opts : Options.t) ~(machine : Memsim.Config.machine) ~code ~ldg
    ~inter ~intra ~phased ~first_reg =
  let line =
    match machine.prefetch_target with
    | Memsim.Config.To_l2 -> machine.l2.line_bytes
    | Memsim.Config.To_l1 -> machine.l1.line_bytes
  in
  let actions = ref [] in
  let rejected = ref [] in
  let next_reg = ref first_reg in
  let reject site reason = rejected := (site, reason) :: !rejected in
  (* Cross-anchor duplicate suppression (profitability condition 2): two
     direct prefetches whose anchors load through the same producer at
     known offsets will predict addresses on the same line whenever their
     offsets are within a line of each other — e.g. the field loads s.x,
     s.y, s.z of one strided object. Track (producer, offset) pairs
     already covered. *)
  let covered : (Jit.Stack_model.source, int list) Hashtbl.t =
    Hashtbl.create 8
  in
  let covers_same_line info =
    match
      (info.Jit.Stack_model.base, Jit.Stack_model.address_offset_of info)
    with
    | Jit.Stack_model.Unknown, _ | _, None -> false
    | base, Some offset ->
        let seen = Option.value ~default:[] (Hashtbl.find_opt covered base) in
        if List.exists (fun o -> abs (o - offset) < line / 2) seen then true
        else begin
          Hashtbl.replace covered base (offset :: seen);
          false
        end
  in
  List.iter
    (fun anchor_site ->
      match Ldg.node ldg anchor_site with
      | None -> ()
      | Some node -> (
          let anchor_pc = node.info.pc in
          match inter anchor_site with
          | None -> (
              (* extension: a load without a single dominant stride may
                 still have Wu's phased multiple-stride pattern *)
              match (if opts.enable_phased then phased anchor_site else [])
              with
              | (_ : Stride.pattern) :: _ as phases
                when List.for_all
                       (fun (p : Stride.pattern) ->
                         Profitability.inter_stride_ok
                           ?threshold:opts.inter_stride_threshold
                           ~line_bytes:line p.stride)
                       phases
                     && Profitability.has_dependents code ~pc:anchor_pc ->
                  actions :=
                    {
                      anchor_site;
                      anchor_pc;
                      kind =
                        Prefetch_phased
                          { times = opts.scheduling_distance; phases };
                    }
                    :: !actions
              | _ -> reject anchor_site "no inter-iteration stride pattern")
          | Some p when Stride.is_invariant p ->
              reject anchor_site "loop-invariant address"
          | Some p -> (
              let distance = p.stride * opts.scheduling_distance in
              let deps = Ldg.succs ldg anchor_site in
              let deref_candidates =
                match opts.mode with
                | Options.Inter | Options.Off -> []
                | Options.Inter_intra ->
                    List.filter_map
                      (fun dep ->
                        match (inter dep, Ldg.node ldg dep) with
                        | Some _, _ ->
                            (* The dependent strides on its own. *)
                            None
                        | None, Some dep_node -> (
                            match
                              Jit.Stack_model.address_offset_of dep_node.info
                            with
                            | Some offset -> Some (dep, offset)
                            | None -> None)
                        | None, None -> None)
                      deps
              in
              match deref_candidates with
              | [] ->
                  (* Plain inter-iteration prefetching of Lx's own data:
                     subject to the half-line and dependents conditions
                     (Section 3.3's profitability analysis). A deref anchor
                     below is exempt — its spec_load fetches a pointer for
                     loads that are far away, not Lx's own line. *)
                  if
                    not
                      (Profitability.inter_stride_ok
                         ?threshold:opts.inter_stride_threshold
                         ~line_bytes:line p.stride)
                  then reject anchor_site "stride within half a cache line"
                  else if
                    not (Profitability.has_dependents code ~pc:anchor_pc)
                  then reject anchor_site "no dependent instructions"
                  else if covers_same_line node.info then
                    reject anchor_site
                      "shares a cache line with an issued prefetch"
                  else
                    actions :=
                      {
                        anchor_site;
                        anchor_pc;
                        kind = Prefetch_direct { distance };
                      }
                      :: !actions
              | candidates ->
                  (* One spec_load serves every dependent and every
                     intra-strided load reachable from them. *)
                  let reg = !next_reg in
                  incr next_reg;
                  let raw_targets =
                    List.concat_map
                      (fun (dep, offset) ->
                        { target_site = dep; offset; via_intra = false }
                        :: List.map
                             (fun (site, cumulative) ->
                               {
                                 target_site = site;
                                 offset = offset + cumulative;
                                 via_intra = true;
                               })
                             (intra_chain ldg intra dep))
                      candidates
                  in
                  (* Profitability condition (2): drop targets sharing a
                     line with an already-kept target. Direct dependents
                     are ordered first, so they win ties. *)
                  let kept_offsets =
                    Profitability.dedup_offsets ~line_bytes:line
                      (List.map (fun t -> t.offset) raw_targets)
                  in
                  let targets =
                    List.filter
                      (fun t -> List.mem t.offset kept_offsets)
                      raw_targets
                    (* A duplicate offset may survive the filter twice;
                       keep the first occurrence only. *)
                    |> List.fold_left
                         (fun (seen, acc) t ->
                           if List.mem t.offset seen then (seen, acc)
                           else (t.offset :: seen, t :: acc))
                         ([], [])
                    |> snd |> List.rev
                  in
                  actions :=
                    {
                      anchor_site;
                      anchor_pc;
                      kind = Prefetch_deref { distance; reg; targets };
                    }
                    :: !actions)))
    (Ldg.sites ldg);
  {
    actions = List.rev !actions;
    rejected = List.rev !rejected;
    regs_used = !next_reg - first_reg;
  }

(* The paper's instruction mapping (Section 4): on the machine with the
   small DTLB, intra-iteration stride prefetches use a guarded load (TLB
   priming); everything else uses the hardware prefetch instruction, which
   the processor cancels on a DTLB miss. *)
let splice_of_action ?(fault_skip_guard = false) ~guarded action =
  match action.kind with
  | Prefetch_direct { distance } ->
      [ B.Prefetch_inter { site = action.anchor_site; distance } ]
  | Prefetch_phased { times; phases = _ } ->
      [ B.Prefetch_dynamic { site = action.anchor_site; times } ]
  | Prefetch_deref { distance; reg; targets } ->
      let guard = B.Spec_load { site = action.anchor_site; distance; reg } in
      let derefs =
        List.map
          (fun t ->
            B.Prefetch_indirect
              { reg; offset = t.offset; guarded = guarded && t.via_intra })
          targets
      in
      if fault_skip_guard then
        (* injected miscompile: dereferences escape their guard (the
           spec_load lands after them). Runtime-benign — the register
           still holds its initial null, so the indirect prefetches are
           no-ops — but statically unsound; the analysis layer must
           report it. *)
        derefs @ [ guard ]
      else guard :: derefs

let apply ?fault_skip_guard ~guarded code plans =
  let n = Array.length code in
  let splices = Array.make n [] in
  List.iter
    (fun plan ->
      List.iter
        (fun action ->
          if action.anchor_pc >= 0 && action.anchor_pc < n then
            splices.(action.anchor_pc) <-
              splices.(action.anchor_pc)
              @ splice_of_action ?fault_skip_guard ~guarded action)
        plan.actions)
    plans;
  let out = ref [] in
  let new_pc = Array.make (n + 1) 0 in
  let count = ref 0 in
  for pc = 0 to n - 1 do
    new_pc.(pc) <- !count;
    out := code.(pc) :: !out;
    incr count;
    List.iter
      (fun instr ->
        out := instr :: !out;
        incr count)
      splices.(pc)
  done;
  new_pc.(n) <- !count;
  let arr = Array.of_list (List.rev !out) in
  Array.map
    (fun instr ->
      match B.branch_target instr with
      | Some t -> Jit.Optimize.retarget instr new_pc.(t)
      | None -> instr)
    arr

(* Stable one-line identity of an action, for provenance diffs. Keyed on
   the anchor *site* (not its pc): splicing renumbers pcs, and the diff
   engine compares plans across configurations where the rewritten
   bodies differ. *)
let action_descriptor { anchor_site; anchor_pc = _; kind } =
  match kind with
  | Prefetch_direct { distance } ->
      Printf.sprintf "direct s%d d=%d" anchor_site distance
  | Prefetch_deref { distance; reg; targets } ->
      Printf.sprintf "deref s%d d=%d r%d targets=%d" anchor_site distance reg
        (List.length targets)
  | Prefetch_phased { times; phases } ->
      Printf.sprintf "phased s%d times=%d phases=%d" anchor_site times
        (List.length phases)
