(** Tuning knobs of the prefetching algorithm.

    Paper defaults (Section 4): 20 inspected iterations, a 75% majority
    threshold for recognizing a dominant stride, and a scheduling distance
    of one iteration for both inter- and intra-iteration prefetching. *)

(** The three evaluated configurations: [Off] is the paper's BASELINE,
    [Inter] its INTER (the emulation of Wu's stride prefetching restricted
    to in-loop loads), [Inter_intra] its INTER+INTRA. *)
type mode = Off | Inter | Inter_intra

(** How intra-iteration/dereference-based prefetches are realized. [Auto]
    picks guarded loads on machines with few DTLB entries (the paper uses
    guarded loads on the Pentium 4 for TLB priming, hardware prefetch
    instructions otherwise). *)
type prefetch_style = Auto | Always_guarded | Always_hardware

(** Where stride predictions come from. [Inspect] is the paper's dynamic
    object inspection; [Static] trusts the address-algebra abstract
    interpretation ({!Analysis.Addralg}) alone; [Hybrid] uses static
    [Certain] verdicts to skip inspection, [Likely] to shorten it, and
    falls back to full inspection on [Unknown]. *)
type prediction_tier = Inspect | Static | Hybrid

type t = {
  mode : mode;
  inspect_iterations : int;  (** iterations of the target loop to observe *)
  majority : float;  (** dominant-stride threshold, 0 < m <= 1 *)
  scheduling_distance : int;  (** c, in iterations *)
  inter_stride_threshold : int option;
      (** profitability condition (3): emit an inter-iteration prefetch
          only when |stride| {e exceeds} this many bytes. [None] = the
          paper's half-line rule, which assumes the next-line stream
          hardware prefetcher; the SW/HW arbitration sweep
          ([spf_bench --sweep-arbitration]) retunes it per machine and
          HW model. *)
  small_trip_count : int;
      (** nested loops observed to iterate fewer times than this are
          promoted into their parent *)
  min_samples : int;  (** strides needed before a pattern is trusted *)
  max_inspect_steps : int;  (** hard budget for one object inspection *)
  style : prefetch_style;
  small_dtlb_entries : int;
      (** [Auto] style uses guarded loads when the DTLB has at most this
          many entries *)
  inspect_calls : bool;
      (** inter-procedural object inspection: step into (statically
          dispatched) callees instead of skipping them — the extension the
          paper weighs in Section 3.2. Off by default, like the paper. *)
  max_call_depth : int;
      (** callee nesting bound when [inspect_calls] is on *)
  enable_phased : bool;
      (** detect Wu-style "phased multiple-stride" loads and prefetch them
          with a run-time-computed stride; off by default (the paper
          restricts itself to single-stride patterns) *)
  phased_min_fraction : float;
      (** minimum share of samples for each phase of a phased pattern *)
  check_invariants : bool;
      (** assert the telemetry/profiler conservation laws at the end of
          every harness run (attribution:
          [issued = cancelled + redundant + redundant_hw + useful + late
          + useless];
          profiler: binned cycles reconstruct [Stats.cycles] exactly) and
          raise {!Workloads.Harness.Invariant_violation} on a breach.
          Cheap (O(sites + pcs) once per run); off by default. *)
  fault_skip_guard_dominance : bool;
      (** fault injection for the analysis layer: emit a deref splice's
          [prefetch_indirect]s {e before} their [spec_load] guard — a
          runtime-benign miscompile the spec-def-use / guard-dominance
          checkers must catch. Never enable outside lint self-tests. *)
  prediction : prediction_tier;
      (** stride-prediction source; [Inspect] (the default) is the paper's
          configuration and leaves compilation bit-identical to PR 7 *)
  fault_prediction_desync : bool;
      (** fault injection for the prediction crosscheck: when a method is
          rewritten under a non-[Inspect] tier, prepend an observable
          [Iconst; Print] pair to its body so static/hybrid output diverges
          from inspect-mode output. Only the oracle's prediction_crosscheck
          can catch it. Never enable outside fuzz self-tests. *)
}

val default : t
(** The paper's configuration, with mode [Inter_intra]. *)

val with_mode : mode -> t -> t
val mode_name : mode -> string

val prediction_name : prediction_tier -> string
(** "inspect" / "static" / "hybrid" — the CLI and report spelling. *)

val prediction_of_string : string -> (prediction_tier, string) result

val resolved_inter_stride_threshold : t -> Memsim.Config.machine -> int
(** The effective profitability-condition-(3) threshold on [machine]:
    [inter_stride_threshold] when set, otherwise the paper's half-line rule
    for the cache level software prefetches fill. *)

val use_guarded : t -> Memsim.Config.machine -> bool
(** Whether intra-iteration prefetches on [machine] use the guarded-load
    form (TLB priming). *)

val validate : t -> (unit, string) result
