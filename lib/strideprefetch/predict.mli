(** Static access-prediction tier: shared vocabulary between the
    address-algebra abstract interpretation ({!Analysis.Addralg}) and the
    prefetching pass.

    The analysis lives in [lib/analysis] (which depends on this library),
    so the pass consumes predictions through the [predictor] closure type
    below and never sees the abstract domain itself. This module also owns
    the {e agreement scorer} that joins static predictions against
    inspected strides per LDG node ([spf_lint --predict]) and the
    prediction-desync fault injection for the fuzz oracle. *)

(** Confidence lattice of a per-site stride claim. [Certain] means the
    address is affine in induction variables with known steps {e and} the
    load executes exactly once per iteration of the target loop; [Likely]
    relaxes the execution-count evidence (conditional or inner-loop
    placement); [Unknown] is the bottom claim — fall back to inspection. *)
type verdict = Certain | Likely | Unknown

type prediction = {
  site : int;  (** load site id, as in {!Jit.Stack_model.load_info} *)
  pc : int;  (** pc of the load instruction *)
  stride : int option;
      (** predicted inter-iteration stride in bytes; [Some 0] claims a
          loop-invariant address; [None] iff verdict is [Unknown] *)
  verdict : verdict;
  reason : string;  (** one-line justification, for diags and [--explain] *)
}

type t = {
  predictions : prediction list;  (** one per analyzed candidate site *)
  intra : ((int * int) * int) list;
      (** [(anchor, other), offset]: the two sites' addresses provably
          differ by a loop-invariant [offset] bytes every iteration *)
}

val none : t
(** No claims at all: every site is treated as [Unknown]. *)

val find : t -> int -> prediction option

(** What one loop's static analysis looks like to the pass: given the
    method, its CFG, the target loop and the candidate load sites
    (including sites promoted from small-trip children), return per-site
    claims. Must be pure and total — failures inside the analysis are
    expected to degrade to {!none}, never to raise. *)
type predictor =
  meth:Vm.Classfile.method_info ->
  cfg:Jit.Cfg.t ->
  loop:Jit.Loops.loop ->
  candidates:int list ->
  t

(** The hybrid skip rule (DESIGN.md section 12): how much dynamic
    inspection one loop still needs given its static claims.

    [Probed n] runs inspection for at most [n] iterations purely to
    observe the loop's trip class (natural exit below [small_trip_count]
    drives small-trip promotion into the parent — a decision static
    analysis cannot make) while the plan is still built from the static
    claims, exactly as for [Skipped]. *)
type depth = Full | Shortened of int | Probed of int | Skipped

val probe_iterations : Options.t -> int
(** Iteration budget of a [Probed] inspection:
    [min inspect_iterations small_trip_count] — just enough to classify
    the loop's trip count the same way a [Full] inspection would. *)

val shortened_iterations : Options.t -> int
(** Iteration budget of a [Shortened] inspection:
    [max (min_samples + 1) (inspect_iterations / 4)], floored at
    [small_trip_count] (so shortening never flips a trip-class decision)
    and capped at [inspect_iterations]. The [min_samples] floor keeps
    {!Stride.dominant} satisfiable ([n] observed addresses yield [n - 1]
    stride samples). *)

val depth_of :
  opts:Options.t -> t -> loop:Jit.Loops.loop -> candidates:int list -> depth
(** [Inspect] tier: always [Full]. [Static]: always [Skipped]. [Hybrid]:
    when every candidate is [Certain] (or there are no candidates),
    [Skipped] for outermost loops and [Probed] for loops with a parent
    (whose small-trip promotion must still be observed); [Shortened] when
    every candidate is at least [Likely]; [Full] as soon as any candidate
    is [Unknown] or unclaimed. *)

val static_inter : opts:Options.t -> t -> int -> Stride.pattern option
(** Synthesize the inter-iteration pattern codegen sees for [site] when
    inspection was skipped: a full-confidence pattern carrying the
    predicted stride, or [None] when the site is [Unknown]. *)

val static_intra : opts:Options.t -> t -> int -> int -> Stride.pattern option
(** Same for the intra-iteration (anchor, other) offset claims. *)

val verdict_name : verdict -> string

(** {1 Agreement scoring} *)

(** One (site, loop) row joining the static claim with what full dynamic
    inspection concluded for the same LDG node. *)
type row = {
  r_workload : string;
  r_method : string;
  r_loop : int;
  r_site : int;
  r_pc : int;
  r_verdict : verdict;
  r_static : int option;  (** claimed stride *)
  r_inspected : int option;  (** dominant inspected stride, if any *)
  r_observations : int;  (** addresses inspection recorded for the site *)
}

type classification =
  | Agree  (** both claim the same stride *)
  | Disagree
      (** static claims a stride but inspection (with enough evidence)
          concluded a different one, or none at all *)
  | Missed  (** static says [Unknown] but inspection found a pattern *)
  | Undecided  (** static says [Unknown] and inspection found nothing *)
  | Insufficient
      (** inspection observed too few addresses to judge the claim *)

val classify : min_samples:int -> row -> classification

type score = {
  sites : int;  (** scored rows *)
  claimed : int;  (** rows with a non-[Unknown] verdict *)
  certain : int;
  agreed : int;
  disagreed : int;
  missed : int;
  undecided : int;
  insufficient : int;
}

val score : min_samples:int -> row list -> score

val agreement_pct : score -> float
(** [100 * agreed / (agreed + disagreed)]; vacuously [100.] with no
    decided claims (precision over claimed sites, the tentpole's >= 80%
    acceptance metric). *)

val coverage_pct : score -> float
(** [100 * claimed / sites]; [0.] with no rows. *)

val render_table : (string * score) list -> string
(** Per-workload agreement table in {!Telemetry.Table} style, with a
    TOTAL row when more than one workload is listed. *)

(** {1 Fault injection} *)

val inject_desync : Vm.Bytecode.instr array -> Vm.Bytecode.instr array
(** Prepend an observable [Iconst 9001; Print] pair, shifting every branch
    target past the new prefix — the [fault_prediction_desync] miscompile
    only the oracle's prediction crosscheck can catch. *)
