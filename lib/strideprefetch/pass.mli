(** The complete stride-prefetching compiler pass (Section 3).

    For each loop of a method, in loop-forest postorder: build the load
    dependence graph of the loop's loads, run object inspection with the
    actual arguments of the hot invocation, detect inter-/intra-iteration
    stride patterns, and generate prefetching code. Nested loops observed
    to have a small trip count are not optimized themselves; their loads
    are promoted into the enclosing loop's candidate set, "considered
    again as if they were in the parent loop". *)

type site_evidence = {
  site : int;
  observations : int;  (** address records collected for this site *)
  delta_histogram : (int * int) list;  (** (delta, count), top first *)
  top_fraction : float;
      (** share of the top delta — what the 75%-majority rule tested *)
}

type loop_report = {
  method_name : string;
  loop_id : int;
  header_block : int;
  candidate_sites : int list;
  evidence : site_evidence list;
      (** per-site inspection evidence behind the decisions below *)
  inter_patterns : (int * Stride.pattern) list;
  intra_patterns : ((int * int) * Stride.pattern) list;
  plan : Codegen.plan;
  promoted : bool;  (** small trip count: loads handed to the parent *)
  skipped_low_trip : bool;  (** outermost loop with a small trip count *)
  iterations_observed : int;
  inspection_steps : int;
  predictions : Predict.prediction list;
      (** static claims for the candidate sites (empty without a
          predictor) *)
  inspection_skipped : bool;
      (** the hybrid/static skip rule replaced inspection with the static
          claims for this loop *)
  inspection_shortened : bool;
      (** inspection ran with the reduced [Likely]-tier iteration budget *)
}

val run :
  ?registry:Telemetry.Attrib.t ->
  ?sink:Telemetry.Sink.t ->
  ?predictor:Predict.predictor ->
  opts:Options.t ->
  interp:Vm.Interp.t ->
  meth:Vm.Classfile.method_info ->
  args:Vm.Value.t array ->
  unit ->
  loop_report list
(** Analyze and (unless [opts.mode = Off] or nothing qualified) rewrite
    [meth.code] in place, splicing prefetch sequences and setting
    [meth.n_pref_regs]. Returns one report per loop processed.

    [?registry] records decision provenance for each spliced prefetch
    instruction (strategy kind, anchor/target load sites, loop) under the
    structural keys the interpreter resolves at execution — the join the
    effectiveness report is built on. [?sink] records inspection and
    per-loop codegen spans plus one ["loop-decision"] explain instant per
    loop, carrying the evidence of {!loop_report.evidence}. *)

val make_pass :
  opts:Options.t ->
  interp:Vm.Interp.t ->
  ?report_sink:(loop_report list -> unit) ->
  ?registry:Telemetry.Attrib.t ->
  ?sink:Telemetry.Sink.t ->
  ?predictor:Predict.predictor ->
  unit ->
  Jit.Pipeline.pass
(** Package {!run} as a pipeline pass named ["stride-prefetch"].

    [?predictor] is the static access-prediction tier (in practice
    {!Analysis.Addralg.predictor}); it is consulted per loop before
    inspection. With [opts.prediction = Inspect] its claims are recorded
    in the reports but never change compilation; under [Static]/[Hybrid]
    they drive the skip/shorten rule of DESIGN.md section 12. *)

val analyze_only :
  ?registry:Telemetry.Attrib.t ->
  ?sink:Telemetry.Sink.t ->
  ?predictor:Predict.predictor ->
  opts:Options.t ->
  interp:Vm.Interp.t ->
  meth:Vm.Classfile.method_info ->
  args:Vm.Value.t array ->
  unit ->
  loop_report list
(** Like {!run} but never rewrites the method (used by examples to show
    what would be generated). *)

val prediction_rows : workload:string -> loop_report list -> Predict.row list
(** Join each loop's static claims against its inspected patterns, one
    row per claimed site — the agreement scorer's input. Rows come only
    from loops that were actually inspected in place (promoted and
    low-trip loops are skipped; their sites resurface in the parent). *)

val pp_report : Format.formatter -> loop_report -> unit
