(** Join-semilattices for the dataflow framework.

    The fixpoint engine ({!Dataflow}) is parameterized over a lattice of
    abstract states; this module provides the signature, a [Flat] functor
    (the classic Bot < values < Top constant-propagation shape), and the
    abstract-value lattice of the type-state verifier. *)

module type S = sig
  type t

  val bottom : t
  val join : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Flat (X : sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end) : sig
  include S

  val of_value : X.t -> t
  val top : t
  val value : t -> X.t option
end

(** Abstract values of the type-state verifier. [Ref] is a definitely
    non-null reference, [Null] a definite null, [Ref_or_null] the general
    reference produced by heap loads, [Top] an unknown (parameters,
    mixed-type joins). Misuse is reported only when {e definite}, so the
    verifier never rejects code the interpreter would execute. *)
module Avalue : sig
  type t = Bot | Int | Null | Ref | Ref_or_null | Top

  val bottom : t
  val join : t -> t -> t
  val equal : t -> t -> bool
  val is_definitely_ref : t -> bool
  val is_definitely_int : t -> bool
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end
