(** CFG-driven forward-dataflow fixpoint over bytecode.

    The framework underneath every checker in this library: a block-level
    worklist iteration over {!Jit.Cfg}, followed by one replay per block
    to materialize the abstract state {e entering every pc}. The caller
    guarantees the lattice has finite height and [transfer] is monotone
    (all lattices in this library are finite products of flat lattices). *)

module type STATE = sig
  type t

  val join : t -> t -> t
  val equal : t -> t -> bool
end

module Make (S : STATE) : sig
  type result = {
    before : S.t option array;
        (** state entering each pc; [None] = statically unreachable *)
    block_in : S.t option array;  (** state entering each block *)
  }

  val run :
    cfg:Jit.Cfg.t ->
    entry:S.t ->
    transfer:(pc:int -> Vm.Bytecode.instr -> S.t -> S.t) ->
    result
  (** [transfer] may raise to abort the analysis (checkers raise a
      diagnostic exception on definite errors); the exception propagates
      to the caller of [run]. *)
end
