(* Join-semilattices for the dataflow framework.

   Every abstract domain used by the checkers is a finite-height join
   semilattice; the fixpoint engine only needs [join] and [equal]. *)

module type S = sig
  type t

  val bottom : t
  val join : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(* Lift any equality type into the flat ("constant propagation") lattice
   Bot < elements < Top. *)
module Flat (X : sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end) : sig
  include S

  val of_value : X.t -> t
  val top : t
  val value : t -> X.t option
end = struct
  type t = Bot | Value of X.t | Top

  let bottom = Bot
  let top = Top
  let of_value v = Value v
  let value = function Value v -> Some v | Bot | Top -> None

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Top, _ | _, Top -> Top
    | Value x, Value y -> if X.equal x y then a else Top

  let equal a b =
    match (a, b) with
    | Bot, Bot | Top, Top -> true
    | Value x, Value y -> X.equal x y
    | _ -> false

  let pp ppf = function
    | Bot -> Format.pp_print_string ppf "⊥"
    | Top -> Format.pp_print_string ppf "⊤"
    | Value v -> X.pp ppf v
end

(* The abstract-value lattice of the type-state verifier: what kind of
   value occupies a stack slot, a local, or a prefetch register.

            Top
           /    \
        Int    RefOrNull
              /      \
            Ref      Null
               \     /
                 Bot

   [Ref] is a definitely-non-null reference (fresh allocation), [Null] a
   definite null, [RefOrNull] the general reference produced by loads.
   Parameters and unknown values enter as [Top]: the verifier reports a
   type error only when misuse is {e definite}, so it never rejects code
   the interpreter would run. *)
module Avalue = struct
  type t = Bot | Int | Null | Ref | Ref_or_null | Top

  let bottom = Bot

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | x, y when x = y -> x
    | (Null | Ref | Ref_or_null), (Null | Ref | Ref_or_null) -> Ref_or_null
    | _ -> Top

  let equal (a : t) b = a = b

  (* Definitely not an integer? *)
  let is_definitely_ref = function
    | Null | Ref | Ref_or_null -> true
    | Bot | Int | Top -> false

  (* Definitely not a reference? *)
  let is_definitely_int = function
    | Int -> true
    | Bot | Null | Ref | Ref_or_null | Top -> false

  let to_string = function
    | Bot -> "bot"
    | Int -> "int"
    | Null -> "null"
    | Ref -> "ref"
    | Ref_or_null -> "ref?"
    | Top -> "top"

  let pp ppf v = Format.pp_print_string ppf (to_string v)
end
