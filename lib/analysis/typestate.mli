(** The type-state verifier.

    An abstract interpretation of one method body over {!Lattice.Avalue},
    tracking [Int]/[Ref]/[Null]/prefetch-register abstract values through
    the operand stack and the locals at every pc. Subsumes and extends
    {!Jit.Verify}'s depth-only model: structural well-formedness (branch
    targets, local/site/register ranges, consistent stack depth at joins,
    no falling off the end, stack under/overflow) {e plus} value-kind
    tracking — integer arithmetic on a reference, dereference of a
    definite null, array indexing with a reference, a value return in a
    void method, and a prefetch register dereferenced on a path where no
    [spec_load] defined it are all definite errors.

    Conservative by construction: parameters and mixed joins are [Top]
    and [Top] is accepted everywhere, so the verifier never rejects code
    the interpreter would run. Stops at the first error (a malformed body
    makes later states meaningless). *)

val checker : string
(** ["typestate"], the checker name carried by its diagnostics. *)

val check :
  program:Vm.Classfile.program -> Vm.Classfile.method_info -> Diag.t list
(** Empty list = the method verifies; otherwise a single first-error
    diagnostic. [program] resolves the stack effect of [invoke]. *)
