(** Prefetch-safety checkers for spec-load splices (Section 3.3).

    Three named checkers over one method body:

    - ["spec-def-use"]: every dereference ([prefetch_indirect]) of a
      prefetch register is dominated by a [spec_load] defining it
      (def-before-use via {!Jit.Dominators});
    - ["guard-dominance"]: a {e guarded} dereference must be protected by
      its guard on every path — no execution may reach it bypassing the
      [spec_load], and every reaching definition must dominate it;
    - ["splice-purity"]: a register dereference must sit in the contiguous
      run of prefetch pseudo-instructions following its [spec_load] — a
      store, call or branch inside a spliced sequence is a miscompile. *)

val is_prefetch_family : Vm.Bytecode.instr -> bool

val dominates_pc : Jit.Cfg.t -> idom:int array -> def:int -> use:int -> bool
(** pc-level dominance: block-level dominance, program order within a
    block. *)

val check :
  cfg:Jit.Cfg.t -> idom:int array -> Vm.Classfile.method_info -> Diag.t list
(** All findings of the three checkers, in pc order of discovery. [cfg]
    and [idom] must describe the method's current [code]. *)
