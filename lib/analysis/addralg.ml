module B = Vm.Bytecode
module C = Vm.Classfile
module Predict = Strideprefetch.Predict

module Value = struct
  (* Canonical affine expression: [const + sum (coeff * sym)], terms
     sorted by symbol with no zero coefficients, so structural equality
     is semantic equality. *)
  type expr = { const : int; terms : (int * int) list }

  type t = Exp of expr | Top

  let top = Top
  let const c = Exp { const = c; terms = [] }
  let sym i = Exp { const = 0; terms = [ (i, 1) ] }

  let rec merge_terms a b =
    match (a, b) with
    | [], t | t, [] -> t
    | (sa, ca) :: ra, (sb, cb) :: rb ->
        if sa < sb then (sa, ca) :: merge_terms ra b
        else if sb < sa then (sb, cb) :: merge_terms a rb
        else
          let c = ca + cb in
          if c = 0 then merge_terms ra rb else (sa, c) :: merge_terms ra rb

  let add a b =
    match (a, b) with
    | Exp ea, Exp eb ->
        Exp { const = ea.const + eb.const; terms = merge_terms ea.terms eb.terms }
    | _ -> Top

  let scale k v =
    match v with
    | Exp _ when k = 0 -> const 0
    | Exp e ->
        Exp
          {
            const = k * e.const;
            terms = List.map (fun (s, c) -> (s, k * c)) e.terms;
          }
    | Top -> Top

  let sub a b = add a (scale (-1) b)

  let equal a b =
    match (a, b) with Exp ea, Exp eb -> ea = eb | Top, Top -> true | _ -> false

  (* Height-two chain per value: distinct affine expressions lose
     affinity. This is what makes the fixpoint finite. *)
  let join a b = if equal a b then a else Top

  let is_top v = v = Top

  let pp ppf = function
    | Top -> Format.fprintf ppf "top"
    | Exp { const; terms } ->
        Format.fprintf ppf "%d" const;
        List.iter (fun (s, c) -> Format.fprintf ppf " + %d*l%d" c s) terms
end

open Value

type state = { locals : Value.t array; stack : Value.t list }

let equal_state a b =
  List.length a.stack = List.length b.stack
  && List.for_all2 Value.equal a.stack b.stack
  && Array.for_all2 Value.equal a.locals b.locals

let join_state a b =
  if List.length a.stack <> List.length b.stack then
    invalid_arg "Addralg: operand-stack depth mismatch at join";
  {
    locals = Array.map2 Value.join a.locals b.locals;
    stack = List.map2 Value.join a.stack b.stack;
  }

let pop = function
  | v :: rest -> (v, rest)
  | [] -> invalid_arg "Addralg: operand-stack underflow"

let popn n stack =
  let rec go n stack =
    if n = 0 then stack
    else
      let _, rest = pop stack in
      go (n - 1) rest
  in
  go n stack

(* One instruction's abstract effect. [record] is called with every load
   site's symbolic address as it is computed; [field]/[static] name the
   abstract value a heap read produces (loop-invariant field symbols
   when the loop provably never stores to that slot, [Top] otherwise). *)
let transfer ~program ~record ~field ~static st (instr : B.instr) =
  let { locals; stack } = st in
  let push v stack = v :: stack in
  let binop f =
    let b, stack = pop stack in
    let a, stack = pop stack in
    { st with stack = push (f a b) stack }
  in
  match instr with
  | B.Iconst k -> { st with stack = push (const k) stack }
  | B.Aconst_null -> { st with stack = push top stack }
  | B.Iload i | B.Aload i -> { st with stack = push locals.(i) stack }
  | B.Istore i | B.Astore i ->
      let v, stack = pop stack in
      let locals = Array.copy locals in
      locals.(i) <- v;
      { locals; stack }
  | B.Dup ->
      let v, _ = pop stack in
      { st with stack = push v stack }
  | B.Pop ->
      let _, stack = pop stack in
      { st with stack }
  | B.Iadd -> binop Value.add
  | B.Isub -> binop Value.sub
  | B.Imul ->
      binop (fun a b ->
          match (a, b) with
          | Exp { const = k; terms = [] }, v | v, Exp { const = k; terms = [] }
            ->
              scale k v
          | _ -> top)
  | B.Ineg ->
      let v, stack = pop stack in
      { st with stack = push (scale (-1) v) stack }
  | B.Idiv | B.Irem | B.Iand | B.Ior | B.Ixor | B.Ishl | B.Ishr ->
      binop (fun _ _ -> top)
  | B.Goto _ -> st
  | B.If_icmp _ | B.If_acmpeq _ | B.If_acmpne _ ->
      { st with stack = popn 2 stack }
  | B.If _ | B.Ifnull _ | B.Ifnonnull _ -> { st with stack = popn 1 stack }
  | B.Getfield { site; offset; _ } ->
      let base, stack = pop stack in
      record site (Value.add base (const offset));
      { st with stack = push (field ~offset base) stack }
  | B.Putfield _ -> { st with stack = popn 2 stack }
  | B.Getstatic { site; index; _ } ->
      record site (const (C.statics_base + (index * C.slot_bytes)));
      { st with stack = push (static ~index) stack }
  | B.Putstatic _ -> { st with stack = popn 1 stack }
  | B.Aaload { len_site; elem_site } | B.Iaload { len_site; elem_site } ->
      let idx, stack = pop stack in
      let base, stack = pop stack in
      record len_site (Value.add base (const C.array_length_offset));
      record elem_site
        (Value.add base
           (Value.add (const C.array_elems_offset) (scale C.slot_bytes idx)));
      { st with stack = push top stack }
  | B.Aastore { len_site } | B.Iastore { len_site } ->
      let _v, stack = pop stack in
      let _idx, stack = pop stack in
      let base, stack = pop stack in
      record len_site (Value.add base (const C.array_length_offset));
      { st with stack }
  | B.Arraylength { site } ->
      let base, stack = pop stack in
      record site (Value.add base (const C.array_length_offset));
      { st with stack = push top stack }
  | B.New _ -> { st with stack = push top stack }
  | B.Newarray _ ->
      let _, stack = pop stack in
      { st with stack = push top stack }
  | B.Invoke m ->
      let callee = C.method_of_id program m in
      let stack = popn callee.C.arity stack in
      let stack = if callee.C.returns_value then push top stack else stack in
      { st with stack }
  | B.Return -> st
  | B.Ireturn | B.Areturn | B.Print -> { st with stack = popn 1 stack }
  | B.Prefetch_inter _ | B.Spec_load _ | B.Prefetch_indirect _
  | B.Prefetch_dynamic _ ->
      st

let transfer_block ~program ~record ~field ~static ~cfg st block_index =
  List.fold_left
    (fun st (_pc, instr) -> transfer ~program ~record ~field ~static st instr)
    st
    (Jit.Cfg.instrs_of_block cfg block_index)

let ignore_record _ _ = ()

let predict ~program ~(meth : C.method_info) ~cfg ~(loop : Jit.Loops.loop)
    ~candidates =
  let n_blocks = Jit.Cfg.n_blocks cfg in
  let in_loop b = Jit.Loops.Int_set.mem b loop.blocks in
  (* Header-entry locals are the analysis' symbols; the header state is
     pinned (back edges into the *target* loop are not re-joined — their
     out-states are harvested separately to read off induction steps).
     Inner-loop back edges do iterate to fixpoint. *)
  let init =
    {
      locals = Array.init meth.C.max_locals Value.sym;
      stack = [];
    }
  in
  (* Loop-invariant heap slots get symbols of their own: a getfield whose
     offset is never the target of a putfield anywhere in the loop (and a
     getstatic whose index is never stored), in a loop that makes no
     calls, reads the same value every iteration, so [this.arr[i]]-style
     walks stay affine. Symbols are keyed by (base expression, slot) —
     two reads of the same slot off the same base agree — and ids start
     past the locals so they never collide with the locals' symbols. *)
  let stored_offsets = Hashtbl.create 8 in
  let stored_statics = Hashtbl.create 8 in
  let has_invoke = ref false in
  Jit.Loops.Int_set.iter
    (fun b ->
      List.iter
        (fun (_pc, instr) ->
          match instr with
          | B.Putfield { offset; _ } -> Hashtbl.replace stored_offsets offset ()
          | B.Putstatic { index; _ } -> Hashtbl.replace stored_statics index ()
          | B.Invoke _ -> has_invoke := true
          | _ -> ())
        (Jit.Cfg.instrs_of_block cfg b))
    loop.blocks;
  let next_sym = ref meth.C.max_locals in
  let field_syms = Hashtbl.create 16 in
  let sym_base : (int, Value.expr) Hashtbl.t = Hashtbl.create 16 in
  let slot_sym key (base : Value.expr) =
    match Hashtbl.find_opt field_syms key with
    | Some id -> Value.sym id
    | None ->
        let id = !next_sym in
        incr next_sym;
        Hashtbl.replace field_syms key id;
        Hashtbl.replace sym_base id base;
        Value.sym id
  in
  let field ~offset base =
    if !has_invoke || Hashtbl.mem stored_offsets offset then Value.top
    else
      match base with
      | Top -> Value.top
      | Exp e -> slot_sym (`Field (e, offset)) e
  in
  let static ~index =
    if !has_invoke || Hashtbl.mem stored_statics index then Value.top
    else slot_sym (`Static index) { const = 0; terms = [] }
  in
  let in_state = Array.make n_blocks None in
  in_state.(loop.header) <- Some init;
  let back_out = ref None in
  let queued = Array.make n_blocks false in
  let queue = Queue.create () in
  Queue.add loop.header queue;
  queued.(loop.header) <- true;
  while not (Queue.is_empty queue) do
    let b = Queue.pop queue in
    queued.(b) <- false;
    match in_state.(b) with
    | None -> ()
    | Some st ->
        let out =
          transfer_block ~program ~record:ignore_record ~field ~static ~cfg
            st b
        in
        List.iter
          (fun succ ->
            if in_loop succ then
              if succ = loop.header then
                back_out :=
                  Some
                    (match !back_out with
                    | None -> out
                    | Some prev -> join_state prev out)
              else
                let updated =
                  match in_state.(succ) with
                  | None -> Some out
                  | Some prev ->
                      let joined = join_state prev out in
                      if equal_state joined prev then None else Some joined
                in
                match updated with
                | None -> ()
                | Some st' ->
                    in_state.(succ) <- Some st';
                    if not queued.(succ) then begin
                      queued.(succ) <- true;
                      Queue.add succ queue
                    end)
          (Jit.Cfg.block cfg b).Jit.Cfg.succs
  done;
  (* Induction steps: local [j] steps by [d] iff its joined back-edge
     value is [j + d]. Loop-invariant locals (references included) are
     the [d = 0] case. *)
  let rec step j =
    if j >= meth.C.max_locals then
      (* A field symbol: invariant (step 0) iff every symbol of its base
         expression is itself step-0 — the slot was only given a symbol
         because the loop never stores to it, so the read varies across
         iterations only if the object it is read from does. Bases only
         mention earlier-created symbols, so the recursion terminates. *)
      match Hashtbl.find_opt sym_base j with
      | None -> None
      | Some base ->
          if List.for_all (fun (s, _) -> step s = Some 0) base.terms then
            Some 0
          else None
    else
      match !back_out with
      | None -> None
      | Some st -> (
          match st.locals.(j) with
          | Exp { const = d; terms = [ (j', 1) ] } when j' = j -> Some d
          | _ -> None)
  in
  (* Replay each reached block once from its fixpoint in-state, recording
     every load site's symbolic address. *)
  let addr_of_site = Hashtbl.create 16 in
  let pc_of_site = Hashtbl.create 16 in
  Jit.Loops.Int_set.iter
    (fun b ->
      List.iter
        (fun (pc, instr) ->
          List.iter
            (fun site -> Hashtbl.replace pc_of_site site pc)
            (B.all_sites instr))
        (Jit.Cfg.instrs_of_block cfg b);
      match in_state.(b) with
      | None -> ()
      | Some st ->
          ignore
            (transfer_block ~program
               ~record:(fun site addr -> Hashtbl.replace addr_of_site site addr)
               ~field ~static ~cfg st b))
    loop.blocks;
  let child_blocks =
    List.fold_left
      (fun acc (child : Jit.Loops.loop) ->
        Jit.Loops.Int_set.union acc child.blocks)
      Jit.Loops.Int_set.empty loop.children
  in
  let back_tails =
    Jit.Loops.Int_set.elements loop.blocks
    |> List.filter (fun b ->
           List.mem loop.header (Jit.Cfg.block cfg b).Jit.Cfg.succs)
  in
  let idom = Jit.Dominators.compute cfg in
  let stride_of_expr (e : Value.expr) =
    List.fold_left
      (fun acc (s, coeff) ->
        match (acc, step s) with
        | Some total, Some d -> Some (total + (coeff * d))
        | _ -> None)
      (Some 0) e.terms
  in
  let unknown site reason =
    let pc = Option.value ~default:(-1) (Hashtbl.find_opt pc_of_site site) in
    { Predict.site; pc; stride = None; verdict = Predict.Unknown; reason }
  in
  let claim site =
    match Hashtbl.find_opt addr_of_site site with
    | None | Some Top -> unknown site "address is not affine in loop locals"
    | Some (Exp e) -> (
        match stride_of_expr e with
        | None -> unknown site "an induction step is unknown"
        | Some stride ->
            let pc = Hashtbl.find pc_of_site site in
            let block = cfg.Jit.Cfg.block_of_pc.(pc) in
            if Jit.Loops.Int_set.mem block child_blocks then
              if stride = 0 then
                {
                  Predict.site;
                  pc;
                  stride = Some 0;
                  verdict = Predict.Likely;
                  reason = "loop-invariant address inside an inner loop";
                }
              else
                unknown site
                  "executes a variable number of times per iteration \
                   (inner loop)"
            else
              let every_iteration =
                back_tails <> []
                && List.for_all
                     (fun tail -> Jit.Dominators.dominates ~idom block tail)
                     back_tails
              in
              {
                Predict.site;
                pc;
                stride = Some stride;
                verdict =
                  (if every_iteration then Predict.Certain else Predict.Likely);
                reason =
                  (if every_iteration then
                     Printf.sprintf "affine address, step %d per iteration"
                       stride
                   else "affine address on a conditional path");
              })
  in
  let predictions = List.map claim candidates in
  (* Intra-iteration claims: two candidate addresses whose difference is a
     compile-time constant (the affine terms cancel). *)
  let expr_of site =
    match Hashtbl.find_opt addr_of_site site with
    | Some (Exp e) -> Some e
    | _ -> None
  in
  let intra =
    List.concat_map
      (fun anchor ->
        match expr_of anchor with
        | None -> []
        | Some ea ->
            List.filter_map
              (fun other ->
                if other = anchor then None
                else
                  match expr_of other with
                  | Some eb
                    when Value.merge_terms eb.terms
                           (List.map (fun (s, c) -> (s, -c)) ea.terms)
                         = [] ->
                      Some ((anchor, other), eb.const - ea.const)
                  | _ -> None)
              candidates)
      candidates
  in
  { Predict.predictions; intra }

let predictor ~program ~meth ~cfg ~loop ~candidates =
  try predict ~program ~meth ~cfg ~loop ~candidates
  with Invalid_argument _ | Failure _ | Not_found | Stack_overflow ->
    Predict.none
