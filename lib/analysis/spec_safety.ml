(* Prefetch-safety checkers for the speculative-load splices of Section
   3.3. Three named checkers over one method body:

   - "spec-def-use": every dereference of a prefetch register is dominated
     by a spec_load that defines it (def-before-use, via Jit.Dominators);
   - "guard-dominance": a *guarded* dereference must be protected by its
     guard on every path — no execution may reach it bypassing the
     spec_load (the guard), and every reaching definition must dominate it;
   - "splice-purity": the spliced sequence between a spec_load and its
     dereferences must be side-effect-free — contiguous prefetch
     pseudo-instructions only, no stores, no calls, no branches, and (by
     IR construction, re-checked by the type-state verifier) stack-
     neutral. *)

module B = Vm.Bytecode

let is_prefetch_family = function
  | B.Prefetch_inter _ | B.Spec_load _ | B.Prefetch_indirect _
  | B.Prefetch_dynamic _ ->
      true
  | _ -> false

(* pc-level dominance from block-level dominators: within one block,
   program order decides. *)
let dominates_pc (cfg : Jit.Cfg.t) ~idom ~def ~use =
  let bd = cfg.block_of_pc.(def) and bu = cfg.block_of_pc.(use) in
  if bd = bu then def < use else Jit.Dominators.dominates ~idom bd bu

(* Reaching definitions of the prefetch registers: per register, the set
   of spec_load pcs (plus the distinguished element [undef] when a path
   from the entry reaches this pc without defining the register). *)
let undef = -1

module Reach = Dataflow.Make (struct
  type t = int list array (* per reg, sorted def pcs; [undef] included *)

  let join a b = Array.map2 (fun x y -> List.sort_uniq compare (x @ y)) a b
  let equal (a : t) b = a = b
end)

let check ~(cfg : Jit.Cfg.t) ~idom (m : Vm.Classfile.method_info) =
  let code = m.code in
  let n_regs = m.n_pref_regs in
  if n_regs = 0 then []
  else begin
    let diags = ref [] in
    let emit d = diags := d :: !diags in
    let defs_of = Array.make n_regs [] in
    Array.iteri
      (fun pc instr ->
        match instr with
        | B.Spec_load { reg; _ } when reg >= 0 && reg < n_regs ->
            defs_of.(reg) <- defs_of.(reg) @ [ pc ]
        | _ -> ())
      code;
    let reach =
      Reach.run ~cfg
        ~entry:(Array.make n_regs [ undef ])
        ~transfer:(fun ~pc instr st ->
          match instr with
          | B.Spec_load { reg; _ } when reg >= 0 && reg < n_regs ->
              let st = Array.copy st in
              st.(reg) <- [ pc ];
              st
          | _ -> st)
    in
    Array.iteri
      (fun pc instr ->
        match instr with
        | B.Prefetch_indirect { reg; guarded; _ }
          when reg >= 0 && reg < n_regs && reach.Reach.before.(pc) <> None ->
            (* def-before-use: some definition must dominate the use *)
            let dominated_def =
              List.exists
                (fun def -> dominates_pc cfg ~idom ~def ~use:pc)
                defs_of.(reg)
            in
            if not dominated_def then
              emit
                (Diag.error ~checker:"spec-def-use" ~pc
                   "p%d is dereferenced with no dominating spec_load \
                    definition (def-before-use)"
                   reg);
            (* guard dominance: a guarded deref must sit under its guard
               on every path *)
            (if guarded then
               let reaching =
                 (Option.get reach.Reach.before.(pc)).(reg)
               in
               if List.mem undef reaching then
                 emit
                   (Diag.error ~checker:"guard-dominance" ~pc
                      "guarded dereference of p%d is reachable on a path \
                       that bypasses its spec_load guard"
                      reg)
               else
                 List.iter
                   (fun def ->
                     if not (dominates_pc cfg ~idom ~def ~use:pc) then
                       emit
                         (Diag.error ~checker:"guard-dominance" ~pc
                            "guarded dereference of p%d is not dominated \
                             by its reaching spec_load guard at pc %d"
                            reg def))
                   reaching);
            (* splice purity: the dereference must sit in the contiguous
               prefetch-only run following its spec_load *)
            if defs_of.(reg) <> [] then begin
              let block = Jit.Cfg.block cfg cfg.block_of_pc.(pc) in
              let rec scan_back p =
                if p < block.start_pc then
                  Some
                    (Diag.error ~checker:"splice-purity" ~pc
                       "dereference of p%d is not in the same block as any \
                        spec_load defining it; spliced prefetch sequences \
                        must be contiguous"
                       reg)
                else
                  match code.(p) with
                  | B.Spec_load { reg = r; _ } when r = reg -> None
                  | instr when is_prefetch_family instr -> scan_back (p - 1)
                  | impure ->
                      Some
                        (Diag.error ~checker:"splice-purity" ~pc
                           "spliced prefetch sequence for p%d is \
                            interrupted by a side-effecting instruction at \
                            pc %d (`%s`); the splice must contain prefetch \
                            pseudo-instructions only"
                           reg p (B.to_string impure))
              in
              match scan_back (pc - 1) with
              | Some d -> emit d
              | None -> ()
            end
        | _ -> ())
      code;
    List.rev !diags
  end
