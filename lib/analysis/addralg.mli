(** Address-algebra abstract interpretation: the static access-prediction
    tier (ROADMAP item 4; OOPredictor-style analysis over our bytecode).

    A forward dataflow over {!Jit.Cfg} whose domain is a symbolic address
    algebra: every value is either [Top] (unknown) or an affine expression
    [c + sum_i k_i * sym_i] over the target loop's header-entry locals
    ([base + k*i + c] once induction steps are known). The join is the
    proper semilattice [Unknown <= Affine <= Top] on claims — two affine
    expressions join to themselves only when syntactically equal, so a
    diamond that assigns different multiples of an induction variable
    loses affinity ([Affine |_| Affine(different k) = Top]).

    Induction variables are recognized from the loop table: a local [j]
    whose joined back-edge value is [j + d] steps by [d] every iteration.
    A load site whose address expression is affine with known steps gets a
    predicted inter-iteration stride [sum_i k_i * d_i]; the verdict is
    [Certain] when the load provably executes once per iteration (its
    block dominates every back-edge source and sits in no inner loop),
    [Likely] otherwise, and [Unknown] when affinity or a step is lost. *)

(** The abstract value lattice, exposed for the adversarial-CFG tests
    (join monotonicity / affinity loss). *)
module Value : sig
  type t

  val top : t
  val const : int -> t
  val sym : int -> t
  (** The value local [i] holds on entry to the loop header. *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : int -> t -> t
  val join : t -> t -> t
  val equal : t -> t -> bool
  val is_top : t -> bool
  val pp : Format.formatter -> t -> unit
end

val predict :
  program:Vm.Classfile.program ->
  meth:Vm.Classfile.method_info ->
  cfg:Jit.Cfg.t ->
  loop:Jit.Loops.loop ->
  candidates:int list ->
  Strideprefetch.Predict.t
(** Analyze one target loop and claim strides for the candidate load
    sites. The fixpoint runs over the loop's blocks only, with the header
    state pinned to fresh symbols (inner-loop back edges still iterate to
    fixpoint). May raise on bytecode that breaks the stack discipline the
    analysis assumes — use {!predictor} for the total wrapper. *)

val predictor :
  program:Vm.Classfile.program -> Strideprefetch.Predict.predictor
(** {!predict}, degrading to {!Strideprefetch.Predict.none} (every site
    [Unknown], hence full inspection) on any analysis failure. *)
