(** The composing driver: every checker over one method body.

    Order of battle: the {!Typestate} verifier gates everything — a body
    that fails it is returned with that single diagnostic and nothing
    else (later analyses would be meaningless). Otherwise the CFG and
    dominator tree are built once and shared by {!Spec_safety} and the
    bytecode {!Lint}s; plan-aware lints run only when loop reports and
    the scheduling distance are supplied. Findings come back sorted by
    pc. *)

val check_method :
  program:Vm.Classfile.program ->
  ?reports:Strideprefetch.Pass.loop_report list ->
  ?scheduling_distance:int ->
  ?require_guarded:bool ->
  ?inter_stride_threshold:int ->
  Vm.Classfile.method_info ->
  Diag.t list
(** All findings for one method. [reports] may cover the whole program;
    only those whose [method_name] matches are used. [require_guarded]
    is the machine's {!Strideprefetch.Options.use_guarded};
    [inter_stride_threshold] the resolved
    {!Strideprefetch.Options.resolved_inter_stride_threshold}, enabling
    the threshold clause of {!Lint.degenerate_plans}. *)

val errors_only : Diag.t list -> Diag.t list

val verify :
  program:Vm.Classfile.program ->
  ?reports:Strideprefetch.Pass.loop_report list ->
  ?scheduling_distance:int ->
  ?require_guarded:bool ->
  ?inter_stride_threshold:int ->
  Vm.Classfile.method_info ->
  (unit, string) result
(** [Ok ()] when {!check_method} reports no {e errors} (warnings pass);
    otherwise the first error, rendered with method and instruction
    context. *)

val pass_verifier :
  program:Vm.Classfile.program ->
  ?reports:Strideprefetch.Pass.loop_report list ->
  ?scheduling_distance:int ->
  ?require_guarded:bool ->
  ?inter_stride_threshold:int ->
  unit ->
  Vm.Classfile.method_info ->
  (unit, string) result
(** {!verify} packaged for {!Jit.Pipeline.create}'s [?verifier] hook. *)
