(* The composing driver: run every checker over one method body, in an
   order that lets later checkers assume what earlier ones established.

   The type-state verifier runs first and is a gate — a body that is not
   even well-formed makes CFG-level analyses meaningless, so its (single)
   diagnostic is returned alone. Then the CFG and dominator tree are
   built once and shared by the prefetch-safety checkers and the
   bytecode lints; plan-aware lints run only when the caller supplies
   the pass's loop reports. *)

let reports_for (m : Vm.Classfile.method_info)
    (reports : Strideprefetch.Pass.loop_report list) =
  List.filter
    (fun (r : Strideprefetch.Pass.loop_report) ->
      r.method_name = m.method_name)
    reports

let check_method ~(program : Vm.Classfile.program)
    ?(reports = []) ?scheduling_distance ?require_guarded
    ?inter_stride_threshold (m : Vm.Classfile.method_info) =
  match Typestate.check ~program m with
  | _ :: _ as fatal -> fatal
  | [] ->
      let cfg = Jit.Cfg.build m.code in
      let idom = Jit.Dominators.compute cfg in
      let safety = Spec_safety.check ~cfg ~idom m in
      let lints = Lint.bytecode_lints ~cfg m in
      let plan =
        match (reports_for m reports, scheduling_distance) with
        | [], _ | _, None -> []
        | mine, Some scheduling_distance ->
            Lint.plan_consistency ~code:m.code ~reports:mine
              ~scheduling_distance ?require_guarded ()
            @ Lint.degenerate_plans ~code:m.code ~reports:mine
                ?inter_stride_threshold ()
      in
      List.stable_sort Diag.compare_by_pc (safety @ lints @ plan)

let errors_only diags = List.filter Diag.is_error diags

let verify ~program ?reports ?scheduling_distance ?require_guarded
    ?inter_stride_threshold (m : Vm.Classfile.method_info) =
  match
    errors_only
      (check_method ~program ?reports ?scheduling_distance ?require_guarded
         ?inter_stride_threshold m)
  with
  | [] -> Ok ()
  | d :: _ -> Error (Diag.render ~meth:m d)

let pass_verifier ~program ?reports ?scheduling_distance ?require_guarded
    ?inter_stride_threshold () =
 fun m ->
  verify ~program ?reports ?scheduling_distance ?require_guarded
    ?inter_stride_threshold m
