(** Diagnostics produced by the static-analysis layer.

    Every finding carries the {e name of the checker} that produced it, the
    faulting pc, and a severity. {!render} adds the method name and the
    rendered instruction at that pc, so a finding reads like

    {v Kernel.scan: pc 23 (`prefetch (p0 +12)`): [spec-def-use] ... v} *)

type severity = Error | Warning

type t = { checker : string; pc : int; severity : severity; message : string }

val error : checker:string -> pc:int -> ('a, unit, string, t) format4 -> 'a
val warning : checker:string -> pc:int -> ('a, unit, string, t) format4 -> 'a

val global : checker:string -> ('a, unit, string, t) format4 -> 'a
(** An error about the whole run rather than one instruction (runtime
    invariant audits: the conservation-law checks). [pc] is [-1];
    render with {!render_plain}. *)

val is_error : t -> bool
val severity_name : severity -> string

val instr_at : Vm.Classfile.method_info -> int -> string
(** Rendered instruction at [pc], or ["<no instruction>"] out of range. *)

val render : meth:Vm.Classfile.method_info -> t -> string
(** ["<method>: pc <pc> (`<instr>`): [<checker>] <message>"]. *)

val render_plain : t -> string
(** ["[<checker>] <message>"] — for {!global} findings, which have no
    method context. *)

val pp : meth:Vm.Classfile.method_info -> Format.formatter -> t -> unit

val compare_by_pc : t -> t -> int
(** Order findings by pc, then checker name (stable report order). *)
