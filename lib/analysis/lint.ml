(* Lint rules over prefetch-optimized bytecode.

   Bytecode-only rules (no plan needed):
   - "redundant-prefetch": two prefetches of the same address expression
     with no intervening re-anchor in one basic block (available-
     expressions style — the anchor load is the only instruction that
     changes A(site), so a duplicate in between is pure overhead);
   - "dead-spec-reg": a spec_load whose register is never dereferenced is
     a speculative memory access bought for nothing.

   Plan-aware rules (cross-checking the transformed body against the
   Codegen.plan the pass reported):
   - "plan-consistency": every planned action must be spliced with exactly
     the plan's distance/register/offsets, and the plan's distances must
     agree with the detected stride pattern times the scheduling distance;
   - "guard-required": intra-stride dereference targets must use the
     guarded-load form on machines that require it (TLB priming), and
     only there. *)

module B = Vm.Bytecode

type expr =
  | Inter of int * int  (* site, distance *)
  | Dyn of int * int  (* site, times *)
  | Spec of int * int  (* site, distance *)
  | Ind of int * int  (* reg, offset *)

let redundant_prefetch ~(cfg : Jit.Cfg.t) =
  let diags = ref [] in
  for bi = 0 to Jit.Cfg.n_blocks cfg - 1 do
    let avail : (expr, int) Hashtbl.t = Hashtbl.create 8 in
    let kill pred =
      let stale = Hashtbl.fold (fun k _ acc -> if pred k then k :: acc else acc) avail [] in
      List.iter (Hashtbl.remove avail) stale
    in
    List.iter
      (fun (pc, instr) ->
        (* a load through [site] recomputes A(site): expressions anchored
           there are no longer "the same address" *)
        (match B.all_sites instr with
        | [] -> ()
        | sites ->
            kill (function
              | Inter (s, _) | Dyn (s, _) | Spec (s, _) -> List.mem s sites
              | Ind _ -> false));
        let key =
          match instr with
          | B.Prefetch_inter { site; distance } -> Some (Inter (site, distance))
          | B.Prefetch_dynamic { site; times } -> Some (Dyn (site, times))
          | B.Spec_load { site; distance; reg } ->
              (* the register is redefined: previous (reg, offset)
                 expressions are stale *)
              kill (function Ind (r, _) -> r = reg | _ -> false);
              Some (Spec (site, distance))
          | B.Prefetch_indirect { reg; offset; _ } -> Some (Ind (reg, offset))
          | _ -> None
        in
        match key with
        | None -> ()
        | Some key -> (
            match Hashtbl.find_opt avail key with
            | Some prior ->
                diags :=
                  Diag.warning ~checker:"redundant-prefetch" ~pc
                    "redundant prefetch: the same address expression was \
                     already prefetched at pc %d with no intervening \
                     re-anchor"
                    prior
                  :: !diags
            | None -> Hashtbl.replace avail key pc))
      (Jit.Cfg.instrs_of_block cfg bi)
  done;
  List.rev !diags

let dead_spec_regs code =
  let used = Hashtbl.create 8 in
  Array.iter
    (function
      | B.Prefetch_indirect { reg; _ } -> Hashtbl.replace used reg ()
      | _ -> ())
    code;
  let diags = ref [] in
  Array.iteri
    (fun pc instr ->
      match instr with
      | B.Spec_load { reg; _ } when not (Hashtbl.mem used reg) ->
          diags :=
            Diag.warning ~checker:"dead-spec-reg" ~pc
              "spec_load defines p%d but nothing ever dereferences it \
               (dead speculative load)"
              reg
            :: !diags
      | _ -> ())
    code;
  List.rev !diags

let bytecode_lints ~cfg (m : Vm.Classfile.method_info) =
  redundant_prefetch ~cfg @ dead_spec_regs m.code

(* --- plan-aware rules ---------------------------------------------------- *)

let pc_of_site code site =
  let found = ref (-1) in
  Array.iteri
    (fun pc instr ->
      if !found < 0 && List.mem site (B.all_sites instr) then found := pc)
    code;
  !found

(* "degenerate-plan": plans the arbitration/profitability machinery should
   never have let through. Each condition is impossible for correct
   codegen output (distances are [stride * scheduling_distance] with
   [scheduling_distance >= 1], zero strides are rejected as invariant, and
   direct prefetches must clear the inter-stride threshold), so any hit
   means a pass or a hand-built plan produced garbage. Warnings, not
   errors: the spliced code is still semantically correct, just useless
   prefetching. *)
let degenerate_plans ~code ~(reports : Strideprefetch.Pass.loop_report list)
    ?inter_stride_threshold () =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  List.iter
    (fun (r : Strideprefetch.Pass.loop_report) ->
      List.iter
        (fun (a : Strideprefetch.Codegen.action) ->
          let anchor = a.anchor_site in
          let pc =
            let p = pc_of_site code anchor in
            if p >= 0 then p else a.anchor_pc
          in
          let pattern = List.assoc_opt anchor r.inter_patterns in
          let distance =
            match a.kind with
            | Strideprefetch.Codegen.Prefetch_direct { distance } ->
                Some distance
            | Strideprefetch.Codegen.Prefetch_deref { distance; _ } ->
                Some distance
            | Strideprefetch.Codegen.Prefetch_phased _ -> None
          in
          (match distance with
          | Some 0 ->
              emit
                (Diag.warning ~checker:"degenerate-plan" ~pc
                   "degenerate plan: prefetch distance 0 for anchor L%d \
                    re-fetches the address the anchor just loaded"
                   anchor)
          | Some d when d < 0 -> (
              match pattern with
              | Some (p : Strideprefetch.Stride.pattern) when p.stride < 0 ->
                  (* a genuine descending walk: negative distance is right *)
                  ()
              | _ ->
                  emit
                    (Diag.warning ~checker:"degenerate-plan" ~pc
                       "degenerate plan: negative prefetch distance %+d for \
                        anchor L%d without a detected negative stride"
                       d anchor))
          | _ -> ());
          match (a.kind, pattern, inter_stride_threshold) with
          | ( Strideprefetch.Codegen.Prefetch_direct _,
              Some (p : Strideprefetch.Stride.pattern),
              Some threshold )
            when abs p.stride <= threshold ->
              emit
                (Diag.warning ~checker:"degenerate-plan" ~pc
                   "degenerate plan: inter stride %d for anchor L%d is \
                    within the profitability threshold (%d bytes) yet \
                    survived into the plan"
                   p.stride anchor threshold)
          | _ -> ())
        r.plan.actions)
    reports;
  List.rev !diags

let plan_consistency ~code
    ~(reports : Strideprefetch.Pass.loop_report list) ~scheduling_distance
    ?require_guarded () =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let find f =
    let found = ref None in
    Array.iteri
      (fun pc instr -> if !found = None && f instr then found := Some (pc, instr))
      code;
    !found
  in
  List.iter
    (fun (r : Strideprefetch.Pass.loop_report) ->
      List.iter
        (fun (a : Strideprefetch.Codegen.action) ->
          let anchor = a.anchor_site in
          let anchor_pc = pc_of_site code anchor in
          match a.kind with
          | Strideprefetch.Codegen.Prefetch_direct { distance } -> (
              (match
                 List.assoc_opt anchor r.inter_patterns
               with
              | Some (p : Strideprefetch.Stride.pattern) ->
                  let expected = p.stride * scheduling_distance in
                  if distance <> expected then
                    emit
                      (Diag.error ~checker:"plan-consistency" ~pc:anchor_pc
                         "plan distance %+d for anchor L%d is inconsistent \
                          with the detected stride %d x scheduling \
                          distance %d"
                         distance anchor p.stride scheduling_distance)
              | None ->
                  emit
                    (Diag.error ~checker:"plan-consistency" ~pc:anchor_pc
                       "plan emits a direct prefetch for anchor L%d but \
                        the report records no inter-iteration pattern for \
                        it"
                       anchor));
              match
                find (function
                  | B.Prefetch_inter { site; _ } -> site = anchor
                  | _ -> false)
              with
              | None ->
                  emit
                    (Diag.error ~checker:"plan-consistency" ~pc:anchor_pc
                       "planned prefetch for anchor L%d was not spliced \
                        into the body"
                       anchor)
              | Some (pc, B.Prefetch_inter { distance = d; _ }) ->
                  if d <> distance then
                    emit
                      (Diag.error ~checker:"plan-consistency" ~pc
                         "spliced prefetch distance %+d differs from the \
                          plan's %+d for anchor L%d"
                         d distance anchor)
              | Some _ -> ())
          | Strideprefetch.Codegen.Prefetch_phased { times; _ } -> (
              match
                find (function
                  | B.Prefetch_dynamic { site; _ } -> site = anchor
                  | _ -> false)
              with
              | None ->
                  emit
                    (Diag.error ~checker:"plan-consistency" ~pc:anchor_pc
                       "planned dynamic-stride prefetch for anchor L%d was \
                        not spliced into the body"
                       anchor)
              | Some (pc, B.Prefetch_dynamic { times = t; _ }) ->
                  if t <> times then
                    emit
                      (Diag.error ~checker:"plan-consistency" ~pc
                         "spliced dynamic prefetch multiplier %d differs \
                          from the plan's %d for anchor L%d"
                         t times anchor)
              | Some _ -> ())
          | Strideprefetch.Codegen.Prefetch_deref { distance; reg; targets }
            -> (
              (match
                 find (function
                   | B.Spec_load { site; _ } -> site = anchor
                   | _ -> false)
               with
              | None ->
                  emit
                    (Diag.error ~checker:"plan-consistency" ~pc:anchor_pc
                       "planned spec_load for anchor L%d was not spliced \
                        into the body"
                       anchor)
              | Some (pc, B.Spec_load { distance = d; reg = rg; _ }) ->
                  if rg <> reg then
                    emit
                      (Diag.error ~checker:"plan-consistency" ~pc
                         "spliced spec_load writes p%d but the plan \
                          allocated p%d for anchor L%d"
                         rg reg anchor);
                  if d <> distance then
                    emit
                      (Diag.error ~checker:"plan-consistency" ~pc
                         "spliced spec_load distance %+d differs from the \
                          plan's %+d for anchor L%d"
                         d distance anchor)
              | Some _ -> ());
              List.iter
                (fun (t : Strideprefetch.Codegen.deref_target) ->
                  match
                    find (function
                      | B.Prefetch_indirect { reg = rg; offset; _ } ->
                          rg = reg && offset = t.offset
                      | _ -> false)
                  with
                  | None ->
                      emit
                        (Diag.error ~checker:"plan-consistency"
                           ~pc:anchor_pc
                           "planned dereference prefetch (p%d %+d) for \
                            L%d was not spliced into the body"
                           reg t.offset t.target_site)
                  | Some (pc, B.Prefetch_indirect { guarded; _ }) -> (
                      match require_guarded with
                      | None -> ()
                      | Some rq ->
                          let expected = rq && t.via_intra in
                          if expected && not guarded then
                            emit
                              (Diag.error ~checker:"guard-required" ~pc
                                 "dereference prefetch for L%d is reached \
                                  via an intra-iteration stride and must \
                                  use the guarded form on this machine"
                                 t.target_site)
                          else if guarded && not expected then
                            emit
                              (Diag.error ~checker:"guard-required" ~pc
                                 "dereference prefetch for L%d uses the \
                                  guarded form where the plan calls for a \
                                  hardware prefetch"
                                 t.target_site))
                  | Some _ -> ())
                targets))
        r.plan.actions)
    reports;
  List.rev !diags
