type severity = Error | Warning

type t = { checker : string; pc : int; severity : severity; message : string }

let error ~checker ~pc fmt =
  Printf.ksprintf
    (fun message -> { checker; pc; severity = Error; message })
    fmt

let warning ~checker ~pc fmt =
  Printf.ksprintf
    (fun message -> { checker; pc; severity = Warning; message })
    fmt

(* A finding about the whole run rather than one instruction (runtime
   invariant checks: conservation laws, end-of-run audits). pc -1 marks
   it; [render_plain] renders without a method context. *)
let global ~checker fmt =
  Printf.ksprintf
    (fun message -> { checker; pc = -1; severity = Error; message })
    fmt

let is_error d = d.severity = Error

let severity_name = function Error -> "error" | Warning -> "warning"

(* The rendered instruction at the faulting pc — diagnostics always name
   the method and show the instruction, not just the pc, so a finding can
   be read without disassembling the body by hand. *)
let instr_at (m : Vm.Classfile.method_info) pc =
  if pc >= 0 && pc < Array.length m.code then
    Vm.Bytecode.to_string m.code.(pc)
  else "<no instruction>"

let render ~(meth : Vm.Classfile.method_info) d =
  Printf.sprintf "%s: pc %d (`%s`): %s[%s] %s" meth.method_name d.pc
    (instr_at meth d.pc)
    (match d.severity with Error -> "" | Warning -> "warning ")
    d.checker d.message

let render_plain d =
  Printf.sprintf "%s[%s] %s"
    (match d.severity with Error -> "" | Warning -> "warning ")
    d.checker d.message

let pp ~meth ppf d = Format.pp_print_string ppf (render ~meth d)

let compare_by_pc a b =
  match compare a.pc b.pc with 0 -> compare a.checker b.checker | c -> c
