(* The reusable forward-dataflow fixpoint over Vm.Bytecode CFGs.

   Block-level worklist iteration to a fixpoint, then one replay per block
   to materialize the abstract state *entering every pc* — which is what
   per-pc checkers and diagnostics want. Termination is the caller's
   contract: the state lattice must have finite height and [transfer] must
   be monotone. *)

module type STATE = sig
  type t

  val join : t -> t -> t
  val equal : t -> t -> bool
end

module Make (S : STATE) = struct
  type result = {
    before : S.t option array;
        (* abstract state entering each pc; None = statically unreachable *)
    block_in : S.t option array;  (* abstract state entering each block *)
  }

  let run ~(cfg : Jit.Cfg.t) ~entry
      ~(transfer : pc:int -> Vm.Bytecode.instr -> S.t -> S.t) =
    let n_blocks = Jit.Cfg.n_blocks cfg in
    let block_in = Array.make n_blocks None in
    block_in.(0) <- Some entry;
    let flow_block bi st =
      List.fold_left
        (fun st (pc, instr) -> transfer ~pc instr st)
        st
        (Jit.Cfg.instrs_of_block cfg bi)
    in
    let worklist = Queue.create () in
    let queued = Array.make n_blocks false in
    let enqueue bi =
      if not queued.(bi) then begin
        queued.(bi) <- true;
        Queue.add bi worklist
      end
    in
    enqueue 0;
    while not (Queue.is_empty worklist) do
      let bi = Queue.take worklist in
      queued.(bi) <- false;
      match block_in.(bi) with
      | None -> ()
      | Some st ->
          let out = flow_block bi st in
          List.iter
            (fun succ ->
              let merged =
                match block_in.(succ) with
                | None -> out
                | Some prior -> S.join prior out
              in
              match block_in.(succ) with
              | Some prior when S.equal prior merged -> ()
              | _ ->
                  block_in.(succ) <- Some merged;
                  enqueue succ)
            (Jit.Cfg.block cfg bi).succs
    done;
    (* Replay each block once from its fixed in-state to recover the
       per-pc states. *)
    let before = Array.make (Array.length cfg.code) None in
    Array.iteri
      (fun bi st ->
        match st with
        | None -> ()
        | Some st ->
            ignore
              (List.fold_left
                 (fun st (pc, instr) ->
                   before.(pc) <- Some st;
                   transfer ~pc instr st)
                 st
                 (Jit.Cfg.instrs_of_block cfg bi)))
      block_in;
    { before; block_in }
end
