(** Lint rules over prefetch-optimized bytecode.

    Bytecode-only rules (warnings):

    - ["redundant-prefetch"]: two prefetches of the same address
      expression with no intervening re-anchor in one basic block
      (available-expressions style);
    - ["dead-spec-reg"]: a [spec_load] whose register is never
      dereferenced — a speculative memory access bought for nothing.

    Plan-aware rules (errors), cross-checking the transformed body
    against the {!Strideprefetch.Codegen.plan} the pass reported:

    - ["plan-consistency"]: every planned action must be spliced with
      exactly the plan's distance/register/offsets, and the plan's
      distances must agree with the detected stride pattern times the
      scheduling distance;
    - ["guard-required"]: intra-stride dereference targets must use the
      guarded-load form on machines that require it (TLB priming), and
      only there. *)

val redundant_prefetch : cfg:Jit.Cfg.t -> Diag.t list

val dead_spec_regs : Vm.Bytecode.instr array -> Diag.t list

val bytecode_lints :
  cfg:Jit.Cfg.t -> Vm.Classfile.method_info -> Diag.t list
(** {!redundant_prefetch} followed by {!dead_spec_regs}. *)

val degenerate_plans :
  code:Vm.Bytecode.instr array ->
  reports:Strideprefetch.Pass.loop_report list ->
  ?inter_stride_threshold:int ->
  unit ->
  Diag.t list
(** ["degenerate-plan"] warnings: plans that should have been rejected —
    a zero prefetch distance, a negative distance with no detected
    negative stride behind it, or (when the resolved
    [inter_stride_threshold] is given) a direct prefetch whose inter
    stride is within the threshold despite the PR-7 arbitration.
    Correct codegen output never trips these; a hit means a pass or a
    hand-built plan produced garbage. *)

val plan_consistency :
  code:Vm.Bytecode.instr array ->
  reports:Strideprefetch.Pass.loop_report list ->
  scheduling_distance:int ->
  ?require_guarded:bool ->
  unit ->
  Diag.t list
(** ["plan-consistency"] and (when [require_guarded] is given)
    ["guard-required"] findings. [reports] must belong to the method
    that owns [code]; pass the scheduling distance the pass ran with.
    [require_guarded] is the machine's
    {!Strideprefetch.Options.use_guarded}; omit it to skip the
    guard-form check. *)
