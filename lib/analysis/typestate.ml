(* The type-state verifier: an abstract interpretation of one method body
   over {!Lattice.Avalue}, tracking the operand stack, the locals, and the
   spec-load (prefetch) registers at every pc.

   Subsumes and extends Jit.Verify's depth-only model: besides structural
   well-formedness (branch targets, local/site/register ranges, consistent
   stack depth, no falling off the end) it tracks *what kind* of value
   occupies each slot, and reports definite misuse — integer arithmetic on
   a reference, dereference of a definite null, a prefetch register
   dereferenced on a path where no spec_load defined it.

   Conservative by construction: parameters and mixed joins enter as Top
   and Top is accepted everywhere, so a diagnostic means the interpreter
   would really have misbehaved on some path reaching that pc. *)

module B = Vm.Bytecode
module A = Lattice.Avalue

let checker = "typestate"

exception Found of Diag.t

let fail pc fmt =
  Printf.ksprintf
    (fun message ->
      raise (Found { Diag.checker; pc; severity = Diag.Error; message }))
    fmt

type state = {
  stack : A.t list;
  locals : A.t array;
  regs : bool array;
      (* must-defined: regs.(r) is true iff every path to this pc executed
         a spec_load into r *)
  broken : (int * int) option;
      (* set by a join of stacks with different depths; reported at the
         first instruction that executes under the inconsistent state *)
}

let equal_state a b =
  a.broken = b.broken && a.stack = b.stack && a.locals = b.locals
  && a.regs = b.regs

let join_state a b =
  if List.length a.stack <> List.length b.stack then
    { a with broken = Some (List.length a.stack, List.length b.stack) }
  else if a.broken <> None then a
  else if b.broken <> None then b
  else
    {
      stack = List.map2 A.join a.stack b.stack;
      locals = Array.map2 A.join a.locals b.locals;
      regs = Array.map2 ( && ) a.regs b.regs;
      broken = None;
    }

module Flow = Dataflow.Make (struct
  type t = state

  let join = join_state
  let equal = equal_state
end)

(* --- structural prechecks (the Jit.Verify model, re-checked here so the
   dataflow below can assume a well-formed body) --------------------------- *)

let structural ~(program : Vm.Classfile.program)
    (m : Vm.Classfile.method_info) =
  let code = m.code in
  let n = Array.length code in
  if n = 0 then fail 0 "empty method body";
  Array.iteri
    (fun pc instr ->
      (match B.branch_target instr with
      | Some t when t < 0 || t >= n ->
          fail pc "branch target %d out of range [0, %d)" t n
      | _ -> ());
      (match instr with
      | B.Iload i | B.Istore i | B.Aload i | B.Astore i ->
          if i < 0 || i >= m.max_locals then
            fail pc "local %d outside max_locals %d" i m.max_locals
      | B.Invoke callee ->
          if callee < 0 || callee >= Array.length program.methods then
            fail pc "invoke of unknown method #%d" callee
      | _ -> ());
      List.iter
        (fun site ->
          if site < 0 || site >= m.n_sites then
            fail pc "site L%d outside n_sites %d" site m.n_sites)
        (B.all_sites instr);
      let check_site site =
        if site < 0 || site >= m.n_sites then
          fail pc "prefetch anchor L%d outside n_sites %d" site m.n_sites
      in
      let check_reg reg =
        if reg < 0 || reg >= m.n_pref_regs then
          fail pc "prefetch register p%d outside n_pref_regs %d" reg
            m.n_pref_regs
      in
      match instr with
      | B.Prefetch_inter { site; _ } | B.Prefetch_dynamic { site; _ } ->
          check_site site
      | B.Spec_load { site; reg; _ } ->
          check_site site;
          check_reg reg
      | B.Prefetch_indirect { reg; _ } -> check_reg reg
      | _ -> ())
    code;
  match code.(n - 1) with
  | instr when B.is_terminator instr -> ()
  | instr when B.branch_target instr <> None ->
      fail (n - 1) "conditional branch can fall off the end"
  | _ -> fail (n - 1) "control can fall off the end of the body"

(* --- the abstract interpreter -------------------------------------------- *)

let check ~(program : Vm.Classfile.program) (m : Vm.Classfile.method_info) =
  try
    structural ~program m;
    let code = m.code in
    let cfg = Jit.Cfg.build code in
    let entry =
      {
        stack = [];
        locals = Array.make (max m.max_locals 1) A.Top;
        regs = Array.make (max m.n_pref_regs 1) false;
        broken = None;
      }
    in
    let pop pc st what =
      match st.stack with
      | v :: stack -> (v, { st with stack })
      | [] -> fail pc "stack underflow: needed %s, stack is empty" what
    in
    let push pc v st =
      if List.length st.stack >= Vm.Frame.max_stack then
        fail pc "stack overflow: depth exceeds %d" Vm.Frame.max_stack;
      { st with stack = v :: st.stack }
    in
    let want_int pc what v =
      if A.is_definitely_ref v then
        fail pc "%s must be an int, found %s" what (A.to_string v)
    in
    let want_ref pc what v =
      if A.is_definitely_int v then
        fail pc "%s must be a reference, found %s" what (A.to_string v)
    in
    let want_base pc what v =
      want_ref pc what v;
      if v = A.Null then fail pc "%s dereferences a definitely-null value" what
    in
    let pop_int pc what st =
      let v, st = pop pc st what in
      want_int pc what v;
      st
    in
    let pop_base pc what st =
      let v, st = pop pc st what in
      want_base pc what v;
      st
    in
    let store pc i st =
      let v, st = pop pc st "stored value" in
      let locals = Array.copy st.locals in
      locals.(i) <- v;
      { st with locals }
    in
    let transfer ~pc instr st =
      (match st.broken with
      | Some (a, b) -> fail pc "inconsistent stack depth at join: %d vs %d" a b
      | None -> ());
      match instr with
      | B.Iconst _ -> push pc A.Int st
      | B.Aconst_null -> push pc A.Null st
      | B.Iload i | B.Aload i ->
          (* locals are untyped slots (the inliner spills reference
             arguments with istore); typing happens at the use site *)
          push pc st.locals.(i) st
      | B.Istore i | B.Astore i -> store pc i st
      | B.Dup -> (
          match st.stack with
          | v :: _ -> push pc v st
          | [] -> fail pc "stack underflow: dup on empty stack")
      | B.Pop -> snd (pop pc st "popped value")
      | B.Iadd | B.Isub | B.Imul | B.Idiv | B.Irem | B.Iand | B.Ior | B.Ixor
      | B.Ishl | B.Ishr ->
          let st = pop_int pc "arithmetic operand" st in
          let st = pop_int pc "arithmetic operand" st in
          push pc A.Int st
      | B.Ineg -> push pc A.Int (pop_int pc "negation operand" st)
      | B.Goto _ -> st
      | B.If_icmp _ ->
          pop_int pc "comparison operand" (pop_int pc "comparison operand" st)
      | B.If _ -> pop_int pc "condition" st
      | B.If_acmpeq _ | B.If_acmpne _ ->
          let a, st = pop pc st "reference comparison operand" in
          let b, st = pop pc st "reference comparison operand" in
          want_ref pc "reference comparison operand" a;
          want_ref pc "reference comparison operand" b;
          st
      | B.Ifnull _ | B.Ifnonnull _ ->
          let v, st = pop pc st "null-test operand" in
          want_ref pc "null-test operand" v;
          st
      | B.Getfield { is_ref; _ } ->
          let st = pop_base pc "getfield" st in
          push pc (if is_ref then A.Ref_or_null else A.Int) st
      | B.Putfield _ ->
          let _, st = pop pc st "stored field value" in
          pop_base pc "putfield" st
      | B.Getstatic { is_ref; _ } ->
          push pc (if is_ref then A.Ref_or_null else A.Int) st
      | B.Putstatic _ -> snd (pop pc st "stored static value")
      | B.Aaload _ ->
          let st = pop_int pc "array index" st in
          let st = pop_base pc "array load" st in
          push pc A.Ref_or_null st
      | B.Iaload _ ->
          let st = pop_int pc "array index" st in
          let st = pop_base pc "array load" st in
          push pc A.Int st
      | B.Aastore _ ->
          let v, st = pop pc st "stored element" in
          want_ref pc "stored element" v;
          let st = pop_int pc "array index" st in
          pop_base pc "array store" st
      | B.Iastore _ ->
          let st = pop_int pc "stored element" st in
          let st = pop_int pc "array index" st in
          pop_base pc "array store" st
      | B.Arraylength _ -> push pc A.Int (pop_base pc "arraylength" st)
      | B.New _ -> push pc A.Ref st
      | B.Newarray _ -> push pc A.Ref (pop_int pc "array length" st)
      | B.Invoke callee_id ->
          let callee = Vm.Classfile.method_of_id program callee_id in
          let st = ref st in
          for _ = 1 to callee.arity do
            st := snd (pop pc !st "call argument")
          done;
          if callee.returns_value then push pc A.Top !st else !st
      | B.Return ->
          if m.returns_value then
            fail pc "void return in a method declared to return a value";
          st
      | B.Ireturn ->
          if not m.returns_value then
            fail pc "value return in a method declared void";
          pop_int pc "returned value" st
      | B.Areturn ->
          if not m.returns_value then
            fail pc "value return in a method declared void";
          let v, st = pop pc st "returned reference" in
          want_ref pc "returned reference" v;
          st
      | B.Print -> pop_int pc "printed value" st
      | B.Prefetch_inter _ | B.Prefetch_dynamic _ -> st
      | B.Spec_load { reg; _ } ->
          let regs = Array.copy st.regs in
          regs.(reg) <- true;
          { st with regs }
      | B.Prefetch_indirect { reg; _ } ->
          if not st.regs.(reg) then
            fail pc
              "prefetch register p%d may be dereferenced before any \
               spec_load defines it"
              reg;
          st
    in
    ignore (Flow.run ~cfg ~entry ~transfer);
    []
  with Found d -> [ d ]
