(** A benchmark workload: a MiniJava program plus metadata.

    Each workload reproduces the {e memory behaviour} the paper attributes
    to one SPECjvm98 / JavaGrande benchmark (Section 4.1) — the access
    patterns its speedup analysis rests on — not the benchmark's full
    functionality. DESIGN.md section 2 records the substitution. *)

type t = {
  name : string;
  suite : [ `Specjvm | `Javagrande | `Phase ];
      (** [`Phase]: not a paper benchmark — a synthetic phase-shifting
          family driven by the live monitor (not part of the bench
          matrix) *)
  description : string;  (** Table 3 description analogue *)
  paper_note : string;
      (** what the paper says drives this benchmark's behaviour *)
  source : string;
  heap_limit_bytes : int;
}

val compile : t -> Vm.Classfile.program
(** Compile [source]; raises [Failure] with a located message when the
    workload does not type-check (they all do — see the test suite). *)

val lcg_snippet : string
(** A deterministic linear-congruential [Rng] class every workload embeds
    so runs are reproducible. *)
