(** A benchmark workload: a MiniJava program plus metadata.

    Each workload reproduces the {e memory behaviour} the paper attributes
    to one SPECjvm98 / JavaGrande benchmark (Section 4.1) — the access
    patterns its speedup analysis rests on — not the benchmark's full
    functionality. DESIGN.md section 2 records the substitution. *)

type t = {
  name : string;
  suite : [ `Specjvm | `Javagrande | `Phase ];
  description : string;  (** Table 3 description analogue *)
  paper_note : string;
      (** what the paper says drives this benchmark's behaviour *)
  source : string;
  heap_limit_bytes : int;
}

let compile t = Minijava.Compile.program_of_source_exn t.source

(* Shared pseudo-random number generator used inside workloads: a simple
   LCG every workload embeds so runs are deterministic. *)
let lcg_snippet =
  {|
class Rng {
  int seed;
  Rng(int s) { seed = s; }
  int next(int bound) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    if (seed < 0) { seed = 0 - seed; }
    return seed % bound;
  }
}
|}
