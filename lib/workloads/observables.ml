(* Program-observable state of an interpreter: what the differential
   fuzzing oracle compares across configurations, and what the
   side-effect-freedom check compares around object inspection. *)

type obj_kind = Instance of int | Int_array | Ref_array

type obj = {
  obj_id : int;
  base : int;  (** simulated byte address; [-1] in [`Reachable] scope *)
  kind : obj_kind;
  payload : Vm.Value.t array;  (** fields or elements, in slot order *)
}

type t = {
  scope : [ `All | `Reachable ];
  output : string;
  globals : Vm.Value.t array;
  objects : obj list;
  live_objects : int;  (** [-1] in [`Reachable] scope *)
  used_bytes : int;  (** [-1] in [`Reachable] scope *)
}

let payload_of heap id =
  match Vm.Heap.class_id_of heap id with
  | Some cid ->
      let slots =
        (Vm.Heap.size_of heap id - Vm.Classfile.header_bytes)
        / Vm.Classfile.slot_bytes
      in
      ( Instance cid,
        Array.init slots (fun slot -> Vm.Heap.get_field heap id slot) )
  | None ->
      let len = Vm.Heap.array_length heap id in
      let kind =
        if Vm.Heap.is_ref_array heap id then Ref_array else Int_array
      in
      (kind, Array.init len (fun i -> Vm.Heap.get_elem heap id i))

let capture_object ~with_base heap id =
  let kind, payload = payload_of heap id in
  {
    obj_id = id;
    base = (if with_base then Vm.Heap.base_of heap id else -1);
    kind;
    payload;
  }

let globals_of interp =
  let n = Array.length (Vm.Interp.program interp).Vm.Classfile.statics in
  Array.init n (fun i -> Vm.Interp.global interp i)

(* Every live object, in address order, addresses included: bit-identical
   heap state. Used to prove object inspection has no side effects. *)
let capture_all interp =
  let heap = Vm.Interp.heap interp in
  let objects = ref [] in
  Vm.Heap.iter_ids_in_address_order heap (fun id ->
      objects := capture_object ~with_base:true heap id :: !objects);
  {
    scope = `All;
    output = Vm.Interp.output interp;
    globals = globals_of interp;
    objects = List.rev !objects;
    live_objects = Vm.Heap.live_objects heap;
    used_bytes = Vm.Heap.used_bytes heap;
  }

(* Objects reachable from the statics, in deterministic traversal order,
   without addresses. This is the cross-configuration observable: object
   ids and contents must agree between BASELINE / INTER / INTER+INTRA runs
   (allocation order is identical — prefetch code never allocates), but
   unreachable garbage may be retained longer when a prefetch register
   holds the last reference (exactly as a hardware register would), which
   can shift post-GC addresses of reachable objects. *)
let capture_reachable interp =
  let heap = Vm.Interp.heap interp in
  let globals = globals_of interp in
  let seen = Hashtbl.create 64 in
  let objects = ref [] in
  let rec visit v =
    match v with
    | Vm.Value.Ref id when not (Hashtbl.mem seen id) ->
        Hashtbl.replace seen id ();
        let o = capture_object ~with_base:false heap id in
        objects := o :: !objects;
        Array.iter visit o.payload
    | Vm.Value.Ref _ | Vm.Value.Int _ | Vm.Value.Null -> ()
  in
  Array.iter visit globals;
  {
    scope = `Reachable;
    output = Vm.Interp.output interp;
    globals;
    objects = List.rev !objects;
    live_objects = -1;
    used_bytes = -1;
  }

let capture ?(scope = `Reachable) interp =
  match scope with
  | `All -> capture_all interp
  | `Reachable -> capture_reachable interp

let equal a b = a = b

let string_of_kind = function
  | Instance cid -> Printf.sprintf "instance(class %d)" cid
  | Int_array -> "int[]"
  | Ref_array -> "ref[]"

let describe_obj o =
  Printf.sprintf "#%d %s%s [%s]" o.obj_id (string_of_kind o.kind)
    (if o.base >= 0 then Printf.sprintf " @0x%x" o.base else "")
    (String.concat "; "
       (Array.to_list (Array.map Vm.Value.to_string o.payload)))

(* First difference between two captures, as a human-readable sentence;
   [None] when equal. *)
let diff a b =
  if a.scope <> b.scope then Some "captures have different scopes"
  else if a.output <> b.output then
    Some
      (Printf.sprintf "output differs:\n--- a ---\n%s--- b ---\n%s" a.output
         b.output)
  else if a.globals <> b.globals then begin
    let i = ref 0 in
    while
      !i < Array.length a.globals
      && (!i >= Array.length b.globals || a.globals.(!i) = b.globals.(!i))
    do
      incr i
    done;
    Some
      (Printf.sprintf "static slot %d differs: %s vs %s" !i
         (try Vm.Value.to_string a.globals.(!i) with _ -> "<missing>")
         (try Vm.Value.to_string b.globals.(!i) with _ -> "<missing>"))
  end
  else if a.live_objects <> b.live_objects then
    Some
      (Printf.sprintf "live object count differs: %d vs %d" a.live_objects
         b.live_objects)
  else if a.used_bytes <> b.used_bytes then
    Some
      (Printf.sprintf "heap used bytes differ: %d vs %d" a.used_bytes
         b.used_bytes)
  else if a.objects <> b.objects then begin
    let rec first_diff i xs ys =
      match (xs, ys) with
      | [], [] -> Printf.sprintf "object lists differ (position %d)" i
      | x :: _, [] -> Printf.sprintf "extra object in a: %s" (describe_obj x)
      | [], y :: _ -> Printf.sprintf "extra object in b: %s" (describe_obj y)
      | x :: xs', y :: ys' ->
          if x = y then first_diff (i + 1) xs' ys'
          else
            Printf.sprintf "object %d differs:\n  a: %s\n  b: %s" i
              (describe_obj x) (describe_obj y)
    in
    Some (first_diff 0 a.objects b.objects)
  end
  else None
