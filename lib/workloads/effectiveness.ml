(* The join of the three telemetry views into the paper-facing
   effectiveness report: the pass's compile-time provenance
   (Telemetry.Attrib metas), the interpreter's execution identity (dense
   site ids in the same registry), and memsim's outcome classification
   (Memsim.Attribution counters and demand-miss buckets).

   Per site and per strategy kind it reports

   - {b accuracy} = useful / issued: of the prefetches this site issued,
     how many converted a demand miss into a hit;
   - {b coverage} = useful / (useful + remaining memory misses at the
     registered target load site): of the misses the prefetch was meant
     to eliminate, how many it did eliminate. A useful prefetch is a
     miss that no longer happens, so useful + remaining misses
     reconstructs the baseline miss count without a second run. *)

module A = Telemetry.Attrib

type site_row = {
  site_id : int;
  key : A.key;
  meta : A.meta option;  (** None: issued but never registered (bug) *)
  counters : Memsim.Attribution.site_counters;
  target_misses : int;
      (** remaining demand memory misses at the registered target site *)
  coverage : float;
  accuracy : float;
}

type kind_rollup = {
  kind_name : string;
  sites : int;
  issued : int;
  useful : int;
  late : int;
  useless : int;
  cancelled : int;
  redundant : int;
  redundant_hw : int;
  kind_coverage : float;
  kind_accuracy : float;
}

type t = {
  rows : site_row list;
  kinds : kind_rollup list;
  totals : Memsim.Attribution.site_counters;
  total_coverage : float;
  total_accuracy : float;
  unattributed_misses : int;
      (** demand memory misses outside any numbered load site *)
}

let ratio num den =
  if den <= 0 then 0.0 else float_of_int num /. float_of_int den

let method_id_of_key = function
  | A.Inter_site { method_id; _ }
  | A.Dynamic_site { method_id; _ }
  | A.Spec_site { method_id; _ }
  | A.Indirect_site { method_id; _ } ->
      method_id

let target_key_of meta key =
  A.demand_key ~method_id:(method_id_of_key key)
    ~site:meta.A.target_site

let build ~registry ~attrib =
  let n = A.n_sites registry in
  let rows =
    List.init n (fun id ->
        let key = A.key_of_id registry id in
        let meta = A.meta_of_key registry key in
        let counters = Memsim.Attribution.site_counters attrib id in
        let target_misses =
          match meta with
          | Some m ->
              Memsim.Attribution.demand_misses_for attrib
                ~key:(target_key_of m key)
          | None -> 0
        in
        {
          site_id = id;
          key;
          meta;
          counters;
          target_misses;
          coverage =
            ratio counters.useful (counters.useful + target_misses);
          accuracy = ratio counters.useful counters.issued;
        })
  in
  let kind_of row =
    match row.meta with Some m -> A.kind_name m.A.kind | None -> "unknown"
  in
  let kind_names =
    List.sort_uniq compare (List.map kind_of rows)
  in
  let kinds =
    List.map
      (fun kname ->
        let members = List.filter (fun r -> kind_of r = kname) rows in
        let sum f = List.fold_left (fun acc r -> acc + f r) 0 members in
        let issued = sum (fun r -> r.counters.issued) in
        let useful = sum (fun r -> r.counters.useful) in
        (* Distinct target demand sites only: several prefetch sites may
           cover the same load, and its remaining misses must not be
           double counted in the coverage denominator. *)
        let target_misses =
          List.filter_map
            (fun r ->
              match r.meta with
              | Some m -> Some (target_key_of m r.key, r.target_misses)
              | None -> None)
            members
          |> List.sort_uniq compare
          |> List.fold_left (fun acc (_, misses) -> acc + misses) 0
        in
        {
          kind_name = kname;
          sites = List.length members;
          issued;
          useful;
          late = sum (fun r -> r.counters.late);
          useless = sum (fun r -> r.counters.useless);
          cancelled = sum (fun r -> r.counters.cancelled);
          redundant = sum (fun r -> r.counters.redundant);
          redundant_hw = sum (fun r -> r.counters.redundant_hw);
          kind_coverage = ratio useful (useful + target_misses);
          kind_accuracy = ratio useful issued;
        })
      kind_names
  in
  let totals = Memsim.Attribution.totals attrib in
  let all_misses =
    List.fold_left
      (fun acc (_, m) -> acc + m)
      0
      (Memsim.Attribution.demand_miss_buckets attrib)
  in
  let unattributed_misses =
    Memsim.Attribution.demand_misses_for attrib ~key:(-1)
  in
  {
    rows;
    kinds;
    totals;
    total_coverage = ratio totals.useful (totals.useful + all_misses);
    total_accuracy = ratio totals.useful totals.issued;
    unattributed_misses;
  }

let pp_key = A.pp_key

(* The per-site table is rendered through the shared
   [Telemetry.Table] module, the same renderer the profiler and the
   bench gate use. *)
let pp_table ppf t =
  let open Telemetry.Table in
  let tbl =
    make
      ~columns:
        [
          ("site", Left);
          ("kind", Left);
          ("loop", Right);
          ("issued", Right);
          ("useful", Right);
          ("late", Right);
          ("useless", Right);
          ("cancel", Right);
          ("redund", Right);
          ("red-hw", Right);
          ("misses", Right);
          ("cover", Right);
          ("accur", Right);
        ]
  in
  List.iter
    (fun r ->
      let kind, loop =
        match r.meta with
        | Some m -> (A.kind_name m.A.kind, string_of_int m.A.loop_id)
        | None -> ("?", "?")
      in
      add_row tbl
        [
          Format.asprintf "%a" pp_key r.key;
          kind;
          loop;
          cell_int r.counters.issued;
          cell_int r.counters.useful;
          cell_int r.counters.late;
          cell_int r.counters.useless;
          cell_int r.counters.cancelled;
          cell_int r.counters.redundant;
          cell_int r.counters.redundant_hw;
          cell_int r.target_misses;
          (* Guarded rendering: a site with no useful prefetches and no
             remaining target misses has no coverage basis, and one that
             issued nothing has no accuracy basis — "-" instead of a
             misleading "0.0%". *)
          cell_ratio r.counters.useful (r.counters.useful + r.target_misses);
          cell_ratio r.counters.useful r.counters.issued;
        ])
    t.rows;
  Format.fprintf ppf "@[<v>%a@,@," pp tbl;
  List.iter
    (fun k ->
      Format.fprintf ppf
        "kind %-7s: %d site%s, issued=%d useful=%d late=%d useless=%d \
         cancelled=%d redundant=%d redundant_hw=%d  coverage=%.1f%% \
         accuracy=%.1f%%@,"
        k.kind_name k.sites
        (if k.sites = 1 then "" else "s")
        k.issued k.useful k.late k.useless k.cancelled k.redundant
        k.redundant_hw
        (100.0 *. k.kind_coverage)
        (100.0 *. k.kind_accuracy))
    t.kinds;
  Format.fprintf ppf
    "total: issued=%d useful=%d late=%d useless=%d cancelled=%d \
     redundant=%d redundant_hw=%d  coverage=%.1f%% accuracy=%.1f%%  \
     (unattributed misses=%d)@]"
    t.totals.issued t.totals.useful t.totals.late t.totals.useless
    t.totals.cancelled t.totals.redundant t.totals.redundant_hw
    (100.0 *. t.total_coverage)
    (100.0 *. t.total_accuracy)
    t.unattributed_misses

let json_of_counters (c : Memsim.Attribution.site_counters) =
  Telemetry.Json.Obj
    [
      ("issued", Telemetry.Json.Int c.issued);
      ("cancelled", Telemetry.Json.Int c.cancelled);
      ("redundant", Telemetry.Json.Int c.redundant);
      ("redundant_hw", Telemetry.Json.Int c.redundant_hw);
      ("useful", Telemetry.Json.Int c.useful);
      ("late", Telemetry.Json.Int c.late);
      ("useless", Telemetry.Json.Int c.useless);
    ]

let to_json t =
  let open Telemetry.Json in
  let row_json r =
    let meta_fields =
      match r.meta with
      | Some m ->
          [
            ("method", Str m.A.method_name);
            ("loop", Int m.A.loop_id);
            ("kind", Str (A.kind_name m.A.kind));
            ("anchor_site", Int m.A.anchor_site);
            ("target_site", Int m.A.target_site);
          ]
      | None -> [ ("kind", Str "unknown") ]
    in
    Obj
      ([
         ("site_id", Int r.site_id);
         ("site", Str (Format.asprintf "%a" pp_key r.key));
       ]
      @ meta_fields
      @ [
          ("counters", json_of_counters r.counters);
          ("target_misses", Int r.target_misses);
          ("coverage", Float r.coverage);
          ("accuracy", Float r.accuracy);
        ])
  in
  let kind_json k =
    Obj
      [
        ("kind", Str k.kind_name);
        ("sites", Int k.sites);
        ("issued", Int k.issued);
        ("useful", Int k.useful);
        ("late", Int k.late);
        ("useless", Int k.useless);
        ("cancelled", Int k.cancelled);
        ("redundant", Int k.redundant);
        ("redundant_hw", Int k.redundant_hw);
        ("coverage", Float k.kind_coverage);
        ("accuracy", Float k.kind_accuracy);
      ]
  in
  Obj
    [
      ("sites", List (List.map row_json t.rows));
      ("kinds", List (List.map kind_json t.kinds));
      ("totals", json_of_counters t.totals);
      ("coverage", Float t.total_coverage);
      ("accuracy", Float t.total_accuracy);
      ("unattributed_misses", Int t.unattributed_misses);
    ]
