(** Program-observable state snapshots.

    The paper's safety claim (Sections 3.2, 3.4) is that object inspection
    and the injected prefetch code are free of visible side effects: the
    three evaluated configurations may differ only in cycles. This module
    captures everything a MiniJava program can observe — its printed
    output, the static slots, and the object graph — so the differential
    fuzzing oracle ({!Fuzz.Oracle}) and the inspection side-effect
    regression tests can compare runs structurally. *)

type obj_kind = Instance of int  (** class id *) | Int_array | Ref_array

type obj = {
  obj_id : int;  (** stable allocation-ordered id *)
  base : int;  (** simulated byte address; [-1] in [`Reachable] scope *)
  kind : obj_kind;
  payload : Vm.Value.t array;  (** fields or elements, in slot order *)
}

type t = {
  scope : [ `All | `Reachable ];
  output : string;
  globals : Vm.Value.t array;
  objects : obj list;
  live_objects : int;  (** [-1] in [`Reachable] scope *)
  used_bytes : int;  (** [-1] in [`Reachable] scope *)
}

val capture : ?scope:[ `All | `Reachable ] -> Vm.Interp.t -> t
(** [`All] (for the inspection side-effect check): every live object in
    address order, simulated addresses included — bit-identical heap
    state. [`Reachable] (the default; for cross-configuration comparison):
    the object graph reachable from the statics in deterministic traversal
    order, addresses excluded — prefetch registers may legitimately extend
    the lifetime of garbage, shifting post-GC addresses without the
    program being able to tell. *)

val equal : t -> t -> bool

val diff : t -> t -> string option
(** Human-readable description of the first difference; [None] when
    equal. *)

val describe_obj : obj -> string
