(** Phase-shifting workloads for the live monitor: synthetic programs
    that change behaviour mid-run so the degradation detectors have a
    planted, precisely located shift to find. Not part of the paper's
    benchmark suites or the bench matrix. *)

val marker : int
(** Printed on its own line at the first phase shift. *)

val marker_string : string

val phaseshift : Workload.t
(** Strided -> shuffled -> strided walk over one co-allocated object
    array: the shuffle invalidates the strides object inspection
    compiled against, collapsing the useful rate and pushing the demand
    stream out to memory. *)

val churn : Workload.t
(** Steady strided sweep that mid-run starts allocating transient
    garbage in the loop, forcing repeated compactions that flush caches
    and settle in-flight prefetches useless. *)

val all : Workload.t list

val marker_offset : string -> int option
(** Byte offset of the first marker line in a run's program output
    (input to {!Monitor.Report.detection_latency}), or [None] when the
    program never shifted. *)
