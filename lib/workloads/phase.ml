(** Phase-shifting workloads for the live monitor.

    Unlike the SPECjvm / JavaGrande analogues, these are not modelled on
    paper benchmarks: they exist to {e change behaviour mid-run} so the
    monitor's degradation detectors have a planted, precisely located
    shift to find. Each prints {!marker} at the moment of its first
    shift; the byte offset of that marker in the program output locates
    the shift window ({!Monitor.Report.detection_latency}).

    Two structural rules keep the planted shift clean:

    - No method is {e first} made hot at the shift. The monitor
      re-baselines its detectors whenever the JIT swaps a method body in
      (a code change invalidates the learned baselines), so a
      compilation landing on the shift window would eat the alarm. All
      hot methods here go hot — and compile — during the opening phase;
      the shift only changes data-access behaviour.
    - Objects carry 18 int fields (~80 bytes), like JavaGrande Euler's
      state vectors, so the inter-iteration stride clears the prefetch
      pass's half-cache-line rule and prefetches are actually issued.

    They are deliberately NOT part of [Specjvm.all] / [Javagrande.all]:
    the bench matrix and its gate keys stay stable. They join only the
    CLI workload lists and the monitor tests. *)

let marker = 777777
(** Printed (on its own line, like every [print]) at the first phase
    shift. *)

let marker_string = string_of_int marker

(* PhaseShift: a walker over a statically co-allocated object array that
   is driven through three phases — strided, shuffled, strided again.

   Phase A walks the nodes in allocation order: the hot [walk] method is
   JIT-compiled during this phase, object inspection sees the constant
   inter-iteration stride, and the inserted prefetches run near-perfectly
   useful. At the first shift the traversal order is shuffled: the
   object actually touched next no longer sits one stride ahead, so the
   same prefetches turn useless/late and the demand stream starts
   missing to memory — the useful-rate and stall-mix detectors both have
   something to say. The final phase restores allocation order.

   [shuffle] inlines its LCG (no [Rng.next] calls) and both [shuffle]
   and [restore] are pre-warmed — invoked and JIT-compiled — during
   startup, so no method runs or compiles for the first time at the
   shift. *)
let phaseshift =
  {
    Workload.name = "PhaseShift";
    suite = `Phase;
    description = "strided -> shuffled -> strided walk over one object array";
    paper_note =
      "not from the paper: a planted mid-run access-pattern shift that \
       invalidates the strides object inspection found at compile time";
    heap_limit_bytes = 16 * 1024 * 1024;
    source =
      {|
class PsNode {
  int a; int b; int c; int d;
  int e; int f; int g; int h;
  int p0; int p1; int p2; int p3;
  int p4; int p5; int p6; int p7;
  int p8; int p9;
  PsNode(int s) {
    a = s; b = s + 1; c = s * 3 % 1024; d = 0;
    e = s % 7; f = 0; g = 0; h = 0;
    p0 = 0; p1 = 0; p2 = 0; p3 = 0;
    p4 = 0; p5 = 0; p6 = 0; p7 = 0;
    p8 = 0; p9 = 0;
  }
}

class Walker {
  PsNode[] nodes;
  int[] order;
  int n;
  Walker(int count) {
    nodes = new PsNode[count];
    order = new int[count];
    n = count;
    for (int i = 0; i < count; i = i + 1) {
      nodes[i] = new PsNode(i);
      order[i] = i;
    }
  }

  void shuffle(int seed) {
    /* inline LCG (no Rng call): the only methods this touches are
       shuffle itself and walk, both warm before the shift */
    int s = seed;
    for (int i = 0; i < n; i = i + 1) {
      s = (s * 1103515245 + 12345) % 2147483648;
      if (s < 0) { s = 0 - s; }
      int j = s % n;
      int tmp = order[i];
      order[i] = order[j];
      order[j] = tmp;
    }
  }

  void restore() {
    for (int i = 0; i < n; i = i + 1) { order[i] = i; }
  }

  int walk() {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      PsNode p = nodes[order[i]];
      acc = (acc + p.a + p.c - p.e) % 1048576;
      p.d = acc;
    }
    return acc;
  }

  static void main() {
    /* 6000 nodes x ~80 bytes = ~480 KB: node stride is past the
       half-cache-line rule so INTER prefetches are emitted, and the
       array is larger than both L2s so the shuffled phase misses to
       memory. */
    Walker w = new Walker(6000);
    int acc = 0;
    /* pre-warm: run shuffle/restore twice during startup so both are
       invoked AND JIT-compiled before the steady phase — the planted
       shift must carry no code novelty (the monitor re-baselines its
       detectors whenever code first runs or gets compiled) */
    w.shuffle(3);
    w.restore();
    w.shuffle(5);
    w.restore();
    for (int it = 0; it < 30; it = it + 1) {
      acc = (acc + w.walk()) % 1048576;
    }
    print(777777);
    w.shuffle(7);
    for (int it = 0; it < 30; it = it + 1) {
      acc = (acc + w.walk()) % 1048576;
    }
    print(777778);
    w.restore();
    for (int it = 0; it < 30; it = it + 1) {
      acc = (acc + w.walk()) % 1048576;
    }
    print(acc);
  }
}
|};
  }

(* PhaseChurn: a steady strided sweep that mid-run starts allocating
   transient garbage inside the loop. The heap limit is sized so the
   garbage phase collects repeatedly: every compaction rewrites the
   address space, flushes the caches and settles all in-flight prefetch
   fills as useless — GC churn the stall-mix and useful-rate streams
   both register.

   One [sweep] method carries both phases behind a [doalloc] flag: it
   compiles during phase A, so the shift changes only which branch runs
   — no code swap, and the in-loop allocation site first {e executes}
   mid-run (alloc-site drift) without any constructor going hot. *)
let churn =
  {
    Workload.name = "PhaseChurn";
    suite = `Phase;
    description = "steady sweep that mid-run starts allocating in the loop";
    paper_note =
      "not from the paper: planted mid-run compaction churn — repeated \
       GCs invalidate prefetch state and shift the stall mix";
    heap_limit_bytes = 12 * 1024 * 1024;
    source =
      {|
class CnCell {
  int a; int b; int c; int d;
  int e; int f; int g; int h;
  int q0; int q1; int q2; int q3;
  int q4; int q5; int q6; int q7;
  int q8; int q9;
  CnCell(int s) {
    a = s; b = s * 5 % 4096; c = 0; d = 0;
    e = 0; f = 0; g = 0; h = 0;
    q0 = 0; q1 = 0; q2 = 0; q3 = 0;
    q4 = 0; q5 = 0; q6 = 0; q7 = 0;
    q8 = 0; q9 = 0;
  }
}

class Churn {
  CnCell[] cells;
  int n;
  Churn(int count) {
    cells = new CnCell[count];
    n = count;
    for (int i = 0; i < count; i = i + 1) {
      cells[i] = new CnCell(i);
    }
  }

  int sweep(int doalloc) {
    int acc = 0;
    for (int i = 0; i + 1 < n; i = i + 1) {
      CnCell cur = cells[i];
      CnCell nxt = cells[i + 1];
      if (doalloc == 1) {
        /* transient garbage: dead after this iteration; the site first
           executes mid-run */
        int[] tmp = new int[64];
        tmp[0] = cur.a + i;
        acc = acc + tmp[0];
      }
      acc = (acc + cur.a + nxt.b - cur.e) % 1048576;
      cur.c = acc;
    }
    return acc;
  }

  static void main() {
    /* 6000 cells x ~80 bytes = ~480 KB sweep working set; cell stride
       clears the half-cache-line rule so INTER prefetches are
       emitted. */
    Churn c = new Churn(6000);
    int acc = 0;
    for (int it = 0; it < 36; it = it + 1) {
      acc = (acc + c.sweep(0)) % 1048576;
    }
    print(777777);
    for (int it = 0; it < 22; it = it + 1) {
      acc = (acc + c.sweep(1)) % 1048576;
    }
    print(acc);
  }
}
|};
  }

let all = [ phaseshift; churn ]

(** Byte offset of the first {!marker} line in a run's program output,
    or [None] when it never printed (program output is one value per
    line). *)
let marker_offset output =
  let line = marker_string ^ "\n" in
  let rec search from =
    match String.index_from_opt output from '7' with
    | None -> None
    | Some i ->
        if
          i + String.length line <= String.length output
          && String.sub output i (String.length line) = line
          && (i = 0 || output.[i - 1] = '\n')
        then Some i
        else search (i + 1)
  in
  search 0
