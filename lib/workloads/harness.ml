type run_result = {
  workload : string;
  machine : string;
  mode : Strideprefetch.Options.mode;
  cycles : int;
  stats : Memsim.Stats.t;
  interpreted_cycles : int;
  compiled_cycles : int;
  gc_count : int;
  methods_compiled : int;
  total_compile_seconds : float;
  prefetch_pass_seconds : float;
  output : string;
  reports : Strideprefetch.Pass.loop_report list;
  faulting_prefetches : int;
  spec_guard_trips : int;
  observables : Observables.t option;
  program : Vm.Classfile.program;
  sink : Telemetry.Sink.t option;
  effectiveness : Effectiveness.t option;
  profile : Profile.Report.t option;
  monitor : Monitor.Report.t option;
}

exception Invariant_violation of string
(** A runtime conservation law was violated at the end of a run made
    with [check_invariants]. The payload is the rendered
    {!Analysis.Diag.global} finding. *)

let run ?opts ?(standard_passes = true) ?compile_observer ?tweak_options
    ?engine ?(capture_observables = false) ?(verify_each_pass = false)
    ?(telemetry = false) ?(profile = false) ?(predict = false) ?sink_capacity
    ?monitor ?monitor_detect ~mode ~machine (workload : Workload.t) =
  let opts =
    let base =
      Option.value ~default:Strideprefetch.Options.default opts
    in
    Strideprefetch.Options.with_mode mode base
  in
  let program = Workload.compile workload in
  let interp_options =
    let base =
      {
        (Vm.Interp.default_options machine) with
        Vm.Interp.heap_limit_bytes = workload.heap_limit_bytes;
      }
    in
    let base =
      match engine with
      | Some e -> { base with Vm.Interp.engine = e }
      | None -> base
    in
    match tweak_options with Some f -> f base | None -> base
  in
  let interp = Vm.Interp.create ~options:interp_options machine program in
  (* Telemetry wiring: one sink + one site registry per run. The sink's
     cycle source is installed by [set_telemetry]; attribution rides the
     hierarchy's [_attr] entry points and leaves the simulation
     bit-identical (asserted by the golden tests). *)
  (* Profiling rides the attributed hierarchy path, so it implies
     telemetry; so does monitoring (the useful-rate stream is
     attribution, and the stall-bin stream is the profile hooks). *)
  let telemetry = telemetry || profile || monitor <> None in
  let sink =
    if telemetry then Some (Telemetry.Sink.create ?capacity:sink_capacity ())
    else None
  in
  let registry = if telemetry then Some (Telemetry.Attrib.create ()) else None in
  (match registry with
  | Some reg -> Vm.Interp.set_telemetry interp ~registry:reg ?sink ()
  | None -> ());
  let collector = if profile then Some (Profile.Collector.create ()) else None in
  let mon =
    Option.map
      (fun window_cycles ->
        Monitor.Collector.create ?detect:monitor_detect ?registry ?sink
          ~window_cycles interp)
      monitor
  in
  (* One [set_profile] call whoever is listening: the disabled state must
     stay a single [None] test on the hot paths, so two observers share
     one fanned-out hook set. *)
  (match (collector, mon) with
  | Some c, Some m ->
      Vm.Interp.set_profile interp
        (Vm.Interp.combine_profile_hooks (Profile.Collector.hooks c)
           (Monitor.Collector.hooks m))
  | Some c, None -> Vm.Interp.set_profile interp (Profile.Collector.hooks c)
  | None, Some m -> Vm.Interp.set_profile interp (Monitor.Collector.hooks m)
  | None, None -> ());
  let reports = ref [] in
  (* The static tier is consulted only when asked for ([predict], for the
     agreement scorer) or needed (non-[Inspect] prediction tiers), so the
     default path stays bit-identical to a predictor-free build. *)
  let predictor =
    if predict || opts.Strideprefetch.Options.prediction <> Strideprefetch.Options.Inspect
    then Some (Analysis.Addralg.predictor ~program)
    else None
  in
  let passes =
    (if standard_passes then Jit.Pipeline.standard_passes () else [])
    @
    match mode with
    | Strideprefetch.Options.Off -> []
    | Strideprefetch.Options.Inter | Strideprefetch.Options.Inter_intra ->
        [
          Strideprefetch.Pass.make_pass ~opts ~interp
            ~report_sink:(fun r -> reports := !reports @ r)
            ?registry ?sink ?predictor ();
        ]
  in
  let verifier =
    if not verify_each_pass then None
    else
      Some
        (fun m ->
          (* [!reports] is read at verification time: after the
             stride-prefetch pass ran on [m] its loop reports are already
             in the sink, so the plan-aware lints see them; after the
             baseline passes the list holds nothing for [m] and only the
             plan-free checkers apply. *)
          Analysis.Check.verify ~program ~reports:!reports
            ~scheduling_distance:opts.Strideprefetch.Options.scheduling_distance
            ~require_guarded:(Strideprefetch.Options.use_guarded opts machine)
            ~inter_stride_threshold:
              (Strideprefetch.Options.resolved_inter_stride_threshold opts
                 machine)
            m)
  in
  let span =
    Option.map
      (fun s ~name ~meth f ->
        Telemetry.Sink.span s ~cat:"jit"
          ~args:[ ("method", Telemetry.Json.Str meth) ]
          name f)
      sink
  in
  let pipeline =
    Jit.Pipeline.create ?verifier ?span
      ~on_mutate:(Vm.Interp.precompile_method interp)
      passes
  in
  Vm.Interp.set_compile_hook interp (fun _ m args ->
      match compile_observer with
      | None -> Jit.Pipeline.compile pipeline m args
      | Some observe ->
          (* Snapshot the complete heap + statics around the compilation —
             the JIT (object inspection included) must rewrite only code,
             never program state. *)
          let before = Observables.capture ~scope:`All interp in
          Jit.Pipeline.compile pipeline m args;
          let after = Observables.capture ~scope:`All interp in
          observe ~meth:m ~before ~after);
  ignore (Vm.Interp.run interp);
  Vm.Interp.finalize_telemetry interp;
  (* After [finalize_telemetry]: the end-of-run attribution settlement
     must land in the monitor's tail window. *)
  Option.iter Monitor.Collector.finalize mon;
  let stats = Memsim.Stats.copy (Vm.Interp.stats interp) in
  let effectiveness =
    match (registry, Vm.Interp.attribution interp) with
    | Some reg, Some attrib -> Some (Effectiveness.build ~registry:reg ~attrib)
    | _ -> None
  in
  let profile_report =
    Option.map
      (fun c ->
        Profile.Report.build ~program ~reports:!reports
          ~cycles:stats.Memsim.Stats.cycles c)
      collector
  in
  (* The runtime invariant audit: both conservation laws, reported
     through the diagnostics layer. [finalize_telemetry] already settled
     the attribution books above, so the checks are meaningful here. *)
  if opts.Strideprefetch.Options.check_invariants then begin
    let fail d = raise (Invariant_violation (Analysis.Diag.render_plain d)) in
    (match Vm.Interp.attribution interp with
    | Some attrib -> (
        match Memsim.Attribution.conservation_error attrib with
        | Some msg ->
            fail
              (Analysis.Diag.global ~checker:"attribution-conservation" "%s"
                 msg)
        | None -> ())
    | None -> ());
    match profile_report with
    | Some rep -> (
        match Profile.Report.conservation_error rep with
        | Some msg ->
            fail (Analysis.Diag.global ~checker:"profile-conservation" "%s" msg)
        | None -> ())
    | None -> ()
  end;
  (* Stamp the final counters onto the event stream so an exported trace
     is self-contained. *)
  (match sink with
  | Some s ->
      Telemetry.Sink.counter s ~cat:"stats" "final-stats"
        (List.map
           (fun (k, v) -> (k, Telemetry.Json.Int v))
           (Memsim.Stats.to_alist stats))
  | None -> ());
  {
    workload = workload.name;
    machine = machine.Memsim.Config.name;
    mode;
    cycles = stats.Memsim.Stats.cycles;
    stats;
    interpreted_cycles = Vm.Interp.interpreted_cycles interp;
    compiled_cycles = Vm.Interp.compiled_cycles interp;
    gc_count = Vm.Interp.gc_count interp;
    methods_compiled = Jit.Pipeline.methods_compiled pipeline;
    total_compile_seconds = Jit.Pipeline.total_seconds pipeline;
    prefetch_pass_seconds =
      Jit.Pipeline.seconds_of_pass pipeline "stride-prefetch";
    output = Vm.Interp.output interp;
    reports = !reports;
    faulting_prefetches = Vm.Interp.faulting_prefetches interp;
    spec_guard_trips = Vm.Interp.spec_guard_trips interp;
    observables =
      (if capture_observables then
         Some (Observables.capture ~scope:`Reachable interp)
       else None);
    program;
    sink;
    effectiveness;
    profile = profile_report;
    monitor = Option.map Monitor.Collector.report mon;
  }

let speedup ~baseline result =
  if baseline.output <> result.output then
    invalid_arg
      (Printf.sprintf
         "speedup: %s/%s: program output differs between %s and %s runs \
          (optimization changed semantics!)"
         result.workload result.machine
         (Strideprefetch.Options.mode_name baseline.mode)
         (Strideprefetch.Options.mode_name result.mode));
  if result.cycles = 0 then invalid_arg "speedup: zero cycle count";
  float_of_int baseline.cycles /. float_of_int result.cycles

let percent_speedup ~baseline result = (speedup ~baseline result -. 1.0) *. 100.0

let compiled_fraction r =
  let total = r.interpreted_cycles + r.compiled_cycles in
  if total = 0 then 0.0 else float_of_int r.compiled_cycles /. float_of_int total

let prefetch_overhead_fraction r =
  if r.total_compile_seconds = 0.0 then 0.0
  else r.prefetch_pass_seconds /. r.total_compile_seconds
