(** The effectiveness report: joins the pass's compile-time provenance,
    the interpreter's prefetch-site identities and memsim's outcome
    classification into per-site, per-kind and total coverage/accuracy.

    - accuracy = useful / issued;
    - coverage = useful / (useful + remaining memory misses at the
      registered target load site): a useful prefetch {e is} an
      eliminated miss, so the ratio reconstructs "misses eliminated over
      baseline misses" without a second run. *)

type site_row = {
  site_id : int;
  key : Telemetry.Attrib.key;
  meta : Telemetry.Attrib.meta option;
      (** [None]: the site issued prefetches but was never registered by
          the pass — indicates a provenance bug *)
  counters : Memsim.Attribution.site_counters;
  target_misses : int;
  coverage : float;
  accuracy : float;
}

type kind_rollup = {
  kind_name : string;
  sites : int;
  issued : int;
  useful : int;
  late : int;
  useless : int;
  cancelled : int;
  redundant : int;
  redundant_hw : int;
  kind_coverage : float;
  kind_accuracy : float;
}

type t = {
  rows : site_row list;
  kinds : kind_rollup list;
  totals : Memsim.Attribution.site_counters;
  total_coverage : float;
  total_accuracy : float;
  unattributed_misses : int;
}

val build : registry:Telemetry.Attrib.t -> attrib:Memsim.Attribution.t -> t
(** Call after [Vm.Interp.finalize_telemetry] so the books are settled. *)

val pp_table : Format.formatter -> t -> unit
(** The per-site table plus per-kind and total rollups. *)

val to_json : t -> Telemetry.Json.t
