(** Experiment harness: run a workload on a machine under a prefetching
    configuration, with the full mixed-mode pipeline wired up, and collect
    everything the paper's figures — and the fuzzing oracle — need. *)

type run_result = {
  workload : string;
  machine : string;
  mode : Strideprefetch.Options.mode;
  cycles : int;
  stats : Memsim.Stats.t;  (** snapshot at end of run *)
  interpreted_cycles : int;
  compiled_cycles : int;
  gc_count : int;
  methods_compiled : int;
  total_compile_seconds : float;
  prefetch_pass_seconds : float;
  output : string;  (** program output; must agree across modes *)
  reports : Strideprefetch.Pass.loop_report list;
  faulting_prefetches : int;
      (** prefetch-type ops that computed a negative address; must be 0 *)
  spec_guard_trips : int;  (** guarded spec_loads that yielded Null *)
  observables : Observables.t option;
      (** end-of-run reachable heap + statics snapshot, when
          [capture_observables] was requested *)
  program : Vm.Classfile.program;
      (** the executed program, with every JIT-rewritten body in place —
          what post-run analyses (the lint oracle) inspect *)
  sink : Telemetry.Sink.t option;
      (** the event ring of a [~telemetry:true] run, ready for the
          Chrome-trace / JSONL exporters *)
  effectiveness : Effectiveness.t option;
      (** per-site prefetch effectiveness of a [~telemetry:true] run *)
  profile : Profile.Report.t option;
      (** object-centric cycle profile of a [~profile:true] run: per-pc /
          per-loop / per-allocation-site stall attribution, ready for the
          top-down, folded-stack and JSON renderers *)
  monitor : Monitor.Report.t option;
      (** windowed time series + verdict timeline of a [~monitor] run,
          ready for the dashboard / JSONL renderers *)
}

exception Invariant_violation of string
(** Raised at the end of a run made with [opts.check_invariants = true]
    when a runtime conservation law does not hold: attribution's
    [issued = cancelled + redundant + useful + late + useless] or the
    profiler's [binned cycles = Stats.cycles]. The payload is the
    rendered {!Analysis.Diag.global} finding. *)

val run :
  ?opts:Strideprefetch.Options.t ->
  ?standard_passes:bool ->
  ?compile_observer:
    (meth:Vm.Classfile.method_info ->
    before:Observables.t ->
    after:Observables.t ->
    unit) ->
  ?tweak_options:(Vm.Interp.options -> Vm.Interp.options) ->
  ?engine:Vm.Interp.engine ->
  ?capture_observables:bool ->
  ?verify_each_pass:bool ->
  ?telemetry:bool ->
  ?profile:bool ->
  ?predict:bool ->
  ?sink_capacity:int ->
  ?monitor:int ->
  ?monitor_detect:Monitor.Detect.config ->
  mode:Strideprefetch.Options.mode ->
  machine:Memsim.Config.machine ->
  Workload.t ->
  run_result
(** Compile the workload from source (fresh program), install the JIT
    pipeline (standard passes + stride prefetching at [mode]), execute,
    and collect results. [opts] overrides the algorithm's knobs; its
    [mode] field is replaced by [mode].

    [standard_passes] (default [true]): include the baseline JIT passes;
    [false] compiles with only the prefetching pass, isolating it from
    optimizer interactions. [compile_observer] is invoked around every
    JIT compilation with bit-identical [`All]-scope snapshots taken
    before and after — the hook the side-effect-freedom tests use to
    prove object inspection leaves the heap and statics untouched.
    [tweak_options] edits the interpreter options (e.g. the
    [unguarded_spec_loads] fault-injection knob). [engine] selects the
    execution engine (default: the interpreter default, [Closure]);
    applied before [tweak_options], which can still override it.
    [capture_observables]
    (default [false]) captures a [`Reachable] snapshot at end of run into
    [observables]. [verify_each_pass] (default [false], a debug mode)
    installs {!Analysis.Check.verify} as the pipeline's verifier: the
    method body is re-checked after {e every} pass, and the first finding
    aborts compilation with [Jit.Pipeline.Verification_failed] naming the
    offending pass.

    [telemetry] (default [false]) threads the full observability stack
    through the run — compile/pass/inspection/GC spans and per-loop
    explain records into a fresh sink ([sink_capacity] events, default
    65536), prefetch-site attribution through the hierarchy's [_attr]
    entry points — and fills [run_result.sink] and
    [run_result.effectiveness]. Telemetry observes the simulation and
    never participates: cycles and all core stats counters are
    bit-identical to a [~telemetry:false] run (golden-tested; only the
    [Memsim.Stats.telemetry_only] counters become nonzero).

    [predict] (default [false]) installs the static access-prediction
    tier ({!Analysis.Addralg.predictor}) so every loop report carries
    static stride claims alongside the inspection results — the agreement
    scorer's input. Installed implicitly when [opts.prediction] is
    [Static] or [Hybrid] (where the claims also drive the skip/shorten
    rule); under the default [Inspect] tier with [predict:false] no
    predictor is constructed and compilation is bit-identical to PR 7.

    [profile] (default [false]) additionally installs the object-centric
    profiler ({!Profile.Collector} hooks) and fills
    [run_result.profile]. Implies [telemetry]. Like telemetry, profiling
    observes only: cycles, stats and program output stay bit-identical
    (fuzz-checked across the differential matrix).

    [monitor] (when given) arms the live windowed monitor with that
    window size in simulated cycles and fills [run_result.monitor].
    Implies [telemetry]; installs the {!Monitor.Collector} profile hooks
    (fanned out with the object profiler's when both are on).
    [monitor_detect] overrides the detector thresholds
    (default {!Monitor.Detect.default}). Monitoring observes only:
    cycles, stats and output stay bit-identical to an unmonitored run on
    both engines (golden-, bench- and fuzz-enforced). *)

val speedup : baseline:run_result -> run_result -> float
(** [cycles(baseline) / cycles(optimized)]; 1.10 means 10% faster. The two
    runs must have identical program output, which is checked
    (side-effect-freedom of the whole pass stack). Raises
    [Invalid_argument] otherwise. *)

val percent_speedup : baseline:run_result -> run_result -> float
(** [(speedup - 1) * 100]. *)

val compiled_fraction : run_result -> float
(** Share of cycles spent in compiled code (Table 3's last column). *)

val prefetch_overhead_fraction : run_result -> float
(** Prefetch-pass compile seconds / total compile seconds (Figure 11). *)
