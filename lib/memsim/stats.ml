type t = {
  mutable loads : int;
  mutable stores : int;
  mutable l1_load_misses : int;
  mutable l1_store_misses : int;
  mutable l2_load_misses : int;
  mutable l2_store_misses : int;
  mutable dtlb_load_misses : int;
  mutable dtlb_store_misses : int;
  mutable in_flight_hits : int;
  mutable sw_prefetches : int;
  mutable sw_prefetches_cancelled : int;
  mutable sw_prefetch_useless : int;
  mutable guarded_loads : int;
  mutable hw_prefetches : int;
  mutable retired_instructions : int;
  mutable cycles : int;
  mutable stall_cycles : int;
}

let create () =
  {
    loads = 0;
    stores = 0;
    l1_load_misses = 0;
    l1_store_misses = 0;
    l2_load_misses = 0;
    l2_store_misses = 0;
    dtlb_load_misses = 0;
    dtlb_store_misses = 0;
    in_flight_hits = 0;
    sw_prefetches = 0;
    sw_prefetches_cancelled = 0;
    sw_prefetch_useless = 0;
    guarded_loads = 0;
    hw_prefetches = 0;
    retired_instructions = 0;
    cycles = 0;
    stall_cycles = 0;
  }

let reset t =
  t.loads <- 0;
  t.stores <- 0;
  t.l1_load_misses <- 0;
  t.l1_store_misses <- 0;
  t.l2_load_misses <- 0;
  t.l2_store_misses <- 0;
  t.dtlb_load_misses <- 0;
  t.dtlb_store_misses <- 0;
  t.in_flight_hits <- 0;
  t.sw_prefetches <- 0;
  t.sw_prefetches_cancelled <- 0;
  t.sw_prefetch_useless <- 0;
  t.guarded_loads <- 0;
  t.hw_prefetches <- 0;
  t.retired_instructions <- 0;
  t.cycles <- 0;
  t.stall_cycles <- 0

let copy t = { t with loads = t.loads }

let copy_into t ~into =
  into.loads <- t.loads;
  into.stores <- t.stores;
  into.l1_load_misses <- t.l1_load_misses;
  into.l1_store_misses <- t.l1_store_misses;
  into.l2_load_misses <- t.l2_load_misses;
  into.l2_store_misses <- t.l2_store_misses;
  into.dtlb_load_misses <- t.dtlb_load_misses;
  into.dtlb_store_misses <- t.dtlb_store_misses;
  into.in_flight_hits <- t.in_flight_hits;
  into.sw_prefetches <- t.sw_prefetches;
  into.sw_prefetches_cancelled <- t.sw_prefetches_cancelled;
  into.sw_prefetch_useless <- t.sw_prefetch_useless;
  into.guarded_loads <- t.guarded_loads;
  into.hw_prefetches <- t.hw_prefetches;
  into.retired_instructions <- t.retired_instructions;
  into.cycles <- t.cycles;
  into.stall_cycles <- t.stall_cycles

let add a b =
  {
    loads = a.loads + b.loads;
    stores = a.stores + b.stores;
    l1_load_misses = a.l1_load_misses + b.l1_load_misses;
    l1_store_misses = a.l1_store_misses + b.l1_store_misses;
    l2_load_misses = a.l2_load_misses + b.l2_load_misses;
    l2_store_misses = a.l2_store_misses + b.l2_store_misses;
    dtlb_load_misses = a.dtlb_load_misses + b.dtlb_load_misses;
    dtlb_store_misses = a.dtlb_store_misses + b.dtlb_store_misses;
    in_flight_hits = a.in_flight_hits + b.in_flight_hits;
    sw_prefetches = a.sw_prefetches + b.sw_prefetches;
    sw_prefetches_cancelled =
      a.sw_prefetches_cancelled + b.sw_prefetches_cancelled;
    sw_prefetch_useless = a.sw_prefetch_useless + b.sw_prefetch_useless;
    guarded_loads = a.guarded_loads + b.guarded_loads;
    hw_prefetches = a.hw_prefetches + b.hw_prefetches;
    retired_instructions = a.retired_instructions + b.retired_instructions;
    cycles = a.cycles + b.cycles;
    stall_cycles = a.stall_cycles + b.stall_cycles;
  }

let per_instruction t misses =
  if t.retired_instructions = 0 then 0.0
  else float_of_int misses /. float_of_int t.retired_instructions

let l1_load_mpi t = per_instruction t t.l1_load_misses
let l2_load_mpi t = per_instruction t t.l2_load_misses
let dtlb_load_mpi t = per_instruction t t.dtlb_load_misses

let pp ppf t =
  Format.fprintf ppf
    "@[<v>retired=%d cycles=%d (stall=%d)@,\
     loads=%d stores=%d@,\
     L1 load misses=%d  L2 load misses=%d  DTLB load misses=%d@,\
     sw prefetch=%d (cancelled=%d, useless=%d) guarded loads=%d hw \
     prefetch=%d@]"
    t.retired_instructions t.cycles t.stall_cycles t.loads t.stores
    t.l1_load_misses t.l2_load_misses t.dtlb_load_misses t.sw_prefetches
    t.sw_prefetches_cancelled t.sw_prefetch_useless t.guarded_loads
    t.hw_prefetches

let pp_mpi ppf t =
  Format.fprintf ppf "L1 %.5f  L2 %.5f  DTLB %.5f" (l1_load_mpi t)
    (l2_load_mpi t) (dtlb_load_mpi t)
