type t = {
  mutable loads : int;
  mutable stores : int;
  mutable l1_load_misses : int;
  mutable l1_store_misses : int;
  mutable l2_load_misses : int;
  mutable l2_store_misses : int;
  mutable dtlb_load_misses : int;
  mutable dtlb_store_misses : int;
  mutable in_flight_hits : int;
  mutable sw_prefetches : int;
  mutable sw_prefetches_cancelled : int;
  mutable sw_prefetch_useless : int;
  mutable guarded_loads : int;
  mutable hw_prefetches : int;
  mutable retired_instructions : int;
  mutable cycles : int;
  mutable stall_cycles : int;
  (* Telemetry-only classification counters: maintained only by the
     [_attr] hierarchy entry points, so they are zero in a plain run.
     They refine — never replace — the counters above:
     [in_flight_demand_hits + sw_prefetch_late <= in_flight_hits]. *)
  mutable in_flight_demand_hits : int;
  mutable sw_prefetch_late : int;
  mutable sw_prefetch_useful : int;
  mutable sw_prefetch_redundant_hw : int;
  mutable hw_prefetch_useful : int;
}

let create () =
  {
    loads = 0;
    stores = 0;
    l1_load_misses = 0;
    l1_store_misses = 0;
    l2_load_misses = 0;
    l2_store_misses = 0;
    dtlb_load_misses = 0;
    dtlb_store_misses = 0;
    in_flight_hits = 0;
    sw_prefetches = 0;
    sw_prefetches_cancelled = 0;
    sw_prefetch_useless = 0;
    guarded_loads = 0;
    hw_prefetches = 0;
    retired_instructions = 0;
    cycles = 0;
    stall_cycles = 0;
    in_flight_demand_hits = 0;
    sw_prefetch_late = 0;
    sw_prefetch_useful = 0;
    sw_prefetch_redundant_hw = 0;
    hw_prefetch_useful = 0;
  }

(* The single canonical field list: one (name, getter, setter) triple per
   counter. [reset], [copy_into], [add] and the serializers below are all
   derived from it, so adding a counter means adding exactly one triple
   here (and the record field) — forgetting the triple is caught by the
   field-count unit test, which compares [List.length fields] against the
   runtime size of the record. *)
let fields : (string * (t -> int) * (t -> int -> unit)) list =
  [
    ("loads", (fun t -> t.loads), fun t v -> t.loads <- v);
    ("stores", (fun t -> t.stores), fun t v -> t.stores <- v);
    ( "l1_load_misses",
      (fun t -> t.l1_load_misses),
      fun t v -> t.l1_load_misses <- v );
    ( "l1_store_misses",
      (fun t -> t.l1_store_misses),
      fun t v -> t.l1_store_misses <- v );
    ( "l2_load_misses",
      (fun t -> t.l2_load_misses),
      fun t v -> t.l2_load_misses <- v );
    ( "l2_store_misses",
      (fun t -> t.l2_store_misses),
      fun t v -> t.l2_store_misses <- v );
    ( "dtlb_load_misses",
      (fun t -> t.dtlb_load_misses),
      fun t v -> t.dtlb_load_misses <- v );
    ( "dtlb_store_misses",
      (fun t -> t.dtlb_store_misses),
      fun t v -> t.dtlb_store_misses <- v );
    ( "in_flight_hits",
      (fun t -> t.in_flight_hits),
      fun t v -> t.in_flight_hits <- v );
    ("sw_prefetches", (fun t -> t.sw_prefetches), fun t v -> t.sw_prefetches <- v);
    ( "sw_prefetches_cancelled",
      (fun t -> t.sw_prefetches_cancelled),
      fun t v -> t.sw_prefetches_cancelled <- v );
    ( "sw_prefetch_useless",
      (fun t -> t.sw_prefetch_useless),
      fun t v -> t.sw_prefetch_useless <- v );
    ("guarded_loads", (fun t -> t.guarded_loads), fun t v -> t.guarded_loads <- v);
    ("hw_prefetches", (fun t -> t.hw_prefetches), fun t v -> t.hw_prefetches <- v);
    ( "retired_instructions",
      (fun t -> t.retired_instructions),
      fun t v -> t.retired_instructions <- v );
    ("cycles", (fun t -> t.cycles), fun t v -> t.cycles <- v);
    ("stall_cycles", (fun t -> t.stall_cycles), fun t v -> t.stall_cycles <- v);
    ( "in_flight_demand_hits",
      (fun t -> t.in_flight_demand_hits),
      fun t v -> t.in_flight_demand_hits <- v );
    ( "sw_prefetch_late",
      (fun t -> t.sw_prefetch_late),
      fun t v -> t.sw_prefetch_late <- v );
    ( "sw_prefetch_useful",
      (fun t -> t.sw_prefetch_useful),
      fun t v -> t.sw_prefetch_useful <- v );
    ( "sw_prefetch_redundant_hw",
      (fun t -> t.sw_prefetch_redundant_hw),
      fun t v -> t.sw_prefetch_redundant_hw <- v );
    ( "hw_prefetch_useful",
      (fun t -> t.hw_prefetch_useful),
      fun t v -> t.hw_prefetch_useful <- v );
  ]

(* Counters that exist only when telemetry is enabled. Comparisons that
   must hold across a telemetry-on/off pair (golden tests, the fuzz
   oracle) compare [core_alist] only. *)
let telemetry_only =
  [
    "in_flight_demand_hits";
    "sw_prefetch_late";
    "sw_prefetch_useful";
    "sw_prefetch_redundant_hw";
    "hw_prefetch_useful";
  ]

let to_alist t = List.map (fun (name, get, _) -> (name, get t)) fields

let core_alist t =
  List.filter_map
    (fun (name, get, _) ->
      if List.mem name telemetry_only then None else Some (name, get t))
    fields

let reset t = List.iter (fun (_, _, set) -> set t 0) fields
let copy t = { t with loads = t.loads }
let copy_into t ~into = List.iter (fun (_, get, set) -> set into (get t)) fields

let add a b =
  let r = create () in
  List.iter (fun (_, get, set) -> set r (get a + get b)) fields;
  r

let delta a b =
  let r = create () in
  List.iter (fun (_, get, set) -> set r (get a - get b)) fields;
  r

let delta_into a b ~into =
  List.iter (fun (_, get, set) -> set into (get a - get b)) fields

let per_instruction t misses =
  if t.retired_instructions = 0 then 0.0
  else float_of_int misses /. float_of_int t.retired_instructions

let l1_load_mpi t = per_instruction t t.l1_load_misses
let l2_load_mpi t = per_instruction t t.l2_load_misses
let dtlb_load_mpi t = per_instruction t t.dtlb_load_misses

let pp ppf t =
  Format.fprintf ppf
    "@[<v>retired=%d cycles=%d (stall=%d)@,\
     loads=%d stores=%d@,\
     L1 load misses=%d  L2 load misses=%d  DTLB load misses=%d@,\
     sw prefetch=%d (cancelled=%d, useless=%d) guarded loads=%d hw \
     prefetch=%d@]"
    t.retired_instructions t.cycles t.stall_cycles t.loads t.stores
    t.l1_load_misses t.l2_load_misses t.dtlb_load_misses t.sw_prefetches
    t.sw_prefetches_cancelled t.sw_prefetch_useless t.guarded_loads
    t.hw_prefetches;
  if t.sw_prefetch_useful + t.sw_prefetch_late + t.in_flight_demand_hits > 0
  then
    Format.fprintf ppf
      "@,attributed: useful=%d late=%d (demand-shadowed in-flight=%d)"
      t.sw_prefetch_useful t.sw_prefetch_late t.in_flight_demand_hits

let pp_mpi ppf t =
  Format.fprintf ppf "L1 %.5f  L2 %.5f  DTLB %.5f" (l1_load_mpi t)
    (l2_load_mpi t) (dtlb_load_mpi t)
