type t = {
  machine : Config.machine;
  l1 : Cache.t;
  l2 : Cache.t;
  dtlb : Tlb.t;
  hwpf : Hw_prefetch.t;
  stats : Stats.t;
  (* Per-level penalties, hoisted out of the per-access hot path at
     [create] time so [demand_access] does no nested record loads. *)
  l1_hit_extra : int;
  l1_miss_penalty : int;
  tlb_miss_penalty : int;
  mem_latency : int;  (** DRAM fill latency = L2 miss penalty *)
}

let create (machine : Config.machine) =
  (match Config.validate machine with
  | Ok () -> ()
  | Error msg -> invalid_arg ("hierarchy: " ^ msg));
  {
    machine;
    l1 = Cache.create machine.l1;
    l2 = Cache.create machine.l2;
    dtlb = Tlb.create machine.dtlb;
    hwpf =
      Hw_prefetch.create ~streams:machine.hw_prefetch_streams
        ~line_bytes:machine.l2.line_bytes
        ~page_bytes:machine.dtlb.page_bytes;
    stats = Stats.create ();
    l1_hit_extra = machine.l1.hit_extra;
    l1_miss_penalty = machine.l1.miss_penalty;
    tlb_miss_penalty = machine.dtlb.tlb_miss_penalty;
    mem_latency = machine.l2.miss_penalty;
  }

let machine t = t.machine
let stats t = t.stats

let line_bytes t =
  match t.machine.prefetch_target with
  | Config.To_l2 -> t.machine.l2.line_bytes
  | Config.To_l1 -> t.machine.l1.line_bytes

let page_bytes t = t.machine.dtlb.page_bytes

let hw_prefetch_on_l2_miss t ~addr ~now =
  match Hw_prefetch.observe_miss t.hwpf ~addr with
  | None -> ()
  | Some target ->
      if not (Cache.probe t.l2 ~addr:target) then begin
        t.stats.hw_prefetches <- t.stats.hw_prefetches + 1;
        Cache.fill t.l2 ~addr:target ~ready_at:(now + t.mem_latency)
      end

let record_l1_miss t kind =
  match kind with
  | `Load -> t.stats.l1_load_misses <- t.stats.l1_load_misses + 1
  | `Store -> t.stats.l1_store_misses <- t.stats.l1_store_misses + 1

let record_l2_miss t kind =
  match kind with
  | `Load -> t.stats.l2_load_misses <- t.stats.l2_load_misses + 1
  | `Store -> t.stats.l2_store_misses <- t.stats.l2_store_misses + 1

let record_dtlb_miss t kind =
  match kind with
  | `Load -> t.stats.dtlb_load_misses <- t.stats.dtlb_load_misses + 1
  | `Store -> t.stats.dtlb_store_misses <- t.stats.dtlb_store_misses + 1

(* L1-missed demand access: walk the L2 and memory, fill upwards. Returns
   the stall beyond any TLB penalty. Out of line so the fast path below
   stays small. *)
let[@inline never] demand_l1_miss t ~addr ~kind ~now =
  record_l1_miss t kind;
  let stall =
    let r2 = Cache.access_residual t.l2 ~addr ~now in
    if r2 = 0 then t.l1_miss_penalty
    else if r2 > 0 then begin
      t.stats.in_flight_hits <- t.stats.in_flight_hits + 1;
      t.l1_miss_penalty + r2
    end
    else begin
      record_l2_miss t kind;
      let s = t.l1_miss_penalty + t.mem_latency in
      hw_prefetch_on_l2_miss t ~addr ~now;
      Cache.fill t.l2 ~addr ~ready_at:now;
      s
    end
  in
  Cache.fill t.l1 ~addr ~ready_at:now;
  stall

let demand_access t ~addr ~kind ~now =
  (match kind with
  | `Load -> t.stats.loads <- t.stats.loads + 1
  | `Store -> t.stats.stores <- t.stats.stores + 1);
  (* Fast path: DTLB hit and L1 hit-and-ready resolve in two probes and
     return [hit_extra] directly — no [ref] cells, no closure, no
     allocation. The state transitions (TLB touch, then L1 touch/fill)
     are performed in exactly the order of the general path, so simulated
     cycle counts are bit-identical either way. *)
  let tlb_stall =
    if Tlb.access t.dtlb ~addr then 0
    else begin
      record_dtlb_miss t kind;
      Tlb.fill t.dtlb ~addr;
      t.tlb_miss_penalty
    end
  in
  let r1 = Cache.access_residual t.l1 ~addr ~now in
  if r1 = 0 then tlb_stall + t.l1_hit_extra
  else if r1 > 0 then begin
    t.stats.in_flight_hits <- t.stats.in_flight_hits + 1;
    tlb_stall + r1
  end
  else tlb_stall + demand_l1_miss t ~addr ~kind ~now

(* Cost (as fill completion time, not a stall) of bringing [addr] into the
   L2 for a non-blocking operation issued at [now]. *)
let l2_fill_ready t ~addr ~now =
  let r = Cache.access_residual t.l2 ~addr ~now in
  if r >= 0 then now + r
  else begin
    let ready = now + t.mem_latency in
    Cache.fill t.l2 ~addr ~ready_at:ready;
    ready
  end

let sw_prefetch t ~addr ~now =
  t.stats.sw_prefetches <- t.stats.sw_prefetches + 1;
  if not (Tlb.probe t.dtlb ~addr) then
    (* The processor cancels a hardware prefetch whose translation misses
       the DTLB (Section 3.3). *)
    t.stats.sw_prefetches_cancelled <- t.stats.sw_prefetches_cancelled + 1
  else
    match t.machine.prefetch_target with
    | Config.To_l2 ->
        if Cache.probe t.l2 ~addr then
          t.stats.sw_prefetch_useless <- t.stats.sw_prefetch_useless + 1
        else ignore (l2_fill_ready t ~addr ~now)
    | Config.To_l1 ->
        if Cache.probe t.l1 ~addr then
          t.stats.sw_prefetch_useless <- t.stats.sw_prefetch_useless + 1
        else begin
          let ready = l2_fill_ready t ~addr ~now in
          Cache.fill t.l1 ~addr
            ~ready_at:(max ready (now + t.l1_miss_penalty))
        end

let guarded_load t ~addr ~now =
  t.stats.guarded_loads <- t.stats.guarded_loads + 1;
  if not (Tlb.probe t.dtlb ~addr) then Tlb.fill t.dtlb ~addr;
  if Cache.probe t.l1 ~addr then
    t.stats.sw_prefetch_useless <- t.stats.sw_prefetch_useless + 1
  else begin
    let ready = l2_fill_ready t ~addr ~now in
    Cache.fill t.l1 ~addr ~ready_at:(max ready (now + t.l1_miss_penalty))
  end

let reset t =
  Cache.reset t.l1;
  Cache.reset t.l2;
  Tlb.reset t.dtlb;
  Hw_prefetch.reset t.hwpf;
  Stats.reset t.stats
