type t = {
  machine : Config.machine;
  l1 : Cache.t;
  l2 : Cache.t;
  dtlb : Tlb.t;
  hwpf : Hw_prefetch.t;
  stats : Stats.t;
  (* Per-level penalties, hoisted out of the per-access hot path at
     [create] time so [demand_access] does no nested record loads. *)
  l1_hit_extra : int;
  l1_miss_penalty : int;
  tlb_miss_penalty : int;
  mem_latency : int;  (** DRAM fill latency = L2 miss penalty *)
  (* Stall breakdown of the most recent attributed demand access, for the
     profiler's top-down cycle accounting. Written only by the [_attr]
     demand path (so a plain run never touches them) and guaranteed to
     satisfy [bd_tlb + bd_l1 + bd_l2 + bd_mem = returned stall] — the
     conservation law the profiler's golden tests assert. *)
  mutable bd_tlb : int;
  mutable bd_l1 : int;
  mutable bd_l2 : int;
  mutable bd_mem : int;
}

let create (machine : Config.machine) =
  (match Config.validate machine with
  | Ok () -> ()
  | Error msg -> invalid_arg ("hierarchy: " ^ msg));
  {
    machine;
    l1 = Cache.create machine.l1;
    l2 = Cache.create machine.l2;
    dtlb = Tlb.create machine.dtlb;
    hwpf =
      Hw_prefetch.create ~model:machine.hw_prefetch
        ~line_bytes:machine.l2.line_bytes
        ~page_bytes:machine.dtlb.page_bytes;
    stats = Stats.create ();
    l1_hit_extra = machine.l1.hit_extra;
    l1_miss_penalty = machine.l1.miss_penalty;
    tlb_miss_penalty = machine.dtlb.tlb_miss_penalty;
    mem_latency = machine.l2.miss_penalty;
    bd_tlb = 0;
    bd_l1 = 0;
    bd_l2 = 0;
    bd_mem = 0;
  }

let machine t = t.machine
let stats t = t.stats

(* Int-specialized [max]: [Stdlib.max] compiles to the generic-compare C
   call, visible on the prefetch/miss fill paths. *)
let[@inline] imax (a : int) b = if a > b then a else b

let line_bytes t =
  match t.machine.prefetch_target with
  | Config.To_l2 -> t.machine.l2.line_bytes
  | Config.To_l1 -> t.machine.l1.line_bytes

let page_bytes t = t.machine.dtlb.page_bytes

(* Feed one demand L2 miss to the hardware prefetcher and issue its
   suggested fills, nearest target first. A target already present (or in
   flight) in the L2 costs nothing and is not counted. *)
let hw_prefetch_on_l2_miss t ~pc ~addr ~now =
  match Hw_prefetch.observe_miss t.hwpf ~pc ~addr with
  | [] -> ()
  | targets ->
      List.iter
        (fun target ->
          if not (Cache.probe t.l2 ~addr:target) then begin
            t.stats.hw_prefetches <- t.stats.hw_prefetches + 1;
            Cache.fill t.l2 ~addr:target ~ready_at:(now + t.mem_latency)
          end)
        targets

(* Attributed twin: identical cache transitions and seed counters, plus
   each actual fill is registered in the attribution layer's hardware
   shadow table (what splits [redundant] from [redundant_hw] at SW issue
   time). *)
let hw_prefetch_on_l2_miss_attr t at ~pc ~addr ~now =
  match Hw_prefetch.observe_miss t.hwpf ~pc ~addr with
  | [] -> ()
  | targets ->
      List.iter
        (fun target ->
          if not (Cache.probe t.l2 ~addr:target) then begin
            t.stats.hw_prefetches <- t.stats.hw_prefetches + 1;
            Cache.fill t.l2 ~addr:target ~ready_at:(now + t.mem_latency);
            Attribution.note_hw_fill at ~line:(Cache.line_of t.l2 target)
          end)
        targets

let record_l1_miss t kind =
  match kind with
  | `Load -> t.stats.l1_load_misses <- t.stats.l1_load_misses + 1
  | `Store -> t.stats.l1_store_misses <- t.stats.l1_store_misses + 1

let record_l2_miss t kind =
  match kind with
  | `Load -> t.stats.l2_load_misses <- t.stats.l2_load_misses + 1
  | `Store -> t.stats.l2_store_misses <- t.stats.l2_store_misses + 1

let record_dtlb_miss t kind =
  match kind with
  | `Load -> t.stats.dtlb_load_misses <- t.stats.dtlb_load_misses + 1
  | `Store -> t.stats.dtlb_store_misses <- t.stats.dtlb_store_misses + 1

(* L1-missed demand access: walk the L2 and memory, fill upwards. Returns
   the stall beyond any TLB penalty. Out of line so the fast path below
   stays small. *)
let[@inline never] demand_l1_miss t ~pc ~addr ~kind ~now =
  record_l1_miss t kind;
  let stall =
    let r2 = Cache.access_residual t.l2 ~addr ~now in
    if r2 = 0 then t.l1_miss_penalty
    else if r2 > 0 then begin
      t.stats.in_flight_hits <- t.stats.in_flight_hits + 1;
      t.l1_miss_penalty + r2
    end
    else begin
      record_l2_miss t kind;
      let s = t.l1_miss_penalty + t.mem_latency in
      hw_prefetch_on_l2_miss t ~pc ~addr ~now;
      Cache.fill t.l2 ~addr ~ready_at:now;
      s
    end
  in
  Cache.fill t.l1 ~addr ~ready_at:now;
  stall

let demand_access t ~pc ~addr ~kind ~now =
  (match kind with
  | `Load -> t.stats.loads <- t.stats.loads + 1
  | `Store -> t.stats.stores <- t.stats.stores + 1);
  (* Fast path: DTLB hit and L1 hit-and-ready resolve in two probes and
     return [hit_extra] directly — no [ref] cells, no closure, no
     allocation. The state transitions (TLB touch, then L1 touch/fill)
     are performed in exactly the order of the general path, so simulated
     cycle counts are bit-identical either way. *)
  let tlb_stall =
    if Tlb.access t.dtlb ~addr then 0
    else begin
      record_dtlb_miss t kind;
      Tlb.fill t.dtlb ~addr;
      t.tlb_miss_penalty
    end
  in
  let r1 = Cache.access_residual t.l1 ~addr ~now in
  if r1 = 0 then tlb_stall + t.l1_hit_extra
  else if r1 > 0 then begin
    t.stats.in_flight_hits <- t.stats.in_flight_hits + 1;
    tlb_stall + r1
  end
  else tlb_stall + demand_l1_miss t ~pc ~addr ~kind ~now

(* Cost (as fill completion time, not a stall) of bringing [addr] into the
   L2 for a non-blocking operation issued at [now]. *)
let l2_fill_ready t ~addr ~now =
  let r = Cache.access_residual t.l2 ~addr ~now in
  if r >= 0 then now + r
  else begin
    let ready = now + t.mem_latency in
    Cache.fill t.l2 ~addr ~ready_at:ready;
    ready
  end

let sw_prefetch t ~addr ~now =
  t.stats.sw_prefetches <- t.stats.sw_prefetches + 1;
  if not (Tlb.probe t.dtlb ~addr) then
    (* The processor cancels a hardware prefetch whose translation misses
       the DTLB (Section 3.3). *)
    t.stats.sw_prefetches_cancelled <- t.stats.sw_prefetches_cancelled + 1
  else
    match t.machine.prefetch_target with
    | Config.To_l2 ->
        if Cache.probe t.l2 ~addr then
          t.stats.sw_prefetch_useless <- t.stats.sw_prefetch_useless + 1
        else ignore (l2_fill_ready t ~addr ~now)
    | Config.To_l1 ->
        if Cache.probe t.l1 ~addr then
          t.stats.sw_prefetch_useless <- t.stats.sw_prefetch_useless + 1
        else begin
          let ready = l2_fill_ready t ~addr ~now in
          Cache.fill t.l1 ~addr
            ~ready_at:(imax ready (now + t.l1_miss_penalty))
        end

let guarded_load t ~addr ~now =
  t.stats.guarded_loads <- t.stats.guarded_loads + 1;
  if not (Tlb.probe t.dtlb ~addr) then Tlb.fill t.dtlb ~addr;
  if Cache.probe t.l1 ~addr then
    t.stats.sw_prefetch_useless <- t.stats.sw_prefetch_useless + 1
  else begin
    let ready = l2_fill_ready t ~addr ~now in
    Cache.fill t.l1 ~addr ~ready_at:(imax ready (now + t.l1_miss_penalty))
  end

let reset t =
  Cache.reset t.l1;
  Cache.reset t.l2;
  Tlb.reset t.dtlb;
  Hw_prefetch.reset t.hwpf;
  Stats.reset t.stats

(* ------------------------------------------------------------------ *)
(* Attributed entry points.

   These are deliberate near-copies of the plain paths above that
   additionally classify each access against an [Attribution.t]. They
   perform the {e identical} state transitions, in the identical order,
   and bump the identical seed counters — the only extra stats they
   touch are the [Stats.telemetry_only] counters, which are zero in a
   plain run. The telemetry-off golden tests and the fuzz oracle's
   on/off cross-check exist to catch any drift between the two copies.

   Classification happens at the level a prefetch targeted: [note_fill]
   registers the line there, and the demand path resolves tracked lines
   as useful (hit-and-ready), late (hit-in-flight) or useless (a miss on
   a tracked line proves eviction). Demand {e memory} misses are
   bucketed under [dkey] for the coverage denominator. *)

let[@inline never] demand_l1_miss_attr t at ~pc ~addr ~kind ~now ~dkey =
  record_l1_miss t kind;
  let l2_line = Cache.line_of t.l2 addr in
  (* Every L1-missing access pays the L2 access penalty: L2-bound. *)
  t.bd_l2 <- t.l1_miss_penalty;
  let stall =
    let r2 = Cache.access_residual t.l2 ~addr ~now in
    if r2 = 0 then begin
      (match Attribution.demand_resolve at ~level:`L2 ~line:l2_line ~ready:true
       with
      | Attribution.Useful ->
          t.stats.sw_prefetch_useful <- t.stats.sw_prefetch_useful + 1
      | Attribution.Late | Attribution.Untracked -> ());
      if Attribution.hw_demand_resolve at ~line:l2_line then
        t.stats.hw_prefetch_useful <- t.stats.hw_prefetch_useful + 1;
      t.l1_miss_penalty
    end
    else if r2 > 0 then begin
      t.stats.in_flight_hits <- t.stats.in_flight_hits + 1;
      (match Attribution.demand_resolve at ~level:`L2 ~line:l2_line ~ready:false
       with
      | Attribution.Late ->
          t.stats.sw_prefetch_late <- t.stats.sw_prefetch_late + 1
      | Attribution.Untracked ->
          t.stats.in_flight_demand_hits <- t.stats.in_flight_demand_hits + 1
      | Attribution.Useful -> ());
      if Attribution.hw_demand_resolve at ~line:l2_line then
        t.stats.hw_prefetch_useful <- t.stats.hw_prefetch_useful + 1;
      (* Residual of an in-flight fill sourced below the L2: mem-bound. *)
      t.bd_mem <- r2;
      t.l1_miss_penalty + r2
    end
    else begin
      Attribution.demand_evict at ~level:`L2 ~line:l2_line;
      Attribution.hw_demand_evict at ~line:l2_line;
      Attribution.note_demand_miss at ~key:dkey;
      record_l2_miss t kind;
      t.bd_mem <- t.mem_latency;
      let s = t.l1_miss_penalty + t.mem_latency in
      hw_prefetch_on_l2_miss_attr t at ~pc ~addr ~now;
      Cache.fill t.l2 ~addr ~ready_at:now;
      s
    end
  in
  Cache.fill t.l1 ~addr ~ready_at:now;
  stall

let demand_access_attr t ~attrib ~pc ~addr ~kind ~now ~dkey =
  (match kind with
  | `Load -> t.stats.loads <- t.stats.loads + 1
  | `Store -> t.stats.stores <- t.stats.stores + 1);
  let tlb_stall =
    if Tlb.access t.dtlb ~addr then 0
    else begin
      record_dtlb_miss t kind;
      Tlb.fill t.dtlb ~addr;
      t.tlb_miss_penalty
    end
  in
  t.bd_tlb <- tlb_stall;
  t.bd_l1 <- 0;
  t.bd_l2 <- 0;
  t.bd_mem <- 0;
  let l1_line = Cache.line_of t.l1 addr in
  let r1 = Cache.access_residual t.l1 ~addr ~now in
  if r1 = 0 then begin
    (match
       Attribution.demand_resolve attrib ~level:`L1 ~line:l1_line ~ready:true
     with
    | Attribution.Useful ->
        t.stats.sw_prefetch_useful <- t.stats.sw_prefetch_useful + 1
    | Attribution.Late | Attribution.Untracked -> ());
    t.bd_l1 <- t.l1_hit_extra;
    tlb_stall + t.l1_hit_extra
  end
  else if r1 > 0 then begin
    t.stats.in_flight_hits <- t.stats.in_flight_hits + 1;
    (match
       Attribution.demand_resolve attrib ~level:`L1 ~line:l1_line ~ready:false
     with
    | Attribution.Late ->
        t.stats.sw_prefetch_late <- t.stats.sw_prefetch_late + 1
    | Attribution.Untracked ->
        t.stats.in_flight_demand_hits <- t.stats.in_flight_demand_hits + 1
    | Attribution.Useful -> ());
    (* Waiting out an in-flight L1 fill: the data is still on its way
       from below, so the residual is accounted memory-bound. *)
    t.bd_mem <- r1;
    tlb_stall + r1
  end
  else begin
    Attribution.demand_evict attrib ~level:`L1 ~line:l1_line;
    tlb_stall + demand_l1_miss_attr t attrib ~pc ~addr ~kind ~now ~dkey
  end

let last_tlb_stall t = t.bd_tlb
let last_l1_stall t = t.bd_l1
let last_l2_stall t = t.bd_l2
let last_mem_stall t = t.bd_mem

let sw_prefetch_attr t ~attrib ~addr ~now ~site =
  t.stats.sw_prefetches <- t.stats.sw_prefetches + 1;
  Attribution.note_issue attrib ~site;
  if not (Tlb.probe t.dtlb ~addr) then begin
    t.stats.sw_prefetches_cancelled <- t.stats.sw_prefetches_cancelled + 1;
    Attribution.note_cancelled attrib ~site
  end
  else
    match t.machine.prefetch_target with
    | Config.To_l2 ->
        if Cache.probe t.l2 ~addr then begin
          t.stats.sw_prefetch_useless <- t.stats.sw_prefetch_useless + 1;
          (* The line is cached — but is it cached because the hardware
             prefetcher fetched it? That refinement is the SW/HW
             arbitration signal: a [redundant_hw] prefetch is one the
             paper's half-line rule should have suppressed. *)
          if Attribution.hw_tracked attrib ~line:(Cache.line_of t.l2 addr)
          then begin
            t.stats.sw_prefetch_redundant_hw <-
              t.stats.sw_prefetch_redundant_hw + 1;
            Attribution.note_redundant_hw attrib ~site
          end
          else Attribution.note_redundant attrib ~site
        end
        else begin
          ignore (l2_fill_ready t ~addr ~now);
          Attribution.note_fill attrib ~level:`L2
            ~line:(Cache.line_of t.l2 addr) ~site
        end
    | Config.To_l1 ->
        if Cache.probe t.l1 ~addr then begin
          t.stats.sw_prefetch_useless <- t.stats.sw_prefetch_useless + 1;
          Attribution.note_redundant attrib ~site
        end
        else begin
          let ready = l2_fill_ready t ~addr ~now in
          Cache.fill t.l1 ~addr
            ~ready_at:(imax ready (now + t.l1_miss_penalty));
          Attribution.note_fill attrib ~level:`L1
            ~line:(Cache.line_of t.l1 addr) ~site
        end

let guarded_load_attr t ~attrib ~addr ~now ~site =
  t.stats.guarded_loads <- t.stats.guarded_loads + 1;
  Attribution.note_issue attrib ~site;
  if not (Tlb.probe t.dtlb ~addr) then Tlb.fill t.dtlb ~addr;
  if Cache.probe t.l1 ~addr then begin
    t.stats.sw_prefetch_useless <- t.stats.sw_prefetch_useless + 1;
    Attribution.note_redundant attrib ~site
  end
  else begin
    let ready = l2_fill_ready t ~addr ~now in
    Cache.fill t.l1 ~addr ~ready_at:(imax ready (now + t.l1_miss_penalty));
    Attribution.note_fill attrib ~level:`L1 ~line:(Cache.line_of t.l1 addr)
      ~site
  end
