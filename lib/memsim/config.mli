(** Machine descriptions for the memory-hierarchy simulator.

    The two preset machines reproduce Table 2 of the paper (cache and DTLB
    geometry of the Intel Pentium 4 and the AMD Athlon MP) together with the
    timing model documented in DESIGN.md. *)

type cache_params = {
  size_bytes : int;  (** total capacity in bytes *)
  line_bytes : int;  (** line size in bytes; must be a power of two *)
  assoc : int;  (** number of ways *)
  hit_extra : int;  (** extra cycles charged on a hit in this level *)
  miss_penalty : int;  (** cycles to fetch a line from the next level *)
}

type tlb_params = {
  entries : int;  (** number of fully-associative entries *)
  page_bytes : int;  (** page size in bytes; must be a power of two *)
  tlb_miss_penalty : int;  (** page-walk cycles charged on a miss *)
}

(** Cache level that software prefetch instructions fill: the Pentium 4
    prefetches into the L2 only, the Athlon MP into the L1 (and L2). *)
type prefetch_target = To_l2 | To_l1

(** The hardware prefetcher model a machine ships (see {!Hw_prefetch}):
    [Hw_none] disables it; [Hw_stream] is the next-line stream detector
    of the seed simulator; [Hw_rpt] is a Chen/Baer reference-prediction
    table (direct-mapped per-PC trackers, power-of-two [table_size],
    issuing [degree] line targets [distance] strides ahead once a
    tracker is Steady). *)
type hw_prefetch_model =
  | Hw_none
  | Hw_stream of { streams : int }
  | Hw_rpt of { table_size : int; degree : int; distance : int }

type machine = {
  name : string;
  l1 : cache_params;
  l2 : cache_params;
  dtlb : tlb_params;
  prefetch_target : prefetch_target;
  interp_cost : int;  (** cycles to retire one interpreted instruction *)
  compiled_cost : int;  (** cycles to retire one compiled instruction *)
  prefetch_cost : int;  (** cycles to retire a hardware prefetch instruction *)
  guarded_load_cost : int;  (** cycles to retire a guarded (checked) load *)
  hw_prefetch : hw_prefetch_model;  (** the HW prefetcher this machine runs *)
}

val pentium4 : machine
val athlon_mp : machine

val machines : machine list
(** [machines] is [[pentium4; athlon_mp]], the evaluation platforms. *)

val machine_of_name : string -> machine option
(** Case-insensitive lookup among {!machines}. *)

val validate : machine -> (unit, string) result
(** Check structural invariants (powers of two, positive sizes,
    associativity dividing the number of lines). *)

val validate_cache : string -> cache_params -> (unit, string) result
(** [validate_cache label params] checks one cache level; [label] prefixes
    the error message. *)

val validate_hw_prefetch : hw_prefetch_model -> (unit, string) result
(** Structural checks for one prefetcher model (power-of-two RPT table,
    degree/distance >= 1, non-negative stream count). *)

val default_stream : hw_prefetch_model
(** [Hw_stream {streams = 8}] — what both paper machines ship. *)

val default_rpt : hw_prefetch_model
(** [Hw_rpt {table_size = 64; degree = 2; distance = 4}] — the default
    operating point of the RPT model ("rpt" with no parameters). *)

val hw_prefetch_to_string : hw_prefetch_model -> string
(** Canonical spec string ("none", "stream:8", "rpt:64x2\@4"), stable —
    bench cell keys embed it. Round-trips through
    {!hw_prefetch_of_string}. *)

val hw_prefetch_kind : hw_prefetch_model -> string
(** Just the model family: "none" | "stream" | "rpt". *)

val hw_prefetch_of_string : string -> (hw_prefetch_model, string) result
(** Parse a spec: "none", "stream", "stream:N", "rpt", or
    "rpt:TABLExDEGREE\@DISTANCE" (e.g. "rpt:64x2\@4"). Bare "stream"
    and "rpt" mean {!default_stream} and {!default_rpt}. *)

val pp_machine : Format.formatter -> machine -> unit
(** One-line rendering of the Table 2 parameters of a machine. *)
