(** A set-associative, LRU-replacement cache with in-flight fills.

    Lines filled by a (hardware or software) prefetch carry a [ready_at]
    cycle; a demand access that arrives before the fill completes stalls for
    the residual time. This is what makes prefetch scheduling distance
    meaningful: a too-late prefetch removes only part of the miss latency,
    and a too-early prefetch can be evicted before use. *)

type t

type lookup = Hit | Hit_in_flight of int  (** residual fill cycles *) | Miss

val create : Config.cache_params -> t
val params : t -> Config.cache_params

val line_of : t -> int -> int
(** [line_of t addr] is the line index (address divided by line size). *)

val access : t -> addr:int -> now:int -> lookup
(** Demand lookup; promotes the line to most-recently-used on a hit. *)

val miss : int
(** Sentinel returned by {!access_residual} on a miss ([min_int]). *)

val access_residual : t -> addr:int -> now:int -> int
(** Allocation-free {!access}: {!miss} on a miss, otherwise the residual
    fill cycles clamped to [>= 0] (0 meaning hit-and-ready). Identical
    state effects to {!access}; this is the interpreter's hot path. *)

val probe : t -> addr:int -> bool
(** Presence test with no LRU side effect (used by prefetch issue logic). *)

val fill : t -> addr:int -> ready_at:int -> unit
(** Install the line containing [addr], evicting the LRU way of its set. If
    the line is already present only its [ready_at] is lowered, never
    raised (a demand fill completes an in-flight prefetch). *)

val invalidate : t -> addr:int -> unit
val reset : t -> unit

val resident_lines : t -> int
(** Number of currently valid lines (for tests and occupancy reports). *)
