(* The hardware prefetch unit attached to the L2 miss stream. Three
   models (Config.hw_prefetch_model):

   - [Disabled]: never suggests anything.
   - [Stream]: the next-line stream detector of the original seed — two
     misses on adjacent lines establish a directed stream that keeps
     suggesting the next line each time it advances. This is the unit
     both evaluation machines ship and the one the paper's half-line
     profitability rule reasons about (Section 3.3, citing Jouppi).
   - [Rpt]: a Chen/Baer reference-prediction table — a direct-mapped
     per-PC tracker table with the Initial/Transient/Steady/NoPred state
     machine, issuing up to [degree] line prefetches [distance] strides
     ahead once a PC's stride is confirmed Steady.

   All models observe only demand L2 misses and suggest L2 fill targets;
   suggestions never cross the page of the triggering miss (hardware
   prefetchers of this era stop at 4 KiB boundaries). *)

(* ---- stream unit ---- *)

type stream = {
  mutable last_line : int;
  mutable direction : int;  (** +1, -1, or 0 when not yet established *)
  mutable live : bool;
}

type stream_unit = {
  streams : stream array;
  mutable next_alloc : int;  (** round-robin victim for new streams *)
}

(* ---- reference prediction table ---- *)

type rpt_state = Initial | Transient | Steady | No_pred

type rpt_entry = {
  mutable tag : int;  (** pc key; [-1] = empty slot *)
  mutable prev_addr : int;
  mutable stride : int;
  mutable state : rpt_state;
}

type rpt_unit = {
  entries : rpt_entry array;  (** direct-mapped, power-of-two sized *)
  degree : int;
  distance : int;
}

type model =
  | Disabled
  | Stream of stream_unit
  | Rpt of rpt_unit

type t = { model : model; line_bytes : int; page_bytes : int }

let create ~(model : Config.hw_prefetch_model) ~line_bytes ~page_bytes =
  if line_bytes <= 0 then invalid_arg "hw_prefetch: line size must be positive";
  if page_bytes <= 0 then invalid_arg "hw_prefetch: page size must be positive";
  let model =
    match model with
    | Config.Hw_none -> Disabled
    | Config.Hw_stream { streams } ->
        if streams < 0 then invalid_arg "hw_prefetch: streams must be >= 0";
        if streams = 0 then Disabled
        else
          Stream
            {
              streams =
                Array.init streams (fun _ ->
                    { last_line = min_int; direction = 0; live = false });
              next_alloc = 0;
            }
    | Config.Hw_rpt { table_size; degree; distance } ->
        if table_size <= 0 || table_size land (table_size - 1) <> 0 then
          invalid_arg "hw_prefetch: rpt table size must be a power of two";
        if degree < 1 then invalid_arg "hw_prefetch: rpt degree must be >= 1";
        if distance < 1 then
          invalid_arg "hw_prefetch: rpt distance must be >= 1";
        Rpt
          {
            entries =
              Array.init table_size (fun _ ->
                  { tag = -1; prev_addr = 0; stride = 0; state = Initial });
            degree;
            distance;
          }
  in
  { model; line_bytes; page_bytes }

(* ---- stream model ---- *)

let find_matching (u : stream_unit) line =
  let n = Array.length u.streams in
  let rec go i =
    if i >= n then None
    else
      let s = u.streams.(i) in
      if s.live && (line = s.last_line + 1 || line = s.last_line - 1) then
        Some s
      else go (i + 1)
  in
  go 0

(* A live stream already at [line]: a second miss on the same line (the
   line was evicted and re-missed before the stream advanced) is a
   re-reference of the stream's position, not a one-line step — at
   [line_bytes] granularity it carries no direction information. Without
   this check the re-miss fell through to the allocation path and
   clobbered an unrelated slot round-robin. *)
let find_same_line (u : stream_unit) line =
  let n = Array.length u.streams in
  let rec go i =
    if i >= n then false
    else
      let s = u.streams.(i) in
      (s.live && line = s.last_line) || go (i + 1)
  in
  go 0

let stream_observe t (u : stream_unit) ~addr =
  let line = addr / t.line_bytes in
  match find_matching u line with
  | Some s ->
      let direction = line - s.last_line in
      s.last_line <- line;
      s.direction <- direction;
      let target = (line + direction) * t.line_bytes in
      (* Hardware prefetchers of this era stop at page boundaries. *)
      if target / t.page_bytes <> addr / t.page_bytes then []
      else [ target ]
  | None ->
      if find_same_line u line then []
      else begin
        (* No established stream covers this miss: allocate a fresh
           stream slot round-robin. It only starts prefetching once a
           neighbouring miss confirms a direction. *)
        let s = u.streams.(u.next_alloc) in
        u.next_alloc <- (u.next_alloc + 1) mod Array.length u.streams;
        s.last_line <- line;
        s.direction <- 0;
        s.live <- true;
        []
      end

(* ---- RPT model ---- *)

(* The classic two-bit state machine (Chen & Baer): a stride repeating
   moves the entry towards Steady, a stride breaking moves it away.

     Initial   --match--> Steady      --mismatch--> Transient (new stride)
     Transient --match--> Steady      --mismatch--> No_pred   (new stride)
     Steady    --match--> Steady      --mismatch--> Initial   (keep stride)
     No_pred   --match--> Transient   --mismatch--> No_pred   (new stride)

   Prefetches are suggested only from Steady entries with a non-zero
   stride. *)

let rpt_observe t (u : rpt_unit) ~pc ~addr =
  let idx = pc land (Array.length u.entries - 1) in
  let e = u.entries.(idx) in
  if e.tag <> pc then begin
    (* Tag replacement: the previous tracker at this slot is evicted. *)
    e.tag <- pc;
    e.prev_addr <- addr;
    e.stride <- 0;
    e.state <- Initial;
    []
  end
  else begin
    let observed = addr - e.prev_addr in
    let matched = observed = e.stride in
    (match e.state with
    | Initial ->
        if matched then e.state <- Steady
        else begin
          e.stride <- observed;
          e.state <- Transient
        end
    | Transient ->
        if matched then e.state <- Steady
        else begin
          e.stride <- observed;
          e.state <- No_pred
        end
    | Steady -> if not matched then e.state <- Initial
    | No_pred ->
        if matched then e.state <- Transient
        else e.stride <- observed);
    e.prev_addr <- addr;
    if e.state <> Steady || e.stride = 0 then []
    else begin
      let page = addr / t.page_bytes in
      let acc = ref [] in
      (* [degree] line targets, the first one [distance] strides ahead,
         clipped to the page of the triggering miss. Built back-to-front
         so the nearest target is issued (and thus filled) first. *)
      for d = u.degree - 1 downto 0 do
        let target_addr = addr + (e.stride * (u.distance + d)) in
        let target = target_addr / t.line_bytes * t.line_bytes in
        if target_addr >= 0 && target_addr / t.page_bytes = page then
          acc := target :: !acc
      done;
      !acc
    end
  end

let observe_miss t ~pc ~addr =
  match t.model with
  | Disabled -> []
  | Stream u -> stream_observe t u ~addr
  | Rpt u -> rpt_observe t u ~pc ~addr

let reset t =
  match t.model with
  | Disabled -> ()
  | Stream u ->
      Array.iter
        (fun s ->
          s.last_line <- min_int;
          s.direction <- 0;
          s.live <- false)
        u.streams;
      u.next_alloc <- 0
  | Rpt u ->
      Array.iter
        (fun e ->
          e.tag <- -1;
          e.prev_addr <- 0;
          e.stride <- 0;
          e.state <- Initial)
        u.entries

let active_streams t =
  match t.model with
  | Disabled | Rpt _ -> 0
  | Stream u ->
      Array.fold_left (fun acc s -> if s.live then acc + 1 else acc) 0 u.streams

let rpt_state_name t ~pc =
  match t.model with
  | Disabled | Stream _ -> None
  | Rpt u ->
      let e = u.entries.(pc land (Array.length u.entries - 1)) in
      if e.tag <> pc then None
      else
        Some
          (match e.state with
          | Initial -> "initial"
          | Transient -> "transient"
          | Steady -> "steady"
          | No_pred -> "nopred")
