(** Event counters for a simulated run.

    The paper's evaluation metric is MPI (misses per retired instruction):
    the number of dynamic miss {e events} divided by the number of retired
    instructions (Section 4.2). Counters here follow that definition; the
    retired-instruction count is maintained by the interpreter and stored
    here so that MPIs can be computed in one place. *)

type t = {
  mutable loads : int;  (** demand loads issued *)
  mutable stores : int;  (** demand stores issued *)
  mutable l1_load_misses : int;
  mutable l1_store_misses : int;
  mutable l2_load_misses : int;
  mutable l2_store_misses : int;
  mutable dtlb_load_misses : int;
  mutable dtlb_store_misses : int;
  mutable in_flight_hits : int;
      (** demand accesses that found their line still being filled *)
  mutable sw_prefetches : int;  (** software prefetch instructions executed *)
  mutable sw_prefetches_cancelled : int;
      (** hardware-form prefetches dropped because of a DTLB miss *)
  mutable sw_prefetch_useless : int;
      (** prefetches whose target line was already cached *)
  mutable guarded_loads : int;
  mutable hw_prefetches : int;  (** lines fetched by the stream prefetcher *)
  mutable retired_instructions : int;
  mutable cycles : int;
  mutable stall_cycles : int;  (** memory stall part of [cycles] *)
  mutable in_flight_demand_hits : int;
      (** telemetry only: in-flight hits whose fill was {e not} initiated
          by an attributed software prefetch (demand or hardware-stream
          shadowing); zero in a plain run *)
  mutable sw_prefetch_late : int;
      (** telemetry only: demand arrived while an attributed software
          prefetch's fill was still in flight; zero in a plain run *)
  mutable sw_prefetch_useful : int;
      (** telemetry only: demand found an attributed software prefetch's
          line present and ready; zero in a plain run *)
  mutable sw_prefetch_redundant_hw : int;
      (** telemetry only: software prefetches whose target line was
          already cached {e because the hardware prefetcher fetched it} —
          the [redundant_with_hw] refinement of [sw_prefetch_useless];
          zero in a plain run *)
  mutable hw_prefetch_useful : int;
      (** telemetry only: demand accesses that found a line the hardware
          prefetcher had fetched (first touch per fill); zero in a plain
          run *)
}

val create : unit -> t

val fields : (string * (t -> int) * (t -> int -> unit)) list
(** The canonical counter list: one (name, getter, setter) triple per
    record field, in declaration order. [reset]/[copy_into]/[add] and
    the serializers are derived from it; a unit test checks its length
    against the runtime size of the record so a new counter cannot be
    added without extending it. *)

val telemetry_only : string list
(** Names of counters maintained only by the [_attr] hierarchy entry
    points. Telemetry-on/off comparisons must ignore exactly these. *)

val to_alist : t -> (string * int) list
val core_alist : t -> (string * int) list
(** [to_alist] minus the {!telemetry_only} counters. *)

val reset : t -> unit
val copy : t -> t

val copy_into : t -> into:t -> unit
(** Overwrite every counter of [into] with the values of [t]. The single
    canonical field list — callers that save/restore counters (e.g. across
    a GC-time hierarchy flush) use this so that adding a counter cannot
    silently desynchronize them. *)

val add : t -> t -> t
(** [add a b] is a fresh counter set with the component-wise sum. *)

val delta : t -> t -> t
(** [delta a b] is a fresh counter set with the component-wise difference
    [a - b] — the windowed-counter helper: with [b] a snapshot taken at
    the previous window boundary and [a] the live counters, the result is
    exactly what happened inside the window. Derived from {!fields}, so a
    newly added counter participates automatically. *)

val delta_into : t -> t -> into:t -> unit
(** Allocation-free [delta]: overwrite every counter of [into] with
    [a - b]. The monitor's per-window sampling uses this so closing a
    window costs no allocation beyond the retained window record. *)

val l1_load_mpi : t -> float
val l2_load_mpi : t -> float
val dtlb_load_mpi : t -> float
(** Miss events per retired instruction; 0.0 when nothing retired. *)

val pp : Format.formatter -> t -> unit
val pp_mpi : Format.formatter -> t -> unit
