(** Per-site effectiveness attribution for software prefetches.

    Sites are small dense ints; what a site {e means} (method, loop,
    strategy) is recorded outside memsim by the telemetry layer. The
    hierarchy's [_attr] entry points drive this module; each prefetch
    issue is classified into exactly one of seven outcomes, so after
    {!flush}:

    {v issued = cancelled + redundant + redundant_hw + useful + late + useless v}

    Demand {e memory} misses are additionally bucketed under a
    caller-supplied key, providing the coverage denominator. *)

type t

type site_counters = {
  mutable issued : int;
  mutable cancelled : int;  (** DTLB-miss cancellations *)
  mutable redundant : int;  (** target line already cached at issue *)
  mutable redundant_hw : int;
      (** target line already cached at issue, and the hardware prefetcher
          fetched it — the prefetch the paper's half-line rule tries not
          to emit *)
  mutable useful : int;  (** demand found the line ready *)
  mutable late : int;  (** demand arrived while the fill was in flight *)
  mutable useless : int;  (** evicted or flushed untouched *)
}

type outcome = Useful | Late | Untracked

val create : unit -> t

val n_sites : t -> int
(** One past the highest site id seen. *)

val site_counters : t -> int -> site_counters
(** A copy of site [id]'s counters (all-zero for unseen ids). *)

val totals : t -> site_counters
(** Sum over all sites. *)

val totals_into : t -> into:site_counters -> unit
(** Allocation-free {!totals}: overwrite [into] with the sum over all
    sites. The live-monitoring layer samples the outcome totals at every
    window boundary through this, so a window close does not allocate in
    memsim. *)

val zero_counters : unit -> site_counters
(** A fresh all-zero counter record (scratch for {!totals_into}). *)

val note_issue : t -> site:int -> unit
val note_cancelled : t -> site:int -> unit
val note_redundant : t -> site:int -> unit
val note_redundant_hw : t -> site:int -> unit

(** {2 Hardware-fill shadow table}

    L2-only (the HW prefetcher fills the L2). Not part of the SW
    conservation law: the table exists to split [redundant] from
    [redundant_hw] at issue time and to feed the telemetry-only
    [hw_prefetch_useful] counter. *)

val note_hw_fill : t -> line:int -> unit
(** The hardware prefetcher initiated a fill of L2 [line]. *)

val hw_tracked : t -> line:int -> bool
(** Is [line] cached because the hardware fetched it? *)

val hw_demand_resolve : t -> line:int -> bool
(** A demand access found [line] present in the L2; [true] on the first
    touch of a HW-filled line. *)

val hw_demand_evict : t -> line:int -> unit
(** A demand access missed [line] in the L2: drop any HW entry. *)

val note_fill : t -> level:[ `L1 | `L2 ] -> line:int -> site:int -> unit
(** A prefetch from [site] initiated a fill of [line] at [level].
    Replacing a stale untouched entry classifies it useless. *)

val demand_resolve :
  t -> level:[ `L1 | `L2 ] -> line:int -> ready:bool -> outcome
(** A demand access found [line] present; the first demand to touch a
    tracked line classifies its prefetch [Useful] (fill complete) or
    [Late] (fill in flight). *)

val demand_evict : t -> level:[ `L1 | `L2 ] -> line:int -> unit
(** A demand access missed [line]: an untouched tracked entry was
    evicted before use (useless). *)

val note_demand_miss : t -> key:int -> unit
(** Record a demand memory miss under [key] (coverage denominator). *)

val demand_misses_for : t -> key:int -> int
val demand_miss_buckets : t -> (int * int) list

val flush : t -> unit
(** Classify every still-untouched fill useless and empty the shadow
    tables. Must be called whenever the simulated address space is
    rewritten (GC compaction) or the caches reset, and once at end of
    run. *)

val tracked_lines : t -> int
(** Entries currently in the shadow tables (tests / occupancy). *)

val conservation_error : t -> string option
(** Check the outcome conservation law
    [issued = cancelled + redundant + redundant_hw + useful + late +
    useless] per site
    and over the totals. [None] when the books balance; [Some msg]
    describes the first violated site. Only meaningful after {!flush}
    (before it, in-flight fills are legitimately unclassified). *)
