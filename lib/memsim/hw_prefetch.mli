(** The hardware prefetch unit attached to the L2 demand-miss stream.

    Three models, selected by the machine description
    ({!Config.hw_prefetch_model}):

    - [Hw_none]: disabled.
    - [Hw_stream]: the next-line stream detector both evaluation machines
      ship. Two misses on adjacent lines establish a directed stream that
      suggests the next line each time it advances; a re-miss on a live
      stream's current line is absorbed (it carries no direction at line
      granularity). The paper's profitability rule "an inter-iteration
      stride must exceed half a cache line" exists precisely because this
      hardware already covers short strides (Section 3.3, citing Jouppi).
    - [Hw_rpt]: a Chen/Baer reference-prediction table — direct-mapped
      per-PC trackers with the Initial/Transient/Steady/NoPred state
      machine, issuing up to [degree] line targets [distance] strides
      ahead once a PC's stride is Steady.

    All models observe demand L2 misses only, suggest L2 fill targets
    only, and never cross the page of the triggering miss (hardware
    prefetchers of this era stop at 4 KiB boundaries). *)

type t

val create :
  model:Config.hw_prefetch_model -> line_bytes:int -> page_bytes:int -> t
(** [line_bytes] is the L2 line size (target granularity);
    [Hw_stream {streams = 0}] is equivalent to [Hw_none]. Raises
    [Invalid_argument] on non-positive sizes, a non-power-of-two RPT
    table, or degree/distance < 1. *)

val observe_miss : t -> pc:int -> addr:int -> int list
(** Feed one L2 demand miss: the packed program counter of the accessing
    instruction and the missing address. Returns the line-aligned
    addresses to prefetch into the L2, nearest first ([[]] most of the
    time). The stream model ignores [pc]; the RPT is indexed by it. *)

val reset : t -> unit
(** Forget all trackers (GC compaction rewrites the address space). *)

val active_streams : t -> int
(** Live stream count ([0] for the other models; tests/debug). *)

val rpt_state_name : t -> pc:int -> string option
(** The RPT tracker state currently associated with [pc]
    ("initial"/"transient"/"steady"/"nopred"), [None] when no tracker
    tags [pc] or the model is not [Hw_rpt]. Tests/debug only. *)
