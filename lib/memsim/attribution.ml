(* Per-site effectiveness attribution for software prefetches.

   Every prefetch-type operation carries a small dense [site] id (the
   joining of ids to methods/loops/strategies happens outside memsim, in
   the telemetry layer — this module speaks only ints). Each fill that a
   software prefetch initiates is remembered in a shadow table keyed by
   the line index at the level the fill targeted; the first demand access
   that reaches that line classifies the prefetch:

   - {b useful}: the demand found the line present and ready — the
     prefetch converted a miss into a hit;
   - {b late}: the demand arrived while the fill was still in flight —
     the prefetch hid only part of the latency;
   - {b useless}: the line was evicted (observed lazily: a later miss on
     a tracked line proves the eviction) or never touched before a
     flush, so the prefetch moved data nobody read.

   At issue time three further outcomes are recorded directly:
   {b cancelled} (DTLB-miss cancellation of a hardware-form prefetch),
   {b redundant} (the target line was already cached) and
   {b redundant_hw} (the target line was already cached {e because the
   hardware prefetcher fetched it} — tracked in a second shadow table of
   hardware fills, the SW/HW arbitration signal). Every issue lands in
   exactly one class, so after [flush]:

     issued = cancelled + redundant + redundant_hw + useful + late + useless

   which the tests assert. Demand {e memory} misses (fills from DRAM)
   are additionally bucketed by a caller-supplied demand key, giving the
   denominator for coverage: a site's useful prefetches over the misses
   it was meant to eliminate plus the ones that remain. *)

type site_counters = {
  mutable issued : int;
  mutable cancelled : int;  (** DTLB-miss cancellations *)
  mutable redundant : int;  (** target line already cached at issue *)
  mutable redundant_hw : int;
      (** target line already cached at issue, filled by the HW prefetcher *)
  mutable useful : int;  (** demand found the line ready *)
  mutable late : int;  (** demand arrived while the fill was in flight *)
  mutable useless : int;  (** evicted or flushed untouched *)
}

let zero_counters () =
  {
    issued = 0;
    cancelled = 0;
    redundant = 0;
    redundant_hw = 0;
    useful = 0;
    late = 0;
    useless = 0;
  }

type entry = { site : int; mutable touched : bool }

type t = {
  mutable sites : site_counters array;
  mutable n_sites : int;
  l1_lines : (int, entry) Hashtbl.t;  (** L1 line index -> issuing site *)
  l2_lines : (int, entry) Hashtbl.t;  (** L2 line index -> issuing site *)
  hw_lines : (int, bool ref) Hashtbl.t;
      (** L2 line index -> touched, for lines the HW prefetcher filled *)
  demand_misses : (int, int ref) Hashtbl.t;  (** demand key -> memory misses *)
}

let create () =
  {
    sites = Array.init 16 (fun _ -> zero_counters ());
    n_sites = 0;
    l1_lines = Hashtbl.create 1024;
    l2_lines = Hashtbl.create 1024;
    hw_lines = Hashtbl.create 1024;
    demand_misses = Hashtbl.create 64;
  }

let site t id =
  if id < 0 then invalid_arg "Attribution.site: negative site id";
  if id >= Array.length t.sites then begin
    let n = max (2 * Array.length t.sites) (id + 1) in
    let grown = Array.init n (fun _ -> zero_counters ()) in
    Array.blit t.sites 0 grown 0 (Array.length t.sites);
    t.sites <- grown
  end;
  if id >= t.n_sites then t.n_sites <- id + 1;
  t.sites.(id)

let n_sites t = t.n_sites

let site_counters t id =
  if id < 0 || id >= t.n_sites then zero_counters ()
  else
    let c = t.sites.(id) in
    {
      issued = c.issued;
      cancelled = c.cancelled;
      redundant = c.redundant;
      redundant_hw = c.redundant_hw;
      useful = c.useful;
      late = c.late;
      useless = c.useless;
    }

let note_issue t ~site:id =
  let c = site t id in
  c.issued <- c.issued + 1

let note_cancelled t ~site:id =
  let c = site t id in
  c.cancelled <- c.cancelled + 1

let note_redundant t ~site:id =
  let c = site t id in
  c.redundant <- c.redundant + 1

let note_redundant_hw t ~site:id =
  let c = site t id in
  c.redundant_hw <- c.redundant_hw + 1

(* ---- hardware-fill shadow table (L2 only: the HW prefetcher fills the
   L2). The table answers one question at SW-prefetch issue time — "is
   this line cached because the hardware fetched it?" — and feeds the
   telemetry-only [hw_prefetch_useful] counter on first demand touch.
   Hardware fills are not part of the SW conservation law. *)

let note_hw_fill t ~line = Hashtbl.replace t.hw_lines line (ref false)
let hw_tracked t ~line = Hashtbl.mem t.hw_lines line

(* A demand access found [line] present in the L2: first touch of a
   HW-filled line reports true (the HW prefetch covered a demand miss). *)
let hw_demand_resolve t ~line =
  match Hashtbl.find_opt t.hw_lines line with
  | Some touched when not !touched ->
      touched := true;
      true
  | Some _ | None -> false

(* A demand access missed [line] in the L2: any HW entry there was
   evicted. *)
let hw_demand_evict t ~line = Hashtbl.remove t.hw_lines line

let table t = function `L1 -> t.l1_lines | `L2 -> t.l2_lines

(* A software prefetch initiated a fill of [line] at [level]. If a stale
   untouched entry is being replaced, its line must have been evicted
   since (the caller only fills on a probe miss), so it is classified
   useless here. *)
let note_fill t ~level ~line ~site:id =
  let tbl = table t level in
  (match Hashtbl.find_opt tbl line with
  | Some old when not old.touched ->
      let c = site t old.site in
      c.useless <- c.useless + 1
  | Some _ | None -> ());
  Hashtbl.replace tbl line { site = id; touched = false }

type outcome = Useful | Late | Untracked

(* A demand access found [line] present at [level]; [ready] says whether
   the fill had completed. The first demand to touch a tracked line
   classifies its prefetch; later demands are untracked hits. *)
let demand_resolve t ~level ~line ~ready =
  let tbl = table t level in
  match Hashtbl.find_opt tbl line with
  | Some e when not e.touched ->
      e.touched <- true;
      let c = site t e.site in
      if ready then begin
        c.useful <- c.useful + 1;
        Useful
      end
      else begin
        c.late <- c.late + 1;
        Late
      end
  | Some _ | None -> Untracked

(* A demand access missed [line] at [level]: any untouched tracked entry
   was evicted before use. *)
let demand_evict t ~level ~line =
  let tbl = table t level in
  match Hashtbl.find_opt tbl line with
  | Some e ->
      if not e.touched then begin
        let c = site t e.site in
        c.useless <- c.useless + 1
      end;
      Hashtbl.remove tbl line
  | None -> ()

let note_demand_miss t ~key =
  match Hashtbl.find_opt t.demand_misses key with
  | Some r -> incr r
  | None -> Hashtbl.add t.demand_misses key (ref 1)

let demand_misses_for t ~key =
  match Hashtbl.find_opt t.demand_misses key with Some r -> !r | None -> 0

let demand_miss_buckets t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.demand_misses []
  |> List.sort compare

(* The shadow tables speak raw line indices, so they must be emptied
   whenever the simulated address space is rewritten (GC compaction) or
   the caches are reset; any still-untouched fill is then useless by
   definition. Also called once at end of run to settle the books. *)
let flush t =
  let settle tbl =
    Hashtbl.iter
      (fun _ e ->
        if not e.touched then begin
          let c = site t e.site in
          c.useless <- c.useless + 1
        end)
      tbl;
    Hashtbl.reset tbl
  in
  settle t.l1_lines;
  settle t.l2_lines;
  Hashtbl.reset t.hw_lines

let tracked_lines t = Hashtbl.length t.l1_lines + Hashtbl.length t.l2_lines

(* Allocation-free windowed tap: the monitor samples totals at every
   window boundary, so the accumulator is caller-owned and overwritten in
   place. O(n_sites) per call; site counts are small and dense. *)
let totals_into t ~into:acc =
  acc.issued <- 0;
  acc.cancelled <- 0;
  acc.redundant <- 0;
  acc.redundant_hw <- 0;
  acc.useful <- 0;
  acc.late <- 0;
  acc.useless <- 0;
  for i = 0 to t.n_sites - 1 do
    let c = t.sites.(i) in
    acc.issued <- acc.issued + c.issued;
    acc.cancelled <- acc.cancelled + c.cancelled;
    acc.redundant <- acc.redundant + c.redundant;
    acc.redundant_hw <- acc.redundant_hw + c.redundant_hw;
    acc.useful <- acc.useful + c.useful;
    acc.late <- acc.late + c.late;
    acc.useless <- acc.useless + c.useless
  done

let totals t =
  let acc = zero_counters () in
  totals_into t ~into:acc;
  acc

(* The conservation law of the outcome taxonomy. Promoted from the test
   suite to a callable check so the harness can assert it at end of run
   (behind [Strideprefetch.Options.check_invariants]) and report any
   violation through the diagnostics layer. Only meaningful after
   [flush]: in-flight entries are still unclassified before that. *)
let conservation_error t =
  let err = ref None in
  let check label (c : site_counters) =
    if !err = None then begin
      let classified =
        c.cancelled + c.redundant + c.redundant_hw + c.useful + c.late
        + c.useless
      in
      if c.issued <> classified then
        err :=
          Some
            (Printf.sprintf
               "%s: issued=%d but \
                cancelled+redundant+redundant_hw+useful+late+useless=%d \
                (law: issued = cancelled + redundant + redundant_hw + \
                useful + late + useless)"
               label c.issued classified)
    end
  in
  for i = 0 to t.n_sites - 1 do
    check (Printf.sprintf "site %d" i) t.sites.(i)
  done;
  check "totals" (totals t);
  !err
