type t = {
  params : Config.tlb_params;
  page_shift : int;
  pages : int array;  (** -1 means invalid *)
  stamp : int array;
  mutable tick : int;
  mutable last : int;
      (** index of the last hit — page locality makes consecutive accesses
          overwhelmingly land on the same page, so this memo short-circuits
          the linear scan. Entries are unique ([fill] only installs a page
          it did not find), and the memo always re-reads the live [pages]
          array, so it can never return a stale answer. *)
  hint : int array;
      (** direct-mapped acceleration index: [hint.(page land hint_mask)]
          is the {e candidate} entry for [page]. Like [last], it is a pure
          lookup hint with no simulated effect — every candidate is
          verified against the live [pages] array before use, so a stale
          or colliding hint only costs the linear-scan fallback. Without
          it, workloads whose access stream alternates between pages (the
          [db] record scans) degrade to scanning the full 256-entry
          AthlonMP DTLB on every access. *)
  hint_mask : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (params : Config.tlb_params) =
  if params.entries <= 0 then invalid_arg "tlb: entries must be positive";
  if params.page_bytes <= 0 || params.page_bytes land (params.page_bytes - 1) <> 0
  then invalid_arg "tlb: page size must be a power of two";
  {
    params;
    page_shift = log2 params.page_bytes;
    pages = Array.make params.entries (-1);
    stamp = Array.make params.entries 0;
    tick = 0;
    last = 0;
    hint = Array.make 1024 0;
    hint_mask = 1023;
  }

let params t = t.params
let page_of t addr = addr lsr t.page_shift

(* Index of [page], or -1. Checks the last-hit memo first; the fallback is
   a tight counted loop (measurably faster here than the seed's recursive
   option-returning scan, and it allocates nothing). *)
let[@inline never] find_idx_scan t page =
  let pages = t.pages in
  let n = Array.length pages in
  let i = ref 0 in
  while !i < n && Array.unsafe_get pages !i <> page do
    incr i
  done;
  if !i < n then begin
    t.last <- !i;
    t.hint.(page land t.hint_mask) <- !i;
    !i
  end
  else -1

let[@inline] find_idx t page =
  let pages = t.pages in
  if Array.unsafe_get pages t.last = page then t.last
  else begin
    let h = Array.unsafe_get t.hint (page land t.hint_mask) in
    if Array.unsafe_get pages h = page then begin
      t.last <- h;
      h
    end
    else find_idx_scan t page
  end

let touch t i =
  t.tick <- t.tick + 1;
  t.stamp.(i) <- t.tick

let access t ~addr =
  let i = find_idx t (page_of t addr) in
  if i >= 0 then begin
    touch t i;
    true
  end
  else false

let probe t ~addr = find_idx t (page_of t addr) >= 0

let fill t ~addr =
  let page = page_of t addr in
  match find_idx t page with
  | i when i >= 0 -> touch t i
  | _ ->
      let victim = ref 0 in
      let n = Array.length t.pages in
      (try
         for i = 0 to n - 1 do
           if t.pages.(i) = -1 then begin
             victim := i;
             raise Exit
           end;
           if t.stamp.(i) < t.stamp.(!victim) then victim := i
         done
       with Exit -> ());
      t.pages.(!victim) <- page;
      t.last <- !victim;
      t.hint.(page land t.hint_mask) <- !victim;
      touch t !victim

let reset t =
  Array.fill t.pages 0 (Array.length t.pages) (-1);
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  t.tick <- 0;
  t.last <- 0;
  Array.fill t.hint 0 (Array.length t.hint) 0

let resident_pages t =
  Array.fold_left (fun acc p -> if p >= 0 then acc + 1 else acc) 0 t.pages
