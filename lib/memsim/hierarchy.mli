(** The composed memory system of one machine: DTLB + L1 + L2 + the
    hardware stream prefetcher, with the machine-specific software-prefetch
    semantics of Section 3.3:

    - the hardware [prefetch] instruction fills the machine's prefetch
      target level (L2 on the Pentium 4, L1 and L2 on the Athlon MP) and is
      cancelled when the page is not in the DTLB;
    - a [guarded_load] (a load protected by a software exception check)
      additionally primes the DTLB and always fills L1 and L2.

    All prefetch-type operations are non-blocking: they initiate fills that
    complete [latency] cycles later, and only a demand access arriving
    before completion pays (the residual part of) the latency. *)

type t

val create : Config.machine -> t
val machine : t -> Config.machine
val stats : t -> Stats.t

val demand_access :
  t -> pc:int -> addr:int -> kind:[ `Load | `Store ] -> now:int -> int
(** Perform a demand access; returns the stall cycles to charge, and
    records miss events in {!stats}. [pc] is the packed program counter
    of the accessing instruction (see [Vm.State]); it indexes the RPT
    hardware prefetcher and must be engine-invariant — the stream model
    ignores it. *)

val sw_prefetch : t -> addr:int -> now:int -> unit
(** Execute a hardware prefetch instruction for [addr] (non-blocking). *)

val guarded_load : t -> addr:int -> now:int -> unit
(** Execute a guarded prefetching load for [addr] (non-blocking,
    TLB-priming). *)

val line_bytes : t -> int
(** Line size of the level software prefetches target — the value the
    profitability analysis compares strides against. *)

val page_bytes : t -> int
val reset : t -> unit

(** {2 Attributed entry points}

    Near-copies of the plain operations that additionally classify each
    access against an {!Attribution.t}. They perform identical state
    transitions and identical seed-counter updates — a run through these
    entry points is bit-identical (cycles and core stats) to a plain
    run; the only extra counters they touch are [Stats.telemetry_only].
    Drift between the copies is caught by the golden telemetry tests and
    the fuzz oracle's on/off cross-check. *)

val demand_access_attr :
  t ->
  attrib:Attribution.t ->
  pc:int ->
  addr:int ->
  kind:[ `Load | `Store ] ->
  now:int ->
  dkey:int ->
  int
(** As {!demand_access}; resolves tracked lines (useful/late/useless)
    and buckets demand memory misses under [dkey]. *)

val sw_prefetch_attr :
  t -> attrib:Attribution.t -> addr:int -> now:int -> site:int -> unit
(** As {!sw_prefetch}; records the issue under [site]. *)

val guarded_load_attr :
  t -> attrib:Attribution.t -> addr:int -> now:int -> site:int -> unit
(** As {!guarded_load}; records the issue under [site]. *)

(** {2 Stall breakdown of the last attributed demand access}

    The profiler's top-down cycle accounting: after a call to
    {!demand_access_attr} returning stall [s], the four components below
    satisfy the conservation law

    {v last_tlb + last_l1 + last_l2 + last_mem = s v}

    - [tlb]: the DTLB miss penalty, when the translation missed;
    - [l1]: the machine's L1 hit-extra cycles on a ready L1 hit;
    - [l2]: the L1-miss (= L2 access) penalty paid by every L1 miss;
    - [mem]: DRAM latency on an L2 miss, or the residual wait on a fill
      that was still in flight (the data is on its way from below the
      level that hit, so residuals are accounted memory-bound).

    Only the [_attr] demand path maintains these fields; after a plain
    {!demand_access} they are stale. *)

val last_tlb_stall : t -> int
val last_l1_stall : t -> int
val last_l2_stall : t -> int
val last_mem_stall : t -> int
