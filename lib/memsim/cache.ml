type t = {
  params : Config.cache_params;
  sets : int;
  set_mask : int;
      (** [sets - 1] when [sets] is a power of two (every shipped machine
          config), letting {!set_of} replace the hardware-divide [mod] in
          the per-access path with a mask; [-1] selects the [mod]
          fallback *)
  assoc : int;
  line_shift : int;
  tags : int array;  (** [set * assoc + way]; -1 means invalid *)
  ready : int array;  (** cycle at which the line's fill completes *)
  stamp : int array;  (** LRU timestamps *)
  mutable tick : int;
  mutable memo_slot : int;
      (** the slot of the last {!find_slot} hit. Pure acceleration with no
          simulated effect: a lookup first checks whether this slot holds
          the wanted line — sound because a line maps to exactly one set,
          so [tags.(s) = line] at {e any} [s] proves [s] is the line's
          slot — and consecutive accesses overwhelmingly land on the same
          line, turning the per-way scan (16 ways in the AthlonMP L2)
          into one compare. Always in bounds; staleness is impossible
          because the check re-reads the live [tags] array. *)
}

type lookup = Hit | Hit_in_flight of int | Miss

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (params : Config.cache_params) =
  (match Config.validate_cache "cache" params with
  | Ok () -> ()
  | Error msg -> invalid_arg msg);
  let lines = params.size_bytes / params.line_bytes in
  let sets = lines / params.assoc in
  {
    params;
    sets;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else -1);
    assoc = params.assoc;
    line_shift = log2 params.line_bytes;
    tags = Array.make lines (-1);
    ready = Array.make lines 0;
    stamp = Array.make lines 0;
    tick = 0;
    memo_slot = 0;
  }

let params t = t.params
let line_of t addr = addr lsr t.line_shift

let[@inline] set_of t line =
  let mask = t.set_mask in
  if mask >= 0 then line land mask else line mod t.sets

(* Way lookup over the flattened tag array, returning the slot index or -1.
   A line occupies at most one way of its set ([fill] only installs a line
   it did not find), so scanning order does not change the answer; the
   common associativities (2/4/8) are unrolled into straight-line compares
   with no recursion and no [option] allocation. *)
let scan_ways tags line base last =
  let i = ref base in
  while !i <= last && Array.unsafe_get tags !i <> line do
    incr i
  done;
  if !i <= last then !i else -1

let[@inline never] find_slot_scan t line =
  let base = set_of t line * t.assoc in
  let tags = t.tags in
  let slot =
    match t.assoc with
  | 1 -> if Array.unsafe_get tags base = line then base else -1
  | 2 ->
      if Array.unsafe_get tags base = line then base
      else if Array.unsafe_get tags (base + 1) = line then base + 1
      else -1
  | 4 ->
      if Array.unsafe_get tags base = line then base
      else if Array.unsafe_get tags (base + 1) = line then base + 1
      else if Array.unsafe_get tags (base + 2) = line then base + 2
      else if Array.unsafe_get tags (base + 3) = line then base + 3
      else -1
    | 8 ->
        if Array.unsafe_get tags base = line then base
        else if Array.unsafe_get tags (base + 1) = line then base + 1
        else if Array.unsafe_get tags (base + 2) = line then base + 2
        else if Array.unsafe_get tags (base + 3) = line then base + 3
        else if Array.unsafe_get tags (base + 4) = line then base + 4
        else if Array.unsafe_get tags (base + 5) = line then base + 5
        else if Array.unsafe_get tags (base + 6) = line then base + 6
        else if Array.unsafe_get tags (base + 7) = line then base + 7
        else -1
    | a -> scan_ways tags line base (base + a - 1)
  in
  if slot >= 0 then t.memo_slot <- slot;
  slot

let[@inline] find_slot t line =
  let s = t.memo_slot in
  if Array.unsafe_get t.tags s = line then s else find_slot_scan t line

(* [slot] always comes from [find_slot]/[victim_slot], in range by
   construction. *)
let[@inline] touch t slot =
  t.tick <- t.tick + 1;
  Array.unsafe_set t.stamp slot t.tick

(* Allocation-free demand lookup: [miss] (< -1) on a miss, otherwise the
   residual fill time clamped to >= 0 (0 = hit-and-ready). *)
let miss = min_int

let[@inline] access_residual t ~addr ~now =
  let slot = find_slot t (addr lsr t.line_shift) in
  if slot < 0 then miss
  else begin
    touch t slot;
    let residual = Array.unsafe_get t.ready slot - now in
    if residual > 0 then residual else 0
  end

let access t ~addr ~now =
  let r = access_residual t ~addr ~now in
  if r = miss then Miss else if r > 0 then Hit_in_flight r else Hit

let probe t ~addr = find_slot t (line_of t addr) >= 0

let victim_slot t set =
  let base = set * t.assoc in
  let best = ref base in
  for way = 1 to t.assoc - 1 do
    let slot = base + way in
    if t.tags.(slot) = -1 && t.tags.(!best) <> -1 then best := slot
    else if t.tags.(slot) <> -1 && t.tags.(!best) <> -1
            && t.stamp.(slot) < t.stamp.(!best)
    then best := slot
  done;
  !best

let fill t ~addr ~ready_at =
  let line = line_of t addr in
  match find_slot t line with
  | -1 ->
      let slot = victim_slot t (set_of t line) in
      t.tags.(slot) <- line;
      t.ready.(slot) <- ready_at;
      touch t slot
  | slot ->
      if ready_at < t.ready.(slot) then t.ready.(slot) <- ready_at;
      touch t slot

let invalidate t ~addr =
  match find_slot t (line_of t addr) with
  | -1 -> ()
  | slot -> t.tags.(slot) <- -1

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ready 0 (Array.length t.ready) 0;
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  t.tick <- 0;
  t.memo_slot <- 0

let resident_lines t =
  Array.fold_left (fun acc tag -> if tag >= 0 then acc + 1 else acc) 0 t.tags
