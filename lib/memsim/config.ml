type cache_params = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  hit_extra : int;
  miss_penalty : int;
}

type tlb_params = { entries : int; page_bytes : int; tlb_miss_penalty : int }

type prefetch_target = To_l2 | To_l1

type hw_prefetch_model =
  | Hw_none
  | Hw_stream of { streams : int }
  | Hw_rpt of { table_size : int; degree : int; distance : int }

type machine = {
  name : string;
  l1 : cache_params;
  l2 : cache_params;
  dtlb : tlb_params;
  prefetch_target : prefetch_target;
  interp_cost : int;
  compiled_cost : int;
  prefetch_cost : int;
  guarded_load_cost : int;
  hw_prefetch : hw_prefetch_model;
}

(* Geometry from Table 2 of the paper; timing from DESIGN.md section 5.
   Associativities are the documented ones for the 2 GHz Pentium 4
   (4-way L1, 8-way L2) and the Athlon MP (2-way L1, 16-way L2).

   Miss penalties are EFFECTIVE stall costs, not raw latencies: the engine
   executes in order, so a raw 200-cycle DRAM latency would charge every
   miss in full, which an out-of-order core would partially overlap with
   independent work and other misses. The values below are the raw
   latencies divided by a memory-level-parallelism factor of about three,
   which puts the simulated baselines' stall fractions in a realistic
   range (DESIGN.md section 5). *)

let pentium4 =
  {
    name = "Pentium4";
    l1 =
      {
        size_bytes = 8 * 1024;
        line_bytes = 64;
        assoc = 4;
        hit_extra = 1;
        miss_penalty = 10;
      };
    l2 =
      {
        size_bytes = 256 * 1024;
        line_bytes = 128;
        assoc = 8;
        hit_extra = 0;
        miss_penalty = 60;
      };
    dtlb = { entries = 64; page_bytes = 4096; tlb_miss_penalty = 30 };
    prefetch_target = To_l2;
    interp_cost = 8;
    compiled_cost = 1;
    prefetch_cost = 1;
    guarded_load_cost = 3;
    hw_prefetch = Hw_stream { streams = 8 };
  }

let athlon_mp =
  {
    name = "AthlonMP";
    l1 =
      {
        size_bytes = 64 * 1024;
        line_bytes = 64;
        assoc = 2;
        hit_extra = 1;
        miss_penalty = 8;
      };
    l2 =
      {
        size_bytes = 256 * 1024;
        line_bytes = 64;
        assoc = 16;
        hit_extra = 0;
        miss_penalty = 45;
      };
    dtlb = { entries = 256; page_bytes = 4096; tlb_miss_penalty = 20 };
    prefetch_target = To_l1;
    interp_cost = 8;
    compiled_cost = 1;
    prefetch_cost = 1;
    guarded_load_cost = 3;
    hw_prefetch = Hw_stream { streams = 8 };
  }

let machines = [ pentium4; athlon_mp ]

let machine_of_name name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun m -> String.lowercase_ascii m.name = lower) machines

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let validate_cache label (c : cache_params) =
  if not (is_power_of_two c.line_bytes) then
    Error (label ^ ": line size must be a power of two")
  else if c.size_bytes <= 0 || c.size_bytes mod c.line_bytes <> 0 then
    Error (label ^ ": size must be a positive multiple of the line size")
  else if c.assoc <= 0 then Error (label ^ ": associativity must be positive")
  else if c.size_bytes / c.line_bytes mod c.assoc <> 0 then
    Error (label ^ ": associativity must divide the number of lines")
  else if c.miss_penalty < 0 || c.hit_extra < 0 then
    Error (label ^ ": penalties must be non-negative")
  else Ok ()

let validate_hw_prefetch = function
  | Hw_none -> Ok ()
  | Hw_stream { streams } ->
      if streams < 0 then Error "hw_prefetch: streams must be >= 0" else Ok ()
  | Hw_rpt { table_size; degree; distance } ->
      if not (is_power_of_two table_size) then
        Error "hw_prefetch: rpt table size must be a power of two"
      else if degree < 1 then Error "hw_prefetch: rpt degree must be >= 1"
      else if distance < 1 then Error "hw_prefetch: rpt distance must be >= 1"
      else Ok ()

let validate m =
  let ( let* ) = Result.bind in
  let* () = validate_cache "l1" m.l1 in
  let* () = validate_cache "l2" m.l2 in
  let* () = validate_hw_prefetch m.hw_prefetch in
  if not (is_power_of_two m.dtlb.page_bytes) then
    Error "dtlb: page size must be a power of two"
  else if m.dtlb.entries <= 0 then Error "dtlb: entries must be positive"
  else if
    m.interp_cost <= 0 || m.compiled_cost <= 0 || m.prefetch_cost <= 0
    || m.guarded_load_cost <= 0
  then Error "instruction costs must be positive"
  else Ok ()

(* Canonical spec string for a model, accepted back by
   [hw_prefetch_of_string]. Bench cell keys and reports embed it, so it
   must stay stable: "none", "stream:<streams>", "rpt:<table>x<degree>@
   <distance>". *)
let hw_prefetch_to_string = function
  | Hw_none -> "none"
  | Hw_stream { streams } -> Printf.sprintf "stream:%d" streams
  | Hw_rpt { table_size; degree; distance } ->
      Printf.sprintf "rpt:%dx%d@%d" table_size degree distance

let hw_prefetch_kind = function
  | Hw_none -> "none"
  | Hw_stream _ -> "stream"
  | Hw_rpt _ -> "rpt"

let default_stream = Hw_stream { streams = 8 }
let default_rpt = Hw_rpt { table_size = 64; degree = 2; distance = 4 }

let hw_prefetch_of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "invalid hw-prefetch spec %S (expected none | stream[:streams] | \
          rpt[:TABLExDEGREE@DISTANCE])"
         s)
  in
  let int_of str = int_of_string_opt (String.trim str) in
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "none" ] -> Ok Hw_none
  | [ "stream" ] -> Ok default_stream
  | [ "stream"; n ] -> (
      match int_of n with
      | Some streams when streams >= 0 -> Ok (Hw_stream { streams })
      | _ -> fail ())
  | [ "rpt" ] -> Ok default_rpt
  | [ "rpt"; params ] -> (
      match String.split_on_char 'x' params with
      | [ table; rest ] -> (
          match String.split_on_char '@' rest with
          | [ degree; distance ] -> (
              match (int_of table, int_of degree, int_of distance) with
              | Some table_size, Some degree, Some distance ->
                  let m = Hw_rpt { table_size; degree; distance } in
                  Result.map (fun () -> m) (validate_hw_prefetch m)
              | _ -> fail ())
          | _ -> fail ())
      | _ -> fail ())
  | _ -> fail ()

let pp_cache ppf (c : cache_params) =
  Format.fprintf ppf "%dKB/%dB-line/%d-way" (c.size_bytes / 1024) c.line_bytes
    c.assoc

let pp_machine ppf m =
  Format.fprintf ppf "%s: L1 %a, L2 %a, DTLB %d entries, prefetch->%s, hw=%s"
    m.name pp_cache m.l1 pp_cache m.l2 m.dtlb.entries
    (match m.prefetch_target with To_l2 -> "L2" | To_l1 -> "L1")
    (hw_prefetch_to_string m.hw_prefetch)
