(** The prefetch-site registry joining compile-time provenance (what the
    stride pass decided, and why) with execution identity (which compiled
    prefetch instruction issued) and the memory simulator's dense site
    ids.

    The interpreter calls [site_id] the first time each prefetch
    instruction fires; the pass calls [register] at plan time under the
    same structural key; the effectiveness report joins the two. The
    memory simulator itself only ever sees the dense int ids. *)

type kind = Inter | Deref | Intra | Phased | Spec

val kind_name : kind -> string

type key =
  | Inter_site of { method_id : int; site : int }
  | Dynamic_site of { method_id : int; site : int }
  | Spec_site of { method_id : int; site : int; reg : int }
  | Indirect_site of { method_id : int; reg : int; offset : int }

type meta = {
  method_name : string;
  loop_id : int;
  kind : kind;
  anchor_site : int;  (** the load site whose stride drives the prefetch *)
  target_site : int;  (** the demand site this prefetch is meant to cover *)
}

type t

val create : unit -> t
val n_sites : t -> int

val site_id : t -> key -> int
(** Allocate-or-reuse: dense ids in [0, n_sites). *)

val key_of_id : t -> int -> key
val register : t -> key -> meta -> unit
val meta_of_key : t -> key -> meta option
val meta_of_id : t -> int -> meta option

val demand_key : method_id:int -> site:int -> int
(** Packed (method, site) key for demand-miss buckets. *)

val demand_key_method : int -> int
val demand_key_site : int -> int
val pp_key : Format.formatter -> key -> unit
