(** The telemetry sink: a preallocated event ring plus the two clocks
    (host wall time and the simulated cycle counter).

    Everything that records telemetry takes a sink [option]: [None] is the
    zero-cost disabled state, [Some sink] records into the ring. Telemetry
    observes the simulation and never participates in it — the golden tests
    assert that threading a sink through a run leaves every simulated cycle
    and stats counter bit-identical. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 65536 events; the ring overwrites its oldest
    entries on wrap and counts them in [dropped]. *)

val set_cycle_source : t -> (unit -> int) -> unit
(** Install the reader of the simulated cycle counter; the harness does
    this once the interpreter exists. Before installation, cycles read
    as 0. *)

val now_us : t -> float
(** Host wall-clock microseconds since the sink was created. *)

val cycles : t -> int
(** Current simulated cycle count, via the installed source. *)

val add_span :
  t ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  name:string ->
  ts_us:float ->
  dur_us:float ->
  cycles_begin:int ->
  cycles_end:int ->
  unit ->
  unit

val span :
  t -> ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f ()] and records a span covering it on both
    clocks. The span is recorded whether [f] returns or raises. *)

val instant : t -> ?cat:string -> ?args:(string * Json.t) list -> string -> unit
val counter : t -> ?cat:string -> string -> (string * Json.t) list -> unit

val events : t -> Event.t list
(** Oldest-first snapshot of the retained window. *)

val total_events : t -> int
val dropped : t -> int
