(* The telemetry sink: a preallocated event ring plus the two clocks.

   Everything that records telemetry takes a sink *option*: [None] is the
   zero-cost disabled state (the instrumented code does not even compute
   its event arguments), [Some sink] records into the ring. The golden
   tests assert that threading a sink through a run leaves every simulated
   cycle and stats counter bit-identical — telemetry observes the
   simulation, never participates in it. *)

type t = {
  ring : Event.t Ring.t;
  t0 : float;  (** Unix.gettimeofday at creation; event ts are relative *)
  mutable cycle_source : unit -> int;
      (** reads the simulated cycle counter; installed by the harness once
          the interpreter exists *)
  mutable next_drop_mark : int;
      (** emit the next ["ring.dropped"] counter event once the drop
          count reaches this (doubles each time, so a wrapping ring costs
          O(log drops) self-reports instead of flooding itself) *)
}

let create ?(capacity = 65536) () =
  {
    ring = Ring.create ~capacity ~dummy:Event.dummy;
    t0 = Unix.gettimeofday ();
    cycle_source = (fun () -> 0);
    next_drop_mark = 1;
  }

let set_cycle_source t f = t.cycle_source <- f
let now_us t = (Unix.gettimeofday () -. t.t0) *. 1e6
let cycles t = t.cycle_source ()

(* Surface ring overwrites {e mid-run}: once the drop count crosses the
   next power-of-two mark, record a ["ring.dropped"] counter event so an
   exported trace shows when (on both clocks) the retained window
   started losing history — not just the final total. The mark is
   advanced before adding, so the self-report cannot recurse. *)
let note_drops t =
  let d = Ring.dropped t.ring in
  if d >= t.next_drop_mark then begin
    t.next_drop_mark <- (if d <= 0 then 1 else d * 2);
    let ts_us = now_us t in
    let c = t.cycle_source () in
    Ring.add t.ring
      {
        Event.name = "ring.dropped";
        cat = "telemetry";
        phase = Event.Counter;
        ts_us;
        dur_us = 0.0;
        cycles_begin = c;
        cycles_end = c;
        args =
          [ ("dropped", Json.Int d); ("total", Json.Int (Ring.total t.ring)) ];
      }
  end

let add_span t ?(cat = "") ?(args = []) ~name ~ts_us ~dur_us ~cycles_begin
    ~cycles_end () =
  Ring.add t.ring
    {
      Event.name;
      cat;
      phase = Event.Span;
      ts_us;
      dur_us;
      cycles_begin;
      cycles_end;
      args;
    };
  note_drops t

let span t ?cat ?args name f =
  let ts_us = now_us t in
  let cycles_begin = cycles t in
  let finish () =
    add_span t ?cat ?args ~name ~ts_us ~dur_us:(now_us t -. ts_us)
      ~cycles_begin ~cycles_end:(cycles t) ()
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let instant t ?(cat = "") ?(args = []) name =
  let ts_us = now_us t in
  let c = cycles t in
  Ring.add t.ring
    {
      Event.name;
      cat;
      phase = Event.Instant;
      ts_us;
      dur_us = 0.0;
      cycles_begin = c;
      cycles_end = c;
      args;
    };
  note_drops t

let counter t ?(cat = "") name args =
  let ts_us = now_us t in
  let c = cycles t in
  Ring.add t.ring
    {
      Event.name;
      cat;
      phase = Event.Counter;
      ts_us;
      dur_us = 0.0;
      cycles_begin = c;
      cycles_end = c;
      args;
    };
  note_drops t

let events t = Ring.to_list t.ring
let total_events t = Ring.total t.ring
let dropped t = Ring.dropped t.ring
