(* The telemetry sink: a preallocated event ring plus the two clocks.

   Everything that records telemetry takes a sink *option*: [None] is the
   zero-cost disabled state (the instrumented code does not even compute
   its event arguments), [Some sink] records into the ring. The golden
   tests assert that threading a sink through a run leaves every simulated
   cycle and stats counter bit-identical — telemetry observes the
   simulation, never participates in it. *)

type t = {
  ring : Event.t Ring.t;
  t0 : float;  (** Unix.gettimeofday at creation; event ts are relative *)
  mutable cycle_source : unit -> int;
      (** reads the simulated cycle counter; installed by the harness once
          the interpreter exists *)
}

let create ?(capacity = 65536) () =
  {
    ring = Ring.create ~capacity ~dummy:Event.dummy;
    t0 = Unix.gettimeofday ();
    cycle_source = (fun () -> 0);
  }

let set_cycle_source t f = t.cycle_source <- f
let now_us t = (Unix.gettimeofday () -. t.t0) *. 1e6
let cycles t = t.cycle_source ()

let add_span t ?(cat = "") ?(args = []) ~name ~ts_us ~dur_us ~cycles_begin
    ~cycles_end () =
  Ring.add t.ring
    {
      Event.name;
      cat;
      phase = Event.Span;
      ts_us;
      dur_us;
      cycles_begin;
      cycles_end;
      args;
    }

let span t ?cat ?args name f =
  let ts_us = now_us t in
  let cycles_begin = cycles t in
  let finish () =
    add_span t ?cat ?args ~name ~ts_us ~dur_us:(now_us t -. ts_us)
      ~cycles_begin ~cycles_end:(cycles t) ()
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let instant t ?(cat = "") ?(args = []) name =
  let ts_us = now_us t in
  let c = cycles t in
  Ring.add t.ring
    {
      Event.name;
      cat;
      phase = Event.Instant;
      ts_us;
      dur_us = 0.0;
      cycles_begin = c;
      cycles_end = c;
      args;
    }

let counter t ?(cat = "") name args =
  let ts_us = now_us t in
  let c = cycles t in
  Ring.add t.ring
    {
      Event.name;
      cat;
      phase = Event.Counter;
      ts_us;
      dur_us = 0.0;
      cycles_begin = c;
      cycles_end = c;
      args;
    }

let events t = Ring.to_list t.ring
let total_events t = Ring.total t.ring
let dropped t = Ring.dropped t.ring
