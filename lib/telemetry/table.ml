(* Deterministic fixed-width table rendering: widths are the max over
   header and cells per column, alignment is per column, the gap is two
   spaces. No Format boxes inside cells — cells are plain strings — so
   the output depends only on the input strings and the renderer can be
   golden- and determinism-tested byte-for-byte. *)

type align = Left | Right

type row = Cells of string array | Sep

type t = {
  headers : string array;
  aligns : align array;
  mutable rows : row list;  (** reversed *)
}

let make ~columns =
  let headers = Array.of_list (List.map fst columns) in
  let aligns = Array.of_list (List.map snd columns) in
  if Array.length headers = 0 then invalid_arg "Table.make: no columns";
  { headers; aligns; rows = [] }

let add_row t cells =
  let n = Array.length t.headers in
  let k = List.length cells in
  if k > n then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns" k n);
  let arr = Array.make n "" in
  List.iteri (fun i c -> arr.(i) <- c) cells;
  t.rows <- Cells arr :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let cell_int = string_of_int

let cell_pct f =
  (* A non-finite ratio has no percentage; render the no-basis marker
     instead of "nan%" / "inf%". *)
  if Float.is_nan f || Float.abs f = Float.infinity then "-"
  else Printf.sprintf "%.1f%%" (100.0 *. f)

let cell_ratio num den =
  if den <= 0 then "-"
  else
    let s = Printf.sprintf "%.1f%%" (100.0 *. float_of_int num /. float_of_int den) in
    (* Keep the boundary renderings exact: only a true 0/den may print
       0.0%, only a true den/den may print 100.0% — a 99.97% site must
       not round up to "complete". *)
    if s = "100.0%" && num < den then "99.9%"
    else if s = "0.0%" && num > 0 then "0.1%"
    else s

let widths t =
  let w = Array.map String.length t.headers in
  List.iter
    (function
      | Sep -> ()
      | Cells cells ->
          Array.iteri
            (fun i c -> if String.length c > w.(i) then w.(i) <- String.length c)
            cells)
    t.rows;
  w

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let pp ppf t =
  let w = widths t in
  let last = Array.length w - 1 in
  let line cells align_of =
    let buf = Buffer.create 80 in
    Array.iteri
      (fun i c ->
        (* Never pad the final column on the right: no trailing blanks. *)
        let s =
          if i = last && align_of i = Left then c else pad (align_of i) w.(i) c
        in
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf s)
      cells;
    Buffer.contents buf
  in
  let rule () =
    line (Array.map (fun n -> String.make n '-') w) (fun _ -> Left)
  in
  Format.pp_open_vbox ppf 0;
  Format.pp_print_string ppf (line t.headers (fun i -> t.aligns.(i)));
  Format.pp_print_cut ppf ();
  Format.pp_print_string ppf (rule ());
  List.iteri
    (fun i row ->
      Format.pp_print_cut ppf ();
      match row with
      | Sep -> Format.pp_print_string ppf (rule ())
      | Cells cells ->
          ignore i;
          Format.pp_print_string ppf (line cells (fun i -> t.aligns.(i))))
    (List.rev t.rows);
  Format.pp_close_box ppf ()

let to_string t = Format.asprintf "%a" pp t
