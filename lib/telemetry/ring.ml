(* Preallocated ring buffer. The backing array is allocated once at
   [create]; [add] is a store + two integer updates, so recording an
   event never allocates in the ring itself and never grows memory during
   a simulated run. When the buffer wraps, the oldest entries are
   overwritten and counted in [dropped]. *)

type 'a t = {
  buf : 'a array;
  capacity : int;
  mutable total : int;  (** entries ever added *)
}

let create ~capacity ~dummy =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  { buf = Array.make capacity dummy; capacity; total = 0 }

let capacity t = t.capacity
let total t = t.total
let length t = min t.total t.capacity
let dropped t = max 0 (t.total - t.capacity)

let add t x =
  t.buf.(t.total mod t.capacity) <- x;
  t.total <- t.total + 1

let clear t = t.total <- 0

(* Oldest-first snapshot of the retained window. *)
let to_list t =
  let len = length t in
  List.init len (fun i -> t.buf.((t.total - len + i) mod t.capacity))

let iter t f = List.iter f (to_list t)
