(** Plain-text table renderer shared by the reporting CLIs.

    One implementation of column sizing/alignment serves the
    effectiveness table ([spf_trace]), the profiler's top-down, object
    and loop tables ([spf_prof]) and the bench-gate comparison
    ([spf_bench]), so they all line up the same way and a formatting fix
    lands everywhere at once.

    Rendering is deterministic: column widths depend only on the cell
    strings, so identical inputs produce byte-identical output (the
    profiler's determinism tests rely on this). *)

type align = Left | Right

type t

val make : columns:(string * align) list -> t
(** A fresh table with the given header row; each column carries the
    alignment applied to its header and every cell. *)

val add_row : t -> string list -> unit
(** Append one row. Shorter rows are padded with empty cells; longer
    rows raise [Invalid_argument]. *)

val add_sep : t -> unit
(** Append a horizontal rule spanning all columns. *)

val cell_int : int -> string

val cell_pct : float -> string
(** [cell_pct 0.5] is ["50.0%"]; a NaN or infinite ratio renders as the
    no-basis marker ["-"] rather than ["nan%"]. *)

val cell_ratio : int -> int -> string
(** [cell_ratio num den] renders [num/den] as a percentage with the
    division guarded: a zero (or negative) denominator — a site that
    issued nothing, or one with no remaining target misses — renders as
    ["-"] instead of dividing by zero, and rounding never crosses the
    boundaries (only [0/den] prints ["0.0%"], only [den/den] prints
    ["100.0%"]). *)

val pp : Format.formatter -> t -> unit
(** Render with a two-space column gap and a rule under the header.
    Ends without a trailing newline (compose with [@,] / [@.]). *)

val to_string : t -> string
