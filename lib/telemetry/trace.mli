(** Exporters for the event ring: Chrome trace_event JSON (loadable in
    chrome://tracing or Perfetto) and a flat JSONL metrics stream. Both
    carry host wall time and the simulated cycle counter. *)

val event_json : Event.t -> Json.t
(** One trace_event object: name/cat/ph/ts (+dur for spans), pid/tid 1,
    cycles in [args]. *)

val chrome_json : ?other:(string * Json.t) list -> Sink.t -> Json.t
(** The full trace document: [traceEvents] plus an [otherData] section
    recording total and dropped event counts (and any [other] fields). *)

val write_chrome : ?other:(string * Json.t) list -> Sink.t -> path:string -> unit

val jsonl_line : ?extra:(string * Json.t) list -> Event.t -> string

val jsonl_summary : ?extra:(string * Json.t) list -> Sink.t -> string
(** The stream's trailing summary object (keyed ["summary"]): total and
    dropped event counts, so a consumer of a truncated retained window
    knows what it is missing. *)

val jsonl_lines : ?extra:(string * Json.t) list -> Sink.t -> string list
(** One JSON object per event, [extra] fields stamped on every line,
    ending with {!jsonl_summary}. *)

val write_jsonl : ?extra:(string * Json.t) list -> Sink.t -> path:string -> unit
