(* Exporters: Chrome trace_event JSON (load into chrome://tracing or
   Perfetto) and a flat JSONL metrics stream (one JSON object per line,
   friendly to jq / pandas). Both carry the two clocks: host wall time
   in [ts]/[dur] and the simulated cycle counter in [args]. *)

let event_json (e : Event.t) =
  let base =
    [
      ("name", Json.Str e.Event.name);
      ("cat", Json.Str (if e.cat = "" then "spf" else e.cat));
      ("ph", Json.Str (Event.phase_letter e.phase));
      ("ts", Json.Float e.ts_us);
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
    ]
  in
  let base =
    match e.phase with
    | Event.Span -> base @ [ ("dur", Json.Float e.dur_us) ]
    | Event.Instant -> base @ [ ("s", Json.Str "t") ]
    | Event.Counter -> base
  in
  let cycle_args =
    match e.phase with
    | Event.Span ->
        [
          ("cycles_begin", Json.Int e.cycles_begin);
          ("cycles_end", Json.Int e.cycles_end);
          ("cycles", Json.Int (e.cycles_end - e.cycles_begin));
        ]
    | Event.Instant | Event.Counter -> [ ("cycles", Json.Int e.cycles_begin) ]
  in
  (* Counter events render their sampled values directly as args so the
     trace viewer draws them as counter tracks; the cycle stamp rides
     along under a reserved name. *)
  let args =
    match e.phase with
    | Event.Counter -> e.args @ [ ("_cycles", Json.Int e.cycles_begin) ]
    | Event.Span | Event.Instant -> e.args @ cycle_args
  in
  Json.Obj (base @ [ ("args", Json.Obj args) ])

let chrome_json ?(other = []) sink =
  let events = List.map event_json (Sink.events sink) in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          ([
             ("exporter", Json.Str "spf_trace");
             ("total_events", Json.Int (Sink.total_events sink));
             ("dropped_events", Json.Int (Sink.dropped sink));
           ]
          @ other) );
    ]

let write_chrome ?other sink ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Json.to_buffer buf (chrome_json ?other sink);
      Buffer.add_char buf '\n';
      Buffer.output_buffer oc buf)

(* JSONL: one object per event, flat enough for line-oriented tools.
   [extra] fields (workload, machine, mode, ...) are stamped onto every
   line so concatenated files stay self-describing. *)

let jsonl_line ?(extra = []) (e : Event.t) =
  let fields =
    extra
    @ [
        ("name", Json.Str e.Event.name);
        ("cat", Json.Str (if e.cat = "" then "spf" else e.cat));
        ("phase", Json.Str (Event.phase_letter e.phase));
        ("ts_us", Json.Float e.ts_us);
        ("dur_us", Json.Float e.dur_us);
        ("cycles_begin", Json.Int e.cycles_begin);
        ("cycles_end", Json.Int e.cycles_end);
      ]
    @ (match e.args with [] -> [] | args -> [ ("args", Json.Obj args) ])
  in
  Json.to_string (Json.Obj fields)

(* The stream's last line is a summary object (distinguished by its
   ["summary"] key) carrying the ring accounting: a consumer of a
   truncated retained window can tell exactly how many events it is
   missing. *)
let jsonl_summary ?(extra = []) sink =
  Json.to_string
    (Json.Obj
       (extra
       @ [
           ( "summary",
             Json.Obj
               [
                 ("total_events", Json.Int (Sink.total_events sink));
                 ("dropped_events", Json.Int (Sink.dropped sink));
               ] );
         ]))

let jsonl_lines ?extra sink =
  List.map (jsonl_line ?extra) (Sink.events sink) @ [ jsonl_summary ?extra sink ]

let write_jsonl ?extra sink ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (jsonl_lines ?extra sink))
