(* One telemetry event. Spans carry both clocks: host wall time (what the
   Chrome trace renders on its timeline) and the simulated cycle counter
   (what the paper's evaluation is denominated in), so a pass's compile
   cost and the simulated time it bought can be read off the same
   record. *)

type phase =
  | Span  (** a closed interval: compile, pass, inspection, GC, ... *)
  | Instant  (** a point event: explain-record, plan emission, ... *)
  | Counter  (** a sampled set of named values *)

type t = {
  name : string;
  cat : string;  (** coarse grouping: "jit", "pass", "inspect", "gc", ... *)
  phase : phase;
  ts_us : float;  (** host wall-clock, microseconds since sink creation *)
  dur_us : float;  (** spans only; 0 otherwise *)
  cycles_begin : int;  (** simulated cycle counter when the event began *)
  cycles_end : int;  (** spans only; = [cycles_begin] otherwise *)
  args : (string * Json.t) list;
}

let dummy =
  {
    name = "";
    cat = "";
    phase = Instant;
    ts_us = 0.0;
    dur_us = 0.0;
    cycles_begin = 0;
    cycles_end = 0;
    args = [];
  }

let phase_letter = function Span -> "X" | Instant -> "i" | Counter -> "C"
