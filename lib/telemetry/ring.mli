(** A preallocated, overwrite-on-wrap ring buffer. The backing array is
    allocated once; [add] never allocates or grows memory, so the event
    stream imposes bounded overhead however long the run. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
val capacity : 'a t -> int
val add : 'a t -> 'a -> unit

val total : 'a t -> int
(** Entries ever added (including overwritten ones). *)

val length : 'a t -> int
(** Entries currently retained ([min total capacity]). *)

val dropped : 'a t -> int
(** Entries lost to wrap-around ([max 0 (total - capacity)]). *)

val to_list : 'a t -> 'a list
(** Oldest-first snapshot of the retained window. *)

val iter : 'a t -> ('a -> unit) -> unit
val clear : 'a t -> unit
