(* The prefetch-site registry: the join point between the three layers
   that each know one piece of a prefetch's identity.

   - The *pass* knows the provenance: which loop, which LDG node, which
     strategy (inter-iteration, dereferenced-object, intra-iteration,
     phased) produced a prefetch instruction, and which demand site it
     is meant to cover.
   - The *interpreter* knows the execution identity: which compiled
     instruction (method id + site / register / offset) actually issued
     a given prefetch.
   - The *memory simulator* knows only small dense integers.

   So: the interpreter resolves a structural [key] to a dense [site id]
   the first time each prefetch instruction fires (allocate-or-reuse);
   the pass [register]s a [meta] under the same structural key at
   compile time; and the effectiveness report joins the two through
   this table. Memsim's attribution tables speak only the dense ids and
   never depend on this module. *)

type kind = Inter | Deref | Intra | Phased | Spec

let kind_name = function
  | Inter -> "inter"
  | Deref -> "deref"
  | Intra -> "intra"
  | Phased -> "phased"
  | Spec -> "spec"

type key =
  | Inter_site of { method_id : int; site : int }
      (** a [Prefetch_inter] instruction at [site] *)
  | Dynamic_site of { method_id : int; site : int }
      (** a [Prefetch_dynamic] (phased) instruction at [site] *)
  | Spec_site of { method_id : int; site : int; reg : int }
      (** a [Spec_load] guarded load feeding indirect prefetches *)
  | Indirect_site of { method_id : int; reg : int; offset : int }
      (** a [Prefetch_indirect] off speculative register [reg] *)

type meta = {
  method_name : string;
  loop_id : int;
  kind : kind;
  anchor_site : int;  (** the load site whose stride drives the prefetch *)
  target_site : int;  (** the demand site this prefetch is meant to cover *)
}

type t = {
  ids : (key, int) Hashtbl.t;
  mutable by_key : key array;  (** dense id -> key; grows by doubling *)
  mutable n : int;
  metas : (key, meta) Hashtbl.t;
}

let create () =
  {
    ids = Hashtbl.create 64;
    by_key = Array.make 16 (Inter_site { method_id = 0; site = 0 });
    n = 0;
    metas = Hashtbl.create 64;
  }

let n_sites t = t.n

let site_id t key =
  match Hashtbl.find_opt t.ids key with
  | Some id -> id
  | None ->
      let id = t.n in
      if id >= Array.length t.by_key then begin
        let grown =
          Array.make (2 * Array.length t.by_key) t.by_key.(0)
        in
        Array.blit t.by_key 0 grown 0 t.n;
        t.by_key <- grown
      end;
      t.by_key.(id) <- key;
      t.n <- t.n + 1;
      Hashtbl.add t.ids key id;
      id

let key_of_id t id =
  if id < 0 || id >= t.n then invalid_arg "Attrib.key_of_id";
  t.by_key.(id)

let register t key meta = Hashtbl.replace t.metas key meta
let meta_of_key t key = Hashtbl.find_opt t.metas key
let meta_of_id t id = if id < 0 || id >= t.n then None else meta_of_key t (key_of_id t id)

(* Demand sites are attributed by a packed (method, site) key so the
   memsim-side demand-miss buckets stay plain ints too. Site numbers are
   bytecode offsets, well under 2^16 for any workload here. *)
let demand_key ~method_id ~site = (method_id lsl 16) lor (site land 0xffff)
let demand_key_method k = k lsr 16
let demand_key_site k = k land 0xffff

let pp_key ppf = function
  | Inter_site { method_id; site } ->
      Fmt.pf ppf "inter m%d@@%d" method_id site
  | Dynamic_site { method_id; site } ->
      Fmt.pf ppf "dynamic m%d@@%d" method_id site
  | Spec_site { method_id; site; reg } ->
      Fmt.pf ppf "spec m%d@@%d r%d" method_id site reg
  | Indirect_site { method_id; reg; offset } ->
      Fmt.pf ppf "indirect m%d r%d+%d" method_id reg offset
