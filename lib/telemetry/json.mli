(** Minimal JSON values for the telemetry pipeline: rendering for the
    Chrome-trace / JSONL exporters and a small parser for the
    well-formedness tests. No external JSON library is required. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val parse : string -> (t, string) result
(** Strict parser: the whole string must be one JSON value. [Error]
    carries a message with a byte offset. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to [k], if any. *)

val to_list_opt : t -> t list option
val to_string_opt : t -> string option
