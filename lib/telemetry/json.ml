(* Minimal JSON values: enough to serialize trace events and metrics, and
   to parse them back in tests (no external JSON dependency is available
   in the build environment). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* NaN / infinity are not valid JSON; clamp them. *)
      if Float.is_nan f then Buffer.add_string buf "0"
      else if f = infinity then Buffer.add_string buf "1e308"
      else if f = neg_infinity then Buffer.add_string buf "-1e308"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.9g" f)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser, used by the trace well-formedness tests. *)

exception Parse_error of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "%s at %d" m !pos))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail "expected '%c'" c
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "truncated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   (match int_of_string_opt ("0x" ^ hex) with
                   | Some code when code < 128 ->
                       Buffer.add_char buf (Char.chr code)
                   | Some _ -> Buffer.add_char buf '?'
                   | None -> fail "bad \\u escape");
                   pos := !pos + 5
               | c -> fail "bad escape '\\%c'" c);
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number '%s'" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := parse_value () :: !items;
                more ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          more ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ member () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := member () :: !items;
                more ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          more ();
          Obj (List.rev !items)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* Accessors used by tests and the effectiveness join. *)
let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
