(* The live collector: samples the run's existing telemetry surfaces at
   every window boundary of the simulated cycle clock and feeds the
   change detectors.

   Wiring (the harness does this): {!create} arms
   [Vm.Interp.set_monitor]; {!hooks} must be installed with
   [set_profile] (combined with the object profiler's hooks via
   [combine_profile_hooks] when both observers are on) so the stall-bin
   and allocation streams reach the per-window accumulators; telemetry
   must be enabled so attribution outcomes exist.

   Everything here observes and never participates: window closes read
   counters through the allocation-free [delta_into]/[totals_into]
   samplers and write only into the collector's own state, so a
   monitored run is bit-identical in every simulated observable to an
   unmonitored one. *)

module A = Memsim.Attribution

(* Default window size for the CLI / bench surfaces: long enough that
   the seed workloads close a few dozen windows, short enough that a
   phase shift lands within the gated four-window detection latency. *)
let default_window_cycles = 262144

type t = {
  cfg : Detect.config;
  window_cycles : int;
  interp : Vm.Interp.t;
  registry : Telemetry.Attrib.t option;
  sink : Telemetry.Sink.t option;
  (* cumulative snapshots at the last closed boundary *)
  prev_stats : Memsim.Stats.t;
  prev_attr : A.site_counters;
  cur_attr : A.site_counters;  (* scratch for totals_into *)
  prev_backedges : int array;
  prev_invocations : int array;
  prev_compiled : bool array;
  shares : float array;  (* scratch: per-method backedge shares *)
  (* intra-window accumulators, fed by the profile hooks *)
  mutable w_tlb : int;
  mutable w_l1 : int;
  mutable w_l2 : int;
  mutable w_mem : int;
  mutable w_retire : int;
  mutable w_alloc_cost : int;
  mutable w_pf : int;
  mutable w_guard : int;
  mutable w_gc_cycles : int;
  mutable w_gcs : int;
  mutable w_allocs : int;
  mutable w_alloc_bytes : int;
  mutable w_fresh : int;
  seen_sites : (int, unit) Hashtbl.t;
      (* (method, pc) alloc sites seen in any PRIOR window *)
  window_sites : (int, unit) Hashtbl.t;
      (* sites first seen in the current window: an allocation is
         "fresh" while its site is here rather than in [seen_sites], so
         a loop that starts allocating mid-run counts every allocation
         of its first window, not just the first one *)
  (* detectors *)
  ph : Detect.ph;
  stall_det : Detect.drift;
  loop_det : Detect.mix;
  churn_det : Detect.cusum;
  (* results *)
  mutable windows_rev : Window.t list;
  mutable n_windows : int;
  mutable first_degraded : int option;
  mutable degraded_rev : (int * Detect.reason) list;
  mutable site_snapshot : A.site_counters array option;
      (* per-site counters captured when the first Degraded fired *)
  mutable finalized : bool;
}

let copy_sc (src : A.site_counters) (dst : A.site_counters) =
  dst.A.issued <- src.A.issued;
  dst.A.cancelled <- src.A.cancelled;
  dst.A.redundant <- src.A.redundant;
  dst.A.redundant_hw <- src.A.redundant_hw;
  dst.A.useful <- src.A.useful;
  dst.A.late <- src.A.late;
  dst.A.useless <- src.A.useless

let sub_sc (a : A.site_counters) (b : A.site_counters) =
  {
    A.issued = a.A.issued - b.A.issued;
    cancelled = a.A.cancelled - b.A.cancelled;
    redundant = a.A.redundant - b.A.redundant;
    redundant_hw = a.A.redundant_hw - b.A.redundant_hw;
    useful = a.A.useful - b.A.useful;
    late = a.A.late - b.A.late;
    useless = a.A.useless - b.A.useless;
  }

(* ---- window close ---- *)

let assess t ~d_issued ~d_useful ~d_late ~d_useless ~total_be ~mbe =
  let cfg = t.cfg in
  let alarm = ref None in
  let drifting = ref false in
  let note_alarm r = if !alarm = None then alarm := Some r in
  (* useful rate: Page–Hinkley, decrease direction *)
  let classified = d_useful + d_late + d_useless in
  if classified >= cfg.Detect.min_classified then begin
    let rate = float_of_int d_useful /. float_of_int classified in
    let baseline = Detect.ph_mean t.ph in
    let acc = Detect.ph_update cfg t.ph rate in
    if acc > cfg.Detect.ph_lambda then begin
      note_alarm (Detect.Useful_rate_drop { rate; baseline });
      Detect.ph_reset t.ph
    end
    else if acc > 0.5 *. cfg.Detect.ph_lambda then drifting := true
  end;
  (* stall-bin mix: one-sided drift on the memory-bound share (tlb+mem)
     of stall cycles, sampled only while prefetching is active — it
     flags misses going outward under the prefetcher's feet, not benign
     phases that merely reshuffle l1/l2 or run without prefetch
     activity *)
  let stall = t.w_tlb + t.w_l1 + t.w_l2 + t.w_mem in
  if stall >= cfg.Detect.min_stall && d_issued >= cfg.Detect.min_issued
  then begin
    let share = float_of_int (t.w_tlb + t.w_mem) /. float_of_int stall in
    let baseline = Detect.drift_mean t.stall_det in
    let acc =
      Detect.drift_update ~slack:cfg.Detect.stall_slack
        ~cap:cfg.Detect.mix_cap ~warmup:cfg.Detect.warmup t.stall_det share
    in
    if acc > cfg.Detect.stall_h then begin
      note_alarm (Detect.Stall_mix_shift { share; baseline });
      Detect.drift_reset t.stall_det
    end
    else if acc > 0.5 *. cfg.Detect.stall_h then drifting := true
  end;
  (* per-loop backedge mix: never Degraded on its own — programs hand
     over between loops for benign reasons — a sustained shift surfaces
     as Drifting and re-baselines to the new mix *)
  if total_be >= cfg.Detect.min_backedges then begin
    let fb = float_of_int total_be in
    Array.iteri
      (fun i be -> t.shares.(i) <- float_of_int be /. fb)
      mbe;
    let acc =
      Detect.mix_update ~slack:cfg.Detect.loop_slack ~cap:cfg.Detect.mix_cap
        ~warmup:cfg.Detect.warmup t.loop_det t.shares
    in
    if acc > cfg.Detect.loop_h then begin
      drifting := true;
      Detect.mix_reset t.loop_det
    end
    else if acc > 0.5 *. cfg.Detect.loop_h then drifting := true
  end;
  (* alloc-site churn: unlike the rate and mix streams this needs no
     learned baseline — the normal fresh fraction IS zero (startup,
     where it isn't, is absorbed by the code-novelty resets) — so it
     scores from its first qualifying window *)
  if t.w_allocs >= cfg.Detect.min_allocs then begin
    let fraction = float_of_int t.w_fresh /. float_of_int t.w_allocs in
    let acc =
      Detect.cusum_update ~slack:cfg.Detect.churn_slack t.churn_det fraction
    in
    if acc > cfg.Detect.churn_h then begin
      note_alarm (Detect.Alloc_site_churn { fraction });
      Detect.cusum_reset t.churn_det
    end
    else if acc > 0.5 *. cfg.Detect.churn_h then drifting := true
  end;
  match !alarm with
  | Some r -> Detect.Degraded r
  | None -> if !drifting then Detect.Drifting else Detect.Healthy

let reset_detectors t =
  Detect.ph_reset t.ph;
  Detect.drift_reset t.stall_det;
  Detect.mix_reset t.loop_det;
  Detect.cusum_reset t.churn_det

let close_window t ~boundary ~partial =
  let stats = Vm.Interp.stats t.interp in
  let ds = Memsim.Stats.create () in
  Memsim.Stats.delta_into stats t.prev_stats ~into:ds;
  Memsim.Stats.copy_into stats ~into:t.prev_stats;
  let attr = Vm.Interp.attribution t.interp in
  (match attr with
  | Some a -> A.totals_into a ~into:t.cur_attr
  | None -> ());
  let d_issued = t.cur_attr.A.issued - t.prev_attr.A.issued in
  let d_cancelled = t.cur_attr.A.cancelled - t.prev_attr.A.cancelled in
  let d_redundant = t.cur_attr.A.redundant - t.prev_attr.A.redundant in
  let d_redundant_hw = t.cur_attr.A.redundant_hw - t.prev_attr.A.redundant_hw in
  let d_useful = t.cur_attr.A.useful - t.prev_attr.A.useful in
  let d_late = t.cur_attr.A.late - t.prev_attr.A.late in
  let d_useless = t.cur_attr.A.useless - t.prev_attr.A.useless in
  copy_sc t.cur_attr t.prev_attr;
  let methods = (Vm.Interp.program t.interp).Vm.Classfile.methods in
  let n_m = Array.length methods in
  let mbe = Array.make n_m 0 in
  let total_be = ref 0 and total_inv = ref 0 in
  (* Phase-awareness: the baselines are only meaningful while the code
     executing is the code they were learned against. Two kinds of code
     novelty invalidate them — the JIT swapping a compiled body in, and
     a method running for the very first time (the startup cascade:
     init loops hand over to hot loops that have never executed). Both
     are deterministic simulated-program state, so the re-baseline is
     bit-reproducible. *)
  let fresh_code = ref false in
  for i = 0 to n_m - 1 do
    let m = methods.(i) in
    let be = m.Vm.Classfile.backedges - t.prev_backedges.(i) in
    let inv = m.Vm.Classfile.invocations - t.prev_invocations.(i) in
    if
      (t.prev_invocations.(i) = 0 && m.Vm.Classfile.invocations > 0)
      || m.Vm.Classfile.compiled <> t.prev_compiled.(i)
    then fresh_code := true;
    t.prev_backedges.(i) <- m.Vm.Classfile.backedges;
    t.prev_invocations.(i) <- m.Vm.Classfile.invocations;
    t.prev_compiled.(i) <- m.Vm.Classfile.compiled;
    mbe.(i) <- be;
    total_be := !total_be + be;
    total_inv := !total_inv + inv
  done;
  let verdict =
    if partial then Detect.Healthy
    else if !fresh_code then begin
      (* code novelty this window: discard the baselines and skip
         scoring the transition window itself *)
      reset_detectors t;
      Detect.Healthy
    end
    else
      assess t ~d_issued ~d_useful ~d_late ~d_useless ~total_be:!total_be ~mbe
  in
  let index = t.n_windows in
  (match verdict with
  | Detect.Degraded reason ->
      t.degraded_rev <- (index, reason) :: t.degraded_rev;
      if t.first_degraded = None then begin
        t.first_degraded <- Some index;
        match attr with
        | Some a ->
            t.site_snapshot <-
              Some (Array.init (A.n_sites a) (fun i -> A.site_counters a i))
        | None -> ()
      end
  | _ -> ());
  let w =
    {
      Window.index;
      boundary;
      cycles_end = stats.Memsim.Stats.cycles;
      partial;
      stats = ds;
      issued = d_issued;
      cancelled = d_cancelled;
      redundant = d_redundant;
      redundant_hw = d_redundant_hw;
      useful = d_useful;
      late = d_late;
      useless = d_useless;
      tlb = t.w_tlb;
      l1 = t.w_l1;
      l2 = t.w_l2;
      mem = t.w_mem;
      retire = t.w_retire;
      pf_overhead = t.w_pf;
      guard_overhead = t.w_guard;
      alloc_cycles = t.w_alloc_cost;
      gc_cycles = t.w_gc_cycles;
      gcs = t.w_gcs;
      allocs = t.w_allocs;
      alloc_bytes = t.w_alloc_bytes;
      fresh_site_allocs = t.w_fresh;
      backedges = !total_be;
      invocations = !total_inv;
      method_backedges = mbe;
      out_bytes = Vm.Interp.output_bytes t.interp;
      verdict;
    }
  in
  t.windows_rev <- w :: t.windows_rev;
  t.n_windows <- index + 1;
  (* the window's new sites are no longer fresh *)
  Hashtbl.iter (fun k () -> Hashtbl.replace t.seen_sites k ()) t.window_sites;
  Hashtbl.reset t.window_sites;
  t.w_tlb <- 0;
  t.w_l1 <- 0;
  t.w_l2 <- 0;
  t.w_mem <- 0;
  t.w_retire <- 0;
  t.w_alloc_cost <- 0;
  t.w_pf <- 0;
  t.w_guard <- 0;
  t.w_gc_cycles <- 0;
  t.w_gcs <- 0;
  t.w_allocs <- 0;
  t.w_alloc_bytes <- 0;
  t.w_fresh <- 0;
  match t.sink with
  | None -> ()
  | Some s ->
      let open Telemetry.Json in
      Telemetry.Sink.counter s ~cat:"monitor" "monitor.window"
        [
          ("useful_rate", Float (Window.useful_rate w));
          ("issued", Int w.Window.issued);
          ("useful", Int w.Window.useful);
          ("useless", Int w.Window.useless);
          ("mem_stall", Int w.Window.mem);
          ("l2_stall", Int w.Window.l2);
          ("verdict", Int (Detect.verdict_code verdict));
        ]

let create ?(detect = Detect.default) ?registry ?sink ~window_cycles interp =
  let n_m = Array.length (Vm.Interp.program interp).Vm.Classfile.methods in
  let t =
    {
      cfg = detect;
      window_cycles;
      interp;
      registry;
      sink;
      prev_stats = Memsim.Stats.create ();
      prev_attr = A.zero_counters ();
      cur_attr = A.zero_counters ();
      prev_backedges = Array.make n_m 0;
      prev_invocations = Array.make n_m 0;
      prev_compiled = Array.make n_m false;
      shares = Array.make n_m 0.0;
      w_tlb = 0;
      w_l1 = 0;
      w_l2 = 0;
      w_mem = 0;
      w_retire = 0;
      w_alloc_cost = 0;
      w_pf = 0;
      w_guard = 0;
      w_gc_cycles = 0;
      w_gcs = 0;
      w_allocs = 0;
      w_alloc_bytes = 0;
      w_fresh = 0;
      seen_sites = Hashtbl.create 64;
      window_sites = Hashtbl.create 16;
      ph = Detect.ph_create ();
      stall_det = Detect.drift_create ();
      loop_det = Detect.mix_create n_m;
      churn_det = Detect.cusum_create ();
      windows_rev = [];
      n_windows = 0;
      first_degraded = None;
      degraded_rev = [];
      site_snapshot = None;
      finalized = false;
    }
  in
  (* seed the snapshots with whatever already happened before arming *)
  Memsim.Stats.copy_into (Vm.Interp.stats interp) ~into:t.prev_stats;
  (match Vm.Interp.attribution interp with
  | Some a ->
      A.totals_into a ~into:t.prev_attr;
      copy_sc t.prev_attr t.cur_attr
  | None -> ());
  let methods = (Vm.Interp.program interp).Vm.Classfile.methods in
  Array.iteri
    (fun i m ->
      t.prev_backedges.(i) <- m.Vm.Classfile.backedges;
      t.prev_invocations.(i) <- m.Vm.Classfile.invocations;
      t.prev_compiled.(i) <- m.Vm.Classfile.compiled)
    methods;
  Vm.Interp.set_monitor interp ~window_cycles ~on_window:(fun ~boundary ->
      close_window t ~boundary ~partial:false);
  t

let hooks t : Vm.Interp.profile_hooks =
  {
    Vm.Interp.on_cycles =
      (fun ~method_id:_ ~pc:_ ~bin ~cycles ->
        match bin with
        | Vm.Interp.Prof_retire -> t.w_retire <- t.w_retire + cycles
        | Vm.Interp.Prof_alloc -> t.w_alloc_cost <- t.w_alloc_cost + cycles
        | Vm.Interp.Prof_pf_overhead -> t.w_pf <- t.w_pf + cycles
        | Vm.Interp.Prof_guard_overhead -> t.w_guard <- t.w_guard + cycles);
    on_stall =
      (fun ~method_id:_ ~pc:_ ~obj:_ ~tlb ~l1 ~l2 ~mem ->
        t.w_tlb <- t.w_tlb + tlb;
        t.w_l1 <- t.w_l1 + l1;
        t.w_l2 <- t.w_l2 + l2;
        t.w_mem <- t.w_mem + mem);
    on_alloc =
      (fun ~obj:_ ~method_id ~pc ~bytes ->
        t.w_allocs <- t.w_allocs + 1;
        t.w_alloc_bytes <- t.w_alloc_bytes + bytes;
        let key = (method_id lsl 24) lor (pc land 0xffffff) in
        if not (Hashtbl.mem t.seen_sites key) then begin
          t.w_fresh <- t.w_fresh + 1;
          if not (Hashtbl.mem t.window_sites key) then
            Hashtbl.add t.window_sites key ()
        end);
    on_gc =
      (fun ~cycles ->
        t.w_gcs <- t.w_gcs + 1;
        t.w_gc_cycles <- t.w_gc_cycles + cycles);
  }

let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    (* close the end-of-run tail window so the per-window stats deltas
       sum exactly to the run totals (fuzz-checked); detectors do not
       score it *)
    close_window t ~boundary:(Vm.Interp.stats t.interp).Memsim.Stats.cycles
      ~partial:true
  end

let n_windows t = t.n_windows
let first_degraded t = t.first_degraded
let windows t = Array.of_list (List.rev t.windows_rev)

let site_label t i =
  match t.registry with
  | None -> Printf.sprintf "site %d" i
  | Some reg -> (
      match Telemetry.Attrib.meta_of_id reg i with
      | Some m ->
          Printf.sprintf "%s loop%d %s" m.Telemetry.Attrib.method_name
            m.Telemetry.Attrib.loop_id
            (Telemetry.Attrib.kind_name m.Telemetry.Attrib.kind)
      | None -> Printf.sprintf "site %d" i)

let report t =
  if not t.finalized then finalize t;
  let methods = (Vm.Interp.program t.interp).Vm.Classfile.methods in
  let method_names =
    Array.map (fun m -> m.Vm.Classfile.method_name) methods
  in
  let sites =
    match Vm.Interp.attribution t.interp with
    | None -> []
    | Some a ->
        List.init (A.n_sites a) (fun i ->
            let total = A.site_counters a i in
            let post =
              match t.site_snapshot with
              | Some snap when i < Array.length snap ->
                  Some (sub_sc total snap.(i))
              | _ -> None
            in
            {
              Report.site_label = site_label t i;
              site_total = total;
              site_post = post;
            })
  in
  let dropped =
    match t.sink with Some s -> Telemetry.Sink.dropped s | None -> 0
  in
  Report.make ~window_cycles:t.window_cycles ~windows:(windows t)
    ~first_degraded:t.first_degraded
    ~degraded:(List.rev t.degraded_rev)
    ~method_names ~sites
    ~total_cycles:(Vm.Interp.stats t.interp).Memsim.Stats.cycles
    ~dropped_events:dropped
