(* The monitoring run's end product: the closed windows, the verdict
   timeline, and the joined per-loop / per-site context — plus the three
   renderings (terminal dashboard, JSONL time series, latency analysis).
   Built by {!Collector.report}; everything here is pure presentation
   over already-collected data. *)

type site_row = {
  site_label : string;
  site_total : Memsim.Attribution.site_counters;  (** whole-run counters *)
  site_post : Memsim.Attribution.site_counters option;
      (** counters accumulated {e since the first Degraded window} —
          present only when the run degraded; the pre/post contrast is
          the "top degrading sites" signal *)
}

type t = {
  window_cycles : int;
  windows : Window.t array;  (** oldest first; last may be partial *)
  first_degraded : int option;  (** window index *)
  degraded : (int * Detect.reason) list;  (** all Degraded windows, oldest first *)
  method_names : string array;  (** indexed by method id *)
  sites : site_row list;
  total_cycles : int;
  dropped_events : int;  (** telemetry ring drops, 0 when no sink *)
}

let make ~window_cycles ~windows ~first_degraded ~degraded ~method_names
    ~sites ~total_cycles ~dropped_events =
  {
    window_cycles;
    windows;
    first_degraded;
    degraded;
    method_names;
    sites;
    total_cycles;
    dropped_events;
  }

(* ---- detection latency ---- *)

(* The phase workloads print a marker value at the moment of the planted
   shift; [marker_offset] is that marker's byte offset in the final
   program output. The shift window is the first window whose cumulative
   [out_bytes] has passed the marker — i.e. the window during which the
   marker was printed. *)
let window_of_out_offset t offset =
  let n = Array.length t.windows in
  let rec find i =
    if i >= n then None
    else if t.windows.(i).Window.out_bytes > offset then Some i
    else find (i + 1)
  in
  find 0

type latency =
  | No_shift  (** the marker offset lies past every window *)
  | Undetected of int  (** shift located at this window, never flagged *)
  | Detected of { shift : int; degraded : int; latency : int }

let detection_latency t ~marker_offset =
  match window_of_out_offset t marker_offset with
  | None -> No_shift
  | Some shift -> (
      let hit =
        List.find_opt (fun (w, _) -> w >= shift) t.degraded
      in
      match hit with
      | None -> Undetected shift
      | Some (degraded, _) ->
          Detected { shift; degraded; latency = degraded - shift })

(* ---- sparklines ---- *)

let spark_glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]
(* U+2581..U+2588, the eight block elements *)

(* Render [f] over the windows as a sparkline of at most [width] glyphs,
   bucket-averaging when there are more windows than columns. Scaled to
   the series' own min/max (a flat series renders as all-low). *)
let sparkline ?(width = 60) t f =
  let n = Array.length t.windows in
  if n = 0 then ""
  else begin
    let cols = min width n in
    let vals =
      Array.init cols (fun c ->
          let lo = c * n / cols and hi = ((c + 1) * n / cols) - 1 in
          let hi = max lo hi in
          let sum = ref 0.0 in
          for i = lo to hi do
            sum := !sum +. f t.windows.(i)
          done;
          !sum /. float_of_int (hi - lo + 1))
    in
    let mn = Array.fold_left min vals.(0) vals in
    let mx = Array.fold_left max vals.(0) vals in
    let span = mx -. mn in
    let buf = Buffer.create (cols * 3) in
    Array.iter
      (fun v ->
        let i =
          if span <= 0.0 then 0
          else
            let x = (v -. mn) /. span *. 7.0 in
            min 7 (max 0 (int_of_float (Float.round x)))
        in
        Buffer.add_string buf spark_glyphs.(i))
      vals;
    Buffer.contents buf
  end

let verdict_strip ?(width = 60) t =
  let n = Array.length t.windows in
  if n = 0 then ""
  else begin
    let cols = min width n in
    let buf = Buffer.create cols in
    for c = 0 to cols - 1 do
      let lo = c * n / cols and hi = max (c * n / cols) (((c + 1) * n / cols) - 1) in
      let worst = ref 0 in
      for i = lo to hi do
        worst :=
          max !worst (Detect.verdict_code t.windows.(i).Window.verdict)
      done;
      Buffer.add_char buf
        (match !worst with 0 -> '.' | 1 -> '~' | _ -> 'D')
    done;
    Buffer.contents buf
  end

(* ---- dashboard ---- *)

let mean_over t f =
  let n = Array.length t.windows in
  if n = 0 then 0.0
  else Array.fold_left (fun a w -> a +. f w) 0.0 t.windows /. float_of_int n

(* Loop rows for the "top degrading loops" table: backedge share of each
   method before vs after the first Degraded window (whole run vs itself
   when the run never degraded, which renders as a flat share). *)
let loop_rows t =
  let n_m = Array.length t.method_names in
  let early = Array.make n_m 0 and late_ = Array.make n_m 0 in
  let split = match t.first_degraded with Some w -> w | None -> Array.length t.windows in
  Array.iteri
    (fun i w ->
      let dst = if i < split then early else late_ in
      Array.iteri
        (fun m be -> if m < n_m then dst.(m) <- dst.(m) + be)
        w.Window.method_backedges)
    t.windows;
  let tot_e = Array.fold_left ( + ) 0 early
  and tot_l = Array.fold_left ( + ) 0 late_ in
  let share tot a m = if tot = 0 then 0.0 else float_of_int a.(m) /. float_of_int tot in
  let rows =
    List.init n_m (fun m ->
        ( t.method_names.(m),
          share tot_e early m,
          share tot_l late_ m,
          early.(m) + late_.(m) ))
  in
  let rows = List.filter (fun (_, _, _, be) -> be > 0) rows in
  List.sort
    (fun (_, e1, l1, _) (_, e2, l2, _) ->
      compare (Float.abs (l2 -. e2)) (Float.abs (l1 -. e1)))
    rows

let site_rows t =
  let open Memsim.Attribution in
  let rate (c : site_counters) =
    let cl = c.useful + c.late + c.useless in
    if cl = 0 then 0.0 else float_of_int c.useful /. float_of_int cl
  in
  let degradation r =
    match r.site_post with
    | Some post -> rate r.site_total -. rate post
    | None -> 0.0
  in
  let rows = List.filter (fun r -> r.site_total.issued > 0) t.sites in
  ( List.sort (fun a b -> compare (degradation b) (degradation a)) rows,
    rate,
    degradation )

let pp_dashboard ?(top = 5) ppf t =
  let open Format in
  let n = Array.length t.windows in
  fprintf ppf "monitor: %d windows x %d cycles (%d total cycles)@."
    n t.window_cycles t.total_cycles;
  if t.dropped_events > 0 then
    fprintf ppf "telemetry: %d ring events dropped@." t.dropped_events;
  if n = 0 then fprintf ppf "(no windows closed)@."
  else begin
    let line label spark last mean =
      fprintf ppf "  %-12s %s  last %s  mean %s@." label spark last mean
    in
    line "useful-rate"
      (sparkline t Window.useful_rate)
      (sprintf "%.2f" (Window.useful_rate t.windows.(n - 1)))
      (sprintf "%.2f" (mean_over t Window.useful_rate));
    line "issued"
      (sparkline t (fun w -> float_of_int w.Window.issued))
      (sprintf "%d" t.windows.(n - 1).Window.issued)
      (sprintf "%.0f" (mean_over t (fun w -> float_of_int w.Window.issued)));
    line "mem-stall"
      (sparkline t (fun w -> float_of_int w.Window.mem))
      (sprintf "%d" t.windows.(n - 1).Window.mem)
      (sprintf "%.0f" (mean_over t (fun w -> float_of_int w.Window.mem)));
    line "allocs"
      (sparkline t (fun w -> float_of_int w.Window.allocs))
      (sprintf "%d" t.windows.(n - 1).Window.allocs)
      (sprintf "%.0f" (mean_over t (fun w -> float_of_int w.Window.allocs)));
    fprintf ppf "  %-12s %s@." "verdicts" (verdict_strip t);
    (match t.first_degraded with
    | Some w ->
        fprintf ppf "  first degraded: window %d at cycle %d@." w
          t.windows.(w).Window.cycles_end
    | None -> fprintf ppf "  no degradation detected@.");
    List.iteri
      (fun i (w, reason) ->
        if i < top then
          fprintf ppf "    w%-4d degraded  %s: %s@." w
            (Detect.reason_name reason)
            (Detect.describe_reason reason))
      t.degraded;
    let loops = loop_rows t in
    if loops <> [] then begin
      fprintf ppf "top loops (backedge share early -> late):@.";
      List.iteri
        (fun i (name, e, l, be) ->
          if i < top then
            fprintf ppf "  %-28s %.2f -> %.2f  (%d backedges)@." name e l be)
        loops
    end;
    let sites, rate, degradation = site_rows t in
    if sites <> [] then begin
      fprintf ppf "top sites:@.";
      List.iteri
        (fun i r ->
          if i < top then begin
            let c = r.site_total in
            fprintf ppf "  %-36s issued %-6d useful %5.1f%%" r.site_label
              c.Memsim.Attribution.issued
              (100.0 *. rate c);
            (match r.site_post with
            | Some post when post.Memsim.Attribution.issued > 0 ->
                fprintf ppf "  (post-shift %5.1f%%, drop %.1f)"
                  (100.0 *. rate post)
                  (100.0 *. degradation r)
            | _ -> ());
            fprintf ppf "@."
          end)
        sites
    end
  end

(* ---- JSONL time-series export ---- *)

let window_json (w : Window.t) =
  let open Telemetry.Json in
  let reason =
    match w.verdict with
    | Detect.Degraded r ->
        Obj
          [
            ("kind", Str (Detect.reason_name r));
            ("detail", Str (Detect.describe_reason r));
          ]
    | _ -> Null
  in
  Obj
    [
      ("window", Int w.index);
      ("boundary", Int w.boundary);
      ("cycles_end", Int w.cycles_end);
      ("cycles", Int (Window.cycles w));
      ("partial", Bool w.partial);
      ("issued", Int w.issued);
      ("cancelled", Int w.cancelled);
      ("redundant", Int w.redundant);
      ("redundant_hw", Int w.redundant_hw);
      ("useful", Int w.useful);
      ("late", Int w.late);
      ("useless", Int w.useless);
      ("useful_rate", Float (Window.useful_rate w));
      ( "stall",
        Obj
          [
            ("tlb", Int w.tlb);
            ("l1", Int w.l1);
            ("l2", Int w.l2);
            ("mem", Int w.mem);
          ] );
      ( "overhead",
        Obj
          [ ("pf", Int w.pf_overhead); ("guard", Int w.guard_overhead) ] );
      ("retire", Int w.retire);
      ( "alloc",
        Obj
          [
            ("count", Int w.allocs);
            ("bytes", Int w.alloc_bytes);
            ("fresh_sites", Int w.fresh_site_allocs);
            ("cycles", Int w.alloc_cycles);
          ] );
      ("gc", Obj [ ("count", Int w.gcs); ("cycles", Int w.gc_cycles) ]);
      ("backedges", Int w.backedges);
      ("invocations", Int w.invocations);
      ("out_bytes", Int w.out_bytes);
      ("verdict", Str (Detect.verdict_name w.verdict));
      ("reason", reason);
    ]

let jsonl_lines t =
  let open Telemetry.Json in
  let per_window =
    Array.to_list (Array.map (fun w -> to_string (window_json w)) t.windows)
  in
  let summary =
    Obj
      [
        ( "summary",
          Obj
            [
              ("windows", Int (Array.length t.windows));
              ("window_cycles", Int t.window_cycles);
              ("total_cycles", Int t.total_cycles);
              ( "first_degraded",
                match t.first_degraded with Some w -> Int w | None -> Null );
              ("degraded_windows", Int (List.length t.degraded));
              ("dropped_events", Int t.dropped_events);
            ] );
      ]
  in
  per_window @ [ to_string summary ]

let write_jsonl t oc =
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (jsonl_lines t)
