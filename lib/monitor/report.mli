(** The monitoring run's end product: windows, verdict timeline, joined
    per-loop / per-site context, and the three renderings — terminal
    dashboard (sparklines, verdict strip, top degrading loops/sites),
    JSONL time series, and detection-latency analysis. Pure presentation
    over data collected by {!Collector}. *)

type site_row = {
  site_label : string;
  site_total : Memsim.Attribution.site_counters;  (** whole-run counters *)
  site_post : Memsim.Attribution.site_counters option;
      (** accumulated since the first Degraded window, when one fired *)
}

type t = {
  window_cycles : int;
  windows : Window.t array;  (** oldest first; last may be partial *)
  first_degraded : int option;  (** window index *)
  degraded : (int * Detect.reason) list;  (** oldest first *)
  method_names : string array;  (** indexed by method id *)
  sites : site_row list;
  total_cycles : int;
  dropped_events : int;  (** telemetry ring drops, 0 when no sink *)
}

val make :
  window_cycles:int ->
  windows:Window.t array ->
  first_degraded:int option ->
  degraded:(int * Detect.reason) list ->
  method_names:string array ->
  sites:site_row list ->
  total_cycles:int ->
  dropped_events:int ->
  t

(** {2 Detection latency} *)

val window_of_out_offset : t -> int -> int option
(** The window during which the program-output byte at this offset was
    printed (first window whose cumulative [out_bytes] passes it). *)

type latency =
  | No_shift  (** the marker offset lies past every window *)
  | Undetected of int  (** shift located at this window, never flagged *)
  | Detected of { shift : int; degraded : int; latency : int }
      (** first Degraded at or after the shift window; [latency] in
          windows *)

val detection_latency : t -> marker_offset:int -> latency
(** Locate the planted phase shift by the byte offset of its printed
    marker and measure how many windows the detectors took to flag it. *)

(** {2 Renderings} *)

val sparkline : ?width:int -> t -> (Window.t -> float) -> string
(** Unicode block-element sparkline of a per-window metric,
    bucket-averaged to at most [width] (default 60) glyphs. *)

val verdict_strip : ?width:int -> t -> string
(** One character per column: ['.'] healthy, ['~'] drifting, ['D']
    degraded (worst verdict in the column's bucket). *)

val loop_rows : t -> (string * float * float * int) list
(** [(method, early share, late share, backedges)] rows for the top
    degrading loops table, sorted by share movement across the first
    Degraded window. *)

val pp_dashboard : ?top:int -> Format.formatter -> t -> unit

val window_json : Window.t -> Telemetry.Json.t
val jsonl_lines : t -> string list
(** One JSON object per window plus a final summary line. *)

val write_jsonl : t -> out_channel -> unit
