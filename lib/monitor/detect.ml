(* Deterministic online change detectors over the windowed metric
   streams.

   Two classic sequential tests, both in their incremental zero-floored
   form so the state is two floats and an integer:

   - Page–Hinkley (decrease direction) on the per-window useful rate:
     PH_t = max(0, PH_{t-1} + (mean_t - x_t - delta)). The running mean
     is the learned baseline; a sustained drop accumulates roughly
     (baseline - rate - delta) per window, so a hard phase shift from a
     ~0.9 useful rate to ~0 crosses lambda in about
     lambda / (0.9 - delta) windows.

   - CUSUM on distribution divergence (stall-bin mix, per-loop backedge
     mix, alloc-site churn): S_t = max(0, S_{t-1} + (d_t - slack)) where
     d_t is the total-variation distance between the window's mix and
     the running mean mix (or, for churn, the fraction of allocations at
     never-before-seen sites). Alarm when S_t > h.

   Both detectors are warmed up on the first [warmup] qualifying samples
   (the accumulator stays floored at zero while the baseline learns) and
   gated on minimum per-window volume by the caller, so sparse windows
   contribute nothing. Everything here is straight-line float arithmetic
   over a deterministic input series: reruns — including runs spread
   across Domains — produce identical verdict timelines. *)

type config = {
  warmup : int;  (** qualifying samples before an accumulator may grow *)
  min_classified : int;
      (** attribution outcomes a window needs before its useful rate is a
          sample (volume gate for the Page–Hinkley stream) *)
  min_stall : int;  (** stall cycles a window needs to be a mix sample *)
  min_issued : int;
      (** prefetches a window must issue before its stall mix is a
          sample — the monitor flags {e prefetch} degradation, and
          phases that run without prefetch activity (an allocation
          epilogue, a checksum pass) reshape the stall mix for benign
          reasons *)
  min_backedges : int;
  min_allocs : int;
  ph_delta : float;  (** Page–Hinkley slack (tolerated drop per window) *)
  ph_lambda : float;  (** Page–Hinkley alarm threshold *)
  stall_slack : float;  (** CUSUM slack on stall-mix divergence *)
  stall_h : float;  (** stall-mix alarm threshold *)
  loop_slack : float;  (** CUSUM slack on loop-mix divergence *)
  loop_h : float;  (** loop-mix re-baseline threshold (Drifting only) *)
  mix_cap : float;
      (** per-window cap on a mix CUSUM increment: one outlier window —
          however divergent — cannot alarm on its own, divergence must
          be sustained *)
  churn_slack : float;
  churn_h : float;
}

(* Defaults tuned on the seed suite: all 24 stationary (workload x
   machine) runs stay free of Degraded verdicts at the default window,
   while the planted shift of the phase workloads alarms within the
   gated four windows on both machines (test/test_monitor.ml pins
   both). The load-bearing measurements:

   - Prefetch degradation pushes stalls OUTWARD: the planted shifts
     raise the memory-bound share (tlb+mem) of stall cycles by
     0.15–0.25 per window, sustained. Benign phase changes mostly
     reshuffle l1/l2 (RayTracer's startup oscillation, jess's periodic
     match bursts move the mix by up to 0.3 total variation but swing
     the memory-bound share both ways around a stable mean), which is
     why the Degraded-capable stall detector is a one-sided drift test
     on that share rather than a CUSUM on full-mix divergence.
   - Phases that run without prefetch activity reshape stalls for
     benign reasons — MonteCarlo's simulate->aggregate handover (+0.12
     divergence for the rest of the run, issued = 0), db's end-of-run
     epilogue (~0.6 for three windows, issued = 0) — so stall samples
     are gated on [min_issued].
   - db's second pass genuinely erodes the useful rate from 0.97 to
     0.78 over its last ~23 windows; [ph_delta]/[ph_lambda] leave that
     below alarm (peak accumulation ~0.9) while the planted cliffs
     (1.0 -> 0.06) cross within three scored windows. *)
let default =
  {
    warmup = 4;
    min_classified = 24;
    min_stall = 2048;
    min_issued = 64;
    min_backedges = 256;
    min_allocs = 48;
    ph_delta = 0.15;
    ph_lambda = 1.8;
    stall_slack = 0.1;
    stall_h = 0.3;
    loop_slack = 0.22;
    loop_h = 1.1;
    mix_cap = 0.25;
    churn_slack = 0.3;
    (* a single window whose allocations are ~all at freshly-appeared
       sites (fraction ~1.0) must alarm on its own: 1.0 - slack > h *)
    churn_h = 0.55;
  }

(* ---- Page–Hinkley (decrease) ---- *)

type ph = {
  mutable ph_n : int;
  mutable ph_mean : float;
  mutable ph_acc : float;
}

let ph_create () = { ph_n = 0; ph_mean = 0.0; ph_acc = 0.0 }

let ph_reset p =
  p.ph_n <- 0;
  p.ph_mean <- 0.0;
  p.ph_acc <- 0.0

(* Feed one qualifying sample; returns the accumulator after the update.
   The baseline mean is updated {e after} the deviation is scored, so a
   falling series cannot drag its own baseline down fast enough to hide. *)
let ph_update cfg p x =
  if p.ph_n >= cfg.warmup then
    p.ph_acc <- Float.max 0.0 (p.ph_acc +. (p.ph_mean -. x -. cfg.ph_delta));
  p.ph_n <- p.ph_n + 1;
  p.ph_mean <- p.ph_mean +. ((x -. p.ph_mean) /. float_of_int p.ph_n);
  p.ph_acc

let ph_mean p = p.ph_mean
let ph_value p = p.ph_acc

(* ---- CUSUM over a mix (probability vector) ---- *)

type mix = {
  mix_means : float array;
  mutable mix_n : int;
  mutable mix_acc : float;
  mutable mix_last : float;  (** divergence of the most recent sample *)
}

let mix_create k =
  { mix_means = Array.make k 0.0; mix_n = 0; mix_acc = 0.0; mix_last = 0.0 }

let mix_reset m =
  Array.fill m.mix_means 0 (Array.length m.mix_means) 0.0;
  m.mix_n <- 0;
  m.mix_acc <- 0.0;
  m.mix_last <- 0.0

(* [p] must be a probability vector of the same arity as [mix_create]'s
   [k]. Total-variation distance against the running mean mix, scored
   before the sample is folded into the mean. The first [warmup]
   qualifying samples only teach the baseline (startup transitions —
   allocation loops giving way to the steady state, the JIT swapping
   bodies in — must not alarm). *)
let mix_update ~slack ~cap ~warmup m (p : float array) =
  let k = Array.length m.mix_means in
  let d = ref 0.0 in
  for i = 0 to k - 1 do
    d := !d +. Float.abs (p.(i) -. m.mix_means.(i))
  done;
  let d = 0.5 *. !d in
  m.mix_last <- d;
  if m.mix_n >= warmup then
    m.mix_acc <- Float.max 0.0 (m.mix_acc +. Float.min cap (d -. slack));
  m.mix_n <- m.mix_n + 1;
  let w = 1.0 /. float_of_int m.mix_n in
  for i = 0 to k - 1 do
    m.mix_means.(i) <- m.mix_means.(i) +. (w *. (p.(i) -. m.mix_means.(i)))
  done;
  m.mix_acc

let mix_value m = m.mix_acc
let mix_last m = m.mix_last

(* The component of [p] deviating most from the running mean mix, with
   its sample and baseline shares — the payload for a mix-shift reason.
   Read {e before} [mix_update] folds [p] into the mean. *)
let mix_top_deviation m (p : float array) =
  let best = ref 0 and bestd = ref neg_infinity in
  for i = 0 to Array.length m.mix_means - 1 do
    let d = Float.abs (p.(i) -. m.mix_means.(i)) in
    if d > !bestd then begin
      best := i;
      bestd := d
    end
  done;
  (!best, p.(!best), m.mix_means.(!best))

(* ---- one-sided drift (increase) with a learned baseline ---- *)

(* Like Page–Hinkley but in the increase direction and with capped
   increments: D_t = max(0, D_{t-1} + min(cap, x_t - mean_t - slack)),
   mean updated after scoring. Used on the memory-bound stall share —
   prefetch degradation pushes stall cycles outward to mem/tlb, while
   benign compute-phase changes swing the share in both directions
   around a stable mean and so never accumulate. *)

type drift = {
  mutable dr_n : int;
  mutable dr_mean : float;
  mutable dr_acc : float;
  mutable dr_last : float;
}

let drift_create () = { dr_n = 0; dr_mean = 0.0; dr_acc = 0.0; dr_last = 0.0 }

let drift_reset d =
  d.dr_n <- 0;
  d.dr_mean <- 0.0;
  d.dr_acc <- 0.0;
  d.dr_last <- 0.0

let drift_update ~slack ~cap ~warmup d x =
  d.dr_last <- x;
  if d.dr_n >= warmup then
    d.dr_acc <-
      Float.max 0.0 (d.dr_acc +. Float.min cap (x -. d.dr_mean -. slack));
  d.dr_n <- d.dr_n + 1;
  d.dr_mean <- d.dr_mean +. ((x -. d.dr_mean) /. float_of_int d.dr_n);
  d.dr_acc

let drift_mean d = d.dr_mean
let drift_value d = d.dr_acc
let drift_last d = d.dr_last

(* ---- scalar CUSUM (alloc-site churn) ---- *)

type cusum = { mutable cu_n : int; mutable cu_acc : float }

let cusum_create () = { cu_n = 0; cu_acc = 0.0 }

let cusum_reset c =
  c.cu_n <- 0;
  c.cu_acc <- 0.0

let cusum_update ~slack c x =
  c.cu_acc <- Float.max 0.0 (c.cu_acc +. (x -. slack));
  c.cu_n <- c.cu_n + 1;
  c.cu_acc

let cusum_value c = c.cu_acc

(* ---- verdicts ---- *)

type reason =
  | Useful_rate_drop of { rate : float; baseline : float }
      (** the window's prefetch useful rate against the learned baseline *)
  | Stall_mix_shift of { share : float; baseline : float }
      (** the memory-bound share (tlb+mem) of stall cycles rose
          against its learned baseline: misses are going outward *)
  | Loop_mix_shift of { method_id : int; share : float; baseline : float }
      (** the per-method backedge mix moved; [method_id] is the method
          whose share moved the most *)
  | Alloc_site_churn of { fraction : float }
      (** fraction of the window's allocations at never-before-seen
          sites *)

type verdict = Healthy | Drifting | Degraded of reason

let verdict_name = function
  | Healthy -> "healthy"
  | Drifting -> "drifting"
  | Degraded _ -> "degraded"

let verdict_code = function Healthy -> 0 | Drifting -> 1 | Degraded _ -> 2

let reason_name = function
  | Useful_rate_drop _ -> "useful-rate-drop"
  | Stall_mix_shift _ -> "stall-mix-shift"
  | Loop_mix_shift _ -> "loop-mix-shift"
  | Alloc_site_churn _ -> "alloc-site-churn"

let describe_reason = function
  | Useful_rate_drop { rate; baseline } ->
      Printf.sprintf "useful rate %.2f vs baseline %.2f" rate baseline
  | Stall_mix_shift { share; baseline } ->
      Printf.sprintf "memory-bound stall share %.2f vs baseline %.2f" share
        baseline
  | Loop_mix_shift { method_id; share; baseline } ->
      Printf.sprintf "loop mix shifted (method %d: share %.2f vs %.2f)"
        method_id share baseline
  | Alloc_site_churn { fraction } ->
      Printf.sprintf "%.0f%% of allocations at fresh sites"
        (100.0 *. fraction)
