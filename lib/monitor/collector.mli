(** The live collector: samples the run's telemetry surfaces at every
    window boundary of the simulated cycle clock, feeds the change
    detectors, and retains the closed windows.

    Wiring order (the harness's [--monitor] path does this):
    + enable telemetry ([Vm.Interp.set_telemetry]) — attribution
      outcomes are the useful-rate stream;
    + {!create} the collector (arms [Vm.Interp.set_monitor]);
    + install {!hooks} with [set_profile], combining with the object
      profiler's hooks via [combine_profile_hooks] when both are on;
    + run; call [Vm.Interp.finalize_telemetry], then {!finalize} so the
      end-of-run attribution settlement lands in the tail window.

    The collector observes and never participates: a monitored run is
    bit-identical in every simulated observable to an unmonitored one
    (golden-, bench- and fuzz-enforced). *)

type t

val default_window_cycles : int
(** The CLI / bench surfaces' default window (262144 simulated cycles). *)

val create :
  ?detect:Detect.config ->
  ?registry:Telemetry.Attrib.t ->
  ?sink:Telemetry.Sink.t ->
  window_cycles:int ->
  Vm.Interp.t ->
  t
(** Snapshot the interpreter's current counters as window 0's base and
    arm the boundary hook. When [sink] is given, each window close also
    emits a ["monitor.window"] counter event (a counter track in the
    Chrome-trace export). [registry] supplies site labels for the
    report. *)

val hooks : t -> Vm.Interp.profile_hooks
(** The collector's accumulators for the stall-bin / allocation / GC
    streams. Must be installed with [Vm.Interp.set_profile] (possibly
    combined) for stall-mix and alloc-churn windows to be populated;
    without them those detectors simply never qualify. *)

val finalize : t -> unit
(** Close the end-of-run tail window (marked partial; not scored by the
    detectors) so the per-window stats deltas sum exactly to the run
    totals. Idempotent. Call after [Vm.Interp.finalize_telemetry]. *)

val n_windows : t -> int
val first_degraded : t -> int option
val windows : t -> Window.t array
(** Oldest first. *)

val report : t -> Report.t
(** Build the final report (finalizes first if needed), joining method
    names and site metadata. *)
