(** Deterministic online change detectors for the windowed metric
    streams: Page–Hinkley (decrease direction) on scalar rates, CUSUM on
    mix divergence and churn fractions. Pure sequential float
    arithmetic — identical input series give identical verdict
    timelines, across reruns and across Domains. *)

type config = {
  warmup : int;  (** qualifying samples before an accumulator may grow *)
  min_classified : int;
      (** attribution outcomes a window needs before its useful rate is a
          sample *)
  min_stall : int;  (** stall cycles a window needs to be a mix sample *)
  min_issued : int;
      (** prefetches a window must issue before its stall mix is a
          sample: phases with no prefetch activity reshape the mix for
          benign reasons *)
  min_backedges : int;
  min_allocs : int;
  ph_delta : float;  (** Page–Hinkley slack (tolerated drop per window) *)
  ph_lambda : float;  (** Page–Hinkley alarm threshold *)
  stall_slack : float;
      (** drift slack on the memory-bound stall share (tlb+mem) *)
  stall_h : float;  (** stall-drift alarm threshold *)
  loop_slack : float;  (** CUSUM slack on loop-mix divergence *)
  loop_h : float;  (** loop-mix re-baseline threshold (Drifting only) *)
  mix_cap : float;  (** per-window cap on a mix CUSUM increment *)
  churn_slack : float;
  churn_h : float;
}

val default : config
(** Tuned on the seed suite: no Degraded verdict on any stationary
    (workload x machine) run at the default window, detection within the
    gated four windows on the planted phase shifts (both pinned by
    test/test_monitor.ml). *)

(** {2 Page–Hinkley, decrease direction} *)

type ph

val ph_create : unit -> ph
val ph_reset : ph -> unit

val ph_update : config -> ph -> float -> float
(** Feed one qualifying sample; returns the accumulator
    [PH_t = max(0, PH_(t-1) + (mean - x - ph_delta))] after the update
    (always 0 during the first [warmup] samples). Alarm when it exceeds
    [ph_lambda]. *)

val ph_mean : ph -> float
(** The learned baseline (running mean of all samples). *)

val ph_value : ph -> float

(** {2 CUSUM over a mix (probability vector)} *)

type mix

val mix_create : int -> mix
(** [mix_create k] tracks a [k]-ary mix. *)

val mix_reset : mix -> unit

val mix_update :
  slack:float -> cap:float -> warmup:int -> mix -> float array -> float
(** Feed one mix sample (a probability vector of the created arity);
    returns [S_t = max(0, S_(t-1) + min(cap, d - slack))] where [d] is
    the total-variation distance from the running mean mix, scored
    before the sample is folded in. The first [warmup] qualifying
    samples only teach the baseline; [cap] keeps a single outlier
    window from alarming on its own. *)

val mix_value : mix -> float

val mix_last : mix -> float
(** Divergence of the most recent sample. *)

val mix_top_deviation : mix -> float array -> int * float * float
(** [(index, sample share, baseline share)] of the component deviating
    most from the running mean — the payload for a mix-shift reason.
    Call before {!mix_update} folds the sample in. *)

(** {2 One-sided drift (increase) with a learned baseline} *)

type drift

val drift_create : unit -> drift
val drift_reset : drift -> unit

val drift_update : slack:float -> cap:float -> warmup:int -> drift -> float -> float
(** Feed one scalar sample; returns
    [D_t = max(0, D_(t-1) + min(cap, x - mean - slack))], mean updated
    after scoring. Alarms only on sustained {e increases} — swings in
    both directions around a stable mean never accumulate. Used on the
    memory-bound stall share. *)

val drift_mean : drift -> float
val drift_value : drift -> float

val drift_last : drift -> float
(** The most recent sample. *)

(** {2 Scalar CUSUM (alloc-site churn)} *)

type cusum

val cusum_create : unit -> cusum
val cusum_reset : cusum -> unit
val cusum_update : slack:float -> cusum -> float -> float
val cusum_value : cusum -> float

(** {2 Verdicts} *)

type reason =
  | Useful_rate_drop of { rate : float; baseline : float }
      (** the window's prefetch useful rate against the learned baseline *)
  | Stall_mix_shift of { share : float; baseline : float }
      (** the memory-bound share (tlb+mem) of stall cycles rose against
          its learned baseline: misses are going outward *)
  | Loop_mix_shift of { method_id : int; share : float; baseline : float }
      (** the per-method backedge mix moved; [method_id] moved the most.
          On its own this only ever yields {!Drifting} — programs shift
          between loops for benign reasons (db's sort handing over to
          its scan, MonteCarlo's simulate handing over to aggregation) —
          but the payload names the loop to look at when a prefetch
          stream degrades alongside it *)
  | Alloc_site_churn of { fraction : float }
      (** fraction of the window's allocations at never-before-seen
          sites *)

type verdict = Healthy | Drifting | Degraded of reason

val verdict_name : verdict -> string
(** ["healthy"] / ["drifting"] / ["degraded"]. *)

val verdict_code : verdict -> int
(** 0 / 1 / 2 — for counter tracks and goldens. *)

val reason_name : reason -> string
val describe_reason : reason -> string
