(** One closed sampling window of the live monitor: per-window deltas of
    the stats counters, prefetch-attribution outcomes, stall bins,
    allocation-site drift and loop activity, plus the verdict the
    detectors assigned at close. Immutable. *)

type t = {
  index : int;  (** 0-based window number *)
  boundary : int;
      (** the nominal boundary cycle that closed this window (end-of-run
          cycles for the final partial window) *)
  cycles_end : int;  (** actual [Stats.cycles] when the window closed *)
  partial : bool;
      (** the end-of-run tail window; detectors do not score it *)
  stats : Memsim.Stats.t;  (** full per-window counter deltas *)
  issued : int;
  cancelled : int;
  redundant : int;
  redundant_hw : int;
  useful : int;
  late : int;
  useless : int;
  tlb : int;
  l1 : int;
  l2 : int;
  mem : int;
  retire : int;
  pf_overhead : int;
  guard_overhead : int;
  alloc_cycles : int;
  gc_cycles : int;
  gcs : int;
  allocs : int;
  alloc_bytes : int;
  fresh_site_allocs : int;
  backedges : int;
  invocations : int;
  method_backedges : int array;  (** per-method deltas, by method id *)
  out_bytes : int;  (** cumulative program output bytes at close *)
  verdict : Detect.verdict;
}

val cycles : t -> int
(** The window's simulated-cycle delta ([stats.cycles]). *)

val classified : t -> int
(** [useful + late + useless] — settled outcomes in the window. *)

val useful_rate : t -> float
(** [useful / classified]; 0.0 when nothing settled. *)

val stall_total : t -> int
val churn_fraction : t -> float
