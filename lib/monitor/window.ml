(* One closed sampling window: everything that happened between two
   consecutive window boundaries of the simulated cycle clock.

   Every count in here is a {e delta} over the window (the cumulative
   snapshots live in the collector); the only cumulative fields are
   [cycles_end] and [out_bytes], which identify where on the run's
   timeline the window closed. Windows are immutable once built — the
   verdict is computed at close time, before construction. *)

type t = {
  index : int;  (** 0-based window number *)
  boundary : int;
      (** the nominal boundary cycle that closed this window (a multiple
          of the window size, except for the final partial window where
          it is the end-of-run cycle count) *)
  cycles_end : int;  (** actual [Stats.cycles] when the window closed *)
  partial : bool;
      (** the end-of-run tail window: closed by {!Collector.finalize},
          not by a boundary crossing; detectors do not score it *)
  stats : Memsim.Stats.t;  (** full per-window counter deltas *)
  (* prefetch-attribution outcome deltas (conservation:
     issued = cancelled + redundant + redundant_hw + useful + late +
     useless holds over the whole run, not per window — outcomes settle
     later than their issues) *)
  issued : int;
  cancelled : int;
  redundant : int;
  redundant_hw : int;
  useful : int;
  late : int;
  useless : int;
  (* stall-cycle bins (from the profiling stream) *)
  tlb : int;
  l1 : int;
  l2 : int;
  mem : int;
  (* non-stall cycle bins *)
  retire : int;
  pf_overhead : int;
  guard_overhead : int;
  alloc_cycles : int;
  gc_cycles : int;
  gcs : int;
  (* allocation-site drift *)
  allocs : int;
  alloc_bytes : int;
  fresh_site_allocs : int;
      (** allocations at (method, pc) sites never seen in any earlier
          window *)
  (* loop activity *)
  backedges : int;
  invocations : int;
  method_backedges : int array;
      (** per-method backedge deltas, indexed by method id *)
  out_bytes : int;  (** cumulative program output bytes at close *)
  verdict : Detect.verdict;
}

let cycles w = w.stats.Memsim.Stats.cycles

let classified w = w.useful + w.late + w.useless
(** Settled prefetch outcomes in the window (the useful-rate
    denominator). *)

let useful_rate w =
  let c = classified w in
  if c = 0 then 0.0 else float_of_int w.useful /. float_of_int c

let stall_total w = w.tlb + w.l1 + w.l2 + w.mem

let churn_fraction w =
  if w.allocs = 0 then 0.0
  else float_of_int w.fresh_site_allocs /. float_of_int w.allocs
