(* Render an AST back to parseable MiniJava source. *)

let ty = Ast.string_of_ty

(* Receivers of postfix operations ('.', '[]') must themselves be postfix
   expressions or atoms; anything compound gets wrapped. *)
let rec atom (e : Ast.expr) =
  match e.desc with
  | Ast.Int_lit n when n >= 0 -> string_of_int n
  | Ast.Int_lit _ | Ast.Binop _ | Ast.Unop_neg _ | Ast.Unop_not _ ->
      "(" ^ expr e ^ ")"
  | _ -> expr e

and expr (e : Ast.expr) =
  match e.desc with
  | Ast.Int_lit n ->
      if n >= 0 then string_of_int n else Printf.sprintf "(-%d)" (-n)
  | Ast.Null_lit -> "null"
  | Ast.This -> "this"
  | Ast.Var x -> x
  | Ast.Field (base, name) -> Printf.sprintf "%s.%s" (atom base) name
  | Ast.Static_field (cls, name) -> Printf.sprintf "%s.%s" cls name
  | Ast.Index (base, index) ->
      Printf.sprintf "%s[%s]" (atom base) (expr index)
  | Ast.Length base -> Printf.sprintf "%s.length" (atom base)
  | Ast.Call (recv, name, args) ->
      Printf.sprintf "%s.%s(%s)" (atom recv) name (args_str args)
  | Ast.Bare_call (name, args) ->
      Printf.sprintf "%s(%s)" name (args_str args)
  | Ast.Static_call (cls, name, args) ->
      Printf.sprintf "%s.%s(%s)" cls name (args_str args)
  | Ast.New_object (cls, args) ->
      Printf.sprintf "new %s(%s)" cls (args_str args)
  | Ast.New_int_array size -> Printf.sprintf "new int[%s]" (expr size)
  | Ast.New_class_array (cls, size) ->
      Printf.sprintf "new %s[%s]" cls (expr size)
  | Ast.Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr a) (Ast.string_of_binop op) (expr b)
  | Ast.Unop_neg a -> Printf.sprintf "(-%s)" (atom a)
  | Ast.Unop_not a -> Printf.sprintf "(!%s)" (atom a)

and args_str args = String.concat ", " (List.map expr args)

let lvalue = function
  | Ast.Lvar x -> x
  | Ast.Lfield (base, name) -> Printf.sprintf "%s.%s" (atom base) name
  | Ast.Lstatic (cls, name) -> Printf.sprintf "%s.%s" cls name
  | Ast.Lindex (base, index) ->
      Printf.sprintf "%s[%s]" (atom base) (expr index)

let pad n = String.make (2 * n) ' '

let rec stmt ?(indent = 0) (st : Ast.stmt) =
  let p = pad indent in
  match st.sdesc with
  | Ast.Decl (t, name, init) ->
      Printf.sprintf "%s%s %s = %s;\n" p (ty t) name (expr init)
  | Ast.Assign (lv, value) ->
      Printf.sprintf "%s%s = %s;\n" p (lvalue lv) (expr value)
  | Ast.If (cond, then_b, []) ->
      Printf.sprintf "%sif (%s) {\n%s%s}\n" p (expr cond)
        (body (indent + 1) then_b)
        p
  | Ast.If (cond, then_b, else_b) ->
      Printf.sprintf "%sif (%s) {\n%s%s} else {\n%s%s}\n" p (expr cond)
        (body (indent + 1) then_b)
        p
        (body (indent + 1) else_b)
        p
  | Ast.While (cond, b) ->
      Printf.sprintf "%swhile (%s) {\n%s%s}\n" p (expr cond)
        (body (indent + 1) b)
        p
  | Ast.For (init, cond, update, b) ->
      Printf.sprintf "%sfor (%s; %s; %s) {\n%s%s}\n" p
        (match init with Some s -> header_stmt s | None -> "")
        (expr cond)
        (match update with Some s -> header_stmt s | None -> "")
        (body (indent + 1) b)
        p
  | Ast.Return None -> Printf.sprintf "%sreturn;\n" p
  | Ast.Return (Some e) -> Printf.sprintf "%sreturn %s;\n" p (expr e)
  | Ast.Expr_stmt e -> Printf.sprintf "%s%s;\n" p (expr e)
  | Ast.Print e -> Printf.sprintf "%sprint(%s);\n" p (expr e)
  | Ast.Break -> Printf.sprintf "%sbreak;\n" p
  | Ast.Continue -> Printf.sprintf "%scontinue;\n" p
  | Ast.Block b -> Printf.sprintf "%s{\n%s%s}\n" p (body (indent + 1) b) p

(* A 'for' header clause: a simple statement without the trailing ';'. *)
and header_stmt (st : Ast.stmt) =
  match st.sdesc with
  | Ast.Decl (t, name, init) ->
      Printf.sprintf "%s %s = %s" (ty t) name (expr init)
  | Ast.Assign (lv, value) -> Printf.sprintf "%s = %s" (lvalue lv) (expr value)
  | Ast.Expr_stmt e -> expr e
  | _ -> invalid_arg "Pretty.header_stmt: not a simple statement"

and body indent stmts = String.concat "" (List.map (stmt ~indent) stmts)

let field_decl (f : Ast.field_decl) =
  Printf.sprintf "  %s%s %s;\n"
    (if f.field_static then "static " else "")
    (ty f.field_ty) f.field_name

let method_decl ~class_name (m : Ast.method_decl) =
  let header =
    if m.is_constructor then Printf.sprintf "  %s(%s)" class_name
    else
      Printf.sprintf "  %s%s %s(%s)"
        (if m.method_static then "static " else "")
        (match m.method_ret with Some t -> ty t | None -> "void")
        m.method_name
  in
  let params =
    String.concat ", "
      (List.map (fun (t, name) -> ty t ^ " " ^ name) m.method_params)
  in
  Printf.sprintf "%s {\n%s  }\n" (header params) (body 2 m.method_body)

let class_decl (c : Ast.class_decl) =
  Printf.sprintf "class %s {\n%s%s}\n" c.class_name
    (String.concat "" (List.map field_decl c.class_fields))
    (String.concat ""
       (List.map (method_decl ~class_name:c.class_name) c.class_methods))

let program classes = String.concat "\n" (List.map class_decl classes)

let pp_program ppf p = Format.pp_print_string ppf (program p)
