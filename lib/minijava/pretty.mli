(** AST pretty-printer: render a {!Ast.program} back to concrete MiniJava
    source accepted by {!Lexer}/{!Parser}.

    The fuzzing harness generates programs as ASTs, renders them with this
    module, and feeds the text through the complete front end — so every
    reproducer it prints is a self-contained [.mj] file, and rendering
    doubles as a parser round-trip test. Compound subexpressions are
    parenthesized conservatively; the result re-parses to a semantically
    identical program (unary minus of a literal comes back as
    [Unop_neg (Int_lit n)], which compiles identically). *)

val ty : Ast.ty -> string
val expr : Ast.expr -> string

val stmt : ?indent:int -> Ast.stmt -> string
(** One statement, ["\n"]-terminated, nested blocks indented by two
    spaces per level starting at [indent]. *)

val program : Ast.program -> string
(** The whole compilation unit, classes in order. *)

val pp_program : Format.formatter -> Ast.program -> unit
