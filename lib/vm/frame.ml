(** An activation record: locals, operand stack, and the per-site address
    registers that anchor prefetch code.

    [site_addr.(s)] holds the last effective address computed by load site
    [s] in this activation (-1 before its first execution); the spliced
    [Prefetch_inter]/[Spec_load] instructions read it as [A(L)], "the
    memory address of data loaded by L in the current iteration"
    (Section 3.3). [pref_regs] are the destinations of [Spec_load]. *)

type t = {
  method_info : Classfile.method_info;
  locals : Value.t array;
  stack : Value.t array;
  mutable sp : int;
  site_addr : int array;
  site_prev : int array;
      (** the address before [site_addr], for dynamic-stride prefetching *)
  pref_regs : Value.t array;
  mutable pc : int;
}

exception Stack_error of string

let max_stack = 256

(* Int-specialized [max]: [Stdlib.max] is polymorphic and goes through
   the generic comparison C call — measurable in [reusable], which runs
   on every method invocation. *)
let[@inline] imax (a : int) b = if a > b then a else b

let create (m : Classfile.method_info) ~args =
  if Array.length args <> m.arity then
    invalid_arg
      (Printf.sprintf "frame: %s expects %d arguments, got %d" m.method_name
         m.arity (Array.length args));
  let locals = Array.make (imax m.max_locals m.arity) Value.Null in
  Array.blit args 0 locals 0 (Array.length args);
  {
    method_info = m;
    locals;
    stack = Array.make max_stack Value.Null;
    sp = 0;
    site_addr = Array.make (imax m.n_sites 1) (-1);
    site_prev = Array.make (imax m.n_sites 1) (-1);
    pref_regs = Array.make (imax m.n_pref_regs 1) Value.Null;
    pc = 0;
  }

(* A pooled frame can be reused for a new activation of its method when
   its arrays are still the right shape — the JIT may swap a method's body
   (growing [max_locals] or the site count), in which case the caller must
   discard the pooled frame and build a fresh one. *)
let reusable t (m : Classfile.method_info) =
  t.method_info == m
  && Array.length t.locals = imax m.max_locals m.arity
  && Array.length t.site_addr = imax m.n_sites 1
  && Array.length t.pref_regs = imax m.n_pref_regs 1

let reset t ~args =
  let m = t.method_info in
  if Array.length args <> m.arity then
    invalid_arg
      (Printf.sprintf "frame: %s expects %d arguments, got %d" m.method_name
         m.arity (Array.length args));
  (* Equivalent to fill-then-blit, skipping the slots the args overwrite. *)
  let n_args = Array.length args in
  Array.blit args 0 t.locals 0 n_args;
  Array.fill t.locals n_args (Array.length t.locals - n_args) Value.Null;
  t.sp <- 0;
  Array.fill t.site_addr 0 (Array.length t.site_addr) (-1);
  Array.fill t.site_prev 0 (Array.length t.site_prev) (-1);
  Array.fill t.pref_regs 0 (Array.length t.pref_regs) Value.Null;
  t.pc <- 0

let push t v =
  if t.sp >= max_stack then
    raise (Stack_error ("operand stack overflow in " ^ t.method_info.method_name));
  t.stack.(t.sp) <- v;
  t.sp <- t.sp + 1

let pop t =
  if t.sp <= 0 then
    raise (Stack_error ("operand stack underflow in " ^ t.method_info.method_name));
  t.sp <- t.sp - 1;
  t.stack.(t.sp)

let pop_int t =
  match pop t with
  | Value.Int n -> n
  | v ->
      raise
        (Stack_error
           (Printf.sprintf "expected int on stack in %s, got %s"
              t.method_info.method_name (Value.to_string v)))

let peek t =
  if t.sp <= 0 then
    raise (Stack_error ("operand stack underflow in " ^ t.method_info.method_name));
  t.stack.(t.sp - 1)

(* Live values for the collector's root set. *)
let roots t =
  let acc = ref [] in
  Array.iter (fun v -> acc := v :: !acc) t.locals;
  for i = 0 to t.sp - 1 do
    acc := t.stack.(i) :: !acc
  done;
  Array.iter (fun v -> acc := v :: !acc) t.pref_regs;
  !acc
