(** The simulated Java heap.

    Objects live at simulated byte addresses in a flat virtual address
    space, allocated by a bump allocator from {!Classfile.heap_base}. Object
    {e ids} are stable handles; GC compaction (see {!Gc_compact}) changes
    only the base addresses, sliding live objects towards the heap base
    while preserving their allocation order — the property the paper relies
    on for strides to survive collection ("live objects are packed by
    sliding compaction, which does not change their internal order on the
    heap", Section 4).

    The address map is total enough for speculative loads: {!value_at}
    recovers the value stored at any simulated address, which is how the
    [spec_load] pseudo-instruction reads the pointer it will prefetch
    through. *)

type t

exception Out_of_memory
(** Raised by allocation when the bump pointer would pass the heap limit;
    the interpreter catches it, collects, and retries. *)

val create : ?limit_bytes:int -> unit -> t
(** [limit_bytes] defaults to 64 MiB. *)

val alloc_object : t -> Classfile.class_info -> int
(** Allocate a zeroed instance; returns its object id. *)

val alloc_int_array : t -> int -> int
val alloc_ref_array : t -> int -> int

val exists : t -> int -> bool
val base_of : t -> int -> int
val size_of : t -> int -> int

val class_id_of : t -> int -> int option
(** [None] for arrays. *)

val is_ref_array : t -> int -> bool

(* Field access by slot index. *)
val get_field : t -> int -> int -> Value.t
val set_field : t -> int -> int -> Value.t -> unit
val field_addr : t -> int -> int -> int

(* Array access; int arrays yield [Value.Int]. Indices must be in bounds
   (the interpreter performs the bounds check via the length load). *)
val array_length : t -> int -> int
val length_addr : t -> int -> int
val get_elem : t -> int -> int -> Value.t
val set_elem : t -> int -> int -> Value.t -> unit
val elem_addr : t -> int -> int -> int

val array_view : t -> int -> int * int
(** [(base, length)] of an array object in one table lookup — the
    closure engine's array-access fast path derives the length-load
    address, the bounds test and the element address from it without
    repeated id resolution. *)

val value_at : t -> int -> Value.t option
(** The value stored at a simulated address, or [None] when the address
    falls outside any live object's data slots (header bytes included). *)

val object_at : t -> int -> int option
(** The id of the object whose extent contains the address, if any. *)

val referenced_ids : t -> int -> int list
(** Object ids directly referenced from an object's fields or elements. *)

val live_objects : t -> int
val used_bytes : t -> int
val limit_bytes : t -> int

val iter_ids_in_address_order : t -> (int -> unit) -> unit

val compact : t -> live:(int -> bool) -> int
(** Remove every object for which [live] is false and slide the remaining
    objects towards the heap base in address order; returns the number of
    objects removed. *)

val clear : t -> unit
