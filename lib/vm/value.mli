(** Runtime values of the mini-JVM.

    References carry a stable object id; the heap maps ids to simulated
    byte addresses, so values survive the sliding compaction of the
    collector unchanged. *)

type t =
  | Int of int
  | Ref of int  (** object id, stable across GC *)
  | Null

val of_int : int -> t
(** [of_int n] is [Int n], sharing one preallocated block per small [n]
    (the hot range of loop counters and array indices). Sharing is
    unobservable — values are only compared structurally — and spares the
    execution engine's arithmetic both the minor-heap allocation and the
    write barrier's remembered-set path when the result lands in a
    promoted operand stack. *)

val equal : t -> t -> bool
val is_reference : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
